// Smoke check for the tracer's disabled fast path (docs/OBSERVABILITY.md):
// with tracing off a span site costs one relaxed atomic load and a branch,
// so the instrumentation added to the operators must stay far below 2% of
// a dense difference.  Registered under ctest and run by the bench-smoke
// CI job; exits nonzero if the bound is violated.
//
// The check is analytic rather than differential — the un-instrumented
// binary no longer exists to compare against.  It measures (a) the cost of
// one disabled span site in a tight loop and (b) the wall time of a dense
// identity difference, then bounds the overhead by the fixed number of
// span sites one difference executes (operator.diff + phase.integrate +
// phase.severity + at most 32 severity.chunk spans).
#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "algebra/operators.hpp"
#include "bench_util.hpp"
#include "obs/tracer.hpp"

namespace {

using Clock = std::chrono::steady_clock;

using cube::bench::Shape;
using cube::bench::make_experiment;

double elapsed_ns(const Clock::time_point t0) {
  return std::chrono::duration<double, std::nano>(Clock::now() - t0).count();
}

/// Best-of-`reps` wall time of f(), in nanoseconds.
template <typename F>
double best_time_ns(const F& f, int reps) {
  double best = 0;
  for (int r = 0; r < reps; ++r) {
    const Clock::time_point t0 = Clock::now();
    f();
    const double ns = elapsed_ns(t0);
    if (r == 0 || ns < best) best = ns;
  }
  return best;
}

}  // namespace

int main() {
  if (cube::obs::tracing_enabled()) {
    std::fprintf(stderr, "tracing unexpectedly enabled at startup\n");
    return 1;
  }

  // (a) One disabled span site.  The loop body is two Span constructions
  // (with and without a note) so both OBS_SPAN forms are covered.
  constexpr int kSites = 1 << 20;
  const auto span_loop = [] {
    for (int i = 0; i < kSites; ++i) {
      OBS_SPAN("smoke.noop");
      OBS_SPAN("smoke.noop", "note");
    }
  };
  span_loop();  // warm-up
  const double site_ns = best_time_ns(span_loop, 5) / (2.0 * kSites);

  // (b) A dense identity difference — same shape bench_operators uses for
  // its dense diff rows (two experiments sharing a prefix integrate with
  // identity mappings).
  Shape shape;
  const cube::Experiment a = make_experiment(shape);
  Shape shape_b = shape;
  shape_b.seed = 2;
  const cube::Experiment b = make_experiment(shape_b);
  volatile double sink = 0;
  const double diff_ns = best_time_ns(
      [&] {
        const cube::Experiment d = cube::difference(a, b);
        sink = d.severity().get(0, 0, 0);
      },
      5);

  // Span sites executed by one difference: the operator span, the two
  // phase spans, and one severity.chunk span per cell chunk (capped at 32
  // by kMaxCellChunks).
  constexpr double kSitesPerDiff = 3 + 32;
  const double overhead = kSitesPerDiff * site_ns / diff_ns;

  std::printf(
      "disabled span site: %.2f ns\n"
      "dense identity diff: %.1f us\n"
      "bounded overhead (%g sites/diff): %.4f%% (limit 2%%)\n",
      site_ns, diff_ns / 1e3, kSitesPerDiff, overhead * 100.0);
  (void)sink;

  if (overhead >= 0.02) {
    std::fprintf(stderr, "disabled-tracer overhead bound exceeded\n");
    return 1;
  }
  return 0;
}
