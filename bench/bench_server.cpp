// bench_server: replays synthetic client sessions against an in-process
// cubed server over a real unix-domain socket and reports the latency
// distribution per serving mode, coalescing behaviour, backpressure under
// overload, and saturated throughput (EXPERIMENTS.md, experiment A13).
//
// Phases:
//   A  cold     every distinct query once — full plan + load + compute
//   B  warm     the same queries replayed — shared-cache hits
//   C  coalesce one fresh query from many simultaneous sessions
//   D  overload distinct cold queries far beyond the inflight ceiling
//   E  mixed    N sessions of interleaved hot/cold traffic (throughput)
//
// Latency is reported two ways: the client round trip (includes the wire
// transfer and client-side decode, a constant the cache cannot remove)
// and the server-side service time the daemon stamps into each response
// (the work the shared cache does remove).  Exits nonzero if a serving
// invariant fails: a cached hit must be >= 10x faster than a cold compute
// at the median server-side, concurrent identical queries must plan and
// compute exactly once, and overload must shed with BUSY rather than
// queueing without bound.
#include <atomic>
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "io/repository.hpp"
#include "obs/metrics.hpp"
#include "server/client.hpp"
#include "server/server.hpp"
#include "server/service.hpp"

namespace {

using namespace cube::server;

double now_ms() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

double percentile(std::vector<double> v, double p) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const std::size_t idx = static_cast<std::size_t>(
      p * static_cast<double>(v.size() - 1) + 0.5);
  return v[std::min(idx, v.size() - 1)];
}

std::uint64_t computes_counter() {
  return cube::obs::MetricsRegistry::global().counter("server.computes")
      .value();
}

long rss_kb() {
  std::ifstream in("/proc/self/status");
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind("VmRSS:", 0) == 0) return std::atol(line.c_str() + 6);
  }
  return 0;
}

struct Options {
  int sessions = 2000;   ///< phase-E session count
  int clients = 16;      ///< concurrent client threads
  int experiments = 12;  ///< stored synthetic experiments
  bool quick = false;    ///< ctest-sized run
};

int run(const Options& opt) {
  namespace fs = std::filesystem;
  const fs::path dir =
      fs::temp_directory_path() /
      ("cube_bench_server_" + std::to_string(::getpid()));
  fs::remove_all(dir);
  const fs::path socket_path = dir / "cubed.sock";

  cube::ExperimentRepository repo(dir / "repo");
  std::vector<std::string> ids;
  for (int i = 0; i < opt.experiments; ++i) {
    cube::bench::Shape shape;
    shape.prefix = "run";  // shared prefix => shared metadata shape
    shape.seed = 1000 + static_cast<std::uint64_t>(i);
    cube::Experiment e = cube::bench::make_experiment(shape);
    e.set_name("run" + std::to_string(i));
    ids.push_back(repo.store(e));
  }

  ServiceConfig service_config;
  service_config.threads = 4;
  service_config.store_derived = false;  // measure the server, not the disk
  AnalysisService service(repo, service_config);

  ServerConfig server_config;
  server_config.socket_path = socket_path;
  CubedServer server(service, server_config);
  server.start();

  ClientConfig client_config;
  client_config.socket_path = socket_path;

  // The hot set: one query per operator over adjacent pairs.
  const char* ops[] = {"mean", "min", "max", "diff", "merge"};
  std::vector<std::string> hot;
  for (const char* op : ops) {
    for (std::size_t i = 0; i + 1 < ids.size(); i += 2) {
      hot.push_back(std::string(op) + "(" + ids[i] + ", " + ids[i + 1] +
                    ")");
    }
  }

  // ---- Phase A: cold ---------------------------------------------------
  std::vector<double> cold_rt, cold_srv;
  {
    CubeClient client(client_config);
    for (const std::string& q : hot) {
      const double t0 = now_ms();
      const ClientResult r = client.query(q);
      cold_rt.push_back(now_ms() - t0);
      cold_srv.push_back(r.server_ms);
      if (r.served != Served::Computed) {
        std::fprintf(stderr, "FAIL: cold query served as %d\n",
                     static_cast<int>(r.served));
        return 1;
      }
    }
  }

  // ---- Phase B: warm ---------------------------------------------------
  const int warm_rounds = opt.quick ? 4 : 40;
  std::vector<double> hit_rt, hit_srv;
  std::mutex hit_mutex;
  {
    std::vector<std::thread> threads;
    for (int c = 0; c < opt.clients; ++c) {
      threads.emplace_back([&, c] {
        CubeClient client(client_config);
        std::vector<double> rt, srv;
        for (int round = 0; round < warm_rounds; ++round) {
          const std::string& q = hot[(c + round) % hot.size()];
          const double t0 = now_ms();
          const ClientResult r = client.query(q);
          rt.push_back(now_ms() - t0);
          srv.push_back(r.server_ms);
          if (r.served == Served::Computed) std::abort();  // must be warm
        }
        std::lock_guard<std::mutex> lock(hit_mutex);
        hit_rt.insert(hit_rt.end(), rt.begin(), rt.end());
        hit_srv.insert(hit_srv.end(), srv.begin(), srv.end());
      });
    }
    for (auto& t : threads) t.join();
  }

  // ---- Phase C: coalescing ---------------------------------------------
  const std::string fresh =
      "mean(" + ids[0] + ", " + ids[1] + ", " + ids[2] + ")";
  const std::uint64_t computes_before = computes_counter();
  std::atomic<int> served_computed{0};
  {
    std::atomic<int> ready{0};
    std::atomic<bool> go{false};
    std::vector<std::thread> threads;
    for (int c = 0; c < opt.clients; ++c) {
      threads.emplace_back([&] {
        CubeClient client(client_config);
        ready.fetch_add(1);
        while (!go.load()) std::this_thread::yield();
        if (client.query(fresh).served == Served::Computed) {
          served_computed.fetch_add(1);
        }
      });
    }
    while (ready.load() < opt.clients) std::this_thread::yield();
    go.store(true);
    for (auto& t : threads) t.join();
  }
  const std::uint64_t coalesce_computes = computes_counter() - computes_before;

  // ---- Phase D: overload -----------------------------------------------
  // Far more simultaneous cold queries than the inflight ceiling
  // (2 x threads = 8): the surplus must shed with a structured BUSY.
  std::atomic<int> busy{0};
  std::atomic<int> overload_ok{0};
  {
    std::vector<std::thread> threads;
    const int flood = opt.quick ? 16 : 48;
    for (int c = 0; c < flood; ++c) {
      threads.emplace_back([&, c] {
        CubeClient client(client_config);
        // Distinct per-thread query: min over a rotated triple.
        const std::string q = "min(" + ids[c % ids.size()] + ", " +
                              ids[(c + 1) % ids.size()] + ", " +
                              ids[(c + 2) % ids.size()] + ")";
        try {
          (void)client.query(q);
          overload_ok.fetch_add(1);
        } catch (const BusyError&) {
          busy.fetch_add(1);
        }
      });
    }
    for (auto& t : threads) t.join();
  }

  // ---- Phase E: mixed sessions -----------------------------------------
  // Each session connects, issues three hot queries and one from a wider
  // pool (some still cold), and disconnects — the shape of an interactive
  // analysis fleet.
  std::vector<std::string> pool;
  for (std::size_t i = 0; i < ids.size(); ++i) {
    for (std::size_t j = 0; j < ids.size(); ++j) {
      if (i != j) {
        pool.push_back("diff(" + ids[i] + ", " + ids[j] + ")");
      }
    }
  }
  std::atomic<int> next_session{0};
  std::atomic<int> mixed_busy{0};
  std::vector<double> mixed_ms;
  std::mutex mixed_mutex;
  const double mixed_t0 = now_ms();
  {
    std::vector<std::thread> threads;
    for (int c = 0; c < opt.clients; ++c) {
      threads.emplace_back([&] {
        std::vector<double> local;
        for (int s = next_session.fetch_add(1); s < opt.sessions;
             s = next_session.fetch_add(1)) {
          CubeClient client(client_config);
          for (int q = 0; q < 4; ++q) {
            const std::string& text =
                q < 3 ? hot[(static_cast<std::size_t>(s) + q) % hot.size()]
                      : pool[static_cast<std::size_t>(s) % pool.size()];
            const double t0 = now_ms();
            try {
              (void)client.query(text);
              local.push_back(now_ms() - t0);
            } catch (const BusyError&) {
              mixed_busy.fetch_add(1);
            }
          }
        }
        std::lock_guard<std::mutex> lock(mixed_mutex);
        mixed_ms.insert(mixed_ms.end(), local.begin(), local.end());
      });
    }
    for (auto& t : threads) t.join();
  }
  const double mixed_wall_s = (now_ms() - mixed_t0) / 1000.0;

  // ---- Phase T: telemetry overhead -------------------------------------
  // The same warm replay twice — alone, then with a concurrent scraper
  // hammering Stats and Health over its own session — to price what a
  // monitoring agent costs the query path.  Stats snapshots the registry
  // and the slow-query log under their mutexes; the gate asserts the
  // scrape cannot shift the warm median materially (EXPERIMENTS.md A16).
  auto warm_replay = [&](int rounds) {
    std::vector<double> rt;
    std::mutex rt_mutex;
    std::vector<std::thread> threads;
    for (int c = 0; c < opt.clients; ++c) {
      threads.emplace_back([&, c] {
        CubeClient client(client_config);
        std::vector<double> local;
        for (int round = 0; round < rounds; ++round) {
          const std::string& q = hot[(c + round) % hot.size()];
          const double t0 = now_ms();
          (void)client.query(q);
          local.push_back(now_ms() - t0);
        }
        std::lock_guard<std::mutex> lock(rt_mutex);
        rt.insert(rt.end(), local.begin(), local.end());
      });
    }
    for (auto& t : threads) t.join();
    return rt;
  };
  const int scrape_rounds = opt.quick ? 8 : 64;
  const std::vector<double> quiet_rt = warm_replay(scrape_rounds);
  std::atomic<bool> scrape_stop{false};
  std::atomic<int> scrapes{0};
  std::thread scraper([&] {
    CubeClient monitor(client_config);
    while (!scrape_stop.load(std::memory_order_relaxed)) {
      (void)monitor.stats();
      (void)monitor.health();
      scrapes.fetch_add(1, std::memory_order_relaxed);
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  });
  const std::vector<double> scraped_rt = warm_replay(scrape_rounds);
  scrape_stop.store(true, std::memory_order_relaxed);
  scraper.join();
  server.stop();

  // ---- Phase F: over-budget flood --------------------------------------
  // A second daemon whose peak-resident budget (1 byte) no plan can meet:
  // static analysis must reject every query BEFORE it reaches the pool or
  // the result cache, so an over-budget flood costs neither compute nor
  // memory.
  std::atomic<int> budget_rejected{0};
  std::atomic<int> budget_wrong{0};
  std::uint64_t budget_computes = 0;
  std::uint64_t budget_cache_bytes = 0;
  long rss_growth_kb = 0;
  {
    ServiceConfig gated_config;
    gated_config.threads = 4;
    gated_config.store_derived = false;
    gated_config.budget_bytes = 1;
    AnalysisService gated(repo, gated_config);
    ServerConfig gated_server_config;
    gated_server_config.socket_path = dir / "cubed-budget.sock";
    CubedServer gated_server(gated, gated_server_config);
    gated_server.start();
    ClientConfig gated_client_config;
    gated_client_config.socket_path = gated_server_config.socket_path;

    const std::uint64_t computes_before_flood = computes_counter();
    const long rss_before = rss_kb();
    const int flood = opt.quick ? 64 : 256;
    std::vector<std::thread> threads;
    for (int c = 0; c < opt.clients; ++c) {
      threads.emplace_back([&, c] {
        CubeClient client(gated_client_config);
        for (int q = c; q < flood; q += opt.clients) {
          const std::string text = "max(" + ids[q % ids.size()] + ", " +
                                   ids[(q + 3) % ids.size()] + ")";
          try {
            (void)client.query(text);
            budget_wrong.fetch_add(1);
          } catch (const RemoteError& e) {
            bool over_budget = false;
            for (const auto& d : e.payload().diagnostics) {
              if (d.rule == "cost.over-budget") over_budget = true;
            }
            if (e.payload().category == "analysis" && over_budget) {
              budget_rejected.fetch_add(1);
            } else {
              budget_wrong.fetch_add(1);
            }
          } catch (const BusyError&) {
            budget_wrong.fetch_add(1);
          }
        }
      });
    }
    for (auto& t : threads) t.join();
    budget_computes = computes_counter() - computes_before_flood;
    budget_cache_bytes = gated.cache().size_bytes();
    rss_growth_kb = rss_kb() - rss_before;
    gated_server.stop();
  }
  fs::remove_all(dir);

  // ---- Report ----------------------------------------------------------
  const double cold_srv_p50 = percentile(cold_srv, 0.50);
  const double hit_srv_p50 = percentile(hit_srv, 0.50);
  const double mixed_p50 = percentile(mixed_ms, 0.50);
  const double mixed_p99 = percentile(mixed_ms, 0.99);
  const double throughput =
      static_cast<double>(mixed_ms.size()) / mixed_wall_s;

  std::printf("bench_server: %d experiments, %zu hot queries, %d client "
              "threads, %d mixed sessions\n",
              opt.experiments, hot.size(), opt.clients, opt.sessions);
  std::printf("%-22s %8s %9s %9s %11s %11s\n", "phase", "queries",
              "rt p50", "rt p99", "server p50", "server p99");
  std::printf("%-22s %8zu %8.3fms %8.3fms %10.3fms %10.3fms\n",
              "A cold (computed)", cold_rt.size(),
              percentile(cold_rt, 0.50), percentile(cold_rt, 0.99),
              cold_srv_p50, percentile(cold_srv, 0.99));
  std::printf("%-22s %8zu %8.3fms %8.3fms %10.3fms %10.3fms\n",
              "B warm (cache hit)", hit_rt.size(),
              percentile(hit_rt, 0.50), percentile(hit_rt, 0.99),
              hit_srv_p50, percentile(hit_srv, 0.99));
  std::printf("%-22s %8zu %8.3fms %8.3fms\n", "E mixed sessions",
              mixed_ms.size(), mixed_p50, mixed_p99);
  std::printf("cold/hit server-side p50 ratio: %.0fx\n",
              hit_srv_p50 > 0 ? cold_srv_p50 / hit_srv_p50 : 0.0);
  std::printf("coalescing: %d concurrent identical queries -> %llu "
              "computation(s), %d served Computed\n",
              opt.clients,
              static_cast<unsigned long long>(coalesce_computes),
              served_computed.load());
  std::printf("overload: %d ok, %d shed BUSY (inflight ceiling %zu)\n",
              overload_ok.load(), busy.load(),
              service.config().max_inflight);
  std::printf("mixed throughput: %.0f queries/s over %.2f s (%d BUSY)\n",
              throughput, mixed_wall_s, mixed_busy.load());
  const double quiet_p50 = percentile(quiet_rt, 0.50);
  const double scraped_p50 = percentile(scraped_rt, 0.50);
  std::printf("telemetry: warm rt p50 %.3f ms alone, %.3f ms under %d "
              "Stats+Health scrapes (%+.1f%%)\n",
              quiet_p50, scraped_p50, scrapes.load(),
              quiet_p50 > 0 ? 100.0 * (scraped_p50 / quiet_p50 - 1.0)
                            : 0.0);
  std::printf("over-budget flood: %d rejected pre-compute, %llu "
              "computation(s), result cache %llu bytes, rss growth %ld "
              "KiB\n",
              budget_rejected.load(),
              static_cast<unsigned long long>(budget_computes),
              static_cast<unsigned long long>(budget_cache_bytes),
              rss_growth_kb);

  // ---- Invariants ------------------------------------------------------
  int rc = 0;
  if (hit_srv_p50 <= 0 || cold_srv_p50 / hit_srv_p50 < 10.0) {
    std::fprintf(stderr,
                 "FAIL: cached-hit server-side p50 not >= 10x faster "
                 "than cold (%.3f ms vs %.3f ms)\n",
                 hit_srv_p50, cold_srv_p50);
    rc = 1;
  }
  if (coalesce_computes != 1 || served_computed.load() != 1) {
    std::fprintf(stderr,
                 "FAIL: expected exactly one computation for coalesced "
                 "queries, saw %llu (%d Computed)\n",
                 static_cast<unsigned long long>(coalesce_computes),
                 served_computed.load());
    rc = 1;
  }
  if (busy.load() == 0) {
    std::fprintf(stderr, "FAIL: overload phase never shed a BUSY\n");
    rc = 1;
  }
  if (budget_wrong.load() != 0 || budget_computes != 0 ||
      budget_cache_bytes != 0) {
    std::fprintf(stderr,
                 "FAIL: over-budget flood leaked past admission (%d "
                 "non-rejections, %llu computation(s), %llu cached "
                 "bytes)\n",
                 budget_wrong.load(),
                 static_cast<unsigned long long>(budget_computes),
                 static_cast<unsigned long long>(budget_cache_bytes));
    rc = 1;
  }
  // Quick runs have too few samples for a tight latency gate; the full
  // run holds the monitored median within 2% of the quiet one.
  const double scrape_tolerance = opt.quick ? 1.5 : 1.02;
  if (scrapes.load() == 0 ||
      (quiet_p50 > 0 && scraped_p50 / quiet_p50 > scrape_tolerance)) {
    std::fprintf(stderr,
                 "FAIL: telemetry scrape shifted the warm p50 from %.3f "
                 "to %.3f ms (tolerance %.0f%%, %d scrapes)\n",
                 quiet_p50, scraped_p50, (scrape_tolerance - 1.0) * 100.0,
                 scrapes.load());
    rc = 1;
  }
  if (rss_growth_kb > 16 * 1024) {
    std::fprintf(stderr,
                 "FAIL: over-budget flood grew RSS by %ld KiB — "
                 "rejections must not allocate\n",
                 rss_growth_kb);
    rc = 1;
  }
  return rc;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--sessions" && i + 1 < argc) {
      opt.sessions = std::atoi(argv[++i]);
    } else if (arg == "--clients" && i + 1 < argc) {
      opt.clients = std::atoi(argv[++i]);
    } else if (arg == "--quick") {
      opt.quick = true;
      opt.sessions = 200;
      opt.clients = 8;
    } else {
      std::fprintf(stderr,
                   "usage: bench_server [--sessions N] [--clients N] "
                   "[--quick]\n");
      return 2;
    }
  }
  return run(opt);
}
