// Baseline comparison: CUBE's closed difference operator versus the
// Karavanic/Miller performance difference (which returns a focus list).
//
// The costs are similar — both integrate metadata and scan the severity
// volume — so closure costs nothing; what differs is capability: CUBE's
// result feeds straight back into further operators (measured here as
// diff-of-diffs), while the KM list is terminal.
#include <benchmark/benchmark.h>

#include "algebra/km_difference.hpp"
#include "algebra/operators.hpp"
#include "bench_util.hpp"

namespace {

using cube::bench::Shape;
using cube::bench::make_experiment;

std::pair<cube::Experiment, cube::Experiment> operand_pair(int64_t cnodes) {
  Shape s;
  s.cnodes = static_cast<std::size_t>(cnodes);
  cube::Experiment a = make_experiment(s);
  s.seed = 2;
  cube::Experiment b = make_experiment(s);
  return {std::move(a), std::move(b)};
}

void BM_CubeDifference(benchmark::State& state) {
  const auto [a, b] = operand_pair(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(cube::difference(a, b));
  }
}
BENCHMARK(BM_CubeDifference)->Arg(256)->Arg(1024);

void BM_KmDifference(benchmark::State& state) {
  const auto [a, b] = operand_pair(state.range(0));
  cube::KmOptions opts;
  opts.relative_threshold = 0.05;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cube::km_difference(a, b, opts));
  }
}
BENCHMARK(BM_KmDifference)->Arg(256)->Arg(1024);

void BM_CubeSecondOrderDifference(benchmark::State& state) {
  // Only possible with a closed operator: difference of differences.
  const auto [a, b] = operand_pair(state.range(0));
  Shape s;
  s.cnodes = static_cast<std::size_t>(state.range(0));
  s.seed = 3;
  const cube::Experiment c = make_experiment(s);
  for (auto _ : state) {
    const cube::Experiment d1 = cube::difference(a, c);
    const cube::Experiment d2 = cube::difference(b, c);
    benchmark::DoNotOptimize(cube::difference(d1, d2));
  }
}
BENCHMARK(BM_CubeSecondOrderDifference)->Arg(256);

}  // namespace

BENCHMARK_MAIN();
