// Ablation A1: operator cost versus experiment size.
//
// Sweeps the severity volume (metrics x call paths x threads) and measures
// difference, merge, and mean.  Operands share all metadata (the common
// case when comparing runs of the same binary), so the cost isolates
// severity extension + the element-wise pass.
#include <benchmark/benchmark.h>

#include "algebra/operators.hpp"
#include "bench_util.hpp"

namespace {

using cube::bench::Shape;
using cube::bench::make_experiment;

Shape shape_for(int64_t scale) {
  Shape s;
  s.metrics = 8;
  s.cnodes = static_cast<std::size_t>(scale);
  s.threads = 16;
  return s;
}

void BM_Difference(benchmark::State& state) {
  Shape s = shape_for(state.range(0));
  const cube::Experiment a = make_experiment(s);
  s.seed = 2;
  const cube::Experiment b = make_experiment(s);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cube::difference(a, b));
  }
  state.SetItemsProcessed(
      static_cast<int64_t>(state.iterations()) * state.range(0) * 8 * 16);
}
BENCHMARK(BM_Difference)->Arg(64)->Arg(256)->Arg(1024);

void BM_Merge(benchmark::State& state) {
  Shape s = shape_for(state.range(0));
  const cube::Experiment a = make_experiment(s);
  s.seed = 2;
  s.prefix = "n";  // disjoint metrics: the merge operator's use case
  const cube::Experiment b = make_experiment(s);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cube::merge(a, b));
  }
  state.SetItemsProcessed(
      static_cast<int64_t>(state.iterations()) * state.range(0) * 8 * 16);
}
BENCHMARK(BM_Merge)->Arg(64)->Arg(256)->Arg(1024);

void BM_Mean(benchmark::State& state) {
  Shape s = shape_for(state.range(0));
  std::vector<cube::Experiment> operands;
  for (std::uint64_t i = 0; i < 4; ++i) {
    s.seed = i + 1;
    operands.push_back(make_experiment(s));
  }
  std::vector<const cube::Experiment*> ptrs;
  for (const auto& e : operands) ptrs.push_back(&e);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        cube::mean(std::span<const cube::Experiment* const>(ptrs)));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0) * 8 * 16 * 4);
}
BENCHMARK(BM_Mean)->Arg(64)->Arg(256)->Arg(1024);

void BM_DifferenceSparseResult(benchmark::State& state) {
  Shape s = shape_for(state.range(0));
  s.fill = 0.05;
  const cube::Experiment a = make_experiment(s);
  s.seed = 2;
  const cube::Experiment b = make_experiment(s);
  cube::OperatorOptions opts;
  opts.storage = cube::StorageKind::Sparse;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cube::difference(a, b, opts));
  }
}
BENCHMARK(BM_DifferenceSparseResult)->Arg(256)->Arg(1024);

// --- Ablation A10: bulk kernels vs the per-cell reference path ------------

/// Sparse operands + sparse result at a fill rate given in permille
/// (1000 = fully dense occupancy down to 1 = 0.1 %).  The bulk sparse
/// kernels cost O(nnz); the per-cell reference walks every cell through
/// the virtual get/set interface regardless of occupancy.  The plane is
/// sized like a large parallel machine (1M cells) — the regime sparse
/// storage exists for.
std::pair<cube::Experiment, cube::Experiment> sparse_pair(
    int64_t fill_permille) {
  Shape s = shape_for(512);
  s.threads = 256;
  s.fill = static_cast<double>(fill_permille) / 1000.0;
  s.storage = cube::StorageKind::Sparse;
  cube::Experiment a = make_experiment(s);
  s.seed = 2;
  cube::Experiment b = make_experiment(s);
  return {std::move(a), std::move(b)};
}

void BM_DifferenceSparseFill(benchmark::State& state) {
  const auto [a, b] = sparse_pair(state.range(0));
  cube::OperatorOptions opts;
  opts.storage = cube::StorageKind::Sparse;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cube::difference(a, b, opts));
  }
  state.counters["nnz"] = static_cast<double>(
      a.severity().nonzero_count() + b.severity().nonzero_count());
}
BENCHMARK(BM_DifferenceSparseFill)->Arg(1000)->Arg(100)->Arg(10)->Arg(1);

void BM_DifferenceSparseFillReference(benchmark::State& state) {
  const auto [a, b] = sparse_pair(state.range(0));
  cube::OperatorOptions opts;
  opts.storage = cube::StorageKind::Sparse;
  opts.use_bulk_kernels = false;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cube::difference(a, b, opts));
  }
}
BENCHMARK(BM_DifferenceSparseFillReference)
    ->Arg(1000)
    ->Arg(100)
    ->Arg(10)
    ->Arg(1);

/// Identical-metadata dense operands: integration yields identity
/// mappings, so the bulk path runs the flat vectorizable kernel over
/// contiguous rows instead of the per-cell scatter.
void BM_DifferenceIdentityDense(benchmark::State& state) {
  Shape s = shape_for(state.range(0));
  const cube::Experiment a = make_experiment(s);
  s.seed = 2;
  const cube::Experiment b = make_experiment(s);
  cube::OperatorOptions opts;
  opts.use_bulk_kernels = state.range(1) != 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cube::difference(a, b, opts));
  }
  state.SetItemsProcessed(
      static_cast<int64_t>(state.iterations()) * state.range(0) * 8 * 16);
}
BENCHMARK(BM_DifferenceIdentityDense)
    ->ArgNames({"cnodes", "bulk"})
    ->Args({1024, 1})
    ->Args({1024, 0});

// mode: 0 = per-cell reference, 1 = per-operand bulk kernels,
//       2 = batched SoA scalar, 3 = batched SoA + SIMD (docs/KERNELS.md).
void BM_MeanIdentityDense(benchmark::State& state) {
  Shape s = shape_for(state.range(0));
  std::vector<cube::Experiment> operands;
  for (std::uint64_t i = 0; i < 4; ++i) {
    s.seed = i + 1;
    operands.push_back(make_experiment(s));
  }
  std::vector<const cube::Experiment*> ptrs;
  for (const auto& e : operands) ptrs.push_back(&e);
  cube::OperatorOptions opts;
  const std::int64_t mode = state.range(1);
  opts.use_bulk_kernels = mode >= 1;
  opts.use_batch_kernels = mode >= 2;
  opts.simd_policy = mode >= 3 ? cube::simd::Policy::Auto
                               : cube::simd::Policy::ForceScalar;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        cube::mean(std::span<const cube::Experiment* const>(ptrs), opts));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0) * 8 * 16 * 4);
}
BENCHMARK(BM_MeanIdentityDense)
    ->ArgNames({"cnodes", "mode"})
    ->Args({1024, 3})
    ->Args({1024, 2})
    ->Args({1024, 1})
    ->Args({1024, 0});

// --- Ablation A11: shared-metadata fast path vs structural merge ----------

/// Digest-equal operands (repeated runs of one binary).  With sharing on
/// (the default) integration compares one u64 per operand and reuses the
/// first operand's instance; forced off, it re-merges all three forests
/// per call.  The severity pass is identical in both, so the delta IS the
/// integration cost the digest removes.
void BM_DifferenceMetadataPath(benchmark::State& state) {
  Shape s = shape_for(state.range(0));
  const cube::Experiment a = make_experiment(s);
  s.seed = 2;
  const cube::Experiment b = make_experiment(s);
  cube::OperatorOptions opts;
  opts.integration.reuse_identical_metadata = state.range(1) != 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cube::difference(a, b, opts));
  }
  state.SetItemsProcessed(
      static_cast<int64_t>(state.iterations()) * state.range(0) * 8 * 16);
}
BENCHMARK(BM_DifferenceMetadataPath)
    ->ArgNames({"cnodes", "shared"})
    ->Args({256, 1})
    ->Args({256, 0})
    ->Args({1024, 1})
    ->Args({1024, 0});

void BM_MeanMetadataPath(benchmark::State& state) {
  Shape s = shape_for(state.range(0));
  std::vector<cube::Experiment> operands;
  for (std::uint64_t i = 0; i < 8; ++i) {
    s.seed = i + 1;
    operands.push_back(make_experiment(s));
  }
  std::vector<const cube::Experiment*> ptrs;
  for (const auto& e : operands) ptrs.push_back(&e);
  cube::OperatorOptions opts;
  opts.integration.reuse_identical_metadata = state.range(1) != 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        cube::mean(std::span<const cube::Experiment* const>(ptrs), opts));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0) * 8 * 16 * 8);
}
BENCHMARK(BM_MeanMetadataPath)
    ->ArgNames({"cnodes", "shared"})
    ->Args({256, 1})
    ->Args({256, 0})
    ->Args({1024, 1})
    ->Args({1024, 0});

}  // namespace

BENCHMARK_MAIN();
