// Ablation A1: operator cost versus experiment size.
//
// Sweeps the severity volume (metrics x call paths x threads) and measures
// difference, merge, and mean.  Operands share all metadata (the common
// case when comparing runs of the same binary), so the cost isolates
// severity extension + the element-wise pass.
#include <benchmark/benchmark.h>

#include "algebra/operators.hpp"
#include "bench_util.hpp"

namespace {

using cube::bench::Shape;
using cube::bench::make_experiment;

Shape shape_for(int64_t scale) {
  Shape s;
  s.metrics = 8;
  s.cnodes = static_cast<std::size_t>(scale);
  s.threads = 16;
  return s;
}

void BM_Difference(benchmark::State& state) {
  Shape s = shape_for(state.range(0));
  const cube::Experiment a = make_experiment(s);
  s.seed = 2;
  const cube::Experiment b = make_experiment(s);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cube::difference(a, b));
  }
  state.SetItemsProcessed(
      static_cast<int64_t>(state.iterations()) * state.range(0) * 8 * 16);
}
BENCHMARK(BM_Difference)->Arg(64)->Arg(256)->Arg(1024);

void BM_Merge(benchmark::State& state) {
  Shape s = shape_for(state.range(0));
  const cube::Experiment a = make_experiment(s);
  s.seed = 2;
  s.prefix = "n";  // disjoint metrics: the merge operator's use case
  const cube::Experiment b = make_experiment(s);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cube::merge(a, b));
  }
  state.SetItemsProcessed(
      static_cast<int64_t>(state.iterations()) * state.range(0) * 8 * 16);
}
BENCHMARK(BM_Merge)->Arg(64)->Arg(256)->Arg(1024);

void BM_Mean(benchmark::State& state) {
  Shape s = shape_for(state.range(0));
  std::vector<cube::Experiment> operands;
  for (std::uint64_t i = 0; i < 4; ++i) {
    s.seed = i + 1;
    operands.push_back(make_experiment(s));
  }
  std::vector<const cube::Experiment*> ptrs;
  for (const auto& e : operands) ptrs.push_back(&e);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        cube::mean(std::span<const cube::Experiment* const>(ptrs)));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0) * 8 * 16 * 4);
}
BENCHMARK(BM_Mean)->Arg(64)->Arg(256)->Arg(1024);

void BM_DifferenceSparseResult(benchmark::State& state) {
  Shape s = shape_for(state.range(0));
  s.fill = 0.05;
  const cube::Experiment a = make_experiment(s);
  s.seed = 2;
  const cube::Experiment b = make_experiment(s);
  cube::OperatorOptions opts;
  opts.storage = cube::StorageKind::Sparse;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cube::difference(a, b, opts));
  }
}
BENCHMARK(BM_DifferenceSparseResult)->Arg(256)->Arg(1024);

}  // namespace

BENCHMARK_MAIN();
