// Ablation A4: file-format throughput and size — CUBE XML (the paper's
// format) versus the compact binary extension.
#include <benchmark/benchmark.h>

#include "bench_util.hpp"
#include "io/binary_format.hpp"
#include "io/cube_format.hpp"

namespace {

using cube::bench::Shape;
using cube::bench::make_experiment;

cube::Experiment subject(int64_t cnodes) {
  Shape s;
  s.cnodes = static_cast<std::size_t>(cnodes);
  return make_experiment(s);
}

void BM_XmlWrite(benchmark::State& state) {
  const cube::Experiment e = subject(state.range(0));
  std::size_t bytes = 0;
  for (auto _ : state) {
    const std::string xml = cube::to_cube_xml(e);
    bytes = xml.size();
    benchmark::DoNotOptimize(xml);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations() * bytes));
  state.counters["bytes"] = static_cast<double>(bytes);
}
BENCHMARK(BM_XmlWrite)->Arg(64)->Arg(256)->Arg(1024);

void BM_XmlRead(benchmark::State& state) {
  const std::string xml = cube::to_cube_xml(subject(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(cube::read_cube_xml(xml));
  }
  state.SetBytesProcessed(
      static_cast<int64_t>(state.iterations() * xml.size()));
}
BENCHMARK(BM_XmlRead)->Arg(64)->Arg(256)->Arg(1024);

void BM_BinaryWrite(benchmark::State& state) {
  const cube::Experiment e = subject(state.range(0));
  std::size_t bytes = 0;
  for (auto _ : state) {
    const std::string data = cube::to_cube_binary(e);
    bytes = data.size();
    benchmark::DoNotOptimize(data);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations() * bytes));
  state.counters["bytes"] = static_cast<double>(bytes);
}
BENCHMARK(BM_BinaryWrite)->Arg(64)->Arg(256)->Arg(1024);

void BM_BinaryRead(benchmark::State& state) {
  const std::string data = cube::to_cube_binary(subject(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(cube::read_cube_binary(data));
  }
  state.SetBytesProcessed(
      static_cast<int64_t>(state.iterations() * data.size()));
}
BENCHMARK(BM_BinaryRead)->Arg(64)->Arg(256)->Arg(1024);

}  // namespace

BENCHMARK_MAIN();
