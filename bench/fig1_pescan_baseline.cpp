// Reproduces the paper's Figure 1: the CUBE display of the unoptimized
// PESCAN run with the Wait-at-Barrier metric selected, numbers as
// percentages of the overall execution time.
//
// Paper reference point: "A large fraction of the execution time is spent
// waiting in front of barriers (13.2 %)."
#include <iostream>

#include "common/string_util.hpp"
#include "common/text_table.hpp"
#include "display/browser.hpp"
#include "expert/analyzer.hpp"
#include "expert/patterns.hpp"
#include "sim/apps/pescan.hpp"
#include "sim/engine.hpp"

int main() {
  std::cout << "=== Figure 1: CUBE display of unoptimized PESCAN ===\n"
            << "(16 processes on four 4-way SMP nodes, trace-based EXPERT "
               "analysis)\n\n";

  cube::sim::SimConfig cfg;
  cfg.monitor.trace = true;
  cfg.noise.relative = 0.01;
  cfg.noise.seed = 42;
  cube::sim::RegionTable regions;
  cube::sim::PescanConfig pc;  // with_barriers defaults to true
  const auto run = cube::sim::Engine(cfg).run(
      regions, cube::sim::build_pescan(regions, cfg.cluster, pc));

  const cube::Experiment e = cube::expert::analyze_trace(
      run.trace, {.experiment_name = "pescan-original"});

  cube::Browser browser(e);
  browser.execute("select metric " +
                  std::string(cube::expert::kWaitBarrier));
  browser.execute("select call MPI_Barrier");
  browser.execute("mode percent");
  std::cout << browser.execute("show") << "\n";

  // Paper-vs-measured summary for the headline number.
  const cube::Metric& time = *e.metadata().find_metric(cube::expert::kTime);
  const double total = e.sum_metric_tree(time);
  const auto pct = [&](std::string_view name) {
    return 100.0 * e.sum_metric(*e.metadata().find_metric(name)) / total;
  };

  cube::TextTable table;
  table.set_header({"metric", "measured %", "paper %"});
  table.set_align({cube::Align::Left, cube::Align::Right,
                   cube::Align::Right});
  table.add_row({"Wait at Barrier",
                 cube::format_value(pct(cube::expert::kWaitBarrier)),
                 "13.2"});
  table.add_row({"Barrier Completion",
                 cube::format_value(pct(cube::expert::kBarrierCompletion)),
                 "(small)"});
  table.add_row({"Late Sender",
                 cube::format_value(pct(cube::expert::kLateSender)),
                 "(present)"});
  table.add_row({"Wait at N x N",
                 cube::format_value(pct(cube::expert::kWaitNxN)),
                 "(small)"});
  std::cout << table.str();
  return 0;
}
