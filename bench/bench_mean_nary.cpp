// Ablation A6: n-ary mean in a single pass versus cascading binary
// operations.
//
// Because the operators are closed, a user could emulate an n-ary summary
// by cascading binary applications — but each application re-runs metadata
// integration and allocates a full derived experiment.  The n-ary mean
// integrates once.  This bench quantifies the difference, which grows with
// the operand count.
#include <benchmark/benchmark.h>

#include "algebra/operators.hpp"
#include "bench_util.hpp"

namespace {

using cube::bench::Shape;
using cube::bench::make_experiment;

std::vector<cube::Experiment> operands(int64_t n) {
  std::vector<cube::Experiment> out;
  Shape s;
  s.cnodes = 256;
  for (std::int64_t i = 0; i < n; ++i) {
    s.seed = static_cast<std::uint64_t>(i) + 1;
    out.push_back(make_experiment(s));
  }
  return out;
}

void BM_MeanSinglePass(benchmark::State& state) {
  const auto ops = operands(state.range(0));
  std::vector<const cube::Experiment*> ptrs;
  for (const auto& e : ops) ptrs.push_back(&e);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        cube::mean(std::span<const cube::Experiment* const>(ptrs)));
  }
}
BENCHMARK(BM_MeanSinglePass)->Arg(2)->Arg(4)->Arg(8)->Arg(16);

void BM_MeanCascadedBinary(benchmark::State& state) {
  // Emulates the n-ary mean with closed binary steps: a running "sum"
  // experiment built by pairwise weighted means.  Equivalent result (up to
  // rounding) at the cost of n-1 integrations and intermediates.
  const auto ops = operands(state.range(0));
  for (auto _ : state) {
    cube::Experiment acc = ops[0].clone();
    for (std::size_t i = 1; i < ops.size(); ++i) {
      // mean of (acc weighted i, next weighted 1): realized via the
      // public binary API as repeated two-operand means; the weighting
      // error is irrelevant for a cost comparison.
      const cube::Experiment* pair[] = {&acc, &ops[i]};
      acc = cube::mean(std::span<const cube::Experiment* const>(pair, 2));
    }
    benchmark::DoNotOptimize(acc);
  }
}
BENCHMARK(BM_MeanCascadedBinary)->Arg(2)->Arg(4)->Arg(8)->Arg(16);

}  // namespace

BENCHMARK_MAIN();
