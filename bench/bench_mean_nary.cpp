// Ablation A6/A14: n-ary series reduction in a single batched sweep
// versus per-operand kernels versus cascading binary operations.
//
// Because the operators are closed, a user could emulate an n-ary summary
// by cascading binary applications — but each application re-runs metadata
// integration and allocates a full derived experiment, so a 64-run series
// costs 63 traversals of the cell space.  The batched path (docs/KERNELS.md)
// integrates once and folds all operands per SoA tile in ONE sweep.
//
// The benchmarks sweep the batch width N in {2..64} over the four operand
// classes (dense/sparse x identity/remap), with per-operand and
// scalar-SIMD ablations.  `--verify` runs a self-checking smoke for CI:
// it asserts the batched path actually fired on a 64-run dense series
// (one application, width 64, single chunked sweep), that all four paths
// agree bit-for-bit, and that batching beats the pre-batch configuration
// (63 binary steps over the per-operand scalar kernels) end-to-end —
// ~4x measured, gated at 3x for noise headroom.
#include <benchmark/benchmark.h>

#include <bit>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <functional>
#include <span>
#include <vector>

#include "algebra/batch.hpp"
#include "algebra/operators.hpp"
#include "algebra/simd.hpp"
#include "bench_util.hpp"
#include "obs/metrics.hpp"

namespace {

using cube::bench::Shape;
using cube::bench::make_experiment;

enum class Variant : std::int64_t {
  DenseIdentity = 0,
  DenseRemap = 1,
  SparseIdentity = 2,
  SparseRemap = 3,
};

const char* variant_name(Variant v) {
  switch (v) {
    case Variant::DenseIdentity: return "dense-identity";
    case Variant::DenseRemap: return "dense-remap";
    case Variant::SparseIdentity: return "sparse-identity";
    case Variant::SparseRemap: return "sparse-remap";
  }
  return "?";
}

std::vector<cube::Experiment> operands(std::int64_t n, Variant variant,
                                       std::size_t cnodes = 256) {
  std::vector<cube::Experiment> out;
  for (std::int64_t i = 0; i < n; ++i) {
    Shape s;
    s.cnodes = cnodes;
    s.seed = static_cast<std::uint64_t>(i) + 1;
    switch (variant) {
      case Variant::DenseIdentity:
        break;
      case Variant::DenseRemap:
        // Same prefix, shrinking call trees: later operands remap onto a
        // prefix of the integrated space (operand 0 stays the identity).
        s.cnodes = cnodes - 4 * (static_cast<std::size_t>(i) % 8);
        break;
      case Variant::SparseIdentity:
        s.storage = cube::StorageKind::Sparse;
        s.fill = 0.05;
        break;
      case Variant::SparseRemap:
        s.storage = cube::StorageKind::Sparse;
        s.fill = 0.05;
        s.cnodes = cnodes - 4 * (static_cast<std::size_t>(i) % 8);
        break;
    }
    out.push_back(make_experiment(s));
  }
  return out;
}

std::vector<const cube::Experiment*> pointers(
    const std::vector<cube::Experiment>& ops) {
  std::vector<const cube::Experiment*> ptrs;
  for (const auto& e : ops) ptrs.push_back(&e);
  return ptrs;
}

/// mean() under the given kernel configuration.
cube::Experiment run_mean(const std::vector<const cube::Experiment*>& ptrs,
                          bool batch, cube::simd::Policy policy,
                          cube::obs::MetricsRegistry* metrics = nullptr) {
  cube::OperatorOptions options;
  options.use_batch_kernels = batch;
  options.simd_policy = policy;
  options.metrics = metrics;
  return cube::mean(std::span<const cube::Experiment* const>(ptrs), options);
}

void BM_MeanSinglePass(benchmark::State& state) {
  const auto ops = operands(state.range(0), Variant(state.range(1)));
  const auto ptrs = pointers(ops);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        run_mean(ptrs, true, cube::simd::Policy::Auto));
  }
  state.SetLabel(variant_name(Variant(state.range(1))));
}

void BM_MeanBatchScalar(benchmark::State& state) {
  const auto ops = operands(state.range(0), Variant(state.range(1)));
  const auto ptrs = pointers(ops);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        run_mean(ptrs, true, cube::simd::Policy::ForceScalar));
  }
  state.SetLabel(variant_name(Variant(state.range(1))));
}

void BM_MeanPerOperand(benchmark::State& state) {
  const auto ops = operands(state.range(0), Variant(state.range(1)));
  const auto ptrs = pointers(ops);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        run_mean(ptrs, false, cube::simd::Policy::Auto));
  }
  state.SetLabel(variant_name(Variant(state.range(1))));
}

void BM_MeanCascadedBinary(benchmark::State& state) {
  // Emulates the n-ary mean with closed binary steps: n-1 integrations
  // and intermediates versus one.  The weighting error is irrelevant for
  // a cost comparison.
  const auto ops = operands(state.range(0), Variant(state.range(1)));
  for (auto _ : state) {
    cube::Experiment acc = ops[0].clone();
    for (std::size_t i = 1; i < ops.size(); ++i) {
      const cube::Experiment* pair[] = {&acc, &ops[i]};
      acc = cube::mean(std::span<const cube::Experiment* const>(pair, 2));
    }
    benchmark::DoNotOptimize(acc);
  }
  state.SetLabel(variant_name(Variant(state.range(1))));
}

void sweep(benchmark::internal::Benchmark* b) {
  for (const std::int64_t variant : {0, 1, 2, 3}) {
    for (const std::int64_t n : {2, 4, 8, 16, 32, 64}) {
      b->Args({n, variant});
    }
  }
}

BENCHMARK(BM_MeanSinglePass)->Apply(sweep);
BENCHMARK(BM_MeanBatchScalar)->Apply(sweep);
BENCHMARK(BM_MeanPerOperand)->Apply(sweep);
BENCHMARK(BM_MeanCascadedBinary)
    ->Args({8, 0})
    ->Args({16, 0})
    ->Args({32, 0})
    ->Args({64, 0})
    ->Args({16, 2})
    ->Args({64, 2});

bool bit_identical(const cube::Experiment& a, const cube::Experiment& b) {
  const cube::Metadata& md = a.metadata();
  if (b.metadata().num_metrics() != md.num_metrics() ||
      b.metadata().num_cnodes() != md.num_cnodes() ||
      b.metadata().num_threads() != md.num_threads()) {
    return false;
  }
  for (cube::MetricIndex m = 0; m < md.num_metrics(); ++m) {
    for (cube::CnodeIndex c = 0; c < md.num_cnodes(); ++c) {
      for (cube::ThreadIndex t = 0; t < md.num_threads(); ++t) {
        if (std::bit_cast<std::uint64_t>(a.severity().get(m, c, t)) !=
            std::bit_cast<std::uint64_t>(b.severity().get(m, c, t))) {
          return false;
        }
      }
    }
  }
  return true;
}

double seconds_of(const std::function<void()>& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  fn();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

/// CI smoke: the batched path must fire on a 64-run dense series, agree
/// with every other path bit-for-bit, and beat the pre-batch scalar
/// binary cascade end-to-end (~4x measured, 3x floor).
int verify() {
  constexpr std::int64_t kRuns = 64;
  // Mid-size profiles (8 metrics x 512 call paths, 1 MB of severity per
  // run): the batched path streams all 64 operands once through
  // last-level cache, while the old cascade runs 63 binary steps whose
  // scalar read-modify-write of a full intermediate experiment per step
  // thrashes L2.  Measured ~4x here (EXPERIMENTS.md A14); very large
  // series flatten to ~3x only because this machine's 260 MB L3 keeps
  // the cascade's intermediates cache-resident.
  constexpr std::size_t kVerifyCnodes = 512;
  std::printf("simd backend: %s\n",
              cube::simd::backend_name(cube::simd::active_backend()));
  const auto ops = operands(kRuns, Variant::DenseIdentity, kVerifyCnodes);
  const auto ptrs = pointers(ops);

  cube::obs::MetricsRegistry stats;
  cube::Experiment batched =
      run_mean(ptrs, true, cube::simd::Policy::Auto, &stats);
  const auto count = [&stats](const char* name) {
    return stats.counter(name).value();
  };
  const std::uint64_t applications =
      count(cube::kernel_counters::kApplications);
  const std::uint64_t width = count(cube::kernel_counters::kBatchWidth);
  const std::uint64_t chunks = count(cube::kernel_counters::kChunks);
  const std::uint64_t tiles = count(cube::kernel_counters::kBatchTiles);
  std::printf(
      "counters: applications=%llu batch_width=%llu chunks=%llu "
      "batch_tiles=%llu\n",
      static_cast<unsigned long long>(applications),
      static_cast<unsigned long long>(width),
      static_cast<unsigned long long>(chunks),
      static_cast<unsigned long long>(tiles));
  if (applications != 1 || width != kRuns ||
      chunks > cube::batch::kMaxCellChunks || tiles == 0) {
    std::printf("FAIL: batched path did not take a single chunked sweep\n");
    return 1;
  }

  cube::OperatorOptions reference;
  reference.use_bulk_kernels = false;
  const cube::Experiment want =
      cube::mean(std::span<const cube::Experiment* const>(ptrs), reference);
  if (!bit_identical(batched, want) ||
      !bit_identical(run_mean(ptrs, true, cube::simd::Policy::ForceScalar),
                     want) ||
      !bit_identical(run_mean(ptrs, false, cube::simd::Policy::Auto), want)) {
    std::printf("FAIL: kernel paths disagree with the reference\n");
    return 1;
  }
  std::printf("bit-identity: reference == per-operand == batch-scalar == "
              "batch-simd\n");

  // End-to-end, new versus old: one batched SIMD n-ary mean against the
  // path the same series took before the batched layout existed — 63
  // binary applications over the per-operand scalar kernels, each one
  // re-integrating metadata and allocating a full intermediate
  // experiment.  (A binary mean with default options would itself take
  // the new width-2 batched path now, so the cascade pins the pre-batch
  // configuration explicitly.)  Warmed by the runs above; take the best
  // of 3 to damp scheduler noise.
  cube::OperatorOptions pre_batch;
  pre_batch.use_batch_kernels = false;
  pre_batch.simd_policy = cube::simd::Policy::ForceScalar;
  double batched_s = 1e9, cascade_s = 1e9;
  for (int rep = 0; rep < 3; ++rep) {
    batched_s = std::min(batched_s, seconds_of([&] {
      benchmark::DoNotOptimize(
          run_mean(ptrs, true, cube::simd::Policy::Auto));
    }));
    cascade_s = std::min(cascade_s, seconds_of([&] {
      cube::Experiment acc = ops[0].clone();
      for (std::size_t i = 1; i < ops.size(); ++i) {
        const cube::Experiment* pair[] = {&acc, &ops[i]};
        acc = cube::mean(std::span<const cube::Experiment* const>(pair, 2),
                         pre_batch);
      }
      benchmark::DoNotOptimize(acc);
    }));
  }
  const double speedup = cascade_s / batched_s;
  std::printf("batched %.3f ms vs scalar binary cascade %.3f ms: %.1fx\n",
              batched_s * 1e3, cascade_s * 1e3, speedup);
  // Typically ~4x on an idle core (EXPERIMENTS.md A14); assert a 3x
  // floor so a noisy neighbour on a shared vCPU cannot flake CI.
  if (speedup < 3.0) {
    std::printf("FAIL: expected >= 3x over the scalar binary cascade\n");
    return 1;
  }
  std::printf("PASS\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--verify") == 0) return verify();
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
