// Reproduces the paper's §5.2 trace-size argument: "recording one or more
// hardware-counter values as part of nearly every event record can
// increase trace-file size dramatically ... it is now possible to record
// hardware-counter and trace data separately", with the counters collected
// as a far smaller call-graph profile and integrated via merge.
#include <iostream>

#include "common/string_util.hpp"
#include "common/text_table.hpp"
#include "cone/profiler.hpp"
#include "io/cube_format.hpp"
#include "sim/apps/sweep3d.hpp"
#include "sim/engine.hpp"

namespace {

cube::sim::RunResult run_sweep(
    std::optional<cube::counters::EventSet> payload) {
  cube::sim::SimConfig cfg;
  cfg.monitor.trace = true;
  cfg.monitor.trace_counters = std::move(payload);
  cube::sim::RegionTable regions;
  cube::sim::Sweep3dConfig sc;
  return cube::sim::Engine(cfg).run(
      regions, cube::sim::build_sweep3d(regions, cfg.cluster, sc));
}

}  // namespace

int main() {
  std::cout << "=== Table: trace-file size with and without per-event "
               "counters (paper section 5.2) ===\n\n";

  const auto plain = run_sweep(std::nullopt);
  const auto fat = run_sweep(cube::counters::event_set_cache());

  // The separate-profile alternative: a CONE call-graph profile stored as
  // a CUBE file.
  cube::cone::ConeOptions opts;
  opts.event_set = cube::counters::event_set_cache();
  const cube::Experiment profile = cube::cone::profile_run(plain, opts);
  const std::size_t profile_bytes = cube::to_cube_xml(profile).size();

  const std::size_t plain_bytes = plain.trace.byte_size();
  const std::size_t fat_bytes = fat.trace.byte_size();

  cube::TextTable table;
  table.set_header({"artifact", "bytes", "vs plain trace"});
  table.set_align(
      {cube::Align::Left, cube::Align::Right, cube::Align::Right});
  table.add_row({"event trace, no counters", std::to_string(plain_bytes),
                 "1.00x"});
  table.add_row(
      {"event trace + 4 counters per record", std::to_string(fat_bytes),
       cube::format_value(static_cast<double>(fat_bytes) / plain_bytes, 2) +
           "x"});
  table.add_row(
      {"separate CONE profile (CUBE XML)", std::to_string(profile_bytes),
       cube::format_value(static_cast<double>(profile_bytes) / plain_bytes,
                          2) +
           "x"});
  table.add_row(
      {"trace + separate profile",
       std::to_string(plain_bytes + profile_bytes),
       cube::format_value(
           static_cast<double>(plain_bytes + profile_bytes) / plain_bytes,
           2) +
           "x"});
  std::cout << table.str() << "\n";
  std::cout << "counter payload inflates the trace by "
            << cube::format_value(
                   100.0 * (static_cast<double>(fat_bytes) - plain_bytes) /
                       plain_bytes,
                   1)
            << " %; recording counters as a separate profile and merging "
               "costs only "
            << cube::format_value(
                   100.0 * static_cast<double>(profile_bytes) / plain_bytes,
                   1)
            << " % of the trace size\n";
  return 0;
}
