// Reproduces the paper's Figure 2: the difference experiment obtained by
// subtracting the optimized PESCAN version (barriers removed) from the
// original one, values normalized to the old version's execution time.
//
// Expected shape (paper): barrier-related times (waiting, execution,
// completion) virtually eliminated — raised relief; point-to-point and
// Wait-at-NxN increased as waiting migrates — sunken relief; gross balance
// clearly positive.
#include <iostream>

#include "algebra/operators.hpp"
#include "common/string_util.hpp"
#include "common/text_table.hpp"
#include "display/browser.hpp"
#include "expert/analyzer.hpp"
#include "expert/patterns.hpp"
#include "sim/apps/pescan.hpp"
#include "sim/engine.hpp"

namespace {

cube::Experiment analyze(bool with_barriers, std::uint64_t seed,
                         const std::string& name) {
  cube::sim::SimConfig cfg;
  cfg.monitor.trace = true;
  cfg.noise.relative = 0.01;
  cfg.noise.seed = seed;
  cube::sim::RegionTable regions;
  cube::sim::PescanConfig pc;
  pc.with_barriers = with_barriers;
  const auto run = cube::sim::Engine(cfg).run(
      regions, cube::sim::build_pescan(regions, cfg.cluster, pc));
  return cube::expert::analyze_trace(run.trace, {.experiment_name = name});
}

}  // namespace

int main() {
  std::cout << "=== Figure 2: difference experiment for PESCAN ===\n\n";

  const cube::Experiment before = analyze(true, 42, "pescan-original");
  const cube::Experiment after = analyze(false, 43, "pescan-optimized");
  const cube::Experiment diff = cube::difference(before, after);

  const cube::Metric& time =
      *before.metadata().find_metric(cube::expert::kTime);
  const double old_total = before.sum_metric_tree(time);

  cube::Browser browser(diff);
  browser.execute("select metric " +
                  std::string(cube::expert::kWaitBarrier));
  browser.execute("mode external " + std::to_string(old_total));
  std::cout << browser.execute("show") << "\n";

  const auto change = [&](std::string_view name) {
    return 100.0 * diff.sum_metric(*diff.metadata().find_metric(name)) /
           old_total;
  };
  cube::TextTable table;
  table.set_header(
      {"metric", "change (% of old total)", "paper expectation"});
  table.set_align({cube::Align::Left, cube::Align::Right,
                   cube::Align::Left});
  table.add_row({"Wait at Barrier",
                 cube::format_value(change(cube::expert::kWaitBarrier)),
                 "large gain (raised relief)"});
  table.add_row({"Barrier (execution)",
                 cube::format_value(change(cube::expert::kBarrier)),
                 "gain"});
  table.add_row({"Barrier Completion",
                 cube::format_value(change(cube::expert::kBarrierCompletion)),
                 "gain"});
  table.add_row({"Wait at N x N",
                 cube::format_value(change(cube::expert::kWaitNxN)),
                 "loss (migration)"});
  table.add_row({"P2P",
                 cube::format_value(change(cube::expert::kP2p)),
                 "loss (migration)"});
  table.add_row({"Late Sender",
                 cube::format_value(change(cube::expert::kLateSender)),
                 "loss (migration)"});
  const double gross =
      100.0 *
      diff.sum_metric_tree(*diff.metadata().find_metric(cube::expert::kTime)) /
      old_total;
  table.add_row({"gross balance (Time)", cube::format_value(gross),
                 "clearly positive"});
  std::cout << table.str();
  return 0;
}
