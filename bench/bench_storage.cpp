// Ablation A3: dense vs sparse severity storage.
//
// Compares point access, accumulation, and full scans at several fill
// factors, and reports the memory footprint of each store as a counter.
// Real experiments are sparse along the (metric x call path) plane — a
// communication metric is zero in compute call paths — which is what makes
// the hash-map store attractive despite slower point access.
#include <benchmark/benchmark.h>

#include "common/rng.hpp"
#include "model/severity.hpp"

namespace {

using cube::MetricIndex;
using cube::SeverityStore;
using cube::StorageKind;

constexpr std::size_t kMetrics = 16;
constexpr std::size_t kCnodes = 256;
constexpr std::size_t kThreads = 32;

std::unique_ptr<SeverityStore> filled(StorageKind kind, double fill,
                                      std::uint64_t seed = 7) {
  auto store = cube::make_severity_store(kind, kMetrics, kCnodes, kThreads);
  cube::SplitMix64 rng(seed);
  for (std::size_t m = 0; m < kMetrics; ++m) {
    for (std::size_t c = 0; c < kCnodes; ++c) {
      for (std::size_t t = 0; t < kThreads; ++t) {
        if (rng.uniform() < fill) store->set(m, c, t, rng.uniform());
      }
    }
  }
  return store;
}

StorageKind kind_of(int64_t arg) {
  return arg == 0 ? StorageKind::Dense : StorageKind::Sparse;
}

void BM_PointAccess(benchmark::State& state) {
  const auto store = filled(kind_of(state.range(0)), 0.3);
  cube::SplitMix64 rng(3);
  for (auto _ : state) {
    const auto m = rng.below(kMetrics);
    const auto c = rng.below(kCnodes);
    const auto t = rng.below(kThreads);
    benchmark::DoNotOptimize(store->get(m, c, t));
  }
  state.counters["bytes"] = static_cast<double>(store->memory_bytes());
}
BENCHMARK(BM_PointAccess)->Arg(0)->Arg(1);

void BM_Accumulate(benchmark::State& state) {
  auto store = filled(kind_of(state.range(0)), 0.3);
  cube::SplitMix64 rng(5);
  for (auto _ : state) {
    store->add(rng.below(kMetrics), rng.below(kCnodes), rng.below(kThreads),
               1.0);
  }
}
BENCHMARK(BM_Accumulate)->Arg(0)->Arg(1);

void BM_FullScan(benchmark::State& state) {
  const auto store = filled(kind_of(state.range(0)), 0.3);
  for (auto _ : state) {
    double sum = 0;
    for (std::size_t m = 0; m < kMetrics; ++m) {
      for (std::size_t c = 0; c < kCnodes; ++c) {
        for (std::size_t t = 0; t < kThreads; ++t) {
          sum += store->get(m, c, t);
        }
      }
    }
    benchmark::DoNotOptimize(sum);
  }
}
BENCHMARK(BM_FullScan)->Arg(0)->Arg(1);

// Memory trade-off across fill factors: bytes per non-zero entry.
void BM_MemoryFootprint(benchmark::State& state) {
  const double fill = static_cast<double>(state.range(1)) / 100.0;
  std::unique_ptr<SeverityStore> store;
  for (auto _ : state) {
    store = filled(kind_of(state.range(0)), fill);
    benchmark::DoNotOptimize(store);
  }
  state.counters["bytes"] = static_cast<double>(store->memory_bytes());
  state.counters["nonzero"] = static_cast<double>(store->nonzero_count());
}
BENCHMARK(BM_MemoryFootprint)
    ->Args({0, 1})
    ->Args({1, 1})
    ->Args({0, 10})
    ->Args({1, 10})
    ->Args({0, 60})
    ->Args({1, 60});

}  // namespace

BENCHMARK_MAIN();
