// Ablation A2: metadata integration cost for identical, partially
// overlapping, and fully disjoint operand metadata.
//
// Integration dominates operator cost when metadata is large relative to
// the severity volume; the top-down structural merge touches every node of
// every operand once per sibling-group scan.
#include <benchmark/benchmark.h>

#include "algebra/integration.hpp"
#include "bench_util.hpp"

namespace {

using cube::bench::Shape;
using cube::bench::make_experiment;

void BM_IntegrateIdentical(benchmark::State& state) {
  Shape s;
  s.cnodes = static_cast<std::size_t>(state.range(0));
  const cube::Experiment a = make_experiment(s);
  s.seed = 2;
  const cube::Experiment b = make_experiment(s);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cube::integrate_metadata(a, b));
  }
}
BENCHMARK(BM_IntegrateIdentical)->Arg(64)->Arg(256)->Arg(1024);

void BM_IntegrateDisjoint(benchmark::State& state) {
  Shape s;
  s.cnodes = static_cast<std::size_t>(state.range(0));
  const cube::Experiment a = make_experiment(s);
  s.prefix = "n";
  const cube::Experiment b = make_experiment(s);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cube::integrate_metadata(a, b));
  }
}
BENCHMARK(BM_IntegrateDisjoint)->Arg(64)->Arg(256)->Arg(1024);

void BM_IntegrateNaryIdentical(benchmark::State& state) {
  Shape s;
  s.cnodes = 256;
  std::vector<cube::Experiment> operands;
  for (std::int64_t i = 0; i < state.range(0); ++i) {
    s.seed = static_cast<std::uint64_t>(i) + 1;
    operands.push_back(make_experiment(s));
  }
  std::vector<const cube::Experiment*> ptrs;
  for (const auto& e : operands) ptrs.push_back(&e);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cube::integrate_metadata(
        std::span<const cube::Experiment* const>(ptrs), {}));
  }
}
BENCHMARK(BM_IntegrateNaryIdentical)->Arg(2)->Arg(4)->Arg(8)->Arg(16);

void BM_IntegrateCollapsePolicy(benchmark::State& state) {
  Shape s;
  s.cnodes = 256;
  const cube::Experiment a = make_experiment(s);
  s.seed = 2;
  const cube::Experiment b = make_experiment(s);
  cube::IntegrationOptions opts;
  opts.system_policy = cube::SystemMergePolicy::Collapse;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cube::integrate_metadata(a, b, opts));
  }
}
BENCHMARK(BM_IntegrateCollapsePolicy);

}  // namespace

BENCHMARK_MAIN();
