// bench_repo_scale: out-of-core repository scaling (EXPERIMENTS.md, A15).
//
// Two self-checking gates over the sharded repository layout
// (docs/STORAGE.md):
//
//   store   With N entries already indexed, the next store() must be
//           O(1) under the segmented index where the legacy monolithic
//           index.xml made it O(repo): the measured per-store cost
//           ratio legacy/sharded must be >= 10x at the full N (10k
//           entries), and the sharded per-store cost must stay flat
//           (< 4x) between a near-empty and a full repository.
//
//   stream  An n-ary mean over a columnar (CUBESEV1) series whose total
//           bytes exceed a resident-memory budget must complete with
//           peak RSS growth under that budget — the mmap-backed
//           operands stream through the batched kernels with consumed
//           pages released — and the result must be BIT-IDENTICAL to
//           the same reduction over fully-loaded in-memory stores.
//
// Usage: bench_repo_scale [--quick] [--store-only|--stream-only]
//   --quick scales N and the series down for ctest; the full run
//   reproduces the A15 numbers.  Exit code 0 iff every gate holds.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "algebra/operators.hpp"
#include "bench_util.hpp"
#include "io/repository.hpp"
#include "io/severity_format.hpp"
#include "model/experiment.hpp"

namespace {

using cube::Experiment;
using cube::ExperimentRepository;
using cube::OperatorOptions;
using cube::RepoFormat;
using cube::RepoLayout;
using cube::StorageKind;

double now_ms() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Peak resident set size (VmHWM) in bytes, from /proc/self/status.
std::size_t peak_rss_bytes() {
  std::ifstream status("/proc/self/status");
  std::string line;
  while (std::getline(status, line)) {
    if (line.rfind("VmHWM:", 0) == 0) {
      return static_cast<std::size_t>(
                 std::strtoull(line.c_str() + 6, nullptr, 10)) *
             1024;
    }
  }
  return 0;
}

/// Resets VmHWM to the current RSS ("5" per proc(5)); returns false when
/// the kernel interface is unavailable (the stream gate is then skipped).
bool reset_peak_rss() {
  std::ofstream clear("/proc/self/clear_refs");
  if (!clear) return false;
  clear << "5";
  return static_cast<bool>(clear.flush());
}

/// A tiny experiment: the store gate times the INDEX write, so the
/// experiment payload is kept as small as the model allows.  All tiny
/// experiments share one metadata digest — the content-addressed blob is
/// written once and each store() cost is file + index only.
Experiment make_tiny(std::size_t i) {
  cube::bench::Shape shape;
  shape.metrics = 2;
  shape.cnodes = 4;
  shape.threads = 2;
  shape.fill = 1.0;
  shape.seed = 7;
  Experiment e = cube::bench::make_experiment(shape);
  e.set_name("run-" + std::to_string(i));
  e.set_attribute("series", "scale");
  return e;
}

/// Populates a fresh repository of `layout` with `n` entries and returns
/// the measured per-store cost (ms) of the LAST `k` stores — i.e. the
/// marginal store cost at repository size ~n.
double per_store_ms(const std::filesystem::path& dir, RepoLayout layout,
                    std::size_t n, std::size_t k) {
  std::filesystem::remove_all(dir);
  ExperimentRepository repo(dir, layout);
  for (std::size_t i = 0; i + k < n; ++i) repo.store(make_tiny(i));
  const double t0 = now_ms();
  for (std::size_t i = n - k; i < n; ++i) repo.store(make_tiny(i));
  const double t1 = now_ms();
  std::filesystem::remove_all(dir);
  return (t1 - t0) / static_cast<double>(k);
}

bool run_store_gate(const std::filesystem::path& base, bool quick) {
  // Quick mode still needs the legacy O(repo) cost far enough from the
  // sharded layout's fixed per-store floor that the 10x gate has margin:
  // at n=1500 the measured ratio hovers at ~9-11x and flakes.
  const std::size_t n = quick ? 3000 : 10000;
  const std::size_t k = 50;
  const std::size_t n0 = 100;

  const double sharded_small =
      per_store_ms(base / "sharded_small", RepoLayout::Sharded, n0, k);
  const double sharded_full =
      per_store_ms(base / "sharded_full", RepoLayout::Sharded, n, k);
  const double legacy_full =
      per_store_ms(base / "legacy_full", RepoLayout::Legacy, n, k);

  const double ratio = legacy_full / sharded_full;
  const double growth = sharded_full / sharded_small;
  std::printf("store  n=%zu  legacy %.3f ms/store  sharded %.3f ms/store  "
              "ratio %.1fx  (sharded growth %zu->%zu: %.2fx)\n",
              n, legacy_full, sharded_full, ratio, n0, n, growth);

  bool ok = true;
  if (ratio < 10.0) {
    std::printf("FAIL store: legacy/sharded per-store ratio %.1fx < 10x\n",
                ratio);
    ok = false;
  }
  if (growth > 4.0) {
    std::printf("FAIL store: sharded per-store cost grew %.2fx from "
                "%zu to %zu entries (expected ~flat)\n",
                growth, n0, n);
    ok = false;
  }
  return ok;
}

bool run_stream_gate(const std::filesystem::path& base, bool quick) {
  // Series geometry: total columnar bytes must exceed the budget.
  const std::size_t width = quick ? 8 : 16;
  cube::bench::Shape shape;
  shape.metrics = 16;
  shape.cnodes = quick ? 1024 : 4096;
  shape.threads = 128;
  shape.fill = 1.0;
  shape.storage = StorageKind::Dense;
  const std::size_t cells = shape.metrics * shape.cnodes * shape.threads;
  const std::size_t total = width * cells * sizeof(double);
  const std::size_t budget = total / 2;

  const std::filesystem::path dir = base / "stream_repo";
  std::filesystem::remove_all(dir);
  std::vector<std::string> ids;
  {
    ExperimentRepository repo(dir);
    for (std::size_t i = 0; i < width; ++i) {
      cube::bench::Shape s = shape;
      s.seed = i + 1;
      Experiment e = cube::bench::make_experiment(s);
      e.set_name("series-" + std::to_string(i));
      ids.push_back(repo.store(e, RepoFormat::Columnar));
    }
  }  // everything built here is freed before the measurement

  ExperimentRepository repo(dir);
  std::vector<Experiment> mapped;
  mapped.reserve(ids.size());
  for (const std::string& id : ids) {
    mapped.push_back(repo.load(id));  // mmap-backed CUBESEV1 view
  }
  std::vector<const Experiment*> ptrs;
  for (const Experiment& e : mapped) ptrs.push_back(&e);
  for (const Experiment* e : ptrs) {
    if (!e->severity().file_backed()) {
      std::printf("FAIL stream: columnar load is not file-backed\n");
      return false;
    }
  }

  if (!reset_peak_rss()) {
    std::printf("skip stream: /proc/self/clear_refs unavailable\n");
    return true;
  }
  const std::size_t rss_before = peak_rss_bytes();
  OperatorOptions streaming;
  streaming.release_operand_pages = true;
  const double t0 = now_ms();
  const Experiment result = mean(ptrs, streaming);
  const double t1 = now_ms();
  const std::size_t rss_after = peak_rss_bytes();
  const std::size_t growth = rss_after - rss_before;

  std::printf("stream n=%zu runs x %zu cells (%.0f MiB total, budget "
              "%.0f MiB)  mean %.0f ms  peak-RSS growth %.0f MiB\n",
              width, cells, total / 1048576.0, budget / 1048576.0, t1 - t0,
              growth / 1048576.0);

  bool ok = true;
  if (growth >= budget) {
    std::printf("FAIL stream: peak RSS growth %.0f MiB >= budget "
                "%.0f MiB\n",
                growth / 1048576.0, budget / 1048576.0);
    ok = false;
  }

  // Bit-identity against the fully-resident reduction: clone every
  // mapped store into an owned one and reduce again.
  std::vector<Experiment> owned;
  owned.reserve(mapped.size());
  for (const Experiment& e : mapped) {
    owned.emplace_back(e.metadata_ptr(), e.severity().clone());
  }
  std::vector<const Experiment*> owned_ptrs;
  for (const Experiment& e : owned) owned_ptrs.push_back(&e);
  const Experiment reference = mean(owned_ptrs, OperatorOptions{});
  if (to_cube_sev(result.severity()) != to_cube_sev(reference.severity())) {
    std::printf("FAIL stream: streamed mean differs from the in-memory "
                "reduction\n");
    ok = false;
  }

  mapped.clear();
  owned.clear();
  std::filesystem::remove_all(dir);
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  bool store_only = false;
  bool stream_only = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
    else if (std::strcmp(argv[i], "--store-only") == 0) store_only = true;
    else if (std::strcmp(argv[i], "--stream-only") == 0) stream_only = true;
    else {
      std::fprintf(stderr,
                   "usage: bench_repo_scale [--quick] "
                   "[--store-only|--stream-only]\n");
      return 2;
    }
  }
  const std::filesystem::path base =
      std::filesystem::temp_directory_path() / "cube_bench_repo_scale";
  std::filesystem::remove_all(base);
  std::filesystem::create_directories(base);

  bool ok = true;
  if (!stream_only) ok = run_store_gate(base, quick) && ok;
  if (!store_only) ok = run_stream_gate(base, quick) && ok;
  std::filesystem::remove_all(base);
  std::printf("%s\n", ok ? "ALL GATES PASSED" : "GATE FAILURE");
  return ok ? 0 : 1;
}
