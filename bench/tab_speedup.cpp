// Reproduces the paper's §5.1 headline measurement: "We created two series
// of ten experiments for either configuration and took the minimum of each
// series as a representative.  The speedup obtained for the solver by
// removing the barriers was about 16 %."  Measured on the central solver
// routine only, without any trace instrumentation.
#include <algorithm>
#include <iostream>

#include "common/string_util.hpp"
#include "common/text_table.hpp"
#include "sim/apps/pescan.hpp"
#include "sim/engine.hpp"

namespace {

double solver_time(bool with_barriers, std::uint64_t seed) {
  cube::sim::SimConfig cfg;
  cfg.monitor.trace = false;  // uninstrumented
  cfg.noise.relative = 0.01;
  cfg.noise.seed = seed;
  cube::sim::RegionTable regions;
  cube::sim::PescanConfig pc;
  pc.with_barriers = with_barriers;
  const auto run = cube::sim::Engine(cfg).run(
      regions, cube::sim::build_pescan(regions, cfg.cluster, pc));
  double worst = 0.0;
  for (std::size_t n = 0; n < run.profile.nodes().size(); ++n) {
    if (run.regions[run.profile.nodes()[n].region].name ==
        cube::sim::kPescanSolverRegion) {
      for (std::size_t r = 0; r < run.profile.num_ranks(); ++r) {
        worst = std::max(
            worst, run.profile.inclusive_time(n, static_cast<int>(r)));
      }
    }
  }
  return worst;
}

}  // namespace

int main() {
  std::cout << "=== Table: solver speedup from barrier removal "
               "(paper section 5.1) ===\n\n";

  cube::TextTable runs;
  runs.set_header({"run", "original [s]", "optimized [s]"});
  runs.set_align(
      {cube::Align::Right, cube::Align::Right, cube::Align::Right});
  double min_before = 1e300;
  double min_after = 1e300;
  for (std::uint64_t i = 0; i < 10; ++i) {
    const double b = solver_time(true, 100 + i);
    const double a = solver_time(false, 200 + i);
    min_before = std::min(min_before, b);
    min_after = std::min(min_after, a);
    runs.add_row({std::to_string(i + 1), cube::format_value(b, 4),
                  cube::format_value(a, 4)});
  }
  std::cout << runs.str() << "\n";

  cube::TextTable summary;
  summary.set_header({"quantity", "measured", "paper"});
  summary.set_align(
      {cube::Align::Left, cube::Align::Right, cube::Align::Right});
  summary.add_row({"min original [s]", cube::format_value(min_before, 4),
                   "-"});
  summary.add_row({"min optimized [s]", cube::format_value(min_after, 4),
                   "-"});
  summary.add_row(
      {"solver speedup [%]",
       cube::format_value(100.0 * (min_before - min_after) / min_before, 1),
       "~16"});
  std::cout << summary.str();
  return 0;
}
