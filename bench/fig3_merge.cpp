// Reproduces the paper's Figure 3: "a derived experiment obtained by
// merging one EXPERT output with two CONE outputs referring to different
// event sets" for SWEEP3D — with the mean operator applied to each tool's
// repeated measurements first ("to alleviate the effects of random errors,
// we can summarize multiple outputs from every single tool by applying the
// mean operator before we perform the merge operation").
//
// Expected shape: one integrated metric forest holding EXPERT's trace
// metrics plus L1_D_MISS and FP_INS from two hardware-incompatible counter
// runs; the call tree shows a high concentration of cache misses at
// MPI_Recv calls which are simultaneously Late-Sender sources.
#include <iostream>
#include <vector>

#include "algebra/operators.hpp"
#include "common/string_util.hpp"
#include "common/text_table.hpp"
#include "cone/profiler.hpp"
#include "display/browser.hpp"
#include "expert/analyzer.hpp"
#include "expert/patterns.hpp"
#include "sim/apps/sweep3d.hpp"
#include "sim/engine.hpp"

int main() {
  std::cout << "=== Figure 3: merge of EXPERT and CONE outputs (SWEEP3D) "
               "===\n\n";

  cube::sim::SimConfig cfg;
  cfg.monitor.trace = true;
  cube::sim::RegionTable regions;
  cube::sim::Sweep3dConfig sc;
  std::vector<std::vector<long>> coords;
  for (int r = 0; r < cfg.cluster.num_ranks(); ++r) {
    coords.push_back({r % sc.grid_px, r / sc.grid_px});
  }
  const auto run = cube::sim::Engine(cfg).run(
      regions, cube::sim::build_sweep3d(regions, cfg.cluster, sc));

  const cube::Experiment expert_exp = cube::expert::analyze_trace(
      run.trace, {.experiment_name = "expert", .topology = coords});

  // Two CONE event sets that POWER4-style hardware cannot combine, each
  // measured three times and averaged.
  const auto cone_mean = [&](const cube::counters::EventSet& set,
                             const std::string& name, bool include_time,
                             std::uint64_t seed_base) {
    std::vector<cube::Experiment> reps;
    for (std::uint64_t i = 0; i < 3; ++i) {
      cube::cone::ConeOptions opts;
      opts.event_set = set;
      opts.experiment_name = name + "-rep" + std::to_string(i + 1);
      opts.run_seed = seed_base + i;
      opts.include_time = include_time;
      opts.topology = coords;
      reps.push_back(cube::cone::profile_run(run, opts));
    }
    std::vector<const cube::Experiment*> ptrs;
    for (const auto& r : reps) ptrs.push_back(&r);
    cube::Experiment averaged = cube::mean(ptrs);
    averaged.set_name(name);
    return averaged;
  };

  const cube::Experiment cone_fp =
      cone_mean(cube::counters::event_set_fp(), "cone-fp", true, 10);
  const cube::Experiment cone_cache =
      cone_mean(cube::counters::event_set_cache(), "cone-cache", false, 20);

  const cube::Experiment merged =
      cube::merge(cube::merge(expert_exp, cone_fp), cone_cache);
  std::cout << "provenance: " << merged.provenance() << "\n\n";

  cube::Browser browser(merged);
  browser.execute("select metric PAPI_L1_DCM");
  browser.execute("select call MPI_Recv");
  browser.execute("mode percent");
  std::cout << browser.execute("show") << "\n";

  // Quantitative shape checks.
  const cube::Metadata& md = merged.metadata();
  const cube::Metric& dcm = *md.find_metric("PAPI_L1_DCM");
  const cube::Metric& l2 = *md.find_metric("PAPI_L2_DCM");
  const cube::Metric& ls = *md.find_metric(cube::expert::kLateSender);
  const cube::Metric& wo = *md.find_metric(cube::expert::kWrongOrder);
  double recv_misses = 0;
  double all_misses = 0;
  double recv_ls = 0;
  double all_ls = 0;
  for (const auto& c : md.cnodes()) {
    for (const auto& t : md.threads()) {
      const double m = merged.get(dcm, *c, *t) + merged.get(l2, *c, *t);
      const double w = merged.get(ls, *c, *t) + merged.get(wo, *c, *t);
      all_misses += m;
      all_ls += w;
      if (c->callee().name() == cube::sim::kMpiRecvRegion) {
        recv_misses += m;
        recv_ls += w;
      }
    }
  }

  cube::TextTable table;
  table.set_header({"quantity", "measured", "paper expectation"});
  table.set_align(
      {cube::Align::Left, cube::Align::Right, cube::Align::Left});
  table.add_row({"metric trees in merged experiment",
                 std::to_string(md.metric_roots().size()),
                 "EXPERT + CONE trees coexist"});
  table.add_row({"L1 misses at MPI_Recv [% of total]",
                 cube::format_value(100.0 * recv_misses / all_misses, 1),
                 "high concentration"});
  table.add_row({"Late-Sender time at MPI_Recv [% of all LS]",
                 cube::format_value(100.0 * recv_ls / all_ls, 1),
                 "MPI_Recv is the Late-Sender source"});
  table.add_row({"FP_INS metric present",
                 md.find_metric("PAPI_FP_INS") != nullptr ? "yes" : "no",
                 "yes (from separate run)"});
  std::cout << table.str();
  return 0;
}
