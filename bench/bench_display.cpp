// Ablation A5: display aggregation cost.
//
// compute_view re-derives all pane labels from the severity store on every
// user action (selection or expansion change); its cost is linear in the
// severity volume.  This bench sweeps the volume and also measures the
// text renderer on top.
#include <benchmark/benchmark.h>

#include "bench_util.hpp"
#include "display/render.hpp"

namespace {

using cube::bench::Shape;
using cube::bench::make_experiment;

void BM_ComputeView(benchmark::State& state) {
  Shape s;
  s.cnodes = static_cast<std::size_t>(state.range(0));
  const cube::Experiment e = make_experiment(s);
  cube::ViewState view(e);
  view.set_mode(cube::ValueMode::Percent);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cube::compute_view(view));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0) * 16 * 16);
}
BENCHMARK(BM_ComputeView)->Arg(64)->Arg(256)->Arg(1024);

void BM_ComputeViewCollapsedSelection(benchmark::State& state) {
  // A collapsed selection aggregates whole subtrees per pane.
  Shape s;
  s.cnodes = static_cast<std::size_t>(state.range(0));
  const cube::Experiment e = make_experiment(s);
  cube::ViewState view(e);
  view.collapse_all();
  for (auto _ : state) {
    benchmark::DoNotOptimize(cube::compute_view(view));
  }
}
BENCHMARK(BM_ComputeViewCollapsedSelection)->Arg(256)->Arg(1024);

void BM_RenderView(benchmark::State& state) {
  Shape s;
  s.cnodes = static_cast<std::size_t>(state.range(0));
  const cube::Experiment e = make_experiment(s);
  cube::ViewState view(e);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cube::render_view(view));
  }
}
BENCHMARK(BM_RenderView)->Arg(64)->Arg(256);

}  // namespace

BENCHMARK_MAIN();
