// Shared helpers for the benchmark and figure-reproduction binaries.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "common/rng.hpp"
#include "model/experiment.hpp"
#include "model/system_factory.hpp"

namespace cube::bench {

/// Shape of a synthetic experiment.
struct Shape {
  std::size_t metrics = 16;   ///< nodes across a few metric trees
  std::size_t cnodes = 128;   ///< call-tree nodes
  std::size_t threads = 16;   ///< single-threaded processes
  /// Fraction of severity cells that are non-zero.
  double fill = 0.3;
  /// Name prefix for entity names; experiments built with different
  /// prefixes share nothing, equal prefixes share everything.
  std::string prefix = "m";
  std::uint64_t seed = 1;
  /// Severity storage backing the experiment.
  StorageKind storage = StorageKind::Dense;
};

/// Builds a deterministic synthetic experiment of the given shape: a metric
/// forest of chains of depth 4, a call tree of fan-out 4, and a flat
/// system of single-threaded processes.  Entities are inserted in
/// pre-order (document order), the same order integrate_metadata emits
/// merged entities — experiments that share a prefix therefore integrate
/// with identity mappings, like repeated runs of one binary.
inline Experiment make_experiment(const Shape& shape) {
  auto md = std::make_unique<Metadata>();

  // Metric forest: chains of depth <= 4.
  const Metric* parent = nullptr;
  for (std::size_t i = 0; i < shape.metrics; ++i) {
    if (i % 4 == 0) parent = nullptr;
    parent = &md->add_metric(parent, shape.prefix + std::to_string(i),
                             shape.prefix + std::to_string(i),
                             Unit::Seconds, "");
  }

  // Call tree: fan-out 4 over distinct regions.  Line ranges are pairwise
  // disjoint (region k covers [2k+1, 2k+2]) so the metadata satisfies the
  // proper-nesting validation when experiments round-trip through files.
  const Region& root_region =
      md->add_region(shape.prefix + "_main", "bench.c", 1, 2);
  const Cnode* root = &md->add_cnode_for_region(nullptr, root_region);
  std::size_t created = 1;
  const std::function<void(const Cnode*, std::size_t)> grow =
      [&](const Cnode* p, std::size_t depth) {
        if (depth >= 6) return;
        for (int k = 0; k < 4 && created < shape.cnodes; ++k) {
          const Region& r = md->add_region(
              shape.prefix + "_f" + std::to_string(created), "bench.c",
              2 * static_cast<long>(created) + 1,
              2 * static_cast<long>(created) + 2);
          ++created;
          grow(&md->add_cnode_for_region(p, r), depth + 1);
        }
      };
  grow(root, 0);

  build_regular_system(*md, "bench machine", 1,
                       static_cast<int>(shape.threads));

  Experiment e(std::move(md), shape.storage);
  e.set_name(shape.prefix);
  SplitMix64 rng(shape.seed);
  const Metadata& m = e.metadata();
  for (MetricIndex mi = 0; mi < m.num_metrics(); ++mi) {
    for (CnodeIndex ci = 0; ci < m.num_cnodes(); ++ci) {
      for (ThreadIndex ti = 0; ti < m.num_threads(); ++ti) {
        if (rng.uniform() < shape.fill) {
          e.severity().set(mi, ci, ti, rng.uniform(0.0, 10.0));
        }
      }
    }
  }
  return e;
}

}  // namespace cube::bench
