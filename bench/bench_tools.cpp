// Tool-side cost: EXPERT trace analysis and CONE profile conversion as a
// function of run size.  The paper argues CUBE "is especially well suited
// to support performance analysis on large-scale systems"; this bench
// tracks how the post-processing path scales with the event volume.
#include <benchmark/benchmark.h>

#include "cone/profiler.hpp"
#include "expert/analyzer.hpp"
#include "sim/apps/pescan.hpp"
#include "sim/apps/synthetic.hpp"
#include "sim/engine.hpp"

namespace {

cube::sim::RunResult pescan_run(int iterations) {
  cube::sim::SimConfig cfg;
  cfg.monitor.trace = true;
  cube::sim::RegionTable regions;
  cube::sim::PescanConfig pc;
  pc.iterations = iterations;
  return cube::sim::Engine(cfg).run(
      regions, cube::sim::build_pescan(regions, cfg.cluster, pc));
}

void BM_ExpertAnalyze(benchmark::State& state) {
  const auto run = pescan_run(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(cube::expert::analyze_trace(run.trace));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(run.trace.events.size()));
  state.counters["events"] = static_cast<double>(run.trace.events.size());
}
BENCHMARK(BM_ExpertAnalyze)->Arg(5)->Arg(10)->Arg(25);

void BM_ConeProfile(benchmark::State& state) {
  const auto run = pescan_run(static_cast<int>(state.range(0)));
  cube::cone::ConeOptions opts;
  opts.event_set = cube::counters::event_set_cache();
  for (auto _ : state) {
    benchmark::DoNotOptimize(cube::cone::profile_run(run, opts));
  }
}
BENCHMARK(BM_ConeProfile)->Arg(5)->Arg(25);

void BM_SimulatorThroughput(benchmark::State& state) {
  // The substrate itself: simulated events per second of host time.
  cube::sim::SimConfig cfg;
  cfg.monitor.trace = true;
  std::size_t events = 0;
  for (auto _ : state) {
    cube::sim::RegionTable regions;
    cube::sim::PescanConfig pc;
    pc.iterations = static_cast<int>(state.range(0));
    const auto run = cube::sim::Engine(cfg).run(
        regions, cube::sim::build_pescan(regions, cfg.cluster, pc));
    events = run.trace.events.size();
    benchmark::DoNotOptimize(run);
  }
  state.SetItemsProcessed(
      static_cast<int64_t>(state.iterations() * events));
}
BENCHMARK(BM_SimulatorThroughput)->Arg(5)->Arg(25);

void BM_TraceSerialization(benchmark::State& state) {
  const auto run = pescan_run(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(cube::sim::serialize_trace(run.trace));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(run.trace.byte_size()));
}
BENCHMARK(BM_TraceSerialization)->Arg(10);

}  // namespace

BENCHMARK_MAIN();
