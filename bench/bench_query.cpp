// Query-engine bench: cold versus warm latency of a repository query, and
// thread scaling of the uncached evaluation, over a 16-experiment series.
//
// "Cold" plans and evaluates everything without persisting results;
// "warm" repeats a query whose derived results are already cached, so it
// reduces to one plan + one small cached load.  The scaling series runs
// with the cache disabled so every iteration performs the full reduction.
#include <benchmark/benchmark.h>

#include <filesystem>
#include <iostream>
#include <string>
#include <string_view>
#include <vector>

#include "bench_util.hpp"
#include "io/binary_format.hpp"
#include "io/repository.hpp"
#include "obs/self_profile.hpp"
#include "obs/tracer.hpp"
#include "query/engine.hpp"

namespace {

using cube::bench::Shape;
using cube::bench::make_experiment;

constexpr const char* kQuery =
    "diff(mean(attr(half=front)), mean(attr(half=back)))";

// One shared on-disk repository holding a 16-run series split into two
// attribute groups of 8.
const std::filesystem::path& repo_dir() {
  static const std::filesystem::path dir = [] {
    const std::filesystem::path d =
        std::filesystem::temp_directory_path() / "cube_bench_query_repo";
    std::filesystem::remove_all(d);
    cube::ExperimentRepository repo(d);
    Shape s;
    s.cnodes = 256;
    for (int i = 0; i < 16; ++i) {
      s.seed = static_cast<std::uint64_t>(i) + 1;
      cube::Experiment e = make_experiment(s);
      e.set_name("run-" + std::to_string(i));
      e.set_attribute("half", i < 8 ? "front" : "back");
      repo.store(e, cube::RepoFormat::Binary);
    }
    return d;
  }();
  return dir;
}

void BM_QueryCold(benchmark::State& state) {
  cube::ExperimentRepository repo(repo_dir());
  cube::query::QueryOptions options;
  options.threads = 1;
  options.store_derived = false;  // nothing persists -> always cold
  cube::query::QueryEngine engine(repo, options);
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.run(kQuery));
  }
}
BENCHMARK(BM_QueryCold)->Unit(benchmark::kMillisecond);

void BM_QueryWarm(benchmark::State& state) {
  cube::ExperimentRepository repo(repo_dir());
  cube::query::QueryEngine engine(repo, {.threads = 1});
  (void)engine.run(kQuery);  // populate the cache
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.run(kQuery));
  }
}
BENCHMARK(BM_QueryWarm)->Unit(benchmark::kMillisecond);

void BM_QueryThreads(benchmark::State& state) {
  cube::ExperimentRepository repo(repo_dir());
  cube::query::QueryOptions options;
  options.threads = static_cast<std::size_t>(state.range(0));
  options.use_cache = false;
  options.store_derived = false;
  cube::query::QueryEngine engine(repo, options);
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.run(kQuery));
  }
}
BENCHMARK(BM_QueryThreads)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Unit(
    benchmark::kMillisecond);

// --- Ablation A11: series load, metadata by reference vs inline -----------

// The same 16-run series stored as legacy inline-metadata files: every
// load re-parses the full metadata.  The by-ref repository parses the one
// blob once and every further load of the digest hits the interner.
const std::filesystem::path& inline_dir() {
  static const std::filesystem::path dir = [] {
    const std::filesystem::path d =
        std::filesystem::temp_directory_path() / "cube_bench_query_inline";
    std::filesystem::remove_all(d);
    std::filesystem::create_directories(d);
    Shape s;
    s.cnodes = 256;
    for (int i = 0; i < 16; ++i) {
      s.seed = static_cast<std::uint64_t>(i) + 1;
      const cube::Experiment e = make_experiment(s);
      cube::write_cube_binary_file(
          e, (d / ("run-" + std::to_string(i) + ".cubx")).string());
    }
    return d;
  }();
  return dir;
}

void BM_SeriesLoadInline(benchmark::State& state) {
  const std::filesystem::path& dir = inline_dir();
  for (auto _ : state) {
    for (int i = 0; i < 16; ++i) {
      benchmark::DoNotOptimize(cube::read_cube_binary_file(
          (dir / ("run-" + std::to_string(i) + ".cubx")).string()));
    }
  }
}
BENCHMARK(BM_SeriesLoadInline)->Unit(benchmark::kMillisecond);

void BM_SeriesLoadByRef(benchmark::State& state) {
  cube::ExperimentRepository repo(repo_dir());
  for (auto _ : state) {
    benchmark::DoNotOptimize(repo.load_all(repo.entries()));
  }
}
BENCHMARK(BM_SeriesLoadByRef)->Unit(benchmark::kMillisecond);

}  // namespace

// BENCHMARK_MAIN plus one extra flag: --self-profile=<file> traces the
// whole benchmark run and exports it as a CUBE experiment on exit, so the
// CI round-trip job can lint and diff the bench's own profile
// (docs/OBSERVABILITY.md).
int main(int argc, char** argv) {
  std::string profile_file;
  std::vector<char*> args;
  args.reserve(static_cast<std::size_t>(argc));
  for (int i = 0; i < argc; ++i) {
    constexpr std::string_view kFlag = "--self-profile=";
    const std::string_view arg = argv[i];
    if (i > 0 && arg.substr(0, kFlag.size()) == kFlag) {
      profile_file = std::string(arg.substr(kFlag.size()));
    } else {
      args.push_back(argv[i]);
    }
  }
  int filtered_argc = static_cast<int>(args.size());

  if (!profile_file.empty()) {
    cube::obs::set_current_thread_name("main");
    cube::obs::enable_tracing();
  }
  benchmark::Initialize(&filtered_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(filtered_argc, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  if (!profile_file.empty()) {
    cube::obs::disable_tracing();
    cube::obs::SelfProfileOptions options;
    options.name = "bench_query self-profile";
    try {
      cube::obs::write_self_profile_file(
          cube::obs::export_self_profile(options), profile_file);
    } catch (const std::exception& e) {
      std::cerr << "error: cannot write self-profile '" << profile_file
                << "': " << e.what() << "\n";
      return 1;
    }
    std::cout << "wrote self-profile " << profile_file << "\n";
  }
  return 0;
}
