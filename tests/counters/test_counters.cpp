#include <gtest/gtest.h>

#include "common/error.hpp"
#include "counters/eventset.hpp"
#include "counters/synth.hpp"

namespace cube::counters {
namespace {

TEST(Events, TableIsComplete) {
  EXPECT_EQ(all_events().size(), kNumEvents);
  for (const EventInfo& info : all_events()) {
    EXPECT_FALSE(info.name.empty());
    EXPECT_FALSE(info.description.empty());
  }
}

TEST(Events, InfoLookupMatchesCode) {
  EXPECT_EQ(event_info(Event::FP_INS).name, "PAPI_FP_INS");
  EXPECT_TRUE(event_info(Event::FP_INS).has_parent);
  EXPECT_EQ(event_info(Event::FP_INS).parent, Event::TOT_INS);
  EXPECT_FALSE(event_info(Event::TOT_CYC).has_parent);
}

TEST(Events, SpecializationHierarchy) {
  // Cache: accesses -> misses -> L2 misses.
  EXPECT_EQ(event_info(Event::L1_DCM).parent, Event::L1_DCA);
  EXPECT_EQ(event_info(Event::L2_DCM).parent, Event::L1_DCM);
}

TEST(Events, ParseByName) {
  EXPECT_EQ(parse_event("PAPI_L1_DCM"), Event::L1_DCM);
  EXPECT_THROW((void)parse_event("PAPI_NOPE"), Error);
}

TEST(EventSet, AddAndQuery) {
  EventSet s;
  s.add(Event::TOT_CYC);
  EXPECT_TRUE(s.contains(Event::TOT_CYC));
  EXPECT_FALSE(s.contains(Event::FP_INS));
  EXPECT_EQ(s.size(), 1u);
}

TEST(EventSet, DuplicateRejected) {
  EventSet s;
  s.add(Event::TOT_CYC);
  EXPECT_FALSE(s.compatible(Event::TOT_CYC));
  EXPECT_THROW(s.add(Event::TOT_CYC), OperationError);
}

TEST(EventSet, CapacityLimitEnforced) {
  EventSet s({Event::TOT_CYC, Event::TOT_INS, Event::LD_INS,
              Event::SR_INS});
  EXPECT_EQ(s.size(), s.model().num_counters);
  EXPECT_FALSE(s.compatible(Event::TLB_DM));
  EXPECT_THROW(s.add(Event::TLB_DM), OperationError);
}

TEST(EventSet, Power4ConflictFpVsCacheMisses) {
  // The paper's §5.2 restriction: FP_INS cannot be combined with L1 data
  // cache misses in the same run.
  EventSet s;
  s.add(Event::FP_INS);
  EXPECT_FALSE(s.compatible(Event::L1_DCM));
  EXPECT_THROW(s.add(Event::L1_DCM), OperationError);

  EventSet r;
  r.add(Event::L1_DCM);
  EXPECT_THROW(r.add(Event::FP_INS), OperationError);
}

TEST(EventSet, PredefinedSetsAreValidAndDisjointlyMotivated) {
  const EventSet fp = event_set_fp();
  const EventSet cache = event_set_cache();
  EXPECT_TRUE(fp.contains(Event::FP_INS));
  EXPECT_TRUE(cache.contains(Event::L1_DCM));
  // Their union is impossible on this hardware: that's why merge exists.
  EventSet u = fp;
  EXPECT_THROW(u.add(Event::L1_DCM), OperationError);
}

TEST(CapacityMissRate, BaseWhileFitting) {
  EXPECT_DOUBLE_EQ(capacity_miss_rate(1000, 32768, 0.01, 0.4), 0.01);
  EXPECT_DOUBLE_EQ(capacity_miss_rate(32768, 32768, 0.01, 0.4), 0.01);
}

TEST(CapacityMissRate, GrowsWithWorkingSet) {
  const double r1 = capacity_miss_rate(65536, 32768, 0.01, 0.4);
  const double r2 = capacity_miss_rate(1 << 20, 32768, 0.01, 0.4);
  EXPECT_GT(r1, 0.01);
  EXPECT_GT(r2, r1);
  EXPECT_LT(r2, 0.4);
}

TEST(CounterModel, Deterministic) {
  CounterModel model;
  Workload w;
  w.seconds = 1.0;
  w.flops = 1e6;
  w.mem_refs = 2e6;
  w.working_set = 1 << 20;
  EXPECT_DOUBLE_EQ(model.value(Event::FP_INS, w),
                   model.value(Event::FP_INS, w));
  EXPECT_DOUBLE_EQ(model.value(Event::FP_INS, w), 1e6);
}

TEST(CounterModel, CyclesScaleWithTime) {
  CounterModel model;
  Workload w;
  w.seconds = 2.0;
  EXPECT_DOUBLE_EQ(model.value(Event::TOT_CYC, w),
                   2.0 * model.processor().clock_hz);
}

TEST(CounterModel, ChildEventsDoNotExceedParents) {
  CounterModel model;
  Workload w;
  w.seconds = 1.0;
  w.flops = 5e6;
  w.mem_refs = 1e7;
  w.working_set = 8 << 20;
  w.cold_bytes = 1 << 20;
  EXPECT_LE(model.value(Event::FP_INS, w), model.value(Event::TOT_INS, w));
  EXPECT_LE(model.value(Event::L1_DCM, w), model.value(Event::L1_DCA, w));
  EXPECT_LE(model.value(Event::L2_DCM, w), model.value(Event::L1_DCM, w));
}

TEST(CounterModel, ColdBytesDriveMissesDisproportionately) {
  // A message copy (streamed, no reuse) must produce far more misses per
  // reference than resident computation — the §5.2 cache-miss hot spot at
  // MPI_Recv depends on this.
  CounterModel model;
  Workload compute;
  compute.mem_refs = 1e6;
  compute.working_set = 16 * 1024;  // fits in L1
  Workload copy;
  copy.cold_bytes = 8e6;  // same 1e6 refs (8 bytes each)
  const double compute_rate = model.value(Event::L1_DCM, compute) /
                              model.value(Event::L1_DCA, compute);
  const double copy_rate =
      model.value(Event::L1_DCM, copy) / model.value(Event::L1_DCA, copy);
  EXPECT_GT(copy_rate, 5.0 * compute_rate);
}

TEST(CounterModel, WorkloadAccumulation) {
  Workload a;
  a.seconds = 1.0;
  a.flops = 10;
  a.working_set = 100;
  Workload b;
  b.seconds = 2.0;
  b.flops = 5;
  b.working_set = 300;
  a += b;
  EXPECT_DOUBLE_EQ(a.seconds, 3.0);
  EXPECT_DOUBLE_EQ(a.flops, 15);
  // Working sets take the max, not the sum.
  EXPECT_DOUBLE_EQ(a.working_set, 300);
}

TEST(JitteredModel, DeterministicPerSeed) {
  CounterModel base;
  Workload w;
  w.flops = 1e8;
  w.seconds = 1.0;
  const JitteredCounterModel j1(base, 42, 0.02);
  const JitteredCounterModel j2(base, 42, 0.02);
  EXPECT_DOUBLE_EQ(j1.value(Event::FP_INS, w), j2.value(Event::FP_INS, w));
}

TEST(JitteredModel, DifferentSeedsDiffer) {
  CounterModel base;
  Workload w;
  w.flops = 1e8;
  const JitteredCounterModel j1(base, 1, 0.02);
  const JitteredCounterModel j2(base, 2, 0.02);
  EXPECT_NE(j1.value(Event::FP_INS, w), j2.value(Event::FP_INS, w));
}

TEST(JitteredModel, JitterIsSmallAndMeanPreserving) {
  CounterModel base;
  Workload w;
  w.flops = 1e8;
  double sum = 0;
  constexpr int kRuns = 200;
  for (int i = 0; i < kRuns; ++i) {
    const JitteredCounterModel j(base, static_cast<std::uint64_t>(i), 0.01);
    const double v = j.value(Event::FP_INS, w);
    EXPECT_NEAR(v, 1e8, 1e8 * 0.06);  // within ~6 sigma
    sum += v;
  }
  EXPECT_NEAR(sum / kRuns, 1e8, 1e8 * 0.005);
}

TEST(JitteredModel, ZeroStaysZero) {
  CounterModel base;
  const JitteredCounterModel j(base, 7, 0.05);
  Workload w;  // empty
  EXPECT_DOUBLE_EQ(j.value(Event::FP_INS, w), 0.0);
}

}  // namespace
}  // namespace cube::counters
