// File-level lint over deliberately corrupted on-disk fixtures: each
// corruption must surface as the documented rule id, never as a crash or a
// silently wrong experiment.
#include "lint/file_lint.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "io/binary_format.hpp"
#include "io/cube_format.hpp"
#include "io/meta_format.hpp"
#include "testutil.hpp"

namespace {

using cube::Experiment;
using cube::lint::DiagnosticSink;
using cube::lint::FileKind;
using cube::testing::make_small;

class FileLintTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::path(::testing::TempDir()) /
           ("cube_lint_" + std::string(::testing::UnitTest::GetInstance()
                                           ->current_test_info()
                                           ->name()));
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_ / "meta");
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::filesystem::path write(const std::string& name,
                              const std::string& bytes) const {
    const std::filesystem::path path = dir_ / name;
    std::ofstream out(path, std::ios::binary);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    return path;
  }

  std::filesystem::path dir_;
};

TEST_F(FileLintTest, CleanFilesOfEveryFormatReportNothing) {
  const Experiment e = make_small();
  const auto xml = write("clean.cube", cube::to_cube_xml(e));
  const auto bin = write("clean.cubx", cube::to_cube_binary(e));
  const auto blob = write("clean.meta", cube::to_cube_meta(e.metadata()));

  for (const auto& path : {xml, bin}) {
    DiagnosticSink sink;
    FileKind kind = FileKind::Unreadable;
    const auto loaded = cube::lint::lint_file(path, sink, {}, {}, {}, &kind);
    EXPECT_TRUE(sink.empty()) << path;
    EXPECT_EQ(kind, FileKind::Experiment);
    ASSERT_TRUE(loaded.has_value()) << path;
    EXPECT_EQ(loaded->metadata().digest(), e.metadata().digest());
  }
  DiagnosticSink sink;
  FileKind kind = FileKind::Unreadable;
  EXPECT_FALSE(cube::lint::lint_file(blob, sink, {}, {}, {}, &kind).has_value());
  EXPECT_EQ(kind, FileKind::MetadataBlob);
  EXPECT_TRUE(sink.empty());
}

TEST_F(FileLintTest, TruncatedBinaryRefStream) {
  // A CUBEBIN2 file cut short mid-stream: the decoder must stop at the
  // exact missing field, not read past the buffer.
  const Experiment e = make_small();
  cube::write_cube_meta_file(
      e.metadata(),
      (dir_ / "meta" / cube::meta_blob_name(e.metadata().digest())).string());
  const std::string full = cube::to_cube_binary_ref(e);
  const auto path =
      write("truncated.cubx", full.substr(0, full.size() * 3 / 5));

  DiagnosticSink sink;
  cube::lint::lint_file(path, sink, {}, cube::directory_resolver(dir_));
  EXPECT_TRUE(sink.has_rule("file.truncated"));
  EXPECT_EQ(sink.exit_code(), 2);
}

TEST_F(FileLintTest, MetadataBlobWithFlippedDigestByte) {
  // Flip one byte of the recorded digest (bytes 8..15, right after the
  // magic): the content then no longer hashes to what the blob claims.
  std::string blob = cube::to_cube_meta(make_small().metadata());
  blob[10] = static_cast<char>(blob[10] ^ 0x01);
  const auto path = write("flipped.meta", blob);

  DiagnosticSink sink;
  FileKind kind = FileKind::Unreadable;
  cube::lint::lint_file(path, sink, {}, {}, {}, &kind);
  EXPECT_EQ(kind, FileKind::MetadataBlob);
  EXPECT_TRUE(sink.has_rule("meta.digest-mismatch"));
  EXPECT_EQ(sink.exit_code(), 2);
}

TEST_F(FileLintTest, XmlCallSiteWithDanglingCallee) {
  std::string xml = cube::to_cube_xml(make_small());
  const auto pos = xml.find("callee=\"");
  ASSERT_NE(pos, std::string::npos);
  const auto end = xml.find('"', pos + 8);
  xml.replace(pos, end + 1 - pos, "callee=\"99\"");
  const auto path = write("dangling.cube", xml);

  DiagnosticSink sink;
  cube::lint::lint_file(path, sink);
  EXPECT_TRUE(sink.has_rule("ref.dangling-callee"));
  EXPECT_EQ(sink.exit_code(), 2);
}

TEST_F(FileLintTest, SeverityRowSpillingPastTheThreadRange) {
  // A <row> with more values than the system has threads describes cells
  // outside the metric x cnode x thread cross product.
  std::string xml = cube::to_cube_xml(make_small());
  const auto pos = xml.find("</row>");
  ASSERT_NE(pos, std::string::npos);
  xml.insert(pos, " 123 456");
  const auto path = write("overflow.cube", xml);

  DiagnosticSink sink;
  cube::lint::lint_file(path, sink);
  EXPECT_TRUE(sink.has_rule("sev.out-of-range"));
  EXPECT_EQ(sink.exit_code(), 2);
}

TEST_F(FileLintTest, BinaryTrailingBytes) {
  const auto path =
      write("trailing.cubx", cube::to_cube_binary(make_small()) + "junk");
  DiagnosticSink sink;
  cube::lint::lint_file(path, sink);
  EXPECT_TRUE(sink.has_rule("file.trailing-bytes"));
}

TEST_F(FileLintTest, UnparsableFileIsASyntaxError) {
  const auto path = write("garbage.cube", "this is not a cube file at all");
  DiagnosticSink sink;
  cube::lint::lint_file(path, sink);
  EXPECT_EQ(sink.exit_code(), 2);
  EXPECT_TRUE(sink.has_rule("parse.syntax"));
}

TEST_F(FileLintTest, MissingFileReportsIoError) {
  DiagnosticSink sink;
  EXPECT_FALSE(
      cube::lint::lint_file(dir_ / "absent.cube", sink).has_value());
  EXPECT_TRUE(sink.has_rule("file.io"));
}

TEST_F(FileLintTest, UnresolvableMetarefReportsUnresolvedRef) {
  const Experiment e = make_small();
  // By-reference XML without the blob on disk: the resolver cannot supply
  // the metadata.
  const auto path = write("ref.cube", cube::to_cube_xml_ref(e));
  DiagnosticSink sink;
  cube::lint::lint_file(path, sink, {}, cube::directory_resolver(dir_));
  EXPECT_TRUE(sink.has_rule("meta.unresolved-ref") ||
              sink.has_rule("file.io"));
  EXPECT_EQ(sink.exit_code(), 2);
}

}  // namespace
