// In-memory lint rules: value domain, attributes, forest shape, and the
// cross-experiment compatibility pre-checks.
#include "lint/lint.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "common/error.hpp"
#include "testutil.hpp"

namespace {

using cube::Experiment;
using cube::Metadata;
using cube::StorageKind;
using cube::Unit;
using cube::ValidationError;
using cube::lint::DiagnosticSink;
using cube::lint::Options;
using cube::testing::make_small;
using cube::testing::make_variant;

TEST(LintRules, CleanExperimentReportsNothing) {
  for (const StorageKind kind : {StorageKind::Dense, StorageKind::Sparse}) {
    const Experiment e = make_small(kind);
    DiagnosticSink sink;
    cube::lint::lint_experiment(e, sink);
    EXPECT_TRUE(sink.empty()) << "storage kind " << static_cast<int>(kind);
  }
}

TEST(LintRules, NonFiniteSeverityIsAnError) {
  Experiment e = make_small();
  e.severity().set(0, 1, 2, std::numeric_limits<double>::quiet_NaN());
  e.severity().set(1, 0, 0, std::numeric_limits<double>::infinity());
  DiagnosticSink sink;
  cube::lint::lint_experiment(e, sink);
  EXPECT_EQ(sink.errors(), 2u);
  EXPECT_TRUE(sink.has_rule("sev.non-finite"));
  // The location names the entities, not just raw indices.
  EXPECT_NE(sink.diagnostics()[0].location.find("metric \"time\""),
            std::string::npos);
  EXPECT_NE(sink.diagnostics()[0].location.find("thread #2"),
            std::string::npos);
}

TEST(LintRules, NegativeSeverityWarnsOnlyInOriginalExperiments) {
  Experiment original = make_small();
  original.severity().set(0, 0, 0, -1.0);
  DiagnosticSink sink;
  cube::lint::lint_experiment(original, sink);
  EXPECT_EQ(sink.warnings(), 1u);
  EXPECT_TRUE(sink.has_rule("sev.negative"));

  Experiment derived = make_small();
  derived.mark_derived("difference(a, b)");
  derived.severity().set(0, 0, 0, -1.0);
  DiagnosticSink sink2;
  cube::lint::lint_experiment(derived, sink2);
  EXPECT_TRUE(sink2.empty());  // differences legitimately go negative
}

TEST(LintRules, ValueFindingsFoldIntoSummaryPastTheCap) {
  Experiment e = make_small(StorageKind::Sparse);
  for (std::size_t c = 0; c < 4; ++c) {
    for (std::size_t t = 0; t < 4; ++t) {
      e.severity().set(0, c, t, std::numeric_limits<double>::quiet_NaN());
    }
  }
  Options options;
  options.max_per_rule = 3;
  DiagnosticSink sink;
  cube::lint::lint_experiment(e, sink, options);
  // 16 bad cells: 3 reported individually, the remaining 13 fold into one
  // summary diagnostic naming the total.
  std::size_t reported = 0;
  bool summary_seen = false;
  for (const auto& d : sink.diagnostics()) {
    if (d.rule != "sev.non-finite") continue;
    ++reported;
    if (d.message.find("16 in total") != std::string::npos) summary_seen = true;
  }
  EXPECT_EQ(reported, 4u);
  EXPECT_TRUE(summary_seen);
  EXPECT_EQ(sink.errors(), 4u);

  options.check_values = false;
  DiagnosticSink sink2;
  cube::lint::lint_experiment(e, sink2, options);
  EXPECT_TRUE(sink2.empty());
}

TEST(LintRules, ShadowedRegionWarns) {
  auto md = std::make_unique<Metadata>();
  md->add_metric(nullptr, "time", "Time", Unit::Seconds);
  const auto& r1 = md->add_region("work", "app.c", 1, 10);
  md->add_region("work", "app.c", 20, 30);  // same (name, module)
  md->add_cnode_for_region(nullptr, r1);
  auto& machine = md->add_machine("m");
  auto& node = md->add_node(machine, "n");
  auto& process = md->add_process(node, "rank 0", 0);
  md->add_thread(process, "thread 0", 0);

  DiagnosticSink sink;
  cube::lint::lint_metadata(*md, sink);
  EXPECT_TRUE(sink.has_rule("forest.shadowed-region"));
  EXPECT_TRUE(sink.has_rule("meta.unfrozen"));  // linted pre-freeze
  EXPECT_EQ(sink.errors(), 0u);
}

TEST(LintRules, EmptySystemLevels) {
  auto md = std::make_unique<Metadata>();
  md->add_metric(nullptr, "time", "Time", Unit::Seconds);
  const auto& r = md->add_region("main", "app.c", 1, 10);
  md->add_cnode_for_region(nullptr, r);
  auto& m0 = md->add_machine("empty-machine");
  (void)m0;
  auto& m1 = md->add_machine("m1");
  auto& empty_node = md->add_node(m1, "empty-node");
  (void)empty_node;
  auto& node = md->add_node(m1, "n1");
  md->add_process(node, "threadless", 0);  // no threads

  DiagnosticSink sink;
  cube::lint::lint_metadata(*md, sink);
  EXPECT_TRUE(sink.has_rule("forest.empty-machine"));
  EXPECT_TRUE(sink.has_rule("forest.empty-node"));
  EXPECT_TRUE(sink.has_rule("forest.empty-process"));
  EXPECT_TRUE(sink.has_rule("forest.empty-dimension"));  // zero threads
  EXPECT_GE(sink.errors(), 1u);  // the threadless process is an error
}

TEST(LintRules, UnknownKindAttributeWarns) {
  Experiment e = make_small();
  e.set_attribute("cube::kind", "bogus");
  DiagnosticSink sink;
  cube::lint::lint_experiment(e, sink);
  EXPECT_TRUE(sink.has_rule("attr.bad-kind"));
  EXPECT_EQ(sink.errors(), 0u);
}

TEST(LintRules, DerivedWithoutProvenanceNotes) {
  Experiment e = make_small();
  e.set_attribute("cube::kind", "derived");
  DiagnosticSink sink;
  cube::lint::lint_experiment(e, sink);
  EXPECT_TRUE(sink.has_rule("attr.missing-provenance"));
  EXPECT_EQ(sink.exit_code(), 0);  // a note, not a warning
}

TEST(LintCompat, CompatibleOperandsReportNothing) {
  const Experiment a = make_small();
  const Experiment b = make_small();
  const std::vector<const Experiment*> operands{&a, &b};
  DiagnosticSink sink;
  cube::lint::lint_compatibility(operands, sink);
  EXPECT_TRUE(sink.empty());
}

TEST(LintCompat, UnitConflictIsAnError) {
  const Experiment a = make_small();
  auto md = std::make_unique<Metadata>();
  md->add_metric(nullptr, "time", "Time", Unit::Bytes);  // unit clash
  const auto& r = md->add_region("main", "app.c", 1, 10);
  md->add_cnode_for_region(nullptr, r);
  auto& machine = md->add_machine("m");
  auto& node = md->add_node(machine, "n");
  auto& process = md->add_process(node, "rank 0", 0);
  md->add_thread(process, "thread 0", 0);
  const Experiment b{std::move(md)};

  const std::vector<const Experiment*> operands{&a, &b};
  DiagnosticSink sink;
  cube::lint::lint_compatibility(operands, sink);
  EXPECT_TRUE(sink.has_rule("compat.metric-unit"));
  EXPECT_GE(sink.errors(), 1u);
}

TEST(LintCompat, DifferingThreadShapesAndMixedKindsNote) {
  const Experiment a = make_small();       // 2 ranks
  const Experiment b = make_variant();     // 3 ranks
  Experiment c = make_small();
  c.mark_derived("difference(x, y)");
  const std::vector<const Experiment*> operands{&a, &b, &c};
  DiagnosticSink sink;
  cube::lint::lint_compatibility(operands, sink);
  EXPECT_TRUE(sink.has_rule("compat.thread-shape"));
  EXPECT_TRUE(sink.has_rule("compat.mixed-kind"));
  EXPECT_EQ(sink.errors(), 0u);
  EXPECT_EQ(sink.warnings(), 0u);
}

TEST(LintRules, RequireValidThrowsWithContextAndRule) {
  const Experiment clean = make_small();
  EXPECT_NO_THROW(cube::lint::require_valid(clean, "runs/clean.cube"));

  Experiment bad = make_small();
  bad.severity().set(0, 0, 0, std::numeric_limits<double>::quiet_NaN());
  try {
    cube::lint::require_valid(bad, "runs/bad.cube");
    FAIL() << "require_valid accepted a NaN severity";
  } catch (const ValidationError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("runs/bad.cube"), std::string::npos);
    EXPECT_NE(what.find("sev.non-finite"), std::string::npos);
  }
}

TEST(LintRules, LoadValidatorWrapsRequireValid) {
  const auto validator = cube::lint::load_validator();
  EXPECT_NO_THROW(validator(make_small(), "ctx"));
  Experiment bad = make_small();
  bad.severity().set(0, 0, 0, std::numeric_limits<double>::infinity());
  EXPECT_THROW(validator(bad, "ctx"), ValidationError);
}

}  // namespace
