// Repository-level lint: index integrity, blob reachability, orphans,
// stale cache entries — plus the opt-in load validation hooks in the
// repository and the query engine.
#include "lint/repo_lint.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>

#include "common/error.hpp"
#include "io/cube_format.hpp"
#include "io/meta_format.hpp"
#include "io/repository.hpp"
#include "lint/lint.hpp"
#include "query/engine.hpp"
#include "testutil.hpp"

namespace {

using cube::Experiment;
using cube::ExperimentRepository;
using cube::StorageKind;
using cube::ValidationError;
using cube::lint::DiagnosticSink;
using cube::testing::make_small;
using cube::testing::make_variant;

class RepoLintTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::path(::testing::TempDir()) /
           ("cube_repolint_" + std::string(::testing::UnitTest::GetInstance()
                                               ->current_test_info()
                                               ->name()));
    std::filesystem::remove_all(dir_);
    repo_ = std::make_unique<ExperimentRepository>(dir_);
  }
  void TearDown() override {
    repo_.reset();
    std::filesystem::remove_all(dir_);
  }

  std::string store_salted(const std::string& name, double salt) {
    Experiment e = make_small(StorageKind::Dense, name);
    e.set_attribute("series", "s");
    for (std::size_t m = 0; m < e.metadata().num_metrics(); ++m) {
      for (std::size_t c = 0; c < e.metadata().num_cnodes(); ++c) {
        for (std::size_t t = 0; t < e.metadata().num_threads(); ++t) {
          e.severity().add(m, c, t, salt);
        }
      }
    }
    return repo_->store(e);
  }

  /// Runs one cacheable query so the repository gains a cached derived
  /// entry (sequential engine: deterministic, TSan-friendly).
  void run_query(const std::string& text) {
    cube::query::QueryOptions options;
    options.threads = 1;
    cube::query::QueryEngine engine(*repo_, options);
    (void)engine.run(text);
  }

  /// On-disk path of a stored entry's file (sharded: exp/<ab>/<id>.cube).
  std::filesystem::path entry_file(const std::string& id) {
    for (const auto& entry : repo_->entries_snapshot()) {
      if (entry.id == id) return dir_ / entry.file;
    }
    ADD_FAILURE() << "no entry with id " << id;
    return {};
  }

  std::filesystem::path dir_;
  std::unique_ptr<ExperimentRepository> repo_;
};

TEST_F(RepoLintTest, CleanRepositoryWithCacheReportsNothing) {
  const std::string a = store_salted("run-a", 0.5);
  const std::string b = store_salted("run-b", 1.5);
  run_query("mean(" + a + ", " + b + ")");

  DiagnosticSink sink;
  cube::lint::lint_repository(dir_, sink);
  std::ostringstream report;
  sink.write_text(report);
  EXPECT_EQ(sink.errors(), 0u) << report.str();
  EXPECT_EQ(sink.warnings(), 0u) << report.str();
}

TEST_F(RepoLintTest, MissingEntryFile) {
  const std::string id = store_salted("gone", 0.5);
  std::filesystem::remove(entry_file(id));
  DiagnosticSink sink;
  cube::lint::lint_repository(dir_, sink);
  EXPECT_TRUE(sink.has_rule("repo.missing-file"));
  EXPECT_EQ(sink.exit_code(), 2);
}

TEST_F(RepoLintTest, MissingMetadataBlob) {
  store_salted("blobless", 0.5);
  std::filesystem::remove_all(dir_ / "meta");
  DiagnosticSink sink;
  cube::lint::lint_repository(dir_, sink);
  EXPECT_TRUE(sink.has_rule("repo.missing-blob"));
}

TEST_F(RepoLintTest, OrphanAndMisfiledBlobs) {
  store_salted("keeper", 0.5);
  // A valid blob no entry references: orphaned but correctly filed.
  const Experiment stray = make_variant();
  cube::write_cube_meta_file(
      stray.metadata(),
      (dir_ / "meta" / cube::meta_blob_name(stray.metadata().digest()))
          .string());
  // The same blob under a name claiming a different digest: misfiled.
  cube::write_cube_meta_file(
      stray.metadata(),
      (dir_ / "meta" / "00000000deadbeef.meta").string());

  DiagnosticSink sink;
  cube::lint::lint_repository(dir_, sink);
  EXPECT_TRUE(sink.has_rule("repo.orphan-blob"));
  EXPECT_TRUE(sink.has_rule("meta.misfiled-blob"));
}

TEST_F(RepoLintTest, RemovedOperandMakesCacheEntryStale) {
  const std::string a = store_salted("op-a", 0.5);
  const std::string b = store_salted("op-b", 1.5);
  run_query("mean(" + a + ", " + b + ")");
  repo_->remove(a);

  DiagnosticSink sink;
  cube::lint::lint_repository(dir_, sink);
  EXPECT_TRUE(sink.has_rule("repo.stale-cache"));
  bool names_operand = false;
  for (const auto& d : sink.diagnostics()) {
    if (d.rule == "repo.stale-cache" &&
        d.location.find(a) != std::string::npos) {
      names_operand = true;
    }
  }
  EXPECT_TRUE(names_operand);
}

TEST_F(RepoLintTest, RewrittenOperandMakesCacheEntryStale) {
  const std::string a = store_salted("rw-a", 0.5);
  const std::string b = store_salted("rw-b", 1.5);
  run_query("mean(" + a + ", " + b + ")");
  // Re-materialize operand `a` with different data under the SAME file
  // name: the recorded operand digest no longer matches the file.
  Experiment changed = make_small(StorageKind::Dense, "rw-a");
  changed.severity().set(0, 0, 0, 42.0);
  cube::write_cube_xml_file(changed, entry_file(a).string());

  DiagnosticSink sink;
  cube::lint::lint_repository(dir_, sink);
  EXPECT_TRUE(sink.has_rule("repo.stale-cache"));
}

TEST_F(RepoLintTest, UnresolvableOperandDigestFlagsServerCacheEntry) {
  // The daemon's shared result cache is keyed purely by content digests
  // (cube::cache-operands).  Corrupt an operand file in place: its bytes
  // now hash to a digest no cache entry recorded, so the recorded operand
  // digest resolves to NO current repository file and the cached result
  // can never be served again.
  const std::string a = store_salted("srv-a", 0.5);
  const std::string b = store_salted("srv-b", 1.5);
  run_query("mean(" + a + ", " + b + ")");

  // Sanity: the derived entry records its operand digests.
  bool recorded = false;
  for (const auto& entry : repo_->entries_snapshot()) {
    if (entry.attributes.count("cube::cache-operands") != 0) recorded = true;
  }
  ASSERT_TRUE(recorded);

  Experiment changed = make_small(StorageKind::Dense, "srv-a");
  changed.severity().set(0, 0, 0, 1234.5);
  cube::write_cube_xml_file(changed, entry_file(a).string());

  DiagnosticSink sink;
  cube::lint::lint_repository(dir_, sink);
  EXPECT_TRUE(sink.has_rule("repo.stale-cache-operand"));
}

TEST_F(RepoLintTest, ResolvedOperandDigestsKeepServerCacheClean) {
  // Re-storing an operand's CONTENT under a different id keeps the digest
  // resolvable — the digest-keyed rule must stay quiet even though ids
  // moved around.
  const std::string a = store_salted("mv-a", 0.5);
  const std::string b = store_salted("mv-b", 1.5);
  run_query("mean(" + a + ", " + b + ")");

  DiagnosticSink sink;
  cube::lint::lint_repository(dir_, sink);
  for (const auto& d : sink.diagnostics()) {
    EXPECT_NE(d.rule, "repo.stale-cache-operand") << d.message;
  }
}

TEST_F(RepoLintTest, DuplicateIndexId) {
  // Duplicate ids can only come from a hand-edited legacy index: the
  // segmented index replays later records as replacements by id.
  const std::filesystem::path legacy_dir = dir_ / "legacy";
  {
    ExperimentRepository legacy(legacy_dir, cube::RepoLayout::Legacy);
    Experiment e = make_small(StorageKind::Dense, "twin");
    legacy.store(e);
  }
  // Duplicate the entry block in index.xml by hand.
  const std::filesystem::path index = legacy_dir / "index.xml";
  std::ifstream in(index);
  std::stringstream buffer;
  buffer << in.rdbuf();
  in.close();
  std::string text = buffer.str();
  const auto begin = text.find("  <entry");
  const auto end = text.find("</entry>") + 9;
  ASSERT_NE(begin, std::string::npos);
  text.insert(end, text.substr(begin, end - begin));
  std::ofstream(index) << text;

  DiagnosticSink sink;
  cube::lint::lint_repository(legacy_dir, sink);
  EXPECT_TRUE(sink.has_rule("repo.duplicate-id"));
}

TEST_F(RepoLintTest, MisfiledShardedBlobReported) {
  store_salted("placed", 0.5);
  // Copy the one metadata blob into a shard directory that cannot match
  // its digest prefix; the original stays put, so nothing is orphaned.
  std::filesystem::path blob;
  for (const auto& file :
       std::filesystem::recursive_directory_iterator(dir_ / "meta")) {
    if (file.is_regular_file()) blob = file.path();
  }
  ASSERT_FALSE(blob.empty());
  const std::string wrong =
      blob.filename().string().substr(0, 2) == "zz" ? "yy" : "zz";
  std::filesystem::create_directories(dir_ / "meta" / wrong);
  std::filesystem::copy_file(blob, dir_ / "meta" / wrong / blob.filename());

  DiagnosticSink sink;
  cube::lint::lint_repository(dir_, sink);
  EXPECT_TRUE(sink.has_rule("repo.misfiled-blob"));
  EXPECT_EQ(sink.exit_code(), 2);
}

TEST_F(RepoLintTest, MisnamedSeverityBlobReported) {
  Experiment e = make_small(StorageKind::Dense, "columnar");
  repo_->store(e, cube::RepoFormat::Columnar);
  // Duplicate the severity blob under a name claiming another digest
  // (inside that name's correct shard, so only the content check fires).
  std::filesystem::path blob;
  for (const auto& file :
       std::filesystem::recursive_directory_iterator(dir_ / "sev")) {
    if (file.is_regular_file()) blob = file.path();
  }
  ASSERT_FALSE(blob.empty());
  std::filesystem::create_directories(dir_ / "sev" / "00");
  std::filesystem::copy_file(blob,
                             dir_ / "sev" / "00" / "00000000deadbeef.sev");

  DiagnosticSink sink;
  cube::lint::lint_repository(dir_, sink);
  EXPECT_TRUE(sink.has_rule("sev.misfiled-blob"));
}

TEST_F(RepoLintTest, MissingSeverityBlobReported) {
  Experiment e = make_small(StorageKind::Dense, "columnar");
  repo_->store(e, cube::RepoFormat::Columnar);
  std::filesystem::remove_all(dir_ / "sev");
  DiagnosticSink sink;
  cube::lint::lint_repository(dir_, sink);
  EXPECT_TRUE(sink.has_rule("repo.missing-blob"));
}

TEST_F(RepoLintTest, OrphanSegmentReported) {
  store_salted("one", 0.5);
  std::ofstream(dir_ / "index" / "seg-000099.log")
      << "R 3 0000000000000000\nxxx\n";
  DiagnosticSink sink;
  cube::lint::lint_repository(dir_, sink);
  EXPECT_TRUE(sink.has_rule("repo.orphan-segment"));
  EXPECT_FALSE(sink.has_rule("repo.stale-segment"));
}

TEST_F(RepoLintTest, StaleSegmentAndTempLeftoverReported) {
  for (int i = 0; i < 4; ++i) store_salted("e" + std::to_string(i), i + 0.5);
  repo_->remove("e0");
  repo_->compact();
  // Resurrect the superseded first segment and a torn manifest temp.
  std::ofstream(dir_ / "index" / "seg-000001.log") << "stale bytes";
  std::ofstream(dir_ / "index" / "MANIFEST.tmp") << "half-written";
  DiagnosticSink sink;
  cube::lint::lint_repository(dir_, sink);
  EXPECT_TRUE(sink.has_rule("repo.stale-segment"));
  EXPECT_FALSE(sink.has_rule("repo.orphan-segment"));
}

TEST_F(RepoLintTest, NotARepository) {
  DiagnosticSink sink;
  cube::lint::lint_repository(dir_ / "nowhere", sink);
  EXPECT_TRUE(sink.has_rule("repo.bad-index"));
  DiagnosticSink sink2;
  std::filesystem::create_directories(dir_ / "plain");
  cube::lint::lint_repository(dir_ / "plain", sink2);
  EXPECT_TRUE(sink2.has_rule("repo.bad-index"));
}

TEST_F(RepoLintTest, CorruptedEntryFileSurfacesFileRule) {
  const std::string id = store_salted("chopped", 0.5);
  const std::filesystem::path file = entry_file(id);
  std::ifstream in(file, std::ios::binary);
  std::stringstream buffer;
  buffer << in.rdbuf();
  in.close();
  const std::string bytes = buffer.str();
  std::ofstream(file, std::ios::binary)
      << bytes.substr(0, bytes.size() / 2);

  DiagnosticSink sink;
  cube::lint::lint_repository(dir_, sink);
  EXPECT_EQ(sink.exit_code(), 2);
  bool prefixed = false;
  for (const auto& d : sink.diagnostics()) {
    if (d.location.find("entry \"" + id + "\"") != std::string::npos) {
      prefixed = true;
    }
  }
  EXPECT_TRUE(prefixed);  // findings name the entry they belong to
}

TEST_F(RepoLintTest, RepositoryLoadValidatorHookGuardsLoads) {
  Experiment bad = make_small(StorageKind::Dense, "poisoned");
  bad.severity().set(0, 0, 0, std::numeric_limits<double>::quiet_NaN());
  const std::string id = repo_->store(bad);

  // Without the hook the reader happily returns the NaN cube.
  EXPECT_NO_THROW((void)repo_->load(id));
  repo_->set_load_validator(cube::lint::load_validator());
  EXPECT_THROW((void)repo_->load(id), ValidationError);
  repo_->set_load_validator({});
  EXPECT_NO_THROW((void)repo_->load(id));
}

TEST_F(RepoLintTest, QueryEngineValidateLoadsFlag) {
  Experiment bad = make_small(StorageKind::Dense, "bad-op");
  bad.severity().set(0, 0, 0, std::numeric_limits<double>::quiet_NaN());
  const std::string id = repo_->store(bad);

  cube::query::QueryOptions options;
  options.threads = 1;
  options.store_derived = false;
  {
    cube::query::QueryEngine engine(*repo_, options);
    EXPECT_NO_THROW((void)engine.run("max(" + id + ", " + id + ")"));
  }
  options.validate_loads = true;
  {
    cube::query::QueryEngine engine(*repo_, options);
    EXPECT_THROW((void)engine.run("max(" + id + ", " + id + ")"),
                 ValidationError);
  }
}

}  // namespace
