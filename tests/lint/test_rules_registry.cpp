// The rule registry (src/lint/rules.hpp) is the machine-readable
// catalogue of every diagnostic id.  These tests pin its internal
// invariants and diff it against the two other places rule ids live —
// the docs/LINT.md catalogue tables and the string literals in src/ — so
// a rule added in any one place without the others fails CI with a
// message naming the missing id.
#include "lint/rules.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <regex>
#include <set>
#include <sstream>
#include <string>

namespace {

using cube::lint::Level;
using cube::lint::RuleInfo;
using cube::lint::find_rule;
using cube::lint::rule_registry;

#ifndef CUBE_SOURCE_DIR
#error "tests/CMakeLists.txt must define CUBE_SOURCE_DIR"
#endif

std::string read_file(const std::filesystem::path& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in) << "cannot open " << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

std::set<std::string> registry_ids() {
  std::set<std::string> ids;
  for (const RuleInfo& rule : rule_registry()) ids.emplace(rule.id);
  return ids;
}

/// Rule ids named in the FIRST CELL of a docs/LINT.md catalogue-table row
/// (`| \`rule.id\` | level | ... |`).  Later cells mention other rules in
/// prose and file names like `index.xml`, so only the first cell counts.
std::set<std::string> doc_ids() {
  const std::string doc =
      read_file(std::filesystem::path(CUBE_SOURCE_DIR) / "docs" / "LINT.md");
  std::set<std::string> ids;
  const std::regex id_re("`([a-z]+\\.[a-z-]+)`");
  std::istringstream lines(doc);
  std::string line;
  while (std::getline(lines, line)) {
    if (line.rfind("| `", 0) != 0) continue;
    const std::size_t cell_end = line.find(" |", 2);
    if (cell_end == std::string::npos) continue;
    const std::string cell = line.substr(0, cell_end);
    for (std::sregex_iterator it(cell.begin(), cell.end(), id_re), end;
         it != end; ++it) {
      ids.insert((*it)[1].str());
    }
  }
  return ids;
}

/// Quoted rule-id literals in src/ for the registered families.  The
/// allowlist names observability instruments that share a family prefix
/// but are not diagnostic rules.
std::set<std::string> source_ids() {
  static const std::set<std::string> kNotRules = {
      "repo.entries", "repo.load", "repo.loads", "repo.store", "repo.stores"};
  const std::regex literal_re(
      "\"((forest|ref|sev|meta|file|parse|model|repo|compat|perf|plan|cost)"
      "\\.[a-z][a-z-]*)\"");
  std::set<std::string> ids;
  const std::filesystem::path root =
      std::filesystem::path(CUBE_SOURCE_DIR) / "src";
  for (const auto& entry :
       std::filesystem::recursive_directory_iterator(root)) {
    if (!entry.is_regular_file()) continue;
    const std::string ext = entry.path().extension().string();
    if (ext != ".cpp" && ext != ".hpp") continue;
    const std::string text = read_file(entry.path());
    for (std::sregex_iterator it(text.begin(), text.end(), literal_re), end;
         it != end; ++it) {
      const std::string id = (*it)[1].str();
      if (!kNotRules.count(id)) ids.insert(id);
    }
  }
  return ids;
}

std::string diff_message(const std::set<std::string>& missing,
                         const char* where) {
  std::string msg = std::string("ids missing from ") + where + ":";
  for (const std::string& id : missing) msg += " " + id;
  return msg;
}

std::set<std::string> set_minus(const std::set<std::string>& a,
                                const std::set<std::string>& b) {
  std::set<std::string> out;
  for (const std::string& id : a) {
    if (!b.count(id)) out.insert(id);
  }
  return out;
}

TEST(RulesRegistry, SortedUniqueAndComplete) {
  const auto rules = rule_registry();
  ASSERT_FALSE(rules.empty());
  for (std::size_t i = 1; i < rules.size(); ++i) {
    EXPECT_LT(rules[i - 1].id, rules[i].id)
        << "registry must be sorted by id with no duplicates";
  }
  for (const RuleInfo& rule : rules) {
    EXPECT_FALSE(rule.pass.empty()) << rule.id;
    EXPECT_FALSE(rule.summary.empty()) << rule.id;
    EXPECT_NE(rule.id.find('.'), std::string_view::npos) << rule.id;
  }
}

TEST(RulesRegistry, FindRule) {
  const RuleInfo* unit = find_rule("plan.metric-unit");
  ASSERT_NE(unit, nullptr);
  EXPECT_EQ(unit->level, Level::Error);
  EXPECT_EQ(unit->pass, "plan-analysis");

  const RuleInfo* negative = find_rule("sev.negative");
  ASSERT_NE(negative, nullptr);
  EXPECT_EQ(negative->level, Level::Warning);

  EXPECT_EQ(find_rule("no.such-rule"), nullptr);
  EXPECT_EQ(find_rule(""), nullptr);
}

TEST(RulesRegistry, MatchesDocCatalogue) {
  const std::set<std::string> in_registry = registry_ids();
  const std::set<std::string> in_doc = doc_ids();
  ASSERT_FALSE(in_doc.empty()) << "docs/LINT.md tables parsed empty";
  EXPECT_TRUE(set_minus(in_doc, in_registry).empty())
      << diff_message(set_minus(in_doc, in_registry), "src/lint/rules.cpp");
  EXPECT_TRUE(set_minus(in_registry, in_doc).empty())
      << diff_message(set_minus(in_registry, in_doc),
                      "the docs/LINT.md catalogue");
}

TEST(RulesRegistry, MatchesSourceLiterals) {
  const std::set<std::string> in_registry = registry_ids();
  const std::set<std::string> in_source = source_ids();
  ASSERT_FALSE(in_source.empty()) << "src/ scan found no rule literals";
  EXPECT_TRUE(set_minus(in_source, in_registry).empty())
      << diff_message(set_minus(in_source, in_registry),
                      "src/lint/rules.cpp (or add to the test's non-rule "
                      "allowlist if it is an instrument name)");
  EXPECT_TRUE(set_minus(in_registry, in_source).empty())
      << diff_message(set_minus(in_registry, in_source), "src/ (dead rule?)");
}

TEST(RulesRegistry, JsonWriterWellFormed) {
  std::ostringstream out;
  cube::lint::write_rules_json(out);
  const std::string json = out.str();
  EXPECT_EQ(json.front(), '[');
  EXPECT_NE(json.find("\"id\": \"plan.metric-unit\""), std::string::npos);
  EXPECT_NE(json.find("\"level\": \"error\""), std::string::npos);
  // Every registered rule appears exactly once.
  for (const RuleInfo& rule : rule_registry()) {
    const std::string needle = "\"id\": \"" + std::string(rule.id) + "\"";
    const std::size_t first = json.find(needle);
    ASSERT_NE(first, std::string::npos) << rule.id;
    EXPECT_EQ(json.find(needle, first + 1), std::string::npos) << rule.id;
  }
}

}  // namespace
