#include "lint/diagnostics.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace {

using cube::lint::DiagnosticSink;
using cube::lint::Level;

TEST(Diagnostics, CountsPerLevelAndExitCode) {
  DiagnosticSink sink;
  EXPECT_TRUE(sink.empty());
  EXPECT_EQ(sink.exit_code(), 0);

  sink.note("a.note", "", "informational");
  EXPECT_EQ(sink.exit_code(), 0);  // notes alone stay clean
  EXPECT_TRUE(sink.reached(Level::Note));
  EXPECT_FALSE(sink.reached(Level::Warning));

  sink.warning("a.warning", "", "suspicious");
  EXPECT_EQ(sink.exit_code(), 1);
  EXPECT_TRUE(sink.reached(Level::Warning));
  EXPECT_FALSE(sink.reached(Level::Error));

  sink.error("a.error", "", "broken");
  EXPECT_EQ(sink.exit_code(), 2);
  EXPECT_TRUE(sink.reached(Level::Error));

  EXPECT_EQ(sink.notes(), 1u);
  EXPECT_EQ(sink.warnings(), 1u);
  EXPECT_EQ(sink.errors(), 1u);
  EXPECT_EQ(sink.diagnostics().size(), 3u);
  EXPECT_TRUE(sink.has_rule("a.warning"));
  EXPECT_FALSE(sink.has_rule("a.missing"));
}

TEST(Diagnostics, SubjectPrefixesLocations) {
  DiagnosticSink sink;
  sink.set_subject("entry \"run-1\"");
  sink.error("r.x", "metric \"time\"", "bad");
  sink.error("r.y", "", "bad too");
  sink.set_subject({});
  sink.error("r.z", "cnode #1", "still bad");

  EXPECT_EQ(sink.diagnostics()[0].location, "entry \"run-1\" / metric \"time\"");
  EXPECT_EQ(sink.diagnostics()[1].location, "entry \"run-1\"");
  EXPECT_EQ(sink.diagnostics()[2].location, "cnode #1");
}

TEST(Diagnostics, TextReportListsFindingsAndSummary) {
  DiagnosticSink sink;
  sink.warning("sev.negative", "metric \"time\" / cnode #2 / thread #0",
               "negative severity", "measured quantities are non-negative");
  std::ostringstream out;
  sink.write_text(out);
  const std::string text = out.str();
  EXPECT_NE(text.find("warning [sev.negative]"), std::string::npos);
  EXPECT_NE(text.find("metric \"time\" / cnode #2 / thread #0"),
            std::string::npos);
  EXPECT_NE(text.find("hint: measured quantities"), std::string::npos);
  EXPECT_NE(text.find("0 error(s), 1 warning(s), 0 note(s)"),
            std::string::npos);
}

TEST(Diagnostics, JsonReportEscapesSpecialCharacters) {
  DiagnosticSink sink;
  sink.error("r.q", "region \"a\\b\"", "line1\nline2");
  std::ostringstream out;
  sink.write_json(out);
  const std::string json = out.str();
  EXPECT_NE(json.find("\"errors\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"rule\": \"r.q\""), std::string::npos);
  EXPECT_NE(json.find("region \\\"a\\\\b\\\""), std::string::npos);
  EXPECT_NE(json.find("line1\\nline2"), std::string::npos);
  EXPECT_EQ(json.find("line1\nline2"), std::string::npos);  // no raw newline
}

}  // namespace
