#include "expert/analyzer.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "expert/patterns.hpp"
#include "sim/apps/pescan.hpp"
#include "sim/apps/synthetic.hpp"
#include "sim/engine.hpp"

namespace cube::expert {
namespace {

sim::RunResult run_app(const sim::SimConfig& cfg,
                       std::vector<sim::Program> programs,
                       const sim::RegionTable& regions) {
  return sim::Engine(cfg).run(regions, std::move(programs));
}

sim::SimConfig traced_config(int nodes, int procs) {
  sim::SimConfig cfg;
  cfg.cluster.num_nodes = nodes;
  cfg.cluster.procs_per_node = procs;
  cfg.monitor.trace = true;
  return cfg;
}

TEST(Patterns, TableBuildsValidHierarchy) {
  Metadata md;
  add_pattern_metrics(md);
  const Metric* time = md.find_metric(kTime);
  ASSERT_NE(time, nullptr);
  const Metric* wait = md.find_metric(kWaitBarrier);
  ASSERT_NE(wait, nullptr);
  // Wait at Barrier sits under Barrier under Synchronization under MPI.
  EXPECT_EQ(wait->parent()->unique_name(), kBarrier);
  EXPECT_EQ(&wait->root(), time);
  // Visits is its own tree in occurrences.
  const Metric* visits = md.find_metric(kVisits);
  ASSERT_NE(visits, nullptr);
  EXPECT_TRUE(visits->is_root());
  EXPECT_EQ(visits->unit(), Unit::Occurrences);
}

TEST(Analyzer, WaitAtBarrierFromImbalance) {
  const auto cfg = traced_config(1, 4);
  sim::RegionTable regions;
  const auto run = run_app(
      cfg, sim::build_imbalanced_barrier(regions, cfg.cluster, 4, 0.01, 0.5),
      regions);
  const Experiment e = analyze_trace(run.trace);

  const Metric& wait = *e.metadata().find_metric(kWaitBarrier);
  // Rank 0 is fastest: per round it waits ~ 0.01 * 0.5.
  const Severity wait_total = e.sum_metric(wait);
  EXPECT_NEAR(wait_total,
              4 * 0.01 * 0.5 * (1.0 + 2.0 / 3 + 1.0 / 3 + 0.0), 2e-3);
  // The fastest rank carries the largest wait.
  const Thread& t0 = *e.metadata().threads()[0];
  const Thread& t3 = *e.metadata().threads()[3];
  Severity w0 = 0;
  Severity w3 = 0;
  for (const auto& c : e.metadata().cnodes()) {
    w0 += e.get(wait, *c, t0);
    w3 += e.get(wait, *c, t3);
  }
  EXPECT_GT(w0, w3);
}

TEST(Analyzer, TimeDecompositionIsConserved) {
  // The inclusive Time total equals the sum of all per-location run times
  // (every second attributed to exactly one most-specific metric).
  const auto cfg = traced_config(1, 4);
  sim::RegionTable regions;
  const auto run = run_app(
      cfg, sim::build_imbalanced_barrier(regions, cfg.cluster, 3, 0.01, 0.4),
      regions);
  const Experiment e = analyze_trace(run.trace);
  const Metric& time = *e.metadata().find_metric(kTime);
  double wall_total = 0;
  for (const double f : run.finish_times) wall_total += f;
  // Each rank's final Exit probe dilates its clock after the last recorded
  // event, so allow one probe overhead per rank.
  EXPECT_NEAR(e.sum_metric_tree(time), wall_total,
              run.finish_times.size() * cfg.monitor.probe_overhead + 1e-9);
}

TEST(Analyzer, LateSenderAtDelayedSender) {
  auto cfg = traced_config(1, 2);
  sim::RegionTable regions;
  std::vector<sim::Program> programs;
  {
    sim::ProgramBuilder b(regions, 0);
    b.enter("main").compute(0.3).send(1, 0, 512).leave();  // late sender
    programs.push_back(b.take());
  }
  {
    sim::ProgramBuilder b(regions, 1);
    b.enter("main").recv(0, 0).leave();  // waits from t=0
    programs.push_back(b.take());
  }
  const auto run = run_app(cfg, std::move(programs), regions);
  const Experiment e = analyze_trace(run.trace);
  const Metric& ls = *e.metadata().find_metric(kLateSender);
  EXPECT_NEAR(e.sum_metric(ls), 0.3, 1e-3);
  // Attributed at the receiver's location (rank 1).
  Severity at_rank1 = 0;
  for (const auto& c : e.metadata().cnodes()) {
    at_rank1 += e.get(ls, *c, *e.metadata().threads()[1]);
  }
  EXPECT_NEAR(at_rank1, 0.3, 1e-3);
}

TEST(Analyzer, LateReceiverForRendezvousSends) {
  auto cfg = traced_config(1, 2);
  cfg.network.eager_threshold = 1000;
  sim::RegionTable regions;
  std::vector<sim::Program> programs;
  {
    sim::ProgramBuilder b(regions, 0);
    b.enter("main").send(1, 0, 1e6).leave();  // rendezvous, blocked
    programs.push_back(b.take());
  }
  {
    sim::ProgramBuilder b(regions, 1);
    b.enter("main").compute(0.4).recv(0, 0).leave();  // late receiver
    programs.push_back(b.take());
  }
  const auto run = run_app(cfg, std::move(programs), regions);
  const Experiment e = analyze_trace(run.trace);
  const Metric& lr = *e.metadata().find_metric(kLateReceiver);
  EXPECT_NEAR(e.sum_metric(lr), 0.4, 2e-3);
  // Attributed at the sender's location (rank 0).
  Severity at_rank0 = 0;
  for (const auto& c : e.metadata().cnodes()) {
    at_rank0 += e.get(lr, *c, *e.metadata().threads()[0]);
  }
  EXPECT_NEAR(at_rank0, 0.4, 2e-3);
}

TEST(Analyzer, WrongOrderDetected) {
  // Rank 0 sends tag 1 first, then tag 0 much later; rank 1 receives tag 0
  // FIRST: while it waits, the tag-1 message (sent earlier) sits
  // undelivered — an inefficient acceptance order.
  auto cfg = traced_config(1, 2);
  sim::RegionTable regions;
  std::vector<sim::Program> programs;
  {
    sim::ProgramBuilder b(regions, 0);
    b.enter("main")
        .send(1, 1, 256)
        .compute(0.2)
        .send(1, 0, 256)
        .leave();
    programs.push_back(b.take());
  }
  {
    sim::ProgramBuilder b(regions, 1);
    b.enter("main").recv(0, 0).recv(0, 1).leave();
    programs.push_back(b.take());
  }
  const auto run = run_app(cfg, std::move(programs), regions);
  const Experiment e = analyze_trace(run.trace);
  const Metric& wo = *e.metadata().find_metric(kWrongOrder);
  EXPECT_NEAR(e.sum_metric(wo), 0.2, 2e-3);
  // Plain Late Sender excludes the wrong-order share.
  const Metric& ls = *e.metadata().find_metric(kLateSender);
  EXPECT_NEAR(e.sum_metric(ls), 0.0, 2e-3);
}

TEST(Analyzer, WaitAtNxNFromImbalancedAlltoall) {
  auto cfg = traced_config(1, 2);
  sim::RegionTable regions;
  std::vector<sim::Program> programs;
  for (int r = 0; r < 2; ++r) {
    sim::ProgramBuilder b(regions, r);
    b.enter("main").compute(r == 0 ? 0.01 : 0.21).alltoall(128).leave();
    programs.push_back(b.take());
  }
  const auto run = run_app(cfg, std::move(programs), regions);
  const Experiment e = analyze_trace(run.trace);
  const Metric& nxn = *e.metadata().find_metric(kWaitNxN);
  EXPECT_NEAR(e.sum_metric(nxn), 0.2, 2e-3);
}

TEST(Analyzer, EarlyReduceAtRootOnly) {
  auto cfg = traced_config(1, 2);
  sim::RegionTable regions;
  std::vector<sim::Program> programs;
  for (int r = 0; r < 2; ++r) {
    sim::ProgramBuilder b(regions, r);
    b.enter("main").compute(r == 0 ? 0.01 : 0.31).reduce(0, 256).leave();
    programs.push_back(b.take());
  }
  const auto run = run_app(cfg, std::move(programs), regions);
  const Experiment e = analyze_trace(run.trace);
  const Metric& er = *e.metadata().find_metric(kEarlyReduce);
  EXPECT_NEAR(e.sum_metric(er), 0.3, 2e-3);
  Severity at_root = 0;
  for (const auto& c : e.metadata().cnodes()) {
    at_root += e.get(er, *c, *e.metadata().threads()[0]);
  }
  EXPECT_NEAR(at_root, 0.3, 2e-3);
}

TEST(Analyzer, LateBroadcastAtWaitingNonRoots) {
  auto cfg = traced_config(1, 2);
  sim::RegionTable regions;
  std::vector<sim::Program> programs;
  for (int r = 0; r < 2; ++r) {
    sim::ProgramBuilder b(regions, r);
    b.enter("main").compute(r == 0 ? 0.26 : 0.01).bcast(0, 1024).leave();
    programs.push_back(b.take());
  }
  const auto run = run_app(cfg, std::move(programs), regions);
  const Experiment e = analyze_trace(run.trace);
  const Metric& lb = *e.metadata().find_metric(kLateBroadcast);
  EXPECT_NEAR(e.sum_metric(lb), 0.25, 2e-3);
  // Attributed at the waiting non-root (rank 1).
  Severity at_rank1 = 0;
  for (const auto& c : e.metadata().cnodes()) {
    at_rank1 += e.get(lb, *c, *e.metadata().threads()[1]);
  }
  EXPECT_NEAR(at_rank1, 0.25, 2e-3);
}

TEST(Analyzer, VisitsCounted) {
  const auto cfg = traced_config(1, 2);
  sim::RegionTable regions;
  const auto run = run_app(
      cfg, sim::build_pingpong(regions, cfg.cluster, 5, 128), regions);
  const Experiment e = analyze_trace(run.trace);
  const Metric& visits = *e.metadata().find_metric(kVisits);
  // main + pingpong per rank = 2 visits each; 5 sends + 5 recvs per rank.
  EXPECT_DOUBLE_EQ(e.sum_metric(visits), 2 * 2 + 2 * 10);
}

TEST(Analyzer, CallTreeReconstruction) {
  const auto cfg = traced_config(1, 2);
  sim::RegionTable regions;
  const auto run = run_app(
      cfg, sim::build_pingpong(regions, cfg.cluster, 2, 128), regions);
  const Experiment e = analyze_trace(run.trace);
  bool found_send_path = false;
  for (const auto& c : e.metadata().cnodes()) {
    if (c->path() == "main/pingpong/MPI_Send") found_send_path = true;
  }
  EXPECT_TRUE(found_send_path);
}

TEST(Analyzer, SystemDimensionFromCluster) {
  const auto cfg = traced_config(2, 2);
  sim::RegionTable regions;
  std::vector<sim::Program> programs;
  for (int r = 0; r < 4; ++r) {
    sim::ProgramBuilder b(regions, r);
    b.enter("main").compute(0.01).leave();
    programs.push_back(b.take());
  }
  const auto run = run_app(cfg, std::move(programs), regions);
  const Experiment e = analyze_trace(run.trace);
  EXPECT_EQ(e.metadata().machines().size(), 1u);
  EXPECT_EQ(e.metadata().nodes().size(), 2u);
  EXPECT_EQ(e.metadata().processes().size(), 4u);
  EXPECT_EQ(e.metadata().num_threads(), 4u);
  EXPECT_NO_THROW(e.metadata().validate());
}

TEST(Analyzer, TopologyOptionAttachesCoords) {
  const auto cfg = traced_config(1, 2);
  sim::RegionTable regions;
  const auto run = run_app(
      cfg, sim::build_pingpong(regions, cfg.cluster, 1, 64), regions);
  AnalyzerOptions opts;
  opts.topology = {{0, 0}, {1, 0}};
  const Experiment e = analyze_trace(run.trace, opts);
  ASSERT_TRUE(e.metadata().find_process(1)->coords().has_value());
  EXPECT_EQ(*e.metadata().find_process(1)->coords(),
            (std::vector<long>{1, 0}));
}

TEST(Analyzer, NamesAndAttributes) {
  const auto cfg = traced_config(1, 2);
  sim::RegionTable regions;
  const auto run = run_app(
      cfg, sim::build_pingpong(regions, cfg.cluster, 1, 64), regions);
  AnalyzerOptions opts;
  opts.experiment_name = "my-experiment";
  const Experiment e = analyze_trace(run.trace, opts);
  EXPECT_EQ(e.name(), "my-experiment");
  EXPECT_EQ(e.attribute("cube::tool"), "EXPERT (simulated)");
  EXPECT_EQ(e.kind(), ExperimentKind::Original);
}

TEST(Analyzer, TraceFileRoundTripGivesIdenticalAnalysis) {
  // EXPERT is post-mortem: it reads trace FILES.  Serializing the trace
  // must not change any severity.
  const auto cfg = traced_config(1, 4);
  sim::RegionTable regions;
  const auto run = run_app(
      cfg, sim::build_imbalanced_barrier(regions, cfg.cluster, 3, 0.01, 0.4),
      regions);
  const Experiment direct = analyze_trace(run.trace);
  const sim::Trace reloaded =
      sim::deserialize_trace(sim::serialize_trace(run.trace));
  const Experiment from_file = analyze_trace(reloaded);
  for (const auto& m : direct.metadata().metrics()) {
    const Metric* other =
        from_file.metadata().find_metric(m->unique_name());
    ASSERT_NE(other, nullptr);
    EXPECT_DOUBLE_EQ(from_file.sum_metric(*other), direct.sum_metric(*m));
  }
}

TEST(Analyzer, MalformedTraceRejected) {
  sim::Trace trace;
  trace.cluster.num_nodes = 1;
  trace.cluster.procs_per_node = 1;
  trace.regions.intern("main");
  sim::TraceEvent enter;
  enter.type = sim::EventType::Enter;
  enter.rank = 0;
  enter.time = 0.0;
  enter.region = 0;
  trace.events.push_back(enter);  // never exited
  EXPECT_THROW((void)analyze_trace(trace), OperationError);
}

TEST(Analyzer, RecvWithoutSendRejected) {
  sim::Trace trace;
  trace.cluster.num_nodes = 1;
  trace.cluster.procs_per_node = 2;
  const auto main_id =
      static_cast<std::uint32_t>(trace.regions.intern("main"));
  const auto recv_id = static_cast<std::uint32_t>(
      trace.regions.intern(sim::kMpiRecvRegion));
  sim::TraceEvent e1;
  e1.type = sim::EventType::Enter;
  e1.rank = 0;
  e1.time = 0.0;
  e1.region = main_id;
  sim::TraceEvent e2 = e1;
  e2.time = 0.1;
  e2.region = recv_id;
  sim::TraceEvent recv;
  recv.type = sim::EventType::Recv;
  recv.rank = 0;
  recv.time = 0.2;
  recv.region = recv_id;
  recv.peer = 1;
  trace.events = {e1, e2, recv};
  EXPECT_THROW((void)analyze_trace(trace), OperationError);
}

TEST(Analyzer, PescanProducesPaperShapedHierarchy) {
  sim::SimConfig cfg;
  cfg.monitor.trace = true;
  sim::RegionTable regions;
  sim::PescanConfig pc;
  pc.iterations = 4;
  const auto run =
      run_app(cfg, sim::build_pescan(regions, cfg.cluster, pc), regions);
  const Experiment e = analyze_trace(run.trace);
  const Metric& time = *e.metadata().find_metric(kTime);
  const double total = e.sum_metric_tree(time);
  EXPECT_GT(total, 0.0);
  // Barrier waiting dominates MPI losses in the unoptimized version.
  EXPECT_GT(e.sum_metric(*e.metadata().find_metric(kWaitBarrier)),
            0.05 * total);
}

TEST(Analyzer, InternerSharesMetadataAcrossRepetitions) {
  // Two analyses of structurally identical traces (different noise seeds)
  // share ONE frozen metadata through the interner.
  MetadataInterner interner;
  std::vector<Experiment> runs;
  for (int i = 0; i < 2; ++i) {
    sim::SimConfig cfg = traced_config(1, 2);
    cfg.noise.relative = 0.05;
    cfg.noise.seed = 100 + static_cast<std::uint64_t>(i);
    sim::RegionTable regions;
    const auto run = run_app(
        cfg, sim::build_noisy_compute(regions, cfg.cluster, 8, 1e-3),
        regions);
    runs.push_back(analyze_trace(
        run.trace, {.experiment_name = "rep" + std::to_string(i),
                    .interner = &interner}));
  }
  EXPECT_TRUE(runs[0].metadata().frozen());
  EXPECT_EQ(runs[0].metadata_ptr().get(), runs[1].metadata_ptr().get());
  EXPECT_EQ(interner.size(), 1u);
  // Values still belong to each repetition: noise differs somewhere.
  const Metric& time = *runs[0].metadata().find_metric(kTime);
  EXPECT_NE(runs[0].sum_metric_tree(time), runs[1].sum_metric_tree(time));
}

}  // namespace
}  // namespace cube::expert
