#include "common/digest.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "common/error.hpp"

namespace cube {
namespace {

TEST(DigestTest, KnownFnv1aVectors) {
  // Reference values of the FNV-1a 64-bit test suite.
  EXPECT_EQ(fnv1a(""), 0xcbf29ce484222325ull);
  EXPECT_EQ(fnv1a("a"), 0xaf63dc4c8601ec8cull);
  EXPECT_EQ(fnv1a("foobar"), 0x85944171f73967e8ull);
}

TEST(DigestTest, StreamingMatchesOneShot) {
  Fnv1a h;
  h.update("foo").update("bar");
  EXPECT_EQ(h.value(), fnv1a("foobar"));
}

TEST(DigestTest, IntegerUpdateChangesState) {
  Fnv1a a, b;
  a.update(std::uint64_t{1});
  b.update(std::uint64_t{2});
  EXPECT_NE(a.value(), b.value());
}

TEST(DigestTest, HexIsFixedWidthLowercase) {
  EXPECT_EQ(digest_hex(0), "0000000000000000");
  EXPECT_EQ(digest_hex(0xabcdef0123456789ull), "abcdef0123456789");
}

TEST(DigestTest, FileDigestMatchesContentDigest) {
  const std::filesystem::path path =
      std::filesystem::path(::testing::TempDir()) / "digest_probe.bin";
  {
    std::ofstream out(path, std::ios::binary);
    out << "foobar";
  }
  EXPECT_EQ(digest_file(path), fnv1a("foobar"));
  std::filesystem::remove(path);
}

TEST(DigestTest, MissingFileThrows) {
  EXPECT_THROW((void)digest_file("/nonexistent/nowhere.bin"), IoError);
}

}  // namespace
}  // namespace cube
