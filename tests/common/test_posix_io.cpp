// EINTR-safe fd helpers (common/posix_io.hpp): exact transfers across
// partial reads/writes, retry through signal interruption, and clean
// errors on dead descriptors.
#include "common/posix_io.hpp"

#include <fcntl.h>
#include <gtest/gtest.h>
#include <pthread.h>
#include <signal.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "common/error.hpp"

namespace {

using cube::read_full;
using cube::write_full;

std::string pattern_bytes(std::size_t n) {
  std::string s(n, '\0');
  for (std::size_t i = 0; i < n; ++i) {
    s[i] = static_cast<char>('a' + (i * 131) % 23);
  }
  return s;
}

struct Pipe {
  int fds[2] = {-1, -1};
  Pipe() { EXPECT_EQ(::pipe(fds), 0); }
  ~Pipe() {
    close_read();
    close_write();
  }
  void close_read() {
    if (fds[0] != -1) ::close(fds[0]);
    fds[0] = -1;
  }
  void close_write() {
    if (fds[1] != -1) ::close(fds[1]);
    fds[1] = -1;
  }
};

TEST(PosixIo, ReadFullReassemblesDribbledWrites) {
  Pipe p;
  const std::string data = pattern_bytes(64 * 1024);
  std::thread writer([&] {
    // Dribble in awkward chunk sizes so the reader sees many partial
    // reads; the helper must resume at the right offset every time.
    std::size_t pos = 0;
    std::size_t chunk = 1;
    while (pos < data.size()) {
      const std::size_t n = std::min(chunk, data.size() - pos);
      write_full(p.fds[1], data.data() + pos, n);
      pos += n;
      chunk = chunk * 3 + 1;
    }
    p.close_write();
  });
  std::string got(data.size(), '\0');
  EXPECT_EQ(read_full(p.fds[0], got.data(), got.size()), got.size());
  EXPECT_EQ(got, data);
  writer.join();
}

TEST(PosixIo, ReadFullReportsShortCountAtEof) {
  Pipe p;
  write_full(p.fds[1], "abc", 3);
  p.close_write();
  char buf[16];
  EXPECT_EQ(read_full(p.fds[0], buf, sizeof buf), 3u);
  EXPECT_EQ(std::string(buf, 3), "abc");
  EXPECT_EQ(read_full(p.fds[0], buf, sizeof buf), 0u);  // clean EOF
}

TEST(PosixIo, WriteFullPushesThroughTinySocketBuffers) {
  int sv[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
  // Shrink the send buffer so a large write cannot complete in one call
  // and the helper has to loop over partial transfers.
  const int small = 4096;
  (void)::setsockopt(sv[0], SOL_SOCKET, SO_SNDBUF, &small, sizeof small);
  const std::string data = pattern_bytes(512 * 1024);
  std::string got(data.size(), '\0');
  std::thread reader([&] {
    EXPECT_EQ(read_full(sv[1], got.data(), got.size()), got.size());
  });
  write_full(sv[0], data.data(), data.size());
  reader.join();
  EXPECT_EQ(got, data);
  ::close(sv[0]);
  ::close(sv[1]);
}

TEST(PosixIo, ReadFullRetriesThroughSignalInterruption) {
  // Install a no-op SIGUSR1 handler WITHOUT SA_RESTART, so a signal
  // arriving while read(2) blocks makes it fail with EINTR — exactly the
  // case the helper must absorb.
  struct sigaction sa = {};
  sa.sa_handler = [](int) {};
  sa.sa_flags = 0;
  struct sigaction old = {};
  ASSERT_EQ(::sigaction(SIGUSR1, &sa, &old), 0);

  Pipe p;
  std::atomic<bool> done{false};
  const pthread_t reader_thread = ::pthread_self();
  std::thread pinger([&] {
    // Keep interrupting the (blocked) reader until the payload lands.
    while (!done.load()) {
      ::pthread_kill(reader_thread, SIGUSR1);
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });
  std::thread writer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    write_full(p.fds[1], "payload!", 8);
    p.close_write();
  });

  char buf[8];
  EXPECT_EQ(read_full(p.fds[0], buf, sizeof buf), sizeof buf);
  EXPECT_EQ(std::string(buf, sizeof buf), "payload!");
  done.store(true);
  pinger.join();
  writer.join();
  ASSERT_EQ(::sigaction(SIGUSR1, &old, nullptr), 0);
}

TEST(PosixIo, WriteFullThrowsIoErrorOnClosedPeer) {
  // EPIPE must surface as cube::IoError, not kill the process: suppress
  // SIGPIPE for the write below (the server does the same).
  ::signal(SIGPIPE, SIG_IGN);
  int sv[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
  ::close(sv[1]);
  const std::string data(1 << 20, 'x');
  EXPECT_THROW(write_full(sv[0], data.data(), data.size()), cube::IoError);
  ::close(sv[0]);
}

TEST(PosixIo, ReadFullThrowsIoErrorOnBadDescriptor) {
  char buf[4];
  EXPECT_THROW(read_full(-1, buf, sizeof buf), cube::IoError);
}

}  // namespace
