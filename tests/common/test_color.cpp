#include "common/color.hpp"

#include <gtest/gtest.h>

namespace cube {
namespace {

TEST(ColorFor, LowValuesAreGray) {
  EXPECT_STREQ(color_for(0.0).name, "gray");
  EXPECT_STREQ(color_for(0.01).name, "gray");
}

TEST(ColorFor, HighValuesAreRed) {
  EXPECT_STREQ(color_for(0.8).name, "red");
  EXPECT_STREQ(color_for(1.0).name, "red");
}

TEST(ColorFor, ClampsOutOfRange) {
  EXPECT_STREQ(color_for(5.0).name, "red");
  EXPECT_STREQ(color_for(-0.9).name, "red");  // magnitude is used
}

TEST(ColorFor, MonotoneThresholds) {
  // Increasing magnitude never decreases the color rank.
  double prev_threshold = -1.0;
  for (double v = 0.0; v <= 1.0; v += 0.05) {
    const double t = color_for(v).threshold;
    EXPECT_GE(t, prev_threshold);
    prev_threshold = t;
  }
}

TEST(Colorize, DisabledReturnsPlainText) {
  EXPECT_EQ(colorize("x", 0.9, false), "x");
}

TEST(Colorize, EnabledWrapsWithAnsi) {
  const std::string out = colorize("x", 0.9, true);
  EXPECT_NE(out.find("\x1b["), std::string::npos);
  EXPECT_NE(out.find('x'), std::string::npos);
  EXPECT_NE(out.find(ansi_reset()), std::string::npos);
}

TEST(ColorLegend, ListsAllStops) {
  const std::string legend = color_legend(false);
  EXPECT_NE(legend.find("gray"), std::string::npos);
  EXPECT_NE(legend.find("red"), std::string::npos);
  EXPECT_NE(legend.find("100%"), std::string::npos);
}

}  // namespace
}  // namespace cube
