#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace cube {
namespace {

TEST(SplitMix64, DeterministicForEqualSeeds) {
  SplitMix64 a(123);
  SplitMix64 b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next(), b.next());
  }
}

TEST(SplitMix64, DifferentSeedsDiverge) {
  SplitMix64 a(1);
  SplitMix64 b(2);
  bool any_diff = false;
  for (int i = 0; i < 10; ++i) {
    any_diff = any_diff || (a.next() != b.next());
  }
  EXPECT_TRUE(any_diff);
}

TEST(SplitMix64, UniformInUnitInterval) {
  SplitMix64 rng(7);
  double sum = 0.0;
  constexpr int kN = 10000;
  for (int i = 0; i < kN; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  // Mean of U(0,1) is 0.5; allow generous tolerance.
  EXPECT_NEAR(sum / kN, 0.5, 0.02);
}

TEST(SplitMix64, UniformRangeRespectsBounds) {
  SplitMix64 rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform(-3.0, 5.0);
    ASSERT_GE(v, -3.0);
    ASSERT_LT(v, 5.0);
  }
}

TEST(SplitMix64, BelowStaysBelow) {
  SplitMix64 rng(11);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_LT(rng.below(17), 17u);
  }
}

TEST(SplitMix64, NormalHasRoughlyUnitVariance) {
  SplitMix64 rng(13);
  double sum = 0.0;
  double sum_sq = 0.0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) {
    const double x = rng.normal();
    sum += x;
    sum_sq += x * x;
  }
  const double mean = sum / kN;
  const double var = sum_sq / kN - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.05);
  EXPECT_NEAR(var, 1.0, 0.1);
}

TEST(SplitMix64, NormalWithParameters) {
  SplitMix64 rng(17);
  double sum = 0.0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) {
    sum += rng.normal(10.0, 2.0);
  }
  EXPECT_NEAR(sum / kN, 10.0, 0.1);
}

TEST(DeriveSeed, DistinctStreamsGetDistinctSeeds) {
  const auto s0 = derive_seed(42, 0);
  const auto s1 = derive_seed(42, 1);
  const auto s2 = derive_seed(43, 0);
  EXPECT_NE(s0, s1);
  EXPECT_NE(s0, s2);
  EXPECT_EQ(derive_seed(42, 0), s0);  // deterministic
}

}  // namespace
}  // namespace cube
