#include "common/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace cube {
namespace {

TEST(ThreadPoolTest, RunsSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  std::mutex m;
  std::condition_variable cv;
  constexpr int kTasks = 100;
  for (int i = 0; i < kTasks; ++i) {
    pool.submit([&] {
      if (count.fetch_add(1) + 1 == kTasks) {
        std::lock_guard<std::mutex> lock(m);
        cv.notify_all();
      }
    });
  }
  std::unique_lock<std::mutex> lock(m);
  cv.wait(lock, [&] { return count.load() == kTasks; });
  EXPECT_EQ(count.load(), kTasks);
}

TEST(ThreadPoolTest, ZeroThreadsClampedToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 1u);
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr std::size_t kN = 10000;
  std::vector<std::atomic<int>> hits(kN);
  pool.parallel_for(kN, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, ParallelForEmptyAndSingle) {
  ThreadPool pool(2);
  int calls = 0;
  pool.parallel_for(0, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  pool.parallel_for(1, [&](std::size_t i) {
    EXPECT_EQ(i, 0u);
    ++calls;
  });
  EXPECT_EQ(calls, 1);
}

TEST(ThreadPoolTest, ParallelForPropagatesException) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.parallel_for(64,
                        [](std::size_t i) {
                          if (i == 13) throw std::runtime_error("boom");
                        }),
      std::runtime_error);
  // The pool is still usable afterwards.
  std::atomic<std::size_t> sum{0};
  pool.parallel_for(10, [&](std::size_t i) { sum.fetch_add(i); });
  EXPECT_EQ(sum.load(), 45u);
}

TEST(ThreadPoolTest, NestedParallelForDoesNotDeadlock) {
  // Every outer iteration runs an inner loop on the SAME pool; caller
  // participation guarantees progress even when all workers are busy.
  ThreadPool pool(2);
  std::atomic<std::size_t> total{0};
  pool.parallel_for(8, [&](std::size_t) {
    pool.parallel_for(8, [&](std::size_t) { total.fetch_add(1); });
  });
  EXPECT_EQ(total.load(), 64u);
}

TEST(ThreadPoolTest, ParallelForFromSubmittedTaskCompletes) {
  ThreadPool pool(1);  // a single worker must not deadlock either
  std::atomic<std::size_t> total{0};
  std::mutex m;
  std::condition_variable cv;
  bool done = false;
  pool.submit([&] {
    pool.parallel_for(32, [&](std::size_t) { total.fetch_add(1); });
    std::lock_guard<std::mutex> lock(m);
    done = true;
    cv.notify_all();
  });
  std::unique_lock<std::mutex> lock(m);
  cv.wait(lock, [&] { return done; });
  EXPECT_EQ(total.load(), 32u);
}

TEST(ThreadPoolTest, DefaultThreadsPositive) {
  EXPECT_GE(ThreadPool::default_threads(), 1u);
}

}  // namespace
}  // namespace cube
