#include "common/string_util.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace cube {
namespace {

TEST(Trim, RemovesSurroundingWhitespace) {
  EXPECT_EQ(trim("  hello  "), "hello");
  EXPECT_EQ(trim("\t\na b\r\n"), "a b");
}

TEST(Trim, EmptyAndAllWhitespace) {
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   \t "), "");
}

TEST(Trim, NoWhitespaceIsIdentity) { EXPECT_EQ(trim("abc"), "abc"); }

TEST(Split, BasicFields) {
  const auto parts = split("a,b,c", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "b");
  EXPECT_EQ(parts[2], "c");
}

TEST(Split, PreservesEmptyFields) {
  const auto parts = split(",a,,b,", ',');
  ASSERT_EQ(parts.size(), 5u);
  EXPECT_EQ(parts[0], "");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(parts[4], "");
}

TEST(Split, EmptyInputYieldsOneEmptyField) {
  EXPECT_EQ(split("", ',').size(), 1u);
}

TEST(ToLower, AsciiOnly) {
  EXPECT_EQ(to_lower("AbC-12_Z"), "abc-12_z");
}

TEST(XmlEscape, EscapesAllFiveSpecials) {
  EXPECT_EQ(xml_escape("<a & \"b\" 'c'>"),
            "&lt;a &amp; &quot;b&quot; &apos;c&apos;&gt;");
}

TEST(XmlEscape, PlainTextUntouched) {
  EXPECT_EQ(xml_escape("hello world"), "hello world");
}

TEST(XmlUnescape, InverseOfEscape) {
  const std::string original = "<a & \"b\" 'c'> plain";
  EXPECT_EQ(xml_unescape(xml_escape(original)), original);
}

TEST(XmlUnescape, DecimalAndHexCharacterReferences) {
  EXPECT_EQ(xml_unescape("&#65;&#x42;"), "AB");
}

TEST(XmlUnescape, Utf8FromCharacterReference) {
  EXPECT_EQ(xml_unescape("&#xE9;"), "\xC3\xA9");  // e-acute
}

TEST(XmlUnescape, ThrowsOnUnknownEntity) {
  EXPECT_THROW((void)xml_unescape("&bogus;"), Error);
}

TEST(XmlUnescape, ThrowsOnUnterminatedEntity) {
  EXPECT_THROW((void)xml_unescape("a &amp b"), Error);
}

TEST(XmlUnescape, ThrowsOnInvalidCodepoint) {
  EXPECT_THROW((void)xml_unescape("&#x110000;"), Error);
  EXPECT_THROW((void)xml_unescape("&#;"), Error);
}

TEST(FormatValue, StripsTrailingZeros) {
  EXPECT_EQ(format_value(1.50), "1.5");
  EXPECT_EQ(format_value(2.00), "2");
  EXPECT_EQ(format_value(0.25), "0.25");
}

TEST(FormatValue, NegativeZeroBecomesZero) {
  EXPECT_EQ(format_value(-0.0001), "0");
}

TEST(FormatValue, RespectsPrecision) {
  EXPECT_EQ(format_value(3.14159, 4), "3.1416");
  EXPECT_EQ(format_value(3.14159, 0), "3");
}

TEST(FormatValue, NonFinite) {
  EXPECT_EQ(format_value(std::numeric_limits<double>::quiet_NaN()), "nan");
  EXPECT_EQ(format_value(std::numeric_limits<double>::infinity()), "inf");
  EXPECT_EQ(format_value(-std::numeric_limits<double>::infinity()), "-inf");
}

TEST(ParseDouble, AcceptsFullMatchOnly) {
  double v = 0;
  EXPECT_TRUE(parse_double("3.25", v));
  EXPECT_DOUBLE_EQ(v, 3.25);
  EXPECT_TRUE(parse_double("  -1e3 ", v));
  EXPECT_DOUBLE_EQ(v, -1000.0);
  EXPECT_FALSE(parse_double("3.25x", v));
  EXPECT_FALSE(parse_double("", v));
  EXPECT_FALSE(parse_double("abc", v));
}

TEST(ParseSize, AcceptsUnsignedIntegers) {
  std::size_t v = 0;
  EXPECT_TRUE(parse_size("42", v));
  EXPECT_EQ(v, 42u);
  EXPECT_FALSE(parse_size("-1", v));
  EXPECT_FALSE(parse_size("4.2", v));
}

}  // namespace
}  // namespace cube
