#include "common/text_table.hpp"

#include <gtest/gtest.h>

namespace cube {
namespace {

TEST(TextTable, AlignsColumns) {
  TextTable t;
  t.set_header({"name", "value"});
  t.add_row({"a", "1"});
  t.add_row({"long-name", "12345"});
  const std::string out = t.str();
  // Header underline present, both rows present.
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("long-name"), std::string::npos);
  EXPECT_NE(out.find("-----"), std::string::npos);
}

TEST(TextTable, RightAlignment) {
  TextTable t;
  t.set_header({"n"});
  t.set_align({Align::Right});
  t.add_row({"1"});
  t.add_row({"100"});
  const std::string out = t.str();
  // "1" must be padded to width 3: appears as "  1".
  EXPECT_NE(out.find("  1\n"), std::string::npos);
}

TEST(TextTable, PadsShortRows) {
  TextTable t;
  t.set_header({"a", "b", "c"});
  t.add_row({"x"});
  EXPECT_NO_THROW((void)t.str());
}

TEST(TextTable, RowsWiderThanHeader) {
  TextTable t;
  t.set_header({"a"});
  t.add_row({"x", "extra"});
  const std::string out = t.str();
  EXPECT_NE(out.find("extra"), std::string::npos);
}

TEST(TextTable, NoHeaderMeansNoUnderline) {
  TextTable t;
  t.add_row({"only", "rows"});
  const std::string out = t.str();
  EXPECT_EQ(out.find("---"), std::string::npos);
}

}  // namespace
}  // namespace cube
