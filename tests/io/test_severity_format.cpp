// Unit tests of the CUBESEV1 columnar severity blob (severity_format.hpp):
// round-trips for both storage kinds, the integrity checks each reader
// tier performs, and the mmap-backed store's equivalence to the owned one.
#include "io/severity_format.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>

#include "common/digest.hpp"
#include "common/error.hpp"
#include "model/severity.hpp"
#include "testutil.hpp"

namespace cube {
namespace {

using cube::testing::make_small;

class SeverityFormatTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::path(::testing::TempDir()) /
           ("cube_sev_" + std::string(::testing::UnitTest::GetInstance()
                                          ->current_test_info()
                                          ->name()));
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::filesystem::path write_blob(const std::string& bytes,
                                   const char* name = "b.sev") const {
    const std::filesystem::path path = dir_ / name;
    std::ofstream out(path, std::ios::trunc | std::ios::binary);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    return path;
  }

  std::filesystem::path dir_;
};

TEST_F(SeverityFormatTest, DenseRoundTrip) {
  const Experiment e = make_small(StorageKind::Dense);
  const std::string blob = to_cube_sev(e.severity());
  EXPECT_TRUE(is_cube_sev(blob));
  const auto back = read_cube_sev(blob);
  ASSERT_EQ(back->kind(), StorageKind::Dense);
  ASSERT_EQ(back->num_cells(), e.severity().num_cells());
  for (MetricIndex m = 0; m < e.metadata().num_metrics(); ++m) {
    for (CnodeIndex c = 0; c < e.metadata().num_cnodes(); ++c) {
      for (ThreadIndex t = 0; t < e.metadata().num_threads(); ++t) {
        EXPECT_EQ(back->get(m, c, t), e.severity().get(m, c, t));
      }
    }
  }
}

TEST_F(SeverityFormatTest, SparseRoundTripKeepsOnlyNonzeros) {
  Experiment e = make_small(StorageKind::Sparse);
  e.severity().set(0, 1, 2, 0.0);
  const std::string blob = to_cube_sev(e.severity());
  const auto back = read_cube_sev(blob);
  ASSERT_EQ(back->kind(), StorageKind::Sparse);
  EXPECT_EQ(back->nonzero_count(), e.severity().nonzero_count());
  EXPECT_EQ(back->get(0, 1, 2), 0.0);
  EXPECT_EQ(back->get(1, 1, 1), e.severity().get(1, 1, 1));
}

TEST_F(SeverityFormatTest, SerializationIsDeterministic) {
  const Experiment e = make_small(StorageKind::Sparse);
  EXPECT_EQ(to_cube_sev(e.severity()), to_cube_sev(e.severity()));
}

TEST_F(SeverityFormatTest, BadMagicRejected) {
  std::string blob = to_cube_sev(make_small().severity());
  blob[0] = 'X';
  EXPECT_THROW((void)read_cube_sev(blob), Error);
  EXPECT_FALSE(is_cube_sev(blob));
}

TEST_F(SeverityFormatTest, TruncationRejected) {
  const std::string blob = to_cube_sev(make_small().severity());
  EXPECT_THROW((void)read_cube_sev(blob.substr(0, 40)), Error);
  EXPECT_THROW((void)read_cube_sev(blob.substr(0, blob.size() - 8)), Error);
}

TEST_F(SeverityFormatTest, PayloadCorruptionFailsDigest) {
  std::string blob = to_cube_sev(make_small().severity());
  blob[blob.size() - 1] ^= 0x5a;  // flip payload bits, header intact
  EXPECT_THROW((void)read_cube_sev(blob), Error);
  // The full-check entry point sees it too; the mapping entry point (by
  // design) validates the header only.
  const std::filesystem::path path = write_blob(blob);
  EXPECT_THROW(check_cube_sev_file(path), Error);
  EXPECT_NO_THROW((void)map_cube_sev_file(path));
}

TEST_F(SeverityFormatTest, OverflowingHeaderCountsRejected) {
  // Hand-craft header-only blobs whose counts wrap the payload-size
  // product back to zero, so the exact-size check alone would pass and
  // the readers would build astronomically sized stores over 0 payload
  // bytes.  Both entry points must reject them up front.
  const auto u64 = [](std::uint64_t v) {
    std::string out(8, '\0');
    for (int i = 0; i < 8; ++i) {
      out[static_cast<std::size_t>(i)] =
          static_cast<char>((v >> (8 * i)) & 0xff);
    }
    return out;
  };
  const auto header = [&](std::uint64_t kind, std::uint64_t metrics,
                          std::uint64_t cnodes, std::uint64_t threads,
                          std::uint64_t entries) {
    return "CUBESEV1" + u64(kind) + u64(metrics) + u64(cnodes) +
           u64(threads) + u64(entries) + u64(0);
  };
  // Dense: entries = 2^61, geometry matching, 2^61 * 8 bytes wraps to 0.
  const std::string dense =
      header(0, std::uint64_t{1} << 61, 1, 1, std::uint64_t{1} << 61);
  EXPECT_THROW((void)read_cube_sev(dense), Error);
  EXPECT_THROW((void)map_cube_sev_file(write_blob(dense, "d.sev")), Error);
  // Sparse: entries = 2^60, 2^60 * 16 bytes wraps to 0.
  const std::string sparse =
      header(1, std::uint64_t{1} << 60, 2, 1, std::uint64_t{1} << 60);
  EXPECT_THROW((void)read_cube_sev(sparse), Error);
  EXPECT_THROW((void)map_cube_sev_file(write_blob(sparse, "s.sev")), Error);
  // Geometry whose cell product overflows uint64 outright.
  const std::string huge = header(1, std::uint64_t{1} << 32,
                                  std::uint64_t{1} << 32, 2, 0);
  EXPECT_THROW((void)read_cube_sev(huge), Error);
  EXPECT_THROW((void)map_cube_sev_file(write_blob(huge, "g.sev")), Error);
}

TEST_F(SeverityFormatTest, MappedStoreMatchesOwned) {
  const Experiment e = make_small(StorageKind::Dense);
  const std::string blob = to_cube_sev(e.severity());
  const std::filesystem::path path = write_blob(blob);
  const auto mapped = map_cube_sev_file(path);
  EXPECT_TRUE(mapped->file_backed());
  for (MetricIndex m = 0; m < e.metadata().num_metrics(); ++m) {
    for (CnodeIndex c = 0; c < e.metadata().num_cnodes(); ++c) {
      for (ThreadIndex t = 0; t < e.metadata().num_threads(); ++t) {
        EXPECT_EQ(mapped->get(m, c, t), e.severity().get(m, c, t));
      }
    }
  }
}

TEST_F(SeverityFormatTest, MappedSparseStoreMatchesOwned) {
  Experiment e = make_small(StorageKind::Sparse);
  e.severity().set(2, 3, 1, 0.0);
  const std::filesystem::path path = write_blob(to_cube_sev(e.severity()));
  const auto mapped = map_cube_sev_file(path);
  EXPECT_TRUE(mapped->file_backed());
  ASSERT_EQ(mapped->kind(), StorageKind::Sparse);
  EXPECT_EQ(mapped->nonzero_count(), e.severity().nonzero_count());
  for (MetricIndex m = 0; m < e.metadata().num_metrics(); ++m) {
    for (CnodeIndex c = 0; c < e.metadata().num_cnodes(); ++c) {
      for (ThreadIndex t = 0; t < e.metadata().num_threads(); ++t) {
        EXPECT_EQ(mapped->get(m, c, t), e.severity().get(m, c, t));
      }
    }
  }
}

TEST_F(SeverityFormatTest, DirectoryResolverFindsShardedBlob) {
  const Experiment e = make_small(StorageKind::Dense);
  const std::string blob = to_cube_sev(e.severity());
  const std::uint64_t digest = fnv1a(blob);
  const std::string name = sev_blob_name(digest);
  const std::filesystem::path target =
      dir_ / "sev" / name.substr(0, 2) / name;
  std::filesystem::create_directories(target.parent_path());
  {
    std::ofstream out(target, std::ios::binary);
    out.write(blob.data(), static_cast<std::streamsize>(blob.size()));
  }
  const SeverityResolver resolver = directory_severity_resolver(dir_);
  const auto store = resolver(digest, StorageKind::Dense);
  ASSERT_NE(store, nullptr);
  EXPECT_EQ(store->get(1, 1, 1), e.severity().get(1, 1, 1));
  // Unknown digests resolve to nothing rather than throwing.
  EXPECT_EQ(resolver(digest ^ 1, StorageKind::Dense), nullptr);
}

}  // namespace
}  // namespace cube
