#include "io/xml_parser.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace cube {
namespace {

TEST(XmlParser, SimpleElement) {
  const auto root = parse_xml("<a/>");
  EXPECT_EQ(root->name, "a");
  EXPECT_TRUE(root->children.empty());
}

TEST(XmlParser, DeclarationAndWhitespaceProlog) {
  const auto root =
      parse_xml("<?xml version=\"1.0\"?>\n  <!-- hi -->\n<a/>\n");
  EXPECT_EQ(root->name, "a");
}

TEST(XmlParser, Attributes) {
  const auto root = parse_xml("<a x=\"1\" y='two'/>");
  EXPECT_EQ(root->attr("x"), "1");
  EXPECT_EQ(root->attr("y"), "two");
  EXPECT_FALSE(root->attr("z").has_value());
}

TEST(XmlParser, RequiredAttrThrowsWhenMissing) {
  const auto root = parse_xml("<a x=\"1\"/>");
  EXPECT_EQ(root->required_attr("x"), "1");
  EXPECT_THROW((void)root->required_attr("y"), Error);
}

TEST(XmlParser, AttributeEntitiesResolved) {
  const auto root = parse_xml("<a x=\"a&amp;b&lt;c\"/>");
  EXPECT_EQ(root->attr("x"), "a&b<c");
}

TEST(XmlParser, NestedChildren) {
  const auto root = parse_xml("<a><b/><c><d/></c><b/></a>");
  EXPECT_EQ(root->children.size(), 3u);
  EXPECT_EQ(root->children_named("b").size(), 2u);
  ASSERT_NE(root->child("c"), nullptr);
  EXPECT_EQ(root->child("c")->children.size(), 1u);
}

TEST(XmlParser, TextContent) {
  const auto root = parse_xml("<a> hello &amp; goodbye </a>");
  EXPECT_EQ(root->text, " hello & goodbye ");
}

TEST(XmlParser, ChildTextHelper) {
  const auto root = parse_xml("<a><name>x</name></a>");
  EXPECT_EQ(root->child_text("name"), "x");
  EXPECT_EQ(root->child_text("missing"), "");
}

TEST(XmlParser, MixedTextAroundChildren) {
  const auto root = parse_xml("<a>pre<b/>post</a>");
  EXPECT_EQ(root->text, "prepost");
}

TEST(XmlParser, CdataPreservedVerbatim) {
  const auto root = parse_xml("<a><![CDATA[<not-xml> & raw]]></a>");
  EXPECT_EQ(root->text, "<not-xml> & raw");
}

TEST(XmlParser, CommentsInsideContentIgnored) {
  const auto root = parse_xml("<a>x<!-- note -->y</a>");
  EXPECT_EQ(root->text, "xy");
}

TEST(XmlParser, ProcessingInstructionInsideContentIgnored) {
  const auto root = parse_xml("<a><?pi data?><b/></a>");
  EXPECT_EQ(root->children.size(), 1u);
}

TEST(XmlParser, DoctypeSkipped) {
  const auto root = parse_xml("<!DOCTYPE cube>\n<a/>");
  EXPECT_EQ(root->name, "a");
}

TEST(XmlParser, MismatchedClosingTagThrows) {
  EXPECT_THROW((void)parse_xml("<a></b>"), ParseError);
}

TEST(XmlParser, UnterminatedElementThrows) {
  EXPECT_THROW((void)parse_xml("<a><b></b>"), ParseError);
}

TEST(XmlParser, ContentAfterRootThrows) {
  EXPECT_THROW((void)parse_xml("<a/><b/>"), ParseError);
}

TEST(XmlParser, GarbageThrows) {
  EXPECT_THROW((void)parse_xml("not xml at all"), ParseError);
}

TEST(XmlParser, ErrorCarriesPosition) {
  try {
    (void)parse_xml("<a>\n  <b></c>\n</a>");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.line(), 2u);
    EXPECT_GT(e.column(), 0u);
  }
}

TEST(XmlParser, UnterminatedCommentThrows) {
  EXPECT_THROW((void)parse_xml("<a><!-- oops</a>"), ParseError);
}

TEST(XmlParser, LessThanInAttributeThrows) {
  EXPECT_THROW((void)parse_xml("<a x=\"<\"/>"), ParseError);
}

}  // namespace
}  // namespace cube
