#include "io/cube_format.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "common/error.hpp"
#include "testutil.hpp"

namespace cube {
namespace {

using cube::testing::make_small;

void expect_equal_experiments(const Experiment& a, const Experiment& b) {
  const Metadata& ma = a.metadata();
  const Metadata& mb = b.metadata();
  ASSERT_EQ(mb.num_metrics(), ma.num_metrics());
  ASSERT_EQ(mb.num_cnodes(), ma.num_cnodes());
  ASSERT_EQ(mb.num_threads(), ma.num_threads());
  for (std::size_t i = 0; i < ma.num_metrics(); ++i) {
    EXPECT_EQ(mb.metrics()[i]->unique_name(), ma.metrics()[i]->unique_name());
    EXPECT_EQ(mb.metrics()[i]->display_name(),
              ma.metrics()[i]->display_name());
    EXPECT_EQ(mb.metrics()[i]->unit(), ma.metrics()[i]->unit());
    const bool pa = ma.metrics()[i]->parent() != nullptr;
    const bool pb = mb.metrics()[i]->parent() != nullptr;
    EXPECT_EQ(pa, pb);
  }
  for (std::size_t i = 0; i < ma.num_cnodes(); ++i) {
    EXPECT_EQ(mb.cnodes()[i]->callee().name(),
              ma.cnodes()[i]->callee().name());
    EXPECT_EQ(mb.cnodes()[i]->path(), ma.cnodes()[i]->path());
  }
  for (std::size_t i = 0; i < ma.num_threads(); ++i) {
    EXPECT_EQ(mb.threads()[i]->rank(), ma.threads()[i]->rank());
    EXPECT_EQ(mb.threads()[i]->thread_id(), ma.threads()[i]->thread_id());
  }
  for (MetricIndex m = 0; m < ma.num_metrics(); ++m) {
    for (CnodeIndex c = 0; c < ma.num_cnodes(); ++c) {
      for (ThreadIndex t = 0; t < ma.num_threads(); ++t) {
        EXPECT_DOUBLE_EQ(b.severity().get(m, c, t),
                         a.severity().get(m, c, t));
      }
    }
  }
  EXPECT_EQ(b.attributes(), a.attributes());
}

TEST(CubeFormat, RoundTripPreservesEverything) {
  Experiment e = make_small();
  e.set_attribute("custom", "value with <specials> & \"quotes\"");
  const Experiment back = read_cube_xml(to_cube_xml(e));
  expect_equal_experiments(e, back);
}

TEST(CubeFormat, RoundTripSparseStorage) {
  const Experiment e = make_small(StorageKind::Sparse);
  const Experiment back =
      read_cube_xml(to_cube_xml(e), StorageKind::Sparse);
  EXPECT_EQ(back.severity().kind(), StorageKind::Sparse);
  expect_equal_experiments(e, back);
}

TEST(CubeFormat, NegativeSeveritiesSurvive) {
  Experiment e = make_small();
  e.severity().set(0, 0, 0, -12.5);
  const Experiment back = read_cube_xml(to_cube_xml(e));
  EXPECT_DOUBLE_EQ(back.severity().get(0, 0, 0), -12.5);
}

TEST(CubeFormat, FullPrecisionDoublesSurvive) {
  Experiment e = make_small();
  const double value = 0.1 + 0.2 + 1e-17;
  e.severity().set(1, 1, 1, value);
  const Experiment back = read_cube_xml(to_cube_xml(e));
  EXPECT_DOUBLE_EQ(back.severity().get(1, 1, 1), value);
}

TEST(CubeFormat, AllZeroExperimentOmitsSeverityRows) {
  auto md = make_small().metadata().clone();
  const Experiment zero(std::move(md));
  const std::string xml = to_cube_xml(zero);
  EXPECT_EQ(xml.find("<matrix"), std::string::npos);
  const Experiment back = read_cube_xml(xml);
  EXPECT_EQ(back.severity().nonzero_count(), 0u);
}

TEST(CubeFormat, TopologyCoordsRoundTrip) {
  auto md = make_small().metadata().clone();
  md->processes()[1]->set_coords({2, -1, 0});
  const Experiment e(std::move(md));
  const Experiment back = read_cube_xml(to_cube_xml(e));
  ASSERT_TRUE(back.metadata().processes()[1]->coords().has_value());
  EXPECT_EQ(*back.metadata().processes()[1]->coords(),
            (std::vector<long>{2, -1, 0}));
}

TEST(CubeFormat, FileRoundTrip) {
  const Experiment e = make_small();
  const std::string path = ::testing::TempDir() + "/cube_format_test.cube";
  write_cube_xml_file(e, path);
  const Experiment back = read_cube_xml_file(path);
  expect_equal_experiments(e, back);
  std::remove(path.c_str());
}

TEST(CubeFormat, MissingFileThrows) {
  EXPECT_THROW((void)read_cube_xml_file("/nonexistent/nope.cube"), IoError);
}

TEST(CubeFormat, WrongDocumentElementThrows) {
  EXPECT_THROW((void)read_cube_xml("<notcube></notcube>"), Error);
}

TEST(CubeFormat, MissingSectionsThrow) {
  EXPECT_THROW((void)read_cube_xml("<cube></cube>"), Error);
  EXPECT_THROW((void)read_cube_xml("<cube><metrics/></cube>"), Error);
}

TEST(CubeFormat, UnknownSeverityReferencesThrow) {
  Experiment e = make_small();
  std::string xml = to_cube_xml(e);
  // Point a matrix at a metric id that does not exist.
  const auto pos = xml.find("<matrix metric=\"0\"");
  ASSERT_NE(pos, std::string::npos);
  xml.replace(pos, 18, "<matrix metric=\"99\"");
  EXPECT_THROW((void)read_cube_xml(xml), Error);
}

TEST(CubeFormat, TooManySeverityValuesThrow) {
  const std::string xml = R"(<cube version="1.0">
    <metrics><metric id="0"><disp_name>T</disp_name><uniq_name>t</uniq_name>
      <uom>sec</uom></metric></metrics>
    <program>
      <region id="0" name="main" mod="a.c" begin="1" end="2"/>
      <csite id="0" file="a.c" line="1" callee="0"/>
      <cnode id="0" csite="0"/>
    </program>
    <system><machine id="0" name="m"><node id="0" name="n">
      <process id="0" name="p" rank="0"><thread id="0" name="t" tid="0"/>
      </process></node></machine></system>
    <severity><matrix metric="0"><row cnode="0">1 2 3</row></matrix>
    </severity></cube>)";
  EXPECT_THROW((void)read_cube_xml(xml), Error);
}

TEST(CubeFormat, DerivedExperimentRoundTripsAsDerived) {
  Experiment e = make_small();
  e.mark_derived("difference(x, y)");
  const Experiment back = read_cube_xml(to_cube_xml(e));
  EXPECT_EQ(back.kind(), ExperimentKind::Derived);
  EXPECT_EQ(back.provenance(), "difference(x, y)");
}

TEST(CubeFormat, ReaderValidatesModelConstraints) {
  // A process without threads violates the data model.
  const std::string xml = R"(<cube version="1.0">
    <metrics><metric id="0"><disp_name>T</disp_name><uniq_name>t</uniq_name>
      <uom>sec</uom></metric></metrics>
    <program>
      <region id="0" name="main" mod="a.c" begin="1" end="2"/>
      <csite id="0" file="a.c" line="1" callee="0"/>
      <cnode id="0" csite="0"/>
    </program>
    <system><machine id="0" name="m"><node id="0" name="n">
      <process id="0" name="p" rank="0"/></node></machine></system>
    </cube>)";
  EXPECT_THROW((void)read_cube_xml(xml), ValidationError);
}

/// Resolver over a single in-memory instance, keyed by its digest.
MetadataResolver single_resolver(std::shared_ptr<const Metadata> md) {
  return [md = std::move(md)](
             std::uint64_t digest) -> std::shared_ptr<const Metadata> {
    return digest == md->digest() ? md : nullptr;
  };
}

TEST(CubeFormatByRef, RoundTripSharesTheResolvedInstance) {
  Experiment e = make_small();
  e.set_attribute("custom", "value");
  const std::string xml = to_cube_xml_ref(e);
  EXPECT_NE(xml.find("<metaref"), std::string::npos);
  // The metadata sections are gone from the document itself.
  EXPECT_EQ(xml.find("<metrics"), std::string::npos);
  EXPECT_EQ(xml.find("<program"), std::string::npos);

  const Experiment back =
      read_cube_xml(xml, StorageKind::Dense, single_resolver(e.metadata_ptr()));
  expect_equal_experiments(e, back);
  EXPECT_EQ(back.metadata_ptr().get(), e.metadata_ptr().get());
}

TEST(CubeFormatByRef, MissingResolverThrows) {
  const Experiment e = make_small();
  EXPECT_THROW((void)read_cube_xml(to_cube_xml_ref(e)), Error);
}

TEST(CubeFormatByRef, UnresolvableDigestThrows) {
  const Experiment e = make_small();
  const auto nothing = [](std::uint64_t) {
    return std::shared_ptr<const Metadata>();
  };
  EXPECT_THROW(
      (void)read_cube_xml(to_cube_xml_ref(e), StorageKind::Dense, nothing),
      Error);
}

TEST(CubeFormatByRef, SpecialCharacterAttributesRoundTrip) {
  // Attribute values exercising every XML escape, through BOTH document
  // forms: ampersands, angle brackets, and both quote kinds.
  Experiment e = make_small();
  e.set_attribute("cmd", "a.out <in >out 2>&1");
  e.set_attribute("note", R"(he said "fast" & 'correct')");
  e.set_attribute("expr", "diff(a<b, c&d)");

  const Experiment inline_back = read_cube_xml(to_cube_xml(e));
  EXPECT_EQ(inline_back.attributes(), e.attributes());

  const Experiment ref_back = read_cube_xml(
      to_cube_xml_ref(e), StorageKind::Dense,
      single_resolver(e.metadata_ptr()));
  EXPECT_EQ(ref_back.attributes(), e.attributes());
}

TEST(CubeFormatByRef, ReadExperimentFileResolvesAgainstMetaDirectory) {
  // The repository layout: <dir>/run.cube referencing <dir>/meta/<digest>.
  namespace fs = std::filesystem;
  const fs::path dir = fs::path(::testing::TempDir()) / "cube_byref_layout";
  fs::remove_all(dir);
  fs::create_directories(dir / "meta");
  const Experiment e = make_small();
  write_cube_meta_file(
      e.metadata(),
      (dir / "meta" / meta_blob_name(e.metadata().digest())).string());
  write_cube_xml_ref_file(e, (dir / "run.cube").string());

  const Experiment back = read_experiment_file((dir / "run.cube").string());
  expect_equal_experiments(e, back);
  fs::remove_all(dir);
}

}  // namespace
}  // namespace cube
