// Crash-injection tests for the sharded repository layout: torn segment
// appends, a crash between the blob writes and the index append, and
// compactions interrupted on either side of their MANIFEST commit.  Each
// test constructs the exact on-disk state such a crash leaves behind and
// asserts that open() reads losslessly past it and migrate() sweeps the
// debris (docs/STORAGE.md).
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "io/index_segments.hpp"
#include "io/repository.hpp"
#include "io/severity_format.hpp"
#include "testutil.hpp"

namespace cube {
namespace {

using cube::testing::make_small;

class RepoShardsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::path(::testing::TempDir()) /
           ("cube_shards_" + std::string(::testing::UnitTest::GetInstance()
                                             ->current_test_info()
                                             ->name()));
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::filesystem::path active_segment() const {
    ExperimentRepository repo(dir_);
    const SegmentedIndex* index = repo.segmented_index();
    EXPECT_NE(index, nullptr);
    return index->index_dir() / index->segment_names().back();
  }

  static std::string slurp(const std::filesystem::path& path) {
    std::ifstream in(path, std::ios::binary);
    return std::string(std::istreambuf_iterator<char>(in),
                       std::istreambuf_iterator<char>());
  }

  static void spill(const std::filesystem::path& path,
                    const std::string& bytes) {
    std::ofstream out(path, std::ios::trunc | std::ios::binary);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }

  std::filesystem::path dir_;
};

TEST_F(RepoShardsTest, FreshRepositoryUsesShardedLayout) {
  ExperimentRepository repo(dir_);
  EXPECT_EQ(repo.layout(), RepoLayout::Sharded);
  EXPECT_TRUE(std::filesystem::exists(dir_ / "index" / "MANIFEST"));
  EXPECT_FALSE(std::filesystem::exists(dir_ / "index.xml"));
}

TEST_F(RepoShardsTest, TornGarbageTailIsIgnoredOnOpen) {
  {
    ExperimentRepository repo(dir_);
    repo.store(make_small(StorageKind::Dense, "a"));
    repo.store(make_small(StorageKind::Dense, "b"));
    repo.store(make_small(StorageKind::Dense, "c"));
  }
  // A crash mid-append leaves a partial frame at the tail.
  {
    std::ofstream out(active_segment(),
                      std::ios::app | std::ios::binary);
    out << "R 57 0123456789abcdef\n<entry id=\"torn";
  }
  ExperimentRepository reopened(dir_);
  ASSERT_EQ(reopened.entries().size(), 3u);
  EXPECT_NO_THROW((void)reopened.load("a"));
  EXPECT_NO_THROW((void)reopened.load("c"));
}

TEST_F(RepoShardsTest, NextAppendTruncatesTornTail) {
  {
    ExperimentRepository repo(dir_);
    repo.store(make_small(StorageKind::Dense, "a"));
  }
  const std::filesystem::path seg = active_segment();
  {
    std::ofstream out(seg, std::ios::app | std::ios::binary);
    out << "R 9999 deadbeefdeadbeef\ngarbage";
  }
  {
    // The reopened writer parses up to the tear, truncates it, and
    // appends the new record where the tear began.
    ExperimentRepository repo(dir_);
    repo.store(make_small(StorageKind::Dense, "b"));
  }
  EXPECT_EQ(slurp(seg).find("deadbeef"), std::string::npos);
  ExperimentRepository reopened(dir_);
  ASSERT_EQ(reopened.entries().size(), 2u);
  EXPECT_NO_THROW((void)reopened.load("b"));
}

TEST_F(RepoShardsTest, CrashBeforeIndexAppendLeavesOrphanBlobsOnly) {
  ExperimentRepository setup(dir_);
  setup.store(make_small(StorageKind::Dense, "kept"));
  const std::string before = slurp(active_segment());
  setup.store(make_small(StorageKind::Sparse, "lost"), RepoFormat::Columnar);
  // store() writes meta blob -> sev blob -> experiment file -> index
  // record, in that order.  Rewinding the segment to its pre-store bytes
  // reproduces a crash after the file writes but before the append.
  spill(active_segment(), before);

  ExperimentRepository crashed(dir_);
  ASSERT_EQ(crashed.entries().size(), 1u);
  EXPECT_EQ(crashed.entries()[0].id, "kept");
  // The unindexed blobs are orphans, not corruption...
  EXPECT_FALSE(crashed.orphan_blobs().empty());
  EXPECT_GT(crashed.remove_orphan_blobs(), 0u);
  EXPECT_TRUE(crashed.orphan_blobs().empty());
  // ...and the store can simply be retried.
  crashed.store(make_small(StorageKind::Sparse, "lost"),
                RepoFormat::Columnar);
  EXPECT_NO_THROW((void)crashed.load("lost"));
  EXPECT_NO_THROW((void)ExperimentRepository(dir_).load("kept"));
}

TEST_F(RepoShardsTest, CompactionCrashBeforeCommitLeavesOrphanSegment) {
  {
    ExperimentRepository repo(dir_);
    repo.store(make_small(StorageKind::Dense, "a"));
    repo.store(make_small(StorageKind::Dense, "b"));
  }
  // A compaction that died before its MANIFEST rename leaves its output
  // segment on disk, unlisted.  Use a number past the active segment.
  spill(dir_ / "index" / "seg-000099.log", "R 3 0000000000000000\nxxx\n");

  ExperimentRepository repo(dir_);
  ASSERT_EQ(repo.entries().size(), 2u);  // the orphan is never read
  const SegmentedIndex::StraySegments strays =
      repo.segmented_index()->stray_segments();
  ASSERT_EQ(strays.orphans.size(), 1u);
  EXPECT_NE(strays.orphans[0].find("seg-000099.log"), std::string::npos);
  EXPECT_TRUE(strays.stale.empty());

  EXPECT_GT(repo.migrate(), 0u);  // recovery: sweep the debris
  EXPECT_FALSE(std::filesystem::exists(dir_ / "index" / "seg-000099.log"));
  EXPECT_TRUE(repo.segmented_index()->stray_segments().orphans.empty());
  EXPECT_EQ(repo.entries().size(), 2u);
}

TEST_F(RepoShardsTest, CompactionCrashAfterCommitLeavesStaleSegment) {
  {
    ExperimentRepository repo(dir_);
    for (int i = 0; i < 6; ++i) {
      repo.store(make_small(StorageKind::Dense, "e" + std::to_string(i)));
    }
    repo.compact();  // manifest now lists later segment numbers
  }
  // Re-materialize the superseded first segment the (simulated) crashed
  // compaction failed to delete, plus a temp-file leftover.
  spill(dir_ / "index" / "seg-000001.log", "stale bytes");
  spill(dir_ / "index" / "MANIFEST.tmp", "half-written manifest");

  ExperimentRepository repo(dir_);
  ASSERT_EQ(repo.entries().size(), 6u);
  const SegmentedIndex::StraySegments strays =
      repo.segmented_index()->stray_segments();
  EXPECT_TRUE(strays.orphans.empty());
  ASSERT_EQ(strays.stale.size(), 2u);

  EXPECT_EQ(repo.remove_stray_segments(), 2u);
  EXPECT_FALSE(std::filesystem::exists(dir_ / "index" / "seg-000001.log"));
  EXPECT_FALSE(std::filesystem::exists(dir_ / "index" / "MANIFEST.tmp"));
  ASSERT_EQ(ExperimentRepository(dir_).entries().size(), 6u);
}

TEST_F(RepoShardsTest, CompactFoldsTombstonesLosslessly) {
  ExperimentRepository repo(dir_);
  for (int i = 0; i < 8; ++i) {
    repo.store(make_small(StorageKind::Dense, "e" + std::to_string(i)));
  }
  for (int i = 0; i < 4; ++i) repo.remove("e" + std::to_string(i));
  ASSERT_EQ(repo.entries().size(), 4u);
  EXPECT_GT(repo.compact(), 0u);

  ExperimentRepository reopened(dir_);
  ASSERT_EQ(reopened.entries().size(), 4u);
  for (int i = 4; i < 8; ++i) {
    EXPECT_NO_THROW((void)reopened.load("e" + std::to_string(i)));
  }
  EXPECT_THROW((void)reopened.load("e0"), Error);
}

TEST_F(RepoShardsTest, RefreshPicksUpExternalAppends) {
  ExperimentRepository writer(dir_);
  ExperimentRepository reader(dir_);
  const std::uint64_t gen = reader.generation();
  EXPECT_FALSE(reader.refresh());

  writer.store(make_small(StorageKind::Dense, "late"));
  EXPECT_TRUE(reader.refresh());  // unchanged MANIFEST: tail parse only
  EXPECT_GT(reader.generation(), gen);
  ASSERT_EQ(reader.entries().size(), 1u);
  EXPECT_NO_THROW((void)reader.load("late"));
  EXPECT_FALSE(reader.refresh());
}

TEST_F(RepoShardsTest, CompactMergesExternalAppends) {
  ExperimentRepository writer(dir_);
  writer.store(make_small(StorageKind::Dense, "base"));
  ExperimentRepository reader(dir_);
  ASSERT_EQ(reader.entries().size(), 1u);

  // Appended by another process after the reader's last refresh: folding
  // the index from the reader's stale in-memory list must replay it, not
  // destroy it (the rewritten MANIFEST would otherwise make the loss
  // permanent — the next refresh() sees its digest as unchanged).
  writer.store(make_small(StorageKind::Dense, "late"));
  const std::uint64_t gen = reader.generation();
  reader.compact();
  EXPECT_GT(reader.generation(), gen);
  ASSERT_EQ(reader.entries().size(), 2u);
  EXPECT_NO_THROW((void)reader.load("late"));
  EXPECT_FALSE(reader.refresh());

  ExperimentRepository reopened(dir_);
  ASSERT_EQ(reopened.entries().size(), 2u);
  EXPECT_NO_THROW((void)reopened.load("late"));
  // The writer sees the compacted segment list on its next refresh.
  EXPECT_TRUE(writer.refresh());
  ASSERT_EQ(writer.entries().size(), 2u);
}

TEST_F(RepoShardsTest, CompactReloadsAfterExternalCompaction) {
  ExperimentRepository writer(dir_);
  ExperimentRepository reader(dir_);  // stale: sees an empty repository
  for (int i = 0; i < 6; ++i) {
    writer.store(make_small(StorageKind::Dense, "e" + std::to_string(i)));
  }
  writer.remove("e0");
  writer.compact();  // MANIFEST changed under the stale reader
  reader.compact();  // must reload before rewriting, or 5 entries vanish
  ASSERT_EQ(reader.entries().size(), 5u);
  EXPECT_NO_THROW((void)reader.load("e5"));
  ASSERT_EQ(ExperimentRepository(dir_).entries().size(), 5u);
}

TEST_F(RepoShardsTest, RefreshSurvivesExternalCompaction) {
  ExperimentRepository writer(dir_);
  ExperimentRepository reader(dir_);
  for (int i = 0; i < 6; ++i) {
    writer.store(make_small(StorageKind::Dense, "e" + std::to_string(i)));
  }
  writer.remove("e0");
  writer.compact();  // MANIFEST changed: reader must fully reload
  EXPECT_TRUE(reader.refresh());
  ASSERT_EQ(reader.entries().size(), 5u);
  EXPECT_NO_THROW((void)reader.load("e5"));
}

TEST_F(RepoShardsTest, ColumnarEntriesRoundTripThroughSevBlobs) {
  Experiment dense = make_small(StorageKind::Dense, "dense");
  Experiment sparse = make_small(StorageKind::Sparse, "sparse");
  sparse.severity().set(1, 2, 3, 0.0);  // keep a hole in the key column
  {
    ExperimentRepository repo(dir_);
    repo.store(dense, RepoFormat::Columnar);
    repo.store(sparse, RepoFormat::Columnar);
    EXPECT_NE(repo.entries()[0].file.find(".cubc"), std::string::npos);
    EXPECT_FALSE(repo.entries()[0].sev.empty());
  }
  ExperimentRepository reopened(dir_);
  const Experiment dense_back = reopened.load("dense");
  const Experiment sparse_back = reopened.load("sparse");
  const Metadata& md = dense.metadata();
  for (MetricIndex m = 0; m < md.num_metrics(); ++m) {
    for (CnodeIndex c = 0; c < md.num_cnodes(); ++c) {
      for (ThreadIndex t = 0; t < md.num_threads(); ++t) {
        EXPECT_EQ(dense_back.severity().get(m, c, t),
                  dense.severity().get(m, c, t));
        EXPECT_EQ(sparse_back.severity().get(m, c, t),
                  sparse.severity().get(m, c, t));
      }
    }
  }
  // The blobs live under sev/<ab>/ and pass the full integrity check.
  std::size_t checked = 0;
  for (const auto& file :
       std::filesystem::recursive_directory_iterator(dir_ / "sev")) {
    if (!file.is_regular_file()) continue;
    EXPECT_NO_THROW(check_cube_sev_file(file.path()));
    EXPECT_EQ(file.path().parent_path().filename().string(),
              file.path().filename().string().substr(0, 2));
    ++checked;
  }
  EXPECT_GE(checked, 1u);
}

TEST_F(RepoShardsTest, MappedSeverityMatchesOwnedAfterRelease) {
  const Experiment e = make_small(StorageKind::Dense, "mapped");
  const std::string blob = to_cube_sev(e.severity());
  const std::filesystem::path path = dir_ / "blob.sev";
  std::filesystem::create_directories(dir_);
  spill(path, blob);

  const auto owned = read_cube_sev(blob);
  const auto mapped = map_cube_sev_file(path);
  ASSERT_TRUE(mapped->file_backed());
  const Metadata& md = e.metadata();
  const std::size_t cells =
      md.num_metrics() * md.num_cnodes() * md.num_threads();
  for (MetricIndex m = 0; m < md.num_metrics(); ++m) {
    for (CnodeIndex c = 0; c < md.num_cnodes(); ++c) {
      for (ThreadIndex t = 0; t < md.num_threads(); ++t) {
        EXPECT_EQ(mapped->get(m, c, t), owned->get(m, c, t));
      }
    }
  }
  // Released pages refault from the file: values unchanged.
  mapped->release_cells(0, cells);
  for (MetricIndex m = 0; m < md.num_metrics(); ++m) {
    EXPECT_EQ(mapped->get(m, 0, 0), owned->get(m, 0, 0));
  }
}

TEST_F(RepoShardsTest, ShardedBlobAndFilePlacement) {
  ExperimentRepository repo(dir_);
  repo.store(make_small(StorageKind::Dense, "placed"), RepoFormat::Columnar);
  const RepoEntry& entry = repo.entries()[0];
  // Experiment file under exp/<ab>/, blobs named by their own digest.
  EXPECT_EQ(entry.file.rfind("exp/", 0), 0u);
  for (const char* sub : {"meta", "sev"}) {
    for (const auto& file :
         std::filesystem::recursive_directory_iterator(dir_ / sub)) {
      if (!file.is_regular_file()) continue;
      EXPECT_EQ(file.path().parent_path().filename().string(),
                file.path().filename().string().substr(0, 2))
          << file.path();
    }
  }
}

}  // namespace
}  // namespace cube
