// Property-style sweeps over the XML layer with seeded random content.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "common/string_util.hpp"
#include "io/xml_parser.hpp"
#include "io/xml_writer.hpp"

#include <sstream>

namespace cube {
namespace {

std::string random_text(SplitMix64& rng, std::size_t max_len) {
  // Printable ASCII incl. the XML specials, plus some UTF-8 bytes via
  // escaped character references on the writer side.
  static constexpr char kAlphabet[] =
      "abc <>&\"' XYZ\t\n01.;=-_[]{}!?";
  const std::size_t len = rng.below(max_len + 1);
  std::string out;
  for (std::size_t i = 0; i < len; ++i) {
    out.push_back(kAlphabet[rng.below(sizeof kAlphabet - 1)]);
  }
  return out;
}

class XmlProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(XmlProperty, EscapeUnescapeRoundTrip) {
  SplitMix64 rng(GetParam());
  for (int i = 0; i < 50; ++i) {
    const std::string original = random_text(rng, 64);
    EXPECT_EQ(xml_unescape(xml_escape(original)), original);
  }
}

TEST_P(XmlProperty, WriterOutputAlwaysParses) {
  SplitMix64 rng(GetParam() + 500);
  for (int i = 0; i < 20; ++i) {
    std::ostringstream os;
    XmlWriter w(os);
    w.declaration();
    w.open_element("root");
    const std::string attr_value = random_text(rng, 40);
    w.attribute("v", attr_value);
    const std::size_t children = rng.below(5);
    std::string child_text;
    for (std::size_t c = 0; c < children; ++c) {
      w.open_element("child");
      child_text = random_text(rng, 40);
      w.text(child_text);
      w.close_element();
    }
    w.close_element();

    const auto root = parse_xml(os.str());
    EXPECT_EQ(root->name, "root");
    EXPECT_EQ(root->attr("v"), attr_value);
    EXPECT_EQ(root->children.size(), children);
    if (children > 0) {
      EXPECT_EQ(root->children.back()->text, child_text);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, XmlProperty,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u));

}  // namespace
}  // namespace cube
