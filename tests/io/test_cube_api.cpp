#include "io/cube_api.hpp"

#include <gtest/gtest.h>

#include <cstdio>

#include "common/error.hpp"

namespace cube {
namespace {

Experiment build_via_api() {
  Cube cube;
  const auto m_time = cube.def_metric("time", "Time", "sec", "total time");
  const auto m_mpi = cube.def_metric("mpi", "MPI", "sec", "mpi", m_time);
  const auto r_main = cube.def_region("main", "app.c", 1, 99);
  const auto r_f = cube.def_region("f", "app.c", 10, 40);
  const auto cs_main = cube.def_callsite("app.c", 1, r_main);
  const auto cs_f = cube.def_callsite("app.c", 20, r_f);
  const auto c_main = cube.def_cnode(cs_main);
  const auto c_f = cube.def_cnode(cs_f, c_main);
  const auto machine = cube.def_machine("mach");
  const auto node = cube.def_node("node0", machine);
  const auto p0 = cube.def_process("rank 0", 0, node);
  const auto p1 = cube.def_process("rank 1", 1, node);
  const auto t0 = cube.def_thread("thread 0", 0, p0);
  const auto t1 = cube.def_thread("thread 0", 0, p1);
  cube.set_severity(m_time, c_main, t0, 1.0);
  cube.set_severity(m_time, c_f, t1, 2.0);
  cube.add_severity(m_mpi, c_f, t0, 0.5);
  cube.add_severity(m_mpi, c_f, t0, 0.25);
  return cube.take("api-built");
}

TEST(CubeApi, BuildsValidExperiment) {
  const Experiment e = build_via_api();
  EXPECT_EQ(e.name(), "api-built");
  EXPECT_NO_THROW(e.metadata().validate());
  EXPECT_EQ(e.metadata().num_metrics(), 2u);
  EXPECT_EQ(e.metadata().num_cnodes(), 2u);
  EXPECT_EQ(e.metadata().num_threads(), 2u);
}

TEST(CubeApi, SeverityBufferedAndApplied) {
  const Experiment e = build_via_api();
  EXPECT_DOUBLE_EQ(e.severity().get(0, 0, 0), 1.0);
  EXPECT_DOUBLE_EQ(e.severity().get(0, 1, 1), 2.0);
  EXPECT_DOUBLE_EQ(e.severity().get(1, 1, 0), 0.75);  // two adds
}

TEST(CubeApi, TakeResetsBuilderForReuse) {
  Cube cube;
  const auto m = cube.def_metric("x", "X", "occ", "");
  const auto r = cube.def_region("main", "a.c", 1, 2);
  const auto cs = cube.def_callsite("a.c", 1, r);
  const auto c = cube.def_cnode(cs);
  const auto mach = cube.def_machine("m");
  const auto node = cube.def_node("n", mach);
  const auto p = cube.def_process("p", 0, node);
  const auto t = cube.def_thread("t", 0, p);
  cube.set_severity(m, c, t, 1.0);
  const Experiment first = cube.take("first");

  // Builder is reusable from scratch.
  const auto m2 = cube.def_metric("y", "Y", "bytes", "");
  EXPECT_EQ(m2, 0u);
  const auto r2 = cube.def_region("main", "a.c", 1, 2);
  const auto cs2 = cube.def_callsite("a.c", 1, r2);
  const auto c2 = cube.def_cnode(cs2);
  const auto mach2 = cube.def_machine("m");
  const auto node2 = cube.def_node("n", mach2);
  const auto p2 = cube.def_process("p", 0, node2);
  (void)cube.def_thread("t", 0, p2);
  (void)c2;
  const Experiment second = cube.take("second");
  EXPECT_EQ(second.metadata().find_metric("y")->unit(), Unit::Bytes);
  EXPECT_EQ(second.metadata().find_metric("x"), nullptr);
}

TEST(CubeApi, InvalidUnitRejected) {
  Cube cube;
  EXPECT_THROW((void)cube.def_metric("m", "M", "parsecs", ""), Error);
}

TEST(CubeApi, BadHandleThrows) {
  Cube cube;
  EXPECT_THROW((void)cube.def_callsite("a.c", 1, 42), std::out_of_range);
}

TEST(CubeApi, TakeValidates) {
  Cube cube;
  const auto mach = cube.def_machine("m");
  const auto node = cube.def_node("n", mach);
  (void)cube.def_process("p", 0, node);  // no thread -> invalid
  EXPECT_THROW((void)cube.take("bad"), ValidationError);
}

TEST(CubeApi, FileRoundTripViaStaticHelpers) {
  const Experiment e = build_via_api();
  const std::string path = ::testing::TempDir() + "/cube_api_test.cube";
  Cube::write_file(e, path);
  const Experiment back = Cube::read_file(path);
  EXPECT_EQ(back.name(), "api-built");
  EXPECT_DOUBLE_EQ(back.severity().get(1, 1, 0), 0.75);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace cube
