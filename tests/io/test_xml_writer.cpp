#include "io/xml_writer.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "common/error.hpp"

namespace cube {
namespace {

std::string write(const std::function<void(XmlWriter&)>& body) {
  std::ostringstream os;
  XmlWriter w(os);
  body(w);
  return os.str();
}

TEST(XmlWriter, Declaration) {
  const std::string out = write([](XmlWriter& w) {
    w.declaration();
    w.open_element("root");
    w.close_element();
  });
  EXPECT_EQ(out.find("<?xml version=\"1.0\""), 0u);
}

TEST(XmlWriter, SelfClosingEmptyElement) {
  const std::string out = write([](XmlWriter& w) {
    w.open_element("empty");
    w.close_element();
  });
  EXPECT_EQ(out, "<empty/>\n");
}

TEST(XmlWriter, AttributesAreEscaped) {
  const std::string out = write([](XmlWriter& w) {
    w.open_element("e");
    w.attribute("k", "a<b&\"c\"");
    w.close_element();
  });
  EXPECT_NE(out.find("k=\"a&lt;b&amp;&quot;c&quot;\""), std::string::npos);
}

TEST(XmlWriter, InlineTextElement) {
  const std::string out = write([](XmlWriter& w) {
    w.open_element("name");
    w.text("x & y");
    w.close_element();
  });
  EXPECT_EQ(out, "<name>x &amp; y</name>\n");
}

TEST(XmlWriter, NestedIndentation) {
  const std::string out = write([](XmlWriter& w) {
    w.open_element("a");
    w.open_element("b");
    w.close_element();
    w.close_element();
  });
  EXPECT_EQ(out, "<a>\n  <b/>\n</a>\n");
}

TEST(XmlWriter, NumericAttributeOverloads) {
  const std::string out = write([](XmlWriter& w) {
    w.open_element("e");
    w.attribute("i", -5L);
    w.attribute("u", static_cast<std::size_t>(7));
    w.close_element();
  });
  EXPECT_NE(out.find("i=\"-5\""), std::string::npos);
  EXPECT_NE(out.find("u=\"7\""), std::string::npos);
}

TEST(XmlWriter, Comment) {
  const std::string out = write([](XmlWriter& w) {
    w.open_element("a");
    w.comment("note");
    w.close_element();
  });
  EXPECT_NE(out.find("<!-- note -->"), std::string::npos);
}

TEST(XmlWriter, AttributeAfterContentThrows) {
  std::ostringstream os;
  XmlWriter w(os);
  w.open_element("a");
  w.text("t");
  EXPECT_THROW(w.attribute("k", "v"), Error);
}

TEST(XmlWriter, CloseWithoutOpenThrows) {
  std::ostringstream os;
  XmlWriter w(os);
  EXPECT_THROW(w.close_element(), Error);
}

TEST(XmlWriter, FinishClosesEverything) {
  const std::string out = write([](XmlWriter& w) {
    w.open_element("a");
    w.open_element("b");
    w.open_element("c");
    w.finish();
  });
  EXPECT_NE(out.find("</b>"), std::string::npos);
  EXPECT_NE(out.find("</a>"), std::string::npos);
}

TEST(XmlWriter, TextOutsideElementThrows) {
  std::ostringstream os;
  XmlWriter w(os);
  EXPECT_THROW(w.text("loose"), Error);
}

}  // namespace
}  // namespace cube
