#include "io/binary_format.hpp"

#include <gtest/gtest.h>

#include <cstdio>

#include "common/error.hpp"
#include "io/cube_format.hpp"
#include "testutil.hpp"

namespace cube {
namespace {

using cube::testing::make_small;

TEST(BinaryFormat, RoundTripPreservesValues) {
  Experiment e = make_small();
  e.set_attribute("k", "v");
  e.severity().set(0, 0, 0, -3.25);
  const Experiment back = read_cube_binary(to_cube_binary(e));
  const Metadata& md = back.metadata();
  ASSERT_EQ(md.num_metrics(), e.metadata().num_metrics());
  ASSERT_EQ(md.num_cnodes(), e.metadata().num_cnodes());
  ASSERT_EQ(md.num_threads(), e.metadata().num_threads());
  for (MetricIndex m = 0; m < md.num_metrics(); ++m) {
    for (CnodeIndex c = 0; c < md.num_cnodes(); ++c) {
      for (ThreadIndex t = 0; t < md.num_threads(); ++t) {
        EXPECT_DOUBLE_EQ(back.severity().get(m, c, t),
                         e.severity().get(m, c, t));
      }
    }
  }
  EXPECT_EQ(back.attribute("k"), "v");
  EXPECT_EQ(back.name(), "small");
}

TEST(BinaryFormat, PreservesHierarchies) {
  const Experiment e = make_small();
  const Experiment back = read_cube_binary(to_cube_binary(e));
  EXPECT_EQ(back.metadata().cnodes()[1]->path(),
            e.metadata().cnodes()[1]->path());
  EXPECT_EQ(back.metadata().metrics()[1]->parent()->unique_name(), "time");
}

TEST(BinaryFormat, TopologyRoundTrip) {
  auto md = make_small().metadata().clone();
  md->processes()[0]->set_coords({4, 5});
  const Experiment e(std::move(md));
  const Experiment back = read_cube_binary(to_cube_binary(e));
  ASSERT_TRUE(back.metadata().processes()[0]->coords().has_value());
  EXPECT_EQ(*back.metadata().processes()[0]->coords(),
            (std::vector<long>{4, 5}));
}

TEST(BinaryFormat, BadMagicThrows) {
  EXPECT_THROW((void)read_cube_binary("NOTCUBE!xxxx"), Error);
  EXPECT_THROW((void)read_cube_binary(""), Error);
}

TEST(BinaryFormat, TruncatedStreamThrows) {
  const std::string data = to_cube_binary(make_small());
  EXPECT_THROW((void)read_cube_binary(
                   std::string_view(data).substr(0, data.size() / 2)),
               Error);
}

TEST(BinaryFormat, TrailingBytesThrow) {
  std::string data = to_cube_binary(make_small());
  data += "junk";
  EXPECT_THROW((void)read_cube_binary(data), Error);
}

TEST(BinaryFormat, FileRoundTrip) {
  const Experiment e = make_small();
  const std::string path = ::testing::TempDir() + "/cube_binary_test.cubx";
  write_cube_binary_file(e, path);
  const Experiment back = read_cube_binary_file(path);
  EXPECT_DOUBLE_EQ(back.severity().get(1, 1, 1),
                   e.severity().get(1, 1, 1));
  std::remove(path.c_str());
}

TEST(BinaryFormat, SmallerThanXmlForDenseData) {
  const Experiment e = make_small();
  EXPECT_LT(to_cube_binary(e).size(), to_cube_xml(e).size());
}

TEST(BinaryFormat, RequestedStorageKindHonored) {
  const Experiment e = make_small();
  const Experiment back =
      read_cube_binary(to_cube_binary(e), StorageKind::Sparse);
  EXPECT_EQ(back.severity().kind(), StorageKind::Sparse);
}

TEST(BinaryFormatByRef, RoundTripSharesTheResolvedInstance) {
  Experiment e = make_small();
  e.set_attribute("k", "v");
  e.severity().set(0, 0, 0, -3.25);
  const auto md = e.metadata_ptr();
  const auto resolve =
      [md](std::uint64_t digest) -> std::shared_ptr<const Metadata> {
    return digest == md->digest() ? md : nullptr;
  };
  const Experiment back =
      read_cube_binary(to_cube_binary_ref(e), StorageKind::Dense, resolve);
  EXPECT_EQ(back.metadata_ptr().get(), md.get());
  EXPECT_EQ(back.attribute("k"), "v");
  for (MetricIndex m = 0; m < md->num_metrics(); ++m) {
    for (CnodeIndex c = 0; c < md->num_cnodes(); ++c) {
      for (ThreadIndex t = 0; t < md->num_threads(); ++t) {
        EXPECT_DOUBLE_EQ(back.severity().get(m, c, t),
                         e.severity().get(m, c, t));
      }
    }
  }
}

TEST(BinaryFormatByRef, MissingResolverThrows) {
  EXPECT_THROW((void)read_cube_binary(to_cube_binary_ref(make_small())),
               Error);
}

TEST(BinaryFormatByRef, MuchSmallerThanInlineForm) {
  const Experiment e = make_small();
  EXPECT_LT(to_cube_binary_ref(e).size(), to_cube_binary(e).size());
}

}  // namespace
}  // namespace cube
