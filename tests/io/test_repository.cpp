#include "io/repository.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "algebra/operators.hpp"
#include "common/error.hpp"
#include "testutil.hpp"

namespace cube {
namespace {

using cube::testing::make_small;

class RepositoryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::path(::testing::TempDir()) /
           ("cube_repo_" + std::string(
                               ::testing::UnitTest::GetInstance()
                                   ->current_test_info()
                                   ->name()));
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::filesystem::path dir_;
};

TEST_F(RepositoryTest, StoreAndLoadRoundTrip) {
  ExperimentRepository repo(dir_);
  Experiment e = make_small();
  e.severity().set(0, 0, 0, 77.0);
  const std::string id = repo.store(e);
  const Experiment back = repo.load(id);
  EXPECT_EQ(back.name(), "small");
  EXPECT_DOUBLE_EQ(back.severity().get(0, 0, 0), 77.0);
}

TEST_F(RepositoryTest, IdsDerivedFromNamesAndUniquified) {
  ExperimentRepository repo(dir_);
  const std::string id1 = repo.store(make_small());
  const std::string id2 = repo.store(make_small());
  EXPECT_EQ(id1, "small");
  EXPECT_EQ(id2, "small-2");
  EXPECT_EQ(repo.entries().size(), 2u);
}

TEST_F(RepositoryTest, NamesAreSanitizedForFiles) {
  ExperimentRepository repo(dir_);
  Experiment e = make_small();
  e.set_name("diff(a / b, \"c\")");
  const std::string id = repo.store(e);
  EXPECT_EQ(id.find('/'), std::string::npos);
  EXPECT_NO_THROW((void)repo.load(id));
}

TEST_F(RepositoryTest, PersistsAcrossInstances) {
  {
    ExperimentRepository repo(dir_);
    repo.store(make_small());
  }
  ExperimentRepository reopened(dir_);
  ASSERT_EQ(reopened.entries().size(), 1u);
  EXPECT_EQ(reopened.entries()[0].id, "small");
  EXPECT_NO_THROW((void)reopened.load("small"));
}

TEST_F(RepositoryTest, BinaryFormatEntries) {
  ExperimentRepository repo(dir_);
  const std::string id = repo.store(make_small(), RepoFormat::Binary);
  EXPECT_EQ(repo.entries()[0].format, RepoFormat::Binary);
  EXPECT_NE(repo.entries()[0].file.find(".cubx"), std::string::npos);
  const Experiment back = repo.load(id);
  EXPECT_EQ(back.name(), "small");
  // Format survives reopening.
  ExperimentRepository reopened(dir_);
  EXPECT_EQ(reopened.entries()[0].format, RepoFormat::Binary);
}

TEST_F(RepositoryTest, QueryByAttribute) {
  ExperimentRepository repo(dir_);
  Experiment a = make_small(StorageKind::Dense, "a");
  a.set_attribute("app", "pescan");
  a.set_attribute("config", "barriers");
  Experiment b = make_small(StorageKind::Dense, "b");
  b.set_attribute("app", "pescan");
  b.set_attribute("config", "nobarriers");
  Experiment c = make_small(StorageKind::Dense, "c");
  c.set_attribute("app", "sweep3d");
  repo.store(a);
  repo.store(b);
  repo.store(c);

  EXPECT_EQ(repo.query("app", "pescan").size(), 2u);
  EXPECT_EQ(repo.query("config", "barriers").size(), 1u);
  EXPECT_TRUE(repo.query("app", "nope").empty());
}

TEST_F(RepositoryTest, DerivedExperimentsQueryableByKind) {
  ExperimentRepository repo(dir_);
  const Experiment a = make_small(StorageKind::Dense, "a");
  const Experiment b = make_small(StorageKind::Dense, "b");
  repo.store(a);
  repo.store(b);
  repo.store(difference(a, b));
  const auto derived = repo.query("cube::kind", "derived");
  ASSERT_EQ(derived.size(), 1u);
  EXPECT_NE(derived[0].attributes.at("cube::provenance").find("difference"),
            std::string::npos);
}

TEST_F(RepositoryTest, LoadAllSeriesFeedsOperators) {
  ExperimentRepository repo(dir_);
  for (int i = 0; i < 3; ++i) {
    Experiment e = make_small(StorageKind::Dense, "run");
    e.set_attribute("series", "noise");
    e.severity().set(0, 0, 0, static_cast<double>(i));
    repo.store(e);
  }
  const std::vector<Experiment> series =
      repo.load_all(repo.query("series", "noise"));
  ASSERT_EQ(series.size(), 3u);
  std::vector<const Experiment*> ptrs;
  for (const auto& e : series) ptrs.push_back(&e);
  const Experiment m = mean(ptrs);
  EXPECT_DOUBLE_EQ(m.severity().get(0, 0, 0), 1.0);
}

TEST_F(RepositoryTest, RemoveDeletesEntryAndFile) {
  ExperimentRepository repo(dir_);
  const std::string id = repo.store(make_small());
  const std::filesystem::path file = dir_ / repo.entries()[0].file;
  ASSERT_TRUE(std::filesystem::exists(file));
  repo.remove(id);
  EXPECT_TRUE(repo.entries().empty());
  EXPECT_FALSE(std::filesystem::exists(file));
  EXPECT_THROW((void)repo.load(id), Error);
}

TEST_F(RepositoryTest, UnknownIdsThrow) {
  ExperimentRepository repo(dir_);
  EXPECT_THROW((void)repo.load("nope"), Error);
  EXPECT_THROW(repo.remove("nope"), Error);
}

TEST_F(RepositoryTest, CorruptIndexRejected) {
  {
    ExperimentRepository repo(dir_);
    repo.store(make_small());
  }
  {
    std::ofstream out(dir_ / "index.xml");
    out << "<notarepo/>";
  }
  EXPECT_THROW(ExperimentRepository{dir_}, Error);
}

TEST_F(RepositoryTest, IndexWritesLeaveNoTempFileBehind) {
  ExperimentRepository repo(dir_);
  repo.store(make_small());
  repo.store(make_small(StorageKind::Dense, "second"));
  EXPECT_TRUE(std::filesystem::exists(dir_ / "index.xml"));
  EXPECT_FALSE(std::filesystem::exists(dir_ / "index.xml.tmp"));
}

}  // namespace
}  // namespace cube
