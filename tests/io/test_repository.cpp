#include "io/repository.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <set>
#include <thread>

#include "algebra/operators.hpp"
#include "common/error.hpp"
#include "io/cube_format.hpp"
#include "testutil.hpp"

namespace cube {
namespace {

using cube::testing::make_small;

class RepositoryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::path(::testing::TempDir()) /
           ("cube_repo_" + std::string(
                               ::testing::UnitTest::GetInstance()
                                   ->current_test_info()
                                   ->name()));
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::filesystem::path dir_;
};

TEST_F(RepositoryTest, StoreAndLoadRoundTrip) {
  ExperimentRepository repo(dir_);
  Experiment e = make_small();
  e.severity().set(0, 0, 0, 77.0);
  const std::string id = repo.store(e);
  const Experiment back = repo.load(id);
  EXPECT_EQ(back.name(), "small");
  EXPECT_DOUBLE_EQ(back.severity().get(0, 0, 0), 77.0);
}

TEST_F(RepositoryTest, IdsDerivedFromNamesAndUniquified) {
  ExperimentRepository repo(dir_);
  const std::string id1 = repo.store(make_small());
  const std::string id2 = repo.store(make_small());
  EXPECT_EQ(id1, "small");
  EXPECT_EQ(id2, "small-2");
  EXPECT_EQ(repo.entries().size(), 2u);
}

TEST_F(RepositoryTest, NamesAreSanitizedForFiles) {
  ExperimentRepository repo(dir_);
  Experiment e = make_small();
  e.set_name("diff(a / b, \"c\")");
  const std::string id = repo.store(e);
  EXPECT_EQ(id.find('/'), std::string::npos);
  EXPECT_NO_THROW((void)repo.load(id));
}

TEST_F(RepositoryTest, PersistsAcrossInstances) {
  {
    ExperimentRepository repo(dir_);
    repo.store(make_small());
  }
  ExperimentRepository reopened(dir_);
  ASSERT_EQ(reopened.entries().size(), 1u);
  EXPECT_EQ(reopened.entries()[0].id, "small");
  EXPECT_NO_THROW((void)reopened.load("small"));
}

TEST_F(RepositoryTest, BinaryFormatEntries) {
  ExperimentRepository repo(dir_);
  const std::string id = repo.store(make_small(), RepoFormat::Binary);
  EXPECT_EQ(repo.entries()[0].format, RepoFormat::Binary);
  EXPECT_NE(repo.entries()[0].file.find(".cubx"), std::string::npos);
  const Experiment back = repo.load(id);
  EXPECT_EQ(back.name(), "small");
  // Format survives reopening.
  ExperimentRepository reopened(dir_);
  EXPECT_EQ(reopened.entries()[0].format, RepoFormat::Binary);
}

TEST_F(RepositoryTest, QueryByAttribute) {
  ExperimentRepository repo(dir_);
  Experiment a = make_small(StorageKind::Dense, "a");
  a.set_attribute("app", "pescan");
  a.set_attribute("config", "barriers");
  Experiment b = make_small(StorageKind::Dense, "b");
  b.set_attribute("app", "pescan");
  b.set_attribute("config", "nobarriers");
  Experiment c = make_small(StorageKind::Dense, "c");
  c.set_attribute("app", "sweep3d");
  repo.store(a);
  repo.store(b);
  repo.store(c);

  EXPECT_EQ(repo.query("app", "pescan").size(), 2u);
  EXPECT_EQ(repo.query("config", "barriers").size(), 1u);
  EXPECT_TRUE(repo.query("app", "nope").empty());
}

TEST_F(RepositoryTest, DerivedExperimentsQueryableByKind) {
  ExperimentRepository repo(dir_);
  const Experiment a = make_small(StorageKind::Dense, "a");
  const Experiment b = make_small(StorageKind::Dense, "b");
  repo.store(a);
  repo.store(b);
  repo.store(difference(a, b));
  const auto derived = repo.query("cube::kind", "derived");
  ASSERT_EQ(derived.size(), 1u);
  EXPECT_NE(derived[0].attributes.at("cube::provenance").find("difference"),
            std::string::npos);
}

TEST_F(RepositoryTest, LoadAllSeriesFeedsOperators) {
  ExperimentRepository repo(dir_);
  for (int i = 0; i < 3; ++i) {
    Experiment e = make_small(StorageKind::Dense, "run");
    e.set_attribute("series", "noise");
    e.severity().set(0, 0, 0, static_cast<double>(i));
    repo.store(e);
  }
  const std::vector<Experiment> series =
      repo.load_all(repo.query("series", "noise"));
  ASSERT_EQ(series.size(), 3u);
  std::vector<const Experiment*> ptrs;
  for (const auto& e : series) ptrs.push_back(&e);
  const Experiment m = mean(ptrs);
  EXPECT_DOUBLE_EQ(m.severity().get(0, 0, 0), 1.0);
}

TEST_F(RepositoryTest, RemoveDeletesEntryAndFile) {
  ExperimentRepository repo(dir_);
  const std::string id = repo.store(make_small());
  const std::filesystem::path file = dir_ / repo.entries()[0].file;
  ASSERT_TRUE(std::filesystem::exists(file));
  repo.remove(id);
  EXPECT_TRUE(repo.entries().empty());
  EXPECT_FALSE(std::filesystem::exists(file));
  EXPECT_THROW((void)repo.load(id), Error);
}

TEST_F(RepositoryTest, UnknownIdsThrow) {
  ExperimentRepository repo(dir_);
  EXPECT_THROW((void)repo.load("nope"), Error);
  EXPECT_THROW(repo.remove("nope"), Error);
}

TEST_F(RepositoryTest, CorruptIndexRejected) {
  {
    ExperimentRepository repo(dir_, RepoLayout::Legacy);
    repo.store(make_small());
  }
  {
    std::ofstream out(dir_ / "index.xml");
    out << "<notarepo/>";
  }
  EXPECT_THROW(ExperimentRepository{dir_}, Error);
}

TEST_F(RepositoryTest, CorruptManifestRejected) {
  {
    ExperimentRepository repo(dir_);
    repo.store(make_small());
  }
  {
    std::ofstream out(dir_ / "index" / "MANIFEST");
    out << "not a manifest\n";
  }
  EXPECT_THROW(ExperimentRepository{dir_}, Error);
}

TEST_F(RepositoryTest, IndexWritesLeaveNoTempFileBehind) {
  ExperimentRepository repo(dir_);
  repo.store(make_small());
  repo.store(make_small(StorageKind::Dense, "second"));
  EXPECT_TRUE(std::filesystem::exists(dir_ / "index" / "MANIFEST"));
  EXPECT_FALSE(std::filesystem::exists(dir_ / "index.xml"));
  for (const auto& f :
       std::filesystem::directory_iterator(dir_ / "index")) {
    EXPECT_NE(f.path().extension(), ".tmp") << f.path();
  }
}

std::size_t count_blobs(const std::filesystem::path& dir) {
  std::size_t n = 0;
  if (!std::filesystem::is_directory(dir / "meta")) return 0;
  // Recursive: blobs live flat (legacy) or one shard level down.
  for (const auto& f :
       std::filesystem::recursive_directory_iterator(dir / "meta")) {
    if (f.path().extension() == ".meta") ++n;
  }
  return n;
}

TEST_F(RepositoryTest, SeriesStoresExactlyOneMetadataBlob) {
  ExperimentRepository repo(dir_);
  for (int i = 0; i < 32; ++i) {
    Experiment e = make_small(StorageKind::Dense, "run");
    e.set_attribute("series", "a11");
    e.severity().set(0, 0, 0, static_cast<double>(i));
    repo.store(e, i % 2 == 0 ? RepoFormat::Xml : RepoFormat::Binary);
  }
  EXPECT_EQ(count_blobs(dir_), 1u);
  for (const RepoEntry& entry : repo.entries()) {
    EXPECT_FALSE(entry.meta.empty());
  }
}

TEST_F(RepositoryTest, LoadedSeriesSharesOneMetadataInstance) {
  {
    ExperimentRepository repo(dir_);
    for (int i = 0; i < 4; ++i) {
      repo.store(make_small(StorageKind::Dense, "run"),
                 RepoFormat::Binary);
    }
  }
  // A fresh instance proves sharing comes from the interner, not from the
  // store-time cache.
  ExperimentRepository reopened(dir_);
  const std::vector<Experiment> series =
      reopened.load_all(reopened.entries());
  ASSERT_EQ(series.size(), 4u);
  for (std::size_t i = 1; i < series.size(); ++i) {
    EXPECT_EQ(series[i].metadata_ptr().get(),
              series[0].metadata_ptr().get());
  }
  EXPECT_EQ(reopened.interner().size(), 1u);
}

TEST_F(RepositoryTest, LegacyInlineRepositoryLoadsUnchanged) {
  // The pre-blob layout: inline-metadata files, no meta attribute, no
  // meta/ directory.
  std::filesystem::create_directories(dir_);
  write_cube_xml_file(make_small(), (dir_ / "run.cube").string());
  {
    std::ofstream out(dir_ / "index.xml");
    out << "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n"
           "<repository>"
           "<entry id=\"run\" file=\"run.cube\" format=\"xml\"/>"
           "</repository>\n";
  }
  ExperimentRepository repo(dir_);
  ASSERT_EQ(repo.entries().size(), 1u);
  EXPECT_TRUE(repo.entries()[0].meta.empty());
  const Experiment back = repo.load("run");
  EXPECT_EQ(back.name(), "small");
  EXPECT_DOUBLE_EQ(back.severity().get(0, 0, 0),
                   make_small().severity().get(0, 0, 0));
}

TEST_F(RepositoryTest, MigrateRewritesLegacyEntriesToBlobLayout) {
  std::filesystem::create_directories(dir_);
  write_cube_xml_file(make_small(), (dir_ / "run.cube").string());
  {
    std::ofstream out(dir_ / "index.xml");
    out << "<repository>"
           "<entry id=\"run\" file=\"run.cube\" format=\"xml\"/>"
           "</repository>";
  }
  ExperimentRepository repo(dir_);
  EXPECT_EQ(repo.layout(), RepoLayout::Legacy);
  // One count for the inline->blob rewrite, one for the relocation into
  // the sharded exp/<ab>/ layout.
  EXPECT_EQ(repo.migrate(), 2u);
  EXPECT_EQ(repo.migrate(), 0u);  // idempotent
  EXPECT_EQ(repo.layout(), RepoLayout::Sharded);
  ASSERT_FALSE(repo.entries()[0].meta.empty());
  EXPECT_EQ(count_blobs(dir_), 1u);
  // index.xml is gone; the segmented index took over.
  EXPECT_FALSE(std::filesystem::exists(dir_ / "index.xml"));
  EXPECT_TRUE(std::filesystem::exists(dir_ / "index" / "MANIFEST"));
  {
    const std::filesystem::path moved = dir_ / repo.entries()[0].file;
    EXPECT_NE(repo.entries()[0].file.find("exp/"), std::string::npos);
    std::ifstream in(moved);
    std::string content((std::istreambuf_iterator<char>(in)),
                        std::istreambuf_iterator<char>());
    EXPECT_NE(content.find("<metaref"), std::string::npos);
  }
  // The migrated layout persists and still loads.
  ExperimentRepository reopened(dir_);
  EXPECT_EQ(reopened.layout(), RepoLayout::Sharded);
  EXPECT_FALSE(reopened.entries()[0].meta.empty());
  EXPECT_EQ(reopened.load("run").name(), "small");
}

TEST_F(RepositoryTest, RemoveKeepsBlobWhileReferencedThenDeletesIt) {
  ExperimentRepository repo(dir_);
  const std::string id1 = repo.store(make_small(StorageKind::Dense, "a"));
  const std::string id2 = repo.store(make_small(StorageKind::Dense, "b"));
  ASSERT_EQ(count_blobs(dir_), 1u);
  repo.remove(id1);
  EXPECT_EQ(count_blobs(dir_), 1u);  // still referenced by id2
  repo.remove(id2);
  EXPECT_EQ(count_blobs(dir_), 0u);  // last referent gone
}

TEST_F(RepositoryTest, OrphanBlobsDetectedAndRemovable) {
  ExperimentRepository repo(dir_);
  repo.store(make_small());
  ASSERT_EQ(count_blobs(dir_), 1u);
  {
    // A blob left behind by a crash between blob write and index write.
    std::ofstream out(dir_ / "meta" / "00000000deadbeef.meta");
    out << "stray";
  }
  const std::vector<std::string> orphans = repo.orphan_blobs();
  ASSERT_EQ(orphans.size(), 1u);
  EXPECT_NE(orphans[0].find("00000000deadbeef.meta"), std::string::npos);
  EXPECT_EQ(repo.remove_orphan_blobs(), 1u);
  EXPECT_TRUE(repo.orphan_blobs().empty());
  EXPECT_EQ(count_blobs(dir_), 1u);  // the referenced blob survives
}

TEST_F(RepositoryTest, SpecialCharacterAttributesSurviveTheIndex) {
  const std::string value = R"(a.out <in >out 2>&1 "quoted" & 'single')";
  {
    ExperimentRepository repo(dir_);
    Experiment e = make_small();
    e.set_attribute("cmd", value);
    repo.store(e);
  }
  ExperimentRepository reopened(dir_);
  ASSERT_EQ(reopened.entries().size(), 1u);
  EXPECT_EQ(reopened.entries()[0].attributes.at("cmd"), value);
  EXPECT_EQ(reopened.query("cmd", value).size(), 1u);
  // ... and through the experiment file itself.
  EXPECT_EQ(reopened.load("small").attribute("cmd"), value);
}

// Daemon + CLI co-existence (docs/SERVER.md): a second ExperimentRepository
// over the same directory stands in for another process appending to the
// store; a running reader must see its rows after refresh().
TEST_F(RepositoryTest, RefreshPicksUpConcurrentlyStoredExperiments) {
  ExperimentRepository reader(dir_);
  const std::uint64_t gen0 = reader.generation();
  EXPECT_FALSE(reader.refresh());  // nothing changed yet
  EXPECT_EQ(reader.generation(), gen0);

  ExperimentRepository writer(dir_);
  Experiment e = make_small();
  e.severity().set(0, 0, 0, 13.0);
  const std::string id = writer.store(e);

  // The reader's in-memory index predates the store...
  EXPECT_TRUE(reader.entries_snapshot().empty());
  EXPECT_THROW((void)reader.load(id), Error);
  // ...and refresh() brings the appended row in.
  EXPECT_TRUE(reader.refresh());
  EXPECT_GT(reader.generation(), gen0);
  ASSERT_EQ(reader.entries_snapshot().size(), 1u);
  EXPECT_EQ(reader.entries_snapshot()[0].id, id);
  EXPECT_DOUBLE_EQ(reader.load(id).severity().get(0, 0, 0), 13.0);

  // Idempotent: the same on-disk index refreshes to false.
  EXPECT_FALSE(reader.refresh());
}

TEST_F(RepositoryTest, RefreshSeesRemovalsToo) {
  ExperimentRepository writer(dir_);
  const std::string id = writer.store(make_small());
  ExperimentRepository reader(dir_);
  ASSERT_EQ(reader.entries_snapshot().size(), 1u);
  writer.remove(id);
  EXPECT_TRUE(reader.refresh());
  EXPECT_TRUE(reader.entries_snapshot().empty());
}

TEST_F(RepositoryTest, ConcurrentStoresAndSnapshotsAreSafe) {
  // One shared instance, many threads storing and snapshotting at once —
  // the daemon's world.  Every id must come back unique and loadable.
  ExperimentRepository repo(dir_);
  constexpr int kThreads = 4;
  constexpr int kEach = 8;
  std::vector<std::thread> threads;
  std::vector<std::vector<std::string>> ids(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int k = 0; k < kEach; ++k) {
        Experiment e = make_small();
        e.set_name("run-" + std::to_string(t));
        ids[t].push_back(repo.store(e));
        (void)repo.entries_snapshot();
        (void)repo.query("cube::name", "run-" + std::to_string(t));
      }
    });
  }
  for (auto& th : threads) th.join();
  std::set<std::string> unique;
  for (const auto& per_thread : ids) {
    for (const std::string& id : per_thread) {
      EXPECT_TRUE(unique.insert(id).second) << "duplicate id " << id;
      EXPECT_NO_THROW((void)repo.load(id));
    }
  }
  EXPECT_EQ(repo.entries_snapshot().size(),
            static_cast<std::size_t>(kThreads * kEach));
}

}  // namespace
}  // namespace cube
