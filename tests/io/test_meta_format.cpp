// The CUBEMET1 metadata blob: round-trips, integrity checking, and the
// directory resolver used by the repository layout.
#include "io/meta_format.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "common/error.hpp"
#include "testutil.hpp"

namespace cube {
namespace {

std::shared_ptr<const Metadata> small_metadata() {
  return cube::testing::make_small().metadata_ptr();
}

TEST(MetaFormat, RoundTripPreservesStructureAndDigest) {
  const auto md = small_metadata();
  const std::string blob = to_cube_meta(*md);
  EXPECT_TRUE(is_cube_meta(blob));
  const auto back = read_cube_meta(blob);
  ASSERT_NE(back, nullptr);
  EXPECT_TRUE(back->frozen());
  EXPECT_EQ(back->digest(), md->digest());
  EXPECT_EQ(back->num_metrics(), md->num_metrics());
  EXPECT_EQ(back->num_cnodes(), md->num_cnodes());
  EXPECT_EQ(back->num_threads(), md->num_threads());
}

TEST(MetaFormat, UnfrozenMetadataIsRejected) {
  Metadata md;
  md.add_metric(nullptr, "time", "Time", Unit::Seconds, "");
  EXPECT_THROW((void)to_cube_meta(md), Error);
}

TEST(MetaFormat, BadMagicRejected) {
  EXPECT_FALSE(is_cube_meta("CUBEBIN1..."));
  EXPECT_THROW((void)read_cube_meta("CUBEBIN1..."), Error);
  EXPECT_THROW((void)read_cube_meta(""), Error);
}

TEST(MetaFormat, CorruptedContentFailsTheDigestCheck) {
  std::string blob = to_cube_meta(*small_metadata());
  // Flip a byte in a section name, past the magic and the recorded digest.
  ASSERT_GT(blob.size(), 40u);
  blob[40] ^= 0x01;
  EXPECT_THROW((void)read_cube_meta(blob), Error);
}

TEST(MetaFormat, TrailingBytesRejected) {
  std::string blob = to_cube_meta(*small_metadata());
  blob += "junk";
  EXPECT_THROW((void)read_cube_meta(blob), Error);
}

TEST(MetaFormat, BlobNameIsPaddedHex) {
  EXPECT_EQ(meta_blob_name(0x1234), "0000000000001234.meta");
}

TEST(MetaFormat, DirectoryResolverReadsTheBlobLayout) {
  const std::filesystem::path dir =
      std::filesystem::path(::testing::TempDir()) / "cube_meta_resolver";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir / "meta");
  const auto md = small_metadata();
  write_cube_meta_file(*md,
                       (dir / "meta" / meta_blob_name(md->digest())).string());

  const MetadataResolver resolve = directory_resolver(dir);
  const auto found = resolve(md->digest());
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found->digest(), md->digest());
  EXPECT_THROW((void)resolve(md->digest() ^ 1u), Error);
  std::filesystem::remove_all(dir);
}

TEST(MetaFormat, DirectoryResolverInternsRepeatedDigests) {
  const std::filesystem::path dir =
      std::filesystem::path(::testing::TempDir()) / "cube_meta_interned";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir / "meta");
  const auto md = small_metadata();
  write_cube_meta_file(*md,
                       (dir / "meta" / meta_blob_name(md->digest())).string());

  MetadataInterner interner;
  const MetadataResolver resolve = directory_resolver(dir, &interner);
  const auto first = resolve(md->digest());
  const auto second = resolve(md->digest());
  EXPECT_EQ(first.get(), second.get());
  EXPECT_EQ(interner.size(), 1u);
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace cube
