// File-format edge cases: arbitrary ids, unusual content, robustness.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "io/binary_format.hpp"
#include "io/cube_format.hpp"
#include "testutil.hpp"

namespace cube {
namespace {

using cube::testing::make_small;

TEST(CubeFormatEdge, AcceptsNonContiguousIds) {
  // The reader remaps file ids; they need not be dense or ordered.
  const std::string xml = R"(<cube version="1.0">
    <metrics>
      <metric id="77"><disp_name>T</disp_name><uniq_name>t</uniq_name>
        <uom>sec</uom>
        <metric id="3"><disp_name>C</disp_name><uniq_name>c</uniq_name>
          <uom>sec</uom></metric>
      </metric>
    </metrics>
    <program>
      <region id="50" name="main" mod="a.c" begin="1" end="2"/>
      <csite id="9" file="a.c" line="1" callee="50"/>
      <cnode id="42" csite="9"/>
    </program>
    <system><machine id="0" name="m"><node id="0" name="n">
      <process id="0" name="p" rank="0"><thread id="8" name="t" tid="0"/>
      </process></node></machine></system>
    <severity>
      <matrix metric="3"><row cnode="42">2.5</row></matrix>
    </severity></cube>)";
  const Experiment e = read_cube_xml(xml);
  EXPECT_EQ(e.metadata().num_metrics(), 2u);
  const Metric& c = *e.metadata().find_metric("c");
  EXPECT_DOUBLE_EQ(
      e.get(c, *e.metadata().cnodes()[0], *e.metadata().threads()[0]), 2.5);
}

TEST(CubeFormatEdge, DuplicateIdsRejected) {
  const std::string xml = R"(<cube version="1.0">
    <metrics>
      <metric id="1"><disp_name>T</disp_name><uniq_name>t</uniq_name>
        <uom>sec</uom></metric>
      <metric id="1"><disp_name>U</disp_name><uniq_name>u</uniq_name>
        <uom>sec</uom></metric>
    </metrics>
    <program>
      <region id="0" name="main" mod="a.c" begin="1" end="2"/>
      <csite id="0" file="a.c" line="1" callee="0"/>
      <cnode id="0" csite="0"/>
    </program>
    <system><machine id="0" name="m"><node id="0" name="n">
      <process id="0" name="p" rank="0"><thread id="0" name="t" tid="0"/>
      </process></node></machine></system></cube>)";
  EXPECT_THROW((void)read_cube_xml(xml), Error);
}

TEST(CubeFormatEdge, MetricNamesWithSpecialCharacters) {
  Experiment e = make_small();
  // XML specials inside entity names must survive the round trip.
  auto md = e.metadata().clone();
  md->add_metric(nullptr, "bytes<sent> & \"counted\"", "B <&>",
                 Unit::Bytes, "desc with <tags>");
  Experiment with_special(std::move(md));
  with_special.set_name("special");
  const Experiment back = read_cube_xml(to_cube_xml(with_special));
  EXPECT_NE(back.metadata().find_metric("bytes<sent> & \"counted\""),
            nullptr);
}

TEST(CubeFormatEdge, VeryLargeAndTinyValues) {
  Experiment e = make_small();
  e.severity().set(0, 0, 0, 1e300);
  e.severity().set(0, 0, 1, 5e-324);  // denormal min
  e.severity().set(0, 0, 2, -1e-17);
  const Experiment back = read_cube_xml(to_cube_xml(e));
  EXPECT_DOUBLE_EQ(back.severity().get(0, 0, 0), 1e300);
  EXPECT_DOUBLE_EQ(back.severity().get(0, 0, 1), 5e-324);
  EXPECT_DOUBLE_EQ(back.severity().get(0, 0, 2), -1e-17);
}

TEST(CubeFormatEdge, MultiRootCallForest) {
  // Flat profiles are multiple trivial call trees (paper §2): the format
  // must round-trip forests.
  auto md = std::make_unique<Metadata>();
  md->add_metric(nullptr, "time", "T", Unit::Seconds, "");
  const Region& r1 = md->add_region("f1", "a.c", 1, 2);
  const Region& r2 = md->add_region("f2", "a.c", 3, 4);
  md->add_cnode_for_region(nullptr, r1);
  md->add_cnode_for_region(nullptr, r2);
  Machine& m = md->add_machine("m");
  Process& p = md->add_process(md->add_node(m, "n"), "r0", 0);
  md->add_thread(p, "t", 0);
  Experiment e(std::move(md));
  e.severity().set(0, 1, 0, 4.0);
  const Experiment back = read_cube_xml(to_cube_xml(e));
  EXPECT_EQ(back.metadata().cnode_roots().size(), 2u);
  EXPECT_DOUBLE_EQ(back.severity().get(0, 1, 0), 4.0);
}

TEST(CubeFormatEdge, MultipleMachines) {
  auto md = std::make_unique<Metadata>();
  md->add_metric(nullptr, "time", "T", Unit::Seconds, "");
  const Region& r = md->add_region("main", "a.c", 1, 2);
  md->add_cnode_for_region(nullptr, r);
  Machine& m1 = md->add_machine("cluster-a");
  Machine& m2 = md->add_machine("cluster-b");
  Process& p1 = md->add_process(md->add_node(m1, "n0"), "r0", 0);
  Process& p2 = md->add_process(md->add_node(m2, "n0"), "r1", 1);
  md->add_thread(p1, "t", 0);
  md->add_thread(p2, "t", 0);
  Experiment e(std::move(md));
  const Experiment back = read_cube_xml(to_cube_xml(e));
  EXPECT_EQ(back.metadata().machines().size(), 2u);
  EXPECT_EQ(back.metadata().machines()[1]->name(), "cluster-b");
}

TEST(BinaryFormatEdge, XmlAndBinaryAgree) {
  const Experiment e = make_small();
  const Experiment via_xml = read_cube_xml(to_cube_xml(e));
  const Experiment via_bin = read_cube_binary(to_cube_binary(e));
  const Metadata& md = e.metadata();
  for (MetricIndex m = 0; m < md.num_metrics(); ++m) {
    for (CnodeIndex c = 0; c < md.num_cnodes(); ++c) {
      for (ThreadIndex t = 0; t < md.num_threads(); ++t) {
        EXPECT_DOUBLE_EQ(via_xml.severity().get(m, c, t),
                         via_bin.severity().get(m, c, t));
      }
    }
  }
}

TEST(AutoFormat, DetectsBinaryAndXmlByContent) {
  const Experiment e = make_small();
  const std::string dir = ::testing::TempDir();
  const std::string xml_path = dir + "/auto_test.cube";
  const std::string bin_path = dir + "/auto_test.cubx";
  write_cube_xml_file(e, xml_path);
  write_cube_binary_file(e, bin_path);
  const Experiment from_xml = read_experiment_file(xml_path);
  const Experiment from_bin = read_experiment_file(bin_path);
  EXPECT_EQ(from_xml.name(), "small");
  EXPECT_EQ(from_bin.name(), "small");
  EXPECT_DOUBLE_EQ(from_xml.severity().get(1, 1, 1),
                   from_bin.severity().get(1, 1, 1));
  std::remove(xml_path.c_str());
  std::remove(bin_path.c_str());
}

TEST(BinaryFormatEdge, CrossDecodeRejected) {
  const Experiment e = make_small();
  EXPECT_THROW((void)read_cube_binary(to_cube_xml(e)), Error);
  EXPECT_THROW((void)read_cube_xml(to_cube_binary(e)), Error);
}

}  // namespace
}  // namespace cube
