#include "cone/profiler.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "sim/apps/sweep3d.hpp"
#include "sim/apps/synthetic.hpp"
#include "sim/engine.hpp"

namespace cube::cone {
namespace {

using counters::Event;

sim::RunResult small_run() {
  sim::SimConfig cfg;
  cfg.cluster.num_nodes = 1;
  cfg.cluster.procs_per_node = 2;
  sim::RegionTable regions;
  return sim::Engine(cfg).run(
      regions, sim::build_pingpong(regions, cfg.cluster, 4, 4096));
}

TEST(Cone, BuildsTimeAndVisitTrees) {
  const Experiment e = profile_run(small_run());
  ASSERT_NE(e.metadata().find_metric(kConeTime), nullptr);
  ASSERT_NE(e.metadata().find_metric(kConeVisits), nullptr);
  EXPECT_EQ(e.metadata().find_metric(kConeTime)->unit(), Unit::Seconds);
  EXPECT_EQ(e.metadata().find_metric(kConeVisits)->unit(),
            Unit::Occurrences);
}

TEST(Cone, CounterMetricsMirrorEventHierarchy) {
  ConeOptions opts;
  opts.event_set = counters::event_set_cache();
  const Experiment e = profile_run(small_run(), opts);
  const Metric* dca = e.metadata().find_metric("PAPI_L1_DCA");
  const Metric* dcm = e.metadata().find_metric("PAPI_L1_DCM");
  const Metric* l2 = e.metadata().find_metric("PAPI_L2_DCM");
  ASSERT_NE(dca, nullptr);
  ASSERT_NE(dcm, nullptr);
  ASSERT_NE(l2, nullptr);
  EXPECT_EQ(dcm->parent(), dca);
  EXPECT_EQ(l2->parent(), dcm);
  EXPECT_TRUE(dca->is_root());
}

TEST(Cone, EventWithoutMeasuredParentBecomesRoot) {
  ConeOptions opts;
  opts.event_set = counters::EventSet({Event::FP_INS});  // parent absent
  const Experiment e = profile_run(small_run(), opts);
  const Metric* fp = e.metadata().find_metric("PAPI_FP_INS");
  ASSERT_NE(fp, nullptr);
  EXPECT_TRUE(fp->is_root());
}

TEST(Cone, TimeMatchesProfile) {
  const sim::RunResult run = small_run();
  const Experiment e = profile_run(run);
  const Metric& time = *e.metadata().find_metric(kConeTime);
  double wall_total = 0;
  for (const double f : run.finish_times) wall_total += f;
  EXPECT_NEAR(e.sum_metric_tree(time), wall_total, 1e-9);
}

TEST(Cone, ParentCounterStoredExclusively) {
  // Stored L1_DCA = accesses - misses (hits): inclusive display
  // reconstructs accesses; the severity array never double counts.
  ConeOptions opts;
  opts.event_set = counters::event_set_cache();
  opts.jitter_sigma = 0.0;
  const sim::RunResult run = small_run();
  const Experiment e = profile_run(run, opts);
  const Metric& dca = *e.metadata().find_metric("PAPI_L1_DCA");
  const Metric& dcm = *e.metadata().find_metric("PAPI_L1_DCM");
  const counters::CounterModel model;
  double expect_dca = 0;
  double expect_dcm = 0;
  for (std::size_t n = 0; n < run.profile.nodes().size(); ++n) {
    for (int r = 0; r < 2; ++r) {
      expect_dca += model.value(Event::L1_DCA, run.profile.work(n, r));
      expect_dcm += model.value(Event::L1_DCM, run.profile.work(n, r));
    }
  }
  EXPECT_NEAR(e.sum_metric_tree(dca), expect_dca, expect_dca * 1e-9);
  EXPECT_NEAR(e.sum_metric_tree(dcm), expect_dcm, expect_dcm * 1e-9 + 1e-9);
  // Exclusive value is hits = accesses - misses.
  EXPECT_NEAR(e.sum_metric(dca), expect_dca - expect_dcm,
              expect_dca * 1e-9);
}

TEST(Cone, JitterVariesAcrossRunSeeds) {
  // Ping-pong performs no floating-point work, so compare a counter that
  // is non-zero there (cycles accumulate from communication time).
  ConeOptions a;
  a.event_set = counters::event_set_fp();
  a.run_seed = 1;
  ConeOptions b = a;
  b.run_seed = 2;
  const sim::RunResult run = small_run();
  const Experiment ea = profile_run(run, a);
  const Experiment eb = profile_run(run, b);
  const Metric& cyc_a = *ea.metadata().find_metric("PAPI_TOT_CYC");
  const Metric& cyc_b = *eb.metadata().find_metric("PAPI_TOT_CYC");
  ASSERT_GT(ea.sum_metric_tree(cyc_a), 0.0);
  EXPECT_NE(ea.sum_metric_tree(cyc_a), eb.sum_metric_tree(cyc_b));
}

TEST(Cone, AttributesRecordEventSet) {
  ConeOptions opts;
  opts.event_set = counters::event_set_fp();
  opts.experiment_name = "cone-fp";
  const Experiment e = profile_run(small_run(), opts);
  EXPECT_EQ(e.name(), "cone-fp");
  EXPECT_NE(e.attribute("cone::event_set").find("PAPI_FP_INS"),
            std::string::npos);
  EXPECT_EQ(e.attribute("cube::tool"), "CONE (simulated)");
}

TEST(Cone, CallTreeMirrorsProfile) {
  const sim::RunResult run = small_run();
  const Experiment e = profile_run(run);
  EXPECT_EQ(e.metadata().num_cnodes(), run.profile.nodes().size());
  bool found = false;
  for (const auto& c : e.metadata().cnodes()) {
    found = found || c->path() == "main/pingpong/MPI_Recv";
  }
  EXPECT_TRUE(found);
}

TEST(Cone, SweepCacheMissesConcentrateAtRecv) {
  // The §5.2 observation: L1 miss density at MPI_Recv call paths exceeds
  // the application average.
  sim::SimConfig cfg;
  sim::RegionTable regions;
  sim::Sweep3dConfig sc;
  sc.sweeps = 4;
  const sim::RunResult run = sim::Engine(cfg).run(
      regions, sim::build_sweep3d(regions, cfg.cluster, sc));
  ConeOptions opts;
  opts.event_set = counters::event_set_cache();
  opts.jitter_sigma = 0.0;
  const Experiment e = profile_run(run, opts);
  const Metric& dcm = *e.metadata().find_metric("PAPI_L1_DCM");
  const Metric& dca = *e.metadata().find_metric("PAPI_L1_DCA");

  double recv_misses = 0;
  double recv_accesses = 0;
  double all_misses = 0;
  double all_accesses = 0;
  for (const auto& c : e.metadata().cnodes()) {
    for (const auto& t : e.metadata().threads()) {
      // Inclusive misses = exclusive(dcm) + exclusive(l2) etc.; compare
      // miss *rates* using subtree sums per cnode.
      const double misses =
          e.get(dcm, *c, *t) +
          e.get(*e.metadata().find_metric("PAPI_L2_DCM"), *c, *t);
      const double accesses = e.get(dca, *c, *t) + misses;
      all_misses += misses;
      all_accesses += accesses;
      if (c->callee().name() == sim::kMpiRecvRegion) {
        recv_misses += misses;
        recv_accesses += accesses;
      }
    }
  }
  ASSERT_GT(recv_accesses, 0.0);
  const double recv_rate = recv_misses / recv_accesses;
  const double avg_rate = all_misses / all_accesses;
  EXPECT_GT(recv_rate, 2.0 * avg_rate);
}

TEST(Cone, TopologyAttached) {
  ConeOptions opts;
  opts.topology = {{0}, {1}};
  const Experiment e = profile_run(small_run(), opts);
  ASSERT_TRUE(e.metadata().find_process(0)->coords().has_value());
}

TEST(Cone, SeriesSharesOneFrozenMetadata) {
  const sim::RunResult run = small_run();
  const std::vector<Experiment> series =
      profile_series(run, {1, 2, 3}, {.experiment_name = "rep"});
  ASSERT_EQ(series.size(), 3u);
  EXPECT_EQ(series[0].name(), "rep-r1");
  EXPECT_EQ(series[2].name(), "rep-r3");
  for (const Experiment& e : series) {
    EXPECT_TRUE(e.metadata().frozen());
    EXPECT_EQ(e.metadata_ptr().get(), series[0].metadata_ptr().get());
    EXPECT_EQ(e.attribute("cone::series"), "rep");
  }
  // Different jitter seeds produce different counter values somewhere.
  bool any_difference = false;
  const Metadata& md = series[0].metadata();
  for (MetricIndex m = 0; m < md.num_metrics() && !any_difference; ++m) {
    for (CnodeIndex c = 0; c < md.num_cnodes() && !any_difference; ++c) {
      for (ThreadIndex t = 0; t < md.num_threads(); ++t) {
        if (series[0].severity().get(m, c, t) !=
            series[1].severity().get(m, c, t)) {
          any_difference = true;
          break;
        }
      }
    }
  }
  EXPECT_TRUE(any_difference);
}

TEST(Cone, SeriesMatchesProfileRunPerSeed) {
  const sim::RunResult run = small_run();
  ConeOptions opts;
  opts.run_seed = 42;
  const Experiment single = profile_run(run, opts);
  const std::vector<Experiment> series = profile_series(run, {42}, {});
  ASSERT_EQ(series.size(), 1u);
  ASSERT_EQ(single.metadata().digest(), series[0].metadata().digest());
  const Metadata& md = single.metadata();
  for (MetricIndex m = 0; m < md.num_metrics(); ++m) {
    for (CnodeIndex c = 0; c < md.num_cnodes(); ++c) {
      for (ThreadIndex t = 0; t < md.num_threads(); ++t) {
        EXPECT_EQ(series[0].severity().get(m, c, t),
                  single.severity().get(m, c, t));
      }
    }
  }
}

}  // namespace
}  // namespace cube::cone
