// CONE option combinations beyond the main profiler suite.
#include <gtest/gtest.h>

#include "cone/profiler.hpp"
#include "expert/patterns.hpp"
#include "sim/apps/synthetic.hpp"
#include "sim/engine.hpp"

namespace cube::cone {
namespace {

sim::RunResult tiny_run() {
  sim::SimConfig cfg;
  cfg.cluster.num_nodes = 1;
  cfg.cluster.procs_per_node = 2;
  sim::RegionTable regions;
  return sim::Engine(cfg).run(
      regions,
      sim::build_imbalanced_barrier(regions, cfg.cluster, 2, 0.005, 0.3));
}

TEST(ConeOptions, TimeTreeCanBeSuppressed) {
  ConeOptions opts;
  opts.include_time = false;
  opts.event_set = counters::event_set_cache();
  const Experiment e = profile_run(tiny_run(), opts);
  EXPECT_EQ(e.metadata().find_metric(kConeTime), nullptr);
  EXPECT_EQ(e.metadata().find_metric(kConeVisits), nullptr);
  EXPECT_NE(e.metadata().find_metric("PAPI_L1_DCA"), nullptr);
}

TEST(ConeOptions, SuppressedTimeStillValidates) {
  ConeOptions opts;
  opts.include_time = false;
  const Experiment e = profile_run(tiny_run(), opts);
  EXPECT_NO_THROW(e.metadata().validate());
}

TEST(ConeOptions, VisitsCountBarriers) {
  const Experiment e = profile_run(tiny_run());
  const Metric& visits = *e.metadata().find_metric(kConeVisits);
  double barrier_visits = 0;
  for (const auto& c : e.metadata().cnodes()) {
    if (c->callee().name() == sim::kMpiBarrierRegion) {
      for (const auto& t : e.metadata().threads()) {
        barrier_visits += e.get(visits, *c, *t);
      }
    }
  }
  EXPECT_DOUBLE_EQ(barrier_visits, 2 * 2);  // 2 rounds x 2 ranks
}

TEST(ConeOptions, SparseStorageRequested) {
  ConeOptions opts;
  opts.storage = StorageKind::Sparse;
  const Experiment e = profile_run(tiny_run(), opts);
  EXPECT_EQ(e.severity().kind(), StorageKind::Sparse);
}

TEST(ConeOptions, DefaultEventSetIsHardwareValid) {
  // The default options must describe a measurable run out of the box.
  const ConeOptions opts;
  EXPECT_LE(opts.event_set.size(), opts.event_set.model().num_counters);
}

}  // namespace
}  // namespace cube::cone
