#include "display/view.hpp"

#include <gtest/gtest.h>

#include "algebra/operators.hpp"
#include "common/error.hpp"
#include "testutil.hpp"

namespace cube {
namespace {

using cube::testing::make_small;

const ViewRow& row_labeled(const std::vector<ViewRow>& rows,
                           const std::string& label) {
  for (const ViewRow& r : rows) {
    if (r.label == label) return r;
  }
  throw std::runtime_error("no row labeled " + label);
}

TEST(ViewState, InitialStateSelectsFirstEntities) {
  const Experiment e = make_small();
  const ViewState s(e);
  EXPECT_EQ(s.selected_metric(), 0u);
  EXPECT_EQ(s.selected_cnode(), 0u);
  EXPECT_TRUE(s.metric_expanded(0));
  EXPECT_EQ(s.mode(), ValueMode::Absolute);
}

TEST(ViewState, SelectByName) {
  const Experiment e = make_small();
  ViewState s(e);
  s.select_metric("mpi");
  EXPECT_EQ(s.selected_metric(), 1u);
  s.select_cnode("io");
  EXPECT_EQ(e.metadata().cnodes()[s.selected_cnode()]->callee().name(),
            "io");
}

TEST(ViewState, SelectUnknownThrows) {
  const Experiment e = make_small();
  ViewState s(e);
  EXPECT_THROW(s.select_metric("nope"), OperationError);
  EXPECT_THROW(s.select_cnode("nope"), OperationError);
  EXPECT_THROW(s.select_metric(99), OperationError);
}

TEST(ComputeView, MetricLabelsSumAcrossEverything) {
  const Experiment e = make_small();
  ViewState s(e);
  const ViewData v = compute_view(s);
  // Expanded "time" shows its EXCLUSIVE value (children's share excluded).
  const Metric& time = *e.metadata().find_metric("time");
  EXPECT_DOUBLE_EQ(row_labeled(v.metric_rows, "Time").value,
                   e.sum_metric(time));
  // Collapsing shows inclusive.
  s.set_metric_expanded(time.index(), false);
  const ViewData v2 = compute_view(s);
  EXPECT_DOUBLE_EQ(row_labeled(v2.metric_rows, "Time").value,
                   e.sum_metric_tree(time));
}

TEST(ComputeView, LeafMetricShowsOwnValueRegardlessOfExpansion) {
  const Experiment e = make_small();
  ViewState s(e);
  const ViewData v = compute_view(s);
  const Metric& mpi = *e.metadata().find_metric("mpi");
  EXPECT_DOUBLE_EQ(row_labeled(v.metric_rows, "MPI").value,
                   e.sum_metric(mpi));
}

TEST(ComputeView, CallLabelsShowSelectedMetricOnly) {
  const Experiment e = make_small();
  ViewState s(e);
  s.select_metric("mpi");  // leaf, expanded -> just mpi
  const ViewData v = compute_view(s);
  const Metric& mpi = *e.metadata().find_metric("mpi");
  // "io" is a leaf cnode: value = sum over threads of (mpi, io).
  const Cnode* io = nullptr;
  for (const auto& c : e.metadata().cnodes()) {
    if (c->callee().name() == "io") io = c.get();
  }
  EXPECT_DOUBLE_EQ(row_labeled(v.call_rows, "io").value,
                   e.sum_cnode(mpi, *io));
}

TEST(ComputeView, CollapsedMetricSelectionAggregatesSubtree) {
  const Experiment e = make_small();
  ViewState s(e);
  s.select_metric("time");
  s.set_metric_expanded(0, false);  // selection collapsed -> time + mpi
  const ViewData v = compute_view(s);
  const Metric& time = *e.metadata().find_metric("time");
  const Metric& mpi = *e.metadata().find_metric("mpi");
  const Cnode& main = *e.metadata().cnodes()[0];
  EXPECT_DOUBLE_EQ(row_labeled(v.call_rows, "main").value,
                   e.sum_cnode(time, main) + e.sum_cnode(mpi, main));
}

TEST(ComputeView, CallExpansionSwitchesInclusiveExclusive) {
  const Experiment e = make_small();
  ViewState s(e);
  const Metric& time = *e.metadata().find_metric("time");
  const Cnode& main = *e.metadata().cnodes()[0];
  // Expanded: main shows its exclusive share.
  ViewData v = compute_view(s);
  EXPECT_DOUBLE_EQ(row_labeled(v.call_rows, "main").value,
                   e.sum_cnode(time, main));
  // Collapsed: whole subtree.
  s.set_cnode_expanded(0, false);
  v = compute_view(s);
  double subtree = 0;
  for (const auto& c : e.metadata().cnodes()) {
    subtree += e.sum_cnode(time, *c);
  }
  EXPECT_DOUBLE_EQ(row_labeled(v.call_rows, "main").value, subtree);
}

TEST(ComputeView, SystemLabelsShowSelectedPair) {
  const Experiment e = make_small();
  ViewState s(e);
  s.select_metric("mpi");
  s.select_cnode("io");
  const ViewData v = compute_view(s);
  // Threads visible (2 threads per process).
  EXPECT_FALSE(v.threads_hidden);
  const Metric& mpi = *e.metadata().find_metric("mpi");
  const Cnode* io = nullptr;
  for (const auto& c : e.metadata().cnodes()) {
    if (c->callee().name() == "io") io = c.get();
  }
  // Thread rows carry per-thread values for (mpi, io).
  double thread_sum = 0;
  for (const ViewRow& r : v.system_rows) {
    if (r.system_level == SystemLevel::Thread) {
      thread_sum += r.value;
    }
  }
  EXPECT_DOUBLE_EQ(thread_sum, e.sum_cnode(mpi, *io));
}

TEST(ComputeView, ExpandedSystemParentsShowZero) {
  const Experiment e = make_small();
  ViewState s(e);
  const ViewData v = compute_view(s);
  for (const ViewRow& r : v.system_rows) {
    if (r.system_level == SystemLevel::Machine ||
        r.system_level == SystemLevel::Node) {
      EXPECT_DOUBLE_EQ(r.value, 0.0);  // all expanded -> exclusive 0
    }
  }
}

TEST(ComputeView, CollapsedMachineAggregatesSystem) {
  const Experiment e = make_small();
  ViewState s(e);
  s.set_machine_expanded(0, false);
  const ViewData v = compute_view(s);
  const Metric& time = *e.metadata().find_metric("time");
  const Cnode& main = *e.metadata().cnodes()[0];
  EXPECT_DOUBLE_EQ(row_labeled(v.system_rows, "m0").value,
                   e.sum_cnode(time, main));
}

TEST(ComputeView, PercentModeNormalizesToRootTotal) {
  const Experiment e = make_small();
  ViewState s(e);
  s.set_mode(ValueMode::Percent);
  const ViewData v = compute_view(s);
  const Metric& time = *e.metadata().find_metric("time");
  EXPECT_DOUBLE_EQ(v.reference, e.sum_metric_tree(time));
  // Collapsed root would show exactly 100%.
  s.set_metric_expanded(0, false);
  const ViewData v2 = compute_view(s);
  EXPECT_NEAR(row_labeled(v2.metric_rows, "Time").display_value, 100.0,
              1e-9);
}

TEST(ComputeView, ExternalModeUsesSuppliedReference) {
  const Experiment e = make_small();
  ViewState s(e);
  s.set_mode(ValueMode::External);
  s.set_external_reference(200.0);
  const ViewData v = compute_view(s);
  EXPECT_DOUBLE_EQ(v.reference, 200.0);
  const Metric& time = *e.metadata().find_metric("time");
  EXPECT_NEAR(row_labeled(v.metric_rows, "Time").display_value,
              100.0 * e.sum_metric(time) / 200.0, 1e-9);
}

TEST(ComputeView, HiddenRowsUnderCollapsedAncestors) {
  const Experiment e = make_small();
  ViewState s(e);
  s.set_cnode_expanded(0, false);  // collapse main
  const ViewData v = compute_view(s);
  EXPECT_FALSE(row_labeled(v.call_rows, "work").visible);
  EXPECT_TRUE(row_labeled(v.call_rows, "main").visible);
}

TEST(ComputeView, ThreadsHiddenForSingleThreadedApps) {
  // Build a single-threaded variant.
  auto md = std::make_unique<Metadata>();
  md->add_metric(nullptr, "t", "T", Unit::Seconds, "");
  const Region& r = md->add_region("main", "a.c", 1, 2);
  md->add_cnode_for_region(nullptr, r);
  Machine& m = md->add_machine("m");
  SysNode& n = md->add_node(m, "n");
  Process& p0 = md->add_process(n, "p0", 0);
  md->add_thread(p0, "t0", 0);
  Experiment e(std::move(md));
  e.severity().set(0, 0, 0, 5.0);

  ViewState s(e);
  const ViewData v = compute_view(s);
  EXPECT_TRUE(v.threads_hidden);
  for (const ViewRow& r2 : v.system_rows) {
    EXPECT_NE(r2.system_level, SystemLevel::Thread);
  }
  // The process row carries the thread's value and is not expandable.
  const ViewRow& prow = row_labeled(v.system_rows, "p0");
  EXPECT_DOUBLE_EQ(prow.value, 5.0);
  EXPECT_FALSE(prow.expandable);
}

TEST(ComputeView, NegativeValuesInDifferenceExperiments) {
  Experiment a = make_small();
  Experiment b = make_small(StorageKind::Dense, "b");
  b.severity().set(0, 3, 0, 9999.0);  // b worse at cnode io
  const Experiment d = difference(a, b);
  ViewState s(d);
  const ViewData v = compute_view(s);
  // Some row must be negative; scale_max reflects magnitudes.
  bool any_negative = false;
  for (const ViewRow& r : v.call_rows) {
    any_negative = any_negative || r.value < 0.0;
  }
  EXPECT_TRUE(any_negative);
  EXPECT_GT(v.scale_max, 0.0);
}

TEST(ComputeView, SingleRepresentationSumsToTotal) {
  // Sum of displayed (expanded = exclusive) metric rows equals the grand
  // total of all metric trees: each fraction appears exactly once.
  const Experiment e = make_small();
  ViewState s(e);
  const ViewData v = compute_view(s);
  double displayed = 0;
  for (const ViewRow& r : v.metric_rows) displayed += r.value;
  double total = 0;
  for (const auto& m : e.metadata().metrics()) {
    total += e.sum_metric(*m);
  }
  EXPECT_DOUBLE_EQ(displayed, total);
}

}  // namespace
}  // namespace cube
