#include <gtest/gtest.h>

#include "algebra/operators.hpp"
#include "common/error.hpp"
#include "display/browser.hpp"
#include "display/hotspots.hpp"
#include "testutil.hpp"

namespace cube {
namespace {

using cube::testing::make_small;

// An experiment where one region ("f") is reached via two call paths, to
// exercise the flat projection: main -> {a -> f, b -> f}.
Experiment make_multipath() {
  auto md = std::make_unique<Metadata>();
  md->add_metric(nullptr, "time", "Time", Unit::Seconds, "");
  const Region& r_main = md->add_region("main", "x.c", 1, 99);
  const Region& r_a = md->add_region("a", "x.c", 10, 20);
  const Region& r_b = md->add_region("b", "x.c", 30, 40);
  const Region& r_f = md->add_region("f", "x.c", 50, 60);
  const Cnode& c_main = md->add_cnode_for_region(nullptr, r_main);
  const Cnode& c_a = md->add_cnode_for_region(&c_main, r_a);
  const Cnode& c_b = md->add_cnode_for_region(&c_main, r_b);
  md->add_cnode_for_region(&c_a, r_f);
  md->add_cnode_for_region(&c_b, r_f);
  Machine& m = md->add_machine("m");
  Process& p = md->add_process(md->add_node(m, "n"), "r0", 0);
  md->add_thread(p, "t0", 0);
  Experiment e(std::move(md));
  e.set_name("multipath");
  // time: main=1, a=2, b=3, a/f=10, b/f=20.
  e.severity().set(0, 0, 0, 1.0);
  e.severity().set(0, 1, 0, 2.0);
  e.severity().set(0, 2, 0, 3.0);
  e.severity().set(0, 3, 0, 10.0);
  e.severity().set(0, 4, 0, 20.0);
  return e;
}

const ViewRow& row_labeled(const std::vector<ViewRow>& rows,
                           const std::string& label) {
  for (const ViewRow& r : rows) {
    if (r.label == label) return r;
  }
  throw std::runtime_error("no row labeled " + label);
}

TEST(FlatView, OneRowPerRegionSummingCallPaths) {
  const Experiment e = make_multipath();
  ViewState s(e);
  s.set_program_view(ProgramView::Flat);
  const ViewData v = compute_view(s);
  // Regions main, a, b, f -> 4 rows (each appears as a callee).
  EXPECT_EQ(v.call_rows.size(), 4u);
  EXPECT_DOUBLE_EQ(row_labeled(v.call_rows, "f").value, 30.0);  // 10 + 20
  EXPECT_DOUBLE_EQ(row_labeled(v.call_rows, "main").value, 1.0);
  for (const ViewRow& r : v.call_rows) {
    EXPECT_FALSE(r.expandable);
    EXPECT_TRUE(r.visible);
  }
}

TEST(FlatView, FlatRowsSumToCallTreeTotal) {
  const Experiment e = make_multipath();
  ViewState s(e);
  s.set_program_view(ProgramView::Flat);
  const ViewData v = compute_view(s);
  double flat_total = 0;
  for (const ViewRow& r : v.call_rows) flat_total += r.value;
  EXPECT_DOUBLE_EQ(flat_total, 36.0);  // 1+2+3+10+20
}

TEST(FlatView, SelectionAggregatesAllPathsOfRegion) {
  const Experiment e = make_multipath();
  ViewState s(e);
  s.set_program_view(ProgramView::Flat);
  s.select_cnode("f");  // selects the first cnode into f
  const ViewData v = compute_view(s);
  // System pane shows the region total across both call paths.
  double sys_total = 0;
  for (const ViewRow& r : v.system_rows) {
    if (r.system_level == SystemLevel::Process) sys_total += r.value;
  }
  EXPECT_DOUBLE_EQ(sys_total, 30.0);
  EXPECT_TRUE(row_labeled(v.call_rows, "f").selected);
}

TEST(FlatView, BrowserSwitchesViews) {
  const Experiment e = make_multipath();
  Browser b(e);
  b.execute("view flat");
  EXPECT_EQ(b.state().program_view(), ProgramView::Flat);
  const std::string flat = b.execute("show");
  // In the flat view no expansion markers appear in the call pane region
  // rows (all leaves).
  EXPECT_NE(flat.find("f"), std::string::npos);
  b.execute("view calltree");
  EXPECT_EQ(b.state().program_view(), ProgramView::CallTree);
  EXPECT_THROW((void)b.execute("view bogus"), OperationError);
}

TEST(Hotspots, RanksByMagnitude) {
  const Experiment e = make_multipath();
  const auto spots = find_hotspots(e, {.top_n = 3});
  ASSERT_EQ(spots.size(), 3u);
  EXPECT_DOUBLE_EQ(spots[0].value, 20.0);
  EXPECT_EQ(spots[0].cnode->path(), "main/b/f");
  EXPECT_DOUBLE_EQ(spots[1].value, 10.0);
  EXPECT_GT(spots[0].share, spots[1].share);
}

TEST(Hotspots, SharesSumToAtMostOne) {
  const Experiment e = make_multipath();
  const auto spots = find_hotspots(e, {.top_n = 100});
  double total = 0;
  for (const Hotspot& h : spots) total += h.share;
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(Hotspots, WorksOnDifferenceExperiments) {
  // The paper's §6 point: the same hotspot search runs on derived data.
  Experiment a = make_multipath();
  Experiment b = make_multipath();
  b.set_name("b");
  b.severity().set(0, 4, 0, 35.0);  // b/f got 15 s slower in b
  const Experiment d = difference(a, b);
  const auto spots = find_hotspots(d, {.top_n = 1});
  ASSERT_EQ(spots.size(), 1u);
  EXPECT_DOUBLE_EQ(spots[0].value, -15.0);  // negative: a is faster there
  EXPECT_EQ(spots[0].cnode->callee().name(), "f");
}

TEST(Hotspots, UnitFilter) {
  const Experiment e = make_small();  // has sec and occ trees
  HotspotOptions occ;
  occ.unit = Unit::Occurrences;
  for (const Hotspot& h : find_hotspots(e, occ)) {
    EXPECT_EQ(h.metric->unit(), Unit::Occurrences);
  }
  HotspotOptions all;
  all.unit = std::nullopt;
  all.top_n = 1000;
  const auto everything = find_hotspots(e, all);
  EXPECT_EQ(everything.size(), 3u * 4u);  // 3 metrics x 4 cnodes, all set
}

TEST(Hotspots, MinMagnitudeFilter) {
  const Experiment e = make_multipath();
  HotspotOptions opts;
  opts.min_magnitude = 5.0;
  const auto spots = find_hotspots(e, opts);
  EXPECT_EQ(spots.size(), 2u);  // only 10 and 20 survive
}

TEST(Hotspots, FormatProducesTable) {
  const Experiment e = make_multipath();
  const std::string out = format_hotspots(find_hotspots(e, {.top_n = 2}));
  EXPECT_NE(out.find("main/b/f"), std::string::npos);
  EXPECT_NE(out.find("share"), std::string::npos);
  EXPECT_NE(out.find("%"), std::string::npos);
}

}  // namespace
}  // namespace cube
