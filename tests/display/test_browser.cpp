#include "display/browser.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "common/error.hpp"
#include "testutil.hpp"

namespace cube {
namespace {

using cube::testing::make_small;

TEST(Browser, HelpListsCommands) {
  const Experiment e = make_small();
  Browser b(e);
  const std::string help = b.execute("help");
  EXPECT_NE(help.find("select metric"), std::string::npos);
  EXPECT_NE(help.find("mode absolute"), std::string::npos);
}

TEST(Browser, ShowRendersView) {
  const Experiment e = make_small();
  Browser b(e);
  const std::string out = b.execute("show");
  EXPECT_NE(out.find("Metric tree"), std::string::npos);
}

TEST(Browser, SelectMetricChangesState) {
  const Experiment e = make_small();
  Browser b(e);
  EXPECT_EQ(b.execute("select metric mpi"), "");
  EXPECT_EQ(b.state().selected_metric(), 1u);
}

TEST(Browser, SelectCallChangesState) {
  const Experiment e = make_small();
  Browser b(e);
  b.execute("select call io");
  EXPECT_EQ(e.metadata()
                .cnodes()[b.state().selected_cnode()]
                ->callee()
                .name(),
            "io");
}

TEST(Browser, ExpandCollapseMetric) {
  const Experiment e = make_small();
  Browser b(e);
  b.execute("collapse metric time");
  EXPECT_FALSE(b.state().metric_expanded(0));
  b.execute("expand metric time");
  EXPECT_TRUE(b.state().metric_expanded(0));
}

TEST(Browser, CollapseAllAndExpandAll) {
  const Experiment e = make_small();
  Browser b(e);
  b.execute("collapse all");
  EXPECT_FALSE(b.state().cnode_expanded(0));
  b.execute("expand all");
  EXPECT_TRUE(b.state().cnode_expanded(0));
}

TEST(Browser, CollapseCallAffectsAllMatchingRegions) {
  const Experiment e = make_small();
  Browser b(e);
  b.execute("collapse call main");
  EXPECT_FALSE(b.state().cnode_expanded(0));
}

TEST(Browser, ModeSwitches) {
  const Experiment e = make_small();
  Browser b(e);
  b.execute("mode percent");
  EXPECT_EQ(b.state().mode(), ValueMode::Percent);
  b.execute("mode external 123.5");
  EXPECT_EQ(b.state().mode(), ValueMode::External);
  EXPECT_DOUBLE_EQ(b.state().external_reference(), 123.5);
  b.execute("mode absolute");
  EXPECT_EQ(b.state().mode(), ValueMode::Absolute);
}

TEST(Browser, ErrorsOnBadInput) {
  const Experiment e = make_small();
  Browser b(e);
  EXPECT_THROW((void)b.execute("select metric nope"), OperationError);
  EXPECT_THROW((void)b.execute("select bogus x"), OperationError);
  EXPECT_THROW((void)b.execute("mode external"), OperationError);
  EXPECT_THROW((void)b.execute("frobnicate"), OperationError);
  EXPECT_THROW((void)b.execute("expand call nope"), OperationError);
}

TEST(Browser, EmptyCommandIsNoop) {
  const Experiment e = make_small();
  Browser b(e);
  EXPECT_EQ(b.execute(""), "");
  EXPECT_EQ(b.execute("   "), "");
}

TEST(Browser, ExportWritesHtml) {
  const Experiment e = make_small();
  Browser b(e);
  const std::string path = ::testing::TempDir() + "/browser_export.html";
  const std::string out = b.execute("export " + path);
  EXPECT_NE(out.find("wrote"), std::string::npos);
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string first;
  std::getline(in, first);
  EXPECT_EQ(first, "<!DOCTYPE html>");
  std::remove(path.c_str());
}

TEST(Browser, ExportWithoutFileThrows) {
  const Experiment e = make_small();
  Browser b(e);
  EXPECT_THROW((void)b.execute("export"), OperationError);
}

TEST(Browser, StateDrivesRender) {
  const Experiment e = make_small();
  Browser b(e);
  b.execute("select metric mpi");
  b.execute("mode percent");
  const std::string out = b.execute("show");
  EXPECT_NE(out.find("MPI  <== selected"), std::string::npos);
  EXPECT_NE(out.find("percent"), std::string::npos);
}

}  // namespace
}  // namespace cube
