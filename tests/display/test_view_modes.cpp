// Value-mode corner cases of the view model.
#include <gtest/gtest.h>

#include "display/view.hpp"
#include "expert/patterns.hpp"
#include "testutil.hpp"

namespace cube {
namespace {

using cube::testing::make_small;

const ViewRow& row_labeled(const std::vector<ViewRow>& rows,
                           const std::string& label) {
  for (const ViewRow& r : rows) {
    if (r.label == label) return r;
  }
  throw std::runtime_error("no row labeled " + label);
}

TEST(ViewModes, OtherMetricTreesNormalizeAgainstOwnRoot) {
  // make_small has a seconds tree (time->mpi) and an occurrences tree
  // (visits).  With time selected in percent mode, the visits row must be
  // scaled by ITS OWN total, not the time total.
  const Experiment e = make_small();
  ViewState s(e);
  s.select_metric("time");
  s.set_mode(ValueMode::Percent);
  s.set_metric_expanded(2, false);  // visits is a leaf anyway
  const ViewData v = compute_view(s);
  // Visits shown relative to its own total: exactly 100 for the root.
  EXPECT_NEAR(row_labeled(v.metric_rows, "Visits").display_value, 100.0,
              1e-9);
}

TEST(ViewModes, ExternalModeAlsoScopedToSelectedTree) {
  const Experiment e = make_small();
  ViewState s(e);
  s.select_metric("time");
  s.set_mode(ValueMode::External);
  s.set_external_reference(1000.0);
  const ViewData v = compute_view(s);
  const Metric& time = *e.metadata().find_metric("time");
  EXPECT_NEAR(row_labeled(v.metric_rows, "Time").display_value,
              100.0 * e.sum_metric(time) / 1000.0, 1e-9);
  // Visits (different tree) falls back to own-root normalization.
  EXPECT_NEAR(row_labeled(v.metric_rows, "Visits").display_value, 100.0,
              1e-9);
}

TEST(ViewModes, ZeroReferenceYieldsZeroDisplay) {
  auto md = make_small().metadata().clone();
  const Experiment zero(std::move(md));  // all-zero severities
  ViewState s(zero);
  s.set_mode(ValueMode::Percent);
  const ViewData v = compute_view(s);
  for (const ViewRow& r : v.metric_rows) {
    EXPECT_DOUBLE_EQ(r.display_value, 0.0);
  }
  EXPECT_DOUBLE_EQ(v.scale_max, 0.0);
}

TEST(ViewModes, ScaleMaxIgnoresHiddenRows) {
  Experiment e = make_small();
  // Put a huge value on a row that will be hidden (work under main).
  e.severity().set(0, 1, 0, 1e9);
  ViewState s(e);
  s.set_cnode_expanded(0, false);  // hide main's children
  const ViewData v = compute_view(s);
  // main's collapsed label now contains the 1e9 (inclusive), so scale_max
  // reflects it through the visible row, but never through hidden ones:
  const ViewRow& main_row = row_labeled(v.call_rows, "main");
  EXPECT_GE(v.scale_max, 1e9);
  EXPECT_TRUE(main_row.visible);
  const ViewRow& work_row = row_labeled(v.call_rows, "work");
  EXPECT_FALSE(work_row.visible);
}

TEST(ViewModes, PatternHierarchyRootHasZeroExclusive) {
  // With the EXPERT hierarchy, the Time root itself stores nothing: the
  // expanded root displays 0, the collapsed root the full total.
  Metadata md;
  expert::add_pattern_metrics(md);
  const Region& r = md.add_region("main", "a.c", 1, 2);
  md.add_cnode_for_region(nullptr, r);
  Machine& m = md.add_machine("m");
  Process& p = md.add_process(md.add_node(m, "n"), "r0", 0);
  md.add_thread(p, "t", 0);
  auto owned = md.clone();
  Experiment e(std::move(owned));
  const Metric& execution = *e.metadata().find_metric(expert::kExecution);
  e.set(execution, *e.metadata().cnodes()[0], *e.metadata().threads()[0],
        5.0);

  ViewState s(e);
  const ViewData expanded = compute_view(s);
  EXPECT_DOUBLE_EQ(row_labeled(expanded.metric_rows, "Time").value, 0.0);
  s.set_metric_expanded(e.metadata().find_metric(expert::kTime)->index(),
                        false);
  const ViewData collapsed = compute_view(s);
  EXPECT_DOUBLE_EQ(row_labeled(collapsed.metric_rows, "Time").value, 5.0);
}

}  // namespace
}  // namespace cube
