#include "display/html.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "algebra/operators.hpp"
#include "common/error.hpp"
#include "testutil.hpp"

namespace cube {
namespace {

using cube::testing::make_small;

TEST(Html, WellFormedDocumentSkeleton) {
  const Experiment e = make_small();
  const ViewState s(e);
  const std::string html = render_html(s);
  EXPECT_EQ(html.find("<!DOCTYPE html>"), 0u);
  EXPECT_NE(html.find("<title>small</title>"), std::string::npos);
  EXPECT_NE(html.find("Metric tree"), std::string::npos);
  EXPECT_NE(html.find("Call tree"), std::string::npos);
  EXPECT_NE(html.find("System tree"), std::string::npos);
  EXPECT_NE(html.find("</html>"), std::string::npos);
}

TEST(Html, EscapesLabels) {
  Experiment e = make_small();
  e.set_name("a<b & \"c\"");
  const ViewState s(e);
  const std::string html = render_html(s);
  EXPECT_EQ(html.find("a<b &"), std::string::npos);
  EXPECT_NE(html.find("a&lt;b &amp; &quot;c&quot;"), std::string::npos);
}

TEST(Html, SelectionHighlighted) {
  const Experiment e = make_small();
  ViewState s(e);
  s.select_metric("mpi");
  const std::string html = render_html(s);
  EXPECT_NE(html.find("class=\"selected\""), std::string::npos);
}

TEST(Html, ReliefMarksSigns) {
  Experiment a = make_small();
  Experiment b = make_small(StorageKind::Dense, "b");
  b.severity().set(0, 3, 0, 9999.0);
  const Experiment d = difference(a, b);
  const ViewState s(d);
  const std::string html = render_html(s);
  EXPECT_NE(html.find("&#9661;"), std::string::npos);  // sunken (negative)
  EXPECT_NE(html.find("&#9651;"), std::string::npos);  // raised (positive)
  EXPECT_NE(html.find("derived experiment"), std::string::npos);
  EXPECT_NE(html.find("provenance"), std::string::npos);
}

TEST(Html, HiddenRowsOmittedUnlessRequested) {
  const Experiment e = make_small();
  ViewState s(e);
  s.set_cnode_expanded(0, false);
  EXPECT_EQ(render_html(s).find(">work<"), std::string::npos);
  HtmlOptions opts;
  opts.include_hidden = true;
  EXPECT_NE(render_html(s, opts).find("work"), std::string::npos);
}

TEST(Html, FlatViewTitlesPane) {
  const Experiment e = make_small();
  ViewState s(e);
  s.set_program_view(ProgramView::Flat);
  const std::string html = render_html(s);
  EXPECT_NE(html.find("Flat profile"), std::string::npos);
}

TEST(Html, ModeHeaderReflectsState) {
  const Experiment e = make_small();
  ViewState s(e);
  s.set_mode(ValueMode::Percent);
  EXPECT_NE(render_html(s).find("percent of selected metric root total"),
            std::string::npos);
}

TEST(Html, FileWriting) {
  const Experiment e = make_small();
  const ViewState s(e);
  const std::string path = ::testing::TempDir() + "/cube_view.html";
  write_html_file(s, path);
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string first;
  std::getline(in, first);
  EXPECT_EQ(first, "<!DOCTYPE html>");
  std::remove(path.c_str());
}

TEST(Html, CustomTitle) {
  const Experiment e = make_small();
  const ViewState s(e);
  HtmlOptions opts;
  opts.title = "My View";
  EXPECT_NE(render_html(s, opts).find("<title>My View</title>"),
            std::string::npos);
}

}  // namespace
}  // namespace cube
