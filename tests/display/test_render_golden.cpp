// Golden test: the exact text rendering of a fixed small experiment.
// Locks the display format against accidental changes; update deliberately
// when the renderer is meant to change.
#include <gtest/gtest.h>

#include "display/render.hpp"

namespace cube {
namespace {

Experiment golden_experiment() {
  auto md = std::make_unique<Metadata>();
  const Metric& time =
      md->add_metric(nullptr, "time", "Time", Unit::Seconds, "");
  md->add_metric(&time, "mpi", "MPI", Unit::Seconds, "");
  const Region& r_main = md->add_region("main", "a.c", 1, 9);
  const Region& r_f = md->add_region("f", "a.c", 10, 20);
  const Cnode& c_main = md->add_cnode_for_region(nullptr, r_main);
  md->add_cnode_for_region(&c_main, r_f);
  Machine& m = md->add_machine("box");
  SysNode& n = md->add_node(m, "n0");
  Process& p0 = md->add_process(n, "p0", 0);
  md->add_thread(p0, "t0", 0);
  Process& p1 = md->add_process(n, "p1", 1);
  md->add_thread(p1, "t0", 0);

  Experiment e(std::move(md));
  e.set_name("golden");
  e.severity().set(0, 0, 0, 4.0);   // time, main, p0
  e.severity().set(0, 1, 1, 2.0);   // time, f, p1
  e.severity().set(1, 1, 0, 1.5);   // mpi, f, p0
  return e;
}

TEST(RenderGolden, DefaultViewExactOutput) {
  const Experiment e = golden_experiment();
  ViewState s(e);
  s.select_metric("time");
  s.select_cnode("f");
  const std::string expected =
      "CUBE experiment: golden  [original]\n"
      "values: absolute\n"
      "\n"
      "Metric tree\n"
      "  [-] [^6] Time  <== selected\n"
      "     *  [^1.5] MPI\n"
      "\n"
      "Call tree\n"
      "  [-] [^4] main\n"
      "     *  [^2] f  <== selected\n"
      "\n"
      "System tree\n"
      "  [-] [^0] box\n"
      "    [-] [^0] n0\n"
      "       *  [^0] p0\n"
      "       *  [^2] p1\n";
  EXPECT_EQ(render_view(s), expected);
}

TEST(RenderGolden, PercentModeExactOutput) {
  const Experiment e = golden_experiment();
  ViewState s(e);
  s.set_mode(ValueMode::Percent);
  s.set_metric_expanded(0, false);  // collapse Time -> inclusive 7.5
  const std::string out = render_view(s);
  EXPECT_NE(out.find("values: percent of selected metric root total (7.5)"),
            std::string::npos);
  EXPECT_NE(out.find("[+] [^100] Time"), std::string::npos);
  // MPI hidden below the collapsed root.
  EXPECT_EQ(out.find("MPI"), std::string::npos);
}

}  // namespace
}  // namespace cube
