#include "display/render.hpp"

#include <gtest/gtest.h>

#include "algebra/operators.hpp"
#include "testutil.hpp"

namespace cube {
namespace {

using cube::testing::make_small;

TEST(Render, ContainsAllThreePanes) {
  const Experiment e = make_small();
  const ViewState s(e);
  const std::string out = render_view(s);
  EXPECT_NE(out.find("Metric tree"), std::string::npos);
  EXPECT_NE(out.find("Call tree"), std::string::npos);
  EXPECT_NE(out.find("System tree"), std::string::npos);
}

TEST(Render, ShowsExperimentNameAndKind) {
  const Experiment e = make_small();
  const ViewState s(e);
  const std::string out = render_view(s);
  EXPECT_NE(out.find("small"), std::string::npos);
  EXPECT_NE(out.find("[original]"), std::string::npos);
}

TEST(Render, DerivedExperimentShowsProvenance) {
  const Experiment d = difference(make_small(), make_small());
  const ViewState s(d);
  const std::string out = render_view(s);
  EXPECT_NE(out.find("[derived]"), std::string::npos);
  EXPECT_NE(out.find("provenance: difference"), std::string::npos);
}

TEST(Render, SelectionMarkerPresent) {
  const Experiment e = make_small();
  ViewState s(e);
  s.select_metric("mpi");
  const std::string out = render_view(s);
  EXPECT_NE(out.find("MPI  <== selected"), std::string::npos);
}

TEST(Render, ExpansionMarkers) {
  const Experiment e = make_small();
  ViewState s(e);
  std::string out = render_view(s);
  EXPECT_NE(out.find("[-] "), std::string::npos);  // expanded inner node
  s.collapse_all();
  out = render_view(s);
  EXPECT_NE(out.find("[+] "), std::string::npos);  // collapsed
}

TEST(Render, ReliefEncodesSign) {
  Experiment a = make_small();
  Experiment b = make_small(StorageKind::Dense, "b");
  b.severity().set(0, 3, 0, 9999.0);
  const Experiment d = difference(a, b);
  const ViewState s(d);
  const std::string out = render_view(s);
  // Sunken relief marker for negative values.
  EXPECT_NE(out.find("[v"), std::string::npos);
  // Raised relief for positive values.
  EXPECT_NE(out.find("[^"), std::string::npos);
}

TEST(Render, HiddenRowsOmittedByDefault) {
  const Experiment e = make_small();
  ViewState s(e);
  s.set_cnode_expanded(0, false);  // hide main's children
  const std::string out = render_view(s);
  EXPECT_EQ(out.find(" work"), std::string::npos);
  RenderOptions opts;
  opts.show_hidden = true;
  const std::string all = render_view(s, opts);
  EXPECT_NE(all.find("work"), std::string::npos);
}

TEST(Render, PercentModeHeaderShowsReference) {
  const Experiment e = make_small();
  ViewState s(e);
  s.set_mode(ValueMode::Percent);
  const std::string out = render_view(s);
  EXPECT_NE(out.find("percent of selected metric root total"),
            std::string::npos);
}

TEST(Render, ExternalModeHeader) {
  const Experiment e = make_small();
  ViewState s(e);
  s.set_mode(ValueMode::External);
  s.set_external_reference(42.0);
  const std::string out = render_view(s);
  EXPECT_NE(out.find("normalized to external reference (42)"),
            std::string::npos);
}

TEST(Render, ColorEmitsAnsiOnlyWhenEnabled) {
  const Experiment e = make_small();
  const ViewState s(e);
  RenderOptions plain;
  EXPECT_EQ(render_view(s, plain).find("\x1b["), std::string::npos);
  RenderOptions color;
  color.color = true;
  EXPECT_NE(render_view(s, color).find("\x1b["), std::string::npos);
}

TEST(Render, LegendAppendedOnRequest) {
  const Experiment e = make_small();
  const ViewState s(e);
  RenderOptions opts;
  opts.legend = true;
  EXPECT_NE(render_view(s, opts).find("color legend"), std::string::npos);
}

TEST(Render, IndentationReflectsDepth) {
  const Experiment e = make_small();
  const ViewState s(e);
  const ViewData v = compute_view(s);
  const std::string out = render_pane(v, Pane::Call);
  // MPI_Send at depth 2: indented deeper than work at depth 1.
  const auto send_pos = out.find("MPI_Send");
  const auto work_pos = out.find("work");
  ASSERT_NE(send_pos, std::string::npos);
  ASSERT_NE(work_pos, std::string::npos);
  const auto line_start = [&](std::size_t pos) {
    return out.rfind('\n', pos) + 1;
  };
  const std::size_t send_indent = send_pos - line_start(send_pos);
  const std::size_t work_indent = work_pos - line_start(work_pos);
  EXPECT_GT(send_indent, work_indent);
}

}  // namespace
}  // namespace cube
