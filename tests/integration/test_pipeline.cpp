// End-to-end pipeline tests: simulator -> tools (EXPERT / CONE) -> algebra
// -> display -> file formats.  These reproduce the paper's two case studies
// in miniature and assert the qualitative outcomes.
#include <gtest/gtest.h>

#include "algebra/composite.hpp"
#include "algebra/operators.hpp"
#include "cone/profiler.hpp"
#include "display/browser.hpp"
#include "expert/analyzer.hpp"
#include "expert/patterns.hpp"
#include "io/cube_format.hpp"
#include "sim/apps/pescan.hpp"
#include "sim/apps/sweep3d.hpp"
#include "sim/engine.hpp"

namespace cube {
namespace {

sim::RunResult run_pescan(bool barriers, int iterations = 5,
                          std::uint64_t seed = 42) {
  sim::SimConfig cfg;
  cfg.monitor.trace = true;
  cfg.noise.relative = 0.01;
  cfg.noise.seed = seed;
  sim::RegionTable regions;
  sim::PescanConfig pc;
  pc.iterations = iterations;
  pc.with_barriers = barriers;
  return sim::Engine(cfg).run(regions,
                              sim::build_pescan(regions, cfg.cluster, pc));
}

TEST(Pipeline, Section51_DifferenceShowsBarrierEliminationAndMigration) {
  const Experiment before = expert::analyze_trace(
      run_pescan(true).trace, {.experiment_name = "before"});
  const Experiment after = expert::analyze_trace(
      run_pescan(false).trace, {.experiment_name = "after"});

  const Experiment diff = difference(before, after);
  EXPECT_EQ(diff.kind(), ExperimentKind::Derived);

  const auto metric = [&](std::string_view name) -> const Metric& {
    return *diff.metadata().find_metric(name);
  };
  // Barrier-related gains are positive (raised relief in Figure 2)...
  EXPECT_GT(diff.sum_metric(metric(expert::kWaitBarrier)), 0.0);
  EXPECT_GT(diff.sum_metric(metric(expert::kBarrierCompletion)), 0.0);
  EXPECT_GT(diff.sum_metric(metric(expert::kBarrier)), 0.0);
  // ...while P2P and Wait-at-NxN increased (sunken relief = migration).
  EXPECT_LT(diff.sum_metric(metric(expert::kWaitNxN)), 0.0);
  EXPECT_LT(diff.sum_metric(metric(expert::kP2p)) +
                diff.sum_metric(metric(expert::kLateSender)),
            0.0);
  // Gross balance is clearly positive.
  EXPECT_GT(diff.sum_metric_tree(metric(expert::kTime)), 0.0);
}

TEST(Pipeline, Section51_DifferenceRendersLikeOriginal) {
  const Experiment before = expert::analyze_trace(
      run_pescan(true, 3).trace, {.experiment_name = "before"});
  const Experiment after = expert::analyze_trace(
      run_pescan(false, 3).trace, {.experiment_name = "after"});
  const Experiment diff = difference(before, after);

  // Closure: the derived experiment drives the same browser.
  Browser browser(diff);
  browser.execute("select metric mpi_wait_barrier");
  browser.execute("mode external " +
                  std::to_string(before.sum_metric_tree(
                      *before.metadata().find_metric(expert::kTime))));
  const std::string view = browser.execute("show");
  EXPECT_NE(view.find("[derived]"), std::string::npos);
  EXPECT_NE(view.find("Wait at Barrier  <== selected"), std::string::npos);
}

TEST(Pipeline, Section52_MergeIntegratesExpertAndConeMetrics) {
  // SWEEP3D: trace analysis + two counter profiles whose event sets cannot
  // be measured together, merged into one experiment.
  sim::SimConfig cfg;
  cfg.monitor.trace = true;
  sim::RegionTable regions;
  sim::Sweep3dConfig sc;
  sc.sweeps = 4;
  const sim::RunResult run = sim::Engine(cfg).run(
      regions, sim::build_sweep3d(regions, cfg.cluster, sc));

  const Experiment expert_exp = expert::analyze_trace(
      run.trace, {.experiment_name = "expert"});

  cone::ConeOptions fp_opts;
  fp_opts.event_set = counters::event_set_fp();
  fp_opts.experiment_name = "cone-fp";
  const Experiment cone_fp = cone::profile_run(run, fp_opts);

  cone::ConeOptions cache_opts;
  cache_opts.event_set = counters::event_set_cache();
  cache_opts.experiment_name = "cone-cache";
  const Experiment cone_cache = cone::profile_run(run, cache_opts);

  const Experiment merged = merge(merge(expert_exp, cone_fp), cone_cache);
  const Metadata& md = merged.metadata();
  // Trace-based and counter-based metrics coexist.
  EXPECT_NE(md.find_metric(expert::kLateSender), nullptr);
  EXPECT_NE(md.find_metric("PAPI_FP_INS"), nullptr);
  EXPECT_NE(md.find_metric("PAPI_L1_DCM"), nullptr);
  EXPECT_NO_THROW(md.validate());

  // Cache misses concentrate at MPI_Recv, which is also the Late Sender
  // hot spot.
  const Metric& dcm = *md.find_metric("PAPI_L1_DCM");
  const Metric& ls = *md.find_metric(expert::kLateSender);
  double recv_misses = 0;
  double recv_ls = 0;
  for (const auto& c : md.cnodes()) {
    if (c->callee().name() == sim::kMpiRecvRegion) {
      for (const auto& t : md.threads()) {
        recv_misses += merged.get(dcm, *c, *t);
        recv_ls += merged.get(ls, *c, *t);
      }
    }
  }
  EXPECT_GT(recv_misses, 0.0);
  EXPECT_GT(recv_ls, 0.0);
}

TEST(Pipeline, MeanBeforeMergeComposite) {
  // "To alleviate the effects of random errors, we can summarize multiple
  // outputs from every single tool by applying the mean operator before we
  // perform the merge operation."
  sim::SimConfig cfg;
  sim::RegionTable regions;
  sim::Sweep3dConfig sc;
  sc.sweeps = 2;
  const sim::RunResult run = sim::Engine(cfg).run(
      regions, sim::build_sweep3d(regions, cfg.cluster, sc));

  cone::ConeOptions opts;
  opts.event_set = counters::event_set_cache();
  opts.experiment_name = "rep";
  std::vector<Experiment> reps;
  for (std::uint64_t seed = 0; seed < 3; ++seed) {
    opts.run_seed = seed;
    reps.push_back(cone::profile_run(run, opts));
  }
  const ExperimentEnv env{
      {"a", &reps[0]}, {"b", &reps[1]}, {"c", &reps[2]}};
  const Experiment averaged = eval_expr("mean(a, b, c)", env);
  opts.jitter_sigma = 0.0;
  const Experiment truth = cone::profile_run(run, opts);

  const Metric& m_avg = *averaged.metadata().find_metric("PAPI_L1_DCA");
  const Metric& m_truth = *truth.metadata().find_metric("PAPI_L1_DCA");
  const Metric& m_one = *reps[0].metadata().find_metric("PAPI_L1_DCA");
  const double err_avg = std::abs(averaged.sum_metric_tree(m_avg) -
                                  truth.sum_metric_tree(m_truth));
  const double err_one = std::abs(reps[0].sum_metric_tree(m_one) -
                                  truth.sum_metric_tree(m_truth));
  // Averaging reduces the measurement error of this series.
  EXPECT_LT(err_avg, err_one);
}

TEST(Pipeline, DerivedExperimentsRoundTripThroughXml) {
  const Experiment before = expert::analyze_trace(
      run_pescan(true, 2).trace, {.experiment_name = "before"});
  const Experiment after = expert::analyze_trace(
      run_pescan(false, 2).trace, {.experiment_name = "after"});
  const Experiment diff = difference(before, after);

  const Experiment back = read_cube_xml(to_cube_xml(diff));
  EXPECT_EQ(back.kind(), ExperimentKind::Derived);
  const Metric& time = *back.metadata().find_metric(expert::kTime);
  const Metric& time0 = *diff.metadata().find_metric(expert::kTime);
  EXPECT_NEAR(back.sum_metric_tree(time), diff.sum_metric_tree(time0),
              1e-9);
}

TEST(Pipeline, RepeatedOperatorApplication) {
  // Unlike Karavanic/Miller's difference (which leaves the experiment
  // space), CUBE operators chain: diff of diffs, mean of diffs, ...
  const Experiment e1 = expert::analyze_trace(
      run_pescan(true, 2, 1).trace, {.experiment_name = "r1"});
  const Experiment e2 = expert::analyze_trace(
      run_pescan(true, 2, 2).trace, {.experiment_name = "r2"});
  const Experiment e3 = expert::analyze_trace(
      run_pescan(false, 2, 3).trace, {.experiment_name = "r3"});

  const Experiment d1 = difference(e1, e3);
  const Experiment d2 = difference(e2, e3);
  const Experiment dd = difference(d1, d2);  // second-order difference
  const Experiment m = mean({&d1, &d2});
  EXPECT_NO_THROW(dd.metadata().validate());
  EXPECT_NO_THROW(m.metadata().validate());
  // dd total = (e1 - e3) - (e2 - e3) = e1 - e2.
  const auto total = [](const Experiment& e) {
    return e.sum_metric_tree(*e.metadata().find_metric(expert::kTime));
  };
  EXPECT_NEAR(total(dd), total(e1) - total(e2), 1e-6);
}

TEST(Pipeline, ConeAndExpertTimesAgree) {
  // Both tools observe the same run; their total times must be close
  // (EXPERT reads the dilated trace, CONE the profile of the same run).
  sim::SimConfig cfg;
  cfg.monitor.trace = true;
  sim::RegionTable regions;
  sim::PescanConfig pc;
  pc.iterations = 2;
  const sim::RunResult run = sim::Engine(cfg).run(
      regions, sim::build_pescan(regions, cfg.cluster, pc));
  const Experiment ee = expert::analyze_trace(run.trace);
  const Experiment ce = cone::profile_run(run);
  const double t_expert =
      ee.sum_metric_tree(*ee.metadata().find_metric(expert::kTime));
  const double t_cone =
      ce.sum_metric_tree(*ce.metadata().find_metric(cone::kConeTime));
  EXPECT_NEAR(t_expert, t_cone, 0.02 * t_expert);
}

}  // namespace
}  // namespace cube
