// Reproduction guard: the committed default configuration must keep
// producing the paper's headline numbers (within bands).  If a change to
// the simulator, the apps, or the analyzer moves these, EXPERIMENTS.md
// needs re-validation.
#include <gtest/gtest.h>

#include "expert/analyzer.hpp"
#include "expert/patterns.hpp"
#include "sim/apps/pescan.hpp"
#include "sim/engine.hpp"

namespace cube {
namespace {

TEST(Reproduction, WaitAtBarrierShareNearPaperValue) {
  // Paper Figure 1: 13.2 % of the execution time waiting in front of
  // barriers.  Guard band: 12 .. 15 %.
  sim::SimConfig cfg;
  cfg.monitor.trace = true;
  cfg.noise.relative = 0.01;
  cfg.noise.seed = 42;
  sim::RegionTable regions;
  const auto run = sim::Engine(cfg).run(
      regions, sim::build_pescan(regions, cfg.cluster, {}));
  const Experiment e = expert::analyze_trace(run.trace);
  const double total =
      e.sum_metric_tree(*e.metadata().find_metric(expert::kTime));
  const double wait =
      e.sum_metric(*e.metadata().find_metric(expert::kWaitBarrier));
  const double share = 100.0 * wait / total;
  EXPECT_GT(share, 12.0);
  EXPECT_LT(share, 15.0);
}

TEST(Reproduction, BarrierRemovalSpeedupNearPaperValue) {
  // Paper §5.1: "about 16 %" solver speedup.  Guard band: 12 .. 20 % on a
  // reduced series (3 runs per configuration keeps the test fast; the
  // bench uses the paper's full 2x10).
  const auto solver_time = [](bool barriers, std::uint64_t seed) {
    sim::SimConfig cfg;
    cfg.noise.relative = 0.01;
    cfg.noise.seed = seed;
    sim::RegionTable regions;
    sim::PescanConfig pc;
    pc.with_barriers = barriers;
    const auto run = sim::Engine(cfg).run(
        regions, sim::build_pescan(regions, cfg.cluster, pc));
    double worst = 0.0;
    for (std::size_t n = 0; n < run.profile.nodes().size(); ++n) {
      if (run.regions[run.profile.nodes()[n].region].name ==
          sim::kPescanSolverRegion) {
        for (std::size_t r = 0; r < run.profile.num_ranks(); ++r) {
          worst = std::max(
              worst, run.profile.inclusive_time(n, static_cast<int>(r)));
        }
      }
    }
    return worst;
  };
  double min_before = 1e300;
  double min_after = 1e300;
  for (std::uint64_t i = 0; i < 3; ++i) {
    min_before = std::min(min_before, solver_time(true, 100 + i));
    min_after = std::min(min_after, solver_time(false, 200 + i));
  }
  const double speedup = 100.0 * (min_before - min_after) / min_before;
  EXPECT_GT(speedup, 12.0);
  EXPECT_LT(speedup, 20.0);
}

}  // namespace
}  // namespace cube
