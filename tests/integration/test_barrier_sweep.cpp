// Parameterized analytic cross-check of the full simulator -> EXPERT path.
//
// For the imbalanced-barrier kernel the Wait-at-Barrier total has a closed
// form: rank r computes base*(1 + imb*r/(np-1)) per round, so its per-round
// wait is base*imb*(1 - r/(np-1)) and the per-round total over ranks is
// base*imb*np/2.  The measured pattern severity must match across process
// counts, round counts, and imbalance amplitudes — a strong end-to-end
// invariant covering the engine's collective semantics, the trace, and the
// analyzer's pattern arithmetic at once.
#include <gtest/gtest.h>

#include <tuple>

#include "expert/analyzer.hpp"
#include "expert/patterns.hpp"
#include "sim/apps/synthetic.hpp"
#include "sim/engine.hpp"

namespace cube {
namespace {

using Param = std::tuple<int /*ranks*/, int /*rounds*/, double /*imb*/>;

class BarrierSweep : public ::testing::TestWithParam<Param> {};

TEST_P(BarrierSweep, WaitAtBarrierMatchesClosedForm) {
  const auto [ranks, rounds, imbalance] = GetParam();
  constexpr double kBase = 0.01;

  sim::SimConfig cfg;
  cfg.cluster.num_nodes = 1;
  cfg.cluster.procs_per_node = ranks;
  cfg.monitor.trace = true;
  sim::RegionTable regions;
  const auto run = sim::Engine(cfg).run(
      regions, sim::build_imbalanced_barrier(regions, cfg.cluster, rounds,
                                             kBase, imbalance));
  const Experiment e = expert::analyze_trace(run.trace);

  // Imbalance term per round: sum over ranks of base*imb*(1 - r/(np-1)).
  // From the second round on, the staggered barrier exits (rank r leaves
  // stagger*r later) add sum_r stagger*((np-1) - r) of extra waiting.
  const double imbalance_term =
      rounds * kBase * imbalance * static_cast<double>(ranks) / 2.0;
  const double stagger_term = (rounds - 1) * cfg.network.exit_stagger *
                              static_cast<double>(ranks) * (ranks - 1) /
                              2.0;
  const double expected = imbalance_term + stagger_term;
  const double measured =
      e.sum_metric(*e.metadata().find_metric(expert::kWaitBarrier));
  // Tolerance: probe dilation shifts arrivals by a few probe overheads per
  // rank and round.
  const double tolerance =
      rounds * ranks * 8 * cfg.monitor.probe_overhead + 1e-9;
  EXPECT_NEAR(measured, expected, tolerance);

  // And the decomposition never loses time: wait + completion + execution
  // inside MPI_Barrier equals the inclusive Barrier total.
  const double barrier_total =
      e.sum_metric_tree(*e.metadata().find_metric(expert::kBarrier));
  const double parts =
      e.sum_metric(*e.metadata().find_metric(expert::kBarrier)) +
      e.sum_metric(*e.metadata().find_metric(expert::kWaitBarrier)) +
      e.sum_metric(*e.metadata().find_metric(expert::kBarrierCompletion));
  EXPECT_NEAR(barrier_total, parts, 1e-12);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, BarrierSweep,
    ::testing::Values(Param{2, 2, 0.2}, Param{2, 8, 0.5}, Param{4, 4, 0.3},
                      Param{8, 3, 0.4}, Param{16, 2, 0.25},
                      Param{16, 5, 0.6}, Param{32, 2, 0.1}),
    [](const auto& info) {
      return "r" + std::to_string(std::get<0>(info.param)) + "x" +
             std::to_string(std::get<1>(info.param)) + "i" +
             std::to_string(static_cast<int>(std::get<2>(info.param) *
                                             100));
    });

}  // namespace
}  // namespace cube
