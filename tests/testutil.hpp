// Shared builders for unit tests: small, fully-known experiments.
#pragma once

#include <memory>
#include <string>

#include "model/experiment.hpp"

namespace cube::testing {

/// Metadata of make_small, without severity:
///
/// Metrics:  time (sec) -> mpi (sec); visits (occ)
/// Program:  main -> work -> MPI_Send; main -> io
/// System:   machine "m0", node "n0", processes 0 and 1, 2 threads each
inline std::unique_ptr<Metadata> small_metadata() {
  auto md = std::make_unique<Metadata>();
  const Metric& time =
      md->add_metric(nullptr, "time", "Time", Unit::Seconds, "total");
  md->add_metric(&time, "mpi", "MPI", Unit::Seconds, "mpi time");
  md->add_metric(nullptr, "visits", "Visits", Unit::Occurrences, "visits");

  const Region& r_main = md->add_region("main", "app.c", 1, 100);
  const Region& r_work = md->add_region("work", "app.c", 10, 50);
  const Region& r_send = md->add_region("MPI_Send", "mpi", -1, -1);
  const Region& r_io = md->add_region("io", "app.c", 60, 80);
  const Cnode& c_main = md->add_cnode_for_region(nullptr, r_main, "app.c", 1);
  const Cnode& c_work = md->add_cnode_for_region(&c_main, r_work, "app.c", 12);
  md->add_cnode_for_region(&c_work, r_send, "app.c", 30);
  md->add_cnode_for_region(&c_main, r_io, "app.c", 62);

  Machine& machine = md->add_machine("m0");
  SysNode& node = md->add_node(machine, "n0");
  for (long rank = 0; rank < 2; ++rank) {
    Process& p =
        md->add_process(node, "rank " + std::to_string(rank), rank);
    md->add_thread(p, "thread 0", 0);
    md->add_thread(p, "thread 1", 1);
  }
  return md;
}

/// Metadata of make_variant: differs from small_metadata in each
/// dimension — an extra metric tree ("flops"), a different call-tree
/// branch (main -> net instead of io), and an extra process rank 2.
inline std::unique_ptr<Metadata> variant_metadata() {
  auto md = std::make_unique<Metadata>();
  const Metric& time =
      md->add_metric(nullptr, "time", "Time", Unit::Seconds, "total");
  md->add_metric(&time, "mpi", "MPI", Unit::Seconds, "mpi time");
  md->add_metric(nullptr, "flops", "FLOPs", Unit::Occurrences, "flops");

  const Region& r_main = md->add_region("main", "app.c", 1, 100);
  const Region& r_work = md->add_region("work", "app.c", 10, 50);
  const Region& r_send = md->add_region("MPI_Send", "mpi", -1, -1);
  const Region& r_net = md->add_region("net", "app.c", 82, 95);
  const Cnode& c_main = md->add_cnode_for_region(nullptr, r_main, "app.c", 1);
  const Cnode& c_work =
      md->add_cnode_for_region(&c_main, r_work, "app.c", 999);  // line moved
  md->add_cnode_for_region(&c_work, r_send, "app.c", 30);
  md->add_cnode_for_region(&c_main, r_net, "app.c", 84);

  Machine& machine = md->add_machine("other-machine");
  SysNode& node = md->add_node(machine, "n0");
  for (long rank = 0; rank < 3; ++rank) {
    Process& p =
        md->add_process(node, "rank " + std::to_string(rank), rank);
    md->add_thread(p, "thread 0", 0);
    md->add_thread(p, "thread 1", 1);
  }
  return md;
}

/// A small experiment with a deterministic severity pattern filling
/// EVERY cell: value(m, c, t) = (m+1)*100 + (c+1)*10 + (t+1).
inline Experiment make_small(StorageKind kind = StorageKind::Dense,
                             const std::string& name = "small") {
  Experiment e(small_metadata(), kind);
  e.set_name(name);
  const Metadata& m = e.metadata();
  for (MetricIndex mi = 0; mi < m.num_metrics(); ++mi) {
    for (CnodeIndex ci = 0; ci < m.num_cnodes(); ++ci) {
      for (ThreadIndex ti = 0; ti < m.num_threads(); ++ti) {
        e.severity().set(mi, ci, ti,
                         static_cast<double>((mi + 1) * 100 + (ci + 1) * 10 +
                                             (ti + 1)));
      }
    }
  }
  return e;
}

/// make_small's sibling over variant_metadata, every cell filled with
/// 1000 + the same pattern.  Used by the integration tests.
inline Experiment make_variant(StorageKind kind = StorageKind::Dense,
                               const std::string& name = "variant") {
  Experiment e(variant_metadata(), kind);
  e.set_name(name);
  const Metadata& m = e.metadata();
  for (MetricIndex mi = 0; mi < m.num_metrics(); ++mi) {
    for (CnodeIndex ci = 0; ci < m.num_cnodes(); ++ci) {
      for (ThreadIndex ti = 0; ti < m.num_threads(); ++ti) {
        e.severity().set(mi, ci, ti,
                         1000.0 + static_cast<double>((mi + 1) * 100 +
                                                      (ci + 1) * 10 +
                                                      (ti + 1)));
      }
    }
  }
  return e;
}

/// A minimal 1-metric experiment whose "time" metric is measured in
/// Occurrences instead of Seconds — the canonical unit-conflict operand
/// against make_small (shared metric unique name, different unit).
inline Experiment make_unit_clash(const std::string& name = "clash") {
  auto md = std::make_unique<Metadata>();
  md->add_metric(nullptr, "time", "Time", Unit::Occurrences,
                 "time, miscounted");
  const Region& r_main = md->add_region("main", "app.c", 1, 100);
  md->add_cnode_for_region(nullptr, r_main, "app.c", 1);
  Machine& machine = md->add_machine("m0");
  SysNode& node = md->add_node(machine, "n0");
  Process& p = md->add_process(node, "rank 0", 0);
  md->add_thread(p, "thread 0", 0);
  Experiment e(std::move(md), StorageKind::Dense);
  e.set_name(name);
  e.severity().set(0, 0, 0, 1.0);
  return e;
}

}  // namespace cube::testing
