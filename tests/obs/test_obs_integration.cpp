// Cross-stack observability tests: enabling the tracer must never change
// results — operators and query runs stay bit-identical at every thread
// count — and the built-in instrumentation must actually record spans and
// metrics from pool workers (docs/OBSERVABILITY.md).
#include <gtest/gtest.h>

#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "algebra/operators.hpp"
#include "common/error.hpp"
#include "common/thread_pool.hpp"
#include "io/repository.hpp"
#include "obs/metrics.hpp"
#include "obs/tracer.hpp"
#include "query/engine.hpp"
#include "testutil.hpp"

namespace cube {
namespace {

using cube::testing::make_small;
using cube::testing::make_variant;

class ObsIntegrationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::disable_tracing();
    obs::Tracer::instance().reset();
  }
  void TearDown() override {
    obs::disable_tracing();
    obs::Tracer::instance().reset();
  }
};

void expect_severity_identical(const Experiment& a, const Experiment& b) {
  ASSERT_EQ(a.metadata().num_metrics(), b.metadata().num_metrics());
  ASSERT_EQ(a.metadata().num_cnodes(), b.metadata().num_cnodes());
  ASSERT_EQ(a.metadata().num_threads(), b.metadata().num_threads());
  for (MetricIndex m = 0; m < a.metadata().num_metrics(); ++m) {
    for (CnodeIndex c = 0; c < a.metadata().num_cnodes(); ++c) {
      for (ThreadIndex t = 0; t < a.metadata().num_threads(); ++t) {
        ASSERT_EQ(a.severity().get(m, c, t), b.severity().get(m, c, t))
            << "cell (" << m << ", " << c << ", " << t << ")";
      }
    }
  }
}

TEST_F(ObsIntegrationTest, TracingDoesNotChangeOperatorResults) {
  const Experiment a = make_small(StorageKind::Dense, "a");
  const Experiment b = make_variant(StorageKind::Sparse, "b");
  const std::vector<const Experiment*> ops = {&a, &b};

  // Reference: tracing off, sequential.
  const Experiment ref_diff = difference(a, b);
  const Experiment ref_mean = mean(ops);
  const Experiment ref_max = maximum(ops);

  obs::enable_tracing();
  for (const std::size_t threads : {1u, 4u, 8u}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    ThreadPool pool(threads);
    OperatorOptions options;
    options.parallel_for = [&pool](std::size_t n,
                                   const std::function<void(std::size_t)>&
                                       body) { pool.parallel_for(n, body); };
    options.metrics = &obs::MetricsRegistry::global();
    expect_severity_identical(difference(a, b, options), ref_diff);
    expect_severity_identical(mean(ops, options), ref_mean);
    expect_severity_identical(maximum(ops, options), ref_max);
  }
  obs::disable_tracing();

  // The operators recorded their spans.
  std::size_t operator_spans = 0;
  for (const auto& snap : obs::Tracer::instance().snapshot()) {
    for (const auto& rec : snap.spans) {
      const std::string name = rec.name;
      if (name == "operator.diff" || name == "operator.mean" ||
          name == "operator.max" || name == "severity.chunk") {
        ++operator_spans;
      }
    }
  }
  EXPECT_GT(operator_spans, 0u);
}

TEST_F(ObsIntegrationTest, TracingDoesNotChangeQueryResults) {
  const std::filesystem::path dir =
      std::filesystem::path(::testing::TempDir()) / "cube_obs_query_repo";
  std::filesystem::remove_all(dir);
  {
    ExperimentRepository repo(dir);
    for (int i = 0; i < 4; ++i) {
      Experiment e = make_small(StorageKind::Dense,
                                "run" + std::to_string(i));
      for (MetricIndex m = 0; m < e.metadata().num_metrics(); ++m) {
        e.severity().add(m, 0, 0, 0.25 * (i + 1));
      }
      e.set_attribute("side", i < 2 ? "l" : "r");
      repo.store(e);
    }
    const char* kQuery = "diff(mean(attr(side=l)), mean(attr(side=r)))";

    query::QueryOptions ref_options;
    ref_options.threads = 1;
    ref_options.use_cache = false;
    ref_options.store_derived = false;
    query::QueryEngine ref_engine(repo, ref_options);
    const query::QueryResult reference = ref_engine.run(kQuery);

    obs::enable_tracing();
    for (const std::size_t threads : {1u, 4u, 8u}) {
      SCOPED_TRACE("threads=" + std::to_string(threads));
      query::QueryOptions options;
      options.threads = threads;
      options.use_cache = false;
      options.store_derived = false;
      query::QueryEngine engine(repo, options);
      const query::QueryResult result = engine.run(kQuery);
      expect_severity_identical(result.experiment, reference.experiment);
      EXPECT_EQ(result.canonical, reference.canonical);
    }
    obs::disable_tracing();
  }
  std::filesystem::remove_all(dir);

  // The run recorded engine spans on this thread and task spans on the
  // pool workers, under their stable names.
  bool saw_query_run = false;
  bool saw_worker_task = false;
  for (const auto& snap : obs::Tracer::instance().snapshot()) {
    for (const auto& rec : snap.spans) {
      if (std::string(rec.name) == "query.run") saw_query_run = true;
      if (std::string(rec.name) == "pool.task" &&
          snap.thread_name.rfind("worker.", 0) == 0) {
        saw_worker_task = true;
      }
    }
  }
  EXPECT_TRUE(saw_query_run);
  EXPECT_TRUE(saw_worker_task);
}

TEST_F(ObsIntegrationTest, TracedRunsFeedThePoolMetrics) {
  auto& global = obs::MetricsRegistry::global();
  const std::uint64_t tasks_before = global.counter("pool.tasks").value();
  const std::uint64_t waits_before =
      global.histogram("pool.queue_wait").count();

  obs::enable_tracing();
  {
    ThreadPool pool(2);
    pool.parallel_for(64, [](std::size_t) {});
  }
  obs::disable_tracing();

  // parallel_for submits one drain task per worker; each traced task
  // observes its queue wait and counts under pool.tasks.
  EXPECT_GT(global.counter("pool.tasks").value(), tasks_before);
  EXPECT_GT(global.histogram("pool.queue_wait").count(), waits_before);
  EXPECT_EQ(global.gauge("pool.threads").value(), 2.0);
}

TEST_F(ObsIntegrationTest, UntracedPoolTasksSkipTheQueueWaitClock) {
  auto& global = obs::MetricsRegistry::global();
  const std::uint64_t waits_before =
      global.histogram("pool.queue_wait").count();
  {
    ThreadPool pool(2);
    pool.parallel_for(64, [](std::size_t) {});
  }
  EXPECT_EQ(global.histogram("pool.queue_wait").count(), waits_before);
}

TEST_F(ObsIntegrationTest, ThrowingOperatorUnwindsItsSpans) {
  obs::enable_tracing();
  ASSERT_EQ(obs::Tracer::instance().open_span_depth(), 0u);
  // mean() opens "operator.mean" before validating its operand list; the
  // throw must unwind the span (the CheckError-path regression: an
  // unbalanced per-thread stack would corrupt every later span's parent).
  EXPECT_THROW((void)mean(std::vector<const Experiment*>{}), OperationError);
  EXPECT_EQ(obs::Tracer::instance().open_span_depth(), 0u);

  // Spans recorded after the unwind nest correctly again.
  const Experiment a = make_small();
  const Experiment after = difference(a, a);
  obs::disable_tracing();
  bool diff_is_root = false;
  for (const auto& snap : obs::Tracer::instance().snapshot()) {
    for (const auto& rec : snap.spans) {
      if (std::string(rec.name) == "operator.diff" &&
          rec.parent == obs::kNoParent) {
        diff_is_root = true;
      }
    }
  }
  EXPECT_TRUE(diff_is_root);
  EXPECT_EQ(after.metadata().num_cnodes(), a.metadata().num_cnodes());
}

}  // namespace
}  // namespace cube
