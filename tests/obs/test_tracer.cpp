// Tracer unit tests: disabled no-op fast path, nesting/parent links,
// thread naming and snapshot order, reset, and the exception-unwind
// guarantee the RAII spans make (docs/OBSERVABILITY.md).
#include "obs/tracer.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

namespace cube::obs {
namespace {

/// The tracer and its registered per-thread buffers are process-global, so
/// every test starts from a disabled tracer with no recorded spans.
/// (Buffers registered by earlier tests survive with zero spans; span
/// assertions therefore go through find_spans, which skips empty threads.)
class TracerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    disable_tracing();
    Tracer::instance().reset();
  }
  void TearDown() override {
    disable_tracing();
    Tracer::instance().reset();
  }
};

/// The one thread snapshot holding spans under `name`; nullptr if none.
const ThreadSnapshot* find_spans(const std::vector<ThreadSnapshot>& threads,
                                 const std::string& name) {
  for (const ThreadSnapshot& t : threads) {
    if (t.thread_name == name && !t.spans.empty()) return &t;
  }
  return nullptr;
}

TEST_F(TracerTest, DisabledSpanSitesRecordNothing) {
  ASSERT_FALSE(tracing_enabled());
  {
    OBS_SPAN("t.outer");
    OBS_SPAN("t.inner", "note");
    Span named("t.explicit");
    EXPECT_FALSE(named.active());
    named.annotate("ignored");
  }
  EXPECT_EQ(Tracer::instance().span_count(), 0u);
}

TEST_F(TracerTest, RecordsNestingWithParentLinks) {
  set_current_thread_name("t.nesting");
  enable_tracing();
  {
    OBS_SPAN("t.root");
    { OBS_SPAN("t.child"); }
    { OBS_SPAN("t.child"); }
  }
  { OBS_SPAN("t.root2"); }
  disable_tracing();

  const auto threads = Tracer::instance().snapshot();
  const ThreadSnapshot* snap = find_spans(threads, "t.nesting");
  ASSERT_NE(snap, nullptr);
  ASSERT_EQ(snap->spans.size(), 4u);
  // Record order: a parent precedes its children.
  EXPECT_STREQ(snap->spans[0].name, "t.root");
  EXPECT_EQ(snap->spans[0].parent, kNoParent);
  EXPECT_STREQ(snap->spans[1].name, "t.child");
  EXPECT_EQ(snap->spans[1].parent, 0u);
  EXPECT_STREQ(snap->spans[2].name, "t.child");
  EXPECT_EQ(snap->spans[2].parent, 0u);
  EXPECT_STREQ(snap->spans[3].name, "t.root2");
  EXPECT_EQ(snap->spans[3].parent, kNoParent);
  for (const SpanRecord& rec : snap->spans) {
    EXPECT_GE(rec.end_ns, rec.start_ns);
  }
  // Children lie inside their parent's interval.
  EXPECT_GE(snap->spans[1].start_ns, snap->spans[0].start_ns);
  EXPECT_LE(snap->spans[2].end_ns, snap->spans[0].end_ns);
}

TEST_F(TracerTest, NotesAndAnnotateAreRecorded) {
  set_current_thread_name("t.notes");
  enable_tracing();
  { OBS_SPAN("t.noted", "cache-hit"); }
  {
    Span s("t.late");
    s.annotate("cache-miss");
  }
  disable_tracing();

  const auto threads = Tracer::instance().snapshot();
  const ThreadSnapshot* snap = find_spans(threads, "t.notes");
  ASSERT_NE(snap, nullptr);
  ASSERT_EQ(snap->spans.size(), 2u);
  EXPECT_STREQ(snap->spans[0].note, "cache-hit");
  EXPECT_STREQ(snap->spans[1].note, "cache-miss");
}

TEST_F(TracerTest, FinishClosesEarlyAndIsIdempotent) {
  set_current_thread_name("t.finish");
  enable_tracing();
  {
    Span phase("t.phase");
    { OBS_SPAN("t.within"); }
    phase.finish();
    phase.finish();  // idempotent; destructor is a further no-op
    { OBS_SPAN("t.after"); }
  }
  disable_tracing();

  const auto threads = Tracer::instance().snapshot();
  const ThreadSnapshot* snap = find_spans(threads, "t.finish");
  ASSERT_NE(snap, nullptr);
  ASSERT_EQ(snap->spans.size(), 3u);
  EXPECT_STREQ(snap->spans[0].name, "t.phase");
  EXPECT_STREQ(snap->spans[1].name, "t.within");
  EXPECT_EQ(snap->spans[1].parent, 0u);
  // The span opened after finish() is a sibling root, not a child.
  EXPECT_STREQ(snap->spans[2].name, "t.after");
  EXPECT_EQ(snap->spans[2].parent, kNoParent);
}

TEST_F(TracerTest, SnapshotOrdersMainThenWorkersThenNames) {
  enable_tracing();
  set_current_thread_name("main");
  { OBS_SPAN("t.on-main"); }
  // Register workers out of numeric order plus an oddly-named thread.
  for (const char* name : {"worker.10", "worker.2", "aux"}) {
    std::thread([name] {
      set_current_thread_name(name);
      OBS_SPAN("t.on-worker");
    }).join();
  }
  disable_tracing();

  const auto threads = Tracer::instance().snapshot();
  std::vector<std::string> order;
  for (const ThreadSnapshot& t : threads) {
    if (!t.spans.empty()) order.push_back(t.thread_name);
  }
  EXPECT_EQ(order, (std::vector<std::string>{"main", "worker.2", "worker.10",
                                             "aux"}));
}

TEST_F(TracerTest, ResetDropsSpansButKeepsBuffersUsable) {
  set_current_thread_name("t.reset");
  enable_tracing();
  { OBS_SPAN("t.before-reset"); }
  EXPECT_GE(Tracer::instance().span_count(), 1u);
  Tracer::instance().reset();
  EXPECT_EQ(Tracer::instance().span_count(), 0u);

  { OBS_SPAN("t.after-reset"); }
  disable_tracing();
  const auto threads = Tracer::instance().snapshot();
  const ThreadSnapshot* snap = find_spans(threads, "t.reset");
  ASSERT_NE(snap, nullptr);
  ASSERT_EQ(snap->spans.size(), 1u);
  EXPECT_STREQ(snap->spans[0].name, "t.after-reset");
}

TEST_F(TracerTest, ManySpansCrossChunkBoundaries) {
  // kChunkSlots is 1024; recording a few thousand spans exercises chunk
  // growth and keeps parent indices valid across chunks.
  set_current_thread_name("t.chunks");
  enable_tracing();
  {
    OBS_SPAN("t.chunk-root");
    for (int i = 0; i < 5000; ++i) {
      OBS_SPAN("t.chunk-leaf");
    }
  }
  disable_tracing();
  const auto threads = Tracer::instance().snapshot();
  const ThreadSnapshot* snap = find_spans(threads, "t.chunks");
  ASSERT_NE(snap, nullptr);
  ASSERT_EQ(snap->spans.size(), 5001u);
  for (std::size_t i = 1; i < snap->spans.size(); ++i) {
    EXPECT_EQ(snap->spans[i].parent, 0u);
  }
}

TEST_F(TracerTest, ExceptionsUnwindOpenSpans) {
  set_current_thread_name("t.unwind");
  enable_tracing();
  ASSERT_EQ(Tracer::instance().open_span_depth(), 0u);
  try {
    OBS_SPAN("t.outer");
    OBS_SPAN("t.inner");
    throw std::runtime_error("boom");
  } catch (const std::runtime_error&) {
  }
  EXPECT_EQ(Tracer::instance().open_span_depth(), 0u);
  disable_tracing();

  // Both spans closed (published) despite the throw.
  const auto threads = Tracer::instance().snapshot();
  const ThreadSnapshot* snap = find_spans(threads, "t.unwind");
  ASSERT_NE(snap, nullptr);
  ASSERT_EQ(snap->spans.size(), 2u);
  for (const SpanRecord& rec : snap->spans) {
    EXPECT_GT(rec.end_ns, 0);
  }
}

}  // namespace
}  // namespace cube::obs
