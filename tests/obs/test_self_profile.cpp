// Self-profile exporter tests: the span/metric mapping onto the data
// model, zero lint diagnostics, round trips through both codecs, and the
// other two exporters' output formats (docs/OBSERVABILITY.md).
#include "obs/self_profile.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <sstream>
#include <string>
#include <vector>

#include "io/binary_format.hpp"
#include "io/cube_format.hpp"
#include "lint/lint.hpp"
#include "obs/report.hpp"

namespace cube::obs {
namespace {

/// A hand-built snapshot with fully-known times:
///   main:      query.run [1000, 5000] > operator.diff [2000, 3000]
///   worker.0:  pool.task [1000, 2000]
std::vector<ThreadSnapshot> fixed_snapshot() {
  std::vector<ThreadSnapshot> threads(2);
  threads[0].thread_name = "main";
  threads[0].spans = {
      {"query.run", nullptr, 1000, 5000, kNoParent},
      {"operator.diff", "cache-miss", 2000, 3000, 0},
  };
  threads[1].thread_name = "worker.0";
  threads[1].spans = {{"pool.task", nullptr, 1000, 2000, kNoParent}};
  return threads;
}

MetricsRegistry& fixed_registry() {
  static MetricsRegistry* reg = [] {
    auto* r = new MetricsRegistry();
    r->counter("test.bytes", SampleUnit::Bytes).add(123);
    r->histogram("test.wait", SampleUnit::Seconds).observe(0.5);
    r->histogram("test.wait", SampleUnit::Seconds).observe(1.5);
    return r;
  }();
  return *reg;
}

/// The cnode whose callee region has `name`; nullptr if absent.
const Cnode* find_cnode(const Metadata& md, const std::string& name) {
  for (const auto& cnode : md.cnodes()) {
    if (cnode->callee().name() == name) return cnode.get();
  }
  return nullptr;
}

TEST(SelfProfile, MapsSpansAndMetricsOntoTheDataModel) {
  SelfProfileOptions options;
  options.name = "test self-profile";
  const Experiment profile =
      export_self_profile(fixed_snapshot(), fixed_registry(), options);
  const Metadata& md = profile.metadata();

  EXPECT_EQ(profile.name(), "test self-profile");
  EXPECT_EQ(profile.attribute("obs::threads"), "2");
  EXPECT_EQ(profile.attribute("obs::spans"), "3");

  // Metric dimension: time + visits + one metric per instrument (the
  // histogram also gets a .count companion).
  const Metric* time = md.find_metric("time");
  const Metric* visits = md.find_metric("visits");
  const Metric* bytes = md.find_metric("test.bytes");
  const Metric* wait = md.find_metric("test.wait");
  const Metric* wait_count = md.find_metric("test.wait.count");
  ASSERT_NE(time, nullptr);
  ASSERT_NE(visits, nullptr);
  ASSERT_NE(bytes, nullptr);
  ASSERT_NE(wait, nullptr);
  ASSERT_NE(wait_count, nullptr);
  EXPECT_EQ(time->unit(), Unit::Seconds);
  EXPECT_EQ(bytes->unit(), Unit::Bytes);

  // Program dimension: "(run)" root plus one cnode per distinct path.
  const Cnode* run = find_cnode(md, "(run)");
  const Cnode* query_run = find_cnode(md, "query.run");
  const Cnode* diff = find_cnode(md, "operator.diff");
  const Cnode* task = find_cnode(md, "pool.task");
  ASSERT_NE(run, nullptr);
  ASSERT_NE(query_run, nullptr);
  ASSERT_NE(diff, nullptr);
  ASSERT_NE(task, nullptr);
  EXPECT_EQ(query_run->parent(), run);
  EXPECT_EQ(diff->parent(), query_run);
  EXPECT_EQ(task->parent(), run);

  // System dimension: one thread per traced thread, in snapshot order.
  ASSERT_EQ(md.num_threads(), 2u);
  EXPECT_EQ(md.threads()[0]->name(), "main");
  EXPECT_EQ(md.threads()[1]->name(), "worker.0");
  const Thread& t_main = *md.threads()[0];
  const Thread& t_worker = *md.threads()[1];

  // Exclusive time: query.run's 4000 ns minus the child's 1000 ns.
  EXPECT_DOUBLE_EQ(profile.get(*time, *query_run, t_main), 3000e-9);
  EXPECT_DOUBLE_EQ(profile.get(*time, *diff, t_main), 1000e-9);
  EXPECT_DOUBLE_EQ(profile.get(*time, *task, t_worker), 1000e-9);
  EXPECT_DOUBLE_EQ(profile.get(*time, *task, t_main), 0.0);
  EXPECT_DOUBLE_EQ(profile.get(*visits, *diff, t_main), 1.0);

  // Instruments land on the "(run)" root of the first thread.
  EXPECT_DOUBLE_EQ(profile.get(*bytes, *run, t_main), 123.0);
  EXPECT_DOUBLE_EQ(profile.get(*wait, *run, t_main), 2.0);
  EXPECT_DOUBLE_EQ(profile.get(*wait_count, *run, t_main), 2.0);
}

TEST(SelfProfile, LintsCleanWithZeroDiagnostics) {
  const Experiment profile =
      export_self_profile(fixed_snapshot(), fixed_registry());
  lint::DiagnosticSink sink;
  lint::lint_experiment(profile, sink);
  EXPECT_TRUE(sink.empty()) << [&] {
    std::ostringstream out;
    sink.write_text(out);
    return out.str();
  }();
}

TEST(SelfProfile, EmptySnapshotStillExportsAValidExperiment) {
  const Experiment profile =
      export_self_profile({}, MetricsRegistry{});
  lint::DiagnosticSink sink;
  lint::lint_experiment(profile, sink);
  EXPECT_TRUE(sink.empty());
  EXPECT_EQ(profile.metadata().num_threads(), 1u);  // synthetic "main"
}

TEST(SelfProfile, RoundTripsThroughBothCodecs) {
  const Experiment profile =
      export_self_profile(fixed_snapshot(), fixed_registry());
  const std::filesystem::path dir(::testing::TempDir());
  const std::string xml_path = (dir / "self_profile_rt.cube").string();
  const std::string bin_path = (dir / "self_profile_rt.cubx").string();
  write_self_profile_file(profile, xml_path);
  write_self_profile_file(profile, bin_path);

  // Extension picks the codec: the binary file must NOT parse as XML.
  const Experiment from_xml = read_experiment_file(xml_path);
  const Experiment from_bin = read_cube_binary_file(bin_path);
  for (const Experiment* rt : {&from_xml, &from_bin}) {
    ASSERT_EQ(rt->metadata().digest(), profile.metadata().digest());
    EXPECT_EQ(rt->name(), profile.name());
    for (MetricIndex m = 0; m < profile.metadata().num_metrics(); ++m) {
      for (CnodeIndex c = 0; c < profile.metadata().num_cnodes(); ++c) {
        for (ThreadIndex t = 0; t < profile.metadata().num_threads(); ++t) {
          ASSERT_EQ(rt->severity().get(m, c, t),
                    profile.severity().get(m, c, t))
              << "cell (" << m << ", " << c << ", " << t << ")";
        }
      }
    }
    lint::DiagnosticSink sink;
    lint::lint_experiment(*rt, sink);
    EXPECT_TRUE(sink.empty());
  }
  std::filesystem::remove(xml_path);
  std::filesystem::remove(bin_path);
}

TEST(SelfProfile, ExportIsDeterministic) {
  // Two runs recording the same span structure build digest-equal
  // metadata (entity creation order is sorted, not arrival order), which
  // is what lets cube_diff line up two traced runs of one tool.
  const Experiment a =
      export_self_profile(fixed_snapshot(), fixed_registry());
  const Experiment b =
      export_self_profile(fixed_snapshot(), fixed_registry());
  EXPECT_EQ(a.metadata().digest(), b.metadata().digest());
}

TEST(ChromeTrace, EmitsCompleteEventsAndThreadNames) {
  std::ostringstream out;
  write_chrome_trace(out, fixed_snapshot());
  const std::string json = out.str();
  EXPECT_EQ(json.front(), '{');
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"M\""), std::string::npos);
  EXPECT_NE(json.find("\"thread_name\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"main\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"worker.0\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"query.run\""), std::string::npos);
  // Timestamps are rebased to the earliest span and in microseconds: the
  // diff span starts 1000 ns = 1 us after the base.
  EXPECT_NE(json.find("\"ts\":1.000"), std::string::npos);
  EXPECT_NE(json.find("\"note\":\"cache-miss\""), std::string::npos);
}

TEST(TextReport, ListsCallTreeAndMetrics) {
  std::ostringstream out;
  write_text_report(out, fixed_snapshot(), fixed_registry());
  const std::string text = out.str();
  EXPECT_NE(text.find("main"), std::string::npos);
  EXPECT_NE(text.find("query.run"), std::string::npos);
  EXPECT_NE(text.find("operator.diff"), std::string::npos);
  EXPECT_NE(text.find("test.bytes"), std::string::npos);
}

}  // namespace
}  // namespace cube::obs
