// Concurrency contract of the metrics path the daemon's telemetry
// endpoints lean on: snapshot(), quantile(), cells(), and the registry
// window can all run WHILE other threads hammer the instruments, without
// data races (TSan-clean) and without torn per-field nonsense like a
// negative count.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/window.hpp"

namespace cube::obs {
namespace {

TEST(ConcurrentMetrics, SnapshotWhileRecording) {
  MetricsRegistry reg;
  Counter& c = reg.counter("load.count");
  Gauge& g = reg.gauge("load.level");
  Gauge& peak = reg.gauge("load.peak");
  Histogram& h = reg.histogram("load.hist", SampleUnit::Seconds);

  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&, t] {
      double v = 0.001 * (t + 1);
      while (!stop.load(std::memory_order_relaxed)) {
        c.add();
        g.set(v);
        peak.record_max(v);
        h.observe(v);
        v = v < 1.0 ? v * 1.5 : 0.001 * (t + 1);
      }
    });
  }

  // On a saturated machine the reader loop below can finish before the
  // writer threads are ever scheduled; wait for the first recorded
  // observation so the final assertions see a nonzero counter.
  while (c.value() == 0) std::this_thread::yield();

  // Readers: full snapshots, direct quantiles, and window advances, all
  // concurrent with the writers.
  RegistryWindow window(reg);
  for (int round = 0; round < 200; ++round) {
    const std::vector<MetricSample> samples = reg.snapshot();
    for (const MetricSample& s : samples) {
      if (s.kind != InstrumentKind::Histogram) continue;
      EXPECT_GE(s.max, 0.0);
      EXPECT_LE(s.p50, s.p99 + 1e-9);
    }
    (void)h.quantile(0.5);
    if (round % 50 == 49) {
      std::unique_ptr<MetricsRegistry> delta = window.advance();
      // A window's bucketed total never exceeds its observation count
      // plus what raced in after the count was read.
      EXPECT_GE(delta->histogram("load.hist", SampleUnit::Seconds).sum(),
                0.0);
    }
  }
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& t : writers) t.join();

  const std::vector<MetricSample> final_samples = reg.snapshot();
  ASSERT_EQ(final_samples.size(), 4u);
  EXPECT_EQ(final_samples[0].name, "load.count");
  EXPECT_GT(final_samples[0].value, 0.0);
}

TEST(ConcurrentMetrics, RegistrationRacesResolveToOneInstrument) {
  MetricsRegistry reg;
  std::vector<std::thread> threads;
  std::vector<Counter*> seen(8, nullptr);
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back(
        [&, t] { seen[t] = &reg.counter("race.count"); });
  }
  for (std::thread& t : threads) t.join();
  for (int t = 1; t < 8; ++t) EXPECT_EQ(seen[t], seen[0]);
}

}  // namespace
}  // namespace cube::obs
