// MetricsRegistry unit tests: instrument semantics, snapshot order,
// absorb, reset-keeps-references, and the stable-name contract
// (re-registering under a different kind or unit throws).
#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

namespace cube::obs {
namespace {

TEST(Metrics, CounterAccumulates) {
  MetricsRegistry reg;
  Counter& c = reg.counter("test.counter");
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  // Same name resolves to the same instrument.
  EXPECT_EQ(&reg.counter("test.counter"), &c);
  EXPECT_EQ(reg.size(), 1u);
}

TEST(Metrics, GaugeKeepsLastLevel) {
  MetricsRegistry reg;
  Gauge& g = reg.gauge("test.gauge");
  g.set(8.0);
  g.set(4.0);
  EXPECT_EQ(g.value(), 4.0);
}

TEST(Metrics, HistogramTracksDistribution) {
  MetricsRegistry reg;
  Histogram& h = reg.histogram("test.hist");
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0.0);
  EXPECT_EQ(h.max(), 0.0);
  h.observe(2.0);
  h.observe(0.5);
  h.observe(1.5);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.sum(), 4.0);
  EXPECT_DOUBLE_EQ(h.min(), 0.5);
  EXPECT_DOUBLE_EQ(h.max(), 2.0);
  EXPECT_NEAR(h.mean(), 4.0 / 3.0, 1e-12);
  std::uint64_t bucketed = 0;
  for (std::size_t i = 0; i < Histogram::kBuckets; ++i) {
    bucketed += h.bucket(i);
  }
  EXPECT_EQ(bucketed, 3u);
}

TEST(Metrics, SnapshotIsSortedByNameWithTypedFields) {
  MetricsRegistry reg;
  reg.histogram("b.hist", SampleUnit::Seconds).observe(0.25);
  reg.counter("c.counter", SampleUnit::Bytes).add(7);
  reg.gauge("a.gauge").set(3.0);

  const std::vector<MetricSample> samples = reg.snapshot();
  ASSERT_EQ(samples.size(), 3u);
  EXPECT_EQ(samples[0].name, "a.gauge");
  EXPECT_EQ(samples[0].kind, InstrumentKind::Gauge);
  EXPECT_EQ(samples[0].value, 3.0);
  EXPECT_EQ(samples[1].name, "b.hist");
  EXPECT_EQ(samples[1].kind, InstrumentKind::Histogram);
  EXPECT_EQ(samples[1].unit, SampleUnit::Seconds);
  EXPECT_EQ(samples[1].count, 1u);
  EXPECT_EQ(samples[1].value, 0.25);  // histogram sum
  EXPECT_EQ(samples[2].name, "c.counter");
  EXPECT_EQ(samples[2].unit, SampleUnit::Bytes);
  EXPECT_EQ(samples[2].value, 7.0);
}

TEST(Metrics, AbsorbAccumulatesAndRegistersMissingInstruments) {
  MetricsRegistry global;
  global.counter("shared.counter").add(10);

  MetricsRegistry run;
  run.counter("shared.counter").add(5);
  run.counter("run.only", SampleUnit::Bytes).add(3);
  run.gauge("run.gauge").set(2.0);
  run.histogram("run.hist").observe(1.0);
  run.histogram("run.hist").observe(3.0);

  global.absorb(run);
  EXPECT_EQ(global.counter("shared.counter").value(), 15u);
  EXPECT_EQ(global.counter("run.only", SampleUnit::Bytes).value(), 3u);
  EXPECT_EQ(global.gauge("run.gauge").value(), 2.0);
  EXPECT_EQ(global.histogram("run.hist").count(), 2u);
  EXPECT_DOUBLE_EQ(global.histogram("run.hist").sum(), 4.0);
  EXPECT_DOUBLE_EQ(global.histogram("run.hist").min(), 1.0);
  EXPECT_DOUBLE_EQ(global.histogram("run.hist").max(), 3.0);
  // The source is untouched.
  EXPECT_EQ(run.counter("shared.counter").value(), 5u);
}

TEST(Metrics, ResetZeroesValuesButKeepsReferencesValid) {
  MetricsRegistry reg;
  Counter& c = reg.counter("test.counter");
  Histogram& h = reg.histogram("test.hist");
  c.add(9);
  h.observe(1.0);
  reg.reset();
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(reg.size(), 2u);  // instruments never disappear
  c.add(1);  // the cached reference still feeds the registry
  EXPECT_EQ(reg.counter("test.counter").value(), 1u);
}

TEST(Metrics, ReRegisteringWithDifferentKindOrUnitThrows) {
  MetricsRegistry reg;
  reg.counter("test.name", SampleUnit::Bytes);
  EXPECT_THROW(reg.gauge("test.name", SampleUnit::Bytes),
               std::runtime_error);
  EXPECT_THROW(reg.counter("test.name", SampleUnit::Count),
               std::runtime_error);
  // The original registration is unaffected.
  EXPECT_NO_THROW(reg.counter("test.name", SampleUnit::Bytes).add(1));
}

TEST(Metrics, ReportListsEveryInstrument) {
  MetricsRegistry reg;
  reg.counter("report.counter").add(12);
  reg.histogram("report.hist").observe(0.5);
  std::ostringstream out;
  write_metrics_report(out, reg);
  const std::string text = out.str();
  EXPECT_NE(text.find("report.counter"), std::string::npos);
  EXPECT_NE(text.find("12 occ"), std::string::npos);
  EXPECT_NE(text.find("report.hist"), std::string::npos);
  EXPECT_NE(text.find("1 samples"), std::string::npos);

  std::ostringstream empty;
  write_metrics_report(empty, MetricsRegistry{});
  EXPECT_NE(empty.str().find("no metrics recorded"), std::string::npos);
}

}  // namespace
}  // namespace cube::obs
