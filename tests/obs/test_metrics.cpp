// MetricsRegistry unit tests: instrument semantics, snapshot order,
// absorb, reset-keeps-references, and the stable-name contract
// (re-registering under a different kind or unit throws).
#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

namespace cube::obs {
namespace {

TEST(Metrics, CounterAccumulates) {
  MetricsRegistry reg;
  Counter& c = reg.counter("test.counter");
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  // Same name resolves to the same instrument.
  EXPECT_EQ(&reg.counter("test.counter"), &c);
  EXPECT_EQ(reg.size(), 1u);
}

TEST(Metrics, GaugeKeepsLastLevel) {
  MetricsRegistry reg;
  Gauge& g = reg.gauge("test.gauge");
  g.set(8.0);
  g.set(4.0);
  EXPECT_EQ(g.value(), 4.0);
}

TEST(Metrics, HistogramTracksDistribution) {
  MetricsRegistry reg;
  Histogram& h = reg.histogram("test.hist");
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0.0);
  EXPECT_EQ(h.max(), 0.0);
  h.observe(2.0);
  h.observe(0.5);
  h.observe(1.5);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.sum(), 4.0);
  EXPECT_DOUBLE_EQ(h.min(), 0.5);
  EXPECT_DOUBLE_EQ(h.max(), 2.0);
  EXPECT_NEAR(h.mean(), 4.0 / 3.0, 1e-12);
  std::uint64_t bucketed = 0;
  for (std::size_t i = 0; i < Histogram::kBuckets; ++i) {
    bucketed += h.bucket(i);
  }
  EXPECT_EQ(bucketed, 3u);
}

TEST(Metrics, SnapshotIsSortedByNameWithTypedFields) {
  MetricsRegistry reg;
  reg.histogram("b.hist", SampleUnit::Seconds).observe(0.25);
  reg.counter("c.counter", SampleUnit::Bytes).add(7);
  reg.gauge("a.gauge").set(3.0);

  const std::vector<MetricSample> samples = reg.snapshot();
  ASSERT_EQ(samples.size(), 3u);
  EXPECT_EQ(samples[0].name, "a.gauge");
  EXPECT_EQ(samples[0].kind, InstrumentKind::Gauge);
  EXPECT_EQ(samples[0].value, 3.0);
  EXPECT_EQ(samples[1].name, "b.hist");
  EXPECT_EQ(samples[1].kind, InstrumentKind::Histogram);
  EXPECT_EQ(samples[1].unit, SampleUnit::Seconds);
  EXPECT_EQ(samples[1].count, 1u);
  EXPECT_EQ(samples[1].value, 0.25);  // histogram sum
  EXPECT_EQ(samples[2].name, "c.counter");
  EXPECT_EQ(samples[2].unit, SampleUnit::Bytes);
  EXPECT_EQ(samples[2].value, 7.0);
}

TEST(Metrics, AbsorbAccumulatesAndRegistersMissingInstruments) {
  MetricsRegistry global;
  global.counter("shared.counter").add(10);

  MetricsRegistry run;
  run.counter("shared.counter").add(5);
  run.counter("run.only", SampleUnit::Bytes).add(3);
  run.gauge("run.gauge").set(2.0);
  run.histogram("run.hist").observe(1.0);
  run.histogram("run.hist").observe(3.0);

  global.absorb(run);
  EXPECT_EQ(global.counter("shared.counter").value(), 15u);
  EXPECT_EQ(global.counter("run.only", SampleUnit::Bytes).value(), 3u);
  EXPECT_EQ(global.gauge("run.gauge").value(), 2.0);
  EXPECT_EQ(global.histogram("run.hist").count(), 2u);
  EXPECT_DOUBLE_EQ(global.histogram("run.hist").sum(), 4.0);
  EXPECT_DOUBLE_EQ(global.histogram("run.hist").min(), 1.0);
  EXPECT_DOUBLE_EQ(global.histogram("run.hist").max(), 3.0);
  // The source is untouched.
  EXPECT_EQ(run.counter("shared.counter").value(), 5u);
}

TEST(Metrics, ResetZeroesValuesButKeepsReferencesValid) {
  MetricsRegistry reg;
  Counter& c = reg.counter("test.counter");
  Histogram& h = reg.histogram("test.hist");
  c.add(9);
  h.observe(1.0);
  reg.reset();
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(reg.size(), 2u);  // instruments never disappear
  c.add(1);  // the cached reference still feeds the registry
  EXPECT_EQ(reg.counter("test.counter").value(), 1u);
}

TEST(Metrics, ReRegisteringWithDifferentKindOrUnitThrows) {
  MetricsRegistry reg;
  reg.counter("test.name", SampleUnit::Bytes);
  EXPECT_THROW(reg.gauge("test.name", SampleUnit::Bytes),
               std::runtime_error);
  EXPECT_THROW(reg.counter("test.name", SampleUnit::Count),
               std::runtime_error);
  // The original registration is unaffected.
  EXPECT_NO_THROW(reg.counter("test.name", SampleUnit::Bytes).add(1));
}

TEST(Metrics, BucketBoundsAreExactPowersOfTwoTimesSubEdges) {
  // Bucket 0 starts at zero; every fourth bucket after the first lands
  // exactly on a power of two (ldexp is exact), and the lower bounds are
  // strictly increasing.
  EXPECT_DOUBLE_EQ(Histogram::bucket_lower_bound(0), 0.0);
  EXPECT_DOUBLE_EQ(Histogram::bucket_lower_bound(4), std::ldexp(1.0, -29));
  EXPECT_DOUBLE_EQ(Histogram::bucket_lower_bound(Histogram::kBuckets),
                   std::ldexp(1.0, 2));
  for (std::size_t i = 1; i < Histogram::kBuckets; ++i) {
    EXPECT_LT(Histogram::bucket_lower_bound(i),
              Histogram::bucket_lower_bound(i + 1))
        << "bucket " << i;
  }
  // An observation at a bucket's exact lower bound is counted in that
  // bucket: [lower, next) semantics.
  for (std::size_t i : {1u, 4u, 57u, 126u}) {
    Histogram h;
    h.observe(Histogram::bucket_lower_bound(i));
    EXPECT_EQ(h.bucket(i), 1u) << "bucket " << i;
  }
}

TEST(Metrics, QuantilesInterpolateWithinBuckets) {
  Histogram h;
  // 1000 samples spread uniformly over [0.1, 1.1): the quantiles must
  // come back within a bucket width of the exact answer.
  for (int i = 0; i < 1000; ++i) h.observe(0.1 + i * 0.001);
  EXPECT_NEAR(h.quantile(0.50), 0.6, 0.12);
  EXPECT_NEAR(h.quantile(0.90), 1.0, 0.2);
  // The extremes clamp to the observed min/max, not bucket edges.
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 0.1);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), h.max());
  // Degenerate cases.
  Histogram empty;
  EXPECT_DOUBLE_EQ(empty.quantile(0.5), 0.0);
  Histogram one;
  one.observe(42.0);
  EXPECT_DOUBLE_EQ(one.quantile(0.5), 42.0);
  EXPECT_DOUBLE_EQ(one.quantile(0.99), 42.0);
}

TEST(Metrics, QuantilesAreMonotoneInQ) {
  Histogram h;
  for (int i = 1; i <= 100; ++i) h.observe(i * 0.01);
  double last = -1.0;
  for (double q = 0.0; q <= 1.0; q += 0.05) {
    const double v = h.quantile(q);
    EXPECT_GE(v, last) << "q = " << q;
    last = v;
  }
}

TEST(Metrics, SnapshotCarriesQuantiles) {
  MetricsRegistry reg;
  Histogram& h = reg.histogram("q.hist", SampleUnit::Seconds);
  for (int i = 0; i < 100; ++i) h.observe(0.010);
  h.observe(1.0);
  const std::vector<MetricSample> samples = reg.snapshot();
  ASSERT_EQ(samples.size(), 1u);
  EXPECT_NEAR(samples[0].p50, 0.010, 0.004);
  EXPECT_NEAR(samples[0].p99, samples[0].p50, 1.0);
  EXPECT_GE(samples[0].p99, samples[0].p90);
  EXPECT_GE(samples[0].p90, samples[0].p50);
}

TEST(Metrics, GaugeRecordMaxIsAHighWatermark) {
  MetricsRegistry reg;
  Gauge& g = reg.gauge("peak.gauge");
  EXPECT_FALSE(g.high_watermark());
  g.record_max(3.0);
  g.record_max(7.0);
  g.record_max(5.0);  // lower values never move the watermark
  EXPECT_DOUBLE_EQ(g.value(), 7.0);
  EXPECT_TRUE(g.high_watermark());
  reg.reset();
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
  EXPECT_TRUE(g.high_watermark());  // the mode survives a reset
}

TEST(Metrics, AbsorbTakesMaxOfWatermarkGauges) {
  MetricsRegistry global;
  global.gauge("peak").record_max(10.0);

  MetricsRegistry lower;
  lower.gauge("peak").record_max(4.0);
  global.absorb(lower);
  EXPECT_DOUBLE_EQ(global.gauge("peak").value(), 10.0);  // max, not last

  MetricsRegistry higher;
  higher.gauge("peak").record_max(12.0);
  global.absorb(higher);
  EXPECT_DOUBLE_EQ(global.gauge("peak").value(), 12.0);

  // Plain gauges keep last-write-wins semantics under absorb.
  MetricsRegistry level;
  level.gauge("level").set(2.0);
  global.absorb(level);
  MetricsRegistry level2;
  level2.gauge("level").set(1.0);
  global.absorb(level2);
  EXPECT_DOUBLE_EQ(global.gauge("level").value(), 1.0);
}

TEST(Metrics, ReportIncludesQuantiles) {
  MetricsRegistry reg;
  for (int i = 0; i < 50; ++i) reg.histogram("lat").observe(0.5);
  std::ostringstream out;
  write_metrics_report(out, reg);
  EXPECT_NE(out.str().find("p50"), std::string::npos);
  EXPECT_NE(out.str().find("p99"), std::string::npos);
}

TEST(Metrics, ReportListsEveryInstrument) {
  MetricsRegistry reg;
  reg.counter("report.counter").add(12);
  reg.histogram("report.hist").observe(0.5);
  std::ostringstream out;
  write_metrics_report(out, reg);
  const std::string text = out.str();
  EXPECT_NE(text.find("report.counter"), std::string::npos);
  EXPECT_NE(text.find("12 occ"), std::string::npos);
  EXPECT_NE(text.find("report.hist"), std::string::npos);
  EXPECT_NE(text.find("1 samples"), std::string::npos);

  std::ostringstream empty;
  write_metrics_report(empty, MetricsRegistry{});
  EXPECT_NE(empty.str().find("no metrics recorded"), std::string::npos);
}

}  // namespace
}  // namespace cube::obs
