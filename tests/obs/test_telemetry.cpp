// Telemetry building blocks: the deterministic JSON exporter and the
// RegistryWindow differ used by the daemon's self-profile windows.
#include <gtest/gtest.h>

#include <limits>
#include <memory>
#include <sstream>
#include <string>

#include "obs/json_export.hpp"
#include "obs/metrics.hpp"
#include "obs/self_profile.hpp"
#include "obs/window.hpp"

namespace cube::obs {
namespace {

std::string json_string(std::string_view s) {
  std::ostringstream out;
  write_json_string(out, s);
  return out.str();
}

TEST(JsonExport, StringsEscapeControlAndQuoteCharacters) {
  EXPECT_EQ(json_string("plain"), "\"plain\"");
  EXPECT_EQ(json_string("a\"b"), "\"a\\\"b\"");
  EXPECT_EQ(json_string("back\\slash"), "\"back\\\\slash\"");
  EXPECT_EQ(json_string("line\nbreak"), "\"line\\nbreak\"");
  EXPECT_EQ(json_string("tab\there"), "\"tab\\there\"");
  EXPECT_EQ(json_string(std::string("nul\x01") + "x"), "\"nul\\u0001x\"");
}

TEST(JsonExport, NumbersAreShortestRoundTrip) {
  std::ostringstream out;
  write_json_number(out, 0.25);
  out << ' ';
  write_json_number(out, 1.0 / 3.0);
  out << ' ';
  write_json_number(out, std::uint64_t{18446744073709551615ull});
  EXPECT_EQ(out.str(), "0.25 0.3333333333333333 18446744073709551615");
}

TEST(JsonExport, NonFiniteValuesBecomeZero) {
  std::ostringstream out;
  write_json_number(out, std::numeric_limits<double>::infinity());
  out << ' ';
  write_json_number(out, std::numeric_limits<double>::quiet_NaN());
  EXPECT_EQ(out.str(), "0 0");
}

TEST(JsonExport, MetricsDocumentShapeAndDeterminism) {
  MetricsRegistry reg;
  reg.counter("a.count").add(3);
  reg.gauge("b.gauge", SampleUnit::Bytes).set(128.0);
  for (int i = 0; i < 10; ++i) {
    reg.histogram("c.hist", SampleUnit::Seconds).observe(0.5);
  }
  const std::string doc = metrics_json(reg.snapshot());
  EXPECT_NE(doc.find("\"a.count\":{\"kind\":\"counter\""), std::string::npos);
  EXPECT_NE(doc.find("\"value\":3"), std::string::npos);
  EXPECT_NE(doc.find("\"b.gauge\":{\"kind\":\"gauge\",\"unit\":\"bytes\""),
            std::string::npos);
  EXPECT_NE(doc.find("\"c.hist\":{\"kind\":\"histogram\""),
            std::string::npos);
  EXPECT_NE(doc.find("\"count\":10"), std::string::npos);
  EXPECT_NE(doc.find("\"p50\":"), std::string::npos);
  EXPECT_NE(doc.find("\"p99\":"), std::string::npos);
  // Byte-deterministic: the same state renders the same bytes.
  EXPECT_EQ(doc, metrics_json(reg.snapshot()));
  EXPECT_EQ(metrics_json({}), "{}");
}

TEST(RegistryWindow, CountersDeltaAcrossAdvances) {
  MetricsRegistry reg;
  Counter& c = reg.counter("w.count");
  c.add(10);
  RegistryWindow window(reg);  // baseline at 10
  c.add(5);
  std::unique_ptr<MetricsRegistry> w1 = window.advance();
  EXPECT_EQ(w1->counter("w.count").value(), 5u);
  c.add(2);
  std::unique_ptr<MetricsRegistry> w2 = window.advance();
  EXPECT_EQ(w2->counter("w.count").value(), 2u);
  // The source registry is never reset by windowing.
  EXPECT_EQ(c.value(), 17u);
}

TEST(RegistryWindow, HistogramsDeltaPreservingDistribution) {
  MetricsRegistry reg;
  Histogram& h = reg.histogram("w.hist", SampleUnit::Seconds);
  h.observe(0.5);
  RegistryWindow window(reg);
  for (int i = 0; i < 100; ++i) h.observe(1.0);
  std::unique_ptr<MetricsRegistry> w = window.advance();
  const Histogram& wh = w->histogram("w.hist", SampleUnit::Seconds);
  EXPECT_EQ(wh.count(), 100u);
  EXPECT_DOUBLE_EQ(wh.sum(), 100.0);
  // The delta's quantiles see only the window's observations.
  EXPECT_NEAR(wh.quantile(0.5), 1.0, 0.2);
  EXPECT_EQ(h.count(), 101u);  // source untouched
}

TEST(RegistryWindow, GaugesCopyLevelOrWatermark) {
  MetricsRegistry reg;
  reg.gauge("w.level").set(3.0);
  reg.gauge("w.peak").record_max(9.0);
  RegistryWindow window(reg);
  reg.gauge("w.level").set(4.0);
  std::unique_ptr<MetricsRegistry> w = window.advance();
  EXPECT_DOUBLE_EQ(w->gauge("w.level").value(), 4.0);
  EXPECT_DOUBLE_EQ(w->gauge("w.peak").value(), 9.0);
  EXPECT_TRUE(w->gauge("w.peak").high_watermark());
}

TEST(RegistryWindow, InstrumentsBornMidWindowAppearInTheNextDelta) {
  MetricsRegistry reg;
  reg.counter("early").add(1);
  RegistryWindow window(reg);
  reg.counter("late", SampleUnit::Bytes).add(7);
  std::unique_ptr<MetricsRegistry> w = window.advance();
  EXPECT_EQ(w->counter("late", SampleUnit::Bytes).value(), 7u);
  EXPECT_EQ(w->counter("early").value(), 0u);
}

TEST(RegistryWindow, SourceResetReportsPostResetValues) {
  MetricsRegistry reg;
  Counter& c = reg.counter("w.count");
  c.add(100);
  RegistryWindow window(reg);
  reg.reset();
  c.add(3);
  // 3 < baseline 100: a wrap-around would report a garbage delta; the
  // saturating differ reports the post-reset value instead.
  std::unique_ptr<MetricsRegistry> w = window.advance();
  EXPECT_EQ(w->counter("w.count").value(), 3u);
}

TEST(RegistryWindow, WindowExperimentsAreDigestCompatible) {
  // Two consecutive windows of the same registry, exported with an empty
  // thread list, must produce experiments with identical metadata digests
  // — the precondition for `difference` composing them bit-exactly.
  MetricsRegistry reg;
  reg.counter("w.queries").add(5);
  reg.histogram("w.time", SampleUnit::Seconds).observe(0.25);
  RegistryWindow window(reg);

  reg.counter("w.queries").add(2);
  SelfProfileOptions options;
  options.name = "window";
  const Experiment e1 = export_self_profile({}, *window.advance(), options);

  reg.counter("w.queries").add(9);
  reg.histogram("w.time", SampleUnit::Seconds).observe(0.75);
  const Experiment e2 = export_self_profile({}, *window.advance(), options);

  EXPECT_EQ(e1.metadata().digest(), e2.metadata().digest());
}

}  // namespace
}  // namespace cube::obs
