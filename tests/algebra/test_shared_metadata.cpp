// The digest short-circuit: operands with identical frozen metadata skip
// the structural merge, the result SHARES the operand instance, and the
// values are bit-identical to the structural path's.
#include <gtest/gtest.h>

#include <vector>

#include "algebra/integration.hpp"
#include "algebra/operators.hpp"
#include "algebra/statistics.hpp"
#include "common/rng.hpp"
#include "testutil.hpp"

namespace cube {
namespace {

using cube::testing::make_small;
using cube::testing::make_variant;

/// A copy of `e` with independently chosen severities: structurally
/// digest-equal but a DIFFERENT Metadata instance, like two repetitions
/// profiled by separate tool invocations.
Experiment rebuild_with_values(const Experiment& e, std::uint64_t seed) {
  Experiment copy(freeze_metadata(e.metadata().clone()), StorageKind::Dense);
  copy.set_name(e.name() + "-rebuilt");
  SplitMix64 rng(seed);
  const Metadata& m = copy.metadata();
  for (MetricIndex mi = 0; mi < m.num_metrics(); ++mi) {
    for (CnodeIndex ci = 0; ci < m.num_cnodes(); ++ci) {
      for (ThreadIndex ti = 0; ti < m.num_threads(); ++ti) {
        copy.severity().set(mi, ci, ti, rng.uniform(0.0, 100.0));
      }
    }
  }
  return copy;
}

void expect_same_cells(const Experiment& a, const Experiment& b) {
  ASSERT_EQ(a.metadata().num_metrics(), b.metadata().num_metrics());
  ASSERT_EQ(a.metadata().num_cnodes(), b.metadata().num_cnodes());
  ASSERT_EQ(a.metadata().num_threads(), b.metadata().num_threads());
  for (MetricIndex mi = 0; mi < a.metadata().num_metrics(); ++mi) {
    for (CnodeIndex ci = 0; ci < a.metadata().num_cnodes(); ++ci) {
      for (ThreadIndex ti = 0; ti < a.metadata().num_threads(); ++ti) {
        EXPECT_EQ(a.severity().get(mi, ci, ti), b.severity().get(mi, ci, ti))
            << "cell (" << mi << ", " << ci << ", " << ti << ")";
      }
    }
  }
}

TEST(SharedMetadata, IntegrationSharesPointerAndImpliesIdentity) {
  const Experiment a = make_small();
  const Experiment b = rebuild_with_values(a, 7);
  ASSERT_NE(a.metadata_ptr().get(), b.metadata_ptr().get());
  ASSERT_EQ(a.metadata().digest(), b.metadata().digest());

  const IntegrationResult r = integrate_metadata(a, b);
  EXPECT_TRUE(r.shared_metadata);
  EXPECT_EQ(r.metadata.get(), a.metadata_ptr().get());
  ASSERT_EQ(r.mappings.size(), 2u);
  for (const OperandMapping& map : r.mappings) {
    EXPECT_TRUE(map.identity());
    ASSERT_EQ(map.cnode_map.size(), a.metadata().num_cnodes());
    for (CnodeIndex c = 0; c < a.metadata().num_cnodes(); ++c) {
      EXPECT_EQ(map.cnode_map[c], c);
    }
  }
}

TEST(SharedMetadata, DisabledOptionForcesStructuralPath) {
  const Experiment a = make_small();
  const Experiment b = rebuild_with_values(a, 7);
  IntegrationOptions options;
  options.reuse_identical_metadata = false;
  const IntegrationResult r = integrate_metadata(a, b, options);
  EXPECT_FALSE(r.shared_metadata);
  EXPECT_NE(r.metadata.get(), a.metadata_ptr().get());
  EXPECT_EQ(r.metadata->num_cnodes(), a.metadata().num_cnodes());
}

TEST(SharedMetadata, DifferingDigestsFallBackToStructuralMerge) {
  const Experiment a = make_small();
  const Experiment b = make_variant();
  const IntegrationResult r = integrate_metadata(a, b);
  EXPECT_FALSE(r.shared_metadata);
  EXPECT_NE(r.metadata.get(), a.metadata_ptr().get());
}

TEST(SharedMetadata, MergeableSiblingCnodesDisableSharing) {
  // Two sibling cnodes calling the same region: the structural merge
  // would fold them into one, so the short-circuit must not fire even
  // though the operands are digest-equal.
  const auto build = [] {
    auto md = std::make_unique<Metadata>();
    md->add_metric(nullptr, "time", "Time", Unit::Seconds, "");
    const Region& r_main = md->add_region("main", "app.c", 1, 100);
    const Region& r_leaf = md->add_region("leaf", "app.c", 10, 20);
    const Cnode& c_main =
        md->add_cnode_for_region(nullptr, r_main, "app.c", 1);
    md->add_cnode_for_region(&c_main, r_leaf, "app.c", 5);
    md->add_cnode_for_region(&c_main, r_leaf, "app.c", 9);
    Machine& machine = md->add_machine("m0");
    SysNode& node = md->add_node(machine, "n0");
    Process& p = md->add_process(node, "rank 0", 0);
    md->add_thread(p, "thread 0", 0);
    md->validate();
    return Experiment(std::move(md));
  };
  const Experiment a = build();
  const Experiment b = build();
  ASSERT_EQ(a.metadata().digest(), b.metadata().digest());
  const IntegrationResult r = integrate_metadata(a, b);
  EXPECT_FALSE(r.shared_metadata);
  // The duplicate-key siblings merged: 3 cnodes became 2.
  EXPECT_EQ(r.metadata->num_cnodes(), 2u);
}

TEST(SharedMetadata, OperatorsShareTheOperandInstance) {
  const Experiment a = make_small();
  const Experiment b = rebuild_with_values(a, 11);
  const Experiment d = difference(a, b);
  EXPECT_EQ(d.metadata_ptr().get(), a.metadata_ptr().get());
  const Experiment m = merge(a, b);
  EXPECT_EQ(m.metadata_ptr().get(), a.metadata_ptr().get());

  std::vector<const Experiment*> ops{&a, &b};
  EXPECT_EQ(mean(ops).metadata_ptr().get(), a.metadata_ptr().get());
  EXPECT_EQ(minimum(ops).metadata_ptr().get(), a.metadata_ptr().get());
  EXPECT_EQ(maximum(ops).metadata_ptr().get(), a.metadata_ptr().get());
}

TEST(SharedMetadata, RandomizedEquivalenceAgainstStructuralOracle) {
  // Bit-identical results whichever path runs: the fast path is an
  // optimization, never a semantic change.
  const Experiment base = make_small();
  std::vector<Experiment> series;
  for (std::uint64_t s = 0; s < 5; ++s) {
    series.push_back(rebuild_with_values(base, 100 + s));
  }
  std::vector<const Experiment*> ops;
  for (const Experiment& e : series) ops.push_back(&e);

  OperatorOptions fast;
  OperatorOptions oracle;
  oracle.integration.reuse_identical_metadata = false;

  expect_same_cells(mean(ops, fast), mean(ops, oracle));
  expect_same_cells(minimum(ops, fast), minimum(ops, oracle));
  expect_same_cells(maximum(ops, fast), maximum(ops, oracle));
  expect_same_cells(difference(series[0], series[1], fast),
                    difference(series[0], series[1], oracle));
  expect_same_cells(merge(series[0], series[1], fast),
                    merge(series[0], series[1], oracle));
  expect_same_cells(stddev(ops, fast), stddev(ops, oracle));
}

TEST(SharedMetadata, SparseStorageTakesTheFastPathToo) {
  const Experiment a = make_small(StorageKind::Sparse);
  const Experiment b = rebuild_with_values(a, 3);
  OperatorOptions options;
  options.storage = StorageKind::Sparse;
  const Experiment d = difference(a, b, options);
  EXPECT_EQ(d.metadata_ptr().get(), a.metadata_ptr().get());
  OperatorOptions oracle = options;
  oracle.integration.reuse_identical_metadata = false;
  expect_same_cells(d, difference(a, b, oracle));
}

}  // namespace
}  // namespace cube
