#include "algebra/integration.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "testutil.hpp"

namespace cube {
namespace {

using cube::testing::make_small;
using cube::testing::make_variant;

TEST(Integration, RequiresAtLeastOneOperand) {
  EXPECT_THROW((void)integrate_metadata({}, {}), OperationError);
}

TEST(Integration, IdenticalMetadataSharesEveryEntity) {
  const Experiment a = make_small();
  const Experiment b = make_small(StorageKind::Dense, "b");
  const IntegrationResult r = integrate_metadata(a, b);

  // Same entity counts (everything matched), and both operands map each
  // source entity to the SAME integrated entity with identical identity.
  // (The integrated indices are a level-order permutation of the source
  // creation order, so index equality is not required.)
  EXPECT_EQ(r.metadata->num_metrics(), a.metadata().num_metrics());
  EXPECT_EQ(r.metadata->num_cnodes(), a.metadata().num_cnodes());
  EXPECT_EQ(r.metadata->num_threads(), a.metadata().num_threads());
  for (std::size_t i = 0; i < a.metadata().num_metrics(); ++i) {
    EXPECT_EQ(r.mappings[0].metric_map[i], r.mappings[1].metric_map[i]);
    EXPECT_EQ(
        r.metadata->metrics()[r.mappings[0].metric_map[i]]->unique_name(),
        a.metadata().metrics()[i]->unique_name());
  }
  for (std::size_t i = 0; i < a.metadata().num_cnodes(); ++i) {
    EXPECT_EQ(r.mappings[0].cnode_map[i], r.mappings[1].cnode_map[i]);
    EXPECT_EQ(
        r.metadata->cnodes()[r.mappings[0].cnode_map[i]]->callee().name(),
        a.metadata().cnodes()[i]->callee().name());
  }
  for (std::size_t i = 0; i < a.metadata().num_threads(); ++i) {
    EXPECT_EQ(r.mappings[0].thread_map[i], r.mappings[1].thread_map[i]);
    EXPECT_EQ(r.metadata->threads()[r.mappings[0].thread_map[i]]->rank(),
              a.metadata().threads()[i]->rank());
  }
}

TEST(Integration, MetricUnionKeepsUnmatchedTrees) {
  const Experiment a = make_small();          // time->mpi, visits
  const Experiment b = make_variant();        // time->mpi, flops
  const IntegrationResult r = integrate_metadata(a, b);
  // time, mpi, visits, flops.
  EXPECT_EQ(r.metadata->num_metrics(), 4u);
  EXPECT_NE(r.metadata->find_metric("visits"), nullptr);
  EXPECT_NE(r.metadata->find_metric("flops"), nullptr);
  // Shared metrics map to the same integrated metric.
  EXPECT_EQ(r.mappings[0].metric_map[0], r.mappings[1].metric_map[0]);
  EXPECT_EQ(r.mappings[0].metric_map[1], r.mappings[1].metric_map[1]);
}

TEST(Integration, MetricsWithDifferentUnitsDoNotMatch) {
  auto md1 = std::make_unique<Metadata>();
  md1->add_metric(nullptr, "x", "X", Unit::Seconds, "");
  const Region& r1 = md1->add_region("main", "a.c", 1, 2);
  md1->add_cnode_for_region(nullptr, r1);
  Machine& m1 = md1->add_machine("m");
  Process& p1 = md1->add_process(md1->add_node(m1, "n"), "r0", 0);
  md1->add_thread(p1, "t", 0);
  Experiment a(std::move(md1));

  auto md2 = std::make_unique<Metadata>();
  md2->add_metric(nullptr, "x", "X", Unit::Bytes, "");
  const Region& r2 = md2->add_region("main", "a.c", 1, 2);
  md2->add_cnode_for_region(nullptr, r2);
  Machine& m2 = md2->add_machine("m");
  Process& p2 = md2->add_process(md2->add_node(m2, "n"), "r0", 0);
  md2->add_thread(p2, "t", 0);
  Experiment b(std::move(md2));

  const IntegrationResult r = integrate_metadata(a, b);
  // Both kept; the second gets a uniquified name.
  EXPECT_EQ(r.metadata->num_metrics(), 2u);
  EXPECT_NE(r.mappings[0].metric_map[0], r.mappings[1].metric_map[0]);
}

TEST(Integration, CallTreeUnionSharesMatchedPaths) {
  const Experiment a = make_small();   // main -> {work -> MPI_Send, io}
  const Experiment b = make_variant(); // main -> {work -> MPI_Send, net}
  const IntegrationResult r = integrate_metadata(a, b);
  // main, work, MPI_Send shared; io and net separate: 5 cnodes.
  EXPECT_EQ(r.metadata->num_cnodes(), 5u);
  EXPECT_EQ(r.mappings[0].cnode_map[0], r.mappings[1].cnode_map[0]);
  EXPECT_EQ(r.mappings[0].cnode_map[1], r.mappings[1].cnode_map[1]);
  EXPECT_EQ(r.mappings[0].cnode_map[2], r.mappings[1].cnode_map[2]);
  EXPECT_NE(r.mappings[0].cnode_map[3], r.mappings[1].cnode_map[3]);
}

TEST(Integration, CallSiteLineNumbersDoNotPreventMatch) {
  // make_variant's "work" call site has line 999 vs 12 in make_small; the
  // paper prescribes matching despite line-number changes.
  const Experiment a = make_small();
  const Experiment b = make_variant();
  const IntegrationResult r = integrate_metadata(a, b);
  EXPECT_EQ(r.mappings[0].cnode_map[1], r.mappings[1].cnode_map[1]);
}

TEST(Integration, ThreadsMatchByRankAndId) {
  const Experiment a = make_small();    // ranks 0,1 x threads 0,1
  const Experiment b = make_variant();  // ranks 0,1,2 x threads 0,1
  const IntegrationResult r = integrate_metadata(a, b);
  EXPECT_EQ(r.metadata->num_threads(), 6u);
  // a's thread (rank0,t0) and b's thread (rank0,t0) map to the same thread.
  EXPECT_EQ(r.mappings[0].thread_map[0], r.mappings[1].thread_map[0]);
  // b's rank-2 threads are new.
  const ThreadIndex b_rank2_t0 = r.mappings[1].thread_map[4];
  const Thread& t = *r.metadata->threads()[b_rank2_t0];
  EXPECT_EQ(t.rank(), 2);
  EXPECT_EQ(t.thread_id(), 0);
}

TEST(Integration, AutoCollapsesIncompatiblePartitions) {
  const Experiment a = make_small();    // 2 processes on 1 node
  const Experiment b = make_variant();  // 3 processes on 1 node
  const IntegrationResult r = integrate_metadata(a, b);
  EXPECT_TRUE(r.system_collapsed);
  ASSERT_EQ(r.metadata->machines().size(), 1u);
  EXPECT_EQ(r.metadata->machines()[0]->name(), "Virtual machine");
}

TEST(Integration, AutoCopiesCompatiblePartitions) {
  const Experiment a = make_small();
  const Experiment b = make_small(StorageKind::Dense, "b");
  const IntegrationResult r = integrate_metadata(a, b);
  EXPECT_FALSE(r.system_collapsed);
  ASSERT_EQ(r.metadata->machines().size(), 1u);
  EXPECT_EQ(r.metadata->machines()[0]->name(), "m0");
}

TEST(Integration, CollapsePolicyForcesVirtualMachine) {
  const Experiment a = make_small();
  const Experiment b = make_small(StorageKind::Dense, "b");
  IntegrationOptions opts;
  opts.system_policy = SystemMergePolicy::Collapse;
  const IntegrationResult r = integrate_metadata(a, b, opts);
  EXPECT_TRUE(r.system_collapsed);
  EXPECT_EQ(r.metadata->machines()[0]->name(), "Virtual machine");
}

TEST(Integration, CopyFirstAppendsUnknownRanks) {
  const Experiment a = make_small();    // ranks 0,1
  const Experiment b = make_variant();  // ranks 0,1,2
  IntegrationOptions opts;
  opts.system_policy = SystemMergePolicy::CopyFirst;
  const IntegrationResult r = integrate_metadata(a, b, opts);
  EXPECT_FALSE(r.system_collapsed);
  EXPECT_EQ(r.metadata->machines()[0]->name(), "m0");
  EXPECT_EQ(r.metadata->processes().size(), 3u);
  EXPECT_NE(r.metadata->find_process(2), nullptr);
}

TEST(Integration, ResultMetadataValidates) {
  const Experiment a = make_small();
  const Experiment b = make_variant();
  const IntegrationResult r = integrate_metadata(a, b);
  EXPECT_NO_THROW(r.metadata->validate());
}

TEST(Integration, AllMappingsAreDefined) {
  const Experiment a = make_small();
  const Experiment b = make_variant();
  const IntegrationResult r = integrate_metadata(a, b);
  for (const OperandMapping& m : r.mappings) {
    for (const MetricIndex i : m.metric_map) EXPECT_NE(i, kNoIndex);
    for (const CnodeIndex i : m.cnode_map) EXPECT_NE(i, kNoIndex);
    for (const ThreadIndex i : m.thread_map) EXPECT_NE(i, kNoIndex);
  }
}

TEST(Integration, KeepsTopologyWhenConsistent) {
  const Experiment base = make_small();
  auto md_a = base.metadata().clone();
  md_a->processes()[0]->set_coords({3, 4});
  auto md_b = base.metadata().clone();
  md_b->processes()[0]->set_coords({3, 4});
  const Experiment a(std::move(md_a));
  const Experiment b(std::move(md_b));
  const IntegrationResult r = integrate_metadata(a, b);
  ASSERT_TRUE(r.metadata->find_process(0)->coords().has_value());
  EXPECT_EQ(*r.metadata->find_process(0)->coords(),
            (std::vector<long>{3, 4}));
}

TEST(Integration, DropsTopologyWhenInconsistent) {
  const Experiment base = make_small();
  auto md_a = base.metadata().clone();
  md_a->processes()[0]->set_coords({3, 4});
  auto md_b = base.metadata().clone();
  md_b->processes()[0]->set_coords({5, 6});
  const Experiment a(std::move(md_a));
  const Experiment b(std::move(md_b));
  const IntegrationResult r = integrate_metadata(a, b);
  EXPECT_FALSE(r.metadata->find_process(0)->coords().has_value());
}

TEST(Integration, SingleOperandReproducesItsMetadata) {
  const Experiment a = make_small();
  const Experiment* ops[] = {&a};
  const IntegrationResult r =
      integrate_metadata(std::span<const Experiment* const>(ops, 1));
  EXPECT_EQ(r.metadata->num_metrics(), a.metadata().num_metrics());
  EXPECT_EQ(r.metadata->num_cnodes(), a.metadata().num_cnodes());
  EXPECT_EQ(r.metadata->num_threads(), a.metadata().num_threads());
}

}  // namespace
}  // namespace cube
