// Randomized equivalence suite for the batched SoA severity kernels
// (docs/KERNELS.md): the n-ary reductions through the batch path — in
// scalar and SIMD form — must be BIT-IDENTICAL to both the per-cell
// reference path (use_bulk_kernels = false) and the per-operand bulk
// kernels (use_batch_kernels = false), across operators, storage kinds,
// fill rates, batch widths, and thread counts.
#include <bit>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "algebra/batch.hpp"
#include "algebra/operators.hpp"
#include "algebra/simd.hpp"
#include "algebra/statistics.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "io/severity_format.hpp"
#include "model/system_factory.hpp"
#include "obs/metrics.hpp"

namespace cube {
namespace {

std::uint64_t kernel_count(obs::MetricsRegistry& reg, const char* name) {
  return reg.counter(name).value();
}

struct Shape {
  std::size_t metrics = 5;
  std::size_t cnodes = 37;
  std::size_t threads = 8;
  double fill = 0.3;
  std::string prefix = "m";
  std::uint64_t seed = 1;
  StorageKind storage = StorageKind::Dense;
};

/// Same deterministic generator as test_operators_bulk.cpp: pre-order
/// entity insertion makes equal prefixes integrate via identity mappings
/// while different prefixes share nothing.
Experiment make_random(const Shape& shape) {
  auto md = std::make_unique<Metadata>();

  const Metric* parent = nullptr;
  for (std::size_t i = 0; i < shape.metrics; ++i) {
    if (i % 4 == 0) parent = nullptr;
    parent = &md->add_metric(parent, shape.prefix + std::to_string(i),
                             shape.prefix + std::to_string(i), Unit::Seconds,
                             "");
  }

  const Region& root_region =
      md->add_region(shape.prefix + "_main", "test.c", 1, 2);
  const Cnode* root = &md->add_cnode_for_region(nullptr, root_region);
  std::size_t created = 1;
  const std::function<void(const Cnode*, std::size_t)> grow =
      [&](const Cnode* p, std::size_t depth) {
        if (depth >= 5) return;
        for (int k = 0; k < 3 && created < shape.cnodes; ++k) {
          const Region& r = md->add_region(
              shape.prefix + "_f" + std::to_string(created), "test.c",
              2 * static_cast<long>(created) + 1,
              2 * static_cast<long>(created) + 2);
          ++created;
          grow(&md->add_cnode_for_region(p, r), depth + 1);
        }
      };
  grow(root, 0);

  build_regular_system(*md, "test machine", 1,
                       static_cast<int>(shape.threads));

  Experiment e(std::move(md), shape.storage);
  e.set_name(shape.prefix + std::to_string(shape.seed));
  SplitMix64 rng(shape.seed);
  const Metadata& m = e.metadata();
  for (MetricIndex mi = 0; mi < m.num_metrics(); ++mi) {
    for (CnodeIndex ci = 0; ci < m.num_cnodes(); ++ci) {
      for (ThreadIndex ti = 0; ti < m.num_threads(); ++ti) {
        if (rng.uniform() < shape.fill) {
          e.severity().set(mi, ci, ti, rng.uniform(-5.0, 10.0));
        }
      }
    }
  }
  return e;
}

void expect_bit_identical(const Experiment& got, const Experiment& want,
                          const std::string& label) {
  const Metadata& md = want.metadata();
  ASSERT_EQ(got.metadata().num_metrics(), md.num_metrics()) << label;
  ASSERT_EQ(got.metadata().num_cnodes(), md.num_cnodes()) << label;
  ASSERT_EQ(got.metadata().num_threads(), md.num_threads()) << label;
  for (MetricIndex m = 0; m < md.num_metrics(); ++m) {
    for (CnodeIndex c = 0; c < md.num_cnodes(); ++c) {
      for (ThreadIndex t = 0; t < md.num_threads(); ++t) {
        const Severity g = got.severity().get(m, c, t);
        const Severity w = want.severity().get(m, c, t);
        ASSERT_EQ(std::bit_cast<std::uint64_t>(g),
                  std::bit_cast<std::uint64_t>(w))
            << label << " at (" << m << "," << c << "," << t << "): got " << g
            << " want " << w;
      }
    }
  }
  EXPECT_EQ(got.severity().nonzero_count(), want.severity().nonzero_count())
      << label;
}

enum class OpKind { Mean, Min, Max, Stddev, Diff, Merge };

Experiment apply(OpKind op, const std::vector<const Experiment*>& operands,
                 const OperatorOptions& options) {
  const std::span<const Experiment* const> span(operands);
  switch (op) {
    case OpKind::Mean: return mean(span, options);
    case OpKind::Min: return minimum(span, options);
    case OpKind::Max: return maximum(span, options);
    case OpKind::Stddev: return stddev(span, options);
    case OpKind::Diff: return difference(*operands[0], *operands[1], options);
    case OpKind::Merge: return merge(*operands[0], *operands[1], options);
  }
  throw std::logic_error("unreachable");
}

const char* op_label(OpKind op) {
  switch (op) {
    case OpKind::Mean: return "mean";
    case OpKind::Min: return "min";
    case OpKind::Max: return "max";
    case OpKind::Stddev: return "stddev";
    case OpKind::Diff: return "diff";
    case OpKind::Merge: return "merge";
  }
  return "?";
}

enum class MetaKind { Identical, Overlapping, Disjoint };

std::vector<Experiment> make_operands(MetaKind meta, std::size_t count,
                                      double fill, StorageKind storage) {
  std::vector<Experiment> operands;
  for (std::size_t i = 0; i < count; ++i) {
    Shape s;
    s.fill = fill;
    s.storage = storage;
    s.seed = i + 1;
    switch (meta) {
      case MetaKind::Identical:
        break;
      case MetaKind::Overlapping:
        // Same prefix, cyclically shrinking entity sets (bounded so wide
        // batches stay valid): operand 0 is the identity, later operands
        // map onto a prefix of the integrated space.
        s.metrics -= i % 2;
        s.cnodes -= 5 * (i % 4);
        break;
      case MetaKind::Disjoint:
        s.prefix = "p" + std::to_string(i) + "_";
        s.cnodes = 20 + 3 * (i % 6);
        break;
    }
    operands.push_back(make_random(s));
  }
  return operands;
}

class BatchEquivalence : public ::testing::TestWithParam<MetaKind> {};

// The core equivalence matrix: reference vs per-operand vs batch-scalar
// vs batch-auto, at batch widths up to 16 and 1/4/8 executor threads.
TEST_P(BatchEquivalence, AllPathsBitIdentical) {
  const MetaKind meta = GetParam();
  ThreadPool pool4(4);
  ThreadPool pool8(8);
  const auto pool_for = [](ThreadPool& pool) {
    return [&pool](std::size_t n,
                   const std::function<void(std::size_t)>& body) {
      pool.parallel_for(n, body);
    };
  };

  for (const OpKind op : {OpKind::Mean, OpKind::Min, OpKind::Max}) {
    for (const std::size_t width :
         {std::size_t{2}, std::size_t{4}, std::size_t{8}, std::size_t{16}}) {
      for (const double fill : {1.0, 0.1, 0.01}) {
        // Wide batches only need the boundary fills; the middle fill adds
        // nothing new once the narrow widths covered it.
        if (width > 4 && fill == 0.1) continue;
        for (const StorageKind operand_storage :
             {StorageKind::Dense, StorageKind::Sparse}) {
          const std::vector<Experiment> operands =
              make_operands(meta, width, fill, operand_storage);
          std::vector<const Experiment*> ptrs;
          for (const auto& e : operands) ptrs.push_back(&e);

          for (const StorageKind result_storage :
               {StorageKind::Dense, StorageKind::Sparse}) {
            OperatorOptions reference;
            reference.storage = result_storage;
            reference.use_bulk_kernels = false;
            const Experiment want = apply(op, ptrs, reference);

            const std::string base =
                std::string(op_label(op)) + " n=" + std::to_string(width) +
                " fill=" + std::to_string(fill) + " opstore=" +
                (operand_storage == StorageKind::Dense ? "dense" : "sparse") +
                " outstore=" +
                (result_storage == StorageKind::Dense ? "dense" : "sparse");

            for (const std::size_t threads :
                 {std::size_t{1}, std::size_t{4}, std::size_t{8}}) {
              const std::string label =
                  base + " threads=" + std::to_string(threads);
              const auto run = [&](bool batch, simd::Policy policy) {
                OperatorOptions o;
                o.storage = result_storage;
                o.use_batch_kernels = batch;
                o.simd_policy = policy;
                if (threads == 4) o.parallel_for = pool_for(pool4);
                if (threads == 8) o.parallel_for = pool_for(pool8);
                return apply(op, ptrs, o);
              };
              expect_bit_identical(run(false, simd::Policy::Auto), want,
                                   label + " per-operand");
              expect_bit_identical(
                  run(true, simd::Policy::ForceScalar), want,
                  label + " batch-scalar");
              expect_bit_identical(run(true, simd::Policy::Auto), want,
                                   label + " batch-simd");
            }
          }
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllMetadataKinds, BatchEquivalence,
                         ::testing::Values(MetaKind::Identical,
                                           MetaKind::Overlapping,
                                           MetaKind::Disjoint),
                         [](const auto& info) {
                           switch (info.param) {
                             case MetaKind::Identical: return "Identical";
                             case MetaKind::Overlapping: return "Overlapping";
                             case MetaKind::Disjoint: return "Disjoint";
                           }
                           return "Unknown";
                         });

// The binary operators route through the same batched combiner.
TEST(BatchKernels, BinaryOperatorsMatchReference) {
  for (const OpKind op : {OpKind::Diff, OpKind::Merge}) {
    for (const MetaKind meta :
         {MetaKind::Identical, MetaKind::Overlapping, MetaKind::Disjoint}) {
      const auto operands =
          make_operands(meta, 2, 0.3, StorageKind::Dense);
      std::vector<const Experiment*> ptrs = {&operands[0], &operands[1]};

      OperatorOptions reference;
      reference.use_bulk_kernels = false;
      const Experiment want = apply(op, ptrs, reference);

      OperatorOptions batch;
      batch.simd_policy = simd::Policy::ForceScalar;
      expect_bit_identical(apply(op, ptrs, batch), want,
                           std::string(op_label(op)) + " batch-scalar");
      expect_bit_identical(apply(op, ptrs, {}), want,
                           std::string(op_label(op)) + " batch-simd");
    }
  }
}

// An n-ary reduction through the batch path is ONE application over ONE
// sweep of the cell space: the counters must show a single application
// whose width is the operand count, with SoA tiles staged, and no chunk
// multiplication by N.
TEST(BatchKernels, SingleSweepCountersForWideSeries) {
  const std::size_t width = 8;
  const auto operands =
      make_operands(MetaKind::Identical, width, 0.5, StorageKind::Dense);
  std::vector<const Experiment*> ptrs;
  for (const auto& e : operands) ptrs.push_back(&e);

  OperatorOptions options;
  obs::MetricsRegistry stats;
  options.metrics = &stats;
  (void)mean(ptrs, options);

  EXPECT_EQ(kernel_count(stats, kernel_counters::kApplications), 1u);
  EXPECT_EQ(kernel_count(stats, kernel_counters::kBatchWidth), width);
  EXPECT_GT(kernel_count(stats, kernel_counters::kBatchTiles), 0u);
  const std::uint64_t cells =
      operands[0].metadata().num_metrics() *
      operands[0].metadata().num_cnodes() *
      operands[0].metadata().num_threads();
  // Identity x dense operands are borrowed per tile: N operands x cells.
  EXPECT_EQ(kernel_count(stats, kernel_counters::kIdentityDenseCells),
            width * cells);
  EXPECT_LE(kernel_count(stats, kernel_counters::kChunks),
            batch::kMaxCellChunks);
}

// Disabling the batch path must leave the batch counters silent and fall
// back to the per-operand kernels.
TEST(BatchKernels, PerOperandFallbackLeavesBatchCountersSilent) {
  const auto operands =
      make_operands(MetaKind::Identical, 4, 0.5, StorageKind::Dense);
  std::vector<const Experiment*> ptrs;
  for (const auto& e : operands) ptrs.push_back(&e);

  OperatorOptions options;
  options.use_batch_kernels = false;
  obs::MetricsRegistry stats;
  options.metrics = &stats;
  (void)mean(ptrs, options);

  EXPECT_EQ(kernel_count(stats, kernel_counters::kBatchTiles), 0u);
  EXPECT_EQ(kernel_count(stats, kernel_counters::kBatchWidth), 0u);
  EXPECT_GT(kernel_count(stats, kernel_counters::kIdentityDenseCells), 0u);
}

// The dispatch heuristic (EXPERIMENTS.md A14): a wide all-sparse
// identity-mapped series runs the per-operand chunk kernels — gathering
// mostly-zero rows into SoA tiles costs more than it saves — and the
// path counters record the decision.
TEST(BatchKernels, WideSparseSeriesPrefersPerOperandPath) {
  const auto operands =
      make_operands(MetaKind::Identical, 16, 0.2, StorageKind::Sparse);
  std::vector<const Experiment*> ptrs;
  for (const auto& e : operands) ptrs.push_back(&e);

  OperatorOptions options;
  obs::MetricsRegistry stats;
  options.metrics = &stats;
  const Experiment got = mean(ptrs, options);

  EXPECT_EQ(kernel_count(stats, kernel_counters::kPathPerOperand), 1u);
  EXPECT_EQ(kernel_count(stats, kernel_counters::kPathBatched), 0u);
  EXPECT_EQ(kernel_count(stats, kernel_counters::kBatchTiles), 0u);

  // The heuristic is a pure path choice: bit-identical to the reference.
  OperatorOptions reference;
  reference.use_bulk_kernels = false;
  expect_bit_identical(got, mean(ptrs, reference), "a14 heuristic");
}

// Below the width threshold — or with any dense operand — the batched
// path keeps winning and the dispatch says so.
TEST(BatchKernels, NarrowOrDenseSeriesStaysOnBatchedPath) {
  {
    const auto operands =
        make_operands(MetaKind::Identical, 4, 0.2, StorageKind::Sparse);
    std::vector<const Experiment*> ptrs;
    for (const auto& e : operands) ptrs.push_back(&e);
    OperatorOptions options;
    obs::MetricsRegistry stats;
    options.metrics = &stats;
    (void)mean(ptrs, options);
    EXPECT_EQ(kernel_count(stats, kernel_counters::kPathBatched), 1u);
    EXPECT_EQ(kernel_count(stats, kernel_counters::kPathPerOperand), 0u);
  }
  {
    const auto operands =
        make_operands(MetaKind::Identical, 16, 0.5, StorageKind::Dense);
    std::vector<const Experiment*> ptrs;
    for (const auto& e : operands) ptrs.push_back(&e);
    OperatorOptions options;
    obs::MetricsRegistry stats;
    options.metrics = &stats;
    (void)mean(ptrs, options);
    EXPECT_EQ(kernel_count(stats, kernel_counters::kPathBatched), 1u);
    EXPECT_EQ(kernel_count(stats, kernel_counters::kPathPerOperand), 0u);
  }
}

// Streaming release (OperatorOptions::release_operand_pages): reducing a
// series of mmap-backed operands while dropping consumed pages is a pure
// memory policy — the result stays bit-identical to the owned-store run.
TEST(BatchKernels, ReleasingOperandPagesNeverChangesResults) {
  const std::size_t width = 6;
  const auto owned =
      make_operands(MetaKind::Identical, width, 0.5, StorageKind::Dense);
  const std::filesystem::path dir =
      std::filesystem::path(::testing::TempDir()) / "cube_release_pages";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);

  std::vector<Experiment> mapped;
  for (std::size_t i = 0; i < width; ++i) {
    const std::filesystem::path path =
        dir / ("op" + std::to_string(i) + ".sev");
    {
      std::ofstream out(path, std::ios::binary);
      const std::string blob = to_cube_sev(owned[i].severity());
      out.write(blob.data(), static_cast<std::streamsize>(blob.size()));
    }
    mapped.emplace_back(owned[i].metadata_ptr(), map_cube_sev_file(path));
    ASSERT_TRUE(mapped.back().severity().file_backed());
  }
  std::vector<const Experiment*> owned_ptrs, mapped_ptrs;
  for (std::size_t i = 0; i < width; ++i) {
    owned_ptrs.push_back(&owned[i]);
    mapped_ptrs.push_back(&mapped[i]);
  }

  OperatorOptions streaming;
  streaming.release_operand_pages = true;
  ThreadPool pool(4);
  streaming.parallel_for = [&pool](std::size_t n, const auto& body) {
    pool.parallel_for(n, body);
  };
  const OperatorOptions plain;
  expect_bit_identical(mean(mapped_ptrs, streaming), mean(owned_ptrs, plain),
                       "release pages mean");
  expect_bit_identical(maximum(mapped_ptrs, streaming),
                       maximum(owned_ptrs, plain), "release pages max");
  expect_bit_identical(stddev(mapped_ptrs, streaming),
                       stddev(owned_ptrs, plain), "release pages stddev");
  std::filesystem::remove_all(dir);
}

// batchable() is the gate: per-dimension injective mappings qualify, a
// coalescing (non-injective) mapping must fall back — the batch gather
// assumes at most one contribution per result cell per operand.
TEST(BatchKernels, NonInjectiveMappingIsNotBatchable) {
  batch::OutShape os;
  os.metrics = 4;
  os.cnodes = 3;
  os.threads = 2;
  os.plane = os.cnodes * os.threads;
  os.cells = os.metrics * os.plane;

  OperandMapping identity;
  identity.metric_identity = true;
  identity.cnode_identity = true;
  identity.thread_identity = true;

  OperandMapping injective;
  injective.metric_map = {2, 0, 3};  // into 4 metrics, no repeats
  injective.cnode_identity = true;
  injective.thread_identity = true;

  OperandMapping coalescing = injective;
  coalescing.metric_map = {2, 0, 2};  // two source metrics -> metric 2

  OperandMapping masked = injective;
  masked.metric_map = {kNoIndex, 0, kNoIndex};  // masking stays injective

  {
    const OperandMapping mappings[] = {identity, injective};
    EXPECT_TRUE(batchable(mappings, os));
  }
  {
    const OperandMapping mappings[] = {identity, masked};
    EXPECT_TRUE(batchable(mappings, os));
  }
  {
    const OperandMapping mappings[] = {identity, coalescing};
    EXPECT_FALSE(batchable(mappings, os));
  }
}

// The SIMD primitives themselves: whatever backend the dispatcher picks
// must agree bit-for-bit with the scalar oracle, including the signed
// zeros and factor==1.0 short-circuit the contract calls out.
TEST(BatchKernels, SimdPrimitivesMatchScalarBitForBit) {
  SplitMix64 rng(7);
  for (const std::size_t n : {std::size_t{1}, std::size_t{3}, std::size_t{4},
                              std::size_t{17}, std::size_t{64},
                              std::size_t{1021}}) {
    for (const std::size_t rows : {std::size_t{1}, std::size_t{2},
                                   std::size_t{7}, std::size_t{16}}) {
      std::vector<std::vector<Severity>> data(rows);
      std::vector<simd::TileRow> tile(rows);
      for (std::size_t r = 0; r < rows; ++r) {
        data[r].resize(n);
        for (std::size_t i = 0; i < n; ++i) {
          const double roll = rng.uniform();
          data[r][i] = roll < 0.1    ? 0.0
                       : roll < 0.15 ? -0.0
                                     : rng.uniform(-5.0, 10.0);
        }
        tile[r] = {data[r].data(),
                   r % 3 == 0 ? 1.0 : rng.uniform(-2.0, 2.0)};
      }

      std::vector<Severity> want(n), got(n);
      simd::reduce_sum_scalar(want.data(), tile.data(), rows, n);
      simd::reduce_sum(got.data(), tile.data(), rows, n,
                       simd::Policy::Auto);
      for (std::size_t i = 0; i < n; ++i) {
        ASSERT_EQ(std::bit_cast<std::uint64_t>(got[i]),
                  std::bit_cast<std::uint64_t>(want[i]))
            << "sum n=" << n << " rows=" << rows << " i=" << i;
      }

      for (const bool take_min : {true, false}) {
        simd::reduce_extremum_scalar(want.data(), tile.data(), rows, n,
                                     take_min);
        simd::reduce_extremum(got.data(), tile.data(), rows, n, take_min,
                              simd::Policy::Auto);
        for (std::size_t i = 0; i < n; ++i) {
          ASSERT_EQ(std::bit_cast<std::uint64_t>(got[i]),
                    std::bit_cast<std::uint64_t>(want[i]))
              << (take_min ? "min" : "max") << " n=" << n << " rows=" << rows
              << " i=" << i;
        }
      }
    }
  }
}

// Integration hoisting: the hoisted overloads over one shared
// IntegrationResult must equal the self-integrating forms, and
// summarize_series (which integrates once for all four summaries) must
// match the four independent calls bit-for-bit.
TEST(BatchKernels, HoistedIntegrationMatchesSelfIntegrating) {
  for (const MetaKind meta : {MetaKind::Identical, MetaKind::Overlapping}) {
    const auto operands =
        make_operands(meta, 5, 0.4, StorageKind::Dense);
    std::vector<const Experiment*> ptrs;
    for (const auto& e : operands) ptrs.push_back(&e);

    const IntegrationResult integration = integrate_metadata(ptrs);
    const OperatorOptions options;
    expect_bit_identical(mean(ptrs, integration, options),
                         mean(std::span<const Experiment* const>(ptrs),
                              options),
                         "hoisted mean");
    expect_bit_identical(minimum(ptrs, integration, options),
                         minimum(std::span<const Experiment* const>(ptrs),
                                 options),
                         "hoisted min");
    expect_bit_identical(maximum(ptrs, integration, options),
                         maximum(std::span<const Experiment* const>(ptrs),
                                 options),
                         "hoisted max");
    expect_bit_identical(stddev(ptrs, integration, options),
                         stddev(std::span<const Experiment* const>(ptrs),
                                options),
                         "hoisted stddev");

    const SeriesSummary summary = summarize_series(ptrs, options);
    expect_bit_identical(
        summary.mean,
        mean(std::span<const Experiment* const>(ptrs), options),
        "summary mean");
    expect_bit_identical(
        summary.minimum,
        minimum(std::span<const Experiment* const>(ptrs), options),
        "summary min");
    expect_bit_identical(
        summary.maximum,
        maximum(std::span<const Experiment* const>(ptrs), options),
        "summary max");
    expect_bit_identical(
        summary.stddev,
        stddev(std::span<const Experiment* const>(ptrs), options),
        "summary stddev");
  }
}

// A hoisted call with an IntegrationResult of the wrong operand count is
// a contract violation, not silent misbehavior.
TEST(BatchKernels, HoistedIntegrationArityMismatchThrows) {
  const auto operands =
      make_operands(MetaKind::Identical, 3, 0.4, StorageKind::Dense);
  std::vector<const Experiment*> ptrs;
  for (const auto& e : operands) ptrs.push_back(&e);
  const IntegrationResult integration = integrate_metadata(ptrs);

  std::vector<const Experiment*> fewer = {ptrs[0], ptrs[1]};
  EXPECT_THROW((void)mean(fewer, integration, {}), OperationError);
}

}  // namespace
}  // namespace cube
