#include "algebra/composite.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "testutil.hpp"

namespace cube {
namespace {

using cube::testing::make_small;
using cube::testing::make_variant;

TEST(ExprParser, ParsesIdentifier) {
  const auto e = parse_expr("before");
  EXPECT_EQ(e->op(), Expr::Op::Load);
  EXPECT_EQ(e->name(), "before");
  EXPECT_EQ(e->str(), "before");
}

TEST(ExprParser, ParsesNestedComposite) {
  const auto e = parse_expr("diff(mean(a1, a2), mean(b1, b2))");
  EXPECT_EQ(e->op(), Expr::Op::Diff);
  ASSERT_EQ(e->args().size(), 2u);
  EXPECT_EQ(e->args()[0]->op(), Expr::Op::Mean);
  EXPECT_EQ(e->str(), "diff(mean(a1, a2), mean(b1, b2))");
}

TEST(ExprParser, AcceptsAliases) {
  EXPECT_EQ(parse_expr("difference(a, b)")->op(), Expr::Op::Diff);
  EXPECT_EQ(parse_expr("avg(a)")->op(), Expr::Op::Mean);
}

TEST(ExprParser, WhitespaceInsensitive) {
  const auto e = parse_expr("  merge ( a ,b )  ");
  EXPECT_EQ(e->op(), Expr::Op::Merge);
}

TEST(ExprParser, IdentifiersAllowDotsAndDashes) {
  const auto e = parse_expr("run-1.cube");
  EXPECT_EQ(e->name(), "run-1.cube");
}

TEST(ExprParser, RejectsUnknownOperator) {
  EXPECT_THROW((void)parse_expr("frobnicate(a, b)"), Error);
}

TEST(ExprParser, RejectsTrailingInput) {
  EXPECT_THROW((void)parse_expr("a b"), Error);
}

TEST(ExprParser, RejectsEmptyArgumentList) {
  EXPECT_THROW((void)parse_expr("mean()"), Error);
}

TEST(ExprParser, RejectsUnterminatedList) {
  EXPECT_THROW((void)parse_expr("mean(a, b"), Error);
}

TEST(ExprParser, RejectsEmptyInput) {
  EXPECT_THROW((void)parse_expr("   "), Error);
}

TEST(ExprEval, LoadClonesFromEnvironment) {
  const Experiment a = make_small();
  const Experiment out = eval_expr("small", {{"small", &a}});
  EXPECT_EQ(out.name(), "small");
  EXPECT_DOUBLE_EQ(out.severity().get(0, 0, 0),
                   a.severity().get(0, 0, 0));
}

TEST(ExprEval, UnboundNameThrows) {
  EXPECT_THROW((void)eval_expr("nope", {}), OperationError);
}

TEST(ExprEval, DiffRequiresTwoArgs) {
  const Experiment a = make_small();
  EXPECT_THROW((void)eval_expr("diff(a)", {{"a", &a}}), OperationError);
  EXPECT_THROW((void)eval_expr("diff(a, a, a)", {{"a", &a}}),
               OperationError);
}

TEST(ExprEval, DiffOfMeansMatchesManualComposition) {
  Experiment a1 = make_small(StorageKind::Dense, "a1");
  Experiment a2 = make_small(StorageKind::Dense, "a2");
  Experiment b1 = make_small(StorageKind::Dense, "b1");
  a1.severity().set(0, 0, 0, 10.0);
  a2.severity().set(0, 0, 0, 20.0);
  b1.severity().set(0, 0, 0, 5.0);

  const Experiment out = eval_expr(
      "diff(mean(a1, a2), b1)",
      {{"a1", &a1}, {"a2", &a2}, {"b1", &b1}});
  EXPECT_DOUBLE_EQ(out.severity().get(0, 0, 0), 15.0 - 5.0);
  EXPECT_EQ(out.kind(), ExperimentKind::Derived);
}

TEST(ExprEval, MergeAndExtremaWork) {
  const Experiment a = make_small();
  const Experiment b = make_variant();
  const ExperimentEnv env{{"a", &a}, {"b", &b}};
  EXPECT_NO_THROW((void)eval_expr("merge(a, b)", env));
  EXPECT_NO_THROW((void)eval_expr("min(a, b)", env));
  EXPECT_NO_THROW((void)eval_expr("max(a, b)", env));
}

TEST(ExprEval, DeepNestingComposes) {
  const Experiment a = make_small();
  const ExperimentEnv env{{"a", &a}};
  // Closure: any depth of composition stays in the experiment space.
  const Experiment out =
      eval_expr("diff(mean(a, a, a), min(a, max(a, a)))", env);
  EXPECT_NO_THROW(out.metadata().validate());
  for (MetricIndex m = 0; m < out.metadata().num_metrics(); ++m) {
    for (CnodeIndex c = 0; c < out.metadata().num_cnodes(); ++c) {
      for (ThreadIndex t = 0; t < out.metadata().num_threads(); ++t) {
        EXPECT_NEAR(out.severity().get(m, c, t), 0.0, 1e-12);
      }
    }
  }
}

}  // namespace
}  // namespace cube
