// Property-style suites over the algebra's invariants, swept across
// randomized experiments (seeded generators, both storage kinds).
//
// The central invariant is the paper's CLOSURE property: every operator
// maps valid experiments onto a valid experiment, so operators compose.
#include <gtest/gtest.h>

#include "algebra/operators.hpp"
#include "common/rng.hpp"
#include "io/cube_format.hpp"
#include "testutil.hpp"

namespace cube {
namespace {

struct PropertyParam {
  std::uint64_t seed;
  StorageKind storage;
};

/// Generates a random experiment: random metric forest, call tree, system
/// shape, and severity values, all derived from the seed.
Experiment random_experiment(std::uint64_t seed, StorageKind storage) {
  SplitMix64 rng(seed);
  auto md = std::make_unique<Metadata>();

  // Metric forest: 1-2 trees, up to 5 metrics.
  const std::size_t num_metrics = 2 + rng.below(4);
  std::vector<const Metric*> metrics;
  for (std::size_t i = 0; i < num_metrics; ++i) {
    const bool root = metrics.empty() || rng.below(3) == 0;
    const Metric* parent =
        root ? nullptr : metrics[rng.below(metrics.size())];
    const Unit unit = parent != nullptr
                          ? parent->unit()
                          : (rng.below(2) == 0 ? Unit::Seconds
                                               : Unit::Occurrences);
    metrics.push_back(&md->add_metric(parent, "m" + std::to_string(i),
                                      "M" + std::to_string(i), unit, ""));
  }

  // Call tree: up to 6 nodes over up to 4 regions.
  const std::size_t num_regions = 2 + rng.below(3);
  std::vector<const Region*> regions;
  for (std::size_t i = 0; i < num_regions; ++i) {
    regions.push_back(&md->add_region("r" + std::to_string(i), "app.c",
                                      static_cast<long>(i * 10),
                                      static_cast<long>(i * 10 + 9)));
  }
  std::vector<const Cnode*> cnodes;
  cnodes.push_back(&md->add_cnode_for_region(nullptr, *regions[0]));
  const std::size_t extra_cnodes = 1 + rng.below(5);
  for (std::size_t i = 0; i < extra_cnodes; ++i) {
    const Cnode* parent = cnodes[rng.below(cnodes.size())];
    // Avoid duplicate same-region children (would merge to one node and
    // make value accounting ambiguous in tests).
    const Region* region = regions[rng.below(regions.size())];
    bool duplicate = false;
    for (const Cnode* c : parent->children()) {
      duplicate = duplicate || &c->callee() == region;
    }
    if (!duplicate) {
      cnodes.push_back(&md->add_cnode_for_region(parent, *region));
    }
  }

  // System: 1 machine, 1-2 nodes, 1-3 processes, 1-2 threads.
  Machine& machine = md->add_machine("m");
  const std::size_t num_nodes = 1 + rng.below(2);
  long rank = 0;
  for (std::size_t n = 0; n < num_nodes; ++n) {
    SysNode& node = md->add_node(machine, "n" + std::to_string(n));
    const std::size_t procs = 1 + rng.below(2);
    for (std::size_t p = 0; p < procs; ++p, ++rank) {
      Process& proc =
          md->add_process(node, "rank " + std::to_string(rank), rank);
      const std::size_t threads = 1 + rng.below(2);
      for (std::size_t t = 0; t < threads; ++t) {
        md->add_thread(proc, "t" + std::to_string(t),
                       static_cast<long>(t));
      }
    }
  }

  md->validate();
  Experiment e(std::move(md), storage);
  e.set_name("rand" + std::to_string(seed));
  const Metadata& m = e.metadata();
  for (MetricIndex mi = 0; mi < m.num_metrics(); ++mi) {
    for (CnodeIndex ci = 0; ci < m.num_cnodes(); ++ci) {
      for (ThreadIndex ti = 0; ti < m.num_threads(); ++ti) {
        if (rng.below(3) != 0) {  // ~2/3 filled, rest zero
          e.severity().set(mi, ci, ti, rng.uniform(-5.0, 50.0));
        }
      }
    }
  }
  return e;
}

class AlgebraProperty : public ::testing::TestWithParam<PropertyParam> {
 protected:
  Experiment a() const {
    return random_experiment(GetParam().seed, GetParam().storage);
  }
  Experiment b() const {
    return random_experiment(GetParam().seed + 1000, GetParam().storage);
  }
};

double grand_total(const Experiment& e) {
  double sum = 0.0;
  const Metadata& md = e.metadata();
  for (MetricIndex m = 0; m < md.num_metrics(); ++m) {
    for (CnodeIndex c = 0; c < md.num_cnodes(); ++c) {
      for (ThreadIndex t = 0; t < md.num_threads(); ++t) {
        sum += e.severity().get(m, c, t);
      }
    }
  }
  return sum;
}

TEST_P(AlgebraProperty, ClosureDifferenceValidates) {
  const Experiment d = difference(a(), b());
  EXPECT_NO_THROW(d.metadata().validate());
  EXPECT_EQ(d.kind(), ExperimentKind::Derived);
}

TEST_P(AlgebraProperty, ClosureMergeValidates) {
  const Experiment m = merge(a(), b());
  EXPECT_NO_THROW(m.metadata().validate());
}

TEST_P(AlgebraProperty, ClosureMeanValidates) {
  const Experiment ea = a();
  const Experiment eb = b();
  const Experiment m = mean({&ea, &eb});
  EXPECT_NO_THROW(m.metadata().validate());
}

TEST_P(AlgebraProperty, ClosureResultsAreSerializable) {
  // A derived experiment must behave exactly like an original one — in
  // particular it must write and read back through the CUBE format.
  const Experiment d = difference(a(), b());
  const Experiment back = read_cube_xml(to_cube_xml(d));
  EXPECT_NEAR(grand_total(back), grand_total(d), 1e-9);
}

TEST_P(AlgebraProperty, DiffSelfIsZero) {
  const Experiment ea = a();
  const Experiment d = difference(ea, ea.clone());
  const Metadata& md = d.metadata();
  for (MetricIndex m = 0; m < md.num_metrics(); ++m) {
    for (CnodeIndex c = 0; c < md.num_cnodes(); ++c) {
      for (ThreadIndex t = 0; t < md.num_threads(); ++t) {
        EXPECT_NEAR(d.severity().get(m, c, t), 0.0, 1e-12);
      }
    }
  }
}

TEST_P(AlgebraProperty, DiffTotalIsDifferenceOfTotals) {
  // Zero-extension + element-wise subtraction => grand totals subtract.
  const Experiment ea = a();
  const Experiment eb = b();
  const Experiment d = difference(ea, eb);
  EXPECT_NEAR(grand_total(d), grand_total(ea) - grand_total(eb), 1e-9);
}

TEST_P(AlgebraProperty, DiffAntiCommutes) {
  const Experiment ea = a();
  const Experiment eb = b();
  const Experiment d1 = difference(ea, eb);
  const Experiment d2 = difference(eb, ea);
  EXPECT_NEAR(grand_total(d1), -grand_total(d2), 1e-9);
}

TEST_P(AlgebraProperty, MeanOfIdenticalCopiesIsIdentity) {
  const Experiment ea = a();
  const Experiment c1 = ea.clone();
  const Experiment c2 = ea.clone();
  const Experiment m = mean({&c1, &c2});
  EXPECT_NEAR(grand_total(m), grand_total(ea), 1e-9);
}

TEST_P(AlgebraProperty, MeanTotalIsAverageOfTotals) {
  const Experiment ea = a();
  const Experiment eb = b();
  const Experiment m = mean({&ea, &eb});
  EXPECT_NEAR(grand_total(m), (grand_total(ea) + grand_total(eb)) / 2.0,
              1e-9);
}

TEST_P(AlgebraProperty, MergeSelfKeepsOwnValues) {
  const Experiment ea = a();
  const Experiment m = merge(ea, ea.clone());
  EXPECT_NEAR(grand_total(m), grand_total(ea), 1e-9);
}

TEST_P(AlgebraProperty, CompositionDiffOfMeans) {
  // The paper's flagship composite: difference of averaged data.  It must
  // simply work, producing a valid experiment whose total matches the
  // algebraic expectation.
  const Experiment a1 = a();
  const Experiment a2 = a();
  const Experiment b1 = b();
  const Experiment d =
      difference(mean({&a1, &a2}), mean({&b1}));
  EXPECT_NO_THROW(d.metadata().validate());
  EXPECT_NEAR(grand_total(d), grand_total(a1) - grand_total(b1), 1e-9);
}

TEST_P(AlgebraProperty, MinPlusMaxEqualsSumForTwoOperands) {
  // min(x,y) + max(x,y) == x + y element-wise, hence also in total.
  const Experiment ea = a();
  const Experiment eb = b();
  const Experiment* ops[] = {&ea, &eb};
  const Experiment lo = minimum(std::span<const Experiment* const>(ops, 2));
  const Experiment hi = maximum(std::span<const Experiment* const>(ops, 2));
  EXPECT_NEAR(grand_total(lo) + grand_total(hi),
              grand_total(ea) + grand_total(eb), 1e-9);
}

std::vector<PropertyParam> property_params() {
  std::vector<PropertyParam> params;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    params.push_back({seed, StorageKind::Dense});
    params.push_back({seed, StorageKind::Sparse});
  }
  return params;
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, AlgebraProperty, ::testing::ValuesIn(property_params()),
    [](const auto& info) {
      return "seed" + std::to_string(info.param.seed) +
             (info.param.storage == StorageKind::Dense ? "Dense" : "Sparse");
    });

}  // namespace
}  // namespace cube
