// Edge cases of integration and operators beyond the main suites.
#include <gtest/gtest.h>

#include "algebra/composite.hpp"
#include "algebra/operators.hpp"
#include "common/error.hpp"
#include "testutil.hpp"

namespace cube {
namespace {

using cube::testing::make_small;
using cube::testing::make_variant;

TEST(MergeChain, OwnershipStaysWithEarliestProvider) {
  // merge is left-associative in provenance; a metric provided by several
  // operands is always taken from the earliest one in the chain.
  Experiment a = make_small(StorageKind::Dense, "a");
  Experiment b = make_small(StorageKind::Dense, "b");
  Experiment c = make_small(StorageKind::Dense, "c");
  a.severity().set(0, 0, 0, 1.0);
  b.severity().set(0, 0, 0, 2.0);
  c.severity().set(0, 0, 0, 3.0);
  const Experiment m1 = merge(merge(a, b), c);
  EXPECT_DOUBLE_EQ(m1.severity().get(0, 0, 0), 1.0);
  const Experiment m2 = merge(a, merge(b, c));
  EXPECT_DOUBLE_EQ(m2.severity().get(0, 0, 0), 1.0);
}

TEST(IntegrationOptions, CallsiteFileMattersSplitsPaths) {
  // Two experiments whose "work" call sites live in different files: with
  // the switch enabled they stay separate call paths.
  auto build = [](const std::string& file) {
    auto md = std::make_unique<Metadata>();
    md->add_metric(nullptr, "time", "Time", Unit::Seconds, "");
    const Region& r_main = md->add_region("main", "app.c", 1, 9);
    const Region& r_work = md->add_region("work", "app.c", 10, 20);
    const Cnode& c_main = md->add_cnode_for_region(nullptr, r_main, "app.c",
                                                   1);
    md->add_cnode_for_region(&c_main, r_work, file, 5);
    Machine& m = md->add_machine("m");
    Process& p = md->add_process(md->add_node(m, "n"), "r0", 0);
    md->add_thread(p, "t", 0);
    return Experiment(std::move(md));
  };
  const Experiment a = build("caller1.c");
  const Experiment b = build("caller2.c");

  const IntegrationResult merged_default = integrate_metadata(a, b);
  EXPECT_EQ(merged_default.metadata->num_cnodes(), 2u);  // matched

  IntegrationOptions opts;
  opts.callsite_file_matters = true;
  const IntegrationResult split = integrate_metadata(a, b, opts);
  EXPECT_EQ(split.metadata->num_cnodes(), 3u);  // work kept twice
}

TEST(Integration, DisplayNameTakenFromFirstOperand) {
  Experiment a = make_small();
  Experiment b = make_small(StorageKind::Dense, "b");
  // Rename b's display name; the representative (first operand) wins.
  const IntegrationResult r = integrate_metadata(a, b);
  EXPECT_EQ(r.metadata->find_metric("time")->display_name(), "Time");
}

TEST(Difference, OfDerivedExperimentsStaysClosed) {
  const Experiment a = make_small(StorageKind::Dense, "a");
  const Experiment b = make_variant(StorageKind::Dense, "b");
  const Experiment d1 = difference(a, b);
  const Experiment d2 = difference(b, a);
  const Experiment sum = difference(d1, d2);  // = 2*(a - b) element-wise
  EXPECT_NO_THROW(sum.metadata().validate());
  EXPECT_EQ(sum.kind(), ExperimentKind::Derived);
  // Check one witness cell: (time, main, rank0 t0).
  const Metric& time = *sum.metadata().find_metric("time");
  const Cnode& main_c = *sum.metadata().cnodes()[0];
  const Thread& t0 = *sum.metadata().threads()[0];
  const Metric& ta = *a.metadata().find_metric("time");
  const Metric& tb = *b.metadata().find_metric("time");
  const double expected = 2.0 * (a.get(ta, *a.metadata().cnodes()[0],
                                       *a.metadata().threads()[0]) -
                                 b.get(tb, *b.metadata().cnodes()[0],
                                       *b.metadata().threads()[0]));
  EXPECT_DOUBLE_EQ(sum.get(time, main_c, t0), expected);
}

TEST(Composite, OptionsPropagateToOperators) {
  const Experiment a = make_small();
  OperatorOptions opts;
  opts.storage = StorageKind::Sparse;
  const Experiment out = eval_expr("mean(a, a)", {{"a", &a}}, opts);
  EXPECT_EQ(out.severity().kind(), StorageKind::Sparse);
}

TEST(Mean, ManyOperands) {
  std::vector<Experiment> runs;
  for (int i = 0; i < 12; ++i) {
    runs.push_back(make_small(StorageKind::Dense,
                              "run" + std::to_string(i)));
    runs.back().severity().set(0, 0, 0, static_cast<double>(i));
  }
  std::vector<const Experiment*> ptrs;
  for (const auto& e : runs) ptrs.push_back(&e);
  const Experiment m = mean(ptrs);
  EXPECT_DOUBLE_EQ(m.severity().get(0, 0, 0), 5.5);  // mean of 0..11
}

TEST(Integration, ManyOperandsShareMetadataOnce) {
  std::vector<Experiment> runs;
  std::vector<const Experiment*> ptrs;
  for (int i = 0; i < 10; ++i) {
    runs.push_back(make_small());
  }
  for (const auto& e : runs) ptrs.push_back(&e);
  const IntegrationResult r =
      integrate_metadata(std::span<const Experiment* const>(ptrs), {});
  EXPECT_EQ(r.metadata->num_metrics(), runs[0].metadata().num_metrics());
  EXPECT_EQ(r.metadata->num_cnodes(), runs[0].metadata().num_cnodes());
  EXPECT_EQ(r.mappings.size(), 10u);
}

TEST(Operators, NullOperandRejected) {
  const Experiment a = make_small();
  const Experiment* ops[] = {&a, nullptr};
  EXPECT_THROW(
      (void)integrate_metadata(std::span<const Experiment* const>(ops, 2),
                               {}),
      OperationError);
}

TEST(Difference, EmptySeverityOperands) {
  // Experiments with all-zero severities are valid operands.
  Experiment a(make_small().metadata().clone());
  Experiment b(make_small().metadata().clone());
  const Experiment d = difference(a, b);
  EXPECT_EQ(d.severity().nonzero_count(), 0u);
}

TEST(Extremum, SingleOperandIsIdentityOnTotals) {
  const Experiment a = make_small();
  const Experiment* ops[] = {&a};
  const Experiment lo = minimum(std::span<const Experiment* const>(ops, 1));
  const Metric& time_lo = *lo.metadata().find_metric("time");
  const Metric& time_a = *a.metadata().find_metric("time");
  EXPECT_DOUBLE_EQ(lo.sum_metric_tree(time_lo), a.sum_metric_tree(time_a));
}

}  // namespace
}  // namespace cube
