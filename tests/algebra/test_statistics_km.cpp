// Tests for the statistical reductions and the Karavanic/Miller baseline.
#include <gtest/gtest.h>

#include <cmath>

#include "algebra/km_difference.hpp"
#include "algebra/statistics.hpp"
#include "common/error.hpp"
#include "display/hotspots.hpp"
#include "io/cube_format.hpp"
#include "testutil.hpp"

namespace cube {
namespace {

using cube::testing::make_small;
using cube::testing::make_variant;

std::vector<Experiment> series(std::initializer_list<double> cell_values) {
  std::vector<Experiment> runs;
  int i = 0;
  for (const double v : cell_values) {
    runs.push_back(make_small(StorageKind::Dense,
                              "run" + std::to_string(++i)));
    runs.back().severity().set(0, 0, 0, v);
  }
  return runs;
}

std::vector<const Experiment*> ptrs(const std::vector<Experiment>& v) {
  std::vector<const Experiment*> out;
  for (const auto& e : v) out.push_back(&e);
  return out;
}

TEST(Stddev, ElementwisePopulationDeviation) {
  const auto runs = series({2.0, 4.0, 6.0});
  const auto p = ptrs(runs);
  const Experiment sd = stddev(std::span<const Experiment* const>(p));
  // population stddev of {2,4,6} = sqrt(8/3).
  EXPECT_NEAR(sd.severity().get(0, 0, 0), std::sqrt(8.0 / 3.0), 1e-12);
}

TEST(Stddev, IdenticalRunsGiveZero) {
  const auto runs = series({5.0, 5.0, 5.0});
  const auto p = ptrs(runs);
  const Experiment sd = stddev(std::span<const Experiment* const>(p));
  // Identical runs: every cell deviates by zero.
  EXPECT_EQ(sd.severity().nonzero_count(), 0u);
}

TEST(Stddev, RequiresTwoOperands) {
  const Experiment a = make_small();
  const Experiment* one[] = {&a};
  EXPECT_THROW(
      (void)stddev(std::span<const Experiment* const>(one, 1)),
      OperationError);
}

TEST(Stddev, IsClosedAndSerializable) {
  const auto runs = series({1.0, 3.0});
  const auto p = ptrs(runs);
  const Experiment sd = stddev(std::span<const Experiment* const>(p));
  EXPECT_EQ(sd.kind(), ExperimentKind::Derived);
  EXPECT_NO_THROW(sd.metadata().validate());
  const Experiment back = read_cube_xml(to_cube_xml(sd));
  EXPECT_DOUBLE_EQ(back.severity().get(0, 0, 0), 1.0);  // stddev {1,3}
  // And it feeds further analysis like any experiment.
  EXPECT_NO_THROW((void)find_hotspots(sd));
}

TEST(Variation, NormalizesByMeanMagnitude) {
  const auto runs = series({2.0, 4.0});  // mean 3, stddev 1
  const auto p = ptrs(runs);
  const Experiment cv = variation(std::span<const Experiment* const>(p));
  EXPECT_NEAR(cv.severity().get(0, 0, 0), 1.0 / 3.0, 1e-12);
}

TEST(Variation, ZeroMeanCellsAreZero) {
  const auto runs = series({3.0, -3.0});
  const auto p = ptrs(runs);
  const Experiment cv = variation(std::span<const Experiment* const>(p));
  EXPECT_DOUBLE_EQ(cv.severity().get(0, 0, 0), 0.0);
}

TEST(SeriesSummary, AllFourMembersConsistent) {
  const auto runs = series({1.0, 2.0, 9.0});
  const auto p = ptrs(runs);
  const SeriesSummary s =
      summarize_series(std::span<const Experiment* const>(p));
  EXPECT_DOUBLE_EQ(s.mean.severity().get(0, 0, 0), 4.0);
  EXPECT_DOUBLE_EQ(s.minimum.severity().get(0, 0, 0), 1.0);
  EXPECT_DOUBLE_EQ(s.maximum.severity().get(0, 0, 0), 9.0);
  EXPECT_NEAR(s.stddev.severity().get(0, 0, 0),
              std::sqrt((9.0 + 4.0 + 25.0) / 3.0), 1e-12);
}

TEST(Stddev, MissingTuplesCountAsZero) {
  // The "net" path exists only in make_variant: the series {small,
  // variant} sees {0, v} there -> stddev = |v|/2.
  const Experiment a = make_small();
  const Experiment b = make_variant();
  const Experiment* p[] = {&a, &b};
  const Experiment sd =
      stddev(std::span<const Experiment* const>(p, 2));
  const Metric& time = *sd.metadata().find_metric("time");
  for (const auto& c : sd.metadata().cnodes()) {
    if (c->callee().name() == "net") {
      // variant's value at (time, net, rank0/t0) = 1141.
      EXPECT_DOUBLE_EQ(sd.get(time, *c, *sd.metadata().threads()[0]),
                       1141.0 / 2.0);
    }
  }
}

// --- Karavanic/Miller baseline ------------------------------------------------

TEST(KmDifference, FindsSignificantFoci) {
  Experiment a = make_small(StorageKind::Dense, "a");
  Experiment b = make_small(StorageKind::Dense, "b");
  // One large change at (time, main/work, rank 1): threads 2,3 belong to
  // process rank 1.
  b.severity().set(0, 1, 2, b.severity().get(0, 1, 2) + 500.0);
  const KmResult r = km_difference(a, b);
  ASSERT_FALSE(r.foci.empty());
  EXPECT_EQ(r.foci[0].metric->unique_name(), "time");
  EXPECT_EQ(r.foci[0].cnode->callee().name(), "work");
  EXPECT_EQ(r.foci[0].process->rank(), 1);
  EXPECT_DOUBLE_EQ(r.foci[0].discrepancy(), -500.0);
}

TEST(KmDifference, ThresholdsSuppressNoise) {
  Experiment a = make_small(StorageKind::Dense, "a");
  Experiment b = make_small(StorageKind::Dense, "b");
  b.severity().set(0, 0, 0, b.severity().get(0, 0, 0) + 1.0);  // 111 -> 112
  KmOptions strict;
  strict.relative_threshold = 0.10;  // 1/111 < 10 %
  EXPECT_TRUE(km_difference(a, b, strict).foci.empty());
  KmOptions loose;
  loose.relative_threshold = 0.001;
  EXPECT_FALSE(km_difference(a, b, loose).foci.empty());
}

TEST(KmDifference, ReportsResourcesOfEitherOperand) {
  // "net" exists only in variant: a focus there must still be reported
  // (the framework merges structure before differencing).
  const Experiment a = make_small();
  const Experiment b = make_variant();
  KmOptions opts;
  opts.relative_threshold = 0.001;
  const KmResult r = km_difference(a, b, opts);
  bool net_seen = false;
  bool io_seen = false;
  for (const Focus& f : r.foci) {
    net_seen = net_seen || f.cnode->callee().name() == "net";
    io_seen = io_seen || f.cnode->callee().name() == "io";
  }
  EXPECT_TRUE(net_seen);
  EXPECT_TRUE(io_seen);
}

TEST(KmDifference, IdenticalExperimentsYieldNothing) {
  const Experiment a = make_small();
  EXPECT_TRUE(km_difference(a, a.clone()).foci.empty());
}

TEST(KmDifference, FormatListsRankedFoci) {
  Experiment a = make_small(StorageKind::Dense, "a");
  Experiment b = make_small(StorageKind::Dense, "b");
  b.severity().set(0, 1, 2, 9999.0);
  const KmResult r = km_difference(a, b);
  const std::string out = format_foci(r.foci);
  EXPECT_NE(out.find("discrepancy"), std::string::npos);
  EXPECT_NE(out.find("work"), std::string::npos);
}

TEST(KmDifference, UnitFilterRestrictsFoci) {
  Experiment a = make_small(StorageKind::Dense, "a");
  Experiment b = make_small(StorageKind::Dense, "b");
  b.severity().set(2, 0, 0, 9999.0);  // change in the visits (occ) tree
  const KmResult sec_only = km_difference(a, b);  // default: seconds
  for (const Focus& f : sec_only.foci) {
    EXPECT_EQ(f.metric->unit(), Unit::Seconds);
  }
  KmOptions all;
  all.unit = std::nullopt;
  all.relative_threshold = 0.5;
  bool occ_seen = false;
  for (const Focus& f : km_difference(a, b, all).foci) {
    occ_seen = occ_seen || f.metric->unit() == Unit::Occurrences;
  }
  EXPECT_TRUE(occ_seen);
}

}  // namespace
}  // namespace cube
