// Randomized equivalence suite for the bulk severity kernels: every
// operator, over dense/sparse operand combinations at fill rates
// {100 %, 10 %, 1 %} and thread counts {1, 4}, must produce results
// BIT-IDENTICAL to the per-cell reference path
// (OperatorOptions::use_bulk_kernels = false).  See docs/STORAGE.md for
// the ordering contract that makes this hold.
#include <bit>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "algebra/operators.hpp"
#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "model/system_factory.hpp"
#include "obs/metrics.hpp"

namespace cube {
namespace {

/// Reads one of the kernel_counters out of a per-call registry.
std::uint64_t kernel_count(obs::MetricsRegistry& reg, const char* name) {
  return reg.counter(name).value();
}

struct Shape {
  std::size_t metrics = 5;
  std::size_t cnodes = 37;
  std::size_t threads = 8;
  double fill = 0.3;
  std::string prefix = "m";
  std::uint64_t seed = 1;
  StorageKind storage = StorageKind::Dense;
};

/// Deterministic synthetic experiment: metric chains of depth 4, a call
/// tree of fan-out 3, a flat system of single-threaded processes, and a
/// randomized severity of the requested fill rate.  Entities are inserted
/// in pre-order (document order), which is also the order
/// integrate_metadata emits merged entities — so equal prefixes share all
/// metadata AND map onto the integrated set via identity mappings;
/// different prefixes share nothing.
Experiment make_random(const Shape& shape) {
  auto md = std::make_unique<Metadata>();

  const Metric* parent = nullptr;
  for (std::size_t i = 0; i < shape.metrics; ++i) {
    if (i % 4 == 0) parent = nullptr;
    parent = &md->add_metric(parent, shape.prefix + std::to_string(i),
                             shape.prefix + std::to_string(i), Unit::Seconds,
                             "");
  }

  const Region& root_region =
      md->add_region(shape.prefix + "_main", "test.c", 1, 2);
  const Cnode* root = &md->add_cnode_for_region(nullptr, root_region);
  std::size_t created = 1;
  const std::function<void(const Cnode*, std::size_t)> grow =
      [&](const Cnode* p, std::size_t depth) {
        if (depth >= 5) return;
        for (int k = 0; k < 3 && created < shape.cnodes; ++k) {
          const Region& r = md->add_region(
              shape.prefix + "_f" + std::to_string(created), "test.c",
              2 * static_cast<long>(created) + 1,
              2 * static_cast<long>(created) + 2);
          ++created;
          grow(&md->add_cnode_for_region(p, r), depth + 1);
        }
      };
  grow(root, 0);

  build_regular_system(*md, "test machine", 1,
                       static_cast<int>(shape.threads));

  Experiment e(std::move(md), shape.storage);
  e.set_name(shape.prefix + std::to_string(shape.seed));
  SplitMix64 rng(shape.seed);
  const Metadata& m = e.metadata();
  for (MetricIndex mi = 0; mi < m.num_metrics(); ++mi) {
    for (CnodeIndex ci = 0; ci < m.num_cnodes(); ++ci) {
      for (ThreadIndex ti = 0; ti < m.num_threads(); ++ti) {
        if (rng.uniform() < shape.fill) {
          // Mix in negative values so min/max and cancellation paths are
          // exercised.
          e.severity().set(mi, ci, ti, rng.uniform(-5.0, 10.0));
        }
      }
    }
  }
  return e;
}

/// Bitwise comparison over the full cell space plus stored-entry parity
/// (a sparse store must not materialize zeros the reference would erase).
void expect_bit_identical(const Experiment& got, const Experiment& want,
                          const std::string& label) {
  const Metadata& md = want.metadata();
  ASSERT_EQ(got.metadata().num_metrics(), md.num_metrics()) << label;
  ASSERT_EQ(got.metadata().num_cnodes(), md.num_cnodes()) << label;
  ASSERT_EQ(got.metadata().num_threads(), md.num_threads()) << label;
  for (MetricIndex m = 0; m < md.num_metrics(); ++m) {
    for (CnodeIndex c = 0; c < md.num_cnodes(); ++c) {
      for (ThreadIndex t = 0; t < md.num_threads(); ++t) {
        const Severity g = got.severity().get(m, c, t);
        const Severity w = want.severity().get(m, c, t);
        ASSERT_EQ(std::bit_cast<std::uint64_t>(g),
                  std::bit_cast<std::uint64_t>(w))
            << label << " at (" << m << "," << c << "," << t << "): got " << g
            << " want " << w;
      }
    }
  }
  EXPECT_EQ(got.severity().nonzero_count(), want.severity().nonzero_count())
      << label;
}

enum class OpKind { Diff, Merge, Mean, Min, Max };

Experiment apply(OpKind op, const std::vector<const Experiment*>& operands,
                 const OperatorOptions& options) {
  const std::span<const Experiment* const> span(operands);
  switch (op) {
    case OpKind::Diff: return difference(*operands[0], *operands[1], options);
    case OpKind::Merge: return merge(*operands[0], *operands[1], options);
    case OpKind::Mean: return mean(span, options);
    case OpKind::Min: return minimum(span, options);
    case OpKind::Max: return maximum(span, options);
  }
  throw std::logic_error("unreachable");
}

const char* op_name(OpKind op) {
  switch (op) {
    case OpKind::Diff: return "diff";
    case OpKind::Merge: return "merge";
    case OpKind::Mean: return "mean";
    case OpKind::Min: return "min";
    case OpKind::Max: return "max";
  }
  return "?";
}

/// Operand metadata relationships exercised by the suite.
enum class MetaKind { Identical, Overlapping, Disjoint };

std::vector<Experiment> make_operands(MetaKind meta, std::size_t count,
                                      double fill, StorageKind storage) {
  std::vector<Experiment> operands;
  for (std::size_t i = 0; i < count; ++i) {
    Shape s;
    s.fill = fill;
    s.storage = storage;
    s.seed = i + 1;
    switch (meta) {
      case MetaKind::Identical:
        break;  // same prefix and shape: identity mappings
      case MetaKind::Overlapping:
        // Same prefix, shrinking entity sets: later operands map onto a
        // prefix of the integrated space, the first one is the identity.
        s.metrics -= i % 2;
        s.cnodes -= 5 * i;
        break;
      case MetaKind::Disjoint:
        s.prefix = "p" + std::to_string(i) + "_";
        s.cnodes = 20 + 3 * i;
        break;
    }
    operands.push_back(make_random(s));
  }
  return operands;
}

class BulkEquivalence : public ::testing::TestWithParam<MetaKind> {};

TEST_P(BulkEquivalence, MatchesPerCellReferenceBitForBit) {
  const MetaKind meta = GetParam();
  ThreadPool pool(4);
  const ParallelFor pool_for =
      [&pool](std::size_t n, const std::function<void(std::size_t)>& body) {
        pool.parallel_for(n, body);
      };

  for (const OpKind op :
       {OpKind::Diff, OpKind::Merge, OpKind::Mean, OpKind::Min, OpKind::Max}) {
    const std::size_t count =
        (op == OpKind::Diff || op == OpKind::Merge) ? 2 : 3;
    for (const double fill : {1.0, 0.1, 0.01}) {
      for (const StorageKind operand_storage :
           {StorageKind::Dense, StorageKind::Sparse}) {
        const std::vector<Experiment> operands =
            make_operands(meta, count, fill, operand_storage);
        std::vector<const Experiment*> ptrs;
        for (const auto& e : operands) ptrs.push_back(&e);

        for (const StorageKind result_storage :
             {StorageKind::Dense, StorageKind::Sparse}) {
          OperatorOptions reference;
          reference.storage = result_storage;
          reference.use_bulk_kernels = false;
          const Experiment want = apply(op, ptrs, reference);

          for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
            OperatorOptions bulk;
            bulk.storage = result_storage;
            obs::MetricsRegistry stats;
            bulk.metrics = &stats;
            if (threads > 1) bulk.parallel_for = pool_for;
            const Experiment got = apply(op, ptrs, bulk);
            const std::string label =
                std::string(op_name(op)) + " fill=" + std::to_string(fill) +
                " opstore=" +
                (operand_storage == StorageKind::Dense ? "dense" : "sparse") +
                " outstore=" +
                (result_storage == StorageKind::Dense ? "dense" : "sparse") +
                " threads=" + std::to_string(threads);
            expect_bit_identical(got, want, label);
            EXPECT_EQ(kernel_count(stats, kernel_counters::kApplications), 1u)
                << label;
            EXPECT_GT(kernel_count(stats, kernel_counters::kChunks), 0u)
                << label;
            // The right kernel family must have fired for the operands.
            // Sparse operands at full occupancy are densified (see the
            // prepare_operands threshold) and legitimately run the dense
            // kernels.
            const bool dense_ops = operand_storage == StorageKind::Dense;
            const std::uint64_t dense_work =
                kernel_count(stats, kernel_counters::kIdentityDenseCells) +
                kernel_count(stats, kernel_counters::kRemapDenseCells);
            const std::uint64_t sparse_work =
                kernel_count(stats, kernel_counters::kIdentitySparseNnz) +
                kernel_count(stats, kernel_counters::kRemapSparseNnz);
            EXPECT_GT(dense_work + sparse_work, 0u) << label;
            if (dense_ops) {
              EXPECT_EQ(sparse_work, 0u) << label;
            } else if (fill <= 0.1) {
              EXPECT_EQ(dense_work, 0u) << label;
            }
          }
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllMetadataKinds, BulkEquivalence,
                         ::testing::Values(MetaKind::Identical,
                                           MetaKind::Overlapping,
                                           MetaKind::Disjoint),
                         [](const auto& info) {
                           switch (info.param) {
                             case MetaKind::Identical: return "Identical";
                             case MetaKind::Overlapping: return "Overlapping";
                             case MetaKind::Disjoint: return "Disjoint";
                           }
                           return "Unknown";
                         });

TEST(BulkKernels, IdenticalMetadataTakesIdentityFastPath) {
  const auto operands =
      make_operands(MetaKind::Identical, 2, 0.5, StorageKind::Dense);
  const Experiment* ptrs[] = {&operands[0], &operands[1]};
  IntegrationResult integration = integrate_metadata(ptrs);
  for (const OperandMapping& mp : integration.mappings) {
    EXPECT_TRUE(mp.metric_identity);
    EXPECT_TRUE(mp.cnode_identity);
    EXPECT_TRUE(mp.thread_identity);
    EXPECT_TRUE(mp.identity());
  }

  OperatorOptions options;
  obs::MetricsRegistry stats;
  options.metrics = &stats;
  (void)difference(operands[0], operands[1], options);
  EXPECT_GT(kernel_count(stats, kernel_counters::kIdentityDenseCells), 0u);
  EXPECT_EQ(kernel_count(stats, kernel_counters::kRemapDenseCells), 0u);
  EXPECT_EQ(kernel_count(stats, kernel_counters::kIdentitySparseNnz), 0u);
  EXPECT_EQ(kernel_count(stats, kernel_counters::kRemapSparseNnz), 0u);
}

TEST(BulkKernels, DisjointMetadataTakesRemapPath) {
  const auto operands =
      make_operands(MetaKind::Disjoint, 2, 0.5, StorageKind::Dense);
  const Experiment* ptrs[] = {&operands[0], &operands[1]};
  IntegrationResult integration = integrate_metadata(ptrs);
  EXPECT_FALSE(integration.mappings[0].identity());
  EXPECT_FALSE(integration.mappings[1].identity());

  OperatorOptions options;
  obs::MetricsRegistry stats;
  options.metrics = &stats;
  (void)difference(operands[0], operands[1], options);
  EXPECT_GT(kernel_count(stats, kernel_counters::kRemapDenseCells), 0u);
  EXPECT_EQ(kernel_count(stats, kernel_counters::kIdentityDenseCells), 0u);
}

TEST(BulkKernels, SparseOperandsCostNonzeros) {
  const auto operands =
      make_operands(MetaKind::Identical, 2, 0.01, StorageKind::Sparse);
  const Experiment* ptrs[] = {&operands[0], &operands[1]};
  OperatorOptions options;
  obs::MetricsRegistry stats;
  options.metrics = &stats;
  (void)difference(*ptrs[0], *ptrs[1], options);
  const std::uint64_t nnz = operands[0].severity().nonzero_count() +
                            operands[1].severity().nonzero_count();
  EXPECT_EQ(kernel_count(stats, kernel_counters::kIdentitySparseNnz), nnz);
  EXPECT_EQ(kernel_count(stats, kernel_counters::kIdentityDenseCells), 0u);
  EXPECT_EQ(kernel_count(stats, kernel_counters::kRemapDenseCells), 0u);
}

TEST(BulkKernels, SingleMetricExperimentStillChunks) {
  // Regression for the old metric-row chunker: a 1-metric x large-plane
  // experiment used to always run sequentially; cell chunking must
  // partition it.
  Shape s;
  s.metrics = 1;
  s.cnodes = 64;
  s.threads = 16;
  s.seed = 1;
  const Experiment a = make_random(s);
  s.seed = 2;
  const Experiment b = make_random(s);

  ThreadPool pool(4);
  OperatorOptions options;
  options.parallel_for =
      [&pool](std::size_t n, const std::function<void(std::size_t)>& body) {
        pool.parallel_for(n, body);
      };
  obs::MetricsRegistry stats;
  options.metrics = &stats;
  const Experiment bulk = difference(a, b, options);
  EXPECT_GT(kernel_count(stats, kernel_counters::kChunks), 1u);

  OperatorOptions reference;
  reference.use_bulk_kernels = false;
  expect_bit_identical(bulk, difference(a, b, reference), "1-metric chunked");
}

TEST(BulkKernels, SparseResultParallelMatchesSequential) {
  // Sparse results are now chunk-parallel through staging buffers; the
  // stored cubes must not depend on the executor.
  const auto operands =
      make_operands(MetaKind::Overlapping, 3, 0.1, StorageKind::Sparse);
  std::vector<const Experiment*> ptrs;
  for (const auto& e : operands) ptrs.push_back(&e);

  OperatorOptions sequential;
  sequential.storage = StorageKind::Sparse;
  const Experiment want = mean(ptrs, sequential);

  ThreadPool pool(4);
  OperatorOptions parallel;
  parallel.storage = StorageKind::Sparse;
  parallel.parallel_for =
      [&pool](std::size_t n, const std::function<void(std::size_t)>& body) {
        pool.parallel_for(n, body);
      };
  expect_bit_identical(mean(ptrs, parallel), want, "sparse parallel mean");
}

}  // namespace
}  // namespace cube
