#include "algebra/tree_merge.hpp"

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>

namespace cube {
namespace {

/// Lightweight test tree.
struct TNode {
  std::string label;
  std::vector<std::unique_ptr<TNode>> kids;

  TNode* add(const std::string& l) {
    kids.push_back(std::make_unique<TNode>(TNode{l, {}}));
    return kids.back().get();
  }
};

/// Output node captured by the emit callback.
struct Out {
  std::string label;
  std::size_t parent;
};

struct MergeHarness {
  std::vector<Out> out;
  std::vector<std::map<const TNode*, std::size_t>> maps;

  void run(const std::vector<std::vector<const TNode*>>& roots) {
    maps.assign(roots.size(), {});
    merge_forests<TNode>(
        roots,
        [](const TNode& n) {
          std::vector<const TNode*> kids;
          for (const auto& k : n.kids) kids.push_back(k.get());
          return kids;
        },
        [](const TNode& a, const TNode& b) { return a.label == b.label; },
        [this](const TNode& rep, std::size_t parent) {
          out.push_back(Out{rep.label, parent});
          return out.size() - 1;
        },
        [this](std::size_t op, const TNode& src, std::size_t id) {
          maps[op][&src] = id;
        });
  }
};

TEST(TreeMerge, IdenticalTreesShareAllNodes) {
  TNode a{"root", {}};
  a.add("x")->add("y");
  TNode b{"root", {}};
  b.add("x")->add("y");

  MergeHarness h;
  h.run({{&a}, {&b}});
  EXPECT_EQ(h.out.size(), 3u);  // root, x, y — fully shared
  EXPECT_EQ(h.maps[0].at(&a), h.maps[1].at(&b));
}

TEST(TreeMerge, DisjointTreesAreBothKept) {
  TNode a{"a", {}};
  TNode b{"b", {}};
  MergeHarness h;
  h.run({{&a}, {&b}});
  EXPECT_EQ(h.out.size(), 2u);
  EXPECT_NE(h.maps[0].at(&a), h.maps[1].at(&b));
}

TEST(TreeMerge, PartialOverlapSharesMatchedPrefix) {
  TNode a{"root", {}};
  a.add("shared");
  a.add("only_a");
  TNode b{"root", {}};
  b.add("shared");
  b.add("only_b");

  MergeHarness h;
  h.run({{&a}, {&b}});
  // root + shared + only_a + only_b.
  EXPECT_EQ(h.out.size(), 4u);
  EXPECT_EQ(h.maps[0].at(a.kids[0].get()), h.maps[1].at(b.kids[0].get()));
}

TEST(TreeMerge, TopDownOnceDifferentAlwaysDifferent) {
  // Paper: "once two nodes are considered different, the entire subtrees
  // rooted at these nodes will both become part of the new metadata set
  // even if they contain matching child nodes."
  TNode a{"root", {}};
  a.add("left")->add("common");
  TNode b{"root", {}};
  b.add("right")->add("common");

  MergeHarness h;
  h.run({{&a}, {&b}});
  // root, left, left/common, right, right/common: the "common" children do
  // NOT merge because their parents differ.
  EXPECT_EQ(h.out.size(), 5u);
  EXPECT_NE(h.maps[0].at(a.kids[0]->kids[0].get()),
            h.maps[1].at(b.kids[0]->kids[0].get()));
}

TEST(TreeMerge, ForestsWithMultipleRoots) {
  TNode a1{"r1", {}};
  TNode a2{"r2", {}};
  TNode b1{"r2", {}};
  TNode b2{"r3", {}};
  MergeHarness h;
  h.run({{&a1, &a2}, {&b1, &b2}});
  // r1, r2 (shared), r3.
  EXPECT_EQ(h.out.size(), 3u);
  EXPECT_EQ(h.maps[0].at(&a2), h.maps[1].at(&b1));
}

TEST(TreeMerge, NaryMergeSharesAcrossAllOperands) {
  TNode a{"root", {}};
  TNode b{"root", {}};
  TNode c{"root", {}};
  c.add("extra");
  MergeHarness h;
  h.run({{&a}, {&b}, {&c}});
  EXPECT_EQ(h.out.size(), 2u);
  EXPECT_EQ(h.maps[0].at(&a), h.maps[2].at(&c));
}

TEST(TreeMerge, RootsGetNoParentSentinel) {
  TNode a{"root", {}};
  a.add("kid");
  MergeHarness h;
  h.run({{&a}});
  EXPECT_EQ(h.out[0].parent, kNoIndex);
  EXPECT_EQ(h.out[1].parent, 0u);
}

TEST(TreeMerge, DuplicateSiblingsWithinOneOperandCollapse) {
  // Two identical siblings in one operand merge into one shared node —
  // the equality relation defines identity within an operand too.
  TNode a{"root", {}};
  a.add("x");
  a.add("x");
  MergeHarness h;
  h.run({{&a}});
  EXPECT_EQ(h.out.size(), 2u);
  EXPECT_EQ(h.maps[0].at(a.kids[0].get()), h.maps[0].at(a.kids[1].get()));
}

TEST(TreeMerge, EmptyOperandContributesNothing) {
  TNode a{"root", {}};
  MergeHarness h;
  h.run({{&a}, {}});
  EXPECT_EQ(h.out.size(), 1u);
  EXPECT_TRUE(h.maps[1].empty());
}

TEST(TreeMerge, FirstOperandOrderWins) {
  // Output order follows operand iteration order: operand 0's nodes first.
  TNode a{"a", {}};
  TNode b{"b", {}};
  MergeHarness h;
  h.run({{&a}, {&b}});
  EXPECT_EQ(h.out[0].label, "a");
  EXPECT_EQ(h.out[1].label, "b");
}

}  // namespace
}  // namespace cube
