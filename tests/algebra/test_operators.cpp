#include "algebra/operators.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "testutil.hpp"

namespace cube {
namespace {

using cube::testing::make_small;
using cube::testing::make_variant;

TEST(Difference, IdenticalOperandsGiveZero) {
  const Experiment a = make_small();
  const Experiment b = make_small(StorageKind::Dense, "b");
  const Experiment d = difference(a, b);
  const Metadata& md = d.metadata();
  for (MetricIndex m = 0; m < md.num_metrics(); ++m) {
    for (CnodeIndex c = 0; c < md.num_cnodes(); ++c) {
      for (ThreadIndex t = 0; t < md.num_threads(); ++t) {
        EXPECT_DOUBLE_EQ(d.severity().get(m, c, t), 0.0);
      }
    }
  }
}

TEST(Difference, ValuesSubtractElementwise) {
  Experiment a = make_small();
  Experiment b = make_small(StorageKind::Dense, "b");
  a.severity().set(0, 0, 0, 10.0);
  b.severity().set(0, 0, 0, 4.0);
  const Experiment d = difference(a, b);
  EXPECT_DOUBLE_EQ(d.severity().get(0, 0, 0), 6.0);
}

TEST(Difference, CanBeNegative) {
  Experiment a = make_small();
  Experiment b = make_small(StorageKind::Dense, "b");
  a.severity().set(0, 0, 0, 1.0);
  b.severity().set(0, 0, 0, 5.0);
  const Experiment d = difference(a, b);
  EXPECT_DOUBLE_EQ(d.severity().get(0, 0, 0), -4.0);
}

TEST(Difference, ZeroExtensionForMissingTuples) {
  // b has call path main/net that a lacks: the difference carries -value
  // there; a's main/io carries +value.
  const Experiment a = make_small();
  const Experiment b = make_variant();
  const Experiment d = difference(a, b);
  const Metadata& md = d.metadata();

  const Cnode* io = nullptr;
  const Cnode* net = nullptr;
  for (const auto& c : md.cnodes()) {
    if (c->callee().name() == "io") io = c.get();
    if (c->callee().name() == "net") net = c.get();
  }
  ASSERT_NE(io, nullptr);
  ASSERT_NE(net, nullptr);
  const Metric& time = *md.find_metric("time");
  // a's io value at (m=0,c=io,t=rank0/t0): 100+4*10+1 = 141, minus 0.
  EXPECT_GT(d.get(time, *io, *md.threads()[0]), 0.0);
  // b's net value appears negated.
  EXPECT_LT(d.get(time, *net, *md.threads()[0]), 0.0);
}

TEST(Difference, MarksResultDerived) {
  const Experiment a = make_small();
  const Experiment b = make_variant();
  const Experiment d = difference(a, b);
  EXPECT_EQ(d.kind(), ExperimentKind::Derived);
  EXPECT_EQ(d.provenance(), "difference(small, variant)");
}

TEST(Merge, DisjointMetricsBothPresent) {
  const Experiment a = make_small();   // time/mpi + visits
  const Experiment b = make_variant(); // time/mpi + flops
  const Experiment m = merge(a, b);
  EXPECT_NE(m.metadata().find_metric("visits"), nullptr);
  EXPECT_NE(m.metadata().find_metric("flops"), nullptr);
}

TEST(Merge, SharedMetricTakenFromFirstOperand) {
  Experiment a = make_small();
  Experiment b = make_small(StorageKind::Dense, "b");
  a.severity().set(0, 0, 0, 111.0);
  b.severity().set(0, 0, 0, 999.0);
  const Experiment m = merge(a, b);
  EXPECT_DOUBLE_EQ(m.severity().get(0, 0, 0), 111.0);
}

TEST(Merge, ExclusiveMetricTakenFromItsProvider) {
  const Experiment a = make_small();
  const Experiment b = make_variant();
  const Experiment m = merge(a, b);
  const Metadata& md = m.metadata();
  const Metric& flops = *md.find_metric("flops");
  // b's flops value at its (main, rank0 t0): metric idx 2 in b, cnode 0.
  // value = 1000 + 300 + 10 + 1.
  EXPECT_DOUBLE_EQ(m.get(flops, *md.cnodes()[0], *md.threads()[0]), 1311.0);
}

TEST(Merge, SecondOperandSharedMetricDoesNotLeakIntoUnsharedCallPaths) {
  // b has "net" call path with time values; time is owned by a, so the
  // merged experiment must NOT carry b's time there.
  const Experiment a = make_small();
  const Experiment b = make_variant();
  const Experiment m = merge(a, b);
  const Metadata& md = m.metadata();
  const Metric& time = *md.find_metric("time");
  for (const auto& c : md.cnodes()) {
    if (c->callee().name() == "net") {
      for (const auto& t : md.threads()) {
        EXPECT_DOUBLE_EQ(m.get(time, *c, *t), 0.0);
      }
    }
  }
}

TEST(Merge, ProvenanceRecorded) {
  const Experiment m = merge(make_small(), make_variant());
  EXPECT_EQ(m.kind(), ExperimentKind::Derived);
  EXPECT_EQ(m.provenance(), "merge(small, variant)");
}

TEST(Mean, SingleOperandIsIdentityOnValues) {
  const Experiment a = make_small();
  const Experiment* ops[] = {&a};
  const Experiment m = mean(std::span<const Experiment* const>(ops, 1));
  // Integrated indices are a level-order permutation of the source's
  // creation order, so compare per metric by name.
  for (const auto& metric : a.metadata().metrics()) {
    const Metric* out = m.metadata().find_metric(metric->unique_name());
    ASSERT_NE(out, nullptr);
    EXPECT_DOUBLE_EQ(m.sum_metric(*out), a.sum_metric(*metric));
  }
}

TEST(Mean, AveragesElementwise) {
  Experiment a = make_small();
  Experiment b = make_small(StorageKind::Dense, "b");
  Experiment c = make_small(StorageKind::Dense, "c");
  a.severity().set(0, 0, 0, 3.0);
  b.severity().set(0, 0, 0, 6.0);
  c.severity().set(0, 0, 0, 9.0);
  const Experiment m = mean({&a, &b, &c});
  EXPECT_DOUBLE_EQ(m.severity().get(0, 0, 0), 6.0);
}

TEST(Mean, MissingTuplesCountAsZero) {
  // The "net" call path exists only in variant: its mean over {small,
  // variant} halves the variant's value (zero-extension).
  const Experiment a = make_small();
  const Experiment b = make_variant();
  const Experiment m = mean({&a, &b});
  const Metadata& md = m.metadata();
  const Metric& time = *md.find_metric("time");
  const Cnode* net = nullptr;
  for (const auto& c : md.cnodes()) {
    if (c->callee().name() == "net") net = c.get();
  }
  ASSERT_NE(net, nullptr);
  // variant's value at (time, net, rank0/t0) = 1000+100+40+1 = 1141.
  EXPECT_DOUBLE_EQ(m.get(time, *net, *md.threads()[0]), 1141.0 / 2.0);
}

TEST(Mean, RequiresOperands) {
  EXPECT_THROW((void)mean(std::vector<const Experiment*>{}), OperationError);
}

TEST(Mean, NaryProvenanceListsAll) {
  const Experiment a = make_small();
  const Experiment b = make_small(StorageKind::Dense, "run2");
  const Experiment c = make_small(StorageKind::Dense, "run3");
  const Experiment m = mean({&a, &b, &c});
  EXPECT_EQ(m.provenance(), "mean(small, run2, run3)");
}

TEST(MinMax, ElementwiseExtrema) {
  Experiment a = make_small();
  Experiment b = make_small(StorageKind::Dense, "b");
  a.severity().set(0, 0, 0, 3.0);
  b.severity().set(0, 0, 0, 7.0);
  const Experiment* ops[] = {&a, &b};
  const Experiment lo = minimum(std::span<const Experiment* const>(ops, 2));
  const Experiment hi = maximum(std::span<const Experiment* const>(ops, 2));
  EXPECT_DOUBLE_EQ(lo.severity().get(0, 0, 0), 3.0);
  EXPECT_DOUBLE_EQ(hi.severity().get(0, 0, 0), 7.0);
}

TEST(MinMax, AbsentTuplesParticipateAsZero) {
  const Experiment a = make_small();
  const Experiment b = make_variant();
  const Experiment* ops[] = {&a, &b};
  const Experiment lo = minimum(std::span<const Experiment* const>(ops, 2));
  const Metadata& md = lo.metadata();
  const Metric& time = *md.find_metric("time");
  // "net" exists only in b: min(0, value) = 0.
  for (const auto& c : md.cnodes()) {
    if (c->callee().name() == "net") {
      EXPECT_DOUBLE_EQ(lo.get(time, *c, *md.threads()[0]), 0.0);
    }
  }
}

TEST(Operators, ResultUsesRequestedStorage) {
  OperatorOptions opts;
  opts.storage = StorageKind::Sparse;
  const Experiment d = difference(make_small(), make_variant(), opts);
  EXPECT_EQ(d.severity().kind(), StorageKind::Sparse);
}

}  // namespace
}  // namespace cube
