#include "sim/program.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace cube::sim {
namespace {

TEST(RegionTable, InternDeduplicatesByName) {
  RegionTable t;
  const auto a = t.intern("f", "a.c", 1, 10);
  const auto b = t.intern("f", "other.c", 5, 6);  // same name -> same id
  EXPECT_EQ(a, b);
  EXPECT_EQ(t.size(), 1u);
  EXPECT_EQ(t[a].file, "a.c");  // first definition wins
}

TEST(RegionTable, FindByName) {
  RegionTable t;
  const auto id = t.intern("main");
  EXPECT_EQ(t.find("main"), id);
  EXPECT_EQ(t.find("nope"), kNoIndex);
}

TEST(ProgramBuilder, BuildsActionSequence) {
  RegionTable t;
  ProgramBuilder b(t, 3);
  b.enter("main").compute(1.0, 100, 200, 300).send(1, 7, 1024).leave();
  const Program p = b.take();
  EXPECT_EQ(p.rank, 3);
  ASSERT_EQ(p.actions.size(), 4u);
  EXPECT_EQ(p.actions[0].kind, ActionKind::Enter);
  EXPECT_EQ(p.actions[1].kind, ActionKind::Compute);
  EXPECT_DOUBLE_EQ(p.actions[1].seconds, 1.0);
  EXPECT_DOUBLE_EQ(p.actions[1].work.flops, 100);
  EXPECT_EQ(p.actions[2].kind, ActionKind::Send);
  EXPECT_EQ(p.actions[2].peer, 1);
  EXPECT_EQ(p.actions[2].tag, 7);
  EXPECT_EQ(p.actions[3].kind, ActionKind::Leave);
}

TEST(ProgramBuilder, CollectiveActions) {
  RegionTable t;
  ProgramBuilder b(t, 0);
  b.enter("main").barrier().alltoall(512).reduce(2, 64).leave();
  const Program p = b.take();
  EXPECT_EQ(p.actions[1].kind, ActionKind::Barrier);
  EXPECT_EQ(p.actions[2].kind, ActionKind::AllToAll);
  EXPECT_DOUBLE_EQ(p.actions[2].bytes, 512);
  EXPECT_EQ(p.actions[3].kind, ActionKind::Reduce);
  EXPECT_EQ(p.actions[3].peer, 2);
}

TEST(ProgramBuilder, UnbalancedLeaveThrows) {
  RegionTable t;
  ProgramBuilder b(t, 0);
  EXPECT_THROW(b.leave(), ValidationError);
}

TEST(ProgramBuilder, UnclosedRegionRejectedAtTake) {
  RegionTable t;
  ProgramBuilder b(t, 0);
  b.enter("main");
  EXPECT_THROW((void)b.take(), ValidationError);
}

TEST(ProgramBuilder, RegionsSharedAcrossBuilders) {
  RegionTable t;
  ProgramBuilder b0(t, 0);
  ProgramBuilder b1(t, 1);
  b0.enter("main").leave();
  b1.enter("main").leave();
  (void)b0.take();
  (void)b1.take();
  EXPECT_EQ(t.size(), 1u);
}

}  // namespace
}  // namespace cube::sim
