#include "sim/engine.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "sim/apps/synthetic.hpp"

namespace cube::sim {
namespace {

SimConfig two_rank_config() {
  SimConfig cfg;
  cfg.cluster.num_nodes = 1;
  cfg.cluster.procs_per_node = 2;
  return cfg;
}

TEST(Engine, ComputeAdvancesClock) {
  SimConfig cfg = two_rank_config();
  RegionTable regions;
  std::vector<Program> programs;
  for (int r = 0; r < 2; ++r) {
    ProgramBuilder b(regions, r);
    b.enter("main").compute(0.5).leave();
    programs.push_back(b.take());
  }
  const RunResult run = Engine(cfg).run(regions, std::move(programs));
  EXPECT_DOUBLE_EQ(run.finish_times[0], 0.5);
  EXPECT_DOUBLE_EQ(run.makespan, 0.5);
}

TEST(Engine, RequiresCompleteRankCoverage) {
  SimConfig cfg = two_rank_config();
  RegionTable regions;
  std::vector<Program> programs;
  ProgramBuilder b(regions, 0);
  b.enter("main").leave();
  programs.push_back(b.take());
  EXPECT_THROW((void)Engine(cfg).run(regions, std::move(programs)),
               OperationError);
}

TEST(Engine, EagerMessageDelivery) {
  SimConfig cfg = two_rank_config();
  RegionTable regions;
  std::vector<Program> programs;
  {
    ProgramBuilder b(regions, 0);
    b.enter("main").compute(0.1).send(1, 0, 1024).leave();
    programs.push_back(b.take());
  }
  {
    ProgramBuilder b(regions, 1);
    b.enter("main").recv(0, 0).leave();
    programs.push_back(b.take());
  }
  const RunResult run = Engine(cfg).run(regions, std::move(programs));
  // The receiver finishes after the sender's compute + latency + transfer.
  EXPECT_GT(run.finish_times[1], 0.1);
  EXPECT_LT(run.finish_times[1], 0.11);
}

TEST(Engine, RendezvousSenderWaitsForReceiver) {
  SimConfig cfg = two_rank_config();
  cfg.network.eager_threshold = 1000;
  RegionTable regions;
  std::vector<Program> programs;
  {
    ProgramBuilder b(regions, 0);
    b.enter("main").send(1, 0, 1e6).leave();  // rendezvous (1 MB)
    programs.push_back(b.take());
  }
  {
    ProgramBuilder b(regions, 1);
    b.enter("main").compute(0.2).recv(0, 0).leave();
    programs.push_back(b.take());
  }
  const RunResult run = Engine(cfg).run(regions, std::move(programs));
  // Sender cannot finish before the receiver posted at 0.2.
  EXPECT_GT(run.finish_times[0], 0.2);
}

TEST(Engine, UnmatchedRecvDeadlocks) {
  SimConfig cfg = two_rank_config();
  RegionTable regions;
  std::vector<Program> programs;
  {
    ProgramBuilder b(regions, 0);
    b.enter("main").recv(1, 0).leave();
    programs.push_back(b.take());
  }
  {
    ProgramBuilder b(regions, 1);
    b.enter("main").recv(0, 0).leave();
    programs.push_back(b.take());
  }
  EXPECT_THROW((void)Engine(cfg).run(regions, std::move(programs)),
               OperationError);
}

TEST(Engine, BarrierSynchronizesClocks) {
  SimConfig cfg = two_rank_config();
  RegionTable regions;
  std::vector<Program> programs;
  for (int r = 0; r < 2; ++r) {
    ProgramBuilder b(regions, r);
    b.enter("main").compute(r == 0 ? 0.1 : 0.5).barrier().leave();
    programs.push_back(b.take());
  }
  const RunResult run = Engine(cfg).run(regions, std::move(programs));
  // Both finish after the slowest arrival (0.5) plus barrier cost.
  EXPECT_GE(run.finish_times[0], 0.5);
  EXPECT_NEAR(run.finish_times[0], run.finish_times[1],
              cfg.network.exit_stagger * 2 + 1e-9);
}

TEST(Engine, MismatchedCollectiveSequenceThrows) {
  SimConfig cfg = two_rank_config();
  RegionTable regions;
  std::vector<Program> programs;
  {
    ProgramBuilder b(regions, 0);
    b.enter("main").barrier().leave();
    programs.push_back(b.take());
  }
  {
    ProgramBuilder b(regions, 1);
    b.enter("main").alltoall(64).leave();
    programs.push_back(b.take());
  }
  EXPECT_THROW((void)Engine(cfg).run(regions, std::move(programs)),
               OperationError);
}

TEST(Engine, ReduceDelaysOnlyRoot) {
  SimConfig cfg = two_rank_config();
  RegionTable regions;
  std::vector<Program> programs;
  for (int r = 0; r < 2; ++r) {
    ProgramBuilder b(regions, r);
    // Root (rank 0) arrives early; rank 1 arrives late.
    b.enter("main").compute(r == 0 ? 0.0001 : 0.4).reduce(0, 1024).leave();
    programs.push_back(b.take());
  }
  const RunResult run = Engine(cfg).run(regions, std::move(programs));
  EXPECT_GE(run.finish_times[0], 0.4);  // root waited (Early Reduce)
  EXPECT_LT(run.finish_times[1], 0.41);  // non-root did not wait for root
}

TEST(Engine, BcastNonRootsWaitForRoot) {
  SimConfig cfg = two_rank_config();
  RegionTable regions;
  std::vector<Program> programs;
  for (int r = 0; r < 2; ++r) {
    ProgramBuilder b(regions, r);
    // Root (rank 0) arrives late; rank 1 must wait for the data.
    b.enter("main").compute(r == 0 ? 0.5 : 0.001).bcast(0, 4096).leave();
    programs.push_back(b.take());
  }
  const RunResult run = Engine(cfg).run(regions, std::move(programs));
  EXPECT_GE(run.finish_times[1], 0.5);  // waited for the root
  EXPECT_LT(run.finish_times[0], 0.51);  // root did not wait for others
}

TEST(Engine, BcastRootNeverWaitsForNonRoots) {
  SimConfig cfg = two_rank_config();
  RegionTable regions;
  std::vector<Program> programs;
  for (int r = 0; r < 2; ++r) {
    ProgramBuilder b(regions, r);
    // Root early, non-root late: the root proceeds immediately.
    b.enter("main").compute(r == 0 ? 0.001 : 0.5).bcast(0, 4096).leave();
    programs.push_back(b.take());
  }
  const RunResult run = Engine(cfg).run(regions, std::move(programs));
  EXPECT_LT(run.finish_times[0], 0.01);
}

TEST(Engine, DeterministicForEqualSeeds) {
  SimConfig cfg = two_rank_config();
  cfg.noise.relative = 0.05;
  cfg.noise.seed = 77;
  RegionTable r1;
  RegionTable r2;
  const RunResult a =
      Engine(cfg).run(r1, build_noisy_compute(r1, cfg.cluster, 5, 0.01));
  const RunResult b =
      Engine(cfg).run(r2, build_noisy_compute(r2, cfg.cluster, 5, 0.01));
  EXPECT_DOUBLE_EQ(a.makespan, b.makespan);
}

TEST(Engine, NoiseSeedChangesOutcome) {
  SimConfig cfg = two_rank_config();
  cfg.noise.relative = 0.05;
  cfg.noise.seed = 1;
  RegionTable r1;
  const RunResult a =
      Engine(cfg).run(r1, build_noisy_compute(r1, cfg.cluster, 5, 0.01));
  cfg.noise.seed = 2;
  RegionTable r2;
  const RunResult b =
      Engine(cfg).run(r2, build_noisy_compute(r2, cfg.cluster, 5, 0.01));
  EXPECT_NE(a.makespan, b.makespan);
}

TEST(Engine, NoiseOnlyAddsTime) {
  SimConfig cfg = two_rank_config();
  RegionTable r1;
  const RunResult quiet =
      Engine(cfg).run(r1, build_noisy_compute(r1, cfg.cluster, 5, 0.01));
  cfg.noise.relative = 0.05;
  cfg.noise.seed = 3;
  RegionTable r2;
  const RunResult noisy =
      Engine(cfg).run(r2, build_noisy_compute(r2, cfg.cluster, 5, 0.01));
  EXPECT_GT(noisy.makespan, quiet.makespan);
}

TEST(Engine, TracingDisabledByDefault) {
  SimConfig cfg = two_rank_config();
  RegionTable regions;
  const RunResult run = Engine(cfg).run(
      regions, build_pingpong(regions, cfg.cluster, 3, 512));
  EXPECT_TRUE(run.trace.events.empty());
}

TEST(Engine, TracingRecordsBalancedEvents) {
  SimConfig cfg = two_rank_config();
  cfg.monitor.trace = true;
  RegionTable regions;
  const RunResult run = Engine(cfg).run(
      regions, build_pingpong(regions, cfg.cluster, 3, 512));
  ASSERT_FALSE(run.trace.events.empty());
  int depth = 0;
  for (const TraceEvent& e : run.trace.events) {
    if (e.type == EventType::Enter || e.type == EventType::CollEnter) {
      ++depth;
    }
    if (e.type == EventType::Exit || e.type == EventType::CollExit) {
      --depth;
    }
  }
  EXPECT_EQ(depth, 0);
}

TEST(Engine, InstrumentationDilatesRuntime) {
  SimConfig cfg = two_rank_config();
  RegionTable r1;
  const RunResult untraced = Engine(cfg).run(
      r1, build_pingpong(r1, cfg.cluster, 50, 512));
  cfg.monitor.trace = true;
  cfg.monitor.probe_overhead = 5e-6;
  RegionTable r2;
  const RunResult traced = Engine(cfg).run(
      r2, build_pingpong(r2, cfg.cluster, 50, 512));
  EXPECT_GT(traced.makespan, untraced.makespan);
}

TEST(Engine, PerRankEventTimesAreMonotone) {
  SimConfig cfg = two_rank_config();
  cfg.monitor.trace = true;
  RegionTable regions;
  const RunResult run = Engine(cfg).run(
      regions, build_pingpong(regions, cfg.cluster, 10, 512));
  double last[2] = {-1.0, -1.0};
  for (const TraceEvent& e : run.trace.events) {
    ASSERT_GE(e.time, last[e.rank]);
    last[e.rank] = e.time;
  }
}

TEST(Engine, CounterPayloadAttachedWhenRequested) {
  SimConfig cfg = two_rank_config();
  cfg.monitor.trace = true;
  cfg.monitor.trace_counters = counters::event_set_cache();
  RegionTable regions;
  const RunResult run = Engine(cfg).run(
      regions, build_pingpong(regions, cfg.cluster, 3, 512));
  EXPECT_EQ(run.trace.counter_names.size(), 4u);
  bool any_nonempty = false;
  for (const TraceEvent& e : run.trace.events) {
    EXPECT_EQ(e.counters.size(), 4u);
    for (const double v : e.counters) {
      any_nonempty = any_nonempty || v > 0.0;
    }
  }
  EXPECT_TRUE(any_nonempty);
}

TEST(Engine, ProfileAccountsComputeTime) {
  SimConfig cfg = two_rank_config();
  RegionTable regions;
  std::vector<Program> programs;
  for (int r = 0; r < 2; ++r) {
    ProgramBuilder b(regions, r);
    b.enter("main").enter("inner").compute(0.25).leave().leave();
    programs.push_back(b.take());
  }
  const RunResult run = Engine(cfg).run(regions, std::move(programs));
  // Find the "inner" node.
  const CallProfile& p = run.profile;
  bool found = false;
  for (std::size_t n = 0; n < p.nodes().size(); ++n) {
    if (run.regions[p.nodes()[n].region].name == "inner") {
      found = true;
      EXPECT_DOUBLE_EQ(p.time(n, 0), 0.25);
      EXPECT_EQ(p.visits(n, 0), 1u);
      EXPECT_DOUBLE_EQ(p.work(n, 0).seconds, 0.25);
    }
  }
  EXPECT_TRUE(found);
}

TEST(Engine, ProfileMergesCallPathsAcrossRanks) {
  SimConfig cfg = two_rank_config();
  RegionTable regions;
  const RunResult run = Engine(cfg).run(
      regions, build_pingpong(regions, cfg.cluster, 2, 256));
  // Both ranks share the same call tree: main -> pingpong -> {MPI_*}.
  std::size_t roots = 0;
  for (const ProfileNode& n : run.profile.nodes()) {
    if (n.parent == kNoIndex) ++roots;
  }
  EXPECT_EQ(roots, 1u);
}

TEST(Engine, RecvAttributesColdBytes) {
  SimConfig cfg = two_rank_config();
  RegionTable regions;
  const RunResult run = Engine(cfg).run(
      regions, build_pingpong(regions, cfg.cluster, 4, 2048));
  double cold = 0;
  for (std::size_t n = 0; n < run.profile.nodes().size(); ++n) {
    if (run.regions[run.profile.nodes()[n].region].name == kMpiRecvRegion) {
      cold += run.profile.work(n, 0).cold_bytes +
              run.profile.work(n, 1).cold_bytes;
    }
  }
  EXPECT_DOUBLE_EQ(cold, 8 * 2048.0);  // 4 rounds x 2 directions x 2048 B
}

}  // namespace
}  // namespace cube::sim
