// Fork-join (multithreaded) execution: engine semantics, EXPERT's Idle
// Threads pattern, per-thread severities, and display behavior.
#include <gtest/gtest.h>

#include "display/view.hpp"
#include "expert/analyzer.hpp"
#include "expert/patterns.hpp"
#include "sim/apps/hybrid.hpp"
#include "sim/engine.hpp"

namespace cube {
namespace {

sim::SimConfig hybrid_config(int ranks, int threads) {
  sim::SimConfig cfg;
  cfg.cluster.num_nodes = 1;
  cfg.cluster.procs_per_node = ranks;
  cfg.cluster.threads_per_proc = threads;
  cfg.monitor.trace = true;
  return cfg;
}

TEST(ParallelCompute, ProcessAdvancesBySlowestThread) {
  auto cfg = hybrid_config(1, 4);
  sim::RegionTable regions;
  std::vector<sim::Program> programs;
  sim::ProgramBuilder b(regions, 0);
  b.enter("main").parallel_compute(0.1, 0.5).leave();
  programs.push_back(b.take());
  const auto run = sim::Engine(cfg).run(regions, std::move(programs));
  // Duration stays within the +-spread envelope...
  EXPECT_GE(run.makespan, 0.1 * 0.5);
  EXPECT_LE(run.makespan, 0.1 * 1.5 + 1e-3);
  // ...and the join happens exactly at the slowest thread.
  double slowest = 0.0;
  for (const sim::TraceEvent& e : run.trace.events) {
    for (const double ts : e.thread_seconds) {
      slowest = std::max(slowest, ts);
    }
  }
  EXPECT_NEAR(run.makespan, slowest,
              6 * cfg.monitor.probe_overhead + 1e-9);
}

TEST(ParallelCompute, TraceCarriesPerThreadSeconds) {
  auto cfg = hybrid_config(1, 4);
  sim::RegionTable regions;
  std::vector<sim::Program> programs;
  sim::ProgramBuilder b(regions, 0);
  b.enter("main").parallel_compute(0.05, 0.4).leave();
  programs.push_back(b.take());
  const auto run = sim::Engine(cfg).run(regions, std::move(programs));
  bool found = false;
  for (const sim::TraceEvent& e : run.trace.events) {
    if (e.type == sim::EventType::Parallel) {
      found = true;
      EXPECT_EQ(e.thread_seconds.size(), 4u);
    }
  }
  EXPECT_TRUE(found);
}

TEST(ParallelCompute, TraceRoundTripKeepsThreadSeconds) {
  auto cfg = hybrid_config(1, 2);
  sim::RegionTable regions;
  const auto run = sim::Engine(cfg).run(
      regions,
      sim::build_hybrid_stencil(regions, cfg.cluster, {.rounds = 2}));
  const sim::Trace back =
      sim::deserialize_trace(sim::serialize_trace(run.trace));
  EXPECT_EQ(back.cluster.threads_per_proc, 2);
  std::size_t parallel_events = 0;
  for (const sim::TraceEvent& e : back.events) {
    if (e.type == sim::EventType::Parallel) {
      ++parallel_events;
      EXPECT_EQ(e.thread_seconds.size(), 2u);
    }
  }
  EXPECT_EQ(parallel_events, 2u);
}

TEST(IdleThreads, DetectedFromThreadImbalance) {
  auto cfg = hybrid_config(2, 4);
  sim::RegionTable regions;
  sim::HybridConfig hc;
  hc.rounds = 5;
  hc.thread_imbalance = 0.4;
  const auto run = sim::Engine(cfg).run(
      regions, sim::build_hybrid_stencil(regions, cfg.cluster, hc));
  const Experiment e = expert::analyze_trace(run.trace);

  // 2 ranks x 4 threads in the system dimension.
  EXPECT_EQ(e.metadata().num_threads(), 8u);
  const Metric& idle = *e.metadata().find_metric(expert::kIdleThreads);
  EXPECT_GT(e.sum_metric(idle), 0.0);
  // Per location, busy + idle equals the region's wall time: the sum over
  // threads of (Execution + Idle) inside the parallel node is
  // num_threads * wall.
  const Metric& execution = *e.metadata().find_metric(expert::kExecution);
  const Cnode* omp = nullptr;
  for (const auto& c : e.metadata().cnodes()) {
    if (c->callee().name() == sim::kOmpParallelRegion) omp = c.get();
  }
  ASSERT_NE(omp, nullptr);
  for (long rank = 0; rank < 2; ++rank) {
    double wall0 = 0.0;
    for (long tid = 0; tid < 4; ++tid) {
      const Thread* t =
          e.metadata().threads()[static_cast<std::size_t>(rank * 4 + tid)]
              .get();
      const double sum = e.get(execution, *omp, *t) + e.get(idle, *omp, *t);
      if (tid == 0) {
        wall0 = sum;
      } else {
        EXPECT_NEAR(sum, wall0, 1e-9);  // same wall for all threads
      }
    }
    EXPECT_GT(wall0, 0.0);
  }
}

TEST(IdleThreads, ZeroWithoutImbalance) {
  auto cfg = hybrid_config(1, 4);
  sim::RegionTable regions;
  sim::HybridConfig hc;
  hc.rounds = 3;
  hc.thread_imbalance = 0.0;
  const auto run = sim::Engine(cfg).run(
      regions, sim::build_hybrid_stencil(regions, cfg.cluster, hc));
  const Experiment e = expert::analyze_trace(run.trace);
  const Metric& idle = *e.metadata().find_metric(expert::kIdleThreads);
  EXPECT_NEAR(e.sum_metric(idle), 0.0, 1e-9);
}

TEST(IdleThreads, MpiTimeStaysOnMasterThread) {
  auto cfg = hybrid_config(2, 4);
  sim::RegionTable regions;
  const auto run = sim::Engine(cfg).run(
      regions,
      sim::build_hybrid_stencil(regions, cfg.cluster, {.rounds = 3}));
  const Experiment e = expert::analyze_trace(run.trace);
  const Metric& p2p = *e.metadata().find_metric(expert::kP2p);
  const Metric& ls = *e.metadata().find_metric(expert::kLateSender);
  for (const auto& t : e.metadata().threads()) {
    if (t->thread_id() == 0) continue;  // master carries MPI time
    for (const auto& c : e.metadata().cnodes()) {
      EXPECT_DOUBLE_EQ(e.get(p2p, *c, *t), 0.0);
      EXPECT_DOUBLE_EQ(e.get(ls, *c, *t), 0.0);
    }
  }
}

TEST(IdleThreads, DisplayShowsThreadRowsForHybridRuns) {
  auto cfg = hybrid_config(2, 2);
  sim::RegionTable regions;
  const auto run = sim::Engine(cfg).run(
      regions,
      sim::build_hybrid_stencil(regions, cfg.cluster, {.rounds = 2}));
  const Experiment e = expert::analyze_trace(run.trace);
  ViewState s(e);
  const ViewData v = compute_view(s);
  // Threads are NOT hidden (multi-threaded processes).
  EXPECT_FALSE(v.threads_hidden);
  std::size_t thread_rows = 0;
  for (const ViewRow& r : v.system_rows) {
    if (r.system_level == SystemLevel::Thread) ++thread_rows;
  }
  EXPECT_EQ(thread_rows, 4u);
}

TEST(IdleThreads, SingleThreadRunsUnaffected) {
  // threads_per_proc == 1: parallel_compute degenerates to compute and no
  // Idle Threads severity appears.
  auto cfg = hybrid_config(2, 1);
  sim::RegionTable regions;
  const auto run = sim::Engine(cfg).run(
      regions,
      sim::build_hybrid_stencil(regions, cfg.cluster, {.rounds = 2}));
  const Experiment e = expert::analyze_trace(run.trace);
  EXPECT_EQ(e.metadata().num_threads(), 2u);
  const Metric& idle = *e.metadata().find_metric(expert::kIdleThreads);
  EXPECT_NEAR(e.sum_metric(idle), 0.0, 1e-12);
}

}  // namespace
}  // namespace cube
