#include <gtest/gtest.h>

#include "common/error.hpp"
#include "sim/apps/pescan.hpp"
#include "sim/apps/sweep3d.hpp"
#include "sim/apps/synthetic.hpp"
#include "sim/engine.hpp"

namespace cube::sim {
namespace {

TEST(Pescan, BuildsOneProgramPerRank) {
  RegionTable regions;
  ClusterConfig cluster;  // 16 ranks
  const auto programs = build_pescan(regions, cluster, PescanConfig{});
  EXPECT_EQ(programs.size(), 16u);
  for (int r = 0; r < 16; ++r) {
    EXPECT_EQ(programs[static_cast<std::size_t>(r)].rank, r);
  }
  EXPECT_NE(regions.find("solve_pcg"), kNoIndex);
  EXPECT_NE(regions.find("fft_forward"), kNoIndex);
}

TEST(Pescan, RunsToCompletionWithAndWithoutBarriers) {
  SimConfig cfg;
  for (const bool barriers : {true, false}) {
    RegionTable regions;
    PescanConfig pc;
    pc.iterations = 3;
    pc.with_barriers = barriers;
    auto programs = build_pescan(regions, cfg.cluster, pc);
    EXPECT_NO_THROW(
        (void)Engine(cfg).run(regions, std::move(programs)));
  }
}

TEST(Pescan, BarrierRemovalIsFaster) {
  SimConfig cfg;
  PescanConfig pc;
  pc.iterations = 5;
  RegionTable r1;
  pc.with_barriers = true;
  const double with = Engine(cfg)
                          .run(r1, build_pescan(r1, cfg.cluster, pc))
                          .makespan;
  RegionTable r2;
  pc.with_barriers = false;
  const double without = Engine(cfg)
                             .run(r2, build_pescan(r2, cfg.cluster, pc))
                             .makespan;
  EXPECT_LT(without, with);
}

TEST(Pescan, DeterministicAcrossBuilds) {
  SimConfig cfg;
  PescanConfig pc;
  pc.iterations = 3;
  RegionTable r1;
  RegionTable r2;
  const double a =
      Engine(cfg).run(r1, build_pescan(r1, cfg.cluster, pc)).makespan;
  const double b =
      Engine(cfg).run(r2, build_pescan(r2, cfg.cluster, pc)).makespan;
  EXPECT_DOUBLE_EQ(a, b);
}

TEST(Sweep3d, RejectsMismatchedGrid) {
  RegionTable regions;
  ClusterConfig cluster;  // 16 ranks
  Sweep3dConfig sc;
  sc.grid_px = 3;
  sc.grid_py = 3;
  EXPECT_THROW((void)build_sweep3d(regions, cluster, sc), OperationError);
}

TEST(Sweep3d, RunsToCompletion) {
  SimConfig cfg;
  RegionTable regions;
  Sweep3dConfig sc;
  sc.sweeps = 4;
  auto programs = build_sweep3d(regions, cfg.cluster, sc);
  const RunResult run = Engine(cfg).run(regions, std::move(programs));
  EXPECT_GT(run.makespan, 0.0);
}

TEST(Sweep3d, WavefrontSerializesCorners) {
  // The corner rank downstream of the first sweep finishes its first
  // octant only after upstream ranks computed: makespan exceeds
  // sweeps * cell by the pipeline fill.
  SimConfig cfg;
  RegionTable regions;
  Sweep3dConfig sc;
  sc.sweeps = 2;
  sc.imbalance = 0.0;
  auto programs = build_sweep3d(regions, cfg.cluster, sc);
  const RunResult run = Engine(cfg).run(regions, std::move(programs));
  // Lower bound: per sweep, the wavefront depth is (px-1)+(py-1) hops.
  EXPECT_GT(run.makespan, sc.sweeps * sc.cell_seconds * 2);
}

TEST(Synthetic, ImbalancedBarrierProducesWaits) {
  SimConfig cfg;
  cfg.cluster.num_nodes = 1;
  cfg.cluster.procs_per_node = 4;
  cfg.monitor.trace = true;
  RegionTable regions;
  const RunResult run = Engine(cfg).run(
      regions,
      build_imbalanced_barrier(regions, cfg.cluster, 3, 0.01, 0.5));
  // Rank 0 (fastest) accumulates barrier wait ~= imbalance per round.
  double barrier_time_rank0 = 0.0;
  for (std::size_t n = 0; n < run.profile.nodes().size(); ++n) {
    if (run.regions[run.profile.nodes()[n].region].name ==
        kMpiBarrierRegion) {
      barrier_time_rank0 += run.profile.time(n, 0);
    }
  }
  EXPECT_GT(barrier_time_rank0, 3 * 0.01 * 0.5 * 0.9);
}

TEST(Synthetic, PingpongRequiresTwoRanks) {
  RegionTable regions;
  ClusterConfig cluster;
  cluster.num_nodes = 2;
  cluster.procs_per_node = 2;
  EXPECT_THROW((void)build_pingpong(regions, cluster, 1, 64),
               OperationError);
}

}  // namespace
}  // namespace cube::sim
