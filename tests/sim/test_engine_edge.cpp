// Engine edge cases: self-messages, zero-byte payloads, many-rank fan-in,
// repeated collectives, tag multiplexing.
#include <gtest/gtest.h>

#include <set>

#include "common/error.hpp"
#include "sim/engine.hpp"

namespace cube::sim {
namespace {

SimConfig config(int ranks) {
  SimConfig cfg;
  cfg.cluster.num_nodes = 1;
  cfg.cluster.procs_per_node = ranks;
  return cfg;
}

TEST(EngineEdge, SelfMessageDelivers) {
  auto cfg = config(1);
  RegionTable regions;
  std::vector<Program> programs;
  ProgramBuilder b(regions, 0);
  b.enter("main").send(0, 7, 512).recv(0, 7).leave();
  programs.push_back(b.take());
  const RunResult run = Engine(cfg).run(regions, std::move(programs));
  EXPECT_GT(run.makespan, 0.0);
}

TEST(EngineEdge, ZeroByteMessages) {
  auto cfg = config(2);
  RegionTable regions;
  std::vector<Program> programs;
  {
    ProgramBuilder b(regions, 0);
    b.enter("main").send(1, 0, 0.0).leave();
    programs.push_back(b.take());
  }
  {
    ProgramBuilder b(regions, 1);
    b.enter("main").recv(0, 0).leave();
    programs.push_back(b.take());
  }
  const RunResult run = Engine(cfg).run(regions, std::move(programs));
  // Zero-byte message still pays latency + overhead.
  EXPECT_GT(run.finish_times[1], cfg.network.latency);
}

TEST(EngineEdge, TagsMultiplexSamePair) {
  // Out-of-order tags between the same pair resolve by tag, not arrival.
  auto cfg = config(2);
  cfg.monitor.trace = true;
  RegionTable regions;
  std::vector<Program> programs;
  {
    ProgramBuilder b(regions, 0);
    b.enter("main").send(1, 5, 100).send(1, 6, 200).leave();
    programs.push_back(b.take());
  }
  {
    ProgramBuilder b(regions, 1);
    b.enter("main").recv(0, 6).recv(0, 5).leave();  // reversed order
    programs.push_back(b.take());
  }
  const RunResult run = Engine(cfg).run(regions, std::move(programs));
  // Both received; recv events carry the right byte counts.
  std::vector<double> sizes;
  for (const TraceEvent& e : run.trace.events) {
    if (e.type == EventType::Recv) sizes.push_back(e.bytes);
  }
  ASSERT_EQ(sizes.size(), 2u);
  EXPECT_DOUBLE_EQ(sizes[0], 200);  // tag 6 first
  EXPECT_DOUBLE_EQ(sizes[1], 100);
}

TEST(EngineEdge, ManyToOneFanIn) {
  constexpr int kRanks = 8;
  auto cfg = config(kRanks);
  RegionTable regions;
  std::vector<Program> programs;
  for (int r = 0; r < kRanks; ++r) {
    ProgramBuilder b(regions, r);
    b.enter("main");
    if (r == 0) {
      for (int src = 1; src < kRanks; ++src) b.recv(src, src);
    } else {
      b.compute(0.001 * r).send(0, r, 1024);
    }
    b.leave();
    programs.push_back(b.take());
  }
  const RunResult run = Engine(cfg).run(regions, std::move(programs));
  // Root finishes after the slowest sender.
  EXPECT_GT(run.finish_times[0], 0.001 * (kRanks - 1));
}

TEST(EngineEdge, RepeatedCollectivesKeepInstancesApart) {
  auto cfg = config(2);
  cfg.monitor.trace = true;
  RegionTable regions;
  std::vector<Program> programs;
  for (int r = 0; r < 2; ++r) {
    ProgramBuilder b(regions, r);
    b.enter("main");
    for (int k = 0; k < 5; ++k) {
      b.compute(0.001).barrier();
    }
    b.leave();
    programs.push_back(b.take());
  }
  const RunResult run = Engine(cfg).run(regions, std::move(programs));
  std::set<std::uint32_t> instances;
  for (const TraceEvent& e : run.trace.events) {
    if (e.type == EventType::CollEnter) instances.insert(e.coll_instance);
  }
  EXPECT_EQ(instances.size(), 5u);
}

TEST(EngineEdge, MixedCollectiveKindsSequence) {
  auto cfg = config(4);
  RegionTable regions;
  std::vector<Program> programs;
  for (int r = 0; r < 4; ++r) {
    ProgramBuilder b(regions, r);
    b.enter("main")
        .barrier()
        .alltoall(256)
        .reduce(2, 64)
        .bcast(2, 64)
        .barrier()
        .leave();
    programs.push_back(b.take());
  }
  EXPECT_NO_THROW((void)Engine(cfg).run(regions, std::move(programs)));
}

TEST(EngineEdge, SendWithoutReceiverIsHarmlessBuffered) {
  // An eager message that is never received does not deadlock the run
  // (buffered semantics); the data simply stays in flight.
  auto cfg = config(2);
  RegionTable regions;
  std::vector<Program> programs;
  {
    ProgramBuilder b(regions, 0);
    b.enter("main").send(1, 0, 128).leave();
    programs.push_back(b.take());
  }
  {
    ProgramBuilder b(regions, 1);
    b.enter("main").compute(0.001).leave();
    programs.push_back(b.take());
  }
  EXPECT_NO_THROW((void)Engine(cfg).run(regions, std::move(programs)));
}

TEST(EngineEdge, RendezvousWithoutReceiverDeadlocks) {
  auto cfg = config(2);
  cfg.network.eager_threshold = 64;
  RegionTable regions;
  std::vector<Program> programs;
  {
    ProgramBuilder b(regions, 0);
    b.enter("main").send(1, 0, 1e6).leave();
    programs.push_back(b.take());
  }
  {
    ProgramBuilder b(regions, 1);
    b.enter("main").compute(0.001).leave();
    programs.push_back(b.take());
  }
  EXPECT_THROW((void)Engine(cfg).run(regions, std::move(programs)),
               OperationError);
}

TEST(EngineEdge, EmptyProgramsFinishAtZero) {
  auto cfg = config(2);
  RegionTable regions;
  std::vector<Program> programs;
  for (int r = 0; r < 2; ++r) {
    ProgramBuilder b(regions, r);
    programs.push_back(b.take());
  }
  const RunResult run = Engine(cfg).run(regions, std::move(programs));
  EXPECT_DOUBLE_EQ(run.makespan, 0.0);
}

}  // namespace
}  // namespace cube::sim
