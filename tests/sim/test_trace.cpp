#include "sim/trace.hpp"

#include <gtest/gtest.h>

#include <cstdio>

#include "common/error.hpp"
#include "sim/apps/synthetic.hpp"
#include "sim/engine.hpp"

namespace cube::sim {
namespace {

Trace make_trace(bool with_counters = false) {
  SimConfig cfg;
  cfg.cluster.num_nodes = 1;
  cfg.cluster.procs_per_node = 2;
  cfg.monitor.trace = true;
  if (with_counters) {
    cfg.monitor.trace_counters = counters::event_set_cache();
  }
  RegionTable regions;
  return Engine(cfg)
      .run(regions, build_pingpong(regions, cfg.cluster, 5, 1024))
      .trace;
}

TEST(Trace, SerializationRoundTrip) {
  const Trace t = make_trace();
  const Trace back = deserialize_trace(serialize_trace(t));
  ASSERT_EQ(back.events.size(), t.events.size());
  EXPECT_EQ(back.regions.size(), t.regions.size());
  EXPECT_EQ(back.cluster.num_nodes, t.cluster.num_nodes);
  EXPECT_EQ(back.cluster.machine_name, t.cluster.machine_name);
  EXPECT_DOUBLE_EQ(back.eager_threshold, t.eager_threshold);
  for (std::size_t i = 0; i < t.events.size(); ++i) {
    EXPECT_EQ(back.events[i].type, t.events[i].type);
    EXPECT_EQ(back.events[i].rank, t.events[i].rank);
    EXPECT_DOUBLE_EQ(back.events[i].time, t.events[i].time);
    EXPECT_EQ(back.events[i].region, t.events[i].region);
    EXPECT_EQ(back.events[i].peer, t.events[i].peer);
    EXPECT_EQ(back.events[i].tag, t.events[i].tag);
  }
}

TEST(Trace, CounterPayloadRoundTrip) {
  const Trace t = make_trace(/*with_counters=*/true);
  const Trace back = deserialize_trace(serialize_trace(t));
  ASSERT_EQ(back.counter_names.size(), 4u);
  for (std::size_t i = 0; i < t.events.size(); ++i) {
    ASSERT_EQ(back.events[i].counters.size(),
              t.events[i].counters.size());
    for (std::size_t k = 0; k < t.events[i].counters.size(); ++k) {
      EXPECT_DOUBLE_EQ(back.events[i].counters[k],
                       t.events[i].counters[k]);
    }
  }
}

TEST(Trace, ByteSizeMatchesSerialization) {
  const Trace t = make_trace();
  EXPECT_EQ(t.byte_size(), serialize_trace(t).size());
}

TEST(Trace, CounterPayloadInflatesSize) {
  // The §5.2 motivation: per-event counter values grow traces
  // dramatically.
  const Trace plain = make_trace(false);
  const Trace fat = make_trace(true);
  EXPECT_GT(fat.byte_size(), plain.byte_size() * 1.5);
}

TEST(Trace, FileRoundTrip) {
  const Trace t = make_trace();
  const std::string path = ::testing::TempDir() + "/trace_test.elg";
  write_trace_file(t, path);
  const Trace back = read_trace_file(path);
  EXPECT_EQ(back.events.size(), t.events.size());
  std::remove(path.c_str());
}

TEST(Trace, BadMagicThrows) {
  EXPECT_THROW((void)deserialize_trace("XXXXXXXXrest"), Error);
}

TEST(Trace, TruncatedThrows) {
  const std::string data = serialize_trace(make_trace());
  EXPECT_THROW((void)deserialize_trace(
                   std::string_view(data).substr(0, data.size() - 3)),
               Error);
}

TEST(Trace, MissingFileThrows) {
  EXPECT_THROW((void)read_trace_file("/nonexistent/file.elg"), IoError);
}

}  // namespace
}  // namespace cube::sim
