#include "model/experiment.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "testutil.hpp"

namespace cube {
namespace {

using testing::make_small;

TEST(Experiment, RequiresMetadata) {
  EXPECT_THROW(Experiment(std::unique_ptr<Metadata>()), Error);
  EXPECT_THROW(Experiment(std::shared_ptr<const Metadata>()), Error);
}

TEST(Experiment, RequiresFrozenMetadataWhenShared) {
  auto md = std::make_shared<Metadata>();
  EXPECT_THROW(
      Experiment(std::shared_ptr<const Metadata>(std::move(md))), Error);
}

TEST(Experiment, MetadataIsFrozenOnConstruction) {
  // The mutable metadata accessor is gone: the only view an experiment
  // offers is const, and the instance itself is frozen, so metadata can
  // never drift after the digest was computed.
  const Experiment e = make_small();
  EXPECT_TRUE(e.metadata().frozen());
  EXPECT_NE(e.metadata().digest(), 0u);
  EXPECT_EQ(e.metadata_ptr().get(), &e.metadata());
}

TEST(Experiment, ClonesShareTheMetadataInstance) {
  const Experiment e = make_small();
  const Experiment copy = e.clone();
  EXPECT_EQ(copy.metadata_ptr().get(), e.metadata_ptr().get());
  const Experiment sparse = e.clone(StorageKind::Sparse);
  EXPECT_EQ(sparse.metadata_ptr().get(), e.metadata_ptr().get());
}

TEST(Experiment, ExperimentsCanShareMetadataExplicitly) {
  const Experiment a = make_small();
  Experiment b(a.metadata_ptr(), StorageKind::Dense);
  b.severity().set(0, 0, 0, 1.5);
  EXPECT_EQ(b.metadata_ptr().get(), a.metadata_ptr().get());
  EXPECT_NE(b.severity().get(0, 0, 0), a.severity().get(0, 0, 0));
}

TEST(Experiment, AccessByEntityMatchesIndexAccess) {
  const Experiment e = make_small();
  const Metadata& md = e.metadata();
  const Metric& m = *md.metrics()[1];
  const Cnode& c = *md.cnodes()[2];
  const Thread& t = *md.threads()[3];
  EXPECT_DOUBLE_EQ(e.get(m, c, t), e.severity().get(1, 2, 3));
  EXPECT_DOUBLE_EQ(e.get(m, c, t), 2 * 100 + 3 * 10 + 4);
}

TEST(Experiment, Attributes) {
  Experiment e = make_small();
  e.set_attribute("k", "v");
  EXPECT_EQ(e.attribute("k"), "v");
  EXPECT_EQ(e.attribute("missing"), "");
  e.set_attribute("k", "v2");
  EXPECT_EQ(e.attribute("k"), "v2");
}

TEST(Experiment, NameViaAttribute) {
  Experiment e = make_small();
  EXPECT_EQ(e.name(), "small");
  e.set_name("renamed");
  EXPECT_EQ(e.name(), "renamed");
  EXPECT_EQ(e.attribute("cube::name"), "renamed");
}

TEST(Experiment, KindDefaultsToOriginal) {
  const Experiment e = make_small();
  EXPECT_EQ(e.kind(), ExperimentKind::Original);
  EXPECT_EQ(e.provenance(), "");
}

TEST(Experiment, MarkDerivedSetsKindAndProvenance) {
  Experiment e = make_small();
  e.mark_derived("difference(a, b)");
  EXPECT_EQ(e.kind(), ExperimentKind::Derived);
  EXPECT_EQ(e.provenance(), "difference(a, b)");
}

TEST(Experiment, SumMetricIsExclusive) {
  const Experiment e = make_small();
  const Metric& time = *e.metadata().find_metric("time");
  // value(0, c, t) = 100 + (c+1)*10 + (t+1); 4 cnodes x 4 threads.
  double expected = 0;
  for (int c = 0; c < 4; ++c) {
    for (int t = 0; t < 4; ++t) {
      expected += 100 + (c + 1) * 10 + (t + 1);
    }
  }
  EXPECT_DOUBLE_EQ(e.sum_metric(time), expected);
}

TEST(Experiment, SumMetricTreeIncludesChildren) {
  const Experiment e = make_small();
  const Metric& time = *e.metadata().find_metric("time");
  const Metric& mpi = *e.metadata().find_metric("mpi");
  EXPECT_DOUBLE_EQ(e.sum_metric_tree(time),
                   e.sum_metric(time) + e.sum_metric(mpi));
}

TEST(Experiment, SumCnodeSumsThreadsOnly) {
  const Experiment e = make_small();
  const Metric& time = *e.metadata().find_metric("time");
  const Cnode& root = *e.metadata().cnodes()[0];
  // value(0, 0, t) = 100 + 10 + (t+1), t in 0..3.
  EXPECT_DOUBLE_EQ(e.sum_cnode(time, root), 4 * 110 + (1 + 2 + 3 + 4));
}

TEST(Experiment, SumTreeCountsEveryPairOnce) {
  const Experiment e = make_small();
  const Metric& time = *e.metadata().find_metric("time");
  const Cnode& root = *e.metadata().cnodes()[0];
  // Root call node spans all 4 cnodes; time tree spans metrics 0 and 1.
  double expected = 0;
  for (int m = 0; m < 2; ++m) {
    for (int c = 0; c < 4; ++c) {
      for (int t = 0; t < 4; ++t) {
        expected += (m + 1) * 100 + (c + 1) * 10 + (t + 1);
      }
    }
  }
  EXPECT_DOUBLE_EQ(e.sum_tree(time, root), expected);
}

TEST(Experiment, TotalEqualsSumMetricTree) {
  const Experiment e = make_small();
  const Metric& time = *e.metadata().find_metric("time");
  EXPECT_DOUBLE_EQ(e.total(time), e.sum_metric_tree(time));
}

TEST(Experiment, CloneCopiesEverything) {
  Experiment e = make_small();
  e.set_attribute("extra", "1");
  const Experiment copy = e.clone();
  EXPECT_EQ(copy.name(), e.name());
  EXPECT_EQ(copy.attribute("extra"), "1");
  const Metadata& md = copy.metadata();
  for (MetricIndex m = 0; m < md.num_metrics(); ++m) {
    for (CnodeIndex c = 0; c < md.num_cnodes(); ++c) {
      for (ThreadIndex t = 0; t < md.num_threads(); ++t) {
        EXPECT_DOUBLE_EQ(copy.severity().get(m, c, t),
                         e.severity().get(m, c, t));
      }
    }
  }
  // Independent severity.
  e.severity().set(0, 0, 0, 12345.0);
  EXPECT_NE(copy.severity().get(0, 0, 0), 12345.0);
}

TEST(Experiment, CloneCanChangeStorageKind) {
  const Experiment e = make_small(StorageKind::Dense);
  const Experiment sparse = e.clone(StorageKind::Sparse);
  EXPECT_EQ(sparse.severity().kind(), StorageKind::Sparse);
  EXPECT_DOUBLE_EQ(sparse.severity().get(1, 1, 1),
                   e.severity().get(1, 1, 1));
}

}  // namespace
}  // namespace cube
