#include "model/metadata.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace cube {
namespace {

Metadata make_filled() {
  Metadata md;
  const Metric& time =
      md.add_metric(nullptr, "time", "Time", Unit::Seconds, "");
  md.add_metric(&time, "mpi", "MPI", Unit::Seconds, "");
  const Region& r_main = md.add_region("main", "a.c", 1, 99);
  const Region& r_f = md.add_region("f", "a.c", 10, 20);
  const CallSite& cs = md.add_callsite(r_f, "a.c", 12);
  const Cnode& c_main = md.add_cnode_for_region(nullptr, r_main);
  md.add_cnode(&c_main, cs);
  Machine& m = md.add_machine("mach");
  SysNode& n = md.add_node(m, "node");
  Process& p = md.add_process(n, "rank 0", 0);
  md.add_thread(p, "t0", 0);
  return md;
}

TEST(Metadata, CountsAndRoots) {
  const Metadata md = make_filled();
  EXPECT_EQ(md.num_metrics(), 2u);
  EXPECT_EQ(md.num_cnodes(), 2u);
  EXPECT_EQ(md.num_threads(), 1u);
  EXPECT_EQ(md.metric_roots().size(), 1u);
  EXPECT_EQ(md.cnode_roots().size(), 1u);
}

TEST(Metadata, Lookups) {
  const Metadata md = make_filled();
  ASSERT_NE(md.find_metric("mpi"), nullptr);
  EXPECT_EQ(md.find_metric("nope"), nullptr);
  ASSERT_NE(md.find_region("f", "a.c"), nullptr);
  EXPECT_EQ(md.find_region("f", "b.c"), nullptr);
  ASSERT_NE(md.find_process(0), nullptr);
  EXPECT_EQ(md.find_process(5), nullptr);
}

TEST(Metadata, CnodePathRendering) {
  const Metadata md = make_filled();
  EXPECT_EQ(md.cnodes()[1]->path(), "main/f");
  EXPECT_EQ(md.cnodes()[1]->depth(), 1u);
}

TEST(Metadata, DuplicateRankRejected) {
  Metadata md;
  Machine& m = md.add_machine("mach");
  SysNode& n = md.add_node(m, "node");
  md.add_process(n, "a", 0);
  EXPECT_THROW((void)md.add_process(n, "b", 0), ValidationError);
}

TEST(Metadata, DuplicateThreadIdWithinProcessRejected) {
  Metadata md;
  Machine& m = md.add_machine("mach");
  SysNode& n = md.add_node(m, "node");
  Process& p = md.add_process(n, "a", 0);
  md.add_thread(p, "t0", 0);
  EXPECT_THROW((void)md.add_thread(p, "t0b", 0), ValidationError);
}

TEST(Metadata, SameThreadIdInDifferentProcessesAllowed) {
  Metadata md;
  Machine& m = md.add_machine("mach");
  SysNode& n = md.add_node(m, "node");
  Process& p0 = md.add_process(n, "a", 0);
  Process& p1 = md.add_process(n, "b", 1);
  md.add_thread(p0, "t0", 0);
  EXPECT_NO_THROW((void)md.add_thread(p1, "t0", 0));
}

TEST(Metadata, ValidateRejectsThreadlessProcess) {
  Metadata md;
  Machine& m = md.add_machine("mach");
  SysNode& n = md.add_node(m, "node");
  md.add_process(n, "a", 0);
  EXPECT_THROW(md.validate(), ValidationError);
}

TEST(Metadata, ValidateAcceptsFilled) {
  EXPECT_NO_THROW(make_filled().validate());
}

TEST(Metadata, ForeignEntityRejected) {
  Metadata md1;
  Metadata md2;
  const Region& foreign = md2.add_region("f", "x.c", 1, 2);
  EXPECT_THROW((void)md1.add_callsite(foreign, "x.c", 1), ValidationError);
}

TEST(Metadata, CloneIsDeepAndIndexPreserving) {
  const Metadata md = make_filled();
  const auto copy = md.clone();
  EXPECT_EQ(copy->num_metrics(), md.num_metrics());
  EXPECT_EQ(copy->num_cnodes(), md.num_cnodes());
  EXPECT_EQ(copy->num_threads(), md.num_threads());
  // Indices preserved.
  for (std::size_t i = 0; i < md.num_metrics(); ++i) {
    EXPECT_EQ(copy->metrics()[i]->unique_name(),
              md.metrics()[i]->unique_name());
    EXPECT_EQ(copy->metrics()[i]->index(), i);
  }
  // Deep: entities are distinct objects.
  EXPECT_NE(copy->metrics()[0].get(), md.metrics()[0].get());
  // Structure preserved.
  EXPECT_EQ(copy->cnodes()[1]->parent(), copy->cnodes()[0].get());
  EXPECT_NO_THROW(copy->validate());
}

TEST(Metadata, CloneCopiesTopology) {
  Metadata md;
  Machine& m = md.add_machine("mach");
  SysNode& n = md.add_node(m, "node");
  Process& p = md.add_process(n, "a", 0);
  p.set_coords({1, 2});
  md.add_thread(p, "t", 0);
  const auto copy = md.clone();
  ASSERT_TRUE(copy->processes()[0]->coords().has_value());
  EXPECT_EQ(*copy->processes()[0]->coords(), (std::vector<long>{1, 2}));
}

TEST(Metadata, ValidateRejectsImproperRegionNesting) {
  // "Regions must be properly nested" (paper section 2): overlapping
  // without containment is invalid.
  Metadata md = make_filled();
  md.add_region("overlap", "a.c", 15, 30);  // straddles f's [10, 20]
  EXPECT_THROW(md.validate(), ValidationError);
}

TEST(Metadata, ValidateAcceptsNestedAndDisjointRegions) {
  Metadata md = make_filled();           // main [1,99] contains f [10,20]
  md.add_region("g", "a.c", 30, 40);     // disjoint from f, inside main
  md.add_region("inner", "a.c", 12, 15); // nested inside f
  md.add_region("other", "b.c", 15, 30); // other module: no constraint
  EXPECT_NO_THROW(md.validate());
}

TEST(Metadata, ValidateIgnoresUnknownLineRanges) {
  Metadata md = make_filled();
  md.add_region("mpi_call", "a.c", -1, -1);  // no line info
  EXPECT_NO_THROW(md.validate());
}

TEST(Metadata, ThreadRankReflectsProcess) {
  const Metadata md = make_filled();
  EXPECT_EQ(md.threads()[0]->rank(), 0);
  EXPECT_EQ(&md.threads()[0]->process(), md.processes()[0].get());
}

}  // namespace
}  // namespace cube
