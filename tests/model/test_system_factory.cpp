#include "model/system_factory.hpp"

#include <gtest/gtest.h>

namespace cube {
namespace {

TEST(SystemFactory, BuildsRegularHierarchy) {
  Metadata md;
  const auto threads = build_regular_system(md, "cluster", 2, 3);
  EXPECT_EQ(md.machines().size(), 1u);
  EXPECT_EQ(md.nodes().size(), 2u);
  EXPECT_EQ(md.processes().size(), 6u);
  EXPECT_EQ(threads.size(), 6u);
  EXPECT_EQ(md.machines()[0]->name(), "cluster");
  // Ranks node-major, one thread each.
  for (long r = 0; r < 6; ++r) {
    const Process* p = md.find_process(r);
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(p->threads().size(), 1u);
  }
  EXPECT_EQ(&md.processes()[0]->node(), md.nodes()[0].get());
  EXPECT_EQ(&md.processes()[3]->node(), md.nodes()[1].get());
  EXPECT_NO_THROW(md.validate());
}

TEST(SystemFactory, ThreadOrderMatchesRankOrder) {
  Metadata md;
  const auto threads = build_regular_system(md, "c", 2, 2);
  for (std::size_t r = 0; r < threads.size(); ++r) {
    EXPECT_EQ(threads[r]->rank(), static_cast<long>(r));
    EXPECT_EQ(threads[r]->index(), r);
  }
}

TEST(SystemFactory, AttachesTopologyCoords) {
  Metadata md;
  std::vector<std::vector<long>> coords = {{0, 0}, {1, 0}, {0, 1}, {1, 1}};
  build_regular_system(md, "c", 1, 4, coords);
  ASSERT_TRUE(md.processes()[3]->coords().has_value());
  EXPECT_EQ(*md.processes()[3]->coords(), (std::vector<long>{1, 1}));
}

TEST(SystemFactory, PartialCoordsOnlyAssignedWhereGiven) {
  Metadata md;
  std::vector<std::vector<long>> coords = {{7}};
  build_regular_system(md, "c", 1, 2, coords);
  EXPECT_TRUE(md.processes()[0]->coords().has_value());
  EXPECT_FALSE(md.processes()[1]->coords().has_value());
}

}  // namespace
}  // namespace cube
