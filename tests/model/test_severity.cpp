#include "model/severity.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace cube {
namespace {

/// Both stores must behave identically; every test runs for each kind.
class SeverityStoreTest : public ::testing::TestWithParam<StorageKind> {
 protected:
  std::unique_ptr<SeverityStore> make(std::size_t m = 3, std::size_t c = 4,
                                      std::size_t t = 2) const {
    return make_severity_store(GetParam(), m, c, t);
  }
};

TEST_P(SeverityStoreTest, StartsAllZero) {
  const auto s = make();
  for (MetricIndex m = 0; m < 3; ++m) {
    for (CnodeIndex c = 0; c < 4; ++c) {
      for (ThreadIndex t = 0; t < 2; ++t) {
        EXPECT_EQ(s->get(m, c, t), 0.0);
      }
    }
  }
  EXPECT_EQ(s->nonzero_count(), 0u);
}

TEST_P(SeverityStoreTest, SetGetRoundTrip) {
  auto s = make();
  s->set(1, 2, 1, 3.5);
  EXPECT_DOUBLE_EQ(s->get(1, 2, 1), 3.5);
  EXPECT_EQ(s->get(1, 2, 0), 0.0);
  EXPECT_EQ(s->nonzero_count(), 1u);
}

TEST_P(SeverityStoreTest, SetOverwrites) {
  auto s = make();
  s->set(0, 0, 0, 1.0);
  s->set(0, 0, 0, -2.0);
  EXPECT_DOUBLE_EQ(s->get(0, 0, 0), -2.0);
}

TEST_P(SeverityStoreTest, SetZeroClearsEntry) {
  auto s = make();
  s->set(0, 0, 0, 1.0);
  s->set(0, 0, 0, 0.0);
  EXPECT_EQ(s->get(0, 0, 0), 0.0);
  EXPECT_EQ(s->nonzero_count(), 0u);
}

TEST_P(SeverityStoreTest, AddAccumulates) {
  auto s = make();
  s->add(2, 3, 1, 1.5);
  s->add(2, 3, 1, 2.5);
  EXPECT_DOUBLE_EQ(s->get(2, 3, 1), 4.0);
}

TEST_P(SeverityStoreTest, AddCancellationToZero) {
  auto s = make();
  s->add(0, 1, 0, 5.0);
  s->add(0, 1, 0, -5.0);
  EXPECT_EQ(s->get(0, 1, 0), 0.0);
  EXPECT_EQ(s->nonzero_count(), 0u);
}

TEST_P(SeverityStoreTest, NegativeValuesAllowed) {
  auto s = make();
  s->set(0, 0, 0, -7.25);
  EXPECT_DOUBLE_EQ(s->get(0, 0, 0), -7.25);
  EXPECT_EQ(s->nonzero_count(), 1u);
}

TEST_P(SeverityStoreTest, OutOfRangeThrows) {
  auto s = make();
  EXPECT_THROW((void)s->get(3, 0, 0), Error);
  EXPECT_THROW((void)s->get(0, 4, 0), Error);
  EXPECT_THROW((void)s->get(0, 0, 2), Error);
  EXPECT_THROW(s->set(3, 0, 0, 1.0), Error);
  EXPECT_THROW(s->add(0, 0, 2, 1.0), Error);
}

TEST_P(SeverityStoreTest, DimensionsReported) {
  const auto s = make(5, 6, 7);
  EXPECT_EQ(s->num_metrics(), 5u);
  EXPECT_EQ(s->num_cnodes(), 6u);
  EXPECT_EQ(s->num_threads(), 7u);
}

TEST_P(SeverityStoreTest, CloneIsIndependent) {
  auto s = make();
  s->set(1, 1, 1, 9.0);
  const auto copy = s->clone();
  EXPECT_DOUBLE_EQ(copy->get(1, 1, 1), 9.0);
  EXPECT_EQ(copy->kind(), s->kind());
  s->set(1, 1, 1, 0.0);
  EXPECT_DOUBLE_EQ(copy->get(1, 1, 1), 9.0);
}

TEST_P(SeverityStoreTest, MemoryBytesIsPositiveWhenPopulated) {
  auto s = make();
  s->set(0, 0, 0, 1.0);
  EXPECT_GT(s->memory_bytes(), 0u);
}

INSTANTIATE_TEST_SUITE_P(AllKinds, SeverityStoreTest,
                         ::testing::Values(StorageKind::Dense,
                                           StorageKind::Sparse),
                         [](const auto& info) {
                           return info.param == StorageKind::Dense
                                      ? "Dense"
                                      : "Sparse";
                         });

TEST(SeverityStorage, SparseUsesLessMemoryWhenSparse) {
  auto dense = make_severity_store(StorageKind::Dense, 50, 50, 50);
  auto sparse = make_severity_store(StorageKind::Sparse, 50, 50, 50);
  dense->set(1, 2, 3, 1.0);
  sparse->set(1, 2, 3, 1.0);
  EXPECT_LT(sparse->memory_bytes(), dense->memory_bytes());
}

TEST(SeverityStorage, KindsReportedCorrectly) {
  EXPECT_EQ(make_severity_store(StorageKind::Dense, 1, 1, 1)->kind(),
            StorageKind::Dense);
  EXPECT_EQ(make_severity_store(StorageKind::Sparse, 1, 1, 1)->kind(),
            StorageKind::Sparse);
}

}  // namespace
}  // namespace cube
