#include "model/severity.hpp"

#include <cstdint>
#include <span>
#include <vector>

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace cube {
namespace {

/// Both stores must behave identically; every test runs for each kind.
class SeverityStoreTest : public ::testing::TestWithParam<StorageKind> {
 protected:
  std::unique_ptr<SeverityStore> make(std::size_t m = 3, std::size_t c = 4,
                                      std::size_t t = 2) const {
    return make_severity_store(GetParam(), m, c, t);
  }
};

TEST_P(SeverityStoreTest, StartsAllZero) {
  const auto s = make();
  for (MetricIndex m = 0; m < 3; ++m) {
    for (CnodeIndex c = 0; c < 4; ++c) {
      for (ThreadIndex t = 0; t < 2; ++t) {
        EXPECT_EQ(s->get(m, c, t), 0.0);
      }
    }
  }
  EXPECT_EQ(s->nonzero_count(), 0u);
}

TEST_P(SeverityStoreTest, SetGetRoundTrip) {
  auto s = make();
  s->set(1, 2, 1, 3.5);
  EXPECT_DOUBLE_EQ(s->get(1, 2, 1), 3.5);
  EXPECT_EQ(s->get(1, 2, 0), 0.0);
  EXPECT_EQ(s->nonzero_count(), 1u);
}

TEST_P(SeverityStoreTest, SetOverwrites) {
  auto s = make();
  s->set(0, 0, 0, 1.0);
  s->set(0, 0, 0, -2.0);
  EXPECT_DOUBLE_EQ(s->get(0, 0, 0), -2.0);
}

TEST_P(SeverityStoreTest, SetZeroClearsEntry) {
  auto s = make();
  s->set(0, 0, 0, 1.0);
  s->set(0, 0, 0, 0.0);
  EXPECT_EQ(s->get(0, 0, 0), 0.0);
  EXPECT_EQ(s->nonzero_count(), 0u);
}

TEST_P(SeverityStoreTest, AddAccumulates) {
  auto s = make();
  s->add(2, 3, 1, 1.5);
  s->add(2, 3, 1, 2.5);
  EXPECT_DOUBLE_EQ(s->get(2, 3, 1), 4.0);
}

TEST_P(SeverityStoreTest, AddCancellationToZero) {
  auto s = make();
  s->add(0, 1, 0, 5.0);
  s->add(0, 1, 0, -5.0);
  EXPECT_EQ(s->get(0, 1, 0), 0.0);
  EXPECT_EQ(s->nonzero_count(), 0u);
}

TEST_P(SeverityStoreTest, NegativeValuesAllowed) {
  auto s = make();
  s->set(0, 0, 0, -7.25);
  EXPECT_DOUBLE_EQ(s->get(0, 0, 0), -7.25);
  EXPECT_EQ(s->nonzero_count(), 1u);
}

TEST_P(SeverityStoreTest, OutOfRangeThrows) {
  auto s = make();
  EXPECT_THROW((void)s->get(3, 0, 0), Error);
  EXPECT_THROW((void)s->get(0, 4, 0), Error);
  EXPECT_THROW((void)s->get(0, 0, 2), Error);
  EXPECT_THROW(s->set(3, 0, 0, 1.0), Error);
  EXPECT_THROW(s->add(0, 0, 2, 1.0), Error);
}

TEST_P(SeverityStoreTest, DimensionsReported) {
  const auto s = make(5, 6, 7);
  EXPECT_EQ(s->num_metrics(), 5u);
  EXPECT_EQ(s->num_cnodes(), 6u);
  EXPECT_EQ(s->num_threads(), 7u);
}

TEST_P(SeverityStoreTest, CloneIsIndependent) {
  auto s = make();
  s->set(1, 1, 1, 9.0);
  const auto copy = s->clone();
  EXPECT_DOUBLE_EQ(copy->get(1, 1, 1), 9.0);
  EXPECT_EQ(copy->kind(), s->kind());
  s->set(1, 1, 1, 0.0);
  EXPECT_DOUBLE_EQ(copy->get(1, 1, 1), 9.0);
}

TEST_P(SeverityStoreTest, MemoryBytesIsPositiveWhenPopulated) {
  auto s = make();
  s->set(0, 0, 0, 1.0);
  EXPECT_GT(s->memory_bytes(), 0u);
}

INSTANTIATE_TEST_SUITE_P(AllKinds, SeverityStoreTest,
                         ::testing::Values(StorageKind::Dense,
                                           StorageKind::Sparse),
                         [](const auto& info) {
                           return info.param == StorageKind::Dense
                                      ? "Dense"
                                      : "Sparse";
                         });

TEST(SeverityStorage, SparseUsesLessMemoryWhenSparse) {
  auto dense = make_severity_store(StorageKind::Dense, 50, 50, 50);
  auto sparse = make_severity_store(StorageKind::Sparse, 50, 50, 50);
  dense->set(1, 2, 3, 1.0);
  sparse->set(1, 2, 3, 1.0);
  EXPECT_LT(sparse->memory_bytes(), dense->memory_bytes());
}

TEST(SeverityStorage, KindsReportedCorrectly) {
  EXPECT_EQ(make_severity_store(StorageKind::Dense, 1, 1, 1)->kind(),
            StorageKind::Dense);
  EXPECT_EQ(make_severity_store(StorageKind::Sparse, 1, 1, 1)->kind(),
            StorageKind::Sparse);
}

// --- bulk access layer (docs/STORAGE.md) -----------------------------------

TEST(DenseBulkAccess, CellsFollowRowMajorLayout) {
  DenseSeverity s(2, 3, 4);
  EXPECT_EQ(s.plane_size(), 12u);
  EXPECT_EQ(s.num_cells(), 24u);
  s.set(1, 2, 3, 7.5);
  const std::span<const Severity> cells = s.cells();
  ASSERT_EQ(cells.size(), 24u);
  EXPECT_EQ(cells[(1 * 3 + 2) * 4 + 3], 7.5);
}

TEST(DenseBulkAccess, MutableRangeWritesThrough) {
  DenseSeverity s(2, 2, 2);
  const std::span<Severity> range = s.cells_mut(4, 8);  // metric row 1
  ASSERT_EQ(range.size(), 4u);
  range[1] = 3.25;  // cell 5 = (m=1, c=0, t=1)
  EXPECT_EQ(s.get(1, 0, 1), 3.25);
  const std::span<const Severity> view = s.cells(4, 6);
  EXPECT_EQ(view[1], 3.25);
}

TEST(SparseBulkAccess, SortedCellsAscendingByFlattenedKey) {
  SparseSeverity s(2, 3, 4);
  s.set(1, 2, 3, 1.0);
  s.set(0, 0, 1, 2.0);
  s.set(1, 0, 0, 3.0);
  const auto cells = s.sorted_cells();
  ASSERT_EQ(cells.size(), 3u);
  EXPECT_EQ(cells[0].first, 1u);  // (0,0,1)
  EXPECT_EQ(cells[0].second, 2.0);
  EXPECT_EQ(cells[1].first, 12u);  // (1,0,0)
  EXPECT_EQ(cells[1].second, 3.0);
  EXPECT_EQ(cells[2].first, 23u);  // (1,2,3)
  EXPECT_EQ(cells[2].second, 1.0);
}

TEST(SparseBulkAccess, ForEachNonzeroVisitsRangeInOrder) {
  SparseSeverity s(2, 3, 4);
  s.set(0, 0, 1, 2.0);
  s.set(1, 0, 0, 3.0);
  s.set(1, 2, 3, 1.0);
  std::vector<std::uint64_t> keys;
  s.for_each_nonzero(1, 23, [&](std::uint64_t k, Severity v) {
    keys.push_back(k);
    EXPECT_NE(v, 0.0);
  });
  ASSERT_EQ(keys.size(), 2u);  // key 23 excluded (half-open range)
  EXPECT_EQ(keys[0], 1u);
  EXPECT_EQ(keys[1], 12u);
}

TEST(SparseBulkAccess, ErasedEntriesNeverVisited) {
  SparseSeverity s(1, 2, 2);
  s.set(0, 0, 0, 5.0);
  s.add(0, 0, 0, -5.0);  // exact cancellation erases the entry
  EXPECT_TRUE(s.sorted_cells().empty());
  std::size_t visited = 0;
  s.for_each_nonzero(0, s.num_cells(),
                     [&](std::uint64_t, Severity) { ++visited; });
  EXPECT_EQ(visited, 0u);
}

}  // namespace
}  // namespace cube
