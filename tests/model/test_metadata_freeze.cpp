// The build-then-freeze metadata lifecycle: mutation guards, structural
// digests, and the interner that deduplicates frozen instances.
#include <gtest/gtest.h>

#include <memory>

#include "common/error.hpp"
#include "model/metadata.hpp"

namespace cube {
namespace {

std::unique_ptr<Metadata> build_tiny() {
  auto md = std::make_unique<Metadata>();
  const Metric& time =
      md->add_metric(nullptr, "time", "Time", Unit::Seconds, "total");
  md->add_metric(&time, "mpi", "MPI", Unit::Seconds, "mpi time");
  const Region& r_main = md->add_region("main", "app.c", 1, 100);
  const Region& r_work = md->add_region("work", "app.c", 10, 50);
  const Cnode& c_main = md->add_cnode_for_region(nullptr, r_main, "app.c", 1);
  md->add_cnode_for_region(&c_main, r_work, "app.c", 12);
  Machine& machine = md->add_machine("m0");
  SysNode& node = md->add_node(machine, "n0");
  Process& p = md->add_process(node, "rank 0", 0);
  md->add_thread(p, "thread 0", 0);
  md->validate();
  return md;
}

TEST(MetadataFreeze, StartsMutableAndUndigested) {
  auto md = build_tiny();
  EXPECT_FALSE(md->frozen());
  EXPECT_THROW((void)md->digest(), Error);
}

TEST(MetadataFreeze, FreezeBlocksEveryFactory) {
  auto md = build_tiny();
  md->freeze();
  EXPECT_TRUE(md->frozen());
  EXPECT_THROW(md->add_metric(nullptr, "x", "X", Unit::Seconds, ""),
               ValidationError);
  EXPECT_THROW(md->add_region("r", "f.c", 1, 2), ValidationError);
  EXPECT_THROW(md->add_machine("m1"), ValidationError);
}

TEST(MetadataFreeze, FreezeIsIdempotent) {
  auto md = build_tiny();
  md->freeze();
  const std::uint64_t d = md->digest();
  md->freeze();
  EXPECT_EQ(md->digest(), d);
}

TEST(MetadataFreeze, IdenticalStructuresHashEqual) {
  auto a = build_tiny();
  auto b = build_tiny();
  a->freeze();
  b->freeze();
  EXPECT_EQ(a->digest(), b->digest());
}

TEST(MetadataFreeze, EveryDimensionFeedsTheDigest) {
  auto base = build_tiny();
  base->freeze();
  const std::uint64_t d = base->digest();

  {  // metric dimension
    auto md = build_tiny();
    md->add_metric(nullptr, "visits", "Visits", Unit::Occurrences, "");
    md->freeze();
    EXPECT_NE(md->digest(), d);
  }
  {  // program dimension
    auto md = build_tiny();
    const Region& io = md->add_region("io", "app.c", 60, 80);
    md->add_cnode_for_region(md->cnode_roots()[0], io, "app.c", 62);
    md->freeze();
    EXPECT_NE(md->digest(), d);
  }
  {  // system dimension
    auto md = build_tiny();
    Process& p = md->add_process(*md->nodes()[0], "rank 1", 1);
    md->add_thread(p, "thread 0", 0);
    md->freeze();
    EXPECT_NE(md->digest(), d);
  }
  {  // topology coordinates
    auto md = build_tiny();
    md->processes()[0]->set_coords({0, 1});
    md->freeze();
    EXPECT_NE(md->digest(), d);
  }
}

TEST(MetadataFreeze, CloneIsUnfrozenAndHashesEqualAfterFreeze) {
  auto md = build_tiny();
  md->freeze();
  auto copy = md->clone();
  EXPECT_FALSE(copy->frozen());
  copy->freeze();
  EXPECT_EQ(copy->digest(), md->digest());
}

TEST(MetadataFreeze, FreezeMetadataHelperFreezes) {
  const std::shared_ptr<const Metadata> shared =
      freeze_metadata(build_tiny());
  ASSERT_NE(shared, nullptr);
  EXPECT_TRUE(shared->frozen());
  EXPECT_NE(shared->digest(), 0u);
}

TEST(MetadataInternerTest, DeduplicatesByDigest) {
  MetadataInterner interner;
  const auto a = interner.intern(freeze_metadata(build_tiny()));
  const auto b = interner.intern(freeze_metadata(build_tiny()));
  EXPECT_EQ(a.get(), b.get());
  EXPECT_EQ(interner.size(), 1u);
}

TEST(MetadataInternerTest, DistinctStructuresStayDistinct) {
  MetadataInterner interner;
  auto variant = build_tiny();
  variant->add_metric(nullptr, "visits", "Visits", Unit::Occurrences, "");
  const auto a = interner.intern(freeze_metadata(build_tiny()));
  const auto b = interner.intern(freeze_metadata(std::move(variant)));
  EXPECT_NE(a.get(), b.get());
  EXPECT_EQ(interner.size(), 2u);
}

TEST(MetadataInternerTest, LookupFindsLiveEntries) {
  MetadataInterner interner;
  const auto a = interner.intern(freeze_metadata(build_tiny()));
  EXPECT_EQ(interner.lookup(a->digest()).get(), a.get());
  EXPECT_EQ(interner.lookup(a->digest() ^ 1u), nullptr);
}

TEST(MetadataInternerTest, DroppedInstancesExpire) {
  MetadataInterner interner;
  std::uint64_t digest = 0;
  {
    const auto a = interner.intern(freeze_metadata(build_tiny()));
    digest = a->digest();
  }
  // The pool holds weak references only: once the last owner is gone, the
  // digest resolves to nothing and a re-intern starts a fresh entry.
  EXPECT_EQ(interner.lookup(digest), nullptr);
  const auto b = interner.intern(freeze_metadata(build_tiny()));
  EXPECT_EQ(b->digest(), digest);
  EXPECT_EQ(interner.size(), 1u);
}

}  // namespace
}  // namespace cube
