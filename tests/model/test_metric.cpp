#include "model/metric.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "model/metadata.hpp"

namespace cube {
namespace {

TEST(Unit, Names) {
  EXPECT_EQ(unit_name(Unit::Seconds), "sec");
  EXPECT_EQ(unit_name(Unit::Bytes), "bytes");
  EXPECT_EQ(unit_name(Unit::Occurrences), "occ");
}

TEST(Unit, ParseAcceptsAliases) {
  EXPECT_EQ(parse_unit("sec"), Unit::Seconds);
  EXPECT_EQ(parse_unit("SECONDS"), Unit::Seconds);
  EXPECT_EQ(parse_unit(" s "), Unit::Seconds);
  EXPECT_EQ(parse_unit("bytes"), Unit::Bytes);
  EXPECT_EQ(parse_unit("occ"), Unit::Occurrences);
  EXPECT_EQ(parse_unit("count"), Unit::Occurrences);
}

TEST(Unit, ParseRejectsUnknown) {
  EXPECT_THROW((void)parse_unit("furlongs"), Error);
}

TEST(Metric, TreeStructure) {
  Metadata md;
  const Metric& root =
      md.add_metric(nullptr, "time", "Time", Unit::Seconds, "r");
  const Metric& child =
      md.add_metric(&root, "mpi", "MPI", Unit::Seconds, "c");
  const Metric& grand =
      md.add_metric(&child, "p2p", "P2P", Unit::Seconds, "g");

  EXPECT_TRUE(root.is_root());
  EXPECT_FALSE(child.is_root());
  EXPECT_EQ(child.parent(), &root);
  ASSERT_EQ(root.children().size(), 1u);
  EXPECT_EQ(root.children()[0], &child);
  EXPECT_EQ(&grand.root(), &root);
  EXPECT_EQ(grand.depth(), 2u);
  EXPECT_EQ(root.depth(), 0u);
}

TEST(Metric, IndicesAreDenseAndOrdered) {
  Metadata md;
  const Metric& a = md.add_metric(nullptr, "a", "a", Unit::Bytes, "");
  const Metric& b = md.add_metric(nullptr, "b", "b", Unit::Bytes, "");
  EXPECT_EQ(a.index(), 0u);
  EXPECT_EQ(b.index(), 1u);
}

TEST(Metric, UnitMismatchWithParentRejected) {
  Metadata md;
  const Metric& root =
      md.add_metric(nullptr, "cache", "Cache", Unit::Occurrences, "");
  EXPECT_THROW(
      (void)md.add_metric(&root, "t", "t", Unit::Seconds, ""),
      ValidationError);
}

TEST(Metric, DuplicateUniqueNameRejected) {
  Metadata md;
  (void)md.add_metric(nullptr, "time", "Time", Unit::Seconds, "");
  EXPECT_THROW((void)md.add_metric(nullptr, "time", "t2", Unit::Seconds, ""),
               ValidationError);
}

}  // namespace
}  // namespace cube
