// Static plan analyzer (query/analyze.hpp): golden accuracy tests pinning
// the cost model against the executor's measured counters, and one
// error-path test per plan.*/cost.* diagnostic.
//
// Every analyze_plan call in this file runs inside expect_no_severity_io,
// which asserts the analyzer's core contract: predictions come from
// metadata blobs and severity-blob HEADERS alone — the io.sev.bytes_read
// counter must not advance.
#include "query/analyze.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "lint/diagnostics.hpp"
#include "obs/metrics.hpp"
#include "query/engine.hpp"
#include "testutil.hpp"

namespace cube::query {
namespace {

using cube::testing::make_small;
using cube::testing::make_variant;
using lint::DiagnosticSink;
using lint::Level;

std::uint64_t sev_bytes_read() {
  return obs::MetricsRegistry::global()
      .counter("io.sev.bytes_read", obs::SampleUnit::Bytes)
      .value();
}

/// Sum of the four severity-kernel cell counters of one run — the
/// measured counterpart of CostEstimate::cells_traversed.
std::uint64_t measured_cells(const QueryStats& stats) {
  return stats.kernel_identity_dense_cells + stats.kernel_remap_dense_cells +
         stats.kernel_identity_sparse_nnz + stats.kernel_remap_sparse_nnz;
}

bool has_rule(const DiagnosticSink& sink, const std::string& rule) {
  for (const auto& d : sink.diagnostics()) {
    if (d.rule == rule) return true;
  }
  return false;
}

std::size_t count_rule(const DiagnosticSink& sink, const std::string& rule) {
  std::size_t n = 0;
  for (const auto& d : sink.diagnostics()) {
    if (d.rule == rule) ++n;
  }
  return n;
}

const lint::Diagnostic& find_diag(const DiagnosticSink& sink,
                                  const std::string& rule) {
  for (const auto& d : sink.diagnostics()) {
    if (d.rule == rule) return d;
  }
  ADD_FAILURE() << "no diagnostic with rule " << rule;
  static const lint::Diagnostic none{};
  return none;
}

using cube::testing::make_unit_clash;

/// A genuinely sparse operand over make_small's metadata: only `fill` of
/// the 48 cells are set, staying below operand preparation's densify
/// threshold (2*nnz >= cells) so the sparse kernels actually run.
Experiment make_sparse_small(const std::string& name, std::size_t fill = 5) {
  Experiment e(cube::testing::small_metadata(), StorageKind::Sparse);
  e.set_name(name);
  for (std::size_t i = 0; i < fill; ++i) {
    const std::size_t cell = i * 11 % 48;  // gcd(11, 48) = 1: distinct cells
    e.severity().set(static_cast<MetricIndex>(cell / 16),
                     static_cast<CnodeIndex>(cell / 4 % 4),
                     static_cast<ThreadIndex>(cell % 4),
                     1.0 + static_cast<double>(i));
  }
  return e;
}

/// Sparse sibling over variant_metadata (72 cells), `fill` cells set.
Experiment make_sparse_variant(const std::string& name,
                               std::size_t fill = 7) {
  Experiment e(cube::testing::variant_metadata(), StorageKind::Sparse);
  e.set_name(name);
  for (std::size_t i = 0; i < fill; ++i) {
    const std::size_t cell = i * 13 % 72;  // gcd(13, 72) = 1
    e.severity().set(static_cast<MetricIndex>(cell / 24),
                     static_cast<CnodeIndex>(cell / 6 % 4),
                     static_cast<ThreadIndex>(cell % 6),
                     2.0 + static_cast<double>(i));
  }
  return e;
}

class PlanAnalyzeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::path(::testing::TempDir()) /
           ("cube_analyze_" + std::string(::testing::UnitTest::GetInstance()
                                              ->current_test_info()
                                              ->name()));
    std::filesystem::remove_all(dir_);
    repo_ = std::make_unique<ExperimentRepository>(dir_);
  }
  void TearDown() override {
    repo_.reset();
    std::filesystem::remove_all(dir_);
  }

  std::string store_salted(const std::string& name, double salt,
                           const std::map<std::string, std::string>& attrs =
                               {}) {
    Experiment e = make_small(StorageKind::Dense, name);
    for (MetricIndex m = 0; m < e.metadata().num_metrics(); ++m) {
      for (CnodeIndex c = 0; c < e.metadata().num_cnodes(); ++c) {
        for (ThreadIndex t = 0; t < e.metadata().num_threads(); ++t) {
          e.severity().add(m, c, t, salt * (1.0 + 0.1 * (m + c + t)));
        }
      }
    }
    for (const auto& [k, v] : attrs) e.set_attribute(k, v);
    return repo_->store(e);
  }

  QueryPlan make_plan(const std::string& text) {
    return plan_query(*parse_query(text), *repo_, {});
  }

  /// analyze_plan wrapped in the zero-severity-bytes assertion.
  PlanAnalysis analyze(const QueryPlan& plan, DiagnosticSink& sink,
                       AnalyzeOptions options = {},
                       const ExperimentRepository* repo = nullptr) {
    const std::uint64_t before = sev_bytes_read();
    PlanAnalysis a =
        analyze_plan(plan, repo ? *repo : *repo_, sink, options);
    EXPECT_EQ(sev_bytes_read(), before)
        << "the analyzer read severity payload";
    return a;
  }

  std::filesystem::path dir_;
  std::unique_ptr<ExperimentRepository> repo_;
};

// ---------------------------------------------------------------------------
// Golden accuracy: predicted vs measured.

TEST_F(PlanAnalyzeTest, IdentityDensePredictionsAreExact) {
  store_salted("a1", 0.125, {{"run", "before"}});
  store_salted("a2", 0.25, {{"run", "before"}});
  store_salted("a3", 0.375, {{"run", "before"}});

  const QueryPlan plan = make_plan("mean(attr(run=before))");
  DiagnosticSink sink;
  AnalyzeOptions options;
  options.use_cache = false;
  const PlanAnalysis analysis = analyze(plan, sink, options);

  EXPECT_TRUE(analysis.compatible);
  EXPECT_TRUE(analysis.exact) << "identical metadata must predict exactly";

  // Geometry: make_small is 3 metrics x 4 cnodes x 4 threads = 48 cells,
  // and the mean of three identical-metadata runs keeps that shape.
  const NodeCost& root = analysis.nodes[plan.root];
  ASSERT_TRUE(root.geometry_known);
  EXPECT_EQ(root.metrics, 3u);
  EXPECT_EQ(root.cnodes, 4u);
  EXPECT_EQ(root.threads, 4u);
  EXPECT_EQ(root.cells, 48u);
  EXPECT_EQ(root.result_bytes, 48u * sizeof(Severity));
  EXPECT_EQ(analysis.cold.cells_traversed, 3u * 48u);
  EXPECT_EQ(analysis.cold.intermediate_bytes, root.result_bytes);
  EXPECT_EQ(analysis.cold.peak_resident_bytes, 4u * root.result_bytes);

  // Measured: the executor's counters must match the exact prediction.
  QueryOptions run_options;
  run_options.threads = 1;
  run_options.use_cache = false;
  run_options.store_derived = false;
  QueryEngine engine(*repo_, run_options);
  const QueryResult result = engine.run("mean(attr(run=before))");
  EXPECT_EQ(analysis.cold.nodes_executed, result.stats.nodes_executed);
  EXPECT_EQ(analysis.cold.operands_loaded, result.stats.operands_loaded);
  EXPECT_EQ(analysis.cold.nodes_evaluated, result.stats.nodes_evaluated);
  EXPECT_EQ(analysis.cold.bytes_loaded, result.stats.bytes_loaded);
  EXPECT_EQ(analysis.cold.cells_traversed, measured_cells(result.stats));
  EXPECT_EQ(result.stats.kernel_identity_dense_cells,
            analysis.cold.cells_traversed)
      << "identical metadata must take the identity kernel";
  EXPECT_EQ(result.stats.kernel_remap_dense_cells, 0u);
}

TEST_F(PlanAnalyzeTest, RemapPredictionsReplicateTheKernelGrid) {
  repo_->store(make_small(StorageKind::Dense, "small"));
  repo_->store(make_variant(StorageKind::Dense, "variant"));

  const QueryPlan plan = make_plan("mean(small, variant)");
  DiagnosticSink sink;
  AnalyzeOptions options;
  options.use_cache = false;
  const PlanAnalysis analysis = analyze(plan, sink, options);

  EXPECT_TRUE(analysis.compatible);
  EXPECT_TRUE(analysis.exact)
      << "remapped dense operands are predictable exactly from the "
         "deterministic chunk/tile grid";

  // Merged geometry: metrics {time, mpi, visits, flops}, cnodes
  // {main, work, MPI_Send, io, net}, threads 3 ranks x 2 = 6.
  const NodeCost& root = analysis.nodes[plan.root];
  ASSERT_TRUE(root.geometry_known);
  EXPECT_EQ(root.metrics, 4u);
  EXPECT_EQ(root.cnodes, 5u);
  EXPECT_EQ(root.threads, 6u);
  EXPECT_EQ(root.cells, 120u);

  // Traversal: the scatter kernels re-count each 6-cell output row once
  // per chunk (and tile) of the fixed 32-chunk grid over the 120-cell
  // result it straddles, so the exact count exceeds the naive sum of the
  // operands' own cells (48 + 72).  Worked by hand: 108 + 162.
  EXPECT_GT(analysis.cold.cells_traversed, 48u + 72u);
  EXPECT_EQ(analysis.cold.cells_traversed, 108u + 162u);

  QueryOptions run_options;
  run_options.threads = 1;
  run_options.use_cache = false;
  run_options.store_derived = false;
  QueryEngine engine(*repo_, run_options);
  const QueryResult result = engine.run("mean(small, variant)");
  EXPECT_EQ(measured_cells(result.stats), analysis.cold.cells_traversed);
  EXPECT_EQ(result.stats.kernel_remap_dense_cells,
            analysis.cold.cells_traversed)
      << "differing metadata must take the remap kernel";
  EXPECT_EQ(analysis.cold.bytes_loaded, result.stats.bytes_loaded);

  // Differing (rank, thread id) sets are worth a note, not an error.
  EXPECT_TRUE(has_rule(sink, "plan.thread-shape"));
  EXPECT_FALSE(sink.reached(Level::Warning));
}

TEST_F(PlanAnalyzeTest, SparseColumnarPredictionsComeFromBlobHeaders) {
  Experiment s1 = make_sparse_small("s1");
  Experiment s2 = make_sparse_small("s2", 7);
  repo_->store(s1, RepoFormat::Columnar);
  repo_->store(s2, RepoFormat::Columnar);

  const QueryPlan plan = make_plan("diff(s1, s2)");
  DiagnosticSink sink;
  AnalyzeOptions options;
  options.use_cache = false;
  const PlanAnalysis analysis = analyze(plan, sink, options);

  EXPECT_TRUE(analysis.compatible);
  EXPECT_TRUE(analysis.exact);

  // Each operand's storage kind and nnz come from its CUBESEV1 header;
  // below the densify threshold they stay sparse, so the kernels visit
  // exactly the stored non-zeros (5 + 7).
  std::uint64_t predicted_nnz = 0;
  for (std::size_t i = 0; i < plan.nodes.size(); ++i) {
    if (plan.nodes[i].kind != PlanNode::Kind::Load) continue;
    EXPECT_EQ(analysis.nodes[i].storage, StorageKind::Sparse);
    EXPECT_TRUE(analysis.nodes[i].nnz == 5u || analysis.nodes[i].nnz == 7u)
        << analysis.nodes[i].nnz;
    predicted_nnz += analysis.nodes[i].nnz;
  }
  EXPECT_EQ(predicted_nnz, 12u);
  EXPECT_EQ(analysis.cold.cells_traversed, predicted_nnz);

  QueryOptions run_options;
  run_options.threads = 1;
  run_options.use_cache = false;
  run_options.store_derived = false;
  QueryEngine engine(*repo_, run_options);
  const QueryResult result = engine.run("diff(s1, s2)");
  EXPECT_EQ(measured_cells(result.stats), analysis.cold.cells_traversed);
  EXPECT_EQ(result.stats.kernel_identity_sparse_nnz,
            analysis.cold.cells_traversed)
      << "identical metadata over sparse stores must take the sparse "
         "identity kernel";
  EXPECT_EQ(analysis.cold.bytes_loaded, result.stats.bytes_loaded);
}

TEST_F(PlanAnalyzeTest, SparseRemapPredictionsCountMappedNonZeros) {
  repo_->store(make_sparse_small("s"), RepoFormat::Columnar);
  repo_->store(make_sparse_variant("v"), RepoFormat::Columnar);

  const QueryPlan plan = make_plan("mean(s, v)");
  DiagnosticSink sink;
  AnalyzeOptions options;
  options.use_cache = false;
  const PlanAnalysis analysis = analyze(plan, sink, options);
  EXPECT_TRUE(analysis.exact);
  // Kept-sparse remapped operands gather exactly their stored non-zeros
  // (every metric and cnode is mapped under mean), so no grid
  // re-counting applies: 5 + 7.
  EXPECT_EQ(analysis.cold.cells_traversed, 12u);

  QueryOptions run_options;
  run_options.threads = 1;
  run_options.use_cache = false;
  run_options.store_derived = false;
  QueryEngine engine(*repo_, run_options);
  const QueryResult result = engine.run("mean(s, v)");
  EXPECT_EQ(measured_cells(result.stats), analysis.cold.cells_traversed);
  EXPECT_EQ(result.stats.kernel_remap_sparse_nnz,
            analysis.cold.cells_traversed)
      << "differing metadata over kept-sparse stores must take the sparse "
         "remap kernel";
}

TEST_F(PlanAnalyzeTest, DensifiedSparseOperandsSweepLikeDense) {
  // make_small(Sparse) fills EVERY cell, so 2*nnz >= cells and operand
  // preparation densifies it: the analyzer must predict the dense sweep
  // (48 cells each), not the stored non-zeros.
  repo_->store(make_small(StorageKind::Sparse, "f1"), RepoFormat::Columnar);
  repo_->store(make_small(StorageKind::Sparse, "f2"), RepoFormat::Columnar);

  const QueryPlan plan = make_plan("diff(f1, f2)");
  DiagnosticSink sink;
  AnalyzeOptions options;
  options.use_cache = false;
  const PlanAnalysis analysis = analyze(plan, sink, options);
  EXPECT_EQ(analysis.cold.cells_traversed, 96u);

  QueryOptions run_options;
  run_options.threads = 1;
  run_options.use_cache = false;
  run_options.store_derived = false;
  QueryEngine engine(*repo_, run_options);
  const QueryResult result = engine.run("diff(f1, f2)");
  EXPECT_EQ(measured_cells(result.stats), analysis.cold.cells_traversed);
  EXPECT_EQ(result.stats.kernel_identity_dense_cells,
            analysis.cold.cells_traversed)
      << "full sparse operands must densify into the dense identity kernel";
}

TEST_F(PlanAnalyzeTest, WarmPassPredictsCacheHitsWithoutExecuting) {
  store_salted("a1", 0.125, {{"run", "before"}});
  store_salted("a2", 0.25, {{"run", "before"}});
  store_salted("b1", -0.5, {{"run", "after"}});
  const std::string query =
      "diff(mean(attr(run=before)), mean(attr(run=after)))";

  QueryOptions run_options;
  run_options.threads = 1;
  run_options.use_cache = true;
  run_options.store_derived = true;
  QueryEngine engine(*repo_, run_options);

  // Cold prediction, validated against the first (cache-filling) run.
  {
    const QueryPlan plan = make_plan(query);
    DiagnosticSink sink;
    const PlanAnalysis analysis = analyze(plan, sink);
    EXPECT_EQ(analysis.warm.cache_hits, 0u);
    const QueryResult cold = engine.run(query);
    EXPECT_EQ(analysis.cold.operands_loaded, cold.stats.operands_loaded);
    EXPECT_EQ(analysis.cold.nodes_evaluated, cold.stats.nodes_evaluated);
    EXPECT_EQ(analysis.cold.bytes_loaded, cold.stats.bytes_loaded);
    EXPECT_EQ(analysis.cold.cells_traversed, measured_cells(cold.stats));
  }

  // Re-analyzed over the now-warm repository: the root is served from its
  // stored cube, so the warm pass predicts one hit and nothing else.
  const QueryPlan plan = make_plan(query);
  DiagnosticSink sink;
  const PlanAnalysis analysis = analyze(plan, sink);
  EXPECT_EQ(analysis.warm.cache_hits, 1u);
  EXPECT_EQ(analysis.warm.nodes_evaluated, 0u);
  EXPECT_EQ(analysis.warm.operands_loaded, 0u);
  EXPECT_TRUE(analysis.nodes[plan.root].cached);
  EXPECT_LT(analysis.warm.peak_resident_bytes,
            analysis.cold.peak_resident_bytes);

  const QueryResult warm = engine.run(query);
  EXPECT_EQ(analysis.warm.cache_hits, warm.stats.cache_hits);
  EXPECT_EQ(analysis.warm.nodes_evaluated, warm.stats.nodes_evaluated);
  EXPECT_EQ(analysis.warm.operands_loaded, warm.stats.operands_loaded);
  EXPECT_EQ(analysis.warm.bytes_loaded, warm.stats.bytes_loaded);
}

// ---------------------------------------------------------------------------
// Error paths: one test per diagnostic.

TEST_F(PlanAnalyzeTest, MetricUnitConflictIsAPlanError) {
  repo_->store(make_small(StorageKind::Dense, "small"));
  repo_->store(make_unit_clash("clash"));

  const QueryPlan plan = make_plan("mean(small, clash)");
  DiagnosticSink sink;
  const PlanAnalysis analysis = analyze(plan, sink);

  EXPECT_FALSE(analysis.compatible);
  EXPECT_FALSE(analysis.exact);
  EXPECT_EQ(sink.exit_code(), 2);
  const lint::Diagnostic& d = find_diag(sink, "plan.metric-unit");
  EXPECT_EQ(d.level, Level::Error);
  // The location names the offending sub-expression, not the whole plan.
  EXPECT_NE(d.location.find("clash"), std::string::npos) << d.location;
  EXPECT_NE(d.message.find("time"), std::string::npos) << d.message;
}

TEST_F(PlanAnalyzeTest, IntegrationFailureIsAPlanError) {
  // No stored metadata can make integrate_metadata throw today (unit
  // conflicts are uniquified, shapes zero-extend), so drive the defensive
  // path with the one malformed plan shape that does: an application with
  // no operands, which a buggy or future planner could emit.
  QueryPlan plan;
  PlanNode apply;
  apply.kind = PlanNode::Kind::Apply;
  apply.op = QueryExpr::Op::Mean;
  apply.canonical = "mean()";
  plan.nodes.push_back(apply);
  plan.root = 0;

  DiagnosticSink sink;
  const PlanAnalysis analysis = analyze(plan, sink);
  EXPECT_FALSE(analysis.compatible);
  EXPECT_EQ(sink.exit_code(), 2);
  const lint::Diagnostic& d = find_diag(sink, "plan.integration-failed");
  EXPECT_EQ(d.level, Level::Error);
  EXPECT_EQ(d.location, "mean()");
}

TEST_F(PlanAnalyzeTest, LegacyInlineOperandIsOpaque) {
  // Build a legacy-layout repository, then strip the entry's meta="..."
  // reference the way pre-blob repositories stored experiments: metadata
  // inline in the experiment file, invisible to the analyzer.
  const std::filesystem::path legacy_dir = dir_ / "legacy";
  std::string id;
  {
    ExperimentRepository legacy(legacy_dir, RepoLayout::Legacy);
    id = legacy.store(make_small());
  }
  const std::filesystem::path index = legacy_dir / "index.xml";
  std::string text;
  {
    std::ifstream in(index);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    text = buffer.str();
  }
  const std::size_t meta_pos = text.find(" meta=\"");
  ASSERT_NE(meta_pos, std::string::npos);
  const std::size_t meta_end = text.find('"', meta_pos + 7);
  ASSERT_NE(meta_end, std::string::npos);
  text.erase(meta_pos, meta_end + 1 - meta_pos);
  {
    std::ofstream out(index, std::ios::trunc);
    out << text;
  }

  ExperimentRepository reopened(legacy_dir);
  const QueryPlan plan =
      plan_query(*parse_query("mean(" + id + ")"), reopened, {});
  DiagnosticSink sink;
  const PlanAnalysis analysis = analyze(plan, sink, {}, &reopened);

  EXPECT_TRUE(analysis.compatible) << "opaque is a warning, not an error";
  EXPECT_FALSE(analysis.exact);
  EXPECT_EQ(sink.exit_code(), 1);
  const lint::Diagnostic& d = find_diag(sink, "plan.opaque-operand");
  EXPECT_EQ(d.level, Level::Warning);
  EXPECT_NE(d.message.find("inline metadata"), std::string::npos)
      << d.message;
  EXPECT_NE(d.hint.find("migrate"), std::string::npos) << d.hint;
}

TEST_F(PlanAnalyzeTest, UnresolvedMetadataBlobIsOpaque) {
  QueryPlan plan;
  PlanNode load;
  load.kind = PlanNode::Kind::Load;
  load.operand.id = "ghost";
  load.operand.bytes = 100;
  load.operand.meta_digest = 0xdeadbeefdeadbeefULL;  // no such blob
  load.canonical = "ghost";
  plan.nodes.push_back(load);
  plan.root = 0;

  DiagnosticSink sink;
  const PlanAnalysis analysis = analyze(plan, sink);
  EXPECT_FALSE(analysis.exact);
  const lint::Diagnostic& d = find_diag(sink, "plan.opaque-operand");
  EXPECT_EQ(d.level, Level::Warning);
  EXPECT_NE(d.message.find("did not resolve"), std::string::npos)
      << d.message;
  EXPECT_FALSE(analysis.nodes[plan.root].geometry_known);
}

TEST_F(PlanAnalyzeTest, MixedOriginalAndDerivedOperandsAreNoted) {
  repo_->store(make_small(StorageKind::Dense, "orig"));
  Experiment derived = make_small(StorageKind::Dense, "deriv");
  derived.set_attribute("cube::kind", "derived");
  repo_->store(derived);

  {
    const QueryPlan plan = make_plan("mean(orig, deriv)");
    DiagnosticSink sink;
    (void)analyze(plan, sink);
    const lint::Diagnostic& d = find_diag(sink, "plan.mixed-kind");
    EXPECT_EQ(d.level, Level::Note);
  }
  {
    // All-original aggregation stays silent.
    const QueryPlan plan = make_plan("mean(orig, orig)");
    DiagnosticSink sink;
    (void)analyze(plan, sink);
    EXPECT_FALSE(has_rule(sink, "plan.mixed-kind"));
  }
}

TEST_F(PlanAnalyzeTest, OverBudgetIsAnErrorAtTheRoot) {
  repo_->store(make_small(StorageKind::Dense, "small"));
  const QueryPlan plan = make_plan("mean(small)");

  AnalyzeOptions tight;
  tight.budget_bytes = 1;
  DiagnosticSink sink;
  const PlanAnalysis analysis = analyze(plan, sink, tight);
  EXPECT_TRUE(analysis.over_budget);
  EXPECT_EQ(analysis.budget_bytes, 1u);
  EXPECT_EQ(sink.exit_code(), 2);
  const lint::Diagnostic& d = find_diag(sink, "cost.over-budget");
  EXPECT_EQ(d.level, Level::Error);
  EXPECT_EQ(d.location, plan.nodes[plan.root].canonical);

  AnalyzeOptions roomy;
  roomy.budget_bytes = std::uint64_t{1} << 30;
  DiagnosticSink ok;
  const PlanAnalysis fits = analyze(plan, ok, roomy);
  EXPECT_FALSE(fits.over_budget);
  EXPECT_FALSE(has_rule(ok, "cost.over-budget"));
  EXPECT_EQ(ok.exit_code(), 0);

  // budget_bytes = 0 disables the gate entirely.
  DiagnosticSink off;
  const PlanAnalysis ungated = analyze(plan, off);
  EXPECT_FALSE(ungated.over_budget);
  EXPECT_FALSE(has_rule(off, "cost.over-budget"));
}

TEST_F(PlanAnalyzeTest, CostSummaryIsAlwaysReportedOnce) {
  repo_->store(make_small(StorageKind::Dense, "small"));
  const QueryPlan plan = make_plan("mean(small)");
  DiagnosticSink sink;
  const PlanAnalysis analysis = analyze(plan, sink);
  EXPECT_EQ(count_rule(sink, "cost.summary"), 1u);
  const lint::Diagnostic& d = find_diag(sink, "cost.summary");
  EXPECT_EQ(d.level, Level::Note);
  EXPECT_EQ(d.location, plan.nodes[plan.root].canonical);
  EXPECT_NE(d.message.find(
                std::to_string(analysis.cold.peak_resident_bytes)),
            std::string::npos)
      << d.message;
}

TEST_F(PlanAnalyzeTest, PlanLintAdvisoriesShareTheSink) {
  repo_->store(make_small(StorageKind::Dense, "small"));
  const QueryPlan plan = make_plan("mean(small)");

  DiagnosticSink with_lint;
  AnalyzeOptions on;
  on.run_plan_lint = true;
  (void)analyze(plan, with_lint, on);

  DiagnosticSink without;
  AnalyzeOptions off;
  off.run_plan_lint = false;
  (void)analyze(plan, without, off);
  // Analysis findings are identical; only the perf.* advisories differ.
  for (const auto& d : without.diagnostics()) {
    EXPECT_NE(d.rule.rfind("perf.", 0), 0u) << d.rule;
  }
  EXPECT_GE(with_lint.diagnostics().size(), without.diagnostics().size());
}

}  // namespace
}  // namespace cube::query
