#include "query/engine.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "algebra/composite.hpp"
#include "common/error.hpp"
#include "testutil.hpp"

namespace cube::query {
namespace {

using cube::testing::make_small;

/// Exact (bitwise-comparable) severity equality over identical domains.
void expect_severity_identical(const Experiment& a, const Experiment& b) {
  ASSERT_EQ(a.metadata().num_metrics(), b.metadata().num_metrics());
  ASSERT_EQ(a.metadata().num_cnodes(), b.metadata().num_cnodes());
  ASSERT_EQ(a.metadata().num_threads(), b.metadata().num_threads());
  for (MetricIndex m = 0; m < a.metadata().num_metrics(); ++m) {
    for (CnodeIndex c = 0; c < a.metadata().num_cnodes(); ++c) {
      for (ThreadIndex t = 0; t < a.metadata().num_threads(); ++t) {
        ASSERT_EQ(a.severity().get(m, c, t), b.severity().get(m, c, t))
            << "cell (" << m << ", " << c << ", " << t << ")";
      }
    }
  }
}

class QueryEngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::path(::testing::TempDir()) /
           ("cube_engine_" + std::string(::testing::UnitTest::GetInstance()
                                             ->current_test_info()
                                             ->name()));
    std::filesystem::remove_all(dir_);
    repo_ = std::make_unique<ExperimentRepository>(dir_);
  }
  void TearDown() override {
    repo_.reset();
    std::filesystem::remove_all(dir_);
  }

  /// Stores a make_small variant whose severities are offset by `salt` so
  /// operands are distinguishable.
  std::string store_salted(const std::string& name, double salt,
                           const std::map<std::string, std::string>& attrs =
                               {}) {
    Experiment e = make_small(StorageKind::Dense, name);
    for (MetricIndex m = 0; m < e.metadata().num_metrics(); ++m) {
      for (CnodeIndex c = 0; c < e.metadata().num_cnodes(); ++c) {
        for (ThreadIndex t = 0; t < e.metadata().num_threads(); ++t) {
          e.severity().add(m, c, t, salt * (1.0 + 0.1 * (m + c + t)));
        }
      }
    }
    for (const auto& [k, v] : attrs) e.set_attribute(k, v);
    return repo_->store(e);
  }

  void populate_before_after() {
    store_salted("a1", 0.125, {{"run", "before"}});
    store_salted("a2", 0.25, {{"run", "before"}});
    store_salted("a3", 0.375, {{"run", "before"}});
    store_salted("b1", -0.5, {{"run", "after"}});
    store_salted("b2", -0.625, {{"run", "after"}});
  }

  std::filesystem::path dir_;
  std::unique_ptr<ExperimentRepository> repo_;
};

constexpr const char* kQuery =
    "diff(mean(attr(run=before)), mean(attr(run=after)))";
constexpr const char* kDirect = "diff(mean(a1, a2, a3), mean(b1, b2))";

TEST_F(QueryEngineTest, MatchesDirectEvalAtEveryThreadCountAndCacheMode) {
  populate_before_after();

  // Reference: the plain composite pipeline over the same stored files.
  const std::vector<std::string> ids = {"a1", "a2", "a3", "b1", "b2"};
  std::vector<Experiment> loaded;
  ExperimentEnv env;
  for (const std::string& id : ids) loaded.push_back(repo_->load(id));
  for (std::size_t i = 0; i < ids.size(); ++i) env[ids[i]] = &loaded[i];
  const Experiment reference = eval_expr(kDirect, env);

  for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
    for (const bool cache : {false, true}) {
      QueryOptions options;
      options.threads = threads;
      options.use_cache = cache;
      options.store_derived = cache;
      QueryEngine engine(*repo_, options);
      const QueryResult result = engine.run(kQuery);
      SCOPED_TRACE("threads=" + std::to_string(threads) +
                   " cache=" + std::to_string(cache));
      expect_severity_identical(result.experiment, reference);
      EXPECT_EQ(result.experiment.name(), reference.name());
    }
  }
}

TEST_F(QueryEngineTest, SecondRunIsServedFromTheCache) {
  populate_before_after();
  QueryEngine engine(*repo_, {.threads = 2});
  const QueryResult cold = engine.run(kQuery);
  EXPECT_EQ(cold.stats.cache_hits, 0u);
  EXPECT_EQ(cold.stats.nodes_evaluated, 3u);  // two means and the diff
  EXPECT_EQ(cold.stats.operands_loaded, 5u);

  const QueryResult warm = engine.run(kQuery);
  EXPECT_GE(warm.stats.cache_hits, 1u);
  EXPECT_EQ(warm.stats.nodes_evaluated, 0u);
  EXPECT_EQ(warm.stats.operands_loaded, 0u);
  EXPECT_LT(warm.stats.nodes_executed, cold.stats.nodes_executed);
  expect_severity_identical(warm.experiment, cold.experiment);
}

TEST_F(QueryEngineTest, OverlappingQueriesShareCachedSubexpressions) {
  populate_before_after();
  QueryEngine engine(*repo_, {.threads = 1});
  (void)engine.run("mean(attr(run=before))");
  // The before-mean is warm; only the after-mean and the diff compute.
  const QueryResult result = engine.run(kQuery);
  EXPECT_EQ(result.stats.cache_hits, 1u);
  EXPECT_EQ(result.stats.nodes_evaluated, 2u);
  EXPECT_EQ(result.stats.operands_loaded, 2u);  // b1, b2 only
}

TEST_F(QueryEngineTest, CacheHitsPersistAcrossEngineAndProcessBoundaries) {
  populate_before_after();
  {
    QueryEngine engine(*repo_, {.threads = 1});
    (void)engine.run(kQuery);
  }
  // A fresh repository object (as a new process would open) sees the
  // cached cubes through the index.
  ExperimentRepository reopened(dir_);
  QueryEngine engine(reopened, {.threads = 1});
  const QueryResult warm = engine.run(kQuery);
  EXPECT_GE(warm.stats.cache_hits, 1u);
  EXPECT_EQ(warm.stats.nodes_evaluated, 0u);
}

TEST_F(QueryEngineTest, RestoringAnOperandInvalidatesTheCache) {
  populate_before_after();
  QueryEngine engine(*repo_, {.threads = 2});
  const QueryResult first = engine.run(kQuery);

  // Replace a1 under the same id with different data.
  repo_->remove("a1");
  Experiment modified = make_small(StorageKind::Dense, "a1");
  modified.set_attribute("run", "before");
  modified.severity().set(0, 0, 0, 4242.0);
  ASSERT_EQ(repo_->store(modified), "a1");

  // Invalidation is precise: the before-mean and the diff (downstream of
  // a1) recompute; the untouched after-mean still hits.
  const QueryResult second = engine.run(kQuery);
  EXPECT_EQ(second.stats.cache_hits, 1u);
  EXPECT_EQ(second.stats.nodes_evaluated, 2u);
  EXPECT_NE(second.experiment.severity().get(0, 0, 0),
            first.experiment.severity().get(0, 0, 0));
}

TEST_F(QueryEngineTest, NoStoreLeavesTheRepositoryUntouched) {
  populate_before_after();
  const std::size_t entries_before = repo_->entries().size();
  QueryOptions options;
  options.threads = 2;
  options.store_derived = false;
  QueryEngine engine(*repo_, options);
  const QueryResult first = engine.run(kQuery);
  const QueryResult second = engine.run(kQuery);
  EXPECT_EQ(repo_->entries().size(), entries_before);
  EXPECT_EQ(second.stats.cache_hits, 0u);  // nothing was ever stored
  expect_severity_identical(first.experiment, second.experiment);
}

TEST_F(QueryEngineTest, BareSelectorRootLoadsTheExperiment) {
  store_salted("solo", 1.0);
  QueryEngine engine(*repo_);
  const QueryResult result = engine.run("id(solo)");
  EXPECT_EQ(result.experiment.name(), "solo");
  expect_severity_identical(result.experiment, repo_->load("solo"));
  EXPECT_EQ(result.stats.nodes_evaluated, 0u);
  EXPECT_EQ(result.stats.operands_loaded, 1u);
}

TEST_F(QueryEngineTest, CseEvaluatesSharedSubtreeOnce) {
  store_salted("a", 0.5);
  store_salted("b", 0.75);
  QueryOptions options;
  options.threads = 4;
  options.use_cache = false;
  options.store_derived = false;
  QueryEngine engine(*repo_, options);
  const QueryResult result =
      engine.run("diff(mean(a, b), mean(id(a), id(b)))");
  // CSE folds both means into one node: loads a, b; evaluates mean, diff.
  EXPECT_EQ(result.stats.plan_nodes, 4u);
  EXPECT_EQ(result.stats.operands_loaded, 2u);
  EXPECT_EQ(result.stats.nodes_evaluated, 2u);
  // diff(x, x) is identically zero.
  for (MetricIndex m = 0; m < result.experiment.metadata().num_metrics();
       ++m) {
    EXPECT_EQ(result.experiment.sum_metric(
                  *result.experiment.metadata().metrics()[m]),
              0.0);
  }
}

TEST_F(QueryEngineTest, ExecutionErrorsPropagateFromWorkers) {
  populate_before_after();
  // Corrupt one operand file after indexing; the load fails mid-DAG and
  // the error must surface (at any thread count, without hanging).
  const RepoEntry* victim = nullptr;
  for (const RepoEntry& e : repo_->entries()) {
    if (e.id == "b1") victim = &e;
  }
  ASSERT_NE(victim, nullptr);
  {
    std::ofstream out(dir_ / victim->file, std::ios::trunc);
    out << "not a cube file";
  }
  for (const std::size_t threads : {1u, 4u}) {
    QueryOptions options;
    options.threads = threads;
    QueryEngine engine(*repo_, options);
    EXPECT_THROW((void)engine.run(kQuery), Error) << threads;
  }
}

TEST_F(QueryEngineTest, StatsReportStagesAndBytes) {
  populate_before_after();
  QueryEngine engine(*repo_, {.threads = 2});
  const QueryResult result = engine.run(kQuery);
  EXPECT_EQ(result.stats.plan_nodes, 8u);  // 5 loads + 2 means + diff
  EXPECT_EQ(result.stats.nodes_executed, 8u);
  EXPECT_GT(result.stats.bytes_loaded, 0u);
  EXPECT_GE(result.stats.total_ms, 0.0);
  EXPECT_EQ(result.stats.threads_used, 2u);
  EXPECT_FALSE(result.canonical.empty());
}

TEST_F(QueryEngineTest, SeriesLoadsShareInternedMetadata) {
  for (int i = 0; i < 4; ++i) {
    store_salted("run-" + std::to_string(i + 1), static_cast<double>(i),
                 {{"series", "noise"}});
  }
  // Parallel loads across pool workers still dedup through the
  // repository's interner: one metadata instance backs the whole series.
  QueryEngine engine(*repo_, {.threads = 4, .store_derived = false});
  const QueryResult result = engine.run("mean(attr(series=noise))");
  EXPECT_EQ(result.stats.operands_loaded, 4u);
  EXPECT_EQ(repo_->interner().size(), 1u);
  // The mean over a digest-identical series shares that instance too.
  EXPECT_EQ(result.experiment.metadata_ptr().get(),
            repo_->interner().lookup(
                result.experiment.metadata().digest()).get());
}

}  // namespace
}  // namespace cube::query
