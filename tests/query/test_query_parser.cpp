#include "query/query_expr.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "testutil.hpp"

namespace cube::query {
namespace {

using cube::testing::make_small;

TEST(QueryParserTest, PlainCompositeGrammarStillParses) {
  const auto e = parse_query("diff(mean(a, b), c)");
  EXPECT_EQ(e->str(), "diff(mean(a, b), c)");
  EXPECT_EQ(e->kind(), QueryExpr::Kind::Apply);
  EXPECT_EQ(e->op(), QueryExpr::Op::Diff);
}

TEST(QueryParserTest, SelectorsParseAndRenderCanonically) {
  EXPECT_EQ(parse_query("id(pescan-4n)")->str(), "id(pescan-4n)");
  EXPECT_EQ(parse_query("id(\"pescan-4n\")")->str(), "id(pescan-4n)");
  EXPECT_EQ(parse_query("series(run)")->str(), "series(run)");
  EXPECT_EQ(parse_query("attr(app=sweep3d, nodes=16)")->str(),
            "attr(app=sweep3d, nodes=16)");
  // Values needing quotes keep them.
  EXPECT_EQ(parse_query("attr(name=\"a b\")")->str(), "attr(name=\"a b\")");
}

TEST(QueryParserTest, AttrValuesMayStartWithDigits) {
  const auto e = parse_query("attr(nodes=16)");
  ASSERT_EQ(e->pairs().size(), 1u);
  EXPECT_EQ(e->pairs()[0].first, "nodes");
  EXPECT_EQ(e->pairs()[0].second, "16");
}

TEST(QueryParserTest, SelectorsNestInsideOperators) {
  const auto e = parse_query(
      "diff(mean(attr(run=before)), mean(attr(run=after)))");
  EXPECT_EQ(e->str(), "diff(mean(attr(run=before)), mean(attr(run=after)))");
}

TEST(QueryParserTest, MalformedInputThrows) {
  EXPECT_THROW((void)parse_query("diff(a"), Error);
  EXPECT_THROW((void)parse_query("unknown(a, b)"), Error);
  EXPECT_THROW((void)parse_query("attr(=x)"), Error);
  EXPECT_THROW((void)parse_query("attr(k)"), Error);
  EXPECT_THROW((void)parse_query("id(\"unterminated)"), Error);
  EXPECT_THROW((void)parse_query("mean()"), Error);
  EXPECT_THROW((void)parse_query("a b"), Error);
}

TEST(QueryParserTest, ToCompositeLowersRefsAndOperators) {
  const Experiment a = make_small(StorageKind::Dense, "a");
  const Experiment b = make_small(StorageKind::Dense, "b");
  const ExperimentEnv env{{"a", &a}, {"b", &b}};
  const Experiment via_query = eval_query_with_env("diff(a, b)", env);
  const Experiment direct = eval_expr("diff(a, b)", env);
  ASSERT_EQ(via_query.metadata().num_metrics(),
            direct.metadata().num_metrics());
  for (MetricIndex m = 0; m < direct.metadata().num_metrics(); ++m) {
    for (CnodeIndex c = 0; c < direct.metadata().num_cnodes(); ++c) {
      for (ThreadIndex t = 0; t < direct.metadata().num_threads(); ++t) {
        ASSERT_EQ(via_query.severity().get(m, c, t),
                  direct.severity().get(m, c, t));
      }
    }
  }
}

TEST(QueryParserTest, ToCompositeRejectsSelectors) {
  const ExperimentEnv env;
  EXPECT_THROW((void)eval_query_with_env("mean(attr(run=before))", env),
               OperationError);
  EXPECT_THROW((void)parse_query("id(x)")->to_composite(), OperationError);
}

}  // namespace
}  // namespace cube::query
