#include "query/plan_lint.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <map>
#include <memory>
#include <string>

#include "lint/diagnostics.hpp"
#include "query/planner.hpp"
#include "testutil.hpp"

namespace cube::query {
namespace {

using cube::testing::make_small;
using cube::testing::make_variant;

class PlanLintTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::path(::testing::TempDir()) /
           ("cube_plan_lint_" + std::string(::testing::UnitTest::GetInstance()
                                                ->current_test_info()
                                                ->name()));
    std::filesystem::remove_all(dir_);
    repo_ = std::make_unique<ExperimentRepository>(dir_);
  }
  void TearDown() override {
    repo_.reset();
    std::filesystem::remove_all(dir_);
  }

  void store_named(const std::string& name) {
    Experiment e = make_small(StorageKind::Dense, name);
    (void)repo_->store(e);
  }

  lint::DiagnosticSink lint_expr(const std::string& text) {
    lint::DiagnosticSink sink;
    lint_plan(plan_query(*parse_query(text), *repo_), sink);
    return sink;
  }

  std::filesystem::path dir_;
  std::unique_ptr<ExperimentRepository> repo_;
};

TEST_F(PlanLintTest, NestedSameOpChainOverOneMetadataFires) {
  store_named("a");
  store_named("b");
  store_named("c");
  const auto sink = lint_expr("mean(mean(a, b), c)");
  ASSERT_TRUE(sink.has_rule("perf.series-foldable"));
  EXPECT_EQ(sink.notes(), 1u);
  EXPECT_EQ(sink.errors(), 0u);
  const lint::Diagnostic& d = sink.diagnostics().front();
  EXPECT_EQ(d.level, lint::Level::Note);
  EXPECT_NE(d.message.find("3 operands"), std::string::npos) << d.message;
  EXPECT_NE(d.message.find("2 applications"), std::string::npos) << d.message;
  EXPECT_NE(d.hint.find("n-ary"), std::string::npos) << d.hint;
}

TEST_F(PlanLintTest, DeeperChainReportsOnceAtTheRoot) {
  store_named("a");
  store_named("b");
  store_named("c");
  store_named("d");
  const auto sink = lint_expr("min(min(min(a, b), c), d)");
  EXPECT_EQ(sink.notes(), 1u);
  EXPECT_NE(sink.diagnostics().front().message.find("3 applications"),
            std::string::npos);
}

TEST_F(PlanLintTest, FlatNaryReductionIsQuiet) {
  store_named("a");
  store_named("b");
  store_named("c");
  EXPECT_TRUE(lint_expr("mean(a, b, c)").empty());
}

TEST_F(PlanLintTest, MixedOperatorNestingIsQuiet) {
  store_named("a");
  store_named("b");
  store_named("c");
  // min inside mean is not a foldable chain: the operators differ.
  EXPECT_TRUE(lint_expr("mean(min(a, b), c)").empty());
}

TEST_F(PlanLintTest, DiffChainsAreNotFoldable) {
  store_named("a");
  store_named("b");
  store_named("c");
  // Difference is not commutative-associative; nesting is the only way
  // to express it and must stay quiet.
  EXPECT_TRUE(lint_expr("diff(diff(a, b), c)").empty());
}

TEST_F(PlanLintTest, MixedMetadataSeriesIsQuiet) {
  store_named("a");
  store_named("b");
  Experiment v = make_variant(StorageKind::Dense, "c");
  (void)repo_->store(v);
  // The variant has different metadata: integrating per nesting level
  // does real merge work, so the single-sweep advisory does not apply.
  EXPECT_TRUE(lint_expr("mean(mean(a, b), c)").empty());
}

TEST_F(PlanLintTest, ChainThroughAForeignApplyIsQuiet) {
  store_named("a");
  store_named("b");
  store_named("c");
  store_named("d");
  // The inner mean's sibling is a diff result, not a load: flattening
  // would change the cached intermediates, so no advisory.
  EXPECT_TRUE(lint_expr("mean(mean(a, b), diff(c, d))").empty());
}

}  // namespace
}  // namespace cube::query
