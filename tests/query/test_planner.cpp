#include "query/planner.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "common/error.hpp"
#include "io/cube_format.hpp"
#include "testutil.hpp"

namespace cube::query {
namespace {

using cube::testing::make_small;

class PlannerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::path(::testing::TempDir()) /
           ("cube_plan_" + std::string(::testing::UnitTest::GetInstance()
                                           ->current_test_info()
                                           ->name()));
    std::filesystem::remove_all(dir_);
    repo_ = std::make_unique<ExperimentRepository>(dir_);
  }
  void TearDown() override {
    repo_.reset();
    std::filesystem::remove_all(dir_);
  }

  std::string store_named(const std::string& name,
                          const std::map<std::string, std::string>& attrs =
                              {}) {
    Experiment e = make_small(StorageKind::Dense, name);
    for (const auto& [k, v] : attrs) e.set_attribute(k, v);
    return repo_->store(e);
  }

  std::filesystem::path dir_;
  std::unique_ptr<ExperimentRepository> repo_;
};

TEST_F(PlannerTest, CommonSubexpressionsCollapse) {
  store_named("a");
  store_named("b");
  const auto expr =
      parse_query("diff(mean(id(a), id(b)), mean(id(a), id(b)))");
  const QueryPlan plan = plan_query(*expr, *repo_);
  // Two loads, one shared mean, one diff.
  EXPECT_EQ(plan.nodes.size(), 4u);
  EXPECT_EQ(plan.cse_reused, 3u);  // a, b, and the whole mean
  const PlanNode& root = plan.nodes[plan.root];
  ASSERT_EQ(root.args.size(), 2u);
  EXPECT_EQ(root.args[0], root.args[1]);
}

TEST_F(PlannerTest, SelectorSplicesIntoNaryReduction) {
  store_named("r1", {{"series", "noise"}});
  store_named("r2", {{"series", "noise"}});
  store_named("r3", {{"series", "noise"}});
  store_named("other");
  const QueryPlan plan =
      plan_query(*parse_query("mean(attr(series=noise))"), *repo_);
  const PlanNode& root = plan.nodes[plan.root];
  EXPECT_EQ(root.kind, PlanNode::Kind::Apply);
  EXPECT_EQ(root.args.size(), 3u);
}

TEST_F(PlannerTest, SeriesMatchesIdPrefixInStoreOrder) {
  store_named("run-1");
  store_named("run-2");
  store_named("walk-1");
  const QueryPlan plan =
      plan_query(*parse_query("min(series(run))"), *repo_);
  const PlanNode& root = plan.nodes[plan.root];
  ASSERT_EQ(root.args.size(), 2u);
  EXPECT_EQ(plan.nodes[root.args[0]].operand.id, "run-1");
  EXPECT_EQ(plan.nodes[root.args[1]].operand.id, "run-2");
}

TEST_F(PlannerTest, BinaryOperatorAcceptsPairSelector) {
  store_named("pair-a");
  store_named("pair-b");
  const QueryPlan plan =
      plan_query(*parse_query("diff(series(pair))"), *repo_);
  EXPECT_EQ(plan.nodes[plan.root].args.size(), 2u);
}

TEST_F(PlannerTest, EmptySelectorMatchIsAnError) {
  store_named("a", {{"run", "before"}});
  EXPECT_THROW(
      (void)plan_query(*parse_query("mean(attr(run=after))"), *repo_),
      OperationError);
  EXPECT_THROW((void)plan_query(*parse_query("mean(series(zz))"), *repo_),
               OperationError);
}

TEST_F(PlannerTest, AttributeMissIsAnError) {
  store_named("a", {{"run", "before"}});
  // The key exists nowhere: same failure mode, clear error.
  EXPECT_THROW(
      (void)plan_query(*parse_query("mean(attr(phase=solve))"), *repo_),
      OperationError);
}

TEST_F(PlannerTest, UnknownIdIsAnError) {
  store_named("a");
  EXPECT_THROW((void)plan_query(*parse_query("id(nope)"), *repo_), Error);
  EXPECT_THROW((void)plan_query(*parse_query("mean(a, nope)"), *repo_),
               Error);
}

TEST_F(PlannerTest, AmbiguousSelectorInBinaryPositionIsAnError) {
  store_named("a", {{"app", "pescan"}});
  store_named("b", {{"app", "pescan"}});
  store_named("c");
  EXPECT_THROW(
      (void)plan_query(*parse_query("diff(attr(app=pescan), id(c))"),
                       *repo_),
      OperationError);
}

TEST_F(PlannerTest, MultiMatchQueryRootIsAnError) {
  store_named("a", {{"app", "pescan"}});
  store_named("b", {{"app", "pescan"}});
  EXPECT_THROW((void)plan_query(*parse_query("attr(app=pescan)"), *repo_),
               OperationError);
  // A single match is a legal root.
  store_named("c", {{"app", "sweep3d"}});
  const QueryPlan plan =
      plan_query(*parse_query("attr(app=sweep3d)"), *repo_);
  EXPECT_EQ(plan.nodes[plan.root].kind, PlanNode::Kind::Load);
}

TEST_F(PlannerTest, CacheEntriesAreInvisibleToAttrAndSeries) {
  store_named("a", {{"app", "pescan"}});
  store_named("a-cached", {{"app", "pescan"},
                           {kCacheKeyAttribute, "deadbeefdeadbeef"}});
  const QueryPlan plan =
      plan_query(*parse_query("mean(attr(app=pescan))"), *repo_);
  EXPECT_EQ(plan.nodes[plan.root].args.size(), 1u);
  EXPECT_THROW((void)plan_query(*parse_query("max(series(a-c))"), *repo_),
               OperationError);
  // id() still addresses cached cubes exactly.
  const QueryPlan direct =
      plan_query(*parse_query("id(a-cached)"), *repo_);
  EXPECT_EQ(direct.nodes[direct.root].operand.id, "a-cached");
}

TEST_F(PlannerTest, RestoringAnOperandChangesDownstreamKeys) {
  const std::string id = store_named("a");
  store_named("b");
  const auto expr = parse_query("diff(id(a), id(b))");
  const QueryPlan before = plan_query(*expr, *repo_);

  // Replace a's stored data under the SAME id: remove, then store a
  // modified experiment whose name maps back to "a".
  repo_->remove(id);
  Experiment modified = make_small(StorageKind::Dense, "a");
  modified.severity().set(0, 0, 0, 424242.0);
  ASSERT_EQ(repo_->store(modified), "a");

  const QueryPlan after = plan_query(*expr, *repo_);
  EXPECT_NE(before.nodes[before.root].key, after.nodes[after.root].key);
  EXPECT_NE(before.nodes[before.root].canonical,
            after.nodes[after.root].canonical);
}

TEST_F(PlannerTest, ByRefLoadKeysMixInTheMetadataDigest) {
  store_named("a");
  const QueryPlan plan = plan_query(*parse_query("id(a)"), *repo_);
  const ResolvedOperand& operand = plan.nodes[plan.root].operand;
  // Blob-backed entry: the file digest alone no longer identifies the
  // experiment content, so the key differs from it.
  ASSERT_FALSE(repo_->entries()[0].meta.empty());
  EXPECT_NE(operand.meta_digest, 0u);
  EXPECT_NE(plan.nodes[plan.root].key, operand.digest);
  // Planning again over unchanged files is stable.
  const QueryPlan again = plan_query(*parse_query("id(a)"), *repo_);
  EXPECT_EQ(again.nodes[again.root].key, plan.nodes[plan.root].key);
}

TEST_F(PlannerTest, LegacyEntriesKeepTheBareFileDigestKey) {
  // A pre-refactor entry (inline metadata, no meta attribute) must keep
  // its original cache key so existing cached cubes stay valid.  Built in
  // a fresh directory: the fixture's repository already initialized dir_
  // with the sharded layout, which would shadow a hand-written index.xml.
  const std::filesystem::path legacy_dir = dir_ / "legacy";
  std::filesystem::create_directories(legacy_dir);
  write_cube_xml_file(make_small(StorageKind::Dense, "old"),
                      (legacy_dir / "old.cube").string());
  {
    std::ofstream out(legacy_dir / "index.xml");
    out << "<repository>"
           "<entry id=\"old\" file=\"old.cube\" format=\"xml\"/>"
           "</repository>";
  }
  repo_ = std::make_unique<ExperimentRepository>(legacy_dir);
  const QueryPlan plan = plan_query(*parse_query("id(old)"), *repo_);
  const PlanNode& node = plan.nodes[plan.root];
  EXPECT_EQ(node.operand.meta_digest, 0u);
  EXPECT_EQ(node.key, node.operand.digest);
}

TEST_F(PlannerTest, CanonicalFormNormalizesAliases) {
  store_named("a");
  store_named("b");
  const QueryPlan p1 =
      plan_query(*parse_query("difference(avg(a, b), b)"), *repo_);
  const QueryPlan p2 =
      plan_query(*parse_query("diff(mean(id(a), id(b)), id(b))"), *repo_);
  EXPECT_EQ(p1.nodes[p1.root].canonical, p2.nodes[p2.root].canonical);
  EXPECT_EQ(p1.nodes[p1.root].key, p2.nodes[p2.root].key);
}

}  // namespace
}  // namespace cube::query
