// Wire protocol robustness: framing round trips, and every malformed
// input class (truncation, oversized prefixes, garbage magic, unknown
// types, trailing bytes) surfaces as a structured ProtocolError — never
// a crash, a hang, or a silent misparse.
#include "server/protocol.hpp"

#include <gtest/gtest.h>
#include <unistd.h>

#include <string>

#include "common/error.hpp"
#include "common/posix_io.hpp"

namespace {

using cube::IoError;
using cube::read_full;
using cube::write_full;
using namespace cube::server;

/// A pipe whose fds close automatically.
struct Pipe {
  int fds[2] = {-1, -1};
  Pipe() { EXPECT_EQ(::pipe(fds), 0); }
  ~Pipe() {
    if (fds[0] >= 0) ::close(fds[0]);
    if (fds[1] >= 0) ::close(fds[1]);
  }
  void close_write() {
    ::close(fds[1]);
    fds[1] = -1;
  }
  int r() const { return fds[0]; }
  int w() const { return fds[1]; }
};

std::string le32(std::uint32_t v) {
  std::string out(4, '\0');
  for (int i = 0; i < 4; ++i) out[i] = static_cast<char>(v >> (8 * i));
  return out;
}

std::string le64(std::uint64_t v) {
  std::string out(8, '\0');
  for (int i = 0; i < 8; ++i) out[i] = static_cast<char>(v >> (8 * i));
  return out;
}

std::string header(std::uint32_t magic, std::uint32_t type,
                   std::uint64_t len) {
  return le32(magic) + le32(type) + le64(len);
}

TEST(Protocol, FrameRoundTripsThroughAPipe) {
  Pipe pipe;
  const std::string payload = "hello payload \x01\x02\x03";
  const std::size_t wrote = write_frame(pipe.w(), MsgType::Query, payload);
  EXPECT_EQ(wrote, 16 + payload.size());

  const auto frame = read_frame(pipe.r());
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->type, MsgType::Query);
  EXPECT_EQ(frame->payload, payload);
}

TEST(Protocol, EmptyPayloadFrameRoundTrips) {
  Pipe pipe;
  EXPECT_EQ(write_frame(pipe.w(), MsgType::Ping, {}), 16u);
  const auto frame = read_frame(pipe.r());
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->type, MsgType::Ping);
  EXPECT_TRUE(frame->payload.empty());
}

TEST(Protocol, CleanEofAtFrameBoundaryIsNullopt) {
  Pipe pipe;
  write_frame(pipe.w(), MsgType::Pong, {});
  pipe.close_write();
  EXPECT_TRUE(read_frame(pipe.r()).has_value());
  EXPECT_FALSE(read_frame(pipe.r()).has_value());  // EOF between frames
}

TEST(Protocol, TruncatedHeaderThrows) {
  Pipe pipe;
  write_full(pipe.w(), "CUBS\x01\x00\x00", 7);  // 7 of 16 header bytes
  pipe.close_write();
  EXPECT_THROW((void)read_frame(pipe.r()), ProtocolError);
}

TEST(Protocol, TruncatedPayloadThrows) {
  Pipe pipe;
  const std::string h = header(kFrameMagic,
                               static_cast<std::uint32_t>(MsgType::Query),
                               100);
  write_full(pipe.w(), h.data(), h.size());
  write_full(pipe.w(), "only ten b", 10);
  pipe.close_write();
  EXPECT_THROW((void)read_frame(pipe.r()), ProtocolError);
}

TEST(Protocol, GarbageMagicThrows) {
  Pipe pipe;
  const std::string h = header(0xdeadbeefu, 1, 0);
  write_full(pipe.w(), h.data(), h.size());
  pipe.close_write();
  EXPECT_THROW((void)read_frame(pipe.r()), ProtocolError);
}

TEST(Protocol, UnknownMessageTypeThrows) {
  Pipe pipe;
  const std::string h = header(kFrameMagic, 999, 0);
  write_full(pipe.w(), h.data(), h.size());
  pipe.close_write();
  EXPECT_THROW((void)read_frame(pipe.r()), ProtocolError);
}

TEST(Protocol, OversizedLengthPrefixRejectedBeforeAllocation) {
  Pipe pipe;
  // A hostile 4 EiB length prefix: the reader must reject it from the
  // header alone instead of attempting the allocation.
  const std::string h = header(kFrameMagic,
                               static_cast<std::uint32_t>(MsgType::Query),
                               1ull << 62);
  write_full(pipe.w(), h.data(), h.size());
  EXPECT_THROW((void)read_frame(pipe.r()), ProtocolError);
}

TEST(Protocol, CustomPayloadCeilingIsEnforced) {
  Pipe pipe;
  write_frame(pipe.w(), MsgType::Query, std::string(2048, 'x'));
  EXPECT_THROW((void)read_frame(pipe.r(), /*max_payload=*/1024),
               ProtocolError);
}

TEST(Protocol, BadDescriptorSurfacesIoError) {
  EXPECT_THROW((void)read_frame(-1), IoError);
  EXPECT_THROW((void)write_frame(-1, MsgType::Ping, {}), IoError);
}

TEST(Protocol, HelloRoundTrip) {
  HelloPayload p;
  p.client = "test client";
  const HelloPayload q = decode_hello(encode_hello(p));
  EXPECT_EQ(q.version, kProtocolVersion);
  EXPECT_EQ(q.client, "test client");
}

TEST(Protocol, HelloOkRoundTrip) {
  HelloOkPayload p;
  p.server = "cubed-test";
  p.generation = 42;
  const HelloOkPayload q = decode_hello_ok(encode_hello_ok(p));
  EXPECT_EQ(q.server, "cubed-test");
  EXPECT_EQ(q.generation, 42u);
}

TEST(Protocol, QueryRoundTrip) {
  QueryPayload p;
  p.text = "mean(attr(run=before))";
  const QueryPayload q = decode_query(encode_query(p));
  EXPECT_EQ(q.text, p.text);
  EXPECT_EQ(q.flags, 0u);
}

TEST(Protocol, ResultRoundTrip) {
  ResultPayload p;
  p.served = Served::Coalesced;
  p.meta_blob = std::string("CUBEMET1 pretend blob");
  p.body = std::string(1000, 'b');
  p.canonical = "mean(id:a@00aa)";
  p.server_ms = 12.5;
  const ResultPayload q = decode_result(encode_result(p));
  EXPECT_EQ(q.served, Served::Coalesced);
  EXPECT_EQ(q.meta_blob, p.meta_blob);
  EXPECT_EQ(q.body, p.body);
  EXPECT_EQ(q.canonical, p.canonical);
  EXPECT_DOUBLE_EQ(q.server_ms, 12.5);
}

TEST(Protocol, ErrorAndBusyRoundTrip) {
  const ErrorPayload e =
      decode_error(encode_error(ErrorPayload{"parse", "unexpected ')'"}));
  EXPECT_EQ(e.category, "parse");
  EXPECT_EQ(e.message, "unexpected ')'");

  BusyPayload b;
  b.retry_ms = 250;
  b.inflight = 7;
  b.queue_wait_ms = 80.5;
  b.reason = "executor queue wait degraded";
  const BusyPayload r = decode_busy(encode_busy(b));
  EXPECT_EQ(r.retry_ms, 250u);
  EXPECT_EQ(r.inflight, 7u);
  EXPECT_DOUBLE_EQ(r.queue_wait_ms, 80.5);
  EXPECT_EQ(r.reason, b.reason);
}

TEST(Protocol, ErrorDiagnosticsRoundTripAndLegacyDecode) {
  ErrorPayload p;
  p.category = "analysis";
  p.message = "rejected by static plan analysis";
  p.diagnostics.push_back(
      {"plan.metric-unit", 2, "id:clash@00ff",
       "operand #1 measures 'time' in 'occ' but operand #0 in 'sec'",
       "re-run with matching collection configs"});
  p.diagnostics.push_back(
      {"cost.summary", 0, "mean(id:a@00aa, id:clash@00ff)",
       "cold: 96 cells traversed", ""});
  const ErrorPayload q = decode_error(encode_error(p));
  EXPECT_EQ(q.category, "analysis");
  ASSERT_EQ(q.diagnostics.size(), 2u);
  EXPECT_EQ(q.diagnostics[0].rule, "plan.metric-unit");
  EXPECT_EQ(q.diagnostics[0].level, 2u);
  EXPECT_EQ(q.diagnostics[0].location, p.diagnostics[0].location);
  EXPECT_EQ(q.diagnostics[0].message, p.diagnostics[0].message);
  EXPECT_EQ(q.diagnostics[0].hint, p.diagnostics[0].hint);
  EXPECT_EQ(q.diagnostics[1].rule, "cost.summary");
  EXPECT_TRUE(q.diagnostics[1].hint.empty());

  // Peers that predate structured diagnostics end the payload after
  // `message` — decoded as an empty list, not a framing violation.
  const std::string full = encode_error(ErrorPayload{"plan", "no such id"});
  const ErrorPayload legacy =
      decode_error(std::string_view(full).substr(0, full.size() - 4));
  EXPECT_EQ(legacy.category, "plan");
  EXPECT_EQ(legacy.message, "no such id");
  EXPECT_TRUE(legacy.diagnostics.empty());
}

TEST(Protocol, StatsRoundTrip) {
  StatsPayload p;
  cube::obs::MetricSample s;
  s.name = "server.queries";
  s.kind = cube::obs::InstrumentKind::Counter;
  s.unit = cube::obs::SampleUnit::Count;
  s.value = 17.0;
  p.samples.push_back(s);
  s.name = "server.queue_wait";
  s.kind = cube::obs::InstrumentKind::Histogram;
  s.unit = cube::obs::SampleUnit::Seconds;
  s.value = 1.25;
  s.count = 9;
  s.min = 0.001;
  s.max = 0.5;
  p.samples.push_back(s);

  const StatsPayload q = decode_stats(encode_stats(p));
  ASSERT_EQ(q.samples.size(), 2u);
  EXPECT_EQ(q.samples[0].name, "server.queries");
  EXPECT_DOUBLE_EQ(q.samples[0].value, 17.0);
  EXPECT_EQ(q.samples[1].kind, cube::obs::InstrumentKind::Histogram);
  EXPECT_EQ(q.samples[1].count, 9u);
  EXPECT_DOUBLE_EQ(q.samples[1].max, 0.5);
}

TEST(Protocol, TruncatedPayloadBytesRejected) {
  QueryPayload p;
  p.text = "mean(a, b)";
  p.request_id = 0x1122334455667788ull;
  const std::string bytes = encode_query(p);
  // One prefix length is a LEGAL legacy boundary: a peer that predates
  // request ids ends the payload after `flags` (8 trailing id bytes
  // missing) and must decode with request_id == 0.  Every other prefix is
  // a framing violation.
  const std::size_t legacy_cut = bytes.size() - 8;
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    if (cut == legacy_cut) {
      const QueryPayload legacy = decode_query(bytes.substr(0, cut));
      EXPECT_EQ(legacy.text, p.text);
      EXPECT_EQ(legacy.request_id, 0u);
      continue;
    }
    EXPECT_THROW((void)decode_query(bytes.substr(0, cut)), ProtocolError)
        << "prefix of " << cut << " bytes parsed";
  }
}

TEST(Protocol, QueryRequestIdRoundTrips) {
  QueryPayload p;
  p.text = "mean(attr(run=before))";
  p.request_id = 0xdeadbeefcafef00dull;
  const QueryPayload q = decode_query(encode_query(p));
  EXPECT_EQ(q.text, p.text);
  EXPECT_EQ(q.request_id, p.request_id);
}

TEST(Protocol, StatsTelemetryRoundTrips) {
  StatsPayload p;
  cube::obs::MetricSample s;
  s.name = "server.service_time";
  s.kind = cube::obs::InstrumentKind::Histogram;
  s.unit = cube::obs::SampleUnit::Seconds;
  s.count = 100;
  s.p50 = 0.010;
  s.p90 = 0.025;
  s.p99 = 0.125;
  p.samples.push_back(s);
  p.json = "{\"server\":{\"queries\":100}}";
  WireSlowQuery slow;
  slow.request_id = 42;
  slow.canonical = "mean(id:a@00aa)";
  slow.outcome = "computed";
  slow.server_ms = 125.5;
  slow.plan_ms = 1.25;
  slow.compute_ms = 120.0;
  slow.serialize_ms = 2.5;
  slow.sequence = 7;
  p.slow.push_back(slow);

  const StatsPayload q = decode_stats(encode_stats(p));
  ASSERT_EQ(q.samples.size(), 1u);
  EXPECT_DOUBLE_EQ(q.samples[0].p50, 0.010);
  EXPECT_DOUBLE_EQ(q.samples[0].p90, 0.025);
  EXPECT_DOUBLE_EQ(q.samples[0].p99, 0.125);
  EXPECT_EQ(q.json, p.json);
  ASSERT_EQ(q.slow.size(), 1u);
  EXPECT_EQ(q.slow[0].request_id, 42u);
  EXPECT_EQ(q.slow[0].canonical, slow.canonical);
  EXPECT_EQ(q.slow[0].outcome, "computed");
  EXPECT_DOUBLE_EQ(q.slow[0].server_ms, 125.5);
  EXPECT_DOUBLE_EQ(q.slow[0].plan_ms, 1.25);
  EXPECT_DOUBLE_EQ(q.slow[0].compute_ms, 120.0);
  EXPECT_DOUBLE_EQ(q.slow[0].serialize_ms, 2.5);
  EXPECT_EQ(q.slow[0].sequence, 7u);
}

TEST(Protocol, StatsPerByteFuzzOnlyLegacyBoundariesDecode) {
  // Per-byte truncation fuzz over an encoded StatsOk: exactly two prefix
  // lengths are legal legacy boundaries (end after samples; end after
  // json), every other prefix must throw.
  StatsPayload p;
  cube::obs::MetricSample s;
  s.name = "m";
  s.kind = cube::obs::InstrumentKind::Counter;
  s.unit = cube::obs::SampleUnit::Count;
  s.value = 3.0;
  p.samples.push_back(s);
  p.json = "{}";
  WireSlowQuery slow;
  slow.canonical = "q";
  slow.outcome = "hit";
  p.slow.push_back(slow);

  const std::string bytes = encode_stats(p);
  StatsPayload no_slow = p;
  no_slow.slow.clear();
  const std::size_t after_json = encode_stats(no_slow).size() - 4;
  StatsPayload samples_only = no_slow;
  samples_only.json.clear();
  const std::size_t after_samples = encode_stats(samples_only).size() - 4 - 4;

  std::size_t decoded = 0;
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    if (cut == after_samples || cut == after_json) {
      const StatsPayload legacy = decode_stats(bytes.substr(0, cut));
      ASSERT_EQ(legacy.samples.size(), 1u);
      EXPECT_TRUE(legacy.slow.empty());
      EXPECT_EQ(legacy.json, cut == after_json ? "{}" : "");
      ++decoded;
      continue;
    }
    EXPECT_THROW((void)decode_stats(bytes.substr(0, cut)), ProtocolError)
        << "prefix of " << cut << " bytes parsed";
  }
  EXPECT_EQ(decoded, 2u);
}

TEST(Protocol, HealthRoundTrip) {
  HealthPayload p;
  p.json = "{\"status\":\"ok\",\"uptime_s\":1.5}";
  const HealthPayload q = decode_health(encode_health(p));
  EXPECT_EQ(q.json, p.json);
  EXPECT_THROW((void)decode_health(encode_health(p) + "x"), ProtocolError);
}

TEST(Protocol, TrailingPayloadBytesRejected) {
  const std::string bytes = encode_hello(HelloPayload{}) + "junk";
  EXPECT_THROW((void)decode_hello(bytes), ProtocolError);
}

TEST(Protocol, UnknownServedModeRejected) {
  ResultPayload p;
  std::string bytes = encode_result(p);
  bytes[0] = 99;  // served is the first little-endian u32
  EXPECT_THROW((void)decode_result(bytes), ProtocolError);
}

TEST(Protocol, MsgTypeNamesAreStable) {
  EXPECT_STREQ(msg_type_name(MsgType::Hello), "Hello");
  EXPECT_STREQ(msg_type_name(MsgType::Busy), "Busy");
  EXPECT_STREQ(msg_type_name(MsgType::ShutdownOk), "ShutdownOk");
  EXPECT_STREQ(msg_type_name(static_cast<MsgType>(999)), "unknown");
}

}  // namespace
