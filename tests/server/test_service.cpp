// AnalysisService: plan + result caching across calls, coalescing of
// identical concurrent queries, admission control, error classification,
// and repository refresh.
#include "server/service.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <filesystem>
#include <future>
#include <limits>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "io/repository.hpp"
#include "obs/metrics.hpp"
#include "testutil.hpp"

namespace {

using cube::Experiment;
using cube::ExperimentRepository;
using cube::StorageKind;
using cube::server::AnalysisService;
using cube::server::QueryOutcome;
using cube::server::Served;
using cube::server::ServiceConfig;
using cube::testing::make_small;

std::uint64_t counter_value(const char* name) {
  return cube::obs::MetricsRegistry::global().counter(name).value();
}

class ServiceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::path(::testing::TempDir()) /
           ("cube_service_" + std::string(::testing::UnitTest::GetInstance()
                                              ->current_test_info()
                                              ->name()));
    std::filesystem::remove_all(dir_);
    repo_ = std::make_unique<ExperimentRepository>(dir_);
    a_ = store_salted("run-a", 0.5);
    b_ = store_salted("run-b", 1.5);
  }
  void TearDown() override {
    repo_.reset();
    std::filesystem::remove_all(dir_);
  }

  std::string store_salted(const std::string& name, double salt) {
    Experiment e = make_small(StorageKind::Dense, name);
    for (std::size_t m = 0; m < e.metadata().num_metrics(); ++m) {
      for (std::size_t c = 0; c < e.metadata().num_cnodes(); ++c) {
        for (std::size_t t = 0; t < e.metadata().num_threads(); ++t) {
          e.severity().add(m, c, t, salt);
        }
      }
    }
    return repo_->store(e);
  }

  std::filesystem::path dir_;
  std::unique_ptr<ExperimentRepository> repo_;
  std::string a_, b_;
};

TEST_F(ServiceTest, ComputesThenServesFromSharedCache) {
  ServiceConfig config;
  config.threads = 2;
  AnalysisService service(*repo_, config);
  const std::string query = "mean(" + a_ + ", " + b_ + ")";

  const QueryOutcome first = service.handle_query(query);
  ASSERT_EQ(first.status, QueryOutcome::Status::Ok);
  EXPECT_EQ(first.served, Served::Computed);
  ASSERT_NE(first.result, nullptr);
  EXPECT_FALSE(first.result->body->empty());
  EXPECT_FALSE(first.result->meta_blob->empty());
  EXPECT_NE(first.result->meta_digest, 0u);

  const QueryOutcome second = service.handle_query(query);
  ASSERT_EQ(second.status, QueryOutcome::Status::Ok);
  EXPECT_EQ(second.served, Served::CacheHit);
  // The identical immutable instance — no re-plan, no reload, no
  // re-serialization.
  EXPECT_EQ(second.result, first.result);
}

TEST_F(ServiceTest, ConcurrentIdenticalQueriesComputeExactlyOnce) {
  ServiceConfig config;
  config.threads = 2;
  // Hold the single computation open long enough for every session to
  // arrive at the cache.
  config.before_compute = [] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  };
  AnalysisService service(*repo_, config);
  const std::string query = "max(" + a_ + ", " + b_ + ")";
  const std::uint64_t computes_before = counter_value("server.computes");

  constexpr int kSessions = 8;
  std::vector<QueryOutcome> outcomes(kSessions);
  std::vector<std::thread> threads;
  threads.reserve(kSessions);
  for (int i = 0; i < kSessions; ++i) {
    threads.emplace_back(
        [&, i] { outcomes[i] = service.handle_query(query); });
  }
  for (auto& t : threads) t.join();

  int computed = 0;
  for (const QueryOutcome& outcome : outcomes) {
    ASSERT_EQ(outcome.status, QueryOutcome::Status::Ok);
    if (outcome.served == Served::Computed) ++computed;
    // Every session holds the same shared result instance.
    EXPECT_EQ(outcome.result, outcomes[0].result);
  }
  EXPECT_EQ(computed, 1);
  EXPECT_EQ(counter_value("server.computes") - computes_before, 1u);
}

TEST_F(ServiceTest, ForceBusyShedsEveryQueryWithStructuredPayload) {
  ServiceConfig config;
  config.threads = 1;
  config.force_busy = true;
  config.busy_retry_ms = 123;
  AnalysisService service(*repo_, config);

  const QueryOutcome outcome =
      service.handle_query("mean(" + a_ + ", " + b_ + ")");
  ASSERT_EQ(outcome.status, QueryOutcome::Status::Busy);
  EXPECT_EQ(outcome.busy.retry_ms, 123u);
  EXPECT_FALSE(outcome.busy.reason.empty());
}

TEST_F(ServiceTest, InflightCeilingShedsTheSecondMiss) {
  ServiceConfig config;
  config.threads = 1;
  config.max_inflight = 1;
  config.busy_queue_wait_ms = 1e9;  // only the ceiling sheds here

  std::mutex m;
  std::condition_variable cv;
  bool release = false;
  bool entered = false;
  std::atomic<bool> first_call{true};
  config.before_compute = [&] {
    if (!first_call.exchange(false)) return;  // block only the first owner
    std::unique_lock<std::mutex> lock(m);
    entered = true;
    cv.notify_all();
    cv.wait(lock, [&] { return release; });
  };
  AnalysisService service(*repo_, config);

  const std::string slow = "mean(" + a_ + ", " + b_ + ")";
  const std::string other = "max(" + a_ + ", " + b_ + ")";
  auto blocked = std::async(std::launch::async,
                            [&] { return service.handle_query(slow); });
  {
    std::unique_lock<std::mutex> lock(m);
    cv.wait(lock, [&] { return entered; });
  }

  // One computation is in flight and the ceiling is 1: a different
  // query's miss must shed.
  const QueryOutcome shed = service.handle_query(other);
  ASSERT_EQ(shed.status, QueryOutcome::Status::Busy);
  EXPECT_EQ(shed.busy.inflight, 1u);
  EXPECT_EQ(shed.busy.reason, "computation ceiling reached");

  {
    std::lock_guard<std::mutex> lock(m);
    release = true;
    cv.notify_all();
  }
  const QueryOutcome done = blocked.get();
  ASSERT_EQ(done.status, QueryOutcome::Status::Ok);

  // With the pool drained the shed query now computes.
  const QueryOutcome retry = service.handle_query(other);
  ASSERT_EQ(retry.status, QueryOutcome::Status::Ok);
  EXPECT_EQ(retry.served, Served::Computed);
}

TEST_F(ServiceTest, HitsAreServedWhileMissesShed) {
  // Admission control applies to COMPUTE work only: with the inflight
  // ceiling saturated, a warm key is still served while a cold one sheds.
  ServiceConfig config;
  config.threads = 1;
  config.max_inflight = 1;
  config.busy_queue_wait_ms = 1e9;

  std::mutex m;
  std::condition_variable cv;
  bool release = false;
  bool entered = false;
  std::atomic<int> compute_calls{0};
  config.before_compute = [&] {
    if (compute_calls.fetch_add(1) != 1) return;  // block the 2nd compute
    std::unique_lock<std::mutex> lock(m);
    entered = true;
    cv.notify_all();
    cv.wait(lock, [&] { return release; });
  };
  AnalysisService service(*repo_, config);

  const std::string warm = "mean(" + a_ + ", " + b_ + ")";
  const std::string slow = "max(" + a_ + ", " + b_ + ")";
  const std::string cold = "min(" + a_ + ", " + b_ + ")";
  ASSERT_EQ(service.handle_query(warm).served, Served::Computed);

  auto blocked = std::async(std::launch::async,
                            [&] { return service.handle_query(slow); });
  {
    std::unique_lock<std::mutex> lock(m);
    cv.wait(lock, [&] { return entered; });
  }

  const QueryOutcome hit = service.handle_query(warm);
  ASSERT_EQ(hit.status, QueryOutcome::Status::Ok);
  EXPECT_EQ(hit.served, Served::CacheHit);

  const QueryOutcome shed = service.handle_query(cold);
  EXPECT_EQ(shed.status, QueryOutcome::Status::Busy);

  {
    std::lock_guard<std::mutex> lock(m);
    release = true;
    cv.notify_all();
  }
  EXPECT_EQ(blocked.get().status, QueryOutcome::Status::Ok);
}

TEST_F(ServiceTest, ErrorCategoriesAreStructured) {
  ServiceConfig config;
  config.threads = 1;
  AnalysisService service(*repo_, config);

  const QueryOutcome parse = service.handle_query("mean(");
  ASSERT_EQ(parse.status, QueryOutcome::Status::Error);
  EXPECT_EQ(parse.error.category, "parse");

  const QueryOutcome plan = service.handle_query("mean(no-such-id)");
  ASSERT_EQ(plan.status, QueryOutcome::Status::Error);
  EXPECT_EQ(plan.error.category, "plan");

  // With load validation on, a NaN operand plans fine but fails during
  // execution — the eval category.
  ServiceConfig strict;
  strict.threads = 1;
  strict.validate_loads = true;
  AnalysisService validating(*repo_, strict);
  Experiment bad = make_small(StorageKind::Dense, "poisoned");
  bad.severity().set(0, 0, 0, std::numeric_limits<double>::quiet_NaN());
  const std::string poisoned = repo_->store(bad);
  const std::string failing = "max(" + poisoned + ", " + poisoned + ")";

  const QueryOutcome eval = validating.handle_query(failing);
  ASSERT_EQ(eval.status, QueryOutcome::Status::Error);
  EXPECT_EQ(eval.error.category, "eval");

  // A failed computation never poisons the key: the same query still
  // fails, freshly, rather than hanging on a dead in-flight slot.
  const QueryOutcome again = validating.handle_query(failing);
  ASSERT_EQ(again.status, QueryOutcome::Status::Error);
  EXPECT_EQ(again.error.category, "eval");
}

TEST_F(ServiceTest, RefreshPicksUpConcurrentlyStoredExperiments) {
  ServiceConfig config;
  config.threads = 1;
  AnalysisService service(*repo_, config);

  // Another process (second repository object over the same directory)
  // appends an experiment.
  ExperimentRepository other(dir_);
  Experiment fresh = make_small(StorageKind::Dense, "late-arrival");
  const std::string id = other.store(fresh);

  const QueryOutcome before =
      service.handle_query("max(" + id + ", " + id + ")");
  ASSERT_EQ(before.status, QueryOutcome::Status::Error);
  EXPECT_EQ(before.error.category, "plan");

  EXPECT_TRUE(service.refresh());
  EXPECT_FALSE(service.refresh());  // idempotent until the next change

  const QueryOutcome after =
      service.handle_query("max(" + id + ", " + id + ")");
  ASSERT_EQ(after.status, QueryOutcome::Status::Ok);
  EXPECT_EQ(after.served, Served::Computed);
}

TEST_F(ServiceTest, StaticAnalysisRejectsIncompatiblePlansPreCompute) {
  const std::string clash = repo_->store(cube::testing::make_unit_clash());
  ServiceConfig config;
  config.threads = 1;
  AnalysisService service(*repo_, config);
  const std::string query = "mean(" + a_ + ", " + clash + ")";
  const std::uint64_t computes = counter_value("server.computes");
  const std::uint64_t rejected = counter_value("server.rejected");

  const QueryOutcome out = service.handle_query(query);
  ASSERT_EQ(out.status, QueryOutcome::Status::Error);
  EXPECT_EQ(out.error.category, "analysis");
  bool saw_unit = false;
  for (const auto& d : out.error.diagnostics) {
    if (d.rule == "plan.metric-unit") saw_unit = true;
  }
  EXPECT_TRUE(saw_unit)
      << "the rejection must carry the analyzer's structured findings";
  EXPECT_EQ(counter_value("server.rejected") - rejected, 1u);
  EXPECT_EQ(counter_value("server.computes") - computes, 0u)
      << "a rejected plan must never reach the compute path";

  // The verdict is cached on the plan-cache entry: repeats reject again
  // without computing.
  const QueryOutcome again = service.handle_query(query);
  ASSERT_EQ(again.status, QueryOutcome::Status::Error);
  EXPECT_EQ(again.error.category, "analysis");
  EXPECT_EQ(counter_value("server.computes") - computes, 0u);
}

TEST_F(ServiceTest, BudgetGateRejectsExpensivePlansPreCompute) {
  ServiceConfig tight;
  tight.threads = 1;
  tight.budget_bytes = 1;
  AnalysisService service(*repo_, tight);
  const std::string query = "mean(" + a_ + ", " + b_ + ")";
  const std::uint64_t computes = counter_value("server.computes");

  const QueryOutcome out = service.handle_query(query);
  ASSERT_EQ(out.status, QueryOutcome::Status::Error);
  EXPECT_EQ(out.error.category, "analysis");
  bool saw_budget = false;
  for (const auto& d : out.error.diagnostics) {
    if (d.rule == "cost.over-budget") saw_budget = true;
  }
  EXPECT_TRUE(saw_budget);
  EXPECT_EQ(counter_value("server.computes") - computes, 0u);

  // The same query under a generous budget computes normally.
  ServiceConfig roomy;
  roomy.threads = 1;
  roomy.budget_bytes = std::uint64_t{1} << 30;
  AnalysisService admitting(*repo_, roomy);
  EXPECT_EQ(admitting.handle_query(query).status, QueryOutcome::Status::Ok);
}

TEST_F(ServiceTest, AdmissionAnalysisOffAdmitsIncompatiblePlans) {
  const std::string clash = repo_->store(cube::testing::make_unit_clash());
  ServiceConfig config;
  config.threads = 1;
  config.admission_analysis = false;
  AnalysisService service(*repo_, config);
  const std::uint64_t rejected = counter_value("server.rejected");

  // Metadata integration uniquifies the clashing metric name, so the
  // un-gated query computes a (semantically dubious) result — the gate is
  // admission policy, not a crash guard.
  const QueryOutcome out =
      service.handle_query("mean(" + a_ + ", " + clash + ")");
  ASSERT_EQ(out.status, QueryOutcome::Status::Ok);
  EXPECT_EQ(counter_value("server.rejected") - rejected, 0u);
}

TEST_F(ServiceTest, StatsExposeServerInstruments) {
  ServiceConfig config;
  config.threads = 1;
  AnalysisService service(*repo_, config);
  (void)service.handle_query("mean(" + a_ + ", " + b_ + ")");

  const cube::server::StatsPayload stats = service.stats();
  bool saw_queries = false;
  bool saw_queue_wait = false;
  for (const auto& sample : stats.samples) {
    if (sample.name == "server.queries") saw_queries = true;
    if (sample.name == "server.queue_wait") saw_queue_wait = true;
  }
  EXPECT_TRUE(saw_queries);
  EXPECT_TRUE(saw_queue_wait);
}

TEST(SlowQueryLog, KeepsWorstNInDeterministicOrder) {
  cube::server::SlowQueryLog log(/*capacity=*/3, /*threshold_ms=*/10.0);
  auto offer = [&](std::uint64_t id, double ms) {
    cube::server::WireSlowQuery q;
    q.request_id = id;
    q.canonical = "q" + std::to_string(id);
    q.outcome = "computed";
    q.server_ms = ms;
    log.record(std::move(q));
  };
  offer(1, 5.0);  // below threshold: never recorded
  offer(2, 50.0);
  offer(3, 20.0);
  offer(4, 30.0);
  offer(5, 15.0);   // full, slower entries only: dropped
  offer(6, 100.0);  // displaces the weakest (20 ms)

  const auto kept = log.snapshot();
  ASSERT_EQ(kept.size(), 3u);
  EXPECT_EQ(kept[0].request_id, 6u);  // worst first
  EXPECT_EQ(kept[1].request_id, 2u);
  EXPECT_EQ(kept[2].request_id, 4u);
  // Sequences record arrival order of ACCEPTED entries.
  EXPECT_LT(kept[1].sequence, kept[2].sequence);
}

TEST(SlowQueryLog, CapacityZeroDisables) {
  cube::server::SlowQueryLog log(0, 0.0);
  cube::server::WireSlowQuery q;
  q.server_ms = 1e6;
  log.record(std::move(q));
  EXPECT_TRUE(log.snapshot().empty());
}

TEST_F(ServiceTest, SlowLogRecordsOutcomePhasesAndRequestId) {
  ServiceConfig config;
  config.threads = 1;
  config.slow_log_threshold_ms = 0.0;  // everything competes
  config.slow_log_capacity = 8;
  AnalysisService service(*repo_, config);
  const std::string query = "mean(" + a_ + ", " + b_ + ")";
  (void)service.handle_query(query, /*request_id=*/777);
  (void)service.handle_query(query, /*request_id=*/778);  // cache hit
  (void)service.handle_query("mean(", /*request_id=*/779);

  const auto entries = service.slow_log().snapshot();
  ASSERT_EQ(entries.size(), 3u);
  bool saw_computed = false, saw_hit = false, saw_error = false;
  for (const auto& e : entries) {
    if (e.request_id == 777) {
      saw_computed = true;
      EXPECT_EQ(e.outcome, "computed");
      // The canonical plan text, not the raw query.
      EXPECT_NE(e.canonical.find("mean("), std::string::npos);
      EXPECT_NE(e.canonical, query);
      EXPECT_GT(e.server_ms, 0.0);
      EXPECT_GT(e.compute_ms, 0.0);
      EXPECT_GT(e.serialize_ms, 0.0);
      EXPECT_LE(e.plan_ms + e.compute_ms + e.serialize_ms,
                e.server_ms + 1.0);
    } else if (e.request_id == 778) {
      saw_hit = true;
      EXPECT_EQ(e.outcome, "hit");
      EXPECT_EQ(e.compute_ms, 0.0);
    } else if (e.request_id == 779) {
      saw_error = true;
      EXPECT_EQ(e.outcome, "error");
      EXPECT_EQ(e.canonical, "mean(");  // never planned
    }
  }
  EXPECT_TRUE(saw_computed);
  EXPECT_TRUE(saw_hit);
  EXPECT_TRUE(saw_error);
}

TEST_F(ServiceTest, StatsJsonCarriesServerStateMetricsAndSlowQueries) {
  ServiceConfig config;
  config.threads = 1;
  config.self_profile_source = "testd";
  AnalysisService service(*repo_, config);
  (void)service.handle_query("mean(" + a_ + ", " + b_ + ")", 42);

  const std::string json = service.stats_json();
  for (const char* key :
       {"\"server\":", "\"name\":\"testd\"", "\"uptime_s\":",
        "\"generation\":", "\"queries\":", "\"cache_hits\":", "\"busy\":",
        "\"inflight\":", "\"max_inflight\":", "\"cache_bytes\":",
        "\"cache_capacity_bytes\":", "\"slow_log_threshold_ms\":",
        "\"self_profile_windows\":", "\"metrics\":",
        "\"server.service_time\":", "\"p99\":", "\"slow_queries\":[",
        "\"request_id\":42"}) {
    EXPECT_NE(json.find(key), std::string::npos) << "missing " << key;
  }
  // The StatsOk payload ships the identical document.
  EXPECT_FALSE(service.stats().json.empty());
}

TEST_F(ServiceTest, HealthJsonReportsLiveState) {
  ServiceConfig config;
  config.threads = 1;
  AnalysisService service(*repo_, config);
  const std::string json = service.health_json();
  EXPECT_NE(json.find("\"status\":\"ok\""), std::string::npos);
  EXPECT_NE(json.find("\"protocol_version\":1"), std::string::npos);
  EXPECT_NE(json.find("\"uptime_s\":"), std::string::npos);
  EXPECT_GT(service.uptime_s(), 0.0);
}

TEST_F(ServiceTest, SelfProfileWindowsStoreLintableDiffableExperiments) {
  ServiceConfig config;
  config.threads = 1;
  config.self_profile_source = "cubed-test";
  AnalysisService service(*repo_, config);
  const std::string query = "mean(" + a_ + ", " + b_ + ")";
  (void)service.handle_query(query);

  const std::string id1 = service.export_self_profile_window();
  (void)service.handle_query(query);  // hits; still moves counters
  const std::string id2 = service.export_self_profile_window();
  EXPECT_EQ(service.self_profile_windows(), 2u);
  ASSERT_NE(id1, id2);

  service.refresh();  // the service's own stores bump the generation
  const Experiment w1 = repo_->load(id1);
  const Experiment w2 = repo_->load(id2);
  EXPECT_EQ(w1.attribute("cube.self.source"), "cubed-test");
  EXPECT_EQ(w1.attribute("cube.self.window"), "1");
  EXPECT_EQ(w2.attribute("cube.self.window"), "2");
  // Windows carry digest-identical metadata: `difference` composes them.
  EXPECT_EQ(w1.metadata().digest(), w2.metadata().digest());

  // The windows are queryable through the reserved attribute namespace
  // like any other experiment — the observability loop closes.
  const QueryOutcome diff = service.handle_query(
      "difference(" + id2 + ", " + id1 + ")");
  ASSERT_EQ(diff.status, QueryOutcome::Status::Ok);
}

TEST_F(ServiceTest, HousekeepingTickExportsOnInterval) {
  ServiceConfig off;
  off.threads = 1;
  off.self_profile_interval_s = 0;
  AnalysisService disabled(*repo_, off);
  disabled.housekeeping_tick();
  EXPECT_EQ(disabled.self_profile_windows(), 0u);

  // Interval 0 elapsed immediately is not expressible via config (the
  // smallest interval is one second), so drive the export directly: the
  // tick path and the direct path share export_self_profile_window().
  ServiceConfig on;
  on.threads = 1;
  on.self_profile_interval_s = 1;
  AnalysisService enabled(*repo_, on);
  enabled.housekeeping_tick();  // not due yet
  EXPECT_EQ(enabled.self_profile_windows(), 0u);
  std::this_thread::sleep_for(std::chrono::milliseconds(1100));
  enabled.housekeeping_tick();  // due now
  EXPECT_EQ(enabled.self_profile_windows(), 1u);
}

}  // namespace
