// End-to-end daemon tests over a real unix-domain socket: results are
// bit-identical to a direct engine run, the shared cache spans sessions,
// malformed and abruptly-closed connections never take the server down,
// and shutdown is clean.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cstring>
#include <filesystem>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "common/posix_io.hpp"
#include "io/cube_format.hpp"
#include "io/repository.hpp"
#include "query/engine.hpp"
#include "server/client.hpp"
#include "server/server.hpp"
#include "testutil.hpp"

namespace {

using cube::Experiment;
using cube::ExperimentRepository;
using cube::StorageKind;
using cube::write_full;
using namespace cube::server;
using cube::testing::make_small;

/// Raw socket for driving the protocol by hand (hostile-client tests).
struct RawConn {
  int fd = -1;
  explicit RawConn(const std::filesystem::path& path) {
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::memcpy(addr.sun_path, path.c_str(), path.string().size() + 1);
    fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0 ||
        ::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) != 0) {
      throw std::runtime_error("raw connect failed");
    }
  }
  ~RawConn() {
    if (fd >= 0) ::close(fd);
  }
  void send(const std::string& bytes) { write_full(fd, bytes.data(), bytes.size()); }
};

class ServerE2eTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::path(::testing::TempDir()) /
           ("cube_e2e_" + std::string(::testing::UnitTest::GetInstance()
                                          ->current_test_info()
                                          ->name()));
    std::filesystem::remove_all(dir_);
    repo_ = std::make_unique<ExperimentRepository>(dir_ / "repo");
    a_ = store_salted("run-a", 0.5);
    b_ = store_salted("run-b", 1.5);

    ServiceConfig service_config;
    service_config.threads = 2;
    service_ = std::make_unique<AnalysisService>(*repo_, service_config);

    ServerConfig server_config;
    server_config.socket_path = dir_ / "cubed.sock";
    server_config.refresh_interval_ms = 50;
    server_ = std::make_unique<CubedServer>(*service_, server_config);
    server_->start();
    socket_ = server_config.socket_path;
  }
  void TearDown() override {
    server_->stop();
    server_.reset();
    service_.reset();
    repo_.reset();
    std::filesystem::remove_all(dir_);
  }

  std::string store_salted(const std::string& name, double salt) {
    Experiment e = make_small(StorageKind::Dense, name);
    for (std::size_t m = 0; m < e.metadata().num_metrics(); ++m) {
      for (std::size_t c = 0; c < e.metadata().num_cnodes(); ++c) {
        for (std::size_t t = 0; t < e.metadata().num_threads(); ++t) {
          e.severity().add(m, c, t, salt);
        }
      }
    }
    return repo_->store(e);
  }

  ClientConfig client_config() const {
    ClientConfig config;
    config.socket_path = socket_;
    return config;
  }

  std::filesystem::path dir_;
  std::filesystem::path socket_;
  std::unique_ptr<ExperimentRepository> repo_;
  std::unique_ptr<AnalysisService> service_;
  std::unique_ptr<CubedServer> server_;
  std::string a_, b_;
};

TEST_F(ServerE2eTest, RemoteResultIsBitIdenticalToDirectEngineRun) {
  const std::string query = "mean(" + a_ + ", " + b_ + ")";

  CubeClient client(client_config());
  const ClientResult remote = client.query(query);
  EXPECT_EQ(remote.served, Served::Computed);

  // The same query straight through the engine over a second repository
  // object (a separate process's view of the same directory).
  ExperimentRepository direct_repo(dir_ / "repo");
  cube::query::QueryOptions options;
  options.threads = 1;
  cube::query::QueryEngine engine(direct_repo, options);
  const cube::query::QueryResult direct = engine.run(query);

  EXPECT_EQ(remote.canonical, direct.canonical);
  std::ostringstream remote_xml, direct_xml;
  cube::write_cube_xml(remote.experiment, remote_xml);
  cube::write_cube_xml(direct.experiment, direct_xml);
  EXPECT_EQ(remote_xml.str(), direct_xml.str());
}

TEST_F(ServerE2eTest, SharedCacheSpansSessions) {
  const std::string query = "max(" + a_ + ", " + b_ + ")";
  CubeClient first(client_config());
  EXPECT_EQ(first.query(query).served, Served::Computed);

  CubeClient second(client_config());
  const ClientResult hit = second.query(query);
  EXPECT_EQ(hit.served, Served::CacheHit);
  // A fresh session still gets the metadata blob (per-session dedup).
  EXPECT_TRUE(hit.meta_shipped);
}

TEST_F(ServerE2eTest, MetadataShipsOncePerSession) {
  CubeClient client(client_config());
  const ClientResult one = client.query("mean(" + a_ + ", " + b_ + ")");
  EXPECT_TRUE(one.meta_shipped);
  // A DIFFERENT query over the same metadata: the session already holds
  // the blob, so the result travels without it.
  const ClientResult two = client.query("min(" + a_ + ", " + b_ + ")");
  EXPECT_FALSE(two.meta_shipped);
  EXPECT_LT(two.wire_bytes, one.wire_bytes);
  // Both decode against the SAME interned metadata instance.
  EXPECT_EQ(&one.experiment.metadata(), &two.experiment.metadata());
}

TEST_F(ServerE2eTest, ConcurrentClientsAllGetCorrectResults) {
  const std::string query = "mean(" + a_ + ", " + b_ + ")";
  constexpr int kClients = 6;
  std::vector<std::string> canonicals(kClients);
  std::vector<std::thread> threads;
  threads.reserve(kClients);
  for (int i = 0; i < kClients; ++i) {
    threads.emplace_back([&, i] {
      CubeClient client(client_config());
      canonicals[i] = client.query(query).canonical;
    });
  }
  for (auto& t : threads) t.join();
  for (int i = 1; i < kClients; ++i) EXPECT_EQ(canonicals[i], canonicals[0]);
}

TEST_F(ServerE2eTest, RemoteErrorsCarryCategories) {
  CubeClient client(client_config());
  try {
    (void)client.query("mean(");
    FAIL() << "parse error expected";
  } catch (const RemoteError& e) {
    EXPECT_EQ(e.payload().category, "parse");
  }
  // The session survives a query error.
  client.ping();
  EXPECT_EQ(client.query("mean(" + a_ + ", " + b_ + ")").served,
            Served::Computed);
}

TEST_F(ServerE2eTest, GarbageMagicGetsProtocolErrorNotACrash) {
  {
    RawConn conn(socket_);
    conn.send(std::string(64, 'Z'));
    // The server answers with a structured protocol Error frame...
    const auto reply = read_frame(conn.fd);
    ASSERT_TRUE(reply.has_value());
    EXPECT_EQ(reply->type, MsgType::Error);
    EXPECT_EQ(decode_error(reply->payload).category, "protocol");
    // ...then closes the session.
    EXPECT_FALSE(read_frame(conn.fd).has_value());
  }
  // Other sessions are unaffected.
  CubeClient client(client_config());
  client.ping();
}

TEST_F(ServerE2eTest, TruncatedFrameGetsProtocolError) {
  RawConn conn(socket_);
  // A Hello header claiming 500 payload bytes, then only 5, then EOF.
  std::string h;
  auto le32 = [&](std::uint32_t v) {
    for (int i = 0; i < 4; ++i) h.push_back(static_cast<char>(v >> (8 * i)));
  };
  le32(kFrameMagic);
  le32(static_cast<std::uint32_t>(MsgType::Hello));
  h.append(8, '\0');
  h[8] = static_cast<char>(500 % 256);
  h[9] = static_cast<char>(500 / 256);
  conn.send(h);
  conn.send("5byte");
  ::shutdown(conn.fd, SHUT_WR);

  const auto reply = read_frame(conn.fd);
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(reply->type, MsgType::Error);
  EXPECT_EQ(decode_error(reply->payload).category, "protocol");
}

TEST_F(ServerE2eTest, OversizedLengthPrefixIsRejectedStructurally) {
  RawConn conn(socket_);
  std::string h;
  auto le32 = [&](std::uint32_t v) {
    for (int i = 0; i < 4; ++i) h.push_back(static_cast<char>(v >> (8 * i)));
  };
  le32(kFrameMagic);
  le32(static_cast<std::uint32_t>(MsgType::Query));
  for (int i = 0; i < 7; ++i) h.push_back('\xff');
  h.push_back('\x7f');  // payload_len just under 2^63
  conn.send(h);

  const auto reply = read_frame(conn.fd);
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(reply->type, MsgType::Error);
  EXPECT_EQ(decode_error(reply->payload).category, "protocol");
}

TEST_F(ServerE2eTest, AbruptDisconnectMidQueryDoesNotHarmTheServer) {
  for (int round = 0; round < 3; ++round) {
    RawConn conn(socket_);
    HelloPayload hello;
    hello.client = "vanishing";
    write_frame(conn.fd, MsgType::Hello, encode_hello(hello));
    QueryPayload query;
    query.text = "mean(" + a_ + ", " + b_ + ")";
    write_frame(conn.fd, MsgType::Query, encode_query(query));
    // Vanish without reading the response: the server's write hits a
    // closed peer (EPIPE / reset), which must only end that session.
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  CubeClient client(client_config());
  client.ping();
  EXPECT_EQ(client.query("min(" + a_ + ", " + b_ + ")").served,
            Served::Computed);
}

TEST_F(ServerE2eTest, ClientFramesOfServerTypesAreRejected) {
  RawConn conn(socket_);
  HelloPayload hello;
  write_frame(conn.fd, MsgType::Hello, encode_hello(hello));
  const auto ok = read_frame(conn.fd);
  ASSERT_TRUE(ok.has_value());
  ASSERT_EQ(ok->type, MsgType::HelloOk);

  write_frame(conn.fd, MsgType::Result, encode_result(ResultPayload{}));
  const auto reply = read_frame(conn.fd);
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(reply->type, MsgType::Error);
  EXPECT_EQ(decode_error(reply->payload).category, "protocol");
}

TEST_F(ServerE2eTest, HousekeepingPicksUpExternallyStoredExperiments) {
  // Another "process" appends to the repository after the daemon started.
  ExperimentRepository other(dir_ / "repo");
  const std::string late = other.store(make_small(StorageKind::Dense, "late"));

  CubeClient client(client_config());
  // The 50 ms housekeeping refresh makes the new entry queryable without
  // a daemon restart; poll briefly to avoid timing flakiness.
  bool served = false;
  for (int attempt = 0; attempt < 100 && !served; ++attempt) {
    try {
      (void)client.query("max(" + late + ", " + late + ")");
      served = true;
    } catch (const RemoteError&) {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
  }
  EXPECT_TRUE(served);
}

TEST_F(ServerE2eTest, TelemetryTravelsOverTheWire) {
  CubeClient client(client_config());
  const ClientResult result = client.query("mean(" + a_ + ", " + b_ + ")");
  EXPECT_NE(client.last_request_id(), 0u);

  // Health answers on the session thread with a well-formed document.
  const HealthPayload health = client.health();
  EXPECT_NE(health.json.find("\"status\":\"ok\""), std::string::npos);
  EXPECT_NE(health.json.find("\"uptime_s\":"), std::string::npos);

  // Stats ships the telemetry JSON and the slow-query log; the query this
  // session just ran appears with its auto-assigned request id.
  const StatsPayload stats = client.stats();
  EXPECT_NE(stats.json.find("\"server\":"), std::string::npos);
  EXPECT_NE(stats.json.find("\"slow_queries\":["), std::string::npos);
  bool found = false;
  for (const auto& slow : stats.slow) {
    if (slow.request_id == client.last_request_id()) {
      found = true;
      EXPECT_EQ(slow.outcome, "computed");
      EXPECT_GT(slow.server_ms, 0.0);
    }
  }
  EXPECT_TRUE(found) << "the served query must appear in the slow log";
  (void)result;

  // Quantiles arrive in the per-sample records.
  for (const auto& s : stats.samples) {
    if (s.name == "server.service_time") {
      EXPECT_GT(s.count, 0u);
      EXPECT_GE(s.p99, s.p50);
    }
  }
}

TEST_F(ServerE2eTest, StatsAndCleanShutdownOverTheWire) {
  CubeClient client(client_config());
  (void)client.query("mean(" + a_ + ", " + b_ + ")");
  const StatsPayload stats = client.stats();
  EXPECT_FALSE(stats.samples.empty());

  client.shutdown_server();
  server_->wait();  // the Shutdown frame unblocks wait()
  server_->stop();
  // The socket is gone: new connections fail cleanly.
  EXPECT_THROW(CubeClient{client_config()}, cube::IoError);
}

}  // namespace
