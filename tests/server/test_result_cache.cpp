// The shared result cache: ownership protocol, coalescing, failure
// propagation, and byte-budget LRU eviction.
#include "server/result_cache.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/error.hpp"

namespace {

using cube::Error;
using cube::server::CachedResult;
using cube::server::ResultCache;

CachedResult make_result(const std::string& canonical, std::size_t bytes) {
  CachedResult r;
  r.canonical = canonical;
  r.meta_digest = 1;
  r.meta_blob = std::make_shared<const std::string>("m");
  r.body = std::make_shared<const std::string>(std::string(bytes, 'x'));
  return r;
}

TEST(ResultCache, FirstAcquirerOwnsThenLaterOnesHit) {
  ResultCache cache(1 << 20);
  auto first = cache.acquire(7);
  EXPECT_EQ(first.outcome, ResultCache::Outcome::Owner);
  EXPECT_EQ(first.result, nullptr);

  auto published = cache.publish(7, make_result("mean(a)", 100));
  ASSERT_NE(published, nullptr);

  auto second = cache.acquire(7);
  EXPECT_EQ(second.outcome, ResultCache::Outcome::Hit);
  EXPECT_EQ(second.result, published);  // the same shared instance
  EXPECT_EQ(second.result->canonical, "mean(a)");
  EXPECT_EQ(cache.entries(), 1u);
}

TEST(ResultCache, DistinctKeysAreIndependent) {
  ResultCache cache(1 << 20);
  EXPECT_EQ(cache.acquire(1).outcome, ResultCache::Outcome::Owner);
  EXPECT_EQ(cache.acquire(2).outcome, ResultCache::Outcome::Owner);
  cache.publish(1, make_result("a", 10));
  EXPECT_EQ(cache.acquire(1).outcome, ResultCache::Outcome::Hit);
  // Key 2 is still in flight; key 1's publish must not have resolved it —
  // this acquire on key 2 would block, so only verify key 1 here and
  // complete key 2.
  cache.publish(2, make_result("b", 10));
  EXPECT_EQ(cache.acquire(2).outcome, ResultCache::Outcome::Hit);
}

TEST(ResultCache, ConcurrentAcquirersShareOneComputation) {
  ResultCache cache(1 << 20);
  auto owner = cache.acquire(42);
  ASSERT_EQ(owner.outcome, ResultCache::Outcome::Owner);

  constexpr int kWaiters = 8;
  std::atomic<int> arrived{0};
  std::vector<std::shared_ptr<const CachedResult>> results(kWaiters);
  std::vector<ResultCache::Outcome> outcomes(kWaiters);
  std::vector<std::thread> threads;
  threads.reserve(kWaiters);
  for (int i = 0; i < kWaiters; ++i) {
    threads.emplace_back([&, i] {
      arrived.fetch_add(1);
      auto lookup = cache.acquire(42);
      outcomes[i] = lookup.outcome;
      results[i] = std::move(lookup.result);
    });
  }
  while (arrived.load() < kWaiters) std::this_thread::yield();
  // The slot is in flight, so every waiter blocks (or, if it was still
  // between the counter and the acquire, hits after publish) — either
  // way nobody becomes a second owner.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  auto published = cache.publish(42, make_result("shared", 100));
  for (auto& t : threads) t.join();

  for (int i = 0; i < kWaiters; ++i) {
    EXPECT_NE(outcomes[i], ResultCache::Outcome::Owner) << "waiter " << i;
    EXPECT_EQ(results[i], published) << "waiter " << i;
  }
}

TEST(ResultCache, OwnerFailureRethrowsToWaitersAndFreesTheKey) {
  ResultCache cache(1 << 20);
  ASSERT_EQ(cache.acquire(9).outcome, ResultCache::Outcome::Owner);

  constexpr int kWaiters = 4;
  std::atomic<int> arrived{0};
  std::atomic<int> threw{0};
  std::vector<std::thread> threads;
  for (int i = 0; i < kWaiters; ++i) {
    threads.emplace_back([&] {
      arrived.fetch_add(1);
      try {
        (void)cache.acquire(9);
      } catch (const Error& e) {
        EXPECT_STREQ(e.what(), "operand went missing");
        threw.fetch_add(1);
      }
    });
  }
  while (arrived.load() < kWaiters) std::this_thread::yield();
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  cache.fail(9, [] { throw Error("operand went missing"); });
  for (auto& t : threads) t.join();
  EXPECT_EQ(threw.load(), kWaiters);

  // The failed slot is gone: the next acquirer owns a fresh computation.
  EXPECT_EQ(cache.acquire(9).outcome, ResultCache::Outcome::Owner);
  cache.publish(9, make_result("retry", 10));
  EXPECT_EQ(cache.acquire(9).outcome, ResultCache::Outcome::Hit);
}

TEST(ResultCache, EvictsLeastRecentlyUsedOverByteBudget) {
  ResultCache cache(350);  // fits three ~110-byte entries, not four
  for (std::uint64_t key = 1; key <= 3; ++key) {
    ASSERT_EQ(cache.acquire(key).outcome, ResultCache::Outcome::Owner);
    cache.publish(key, make_result("q" + std::to_string(key), 100));
  }
  EXPECT_EQ(cache.entries(), 3u);
  EXPECT_EQ(cache.evictions(), 0u);

  // Touch key 1 so key 2 is the least recently used.
  EXPECT_EQ(cache.acquire(1).outcome, ResultCache::Outcome::Hit);

  ASSERT_EQ(cache.acquire(4).outcome, ResultCache::Outcome::Owner);
  cache.publish(4, make_result("q4", 100));
  EXPECT_GE(cache.evictions(), 1u);
  EXPECT_EQ(cache.acquire(1).outcome, ResultCache::Outcome::Hit);
  EXPECT_EQ(cache.acquire(4).outcome, ResultCache::Outcome::Hit);
  EXPECT_EQ(cache.acquire(2).outcome, ResultCache::Outcome::Owner);  // gone
  cache.publish(2, make_result("q2", 100));
}

TEST(ResultCache, OversizedSingleEntryIsEvictedImmediately) {
  ResultCache cache(50);
  ASSERT_EQ(cache.acquire(1).outcome, ResultCache::Outcome::Owner);
  auto published = cache.publish(1, make_result("big", 1000));
  // The publisher still gets the result to serve; the cache just cannot
  // retain it.
  ASSERT_NE(published, nullptr);
  EXPECT_EQ(published->canonical, "big");
  EXPECT_EQ(cache.entries(), 0u);
  EXPECT_EQ(cache.acquire(1).outcome, ResultCache::Outcome::Owner);
  cache.fail(1, [] { throw Error("abandoned"); });
}

TEST(ResultCache, ClearDropsReadyEntries) {
  ResultCache cache(1 << 20);
  ASSERT_EQ(cache.acquire(1).outcome, ResultCache::Outcome::Owner);
  cache.publish(1, make_result("a", 10));
  EXPECT_EQ(cache.entries(), 1u);
  cache.clear();
  EXPECT_EQ(cache.entries(), 0u);
  EXPECT_EQ(cache.size_bytes(), 0u);
  EXPECT_EQ(cache.acquire(1).outcome, ResultCache::Outcome::Owner);
  cache.publish(1, make_result("a", 10));
  EXPECT_EQ(cache.acquire(1).outcome, ResultCache::Outcome::Hit);
}

}  // namespace
