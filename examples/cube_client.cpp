// cube_client: command-line client for the cubed daemon (docs/SERVER.md).
//
// Runs a query remotely and prints the same severity report cube_query
// prints locally, plus how the server served it (computed, cache-hit, or
// coalesced).  Also drives the daemon's control surface: ping, remote
// stats, shutdown.
//
// Usage:
//   cube_client --socket <path> [<expr>] [options]
//
// Options:
//   --repeat N        run the query N times over one session (the second
//                     round trip demonstrates a shared-cache hit)
//   -o out.cube       write the (last) result as CUBE XML
//   --hotspots N      rows in the severity report (default 10)
//   --quiet           suppress the severity report
//   --expect-served computed|hit|coalesced
//                     exit nonzero unless the LAST response was served
//                     that way (CI assertions)
//   --expect-busy     exit 0 only if the server sheds the query with
//                     BUSY (CI assertion for --force-busy daemons)
//   --ping            liveness probe
//   --server-stats    print the server's metric samples
//   --stats-json      print the server's full telemetry JSON document
//   --health          print the server's health JSON (served off the
//                     compute pool: answers even under saturation)
//   --shutdown        ask the daemon to drain and exit
//
// Exit codes: 0 success, 1 error, 2 unexpected BUSY.
#include <iostream>
#include <optional>
#include <string>

#include "common/error.hpp"
#include "common/string_util.hpp"
#include "io/cube_format.hpp"
#include "report_util.hpp"
#include "server/client.hpp"

namespace {

const char* served_name(cube::server::Served served) {
  switch (served) {
    case cube::server::Served::Computed: return "computed";
    case cube::server::Served::CacheHit: return "hit";
    case cube::server::Served::Coalesced: return "coalesced";
  }
  return "unknown";
}

}  // namespace

int main(int argc, char** argv) {
  cube::server::ClientConfig config;
  std::string expr;
  std::optional<std::string> output;
  std::optional<std::string> expect_served;
  std::size_t repeat = 1;
  std::size_t hotspot_count = 10;
  bool quiet = false;
  bool expect_busy = false;
  bool do_ping = false;
  bool do_stats = false;
  bool do_stats_json = false;
  bool do_health = false;
  bool do_shutdown = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--socket" && i + 1 < argc) {
      config.socket_path = argv[++i];
    } else if (arg == "--repeat" && i + 1 < argc) {
      if (!cube::parse_size(argv[++i], repeat) || repeat == 0) {
        std::cerr << "error: --repeat expects a positive number\n";
        return 1;
      }
    } else if (arg == "-o" && i + 1 < argc) {
      output = argv[++i];
    } else if (arg == "--hotspots" && i + 1 < argc) {
      if (!cube::parse_size(argv[++i], hotspot_count)) {
        std::cerr << "error: --hotspots expects a number\n";
        return 1;
      }
    } else if (arg == "--expect-served" && i + 1 < argc) {
      expect_served = argv[++i];
    } else if (arg == "--expect-busy") {
      expect_busy = true;
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (arg == "--ping") {
      do_ping = true;
    } else if (arg == "--server-stats") {
      do_stats = true;
    } else if (arg == "--stats-json") {
      do_stats_json = true;
    } else if (arg == "--health") {
      do_health = true;
    } else if (arg == "--shutdown") {
      do_shutdown = true;
    } else if (expr.empty() && !arg.empty() && arg[0] != '-') {
      expr = arg;
    } else {
      std::cerr << "error: unexpected argument '" << arg << "'\n";
      return 1;
    }
  }
  if (config.socket_path.empty() ||
      (expr.empty() && !do_ping && !do_stats && !do_stats_json &&
       !do_health && !do_shutdown)) {
    std::cerr << "usage: cube_client --socket <path> [<expr>] [--repeat N]"
                 " [-o out.cube] [--hotspots N] [--quiet]"
                 " [--expect-served computed|hit|coalesced] [--expect-busy]"
                 " [--ping] [--server-stats] [--stats-json] [--health]"
                 " [--shutdown]\n";
    return 1;
  }

  try {
    cube::server::CubeClient client(config);
    if (do_ping) {
      client.ping();
      std::cout << "pong from " << client.server_name() << " (generation "
                << client.generation() << ")\n";
    }

    if (!expr.empty()) {
      std::optional<cube::server::ClientResult> last;
      try {
        for (std::size_t run = 0; run < repeat; ++run) {
          last = client.query(expr);
          std::cout << "run " << run + 1 << "/" << repeat << ": served "
                    << served_name(last->served) << ", server "
                    << cube::format_value(last->server_ms, 2) << " ms, "
                    << last->wire_bytes << " wire bytes"
                    << (last->meta_shipped ? " (metadata shipped)"
                                           : " (metadata cached)")
                    << "\n";
        }
      } catch (const cube::server::BusyError& e) {
        if (expect_busy) {
          std::cout << "busy as expected: " << e.payload().reason
                    << " (inflight " << e.payload().inflight << ", retry "
                    << e.payload().retry_ms << " ms)\n";
          return 0;
        }
        std::cerr << "error: " << e.what() << "\n";
        return 2;
      }
      if (expect_busy) {
        std::cerr << "error: expected BUSY but the query was served\n";
        return 1;
      }
      std::cout << "query:     " << expr << "\n"
                << "canonical: " << last->canonical << "\n"
                << "result:    " << last->experiment.name() << "\n";
      if (expect_served && *expect_served != served_name(last->served)) {
        std::cerr << "error: expected last response served '"
                  << *expect_served << "', got '" << served_name(last->served)
                  << "'\n";
        return 1;
      }
      if (output) {
        cube::write_cube_xml_file(last->experiment, *output);
        std::cout << "wrote " << *output << "\n";
      } else if (!quiet) {
        cube::cli::print_experiment_report(last->experiment, hotspot_count);
      }
    }

    if (do_health) {
      std::cout << client.health().json << "\n";
    }
    if (do_stats || do_stats_json) {
      const cube::server::StatsPayload stats = client.stats();
      if (do_stats_json) {
        std::cout << stats.json << "\n";
      }
      if (do_stats) {
        for (const auto& s : stats.samples) {
          std::cout << s.name << " = " << cube::format_value(s.value, 3);
          if (s.count > 0) std::cout << " (count " << s.count << ")";
          std::cout << "\n";
        }
        if (!stats.slow.empty()) {
          std::cout << "slow queries (worst first):\n";
          for (const auto& q : stats.slow) {
            std::cout << "  " << cube::format_value(q.server_ms, 2) << " ms "
                      << q.outcome << "  " << q.canonical;
            if (q.request_id != 0) std::cout << "  [req " << q.request_id
                                             << "]";
            std::cout << "\n";
          }
        }
      }
    }
    if (do_shutdown) {
      client.shutdown_server();
      std::cout << "server acknowledged shutdown\n";
    }
    return 0;
  } catch (const cube::server::RemoteError& e) {
    std::cerr << "error: " << e.what() << "\n";
    // Admission-control rejections ship the analyzer's findings; render
    // them like cube_query --check would.
    for (const auto& d : e.payload().diagnostics) {
      const char* level = d.level == 2 ? "error" : d.level == 1 ? "warning"
                                                                : "note";
      std::cerr << "  " << level << " [" << d.rule << "] " << d.location
                << ": " << d.message;
      if (!d.hint.empty()) std::cerr << " (hint: " << d.hint << ")";
      std::cerr << "\n";
    }
    return 1;
  } catch (const cube::Error& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
