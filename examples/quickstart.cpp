// Quickstart: build two small experiments through the CUBE construction
// API, store one as a CUBE XML file, read it back, subtract the two, and
// browse the derived difference experiment exactly like an original one.
//
// Run:  ./quickstart [output-dir]
#include <cstdio>
#include <filesystem>
#include <iostream>
#include <string>

#include "algebra/operators.hpp"
#include "display/browser.hpp"
#include "io/cube_api.hpp"

namespace {

// Builds a toy profile: main -> {solve -> MPI_Send, io}; two ranks.
// `solve_seconds` lets us fake a "before" and an "after" version.
cube::Experiment build_run(const std::string& name, double solve_seconds) {
  cube::Cube api;
  const auto time = api.def_metric("time", "Time", "sec", "wall time");
  const auto comm =
      api.def_metric("comm", "Communication", "sec", "MPI time", time);
  const auto visits = api.def_metric("visits", "Visits", "occ", "calls");

  const auto r_main = api.def_region("main", "demo.c", 1, 80);
  const auto r_solve = api.def_region("solve", "demo.c", 10, 50);
  const auto r_send = api.def_region("MPI_Send", "mpi");
  const auto r_io = api.def_region("io", "demo.c", 60, 70);

  const auto c_main = api.def_cnode(api.def_callsite("demo.c", 1, r_main));
  const auto c_solve =
      api.def_cnode(api.def_callsite("demo.c", 12, r_solve), c_main);
  const auto c_send =
      api.def_cnode(api.def_callsite("demo.c", 30, r_send), c_solve);
  const auto c_io =
      api.def_cnode(api.def_callsite("demo.c", 62, r_io), c_main);

  const auto machine = api.def_machine("demo cluster");
  const auto node = api.def_node("node0", machine);
  for (long rank = 0; rank < 2; ++rank) {
    const auto process =
        api.def_process("rank " + std::to_string(rank), rank, node);
    const auto thread = api.def_thread("thread 0", 0, process);
    api.set_severity(time, c_main, thread, 0.4);
    api.set_severity(time, c_solve, thread,
                     solve_seconds * (rank == 0 ? 1.0 : 1.2));
    api.set_severity(comm, c_send, thread, 0.8);
    api.set_severity(time, c_io, thread, 0.3);
    api.set_severity(visits, c_solve, thread, 100.0);
  }
  return api.take(name);
}

}  // namespace

int main(int argc, char** argv) {
  const std::filesystem::path dir = argc > 1 ? argv[1] : ".";

  // 1. Create an experiment and store it in the CUBE XML format.
  const cube::Experiment before = build_run("before", 5.0);
  const std::string path = (dir / "before.cube").string();
  cube::Cube::write_file(before, path);
  std::cout << "wrote " << path << "\n";

  // 2. Read it back — files round-trip losslessly.
  const cube::Experiment loaded = cube::Cube::read_file(path);

  // 3. A second experiment: the "optimized" code version.
  const cube::Experiment after = build_run("after", 3.5);

  // 4. Apply the algebra: the difference is itself a full experiment.
  const cube::Experiment diff = cube::difference(loaded, after);
  std::cout << "derived experiment: " << diff.name()
            << " (provenance: " << diff.provenance() << ")\n\n";

  // 5. Browse the derived experiment like an original one.
  cube::Browser browser(diff);
  browser.execute("select metric time");
  browser.execute("select call solve");
  std::cout << browser.execute("show") << "\n";

  // 6. Values can also be normalized against the old version ("improvement
  //    in percent of the previous execution time", paper Figure 2).
  const cube::Metric& time = *loaded.metadata().find_metric("time");
  browser.execute("mode external " +
                  std::to_string(loaded.sum_metric_tree(time)));
  std::cout << browser.execute("show") << "\n";
  return 0;
}
