// Paper §5.2: integrating performance data from different tools.
//
// Simulates SWEEP3D on a 4x4 process grid, then obtains three views of the
// same execution:
//
//  * EXPERT's trace analysis (Late Sender & friends),
//  * a CONE call-graph profile counting floating-point instructions,
//  * a CONE profile counting cache events — a combination the modeled
//    POWER4-style counter hardware cannot measure together with FP_INS.
//
// The merge operator integrates all three into one derived experiment, so
// the cache-miss concentration at MPI_Recv can be judged against the
// Late-Sender waiting times at the very same call paths: most of that time
// was waiting anyway, "rendering the cache-miss problem insignificant".
#include <iostream>

#include "algebra/operators.hpp"
#include "cone/profiler.hpp"
#include "display/browser.hpp"
#include "expert/analyzer.hpp"
#include "expert/patterns.hpp"
#include "sim/apps/sweep3d.hpp"
#include "sim/engine.hpp"

int main() {
  std::cout << "=== SWEEP3D data integration (paper section 5.2) ===\n\n";

  // One simulated execution with tracing, plus its call-path profile.
  cube::sim::SimConfig cfg;
  cfg.monitor.trace = true;
  cube::sim::RegionTable regions;
  cube::sim::Sweep3dConfig sc;  // 4x4 grid on the 16-rank cluster
  auto programs = cube::sim::build_sweep3d(regions, cfg.cluster, sc);

  // Cartesian grid coordinates enter the system dimension as topology.
  std::vector<std::vector<long>> coords;
  for (int r = 0; r < cfg.cluster.num_ranks(); ++r) {
    coords.push_back({r % sc.grid_px, r / sc.grid_px});
  }

  const cube::sim::RunResult run =
      cube::sim::Engine(cfg).run(regions, std::move(programs));

  // --- EXPERT: pattern analysis of the trace -----------------------------
  const cube::Experiment expert_exp = cube::expert::analyze_trace(
      run.trace, {.experiment_name = "expert", .topology = coords});

  // --- CONE: two profiles with hardware-disjoint event sets ---------------
  cube::cone::ConeOptions fp;
  fp.event_set = cube::counters::event_set_fp();
  fp.experiment_name = "cone-fp";
  fp.run_seed = 1;
  fp.topology = coords;
  const cube::Experiment cone_fp = cube::cone::profile_run(run, fp);

  cube::cone::ConeOptions cache;
  cache.event_set = cube::counters::event_set_cache();
  cache.experiment_name = "cone-cache";
  cache.run_seed = 2;
  cache.include_time = false;  // time comes from the first CONE run
  cache.topology = coords;
  const cube::Experiment cone_cache = cube::cone::profile_run(run, cache);

  // The hardware restriction that forces two runs:
  cube::counters::EventSet probe = cube::counters::event_set_fp();
  std::cout << "hardware check: can FP_INS and L1_DCM share a run? "
            << (probe.compatible(cube::counters::Event::L1_DCM) ? "yes"
                                                                : "no")
            << "  (the paper's POWER4 restriction)\n\n";

  // --- merge everything into one derived experiment ------------------------
  const cube::Experiment merged =
      cube::merge(cube::merge(expert_exp, cone_fp), cone_cache);
  std::cout << "merged experiment provenance: " << merged.provenance()
            << "\n\n";

  cube::Browser browser(merged);
  browser.execute("select metric PAPI_L1_DCM");
  browser.execute("select call MPI_Recv");
  browser.execute("mode percent");
  std::cout << "--- Figure 3: integrated view, L1 data-cache misses "
               "selected ---\n";
  std::cout << browser.execute("show") << "\n";

  // --- the quantitative punchline -------------------------------------------
  const cube::Metadata& md = merged.metadata();
  const cube::Metric& dcm = *md.find_metric("PAPI_L1_DCM");
  const cube::Metric& ls = *md.find_metric(cube::expert::kLateSender);
  const cube::Metric& p2p = *md.find_metric(cube::expert::kP2p);
  const cube::Metric& wo = *md.find_metric(cube::expert::kWrongOrder);
  double recv_misses = 0;
  double recv_ls = 0;
  double recv_time = 0;
  double all_misses = 0;
  for (const auto& c : md.cnodes()) {
    for (const auto& t : md.threads()) {
      const double m = merged.get(dcm, *c, *t);
      all_misses += m;
      if (c->callee().name() == cube::sim::kMpiRecvRegion) {
        recv_misses += m;
        const double waiting =
            merged.get(ls, *c, *t) + merged.get(wo, *c, *t);
        recv_ls += waiting;
        recv_time += merged.get(p2p, *c, *t) + waiting;
      }
    }
  }
  std::cout << "MPI_Recv call paths hold "
            << 100.0 * recv_misses / all_misses
            << " % of all L1 misses,\nbut "
            << 100.0 * recv_ls / recv_time
            << " % of the time spent there is Late-Sender waiting — the "
               "cache misses are\nnot the real problem.\n";
  return 0;
}
