// cube_calc: batch algebra over CUBE files (the command-line counterpart
// of the tools the original CUBE distribution shipped as cube_diff,
// cube_merge, cube_mean).
//
// Usage:
//   cube_calc <expr> [name=]file.cube ... [-o out.cube] [--hotspots N]
//
// Examples:
//   cube_calc 'diff(a, b)' a=before.cube b=after.cube -o delta.cube
//   cube_calc 'mean(exp1, exp2, exp3)' r1.cube r2.cube r3.cube
//   cube_calc 'diff(mean(a1, a2), mean(b1, b2))' a1=... a2=... b1=... b2=...
//
// Unnamed files are bound to exp1, exp2, ... in order.  Without -o the
// derived experiment's metric totals and top hotspots are printed.
//
// cube_calc shares the query grammar with cube_query; expressions using
// repository selectors (id/attr/series) are rejected here with a pointer
// to cube_query --repo, which can resolve them.
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/string_util.hpp"
#include "io/cube_format.hpp"
#include "obs_util.hpp"
#include "query/query_expr.hpp"
#include "report_util.hpp"

int main(int argc, char** argv) {
  if (argc < 3) {
    std::cerr << "usage: cube_calc <expr> [name=]file.cube ... [-o out.cube]"
                 " [--hotspots N]"
              << cube::cli::ObsOptions::usage() << "\n";
    return 1;
  }

  const std::string expr = argv[1];
  std::vector<std::pair<std::string, std::string>> inputs;
  std::optional<std::string> output;
  std::size_t hotspot_count = 10;
  cube::cli::ObsOptions obs;
  obs.tool = "cube_calc";

  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (obs.parse_arg(argc, argv, i)) {
      // handled
    } else if (arg == "-o" && i + 1 < argc) {
      output = argv[++i];
    } else if (arg == "--hotspots" && i + 1 < argc) {
      if (!cube::parse_size(argv[++i], hotspot_count)) {
        std::cerr << "error: --hotspots expects a number\n";
        return 1;
      }
    } else {
      const auto eq = arg.find('=');
      if (eq == std::string::npos) {
        inputs.emplace_back("exp" + std::to_string(inputs.size() + 1), arg);
      } else {
        inputs.emplace_back(arg.substr(0, eq), arg.substr(eq + 1));
      }
    }
  }

  // Reject duplicate bindings instead of silently letting the later file
  // shadow the earlier one.
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    for (std::size_t j = i + 1; j < inputs.size(); ++j) {
      if (inputs[i].first == inputs[j].first) {
        std::cerr << "error: duplicate binding '" << inputs[i].first
                  << "': bound to '" << inputs[i].second << "' and to '"
                  << inputs[j].second << "'\n";
        return 1;
      }
    }
  }

  obs.begin();
  try {
    std::vector<cube::Experiment> loaded;
    loaded.reserve(inputs.size());
    cube::ExperimentEnv env;
    for (const auto& [name, path] : inputs) {
      loaded.push_back(cube::read_experiment_file(path));
      if (loaded.back().name().empty()) loaded.back().set_name(name);
    }
    for (std::size_t i = 0; i < inputs.size(); ++i) {
      env[inputs[i].first] = &loaded[i];
    }

    const cube::Experiment result =
        cube::query::eval_query_with_env(expr, env);
    std::cout << "evaluated: " << expr << "\n"
              << "result:    " << result.name() << "\n";

    if (output) {
      cube::write_cube_xml_file(result, *output);
      std::cout << "wrote " << *output << "\n";
      return obs.finish() ? 0 : 1;
    }

    cube::cli::print_experiment_report(result, hotspot_count);
    return obs.finish() ? 0 : 1;
  } catch (const cube::Error& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
