// cube_top: a live top-style view of a running cubed daemon
// (docs/SERVER.md).
//
// Polls the daemon's Stats endpoint on an interval and renders rates
// computed from consecutive counter snapshots (qps, cache hit ratio,
// busy/rejected rates), service-time quantiles straight from the
// server's histogram buckets, admission state, and the slow-query log.
// Everything it shows travels over the same wire frames cube_client
// --server-stats uses; cube_top adds only the delta arithmetic.
//
// Usage:
//   cube_top --socket <path> [options]
//
// Options:
//   --interval-ms N   poll period (default 1000)
//   --iterations N    stop after N polls (default: run until ^C)
//   --once            single poll, plain output (equivalent to
//                     --iterations 1 --plain; CI smoke)
//   --plain           never emit ANSI escapes (for logs and pipes)
//   --slow N          slow-query rows shown (default 5)
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "common/string_util.hpp"
#include "server/client.hpp"

namespace {

using cube::server::StatsPayload;

/// Counter values one poll cares about, extracted from the sample list.
struct Snapshot {
  double queries = 0;
  double hits = 0;
  double coalesced = 0;
  double computes = 0;
  double busy = 0;
  double rejected = 0;
  double errors = 0;
  double inflight = 0;
  double inflight_peak = 0;
  double cache_bytes = 0;
  double p50_ms = 0;
  double p90_ms = 0;
  double p99_ms = 0;
  std::uint64_t service_count = 0;
};

Snapshot extract(const StatsPayload& stats) {
  Snapshot snap;
  for (const auto& s : stats.samples) {
    if (s.name == "server.queries") snap.queries = s.value;
    else if (s.name == "server.cache_hits") snap.hits = s.value;
    else if (s.name == "server.coalesced") snap.coalesced = s.value;
    else if (s.name == "server.computes") snap.computes = s.value;
    else if (s.name == "server.busy") snap.busy = s.value;
    else if (s.name == "server.rejected") snap.rejected = s.value;
    else if (s.name == "server.errors") snap.errors = s.value;
    else if (s.name == "server.inflight") snap.inflight = s.value;
    else if (s.name == "server.inflight_peak") snap.inflight_peak = s.value;
    else if (s.name == "server.cache_bytes") snap.cache_bytes = s.value;
    else if (s.name == "server.service_time") {
      snap.p50_ms = s.p50 * 1000.0;
      snap.p90_ms = s.p90 * 1000.0;
      snap.p99_ms = s.p99 * 1000.0;
      snap.service_count = s.count;
    }
  }
  return snap;
}

/// Pulls one numeric field out of the telemetry JSON without a parser:
/// the document is machine-written with deterministic "key":value shape.
double json_number(const std::string& json, const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  const std::size_t at = json.find(needle);
  if (at == std::string::npos) return 0.0;
  return std::strtod(json.c_str() + at + needle.size(), nullptr);
}

double rate(double delta, double seconds) {
  return seconds > 0.0 ? delta / seconds : 0.0;
}

void render(const StatsPayload& stats, const Snapshot& now,
            const Snapshot& prev, double dt_s, bool first,
            std::size_t slow_rows, bool plain, const std::string& server) {
  if (!plain) std::cout << "\x1b[H\x1b[2J";  // home + clear
  const double uptime = json_number(stats.json, "uptime_s");
  const double generation = json_number(stats.json, "generation");
  const double windows = json_number(stats.json, "self_profile_windows");
  std::cout << "cubed " << server << "  up "
            << cube::format_value(uptime, 1) << " s  generation "
            << static_cast<std::uint64_t>(generation);
  if (windows > 0) {
    std::cout << "  self-profile windows "
              << static_cast<std::uint64_t>(windows);
  }
  std::cout << "\n";

  const double dq = now.queries - prev.queries;
  const double served = dq > 0 ? dq : now.queries;  // totals on first poll
  const double hits = first ? now.hits : now.hits - prev.hits;
  const double coal = first ? now.coalesced : now.coalesced - prev.coalesced;
  const double busy = first ? now.busy : now.busy - prev.busy;
  const double errs = first ? now.errors : now.errors - prev.errors;
  const double hit_ratio = served > 0 ? (hits + coal) / served : 0.0;
  std::cout << (first ? "totals    " : "last tick ") << "qps "
            << cube::format_value(first ? rate(now.queries, uptime)
                                        : rate(dq, dt_s), 1)
            << "  hit ratio " << cube::format_value(100.0 * hit_ratio, 1)
            << "%  busy " << cube::format_value(busy, 0) << "  errors "
            << cube::format_value(errs, 0) << "\n";
  std::cout << "service   p50 " << cube::format_value(now.p50_ms, 2)
            << " ms  p90 " << cube::format_value(now.p90_ms, 2)
            << " ms  p99 " << cube::format_value(now.p99_ms, 2)
            << " ms  (" << now.service_count << " served)\n";
  std::cout << "inflight  " << static_cast<std::uint64_t>(now.inflight)
            << " (peak " << static_cast<std::uint64_t>(now.inflight_peak)
            << ")  cache " << cube::format_value(now.cache_bytes / 1048576.0,
                                                 1)
            << " MiB\n";

  if (!stats.slow.empty() && slow_rows > 0) {
    std::cout << "slow queries (worst first):\n";
    std::size_t shown = 0;
    for (const auto& q : stats.slow) {
      if (shown++ == slow_rows) break;
      std::cout << "  " << cube::format_value(q.server_ms, 2) << " ms  "
                << q.outcome << "  " << q.canonical << "\n";
    }
  }
  std::cout.flush();
}

}  // namespace

int main(int argc, char** argv) {
  cube::server::ClientConfig config;
  config.name = "cube_top";
  unsigned long long interval_ms = 1000;
  std::size_t iterations = 0;  // 0 = forever
  std::size_t slow_rows = 5;
  bool plain = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--socket" && i + 1 < argc) {
      config.socket_path = argv[++i];
    } else if (arg == "--interval-ms" && i + 1 < argc) {
      interval_ms = std::stoull(argv[++i]);
    } else if (arg == "--iterations" && i + 1 < argc) {
      if (!cube::parse_size(argv[++i], iterations)) {
        std::cerr << "error: --iterations expects a number\n";
        return 1;
      }
    } else if (arg == "--once") {
      iterations = 1;
      plain = true;
    } else if (arg == "--plain") {
      plain = true;
    } else if (arg == "--slow" && i + 1 < argc) {
      if (!cube::parse_size(argv[++i], slow_rows)) {
        std::cerr << "error: --slow expects a number\n";
        return 1;
      }
    } else {
      std::cerr << "error: unexpected argument '" << arg << "'\n";
      return 1;
    }
  }
  if (config.socket_path.empty()) {
    std::cerr << "usage: cube_top --socket <path> [--interval-ms N]"
                 " [--iterations N] [--once] [--plain] [--slow N]\n";
    return 1;
  }

  try {
    cube::server::CubeClient client(config);
    Snapshot prev;
    bool first = true;
    for (std::size_t n = 0; iterations == 0 || n < iterations; ++n) {
      if (!first) {
        std::this_thread::sleep_for(std::chrono::milliseconds(interval_ms));
      }
      const StatsPayload stats = client.stats();
      const Snapshot now = extract(stats);
      render(stats, now, prev, static_cast<double>(interval_ms) / 1000.0,
             first, slow_rows, plain, client.server_name());
      prev = now;
      first = false;
    }
    return 0;
  } catch (const cube::Error& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
