// Shared terminal report for the algebra CLIs (cube_calc, cube_query):
// per-metric-tree inclusive totals plus the top severity concentrations.
#pragma once

#include <iostream>
#include <string>

#include "common/string_util.hpp"
#include "common/text_table.hpp"
#include "display/hotspots.hpp"
#include "model/experiment.hpp"

namespace cube::cli {

inline void print_experiment_report(const Experiment& result,
                                    std::size_t hotspot_count) {
  TextTable totals;
  totals.set_header({"metric tree", "unit", "inclusive total"});
  totals.set_align({Align::Left, Align::Left, Align::Right});
  for (const Metric* root : result.metadata().metric_roots()) {
    totals.add_row({root->display_name(),
                    std::string(unit_name(root->unit())),
                    format_value(result.sum_metric_tree(*root), 4)});
  }
  std::cout << "\n" << totals.str();

  HotspotOptions opts;
  opts.top_n = hotspot_count;
  opts.unit = std::nullopt;
  const auto spots = find_hotspots(result, opts);
  if (!spots.empty()) {
    std::cout << "\ntop severity concentrations (|value| ranked):\n"
              << format_hotspots(spots);
  }
}

}  // namespace cube::cli
