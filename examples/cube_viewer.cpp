// Interactive CUBE viewer: the display component as a command-line tool.
//
// Usage:
//   cube_viewer <file.cube> [<name>=<file.cube> ...] [--expr EXPR]
//               [--color] [--batch CMD ';' CMD ...]
//
// With one file, the viewer browses it directly.  With several named files
// plus --expr, it first evaluates a composite-operator expression such as
//
//   cube_viewer a=run1.cube b=run2.cube c=opt.cube
//       --expr 'diff(mean(a, b), c)'
//
// and browses the derived experiment — the closure property at work.
// With --html FILE the current view is additionally exported as a
// standalone HTML page after every command.  Without --batch, commands are
// read from stdin (type 'help').
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "algebra/composite.hpp"
#include "common/error.hpp"
#include "display/browser.hpp"
#include "display/html.hpp"
#include "io/cube_format.hpp"

namespace {

void usage() {
  std::cerr << "usage: cube_viewer <file.cube> [name=file.cube ...]\n"
               "                   [--expr EXPR] [--color] [--html out.html]\n"
               "                   [--batch 'cmd; cmd; ...']\n";
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::pair<std::string, std::string>> inputs;  // name -> path
  std::optional<std::string> expr;
  std::optional<std::string> batch;
  std::optional<std::string> html_path;
  cube::RenderOptions render;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--expr" && i + 1 < argc) {
      expr = argv[++i];
    } else if (arg == "--batch" && i + 1 < argc) {
      batch = argv[++i];
    } else if (arg == "--html" && i + 1 < argc) {
      html_path = argv[++i];
    } else if (arg == "--color") {
      render.color = true;
      render.legend = true;
    } else if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else {
      const auto eq = arg.find('=');
      if (eq == std::string::npos) {
        inputs.emplace_back("exp" + std::to_string(inputs.size() + 1), arg);
      } else {
        inputs.emplace_back(arg.substr(0, eq), arg.substr(eq + 1));
      }
    }
  }
  if (inputs.empty()) {
    usage();
    return 1;
  }

  try {
    std::vector<cube::Experiment> loaded;
    loaded.reserve(inputs.size());
    cube::ExperimentEnv env;
    for (const auto& [name, path] : inputs) {
      loaded.push_back(cube::read_experiment_file(path));
      if (loaded.back().name().empty()) loaded.back().set_name(name);
    }
    for (std::size_t i = 0; i < inputs.size(); ++i) {
      env[inputs[i].first] = &loaded[i];
    }

    const cube::Experiment subject =
        expr ? cube::eval_expr(*expr, env) : loaded[0].clone();

    cube::Browser browser(subject, render);
    std::cout << browser.render() << "\n";

    const auto run_command = [&](const std::string& command) {
      try {
        const std::string out = browser.execute(command);
        if (!out.empty()) std::cout << out << "\n";
        if (html_path) {
          cube::write_html_file(browser.state(), *html_path);
        }
      } catch (const cube::Error& e) {
        std::cout << "error: " << e.what() << "\n";
      }
    };

    if (batch) {
      std::string current;
      for (const char c : *batch + ";") {
        if (c == ';') {
          if (!current.empty()) run_command(current);
          current.clear();
        } else {
          current.push_back(c);
        }
      }
      return 0;
    }

    std::string line;
    std::cout << "> " << std::flush;
    while (std::getline(std::cin, line)) {
      if (line == "quit" || line == "exit") break;
      run_command(line);
      std::cout << "> " << std::flush;
    }
    return 0;
  } catch (const cube::Error& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
