// cube_lint: static invariant checker for CUBE experiments and
// repositories.
//
// Checks files (CUBE XML of either version, CUBEBIN binary, CUBEMET1
// metadata blobs) or a whole experiment repository against the data-model
// invariants the algebra assumes: well-formed metric/program/system
// forests, resolving cross-dimension references, a severity function
// confined to the metric x cnode x thread cross product with finite
// values, matching content digests, and — in repository mode — index
// integrity, blob reachability, orphans, and stale cached query results.
// Every rule id is documented in docs/LINT.md.
//
// Usage:
//   cube_lint <file>...            lint experiment files / metadata blobs
//   cube_lint --repo <dir>         lint a whole repository
//   cube_lint --rules              print the rule registry and exit
//
// Options:
//   --format text|json   report format (default text; also selects the
//                        --rules output format)
//   --no-values          skip the severity value scan (structure only)
//   --no-digest          skip the structural digest recomputation
//   --max-per-rule N     findings reported per value rule before folding
//                        into a summary (default 16, 0 = unlimited)
//   --fix-layout         repository mode only: run migrate() first —
//                        rewrite legacy entries to the blob form, convert
//                        the repository to the sharded layout, and sweep
//                        crash leftovers (stray segments) — then lint the
//                        result
//   --quiet              no report, exit code only
//
// Exit code mirrors the worst finding: 0 clean (or notes only),
// 1 warnings, 2 errors, 3 usage error.
#include <iostream>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "io/repository.hpp"
#include "lint/file_lint.hpp"
#include "lint/repo_lint.hpp"
#include "lint/rules.hpp"
#include "obs_util.hpp"

namespace {

int usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " <file>... | --repo <dir> | --rules [--format text|json]\n"
               "  [--no-values] [--no-digest] [--max-per-rule N]\n"
               "  [--fix-layout] [--quiet]\n"
               " " +
                   std::string(cube::cli::ObsOptions::usage()) + "\n";
  return 3;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> files;
  std::string repo_dir;
  std::string format = "text";
  bool quiet = false;
  bool fix_layout = false;
  bool list_rules = false;
  cube::lint::Options options;
  cube::cli::ObsOptions obs;
  obs.tool = "cube_lint";

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (obs.parse_arg(argc, argv, i)) {
      // handled
    } else if (arg == "--repo" && i + 1 < argc) {
      repo_dir = argv[++i];
    } else if (arg == "--format" && i + 1 < argc) {
      format = argv[++i];
      if (format != "text" && format != "json") return usage(argv[0]);
    } else if (arg == "--no-values") {
      options.check_values = false;
    } else if (arg == "--no-digest") {
      options.check_digest = false;
    } else if (arg == "--max-per-rule" && i + 1 < argc) {
      try {
        options.max_per_rule = std::stoul(argv[++i]);
      } catch (...) {
        return usage(argv[0]);
      }
    } else if (arg == "--rules") {
      list_rules = true;
    } else if (arg == "--fix-layout") {
      fix_layout = true;
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "unknown option '" << arg << "'\n";
      return usage(argv[0]);
    } else {
      files.push_back(arg);
    }
  }
  if (list_rules) {
    if (!files.empty() || !repo_dir.empty()) return usage(argv[0]);
    if (format == "json") {
      cube::lint::write_rules_json(std::cout);
    } else {
      cube::lint::write_rules_text(std::cout);
    }
    return 0;
  }
  if (files.empty() == repo_dir.empty()) return usage(argv[0]);
  if (fix_layout && repo_dir.empty()) return usage(argv[0]);

  obs.begin();
  cube::lint::DiagnosticSink sink;
  if (!repo_dir.empty()) {
    if (fix_layout) {
      try {
        cube::ExperimentRepository repo(repo_dir);
        const std::size_t changed = repo.migrate();
        if (!quiet) {
          std::cout << "fix-layout: " << changed
                    << " change(s); layout is now "
                    << (repo.layout() == cube::RepoLayout::Sharded
                            ? "sharded"
                            : "legacy")
                    << "\n";
        }
      } catch (const cube::Error& e) {
        std::cerr << "fix-layout failed: " << e.what() << "\n";
        return 3;
      }
    }
    cube::lint::lint_repository(repo_dir, sink, options);
  } else {
    for (const std::string& file : files) {
      // Prefix every finding with the file it concerns; with one file the
      // prefix is still useful for scripts concatenating reports.
      sink.set_subject(file);
      cube::lint::lint_file(file, sink, options);
    }
    sink.set_subject({});
  }

  if (!quiet) {
    if (format == "json") {
      sink.write_json(std::cout);
    } else {
      sink.write_text(std::cout);
    }
  }
  if (!obs.finish() && sink.exit_code() == 0) return 3;
  return sink.exit_code();
}
