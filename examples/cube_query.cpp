// cube_query: cached, parallel analysis queries over an experiment
// repository.
//
// Where cube_calc binds expression names to files on its command line, a
// cube_query expression is SELF-CONTAINED: repository selectors name the
// stored experiments it consumes, e.g.
//
//   cube_query 'diff(mean(attr(run=before)), mean(attr(run=after)))'
//       --repo /data/campaign
//
// The engine plans the expression (selector resolution, common-
// subexpression elimination), evaluates independent DAG nodes on a
// thread pool, and caches every computed sub-expression back into the
// repository content-addressed, so repeated and overlapping queries hit
// warm cubes instead of recomputing.  See docs/QUERY.md.
//
// Usage:
//   cube_query <expr> --repo <dir> [options]
//
// Options:
//   --threads N    executor threads (default: hardware concurrency)
//   --no-cache     neither read nor write cached results
//   --no-store     read the cache but do not persist new results
//   --repeat N     run the query N times (cold vs warm demonstration);
//                  exits nonzero if a repeated cacheable query never
//                  hits the cache
//   -o out.cube    write the result as a CUBE XML file
//   --hotspots N   rows in the severity report (default 10)
//   --quiet        stats only, no severity report
//   --verbose      additionally print which bulk severity kernels fired
//                  (identity/remap x dense/sparse, cells vs nnz processed)
//   --trace f.json        write a Chrome trace_event JSON of this run
//   --self-profile f.cube export this run's own profile as a CUBE
//                         experiment (.cubx = binary)
//   --stats               print the span call-tree and metric table
//
// Static plan analysis (docs/QUERY.md, "Static plan analysis"):
//   --check           analyze the plan WITHOUT executing it: prove
//                     operand compatibility, predict result geometry,
//                     traversal cost, and peak resident memory from
//                     metadata and severity-blob headers alone.  The
//                     exit code mirrors the worst finding (0 clean,
//                     1 warnings, 2 errors), and the run asserts that
//                     zero severity bytes were read.
//   --budget-bytes N  with --check: error (cost.over-budget) when the
//                     predicted peak resident memory exceeds N bytes.
//                     Without --check: refuse to execute a plan the
//                     analyzer finds incompatible or over budget.
//   --format json     with --check: machine-readable analysis report
#include <algorithm>
#include <iostream>
#include <optional>
#include <string>

#include "algebra/simd.hpp"
#include "common/error.hpp"
#include "common/string_util.hpp"
#include "io/cube_format.hpp"
#include "io/repository.hpp"
#include "lint/diagnostics.hpp"
#include "obs/metrics.hpp"
#include "obs_util.hpp"
#include "query/analyze.hpp"
#include "query/engine.hpp"
#include "query/plan_lint.hpp"
#include "report_util.hpp"

namespace {

void print_stats(const cube::query::QueryStats& s, std::size_t run,
                 std::size_t runs, bool verbose) {
  std::cout << "run " << run + 1 << "/" << runs << ": " << s.plan_nodes
            << " plan nodes (" << s.cse_reused << " reused by CSE), "
            << s.nodes_executed << " executed, " << s.operands_loaded
            << " operands loaded, " << s.nodes_evaluated << " evaluated, "
            << s.cache_hits << " cache hits, " << s.cache_misses
            << " misses, " << s.bytes_loaded << " bytes read, "
            << s.threads_used << " threads\n"
            << "  wall: plan " << cube::format_value(s.plan_ms, 2)
            << " ms, exec " << cube::format_value(s.exec_ms, 2)
            << " ms (load " << cube::format_value(s.load_ms, 2)
            << " ms, eval " << cube::format_value(s.eval_ms, 2)
            << " ms summed over tasks), total "
            << cube::format_value(s.total_ms, 2) << " ms\n";
  if (verbose) {
    std::cout << "  kernels: " << s.kernel_applications
              << " bulk operator applications, " << s.kernel_chunks
              << " cell chunks; identity-dense "
              << s.kernel_identity_dense_cells << " cells, remap-dense "
              << s.kernel_remap_dense_cells << " cells, identity-sparse "
              << s.kernel_identity_sparse_nnz << " nnz, remap-sparse "
              << s.kernel_remap_sparse_nnz << " nnz\n"
              << "  batch: " << s.kernel_batch_tiles << " SoA tiles, width "
              << s.kernel_batch_width << " (simd "
              << cube::simd::backend_name(cube::simd::active_backend())
              << ")\n";
  }
}

std::uint64_t sev_bytes_read() {
  return cube::obs::MetricsRegistry::global()
      .counter("io.sev.bytes_read", cube::obs::SampleUnit::Bytes)
      .value();
}

void print_cost(const char* label, const cube::query::CostEstimate& c) {
  std::cout << label << ": " << c.nodes_executed << " nodes ("
            << c.operands_loaded << " loads, " << c.nodes_evaluated
            << " evaluated, " << c.cache_hits << " cache hits), "
            << c.cells_traversed << " cells traversed, " << c.bytes_loaded
            << " bytes loaded, " << c.bytes_faulted << " bytes faulted, "
            << c.intermediate_bytes << " intermediate bytes, peak resident "
            << c.peak_resident_bytes << " bytes\n";
}

void json_str(std::ostream& out, const std::string& s) {
  out << '"';
  for (const char c : s) {
    if (c == '"' || c == '\\') out << '\\';
    if (static_cast<unsigned char>(c) >= 0x20) out << c;
  }
  out << '"';
}

void cost_json(std::ostream& out, const cube::query::CostEstimate& c) {
  out << "{\"nodes_executed\": " << c.nodes_executed
      << ", \"operands_loaded\": " << c.operands_loaded
      << ", \"nodes_evaluated\": " << c.nodes_evaluated
      << ", \"cache_hits\": " << c.cache_hits
      << ", \"cells_traversed\": " << c.cells_traversed
      << ", \"bytes_loaded\": " << c.bytes_loaded
      << ", \"bytes_faulted\": " << c.bytes_faulted
      << ", \"intermediate_bytes\": " << c.intermediate_bytes
      << ", \"peak_resident_bytes\": " << c.peak_resident_bytes
      << ", \"exact\": " << (c.exact ? "true" : "false") << "}";
}

}  // namespace

int main(int argc, char** argv) {
  std::string expr;
  std::optional<std::string> repo_dir;
  std::optional<std::string> output;
  cube::query::QueryOptions options;
  std::size_t hotspot_count = 10;
  std::size_t repeat = 1;
  bool quiet = false;
  bool verbose = false;
  bool check = false;
  bool json = false;
  std::uint64_t budget_bytes = 0;
  cube::cli::ObsOptions obs;
  obs.tool = "cube_query";

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (obs.parse_arg(argc, argv, i)) {
      // handled
    } else if (arg == "--repo" && i + 1 < argc) {
      repo_dir = argv[++i];
    } else if (arg == "--threads" && i + 1 < argc) {
      if (!cube::parse_size(argv[++i], options.threads)) {
        std::cerr << "error: --threads expects a number\n";
        return 1;
      }
    } else if (arg == "--no-cache") {
      options.use_cache = false;
      options.store_derived = false;
    } else if (arg == "--no-store") {
      options.store_derived = false;
    } else if (arg == "--repeat" && i + 1 < argc) {
      if (!cube::parse_size(argv[++i], repeat) || repeat == 0) {
        std::cerr << "error: --repeat expects a positive number\n";
        return 1;
      }
    } else if (arg == "-o" && i + 1 < argc) {
      output = argv[++i];
    } else if (arg == "--hotspots" && i + 1 < argc) {
      if (!cube::parse_size(argv[++i], hotspot_count)) {
        std::cerr << "error: --hotspots expects a number\n";
        return 1;
      }
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (arg == "--verbose") {
      verbose = true;
    } else if (arg == "--check") {
      check = true;
    } else if (arg == "--budget-bytes" && i + 1 < argc) {
      std::size_t v = 0;
      if (!cube::parse_size(argv[++i], v)) {
        std::cerr << "error: --budget-bytes expects a number\n";
        return 1;
      }
      budget_bytes = v;
    } else if (arg == "--format" && i + 1 < argc) {
      const std::string fmt = argv[++i];
      if (fmt == "json") {
        json = true;
      } else if (fmt != "text") {
        std::cerr << "error: --format expects 'text' or 'json'\n";
        return 1;
      }
    } else if (expr.empty()) {
      expr = arg;
    } else {
      std::cerr << "error: unexpected argument '" << arg << "'\n";
      return 1;
    }
  }
  if (expr.empty() || !repo_dir) {
    std::cerr << "usage: cube_query <expr> --repo <dir> [--threads N]"
                 " [--no-cache] [--no-store] [--repeat N] [-o out.cube]"
                 " [--hotspots N] [--quiet] [--verbose]"
                 " [--check [--format json]] [--budget-bytes N]"
              << cube::cli::ObsOptions::usage() << "\n";
    return 1;
  }

  if (check) {
    // Analyze-only: plan, then run the static analyzer over metadata and
    // severity-blob headers.  No executor is constructed and no severity
    // byte may be read — asserted via the io.sev.bytes_read counter.
    try {
      cube::ExperimentRepository repo(*repo_dir);
      const cube::query::QueryPlan plan = cube::query::plan_query(
          *cube::query::parse_query(expr), repo, options.operators);

      cube::query::AnalyzeOptions aopts;
      aopts.budget_bytes = budget_bytes;
      aopts.use_cache = options.use_cache;
      aopts.operators = options.operators;

      const std::uint64_t sev_before = sev_bytes_read();
      cube::lint::DiagnosticSink sink;
      const cube::query::PlanAnalysis analysis =
          cube::query::analyze_plan(plan, repo, sink, aopts);
      const std::uint64_t sev_delta = sev_bytes_read() - sev_before;

      int rc = sink.exit_code();
      if (sev_delta != 0) {
        std::cerr << "error: static analysis read " << sev_delta
                  << " severity bytes (must be 0)\n";
        rc = std::max(rc, 2);
      }
      if (json) {
        std::cout << "{\n  \"query\": ";
        json_str(std::cout, expr);
        std::cout << ",\n  \"canonical\": ";
        json_str(std::cout, plan.nodes[plan.root].canonical);
        std::cout << ",\n  \"compatible\": "
                  << (analysis.compatible ? "true" : "false")
                  << ",\n  \"exact\": "
                  << (analysis.exact ? "true" : "false")
                  << ",\n  \"budget_bytes\": " << analysis.budget_bytes
                  << ",\n  \"over_budget\": "
                  << (analysis.over_budget ? "true" : "false")
                  << ",\n  \"severity_bytes_read\": " << sev_delta
                  << ",\n  \"cold\": ";
        cost_json(std::cout, analysis.cold);
        std::cout << ",\n  \"warm\": ";
        cost_json(std::cout, analysis.warm);
        std::cout << ",\n  \"diagnostics\": ";
        sink.write_json(std::cout);
        std::cout << "}\n";
      } else {
        std::cout << "check:     " << expr << "\n"
                  << "canonical: " << plan.nodes[plan.root].canonical
                  << "\n";
        print_cost("cold", analysis.cold);
        print_cost("warm", analysis.warm);
        sink.write_text(std::cout);
      }
      return rc;
    } catch (const cube::Error& e) {
      std::cerr << "error: " << e.what() << "\n";
      return 2;
    }
  }

  obs.begin();
  try {
    cube::ExperimentRepository repo(*repo_dir);
    cube::query::QueryEngine engine(repo, options);

    // Admission gate: with a budget set, the plan must pass the static
    // analyzer before any severity is loaded (the same gate cubed runs
    // before admitting a query).
    if (budget_bytes != 0) {
      cube::query::AnalyzeOptions aopts;
      aopts.budget_bytes = budget_bytes;
      aopts.use_cache = options.use_cache;
      aopts.operators = options.operators;
      aopts.run_plan_lint = false;
      cube::lint::DiagnosticSink sink;
      (void)cube::query::analyze_plan(
          engine.plan(*cube::query::parse_query(expr)), repo, sink, aopts);
      if (sink.reached(cube::lint::Level::Error)) {
        std::cerr << "error: static plan analysis refused the query\n";
        sink.write_text(std::cerr);
        return 2;
      }
    }

    // Plan-shape advisories (perf.series-foldable & co.) go to stderr;
    // they never affect the exit code or the result.
    {
      cube::lint::DiagnosticSink advisories;
      cube::query::lint_plan(engine.plan(*cube::query::parse_query(expr)),
                             advisories);
      if (!advisories.empty()) advisories.write_text(std::cerr);
    }

    std::optional<cube::query::QueryResult> last;
    for (std::size_t run = 0; run < repeat; ++run) {
      last = engine.run(expr);
      print_stats(last->stats, run, repeat, verbose);
    }

    std::cout << "query:     " << expr << "\n"
              << "canonical: " << last->canonical << "\n"
              << "result:    " << last->experiment.name() << "\n";
    if (output) {
      cube::write_cube_xml_file(last->experiment, *output);
      std::cout << "wrote " << *output << "\n";
    } else if (!quiet) {
      cube::cli::print_experiment_report(last->experiment, hotspot_count);
    }
    if (!obs.finish()) return 1;

    // With caching on, a repeated query whose plan contains operator
    // applications must be served warm the second time round.
    if (repeat > 1 && options.use_cache && options.store_derived &&
        last->stats.nodes_evaluated + last->stats.cache_hits > 0 &&
        last->stats.cache_hits == 0) {
      std::cerr << "error: repeated query never hit the cache\n";
      return 1;
    }
    return 0;
  } catch (const cube::Error& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
