// cube_repo: repository administration CLI (docs/STORAGE.md).
//
// Thin command wrapper over the ExperimentRepository maintenance API —
// the pieces that make sense from a shell or a CI job rather than from
// analysis code:
//
//   cube_repo info <dir>      layout, entry/segment/blob counts, debt
//   cube_repo migrate <dir>   rewrite legacy entries to the blob form,
//                             convert to the sharded layout, sweep crash
//                             leftovers; idempotent (prints 0 changes on
//                             an already-converted repository)
//   cube_repo compact <dir>   fold the segmented index into one sealed
//                             segment (tombstone/overwrite records drop)
//   cube_repo gc <dir>        remove orphan blobs and stray segments
//
// Exit code: 0 on success, 1 on any failure, 3 on usage error.
#include <filesystem>
#include <iostream>
#include <string>

#include "common/error.hpp"
#include "io/index_segments.hpp"
#include "io/repository.hpp"

namespace {

int usage() {
  std::cerr << "usage: cube_repo info|migrate|compact|gc <repository>\n";
  return 3;
}

const char* layout_name(cube::RepoLayout layout) {
  return layout == cube::RepoLayout::Sharded ? "sharded" : "legacy";
}

std::size_t count_blobs(const std::filesystem::path& dir) {
  std::error_code ec;
  std::size_t n = 0;
  for (std::filesystem::recursive_directory_iterator it(dir, ec), end;
       !ec && it != end; it.increment(ec)) {
    if (it->is_regular_file()) ++n;
  }
  return n;
}

int info(cube::ExperimentRepository& repo) {
  std::cout << "layout:   " << layout_name(repo.layout()) << "\n"
            << "entries:  " << repo.entries().size() << "\n"
            << "meta:     " << count_blobs(repo.directory() / "meta")
            << " blob(s)\n"
            << "sev:      " << count_blobs(repo.directory() / "sev")
            << " blob(s)\n";
  if (const cube::SegmentedIndex* index = repo.segmented_index()) {
    const auto strays = index->stray_segments();
    std::cout << "segments: " << index->segment_names().size()
              << " listed, " << strays.orphans.size() << " orphan, "
              << strays.stale.size() << " stale\n"
              << "dead:     " << index->dead_records(repo.entries().size())
              << " record(s) pending compaction\n";
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 3) return usage();
  const std::string command = argv[1];
  try {
    cube::ExperimentRepository repo(argv[2]);
    if (command == "info") return info(repo);
    if (command == "migrate") {
      const std::size_t changed = repo.migrate();
      std::cout << "migrate: " << changed << " change(s); layout is "
                << layout_name(repo.layout()) << "\n";
      return 0;
    }
    if (command == "compact") {
      const std::size_t superseded = repo.compact();
      std::cout << "compact: " << superseded
                << " segment(s) superseded\n";
      return 0;
    }
    if (command == "gc") {
      const std::size_t blobs = repo.remove_orphan_blobs();
      const std::size_t segments = repo.remove_stray_segments();
      std::cout << "gc: " << blobs << " orphan blob(s), " << segments
                << " stray segment(s) removed\n";
      return 0;
    }
    usage();
    return 3;
  } catch (const cube::Error& e) {
    std::cerr << "cube_repo: " << e.what() << "\n";
    return 1;
  }
}
