// cubed: the concurrent analysis daemon (docs/SERVER.md).
//
// Serves algebra queries over a unix-domain socket against one experiment
// repository.  Every connected session shares a single AnalysisService:
// one plan cache, one content-addressed result cache (identical queries
// from different clients hit or coalesce onto one computation), and one
// thread pool.  Admission control sheds compute work with a structured
// BUSY response when the executor's queue wait degrades, instead of
// letting latency grow unboundedly.
//
// Usage:
//   cubed --repo <dir> --socket <path> [options]
//
// Options:
//   --threads N        executor threads (default: hardware concurrency)
//   --max-inflight N   computations in flight before misses shed
//                      (default: 2 x threads)
//   --busy-wait-ms X   shed misses when the recent executor queue wait
//                      exceeds X ms (default 50)
//   --retry-ms N       backoff suggested in BUSY responses (default 100)
//   --cache-bytes N    result cache byte budget (default 256 MiB)
//   --refresh-ms N     repository refresh period; picks up experiments
//                      stored by concurrent processes (default 500,
//                      0 disables)
//   --no-store         do not persist derived results into the repository
//   --validate-loads   lint every loaded experiment (reject invalid data)
//   --budget-bytes N   reject queries whose statically predicted peak
//                      resident memory exceeds N bytes, BEFORE they reach
//                      the compute path (0 disables; docs/QUERY.md,
//                      "Static plan analysis")
//   --no-admission-analysis
//                      skip static plan analysis at admission; semantic
//                      incompatibilities surface at eval time instead
//   --force-busy       shed every query (deterministic BUSY; CI smoke)
//   --no-shutdown      ignore Shutdown frames from clients
//   --name <s>         server name reported in HelloOk (default cubed)
//   --slow-log-threshold X
//                      record queries at or above X ms wall time in the
//                      slow-query log, dumped via Stats (default 0:
//                      every query competes for a slot)
//   --slow-log-size N  worst queries kept (default 32, 0 disables)
//   --self-profile-interval N
//                      store a windowed self-profile experiment into the
//                      served repository every N seconds (0 disables);
//                      windows carry cube.self.* attributes and diff
//                      against each other (docs/OBSERVABILITY.md)
//   --trace/--self-profile/--stats   observability outputs, written when
//                      the daemon shuts down
#include <iostream>
#include <optional>
#include <string>

#include "common/error.hpp"
#include "common/string_util.hpp"
#include "io/repository.hpp"
#include "obs_util.hpp"
#include "server/server.hpp"

int main(int argc, char** argv) {
  std::optional<std::string> repo_dir;
  cube::server::ServiceConfig service_config;
  cube::server::ServerConfig server_config;
  unsigned long long refresh_ms = 500;
  cube::cli::ObsOptions obs;
  obs.tool = "cubed";

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (obs.parse_arg(argc, argv, i)) {
      // handled
    } else if (arg == "--repo" && i + 1 < argc) {
      repo_dir = argv[++i];
    } else if (arg == "--socket" && i + 1 < argc) {
      server_config.socket_path = argv[++i];
    } else if (arg == "--threads" && i + 1 < argc) {
      if (!cube::parse_size(argv[++i], service_config.threads)) {
        std::cerr << "error: --threads expects a number\n";
        return 1;
      }
    } else if (arg == "--max-inflight" && i + 1 < argc) {
      if (!cube::parse_size(argv[++i], service_config.max_inflight)) {
        std::cerr << "error: --max-inflight expects a number\n";
        return 1;
      }
    } else if (arg == "--busy-wait-ms" && i + 1 < argc) {
      service_config.busy_queue_wait_ms = std::stod(argv[++i]);
    } else if (arg == "--retry-ms" && i + 1 < argc) {
      service_config.busy_retry_ms =
          static_cast<std::uint32_t>(std::stoul(argv[++i]));
    } else if (arg == "--cache-bytes" && i + 1 < argc) {
      if (!cube::parse_size(argv[++i], service_config.cache_capacity_bytes)) {
        std::cerr << "error: --cache-bytes expects a number\n";
        return 1;
      }
    } else if (arg == "--refresh-ms" && i + 1 < argc) {
      refresh_ms = std::stoull(argv[++i]);
    } else if (arg == "--no-store") {
      service_config.store_derived = false;
    } else if (arg == "--validate-loads") {
      service_config.validate_loads = true;
    } else if (arg == "--budget-bytes" && i + 1 < argc) {
      std::size_t budget = 0;
      if (!cube::parse_size(argv[++i], budget)) {
        std::cerr << "error: --budget-bytes expects a number\n";
        return 1;
      }
      service_config.budget_bytes = budget;
    } else if (arg == "--no-admission-analysis") {
      service_config.admission_analysis = false;
    } else if (arg == "--force-busy") {
      service_config.force_busy = true;
    } else if (arg == "--no-shutdown") {
      server_config.allow_shutdown = false;
    } else if (arg == "--name" && i + 1 < argc) {
      server_config.name = argv[++i];
    } else if (arg == "--slow-log-threshold" && i + 1 < argc) {
      service_config.slow_log_threshold_ms = std::stod(argv[++i]);
    } else if (arg == "--slow-log-size" && i + 1 < argc) {
      if (!cube::parse_size(argv[++i], service_config.slow_log_capacity)) {
        std::cerr << "error: --slow-log-size expects a number\n";
        return 1;
      }
    } else if (arg == "--self-profile-interval" && i + 1 < argc) {
      service_config.self_profile_interval_s =
          static_cast<unsigned>(std::stoul(argv[++i]));
    } else {
      std::cerr << "error: unexpected argument '" << arg << "'\n";
      return 1;
    }
  }
  if (!repo_dir || server_config.socket_path.empty()) {
    std::cerr << "usage: cubed --repo <dir> --socket <path> [--threads N]"
                 " [--max-inflight N] [--busy-wait-ms X] [--retry-ms N]"
                 " [--cache-bytes N] [--refresh-ms N] [--no-store]"
                 " [--validate-loads] [--budget-bytes N]"
                 " [--no-admission-analysis] [--force-busy] [--no-shutdown]"
                 " [--name s] [--slow-log-threshold X] [--slow-log-size N]"
                 " [--self-profile-interval N]"
              << cube::cli::ObsOptions::usage() << "\n";
    return 1;
  }
  server_config.refresh_interval_ms = static_cast<unsigned>(refresh_ms);
  // Self-profile windows are attributed to the server that produced them.
  service_config.self_profile_source = server_config.name;

  obs.begin();
  try {
    cube::ExperimentRepository repo(*repo_dir);
    cube::server::AnalysisService service(repo, service_config);
    cube::server::CubedServer server(service, server_config);
    server.start();
    std::cout << "cubed listening on " << server_config.socket_path.string()
              << " (repo " << *repo_dir << ", "
              << service.config().threads << " threads, max inflight "
              << service.config().max_inflight << ")" << std::endl;
    server.wait();
    server.stop();
    std::cout << "cubed shut down after " << server.sessions_accepted()
              << " sessions" << std::endl;
    if (!obs.finish()) return 1;
    return 0;
  } catch (const cube::Error& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
