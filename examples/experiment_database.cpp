// Managing run series with the experiment repository.
//
// The paper's §6 relates CUBE to performance-database projects (PerfDBF,
// PPerfDB) and calls a database backing "a natural extension".  This
// example uses the file-backed repository to manage a measurement
// campaign: repeated noisy PESCAN runs of two code versions are stored
// with attributes, queried back as series, summarized with mean/stddev,
// compared with the closed difference, and the derived result is stored
// right next to the originals.
//
// Usage: experiment_database [repository-dir] [--legacy]
//
// --legacy builds the repository in the legacy single-index layout
// (index.xml, flat blobs) instead of the sharded default — CI uses it to
// produce a pre-migration repository for the migrate() round-trip check.
#include <filesystem>
#include <iostream>

#include "algebra/operators.hpp"
#include "algebra/statistics.hpp"
#include "common/text_table.hpp"
#include "expert/analyzer.hpp"
#include "expert/patterns.hpp"
#include "io/repository.hpp"
#include "sim/apps/pescan.hpp"
#include "sim/engine.hpp"

namespace {

cube::Experiment measure(bool with_barriers, std::uint64_t seed) {
  cube::sim::SimConfig cfg;
  cfg.monitor.trace = true;
  cfg.noise.relative = 0.015;
  cfg.noise.seed = seed;
  cube::sim::RegionTable regions;
  cube::sim::PescanConfig pc;
  pc.iterations = 8;
  pc.with_barriers = with_barriers;
  const auto run = cube::sim::Engine(cfg).run(
      regions, cube::sim::build_pescan(regions, cfg.cluster, pc));
  cube::Experiment e = cube::expert::analyze_trace(
      run.trace,
      {.experiment_name =
           std::string("pescan-") + (with_barriers ? "orig" : "opt")});
  e.set_attribute("app", "pescan");
  e.set_attribute("config", with_barriers ? "barriers" : "nobarriers");
  e.set_attribute("seed", std::to_string(seed));
  return e;
}

}  // namespace

int main(int argc, char** argv) {
  std::filesystem::path dir;
  cube::RepoLayout layout = cube::RepoLayout::Auto;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--legacy") {
      layout = cube::RepoLayout::Legacy;
    } else {
      dir = arg;
    }
  }
  if (dir.empty()) {
    dir = std::filesystem::temp_directory_path() / "cube_campaign";
  }
  std::filesystem::remove_all(dir);
  cube::ExperimentRepository repo(dir, layout);
  std::cout << "repository: " << repo.directory().string() << "\n\n";

  // Measurement campaign: 4 repetitions per configuration.
  for (std::uint64_t i = 0; i < 4; ++i) {
    repo.store(measure(true, 100 + i));
    repo.store(measure(false, 200 + i));
  }

  cube::TextTable listing;
  listing.set_header({"id", "config", "seed", "kind"});
  for (const cube::RepoEntry& e : repo.entries()) {
    listing.add_row({e.id, e.attributes.at("config"),
                     e.attributes.at("seed"),
                     e.attributes.count("cube::kind")
                         ? e.attributes.at("cube::kind")
                         : "original"});
  }
  std::cout << listing.str() << "\n";

  // Query each series back and summarize it.
  const auto summarize = [&](const std::string& config) {
    const std::vector<cube::Experiment> series =
        repo.load_all(repo.query("config", config));
    std::vector<const cube::Experiment*> ptrs;
    for (const auto& e : series) ptrs.push_back(&e);
    return cube::mean(std::span<const cube::Experiment* const>(ptrs));
  };
  const cube::Experiment mean_orig = summarize("barriers");
  const cube::Experiment mean_opt = summarize("nobarriers");

  // The derived comparison goes back into the repository.
  cube::Experiment delta = cube::difference(mean_orig, mean_opt);
  delta.set_attribute("app", "pescan");
  const std::string delta_id = repo.store(delta);
  std::cout << "stored derived comparison as '" << delta_id << "'\n";

  // And it loads back as a first-class experiment.
  const cube::Experiment reloaded = repo.load(delta_id);
  const cube::Metric& time =
      *reloaded.metadata().find_metric(cube::expert::kTime);
  const cube::Metric& orig_time =
      *mean_orig.metadata().find_metric(cube::expert::kTime);
  std::cout << "mean improvement: "
            << 100.0 * reloaded.sum_metric_tree(time) /
                   mean_orig.sum_metric_tree(orig_time)
            << " % of the original mean execution time\n";
  std::cout << "repository now holds " << repo.entries().size()
            << " experiments ("
            << repo.query("cube::kind", "derived").size() << " derived)\n";
  return 0;
}
