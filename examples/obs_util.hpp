// Shared observability flags for the example tools (docs/OBSERVABILITY.md):
//
//   --trace <file>         write a Chrome trace_event JSON of the run
//                          (open in chrome://tracing or Perfetto)
//   --self-profile <file>  export the run's spans and metrics as a CUBE
//                          experiment (.cubx = binary, else XML) — the
//                          tool profiling itself with its own data model
//   --stats                print the span call-tree and metric table
//
// Any of the three enables tracing for the whole run; without them the
// instrumentation stays in its disabled fast path.
#pragma once

#include <fstream>
#include <iostream>
#include <optional>
#include <string>

#include "obs/report.hpp"
#include "obs/self_profile.hpp"
#include "obs/tracer.hpp"

namespace cube::cli {

struct ObsOptions {
  std::optional<std::string> trace_file;
  std::optional<std::string> profile_file;
  bool stats = false;
  /// Tool name, used as the exported experiment's name.
  std::string tool = "tool";

  [[nodiscard]] bool any() const {
    return trace_file.has_value() || profile_file.has_value() || stats;
  }

  /// Usage-string fragment for the flags handled here.
  static const char* usage() {
    return " [--trace f.json] [--self-profile f.cube] [--stats]";
  }

  /// Consumes argv[i] if it is one of the observability flags (advancing
  /// i over the flag's value); returns false for unrelated arguments.
  bool parse_arg(int argc, char** argv, int& i) {
    const std::string arg = argv[i];
    if (arg == "--trace" && i + 1 < argc) {
      trace_file = argv[++i];
      return true;
    }
    if (arg == "--self-profile" && i + 1 < argc) {
      profile_file = argv[++i];
      return true;
    }
    if (arg == "--stats") {
      stats = true;
      return true;
    }
    return false;
  }

  /// Enables tracing when any output was requested.  Call before the work.
  void begin() const {
    if (!any()) return;
    obs::set_current_thread_name("main");
    obs::enable_tracing();
  }

  /// Stops tracing and writes the requested outputs.  Returns false (with
  /// a message on stderr) if an output file could not be written.
  bool finish() const {
    if (!any()) return true;
    obs::disable_tracing();
    const auto threads = obs::Tracer::instance().snapshot();
    if (stats) {
      obs::write_text_report(std::cout, threads,
                             obs::MetricsRegistry::global());
    }
    if (trace_file) {
      std::ofstream out(*trace_file);
      if (!out) {
        std::cerr << "error: cannot create trace file '" << *trace_file
                  << "'\n";
        return false;
      }
      obs::write_chrome_trace(out, threads);
      std::cout << "wrote trace " << *trace_file << "\n";
    }
    if (profile_file) {
      obs::SelfProfileOptions options;
      options.name = tool + " self-profile";
      try {
        obs::write_self_profile_file(
            obs::export_self_profile(threads, obs::MetricsRegistry::global(),
                                     options),
            *profile_file);
      } catch (const std::exception& e) {
        std::cerr << "error: cannot write self-profile '" << *profile_file
                  << "': " << e.what() << "\n";
        return false;
      }
      std::cout << "wrote self-profile " << *profile_file << "\n";
    }
    return true;
  }
};

}  // namespace cube::cli
