// Hybrid MPI + OpenMP analysis.
//
// The CUBE data model covers "message-passing and/or multithreaded
// applications"; EXPERT analyzes "MPI and/or OpenMP traces".  This example
// runs the hybrid stencil (4 MPI processes x 4 threads), analyzes the
// trace, and browses the result: the thread level of the system tree is
// visible (it is hidden only for single-threaded applications), worker
// threads carry Execution and Idle Threads severities inside the fork-join
// regions, and MPI waiting stays on the master threads.
#include <iostream>

#include "display/browser.hpp"
#include "display/hotspots.hpp"
#include "expert/analyzer.hpp"
#include "expert/patterns.hpp"
#include "sim/apps/hybrid.hpp"
#include "sim/engine.hpp"

int main() {
  std::cout << "=== hybrid MPI+OpenMP analysis ===\n\n";

  cube::sim::SimConfig cfg;
  cfg.cluster.num_nodes = 2;
  cfg.cluster.procs_per_node = 2;
  cfg.cluster.threads_per_proc = 4;
  cfg.monitor.trace = true;
  cfg.noise.relative = 0.01;
  cfg.noise.seed = 5;

  cube::sim::RegionTable regions;
  cube::sim::HybridConfig hc;
  hc.rounds = 12;
  hc.thread_imbalance = 0.3;
  const auto run = cube::sim::Engine(cfg).run(
      regions, cube::sim::build_hybrid_stencil(regions, cfg.cluster, hc));

  const cube::Experiment e = cube::expert::analyze_trace(
      run.trace, {.experiment_name = "hybrid-stencil"});

  cube::Browser browser(e);
  browser.execute("select metric " +
                  std::string(cube::expert::kIdleThreads));
  browser.execute("select call " +
                  std::string(cube::sim::kOmpParallelRegion));
  browser.execute("mode percent");
  std::cout << browser.execute("show") << "\n";

  const cube::Metric& time =
      *e.metadata().find_metric(cube::expert::kTime);
  const cube::Metric& idle =
      *e.metadata().find_metric(cube::expert::kIdleThreads);
  std::cout << "Idle Threads: "
            << 100.0 * e.sum_metric(idle) / e.sum_metric_tree(time)
            << " % of total location time — threads waiting at the "
               "implicit join for the slowest worker\n\n";

  std::cout << "--- hotspots ---\n"
            << cube::format_hotspots(cube::find_hotspots(e, {.top_n = 5}));
  return 0;
}
