// Paper §5.1: subtracting performance data.
//
// Simulates the PESCAN eigensolver on the paper's cluster (16 processes on
// four 4-way SMP nodes) in its original version (with the barriers that a
// previous IBM port introduced) and the optimized version (barriers
// removed), runs the EXPERT trace analysis on both, and then:
//
//  * renders the unoptimized experiment with Wait-at-Barrier selected
//    (the paper's Figure 1),
//  * computes the difference experiment and renders it normalized to the
//    old version's execution time (the paper's Figure 2),
//  * measures the solver speedup the way the paper does: uninstrumented,
//    two series of ten noisy runs, minimum of each series.
#include <algorithm>
#include <iostream>

#include "algebra/operators.hpp"
#include "display/browser.hpp"
#include "display/hotspots.hpp"
#include "expert/analyzer.hpp"
#include "expert/patterns.hpp"
#include "sim/apps/pescan.hpp"
#include "sim/engine.hpp"

namespace {

cube::sim::RunResult run_pescan(bool with_barriers, bool trace,
                                std::uint64_t seed) {
  cube::sim::SimConfig cfg;  // defaults model the paper's testbed
  cfg.monitor.trace = trace;
  cfg.noise.relative = 0.01;
  cfg.noise.seed = seed;
  cube::sim::RegionTable regions;
  cube::sim::PescanConfig pc;
  pc.with_barriers = with_barriers;
  auto programs = cube::sim::build_pescan(regions, cfg.cluster, pc);
  return cube::sim::Engine(cfg).run(regions, std::move(programs));
}

double solver_time(const cube::sim::RunResult& run) {
  double worst = 0.0;
  const cube::sim::CallProfile& profile = run.profile;
  for (std::size_t n = 0; n < profile.nodes().size(); ++n) {
    if (run.regions[profile.nodes()[n].region].name ==
        cube::sim::kPescanSolverRegion) {
      for (std::size_t r = 0; r < profile.num_ranks(); ++r) {
        worst = std::max(worst,
                         profile.inclusive_time(n, static_cast<int>(r)));
      }
    }
  }
  return worst;
}

}  // namespace

int main() {
  std::cout << "=== PESCAN before/after comparison (paper section 5.1) ===\n\n";

  // --- unoptimized run, analyzed and displayed (Figure 1) ------------------
  const auto before_run = run_pescan(true, true, 42);
  const cube::Experiment before = cube::expert::analyze_trace(
      before_run.trace, {.experiment_name = "pescan-original"});

  cube::Browser fig1(before);
  fig1.execute("select metric " + std::string(cube::expert::kWaitBarrier));
  fig1.execute("select call MPI_Barrier");
  fig1.execute("mode percent");
  std::cout << "--- Figure 1: unoptimized version, percentages of total "
               "execution time ---\n";
  std::cout << fig1.execute("show") << "\n";

  // --- optimized run and the difference experiment (Figure 2) -------------
  const auto after_run = run_pescan(false, true, 43);
  const cube::Experiment after = cube::expert::analyze_trace(
      after_run.trace, {.experiment_name = "pescan-optimized"});

  const cube::Experiment diff = cube::difference(before, after);
  const cube::Metric& time =
      *before.metadata().find_metric(cube::expert::kTime);

  cube::Browser fig2(diff);
  fig2.execute("select metric " + std::string(cube::expert::kWaitBarrier));
  // "The numbers are normalized with respect to the old version and show
  // improvements in percent of the previous execution time."
  fig2.execute("mode external " +
               std::to_string(before.sum_metric_tree(time)));
  std::cout << "--- Figure 2: difference experiment (raised relief ^ = "
               "gain, sunken v = loss) ---\n";
  std::cout << fig2.execute("show") << "\n";

  // Hotspot search applied to the DERIVED experiment — the closure
  // property means the same analysis runs on differences (paper section 6).
  std::cout << "--- largest behavior changes (hotspots of the difference "
               "experiment) ---\n";
  std::cout << cube::format_hotspots(
                   cube::find_hotspots(diff, {.top_n = 6}))
            << "\n";

  // --- headline speedup, measured the paper's way ---------------------------
  double min_before = 1e300;
  double min_after = 1e300;
  for (std::uint64_t i = 0; i < 10; ++i) {
    min_before = std::min(min_before,
                          solver_time(run_pescan(true, false, 100 + i)));
    min_after = std::min(min_after,
                         solver_time(run_pescan(false, false, 200 + i)));
  }
  std::cout << "--- solver speedup (no trace instrumentation, min of two "
               "series of ten) ---\n";
  std::cout << "  original:  " << min_before << " s\n";
  std::cout << "  optimized: " << min_after << " s\n";
  std::cout << "  speedup:   "
            << 100.0 * (min_before - min_after) / min_before
            << " %  (paper: about 16 %)\n";
  return 0;
}
