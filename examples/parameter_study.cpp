// Parameter study: one statement about performance over a range of
// execution parameters.
//
// Paper §3 motivates the mean operator twice: smoothing random errors AND
// "a user might want to combine several execution parameters in an overall
// picture in order to make a single statement about the performance for a
// range of execution parameters".  This example sweeps the PESCAN
// transpose volume (the FFT problem-size proxy), analyzes each
// configuration, prints the per-configuration trend, and derives the
// overall picture with mean — then asks where performance is lost across
// the whole range using the hotspot search on the derived experiment.
#include <iostream>
#include <vector>

#include "algebra/operators.hpp"
#include "common/string_util.hpp"
#include "common/text_table.hpp"
#include "display/hotspots.hpp"
#include "expert/analyzer.hpp"
#include "expert/patterns.hpp"
#include "sim/apps/pescan.hpp"
#include "sim/engine.hpp"

int main() {
  std::cout << "=== parameter study: PESCAN transpose volume sweep ===\n\n";

  const std::vector<double> volumes_kb = {2, 4, 8, 16, 32};
  std::vector<cube::Experiment> configs;

  cube::TextTable trend;
  trend.set_header({"alltoall volume [KiB/pair]", "total time [s]",
                    "MPI share [%]", "Wait at NxN [%]"});
  trend.set_align({cube::Align::Right, cube::Align::Right,
                   cube::Align::Right, cube::Align::Right});

  for (const double kb : volumes_kb) {
    cube::sim::SimConfig cfg;
    cfg.monitor.trace = true;
    cfg.noise.relative = 0.01;
    cfg.noise.seed = 77 + static_cast<std::uint64_t>(kb);
    cube::sim::RegionTable regions;
    cube::sim::PescanConfig pc;
    pc.iterations = 10;
    pc.with_barriers = false;  // the optimized code version
    pc.alltoall_bytes = kb * 1024.0;
    const auto run = cube::sim::Engine(cfg).run(
        regions, cube::sim::build_pescan(regions, cfg.cluster, pc));
    configs.push_back(cube::expert::analyze_trace(
        run.trace,
        {.experiment_name = "volume-" + cube::format_value(kb) + "k"}));

    const cube::Experiment& e = configs.back();
    const double total = e.sum_metric_tree(
        *e.metadata().find_metric(cube::expert::kTime));
    const double mpi = e.sum_metric_tree(
        *e.metadata().find_metric(cube::expert::kMpi));
    const double nxn =
        e.sum_metric(*e.metadata().find_metric(cube::expert::kWaitNxN));
    trend.add_row({cube::format_value(kb), cube::format_value(total, 3),
                   cube::format_value(100.0 * mpi / total, 1),
                   cube::format_value(100.0 * nxn / total, 2)});
  }
  std::cout << trend.str() << "\n";

  // The overall picture: one derived experiment for the whole range.
  std::vector<const cube::Experiment*> ptrs;
  for (const auto& e : configs) ptrs.push_back(&e);
  const cube::Experiment overall = cube::mean(ptrs);
  const double total = overall.sum_metric_tree(
      *overall.metadata().find_metric(cube::expert::kTime));
  std::cout << "overall picture (" << overall.provenance() << "):\n"
            << "  mean total time across the range: "
            << cube::format_value(total, 3) << " s\n\n";

  std::cout << "--- where the range as a whole loses time ---\n"
            << cube::format_hotspots(
                   cube::find_hotspots(overall, {.top_n = 5}));
  return 0;
}
