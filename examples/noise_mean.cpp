// The mean operator: smoothing run-to-run variation.
//
// "On parallel systems, unrelated system activities often perturb
// performance experiments in a way that lets results vary across multiple
// executions."  This example runs the same balanced kernel several times
// under simulated OS noise, shows how individual runs scatter, and derives
// one mean experiment from the whole series — plus the difference between
// the noisiest run and the mean, browsable like any experiment.
#include <iomanip>
#include <iostream>
#include <vector>

#include "algebra/operators.hpp"
#include "algebra/statistics.hpp"
#include "display/browser.hpp"
#include "expert/analyzer.hpp"
#include "expert/patterns.hpp"
#include "sim/apps/synthetic.hpp"
#include "sim/engine.hpp"

int main() {
  constexpr int kRepetitions = 6;

  // The repetitions differ only in measurement noise, so their metadata is
  // structurally identical; the interner lets all six experiments share a
  // single frozen instance, and the operators below take their
  // shared-metadata fast path.
  cube::MetadataInterner interner;
  std::vector<cube::Experiment> runs;
  std::cout << "=== repeated noisy runs of a balanced kernel ===\n";
  for (int i = 0; i < kRepetitions; ++i) {
    cube::sim::SimConfig cfg;
    cfg.cluster.num_nodes = 2;
    cfg.cluster.procs_per_node = 4;
    cfg.monitor.trace = true;
    cfg.noise.relative = 0.04;       // 4 % compute jitter
    cfg.noise.daemon_prob = 0.05;    // occasional daemon spike
    cfg.noise.daemon_seconds = 2e-3;
    cfg.noise.seed = 1000 + static_cast<std::uint64_t>(i);
    cube::sim::RegionTable regions;
    const auto run = cube::sim::Engine(cfg).run(
        regions,
        cube::sim::build_noisy_compute(regions, cfg.cluster, 20, 5e-3));
    runs.push_back(cube::expert::analyze_trace(
        run.trace, {.experiment_name = "run" + std::to_string(i + 1),
                    .interner = &interner}));
  }
  std::cout << "  " << kRepetitions << " runs share "
            << interner.size() << " metadata instance(s)\n";

  const cube::Metric& time =
      *runs[0].metadata().find_metric(cube::expert::kTime);
  std::cout << std::fixed << std::setprecision(4);
  for (const cube::Experiment& e : runs) {
    std::cout << "  " << e.name() << ": total time "
              << e.sum_metric_tree(
                     *e.metadata().find_metric(cube::expert::kTime))
              << " s\n";
  }

  // One derived experiment summarizing the series.
  std::vector<const cube::Experiment*> operands;
  for (const cube::Experiment& e : runs) operands.push_back(&e);
  const cube::Experiment averaged = cube::mean(operands);
  std::cout << "\nmean experiment (" << averaged.provenance()
            << "): total time "
            << averaged.sum_metric_tree(
                   *averaged.metadata().find_metric(cube::expert::kTime))
            << " s\n\n";

  // Which run deviated most, and where?  Difference of run vs mean.
  std::size_t noisiest = 0;
  double worst = 0.0;
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const double t = runs[i].sum_metric_tree(
        *runs[i].metadata().find_metric(cube::expert::kTime));
    if (t > worst) {
      worst = t;
      noisiest = i;
    }
  }
  // Statistical reductions (closed, like every operator): where do the
  // runs disagree the most?
  const cube::Experiment spread = cube::stddev(operands);
  const cube::Metric& spread_time =
      *spread.metadata().find_metric(cube::expert::kTime);
  std::cout << "stddev experiment (" << spread.provenance()
            << "): total deviation mass "
            << spread.sum_metric_tree(spread_time) << " s\n\n";

  const cube::Experiment deviation = cube::difference(runs[noisiest],
                                                      averaged);
  std::cout << "--- deviation of the noisiest run (" << runs[noisiest].name()
            << ") from the mean ---\n";
  cube::Browser browser(deviation);
  browser.execute("select metric " + std::string(cube::expert::kExecution));
  std::cout << browser.execute("show");
  (void)time;
  return 0;
}
