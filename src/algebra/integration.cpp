#include "algebra/integration.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <tuple>

#include "algebra/tree_merge.hpp"
#include "common/error.hpp"

namespace cube {

namespace {

// Returns a unique-name variant not yet present in `md` by appending ~2,
// ~3, ... — needed when two metrics are structurally distinct (and thus both
// kept) but happen to share a unique name, e.g. same name at different tree
// positions or with different units.
std::string uniquify_metric_name(const Metadata& md, const std::string& base) {
  if (md.find_metric(base) == nullptr) return base;
  for (std::size_t k = 2;; ++k) {
    const std::string candidate = base + "~" + std::to_string(k);
    if (md.find_metric(candidate) == nullptr) return candidate;
  }
}

void integrate_metrics(std::span<const Experiment* const> operands,
                       Metadata& out, std::vector<OperandMapping>& mappings) {
  std::vector<std::vector<const Metric*>> roots;
  roots.reserve(operands.size());
  for (const Experiment* e : operands) {
    roots.push_back(e->metadata().metric_roots());
  }

  merge_forests<Metric>(
      roots,
      [](const Metric& m) { return m.children(); },
      [](const Metric& a, const Metric& b) {
        return a.unique_name() == b.unique_name() && a.unit() == b.unit();
      },
      [&out](const Metric& rep, std::size_t out_parent) {
        const Metric* parent =
            out_parent == kNoIndex ? nullptr : out.metrics()[out_parent].get();
        return out
            .add_metric(parent,
                        uniquify_metric_name(out, rep.unique_name()),
                        rep.display_name(), rep.unit(), rep.description())
            .index();
      },
      [&mappings](std::size_t op, const Metric& src, std::size_t out_id) {
        mappings[op].metric_map[src.index()] = out_id;
      });
}

// Region merge is a set merge keyed by (name, module): unlike the call
// tree, regions carry no hierarchy of their own.
void integrate_regions(std::span<const Experiment* const> operands,
                       Metadata& out) {
  for (const Experiment* e : operands) {
    for (const auto& r : e->metadata().regions()) {
      if (out.find_region(r->name(), r->module()) == nullptr) {
        out.add_region(r->name(), r->module(), r->begin_line(), r->end_line(),
                       r->description());
      }
    }
  }
}

void integrate_cnodes(std::span<const Experiment* const> operands,
                      const IntegrationOptions& options, Metadata& out,
                      std::vector<OperandMapping>& mappings) {
  std::vector<std::vector<const Cnode*>> roots;
  roots.reserve(operands.size());
  for (const Experiment* e : operands) {
    roots.push_back(e->metadata().cnode_roots());
  }

  // Call sites in the output are deduplicated by (callee, file, line).
  std::map<std::tuple<std::size_t, std::string, long>, const CallSite*>
      out_callsites;
  const auto out_callsite_for = [&](const Cnode& rep) -> const CallSite& {
    const Region* callee =
        out.find_region(rep.callee().name(), rep.callee().module());
    // Regions were integrated first, so the callee must exist.
    const auto key = std::make_tuple(callee->index(), rep.callsite().file(),
                                     rep.callsite().line());
    auto it = out_callsites.find(key);
    if (it == out_callsites.end()) {
      const CallSite& cs = out.add_callsite(*callee, rep.callsite().file(),
                                            rep.callsite().line());
      it = out_callsites.emplace(key, &cs).first;
    }
    return *it->second;
  };

  merge_forests<Cnode>(
      roots,
      [](const Cnode& c) { return c.children(); },
      [&options](const Cnode& a, const Cnode& b) {
        if (a.callee().name() != b.callee().name() ||
            a.callee().module() != b.callee().module()) {
          return false;
        }
        // Line numbers are never part of the equality relation (they change
        // across code versions); the source file optionally is.
        return !options.callsite_file_matters ||
               a.callsite().file() == b.callsite().file();
      },
      [&out, &out_callsite_for](const Cnode& rep, std::size_t out_parent) {
        const Cnode* parent =
            out_parent == kNoIndex ? nullptr : out.cnodes()[out_parent].get();
        return out.add_cnode(parent, out_callsite_for(rep)).index();
      },
      [&mappings](std::size_t op, const Cnode& src, std::size_t out_id) {
        mappings[op].cnode_map[src.index()] = out_id;
      });
}

// (machine position, node position within machine) of each rank, used for
// the Auto compatibility check.
std::map<long, std::pair<std::size_t, std::size_t>> node_positions(
    const Metadata& md) {
  std::map<long, std::pair<std::size_t, std::size_t>> pos;
  for (std::size_t mi = 0; mi < md.machines().size(); ++mi) {
    const Machine& machine = *md.machines()[mi];
    for (std::size_t ni = 0; ni < machine.nodes().size(); ++ni) {
      for (const Process* p : machine.nodes()[ni]->processes()) {
        pos[p->rank()] = {mi, ni};
      }
    }
  }
  return pos;
}

bool partitions_compatible(std::span<const Experiment* const> operands) {
  const Metadata& first = operands[0]->metadata();
  const auto first_pos = node_positions(first);
  for (std::size_t op = 1; op < operands.size(); ++op) {
    const Metadata& md = operands[op]->metadata();
    if (md.machines().size() != first.machines().size() ||
        md.nodes().size() != first.nodes().size()) {
      return false;
    }
    for (const auto& [rank, pos] : node_positions(md)) {
      const auto it = first_pos.find(rank);
      if (it == first_pos.end() || it->second != pos) return false;
    }
  }
  return true;
}

void integrate_system(std::span<const Experiment* const> operands,
                      const IntegrationOptions& options, Metadata& out,
                      std::vector<OperandMapping>& mappings,
                      bool& collapsed) {
  // Decide whether to copy the first operand's machine/node hierarchy.
  bool copy_first = false;
  switch (options.system_policy) {
    case SystemMergePolicy::CopyFirst: copy_first = true; break;
    case SystemMergePolicy::Collapse: copy_first = false; break;
    case SystemMergePolicy::Auto:
      copy_first = partitions_compatible(operands);
      break;
  }
  collapsed = !copy_first;

  // Union of ranks; per rank: first-definer name, union of thread ids.
  std::set<long> all_ranks;
  std::map<long, std::string> rank_name;
  std::map<long, std::set<long>> rank_tids;
  std::map<long, std::vector<long>> rank_coords;
  std::map<long, bool> rank_coords_consistent;
  for (const Experiment* e : operands) {
    for (const auto& p : e->metadata().processes()) {
      const long rank = p->rank();
      all_ranks.insert(rank);
      rank_name.try_emplace(rank, p->name());
      for (const Thread* t : p->threads()) {
        rank_tids[rank].insert(t->thread_id());
      }
      if (options.keep_topology && p->coords().has_value()) {
        auto [it, inserted] = rank_coords.try_emplace(rank, *p->coords());
        auto [cit, cinserted] = rank_coords_consistent.try_emplace(rank, true);
        if (!inserted && it->second != *p->coords()) cit->second = false;
      }
    }
  }

  // Build the machine/node skeleton and place processes.
  std::map<long, Process*> out_process;
  if (copy_first) {
    const Metadata& first = operands[0]->metadata();
    std::vector<SysNode*> out_nodes;
    SysNode* last_node = nullptr;
    for (const auto& m : first.machines()) {
      Machine& om = out.add_machine(m->name());
      for (const SysNode* n : m->nodes()) {
        SysNode& on = out.add_node(om, n->name());
        last_node = &on;
        for (const Process* p : n->processes()) {
          out_process[p->rank()] =
              &out.add_process(on, p->name(), p->rank());
          all_ranks.erase(p->rank());
        }
      }
    }
    if (!all_ranks.empty() && last_node == nullptr) {
      Machine& om = out.add_machine("Virtual machine");
      last_node = &out.add_node(om, "Virtual node");
    }
    // Ranks unknown to the first operand are appended to the last node.
    for (const long rank : all_ranks) {
      out_process[rank] = &out.add_process(*last_node, rank_name[rank], rank);
    }
  } else {
    Machine& om = out.add_machine("Virtual machine");
    SysNode& on = out.add_node(om, "Virtual node");
    for (const long rank : all_ranks) {
      out_process[rank] = &out.add_process(on, rank_name[rank], rank);
    }
  }

  // Threads: union of ids per rank, in ascending id order.
  std::map<std::pair<long, long>, ThreadIndex> out_thread;
  for (auto& [rank, proc] : out_process) {
    if (options.keep_topology) {
      const auto cit = rank_coords.find(rank);
      if (cit != rank_coords.end() && rank_coords_consistent[rank]) {
        proc->set_coords(cit->second);
      }
    }
    for (const long tid : rank_tids[rank]) {
      const Thread& t = out.add_thread(
          *proc, "thread " + std::to_string(tid), tid);
      out_thread[{rank, tid}] = t.index();
    }
  }

  // Per-operand thread remapping.
  for (std::size_t op = 0; op < operands.size(); ++op) {
    for (const auto& t : operands[op]->metadata().threads()) {
      mappings[op].thread_map[t->index()] =
          out_thread.at({t->rank(), t->thread_id()});
    }
  }
}

// Whether any sibling group of the cnode forest holds two nodes that are
// EQUAL under the integration relation (same callee, and same file if it
// matters).  Such siblings would be merged into one output cnode by the
// structural path even when all operands are identical, so the digest
// short-circuit must not fire for them.  Metrics and threads cannot
// collide this way (unique names / unique (rank, tid) are enforced on
// construction).
bool has_mergeable_cnode_siblings(const Metadata& md,
                                  const IntegrationOptions& options) {
  const auto equal = [&options](const Cnode& a, const Cnode& b) {
    if (a.callee().name() != b.callee().name() ||
        a.callee().module() != b.callee().module()) {
      return false;
    }
    return !options.callsite_file_matters ||
           a.callsite().file() == b.callsite().file();
  };
  const auto group_collides = [&equal](const std::vector<const Cnode*>& g) {
    for (std::size_t i = 0; i < g.size(); ++i) {
      for (std::size_t j = i + 1; j < g.size(); ++j) {
        if (equal(*g[i], *g[j])) return true;
      }
    }
    return false;
  };
  if (group_collides(md.cnode_roots())) return true;
  for (const auto& c : md.cnodes()) {
    if (group_collides(c->children())) return true;
  }
  return false;
}

// The digest short-circuit is only semantics-preserving when the structural
// merge of the identical operands would reproduce the first operand's
// metadata with identity mappings.
bool can_share_metadata(std::span<const Experiment* const> operands,
                        const IntegrationOptions& options) {
  if (!options.reuse_identical_metadata) return false;
  // Collapse rebuilds the machine/node level even for one operand.
  if (options.system_policy == SystemMergePolicy::Collapse) return false;
  const std::uint64_t digest = operands[0]->metadata().digest();
  for (std::size_t op = 1; op < operands.size(); ++op) {
    // Pointer equality is the fast path (series over one shared instance);
    // digest equality catches structurally identical separate instances.
    if (&operands[op]->metadata() != &operands[0]->metadata() &&
        operands[op]->metadata().digest() != digest) {
      return false;
    }
  }
  const Metadata& md = operands[0]->metadata();
  // Without keep_topology the structural path drops coordinates; sharing
  // would keep them.
  if (!options.keep_topology) {
    for (const auto& p : md.processes()) {
      if (p->coords().has_value()) return false;
    }
  }
  return !has_mergeable_cnode_siblings(md, options);
}

}  // namespace

IntegrationResult integrate_metadata(std::span<const Experiment* const>
                                         operands,
                                     const IntegrationOptions& options) {
  if (operands.empty()) {
    throw OperationError("metadata integration requires >= 1 operand");
  }
  for (const Experiment* e : operands) {
    if (e == nullptr) throw OperationError("null operand experiment");
  }

  IntegrationResult result;
  result.mappings.resize(operands.size());

  if (can_share_metadata(operands, options)) {
    // All operands are structurally identical: share the first operand's
    // metadata instance and make every mapping the identity.  The maps are
    // still materialized (map[i] == i) because the reference per-cell
    // operator path indexes them directly.
    result.metadata = operands[0]->metadata_ptr();
    result.shared_metadata = true;
    for (OperandMapping& mp : result.mappings) {
      const Metadata& md = *result.metadata;
      mp.metric_map.resize(md.num_metrics());
      mp.cnode_map.resize(md.num_cnodes());
      mp.thread_map.resize(md.num_threads());
      for (std::size_t i = 0; i < mp.metric_map.size(); ++i) {
        mp.metric_map[i] = static_cast<MetricIndex>(i);
      }
      for (std::size_t i = 0; i < mp.cnode_map.size(); ++i) {
        mp.cnode_map[i] = static_cast<CnodeIndex>(i);
      }
      for (std::size_t i = 0; i < mp.thread_map.size(); ++i) {
        mp.thread_map[i] = static_cast<ThreadIndex>(i);
      }
      mp.metric_identity = true;
      mp.cnode_identity = true;
      mp.thread_identity = true;
    }
    return result;
  }

  auto merged = std::make_unique<Metadata>();
  for (std::size_t op = 0; op < operands.size(); ++op) {
    const Metadata& md = operands[op]->metadata();
    result.mappings[op].metric_map.resize(md.num_metrics(), kNoIndex);
    result.mappings[op].cnode_map.resize(md.num_cnodes(), kNoIndex);
    result.mappings[op].thread_map.resize(md.num_threads(), kNoIndex);
  }

  integrate_metrics(operands, *merged, result.mappings);
  integrate_regions(operands, *merged);
  integrate_cnodes(operands, options, *merged, result.mappings);
  integrate_system(operands, options, *merged, result.mappings,
                   result.system_collapsed);
  result.metadata = freeze_metadata(std::move(merged));

  // Flag identity mappings per operand and dimension: the operand spans the
  // whole integrated dimension and every index maps onto itself.  Operator
  // kernels use this to run remap-free (see OperandMapping::identity).
  const auto is_identity = [](const auto& map, std::size_t out_size) {
    if (map.size() != out_size) return false;
    for (std::size_t i = 0; i < map.size(); ++i) {
      if (map[i] != i) return false;
    }
    return true;
  };
  for (OperandMapping& mp : result.mappings) {
    mp.metric_identity =
        is_identity(mp.metric_map, result.metadata->num_metrics());
    mp.cnode_identity =
        is_identity(mp.cnode_map, result.metadata->num_cnodes());
    mp.thread_identity =
        is_identity(mp.thread_map, result.metadata->num_threads());
  }
  return result;
}

IntegrationResult integrate_metadata(const Experiment& a, const Experiment& b,
                                     const IntegrationOptions& options) {
  const Experiment* ops[] = {&a, &b};
  return integrate_metadata(std::span<const Experiment* const>(ops, 2),
                            options);
}

}  // namespace cube
