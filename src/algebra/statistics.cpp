#include "algebra/statistics.hpp"

#include <algorithm>
#include <cmath>
#include <string>

#include "common/error.hpp"

namespace cube {

namespace {

std::string series_label(std::span<const Experiment* const> operands) {
  std::string out;
  for (std::size_t i = 0; i < operands.size(); ++i) {
    if (i > 0) out += ", ";
    const std::string name = operands[i]->name();
    out += name.empty() ? "exp" + std::to_string(i + 1) : name;
  }
  return out;
}

/// Shared reduction core: integrates the series once, materializes the
/// extended severities, and hands per-cell value vectors to `fold`.
template <typename Fold>
Experiment reduce_series(std::span<const Experiment* const> operands,
                         const OperatorOptions& options, const char* opname,
                         Fold fold) {
  if (operands.size() < 2) {
    throw OperationError(std::string(opname) + " requires >= 2 operands");
  }
  IntegrationResult integration =
      integrate_metadata(operands, options.integration);
  const Metadata& md = *integration.metadata;
  const std::size_t volume =
      md.num_metrics() * md.num_cnodes() * md.num_threads();
  const auto at = [&md](MetricIndex m, CnodeIndex c, ThreadIndex t) {
    return (m * md.num_cnodes() + c) * md.num_threads() + t;
  };

  // values[cell * N + op]
  const std::size_t n = operands.size();
  std::vector<Severity> values(volume * n, 0.0);
  for (std::size_t op = 0; op < n; ++op) {
    const Experiment& source = *operands[op];
    const OperandMapping& mapping = integration.mappings[op];
    const Metadata& smd = source.metadata();
    for (MetricIndex m = 0; m < smd.num_metrics(); ++m) {
      for (CnodeIndex c = 0; c < smd.num_cnodes(); ++c) {
        for (ThreadIndex t = 0; t < smd.num_threads(); ++t) {
          const Severity v = source.severity().get(m, c, t);
          if (v != 0.0) {
            values[at(mapping.metric_map[m], mapping.cnode_map[c],
                      mapping.thread_map[t]) *
                       n +
                   op] += v;
          }
        }
      }
    }
  }

  Experiment out(std::move(integration.metadata), options.storage);
  for (MetricIndex m = 0; m < md.num_metrics(); ++m) {
    for (CnodeIndex c = 0; c < md.num_cnodes(); ++c) {
      for (ThreadIndex t = 0; t < md.num_threads(); ++t) {
        const Severity* cell = &values[at(m, c, t) * n];
        const Severity v = fold(std::span<const Severity>(cell, n));
        if (v != 0.0) out.severity().set(m, c, t, v);
      }
    }
  }
  const std::string prov =
      std::string(opname) + "(" + series_label(operands) + ")";
  out.mark_derived(prov);
  out.set_name(prov);
  return out;
}

double cell_mean(std::span<const Severity> xs) {
  Severity sum = 0.0;
  for (const Severity x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

double cell_stddev(std::span<const Severity> xs) {
  const double mu = cell_mean(xs);
  double acc = 0.0;
  for (const Severity x : xs) acc += (x - mu) * (x - mu);
  return std::sqrt(acc / static_cast<double>(xs.size()));
}

}  // namespace

Experiment stddev(std::span<const Experiment* const> operands,
                  const OperatorOptions& options) {
  return reduce_series(operands, options, "stddev", cell_stddev);
}

Experiment variation(std::span<const Experiment* const> operands,
                     const OperatorOptions& options) {
  return reduce_series(operands, options, "variation",
                       [](std::span<const Severity> xs) {
                         const double mu = cell_mean(xs);
                         if (mu == 0.0) return 0.0;
                         return cell_stddev(xs) / std::abs(mu);
                       });
}

SeriesSummary summarize_series(std::span<const Experiment* const> operands,
                               const OperatorOptions& options) {
  SeriesSummary summary{
      mean(operands, options),
      minimum(operands, options),
      maximum(operands, options),
      stddev(operands, options),
  };
  return summary;
}

}  // namespace cube
