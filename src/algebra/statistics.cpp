#include "algebra/statistics.hpp"

#include <algorithm>
#include <cmath>
#include <string>

#include "algebra/batch.hpp"
#include "common/error.hpp"

namespace cube {

namespace {

std::string series_label(std::span<const Experiment* const> operands) {
  std::string out;
  for (std::size_t i = 0; i < operands.size(); ++i) {
    if (i > 0) out += ", ";
    const std::string name = operands[i]->name();
    out += name.empty() ? "exp" + std::to_string(i + 1) : name;
  }
  return out;
}

// The per-cell folds, written against an accessor at(r) -> r-th operand's
// zero-extended value so the tiled batch path (strided rows) and the
// reference path (contiguous values) share one arithmetic definition.
// Accumulation order is operand order in both, so results are bit-equal.

template <typename At>
double cell_mean(const At& at, std::size_t n) {
  Severity sum = 0.0;
  for (std::size_t r = 0; r < n; ++r) sum += at(r);
  return sum / static_cast<double>(n);
}

template <typename At>
double cell_stddev(const At& at, std::size_t n) {
  const double mu = cell_mean(at, n);
  double acc = 0.0;
  for (std::size_t r = 0; r < n; ++r) acc += (at(r) - mu) * (at(r) - mu);
  return std::sqrt(acc / static_cast<double>(n));
}

/// Reference reduction (the oracle, and the fallback for non-batchable
/// mappings): materializes the extended severities per cell through the
/// virtual store interface — coalescing source cells accumulate — and
/// folds each cell's contiguous value vector.
template <typename Fold>
void reference_fold_series(std::span<const Experiment* const> operands,
                           const IntegrationResult& integration,
                           Experiment& out, const Fold& fold) {
  const Metadata& md = out.metadata();
  const std::size_t volume =
      md.num_metrics() * md.num_cnodes() * md.num_threads();
  const auto at = [&md](MetricIndex m, CnodeIndex c, ThreadIndex t) {
    return (m * md.num_cnodes() + c) * md.num_threads() + t;
  };

  // values[cell * N + op]
  const std::size_t n = operands.size();
  std::vector<Severity> values(volume * n, 0.0);
  for (std::size_t op = 0; op < n; ++op) {
    const Experiment& source = *operands[op];
    const OperandMapping& mapping = integration.mappings[op];
    const Metadata& smd = source.metadata();
    for (MetricIndex m = 0; m < smd.num_metrics(); ++m) {
      for (CnodeIndex c = 0; c < smd.num_cnodes(); ++c) {
        for (ThreadIndex t = 0; t < smd.num_threads(); ++t) {
          const Severity v = source.severity().get(m, c, t);
          if (v != 0.0) {
            values[at(mapping.metric_map[m], mapping.cnode_map[c],
                      mapping.thread_map[t]) *
                       n +
                   op] += v;
          }
        }
      }
    }
  }

  for (MetricIndex m = 0; m < md.num_metrics(); ++m) {
    for (CnodeIndex c = 0; c < md.num_cnodes(); ++c) {
      for (ThreadIndex t = 0; t < md.num_threads(); ++t) {
        const Severity* cell = &values[at(m, c, t) * n];
        const auto get = [cell](std::size_t r) { return cell[r]; };
        const Severity v = fold(get, n);
        if (v != 0.0) out.severity().set(m, c, t, v);
      }
    }
  }
}

/// Shared reduction core: integrates the series once (or adopts a hoisted
/// result), then folds the N operands per cell.  By default the fold runs
/// through the batched SoA tile sweep (algebra/batch.hpp) — ONE chunked,
/// optionally parallel traversal of the cell space with each operand
/// staged as a tile row; the O(volume * N) materialization of the
/// reference path above disappears.
template <typename Fold>
Experiment reduce_series(std::span<const Experiment* const> operands,
                         const IntegrationResult* pre,
                         const OperatorOptions& options, const char* opname,
                         const Fold& fold) {
  if (operands.size() < 2) {
    throw OperationError(std::string(opname) + " requires >= 2 operands");
  }
  IntegrationResult local;
  if (pre == nullptr) {
    local = integrate_metadata(operands, options.integration);
    pre = &local;
  } else if (pre->mappings.size() != operands.size()) {
    throw OperationError(std::string(opname) +
                         ": integration result covers " +
                         std::to_string(pre->mappings.size()) +
                         " operands, called with " +
                         std::to_string(operands.size()));
  }
  const IntegrationResult& integration = *pre;

  Experiment out(integration.metadata, options.storage);
  const batch::OutShape os = batch::shape_of(out.metadata());
  if (os.cells > 0) {
    if (options.use_bulk_kernels && options.use_batch_kernels &&
        batch::batchable(integration.mappings, os)) {
      const std::vector<double> ones(operands.size(), 1.0);
      batch::reduce_batched(
          operands, integration.mappings, ones, out, options,
          [&fold](Severity* acc, const simd::TileRow* rows, std::size_t nrows,
                  std::size_t n) {
            for (std::size_t i = 0; i < n; ++i) {
              const auto get = [rows, i](std::size_t r) {
                return rows[r].data[i];
              };
              acc[i] = fold(get, nrows);
            }
          });
    } else {
      reference_fold_series(operands, integration, out, fold);
    }
  }
  const std::string prov =
      std::string(opname) + "(" + series_label(operands) + ")";
  out.mark_derived(prov);
  out.set_name(prov);
  return out;
}

const auto stddev_fold = [](const auto& at, std::size_t n) {
  return cell_stddev(at, n);
};

const auto variation_fold = [](const auto& at, std::size_t n) {
  const double mu = cell_mean(at, n);
  if (mu == 0.0) return 0.0;
  return cell_stddev(at, n) / std::abs(mu);
};

}  // namespace

Experiment stddev(std::span<const Experiment* const> operands,
                  const OperatorOptions& options) {
  return reduce_series(operands, nullptr, options, "stddev", stddev_fold);
}

Experiment stddev(std::span<const Experiment* const> operands,
                  const IntegrationResult& integration,
                  const OperatorOptions& options) {
  return reduce_series(operands, &integration, options, "stddev",
                       stddev_fold);
}

Experiment variation(std::span<const Experiment* const> operands,
                     const OperatorOptions& options) {
  return reduce_series(operands, nullptr, options, "variation",
                       variation_fold);
}

Experiment variation(std::span<const Experiment* const> operands,
                     const IntegrationResult& integration,
                     const OperatorOptions& options) {
  return reduce_series(operands, &integration, options, "variation",
                       variation_fold);
}

SeriesSummary summarize_series(std::span<const Experiment* const> operands,
                               const OperatorOptions& options) {
  if (operands.size() < 2) {
    throw OperationError("summarize_series requires >= 2 operands");
  }
  // One metadata integration for all four reductions.  Before the hoisted
  // operator forms existed, each of the four integrated separately — four
  // structural merges whenever the series' metadata is digest-distinct
  // but structurally equal.
  const IntegrationResult integration =
      integrate_metadata(operands, options.integration);
  SeriesSummary summary{
      mean(operands, integration, options),
      minimum(operands, integration, options),
      maximum(operands, integration, options),
      stddev(operands, integration, options),
  };
  return summary;
}

}  // namespace cube
