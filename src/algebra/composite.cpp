#include "algebra/composite.hpp"

#include <cctype>

#include "common/error.hpp"

namespace cube {

namespace {

const char* op_name(Expr::Op op) {
  switch (op) {
    case Expr::Op::Load: return "<load>";
    case Expr::Op::Diff: return "diff";
    case Expr::Op::Merge: return "merge";
    case Expr::Op::Mean: return "mean";
    case Expr::Op::Min: return "min";
    case Expr::Op::Max: return "max";
  }
  return "?";
}

}  // namespace

Expr::Expr(Op op, std::string name, std::vector<std::unique_ptr<Expr>> args)
    : op_(op), name_(std::move(name)), args_(std::move(args)) {}

std::unique_ptr<Expr> Expr::load(std::string name) {
  return std::unique_ptr<Expr>(new Expr(Op::Load, std::move(name), {}));
}

std::unique_ptr<Expr> Expr::apply(Op op,
                                  std::vector<std::unique_ptr<Expr>> args) {
  return std::unique_ptr<Expr>(new Expr(op, {}, std::move(args)));
}

Experiment Expr::eval(const ExperimentEnv& env,
                      const OperatorOptions& options) const {
  if (op_ == Op::Load) {
    const auto it = env.find(name_);
    if (it == env.end() || it->second == nullptr) {
      throw OperationError("unbound experiment name '" + name_ + "'");
    }
    return it->second->clone();
  }

  std::vector<Experiment> values;
  values.reserve(args_.size());
  for (const auto& arg : args_) {
    values.push_back(arg->eval(env, options));
  }

  const auto require_arity = [&](std::size_t n) {
    if (values.size() != n) {
      throw OperationError(std::string(op_name(op_)) + " expects " +
                           std::to_string(n) + " arguments, got " +
                           std::to_string(values.size()));
    }
  };
  const auto require_nonempty = [&] {
    if (values.empty()) {
      throw OperationError(std::string(op_name(op_)) +
                           " expects >= 1 argument");
    }
  };

  std::vector<const Experiment*> ptrs;
  ptrs.reserve(values.size());
  for (const Experiment& v : values) ptrs.push_back(&v);

  switch (op_) {
    case Op::Diff:
      require_arity(2);
      return difference(values[0], values[1], options);
    case Op::Merge:
      require_arity(2);
      return merge(values[0], values[1], options);
    case Op::Mean:
      require_nonempty();
      return mean(std::span<const Experiment* const>(ptrs), options);
    case Op::Min:
      require_nonempty();
      return minimum(std::span<const Experiment* const>(ptrs), options);
    case Op::Max:
      require_nonempty();
      return maximum(std::span<const Experiment* const>(ptrs), options);
    case Op::Load:
      break;  // handled above
  }
  throw OperationError("unreachable expression op");
}

std::string Expr::str() const {
  if (op_ == Op::Load) return name_;
  std::string out = op_name(op_);
  out += '(';
  for (std::size_t i = 0; i < args_.size(); ++i) {
    if (i > 0) out += ", ";
    out += args_[i]->str();
  }
  out += ')';
  return out;
}

namespace {

/// Recursive-descent parser for the composite expression grammar.
class ExprParser {
 public:
  explicit ExprParser(std::string_view text) : text_(text) {}

  std::unique_ptr<Expr> parse() {
    auto e = parse_expr();
    skip_ws();
    if (pos_ != text_.size()) {
      fail("trailing input after expression");
    }
    return e;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw Error("expression parse error at offset " + std::to_string(pos_) +
                ": " + what);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool is_ident_char(char c) const {
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
           c == '.' || c == '-';
  }

  std::string parse_ident() {
    skip_ws();
    const std::size_t start = pos_;
    if (pos_ >= text_.size() ||
        !(std::isalpha(static_cast<unsigned char>(text_[pos_])) ||
          text_[pos_] == '_')) {
      fail("expected identifier");
    }
    while (pos_ < text_.size() && is_ident_char(text_[pos_])) ++pos_;
    return std::string(text_.substr(start, pos_ - start));
  }

  std::unique_ptr<Expr> parse_expr() {
    const std::string ident = parse_ident();
    skip_ws();
    if (pos_ >= text_.size() || text_[pos_] != '(') {
      return Expr::load(ident);
    }
    Expr::Op op;
    if (ident == "diff" || ident == "difference") {
      op = Expr::Op::Diff;
    } else if (ident == "merge") {
      op = Expr::Op::Merge;
    } else if (ident == "mean" || ident == "avg") {
      op = Expr::Op::Mean;
    } else if (ident == "min") {
      op = Expr::Op::Min;
    } else if (ident == "max") {
      op = Expr::Op::Max;
    } else {
      fail("unknown operator '" + ident + "'");
    }
    ++pos_;  // consume '('
    std::vector<std::unique_ptr<Expr>> args;
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == ')') {
      fail("operator '" + ident + "' requires arguments");
    }
    while (true) {
      args.push_back(parse_expr());
      skip_ws();
      if (pos_ >= text_.size()) fail("unterminated argument list");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == ')') {
        ++pos_;
        break;
      }
      fail("expected ',' or ')'");
    }
    return Expr::apply(op, std::move(args));
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

std::unique_ptr<Expr> parse_expr(std::string_view text) {
  return ExprParser(text).parse();
}

Experiment eval_expr(std::string_view text, const ExperimentEnv& env,
                     const OperatorOptions& options) {
  return parse_expr(text)->eval(env, options);
}

}  // namespace cube
