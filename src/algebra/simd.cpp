#include "algebra/simd.hpp"

#include <algorithm>

#if !defined(CUBE_FORCE_SCALAR) && (defined(__x86_64__) || defined(_M_X64))
#define CUBE_SIMD_AVX2 1
#include <immintrin.h>
#elif !defined(CUBE_FORCE_SCALAR) && defined(__ARM_NEON)
#define CUBE_SIMD_NEON 1
#include <arm_neon.h>
#endif

namespace cube::simd {

void reduce_sum_scalar(Severity* acc, const TileRow* rows, std::size_t nrows,
                       std::size_t n) noexcept {
  for (std::size_t i = 0; i < n; ++i) {
    Severity sum = 0.0;
    for (std::size_t r = 0; r < nrows; ++r) {
      const Severity v = rows[r].data[i];
      sum += rows[r].factor == 1.0 ? v : rows[r].factor * v;
    }
    acc[i] = sum;
  }
}

void reduce_extremum_scalar(Severity* acc, const TileRow* rows,
                            std::size_t nrows, std::size_t n,
                            bool take_min) noexcept {
  if (nrows == 0) {
    std::fill(acc, acc + n, 0.0);
    return;
  }
  if (take_min) {
    for (std::size_t i = 0; i < n; ++i) {
      Severity a = rows[0].data[i] + 0.0;
      for (std::size_t r = 1; r < nrows; ++r) {
        a = std::min(a, rows[r].data[i] + 0.0);
      }
      acc[i] = a;
    }
  } else {
    for (std::size_t i = 0; i < n; ++i) {
      Severity a = rows[0].data[i] + 0.0;
      for (std::size_t r = 1; r < nrows; ++r) {
        a = std::max(a, rows[r].data[i] + 0.0);
      }
      acc[i] = a;
    }
  }
}

#if defined(CUBE_SIMD_AVX2)

namespace {

/// Operand rows per blocking group.  A fold over the full batch width
/// cells-first would interleave up to 64 input streams at cache-line
/// granularity — more than the hardware prefetcher tracks, collapsing a
/// wide DRAM-resident batch to latency-bound loads.  Small groups keep
/// the active stream count prefetcher-sized; the accumulator strip is
/// re-read per group but stays cache-hot for a whole tile.  Grouping
/// cannot change results: group g finishes rows [g, g+4) for every cell
/// before group g+1 starts, so each cell still folds rows 0..N-1 in the
/// exact scalar order, and parking the partial sum in memory between
/// groups is value-preserving.
inline constexpr std::size_t kRowGroup = 4;

// Register-blocked strip of 16 cells (4 x 4 doubles): within a row
// group the accumulators live in-register.  Per cell this is the same
// left-to-right row fold as the scalar path, just 16 cells at a time.
__attribute__((target("avx2"))) void reduce_sum_avx2(
    Severity* acc, const TileRow* rows, std::size_t nrows,
    std::size_t n) noexcept {
  std::size_t g = 0;
  do {
    const std::size_t gend = std::min(nrows, g + kRowGroup);
    const bool first = g == 0;
    std::size_t i = 0;
    for (; i + 16 <= n; i += 16) {
      __m256d a0 = first ? _mm256_setzero_pd() : _mm256_loadu_pd(acc + i);
      __m256d a1 = first ? _mm256_setzero_pd() : _mm256_loadu_pd(acc + i + 4);
      __m256d a2 = first ? _mm256_setzero_pd() : _mm256_loadu_pd(acc + i + 8);
      __m256d a3 = first ? _mm256_setzero_pd() : _mm256_loadu_pd(acc + i + 12);
      for (std::size_t r = g; r < gend; ++r) {
        const Severity* p = rows[r].data + i;
        const double f = rows[r].factor;
        _mm_prefetch(reinterpret_cast<const char*>(p + 256), _MM_HINT_T0);
        _mm_prefetch(reinterpret_cast<const char*>(p + 264), _MM_HINT_T0);
        if (f == 1.0) {
          a0 = _mm256_add_pd(a0, _mm256_loadu_pd(p));
          a1 = _mm256_add_pd(a1, _mm256_loadu_pd(p + 4));
          a2 = _mm256_add_pd(a2, _mm256_loadu_pd(p + 8));
          a3 = _mm256_add_pd(a3, _mm256_loadu_pd(p + 12));
        } else {
          const __m256d vf = _mm256_set1_pd(f);
          a0 = _mm256_add_pd(a0, _mm256_mul_pd(vf, _mm256_loadu_pd(p)));
          a1 = _mm256_add_pd(a1, _mm256_mul_pd(vf, _mm256_loadu_pd(p + 4)));
          a2 = _mm256_add_pd(a2, _mm256_mul_pd(vf, _mm256_loadu_pd(p + 8)));
          a3 = _mm256_add_pd(a3, _mm256_mul_pd(vf, _mm256_loadu_pd(p + 12)));
        }
      }
      _mm256_storeu_pd(acc + i, a0);
      _mm256_storeu_pd(acc + i + 4, a1);
      _mm256_storeu_pd(acc + i + 8, a2);
      _mm256_storeu_pd(acc + i + 12, a3);
    }
    for (; i + 4 <= n; i += 4) {
      __m256d a = first ? _mm256_setzero_pd() : _mm256_loadu_pd(acc + i);
      for (std::size_t r = g; r < gend; ++r) {
        const __m256d v = _mm256_loadu_pd(rows[r].data + i);
        const double f = rows[r].factor;
        a = f == 1.0 ? _mm256_add_pd(a, v)
                     : _mm256_add_pd(a, _mm256_mul_pd(_mm256_set1_pd(f), v));
      }
      _mm256_storeu_pd(acc + i, a);
    }
    for (; i < n; ++i) {
      Severity sum = first ? 0.0 : acc[i];
      for (std::size_t r = g; r < gend; ++r) {
        const Severity v = rows[r].data[i];
        sum += rows[r].factor == 1.0 ? v : rows[r].factor * v;
      }
      acc[i] = sum;
    }
    g += kRowGroup;
  } while (g < nrows);
}

// _mm256_min_pd(v, a) returns v < a ? v : a and falls back to the SECOND
// operand on NaN — exactly std::min(a, v); same for max with vcmp order
// v > a.  The +0.0 matches the scalar normalization of stored -0.0.
__attribute__((target("avx2"))) void reduce_extremum_avx2(
    Severity* acc, const TileRow* rows, std::size_t nrows, std::size_t n,
    bool take_min) noexcept {
  if (nrows == 0) {
    std::fill(acc, acc + n, 0.0);
    return;
  }
  const __m256d zero = _mm256_setzero_pd();
  // Same kRowGroup blocking (and the same fold-order argument) as
  // reduce_sum_avx2.  Accumulator values reloaded from a previous group
  // are already normalized, so only fresh row loads get the + 0.0.
  std::size_t g = 0;
  do {
    const std::size_t gend = std::min(nrows, g + kRowGroup);
    const bool first = g == 0;
    std::size_t i = 0;
    for (; i + 8 <= n; i += 8) {
      __m256d a0 = first
                       ? _mm256_add_pd(_mm256_loadu_pd(rows[0].data + i), zero)
                       : _mm256_loadu_pd(acc + i);
      __m256d a1 =
          first ? _mm256_add_pd(_mm256_loadu_pd(rows[0].data + i + 4), zero)
                : _mm256_loadu_pd(acc + i + 4);
      for (std::size_t r = first ? 1 : g; r < gend; ++r) {
        _mm_prefetch(reinterpret_cast<const char*>(rows[r].data + i + 256),
                     _MM_HINT_T0);
        const __m256d v0 =
            _mm256_add_pd(_mm256_loadu_pd(rows[r].data + i), zero);
        const __m256d v1 =
            _mm256_add_pd(_mm256_loadu_pd(rows[r].data + i + 4), zero);
        if (take_min) {
          a0 = _mm256_min_pd(v0, a0);
          a1 = _mm256_min_pd(v1, a1);
        } else {
          a0 = _mm256_max_pd(v0, a0);
          a1 = _mm256_max_pd(v1, a1);
        }
      }
      _mm256_storeu_pd(acc + i, a0);
      _mm256_storeu_pd(acc + i + 4, a1);
    }
    for (; i < n; ++i) {
      Severity a = first ? rows[0].data[i] + 0.0 : acc[i];
      for (std::size_t r = first ? 1 : g; r < gend; ++r) {
        const Severity v = rows[r].data[i] + 0.0;
        a = take_min ? std::min(a, v) : std::max(a, v);
      }
      acc[i] = a;
    }
    g += kRowGroup;
  } while (g < nrows);
}

bool cpu_has_avx2() noexcept {
  static const bool has = __builtin_cpu_supports("avx2");
  return has;
}

}  // namespace

#elif defined(CUBE_SIMD_NEON)

namespace {

/// Same row-group blocking (and fold-order argument) as the AVX2
/// backend: a handful of sequential input streams in flight so the
/// prefetcher keeps up at any batch width, partial accumulators parked
/// in the cache-hot strip between groups.
inline constexpr std::size_t kRowGroup = 4;

void reduce_sum_neon(Severity* acc, const TileRow* rows, std::size_t nrows,
                     std::size_t n) noexcept {
  std::size_t g = 0;
  do {
    const std::size_t gend = std::min(nrows, g + kRowGroup);
    const bool first = g == 0;
    std::size_t i = 0;
    for (; i + 8 <= n; i += 8) {
      float64x2_t a0 = first ? vdupq_n_f64(0.0) : vld1q_f64(acc + i);
      float64x2_t a1 = first ? vdupq_n_f64(0.0) : vld1q_f64(acc + i + 2);
      float64x2_t a2 = first ? vdupq_n_f64(0.0) : vld1q_f64(acc + i + 4);
      float64x2_t a3 = first ? vdupq_n_f64(0.0) : vld1q_f64(acc + i + 6);
      for (std::size_t r = g; r < gend; ++r) {
        const Severity* p = rows[r].data + i;
        const double f = rows[r].factor;
        __builtin_prefetch(p + 256, 0, 3);
        if (f == 1.0) {
          a0 = vaddq_f64(a0, vld1q_f64(p));
          a1 = vaddq_f64(a1, vld1q_f64(p + 2));
          a2 = vaddq_f64(a2, vld1q_f64(p + 4));
          a3 = vaddq_f64(a3, vld1q_f64(p + 6));
        } else {
          const float64x2_t vf = vdupq_n_f64(f);
          a0 = vaddq_f64(a0, vmulq_f64(vf, vld1q_f64(p)));
          a1 = vaddq_f64(a1, vmulq_f64(vf, vld1q_f64(p + 2)));
          a2 = vaddq_f64(a2, vmulq_f64(vf, vld1q_f64(p + 4)));
          a3 = vaddq_f64(a3, vmulq_f64(vf, vld1q_f64(p + 6)));
        }
      }
      vst1q_f64(acc + i, a0);
      vst1q_f64(acc + i + 2, a1);
      vst1q_f64(acc + i + 4, a2);
      vst1q_f64(acc + i + 6, a3);
    }
    for (; i < n; ++i) {
      Severity sum = first ? 0.0 : acc[i];
      for (std::size_t r = g; r < gend; ++r) {
        const Severity v = rows[r].data[i];
        sum += rows[r].factor == 1.0 ? v : rows[r].factor * v;
      }
      acc[i] = sum;
    }
    g += kRowGroup;
  } while (g < nrows);
}

// vminq_f64 does not match std::min on NaN, so the fold is spelled as the
// same compare+select std::min/std::max reduce to: v < a ? v : a.
void reduce_extremum_neon(Severity* acc, const TileRow* rows,
                          std::size_t nrows, std::size_t n,
                          bool take_min) noexcept {
  if (nrows == 0) {
    std::fill(acc, acc + n, 0.0);
    return;
  }
  const float64x2_t zero = vdupq_n_f64(0.0);
  std::size_t g = 0;
  do {
    const std::size_t gend = std::min(nrows, g + kRowGroup);
    const bool first = g == 0;
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
      float64x2_t a0 = first ? vaddq_f64(vld1q_f64(rows[0].data + i), zero)
                             : vld1q_f64(acc + i);
      float64x2_t a1 = first ? vaddq_f64(vld1q_f64(rows[0].data + i + 2), zero)
                             : vld1q_f64(acc + i + 2);
      for (std::size_t r = first ? 1 : g; r < gend; ++r) {
        __builtin_prefetch(rows[r].data + i + 256, 0, 3);
        const float64x2_t v0 = vaddq_f64(vld1q_f64(rows[r].data + i), zero);
        const float64x2_t v1 = vaddq_f64(vld1q_f64(rows[r].data + i + 2), zero);
        if (take_min) {
          a0 = vbslq_f64(vcltq_f64(v0, a0), v0, a0);
          a1 = vbslq_f64(vcltq_f64(v1, a1), v1, a1);
        } else {
          a0 = vbslq_f64(vcgtq_f64(v0, a0), v0, a0);
          a1 = vbslq_f64(vcgtq_f64(v1, a1), v1, a1);
        }
      }
      vst1q_f64(acc + i, a0);
      vst1q_f64(acc + i + 2, a1);
    }
    for (; i < n; ++i) {
      Severity a = first ? rows[0].data[i] + 0.0 : acc[i];
      for (std::size_t r = first ? 1 : g; r < gend; ++r) {
        const Severity v = rows[r].data[i] + 0.0;
        a = take_min ? std::min(a, v) : std::max(a, v);
      }
      acc[i] = a;
    }
    g += kRowGroup;
  } while (g < nrows);
}

}  // namespace

#endif

Backend active_backend() noexcept {
#if defined(CUBE_SIMD_AVX2)
  return cpu_has_avx2() ? Backend::Avx2 : Backend::Scalar;
#elif defined(CUBE_SIMD_NEON)
  return Backend::Neon;
#else
  return Backend::Scalar;
#endif
}

const char* backend_name(Backend backend) noexcept {
  switch (backend) {
    case Backend::Avx2:
      return "avx2";
    case Backend::Neon:
      return "neon";
    case Backend::Scalar:
      break;
  }
  return "scalar";
}

void reduce_sum(Severity* acc, const TileRow* rows, std::size_t nrows,
                std::size_t n, Policy policy) noexcept {
#if defined(CUBE_SIMD_AVX2)
  if (policy == Policy::Auto && cpu_has_avx2()) {
    reduce_sum_avx2(acc, rows, nrows, n);
    return;
  }
#elif defined(CUBE_SIMD_NEON)
  if (policy == Policy::Auto) {
    reduce_sum_neon(acc, rows, nrows, n);
    return;
  }
#endif
  (void)policy;
  reduce_sum_scalar(acc, rows, nrows, n);
}

void reduce_extremum(Severity* acc, const TileRow* rows, std::size_t nrows,
                     std::size_t n, bool take_min, Policy policy) noexcept {
#if defined(CUBE_SIMD_AVX2)
  if (policy == Policy::Auto && cpu_has_avx2()) {
    reduce_extremum_avx2(acc, rows, nrows, n, take_min);
    return;
  }
#elif defined(CUBE_SIMD_NEON)
  if (policy == Policy::Auto) {
    reduce_extremum_neon(acc, rows, nrows, n, take_min);
    return;
  }
#endif
  (void)policy;
  reduce_extremum_scalar(acc, rows, nrows, n, take_min);
}

}  // namespace cube::simd
