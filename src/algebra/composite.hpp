// Composite operators.
//
// Because every operator maps back into the space of valid experiments, a
// user can "easily define composite operations, for example, in order to
// compute the difference of averaged data" (paper §1).  This module gives
// that composition an explicit form: a small expression AST over named
// experiments plus a textual front end, e.g.
//
//     diff(mean(before1, before2), mean(after1, after2))
//
// evaluated against an environment binding names to experiments.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "algebra/operators.hpp"
#include "model/experiment.hpp"

namespace cube {

/// Environment binding expression identifiers to experiments.
using ExperimentEnv = std::map<std::string, const Experiment*>;

/// Node of a composite-operator expression tree.
class Expr {
 public:
  enum class Op { Load, Diff, Merge, Mean, Min, Max };

  /// Leaf: reference a named experiment from the environment.
  [[nodiscard]] static std::unique_ptr<Expr> load(std::string name);
  /// Inner node applying `op` to the children; arity is checked on eval.
  [[nodiscard]] static std::unique_ptr<Expr> apply(
      Op op, std::vector<std::unique_ptr<Expr>> args);

  /// Evaluates the tree bottom-up.  Throws OperationError on an unbound
  /// identifier or wrong arity.
  [[nodiscard]] Experiment eval(const ExperimentEnv& env,
                                const OperatorOptions& options = {}) const;

  /// Canonical textual rendering, e.g. "diff(mean(a, b), c)".
  [[nodiscard]] std::string str() const;

  [[nodiscard]] Op op() const noexcept { return op_; }
  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] const std::vector<std::unique_ptr<Expr>>& args()
      const noexcept {
    return args_;
  }

 private:
  Expr(Op op, std::string name, std::vector<std::unique_ptr<Expr>> args);

  Op op_;
  std::string name_;  // identifier for Load
  std::vector<std::unique_ptr<Expr>> args_;
};

/// Parses the textual expression grammar
///   expr  := ident | func '(' expr (',' expr)* ')'
///   func  := "diff" | "merge" | "mean" | "min" | "max"
///   ident := [A-Za-z_][A-Za-z0-9_.-]*
/// Throws cube::Error with position information on malformed input.
[[nodiscard]] std::unique_ptr<Expr> parse_expr(std::string_view text);

/// Parse + eval in one step.
[[nodiscard]] Experiment eval_expr(std::string_view text,
                                   const ExperimentEnv& env,
                                   const OperatorOptions& options = {});

}  // namespace cube
