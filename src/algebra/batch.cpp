#include "algebra/batch.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "obs/tracer.hpp"

namespace cube::batch {

std::size_t num_cell_chunks(std::size_t cells) {
  return std::max<std::size_t>(1, std::min(cells, kMaxCellChunks));
}

OutShape shape_of(const Metadata& md) {
  OutShape os;
  os.metrics = md.num_metrics();
  os.cnodes = md.num_cnodes();
  os.threads = md.num_threads();
  os.plane = os.cnodes * os.threads;
  os.cells = os.metrics * os.plane;
  return os;
}

KernelCounters KernelCounters::resolve(obs::MetricsRegistry* registry) {
  KernelCounters kc;
  if (registry == nullptr) return kc;
  kc.identity_dense_cells =
      &registry->counter(kernel_counters::kIdentityDenseCells);
  kc.remap_dense_cells = &registry->counter(kernel_counters::kRemapDenseCells);
  kc.identity_sparse_nnz =
      &registry->counter(kernel_counters::kIdentitySparseNnz);
  kc.remap_sparse_nnz = &registry->counter(kernel_counters::kRemapSparseNnz);
  kc.chunks = &registry->counter(kernel_counters::kChunks);
  kc.applications = &registry->counter(kernel_counters::kApplications);
  kc.batch_tiles = &registry->counter(kernel_counters::kBatchTiles);
  kc.batch_width = &registry->counter(kernel_counters::kBatchWidth);
  return kc;
}

void LocalKernelStats::flush(const KernelCounters& kc) const {
  if (kc.identity_dense_cells == nullptr) return;
  if (identity_dense_cells != 0) {
    kc.identity_dense_cells->add(identity_dense_cells);
  }
  if (remap_dense_cells != 0) kc.remap_dense_cells->add(remap_dense_cells);
  if (identity_sparse_nnz != 0) {
    kc.identity_sparse_nnz->add(identity_sparse_nnz);
  }
  if (remap_sparse_nnz != 0) kc.remap_sparse_nnz->add(remap_sparse_nnz);
  if (batch_tiles != 0) kc.batch_tiles->add(batch_tiles);
}

void run_cell_chunked(
    const OperatorOptions& options, const KernelCounters& kc, std::size_t cells,
    const std::function<void(std::size_t, std::size_t, std::size_t)>& body) {
  const std::size_t chunks = num_cell_chunks(cells);
  if (kc.chunks != nullptr) kc.chunks->add(chunks);
  const auto run = [&](std::size_t k) {
    const std::size_t lo = k * cells / chunks;
    const std::size_t hi = (k + 1) * cells / chunks;
    if (lo < hi) {
      OBS_SPAN("severity.chunk");
      body(k, lo, hi);
    }
  };
  if (options.parallel_for && chunks > 1) {
    options.parallel_for(chunks, run);
  } else {
    for (std::size_t k = 0; k < chunks; ++k) run(k);
  }
}

void merge_staged(Experiment& out, const OutShape& os,
                  std::vector<SparseSnapshot>& staged) {
  SeverityStore& sev = out.severity();
  if (sev.kind() == StorageKind::Sparse) {
    auto& sparse = static_cast<SparseSeverity&>(sev);
    for (const SparseSnapshot& chunk : staged) sparse.set_cells(chunk);
    return;
  }
  for (const SparseSnapshot& chunk : staged) {
    for (const auto& [cell, v] : chunk) {
      const std::size_t rest = cell % os.plane;
      sev.set(cell / os.plane, rest / os.threads, rest % os.threads, v);
    }
  }
}

namespace {

bool injective(const std::vector<std::size_t>& map, std::size_t out_size) {
  std::vector<char> seen(out_size, 0);
  for (const std::size_t v : map) {
    if (v == kNoIndex) continue;
    if (v >= out_size || seen[v] != 0) return false;
    seen[v] = 1;
  }
  return true;
}

}  // namespace

void release_consumed(std::span<const Experiment* const> sources,
                      std::span<const OperandMapping> mappings,
                      std::size_t lo, std::size_t hi) {
  for (std::size_t i = 0; i < sources.size(); ++i) {
    if (!mappings[i].identity()) continue;
    const SeverityStore& sev = sources[i]->severity();
    if (sev.file_backed()) sev.release_cells(lo, hi);
  }
}

bool batchable(std::span<const OperandMapping> mappings, const OutShape& os) {
  for (const OperandMapping& m : mappings) {
    if (m.identity()) continue;
    if (!m.metric_identity && !injective(m.metric_map, os.metrics)) {
      return false;
    }
    if (!m.cnode_identity && !injective(m.cnode_map, os.cnodes)) return false;
    if (!m.thread_identity && !injective(m.thread_map, os.threads)) {
      return false;
    }
  }
  return true;
}

namespace {

/// One operand prepared for SoA tile staging.  Exactly one of `borrow`
/// (identity x dense: tiles alias the store's cells directly), `rows`
/// (remapped dense rows sorted by result base), or `snapshot` (sparse
/// non-zeros with RESULT-space keys, ascending) is populated.
struct BatchOperand {
  const Severity* borrow = nullptr;

  struct Row {
    std::size_t out_base = 0;      ///< result cell of the row's thread 0
    const Severity* src = nullptr;  ///< source row of src_threads cells
  };
  std::vector<Row> rows;
  const std::vector<ThreadIndex>* thread_map = nullptr;
  std::size_t src_threads = 0;

  SparseSnapshot snapshot;
  bool sparse = false;
  bool identity = false;  ///< counter classification for sparse operands
};

/// Prepares every operand once per application.  Near-full sparse stores
/// are densified (same threshold as the per-operand kernels: a snapshot
/// costs 16 bytes/entry vs 8 bytes/cell for a mirror); sparse snapshots
/// are remapped into result space HERE, once, instead of per chunk.
/// Injective mappings guarantee distinct result keys, so the re-sort
/// after remapping keeps one entry per cell.
std::vector<BatchOperand> prepare_batch(
    std::span<const Experiment* const> sources,
    std::span<const OperandMapping> mappings, const OutShape& os,
    std::vector<std::vector<Severity>>& mirror_storage) {
  mirror_storage.resize(sources.size());
  std::vector<BatchOperand> prepared(sources.size());
  for (std::size_t i = 0; i < sources.size(); ++i) {
    const SeverityStore& sev = sources[i]->severity();
    const OperandMapping& mapping = mappings[i];
    BatchOperand& op = prepared[i];

    const Severity* dense = nullptr;
    if (sev.kind() != StorageKind::Sparse) {
      dense = static_cast<const DenseSeverity&>(sev).cells().data();
    } else {
      const auto& sp = static_cast<const SparseSeverity&>(sev);
      if (2 * sp.nonzero_count() >= sp.num_cells()) {
        mirror_storage[i].assign(sp.num_cells(), 0.0);
        sp.scatter_into(mirror_storage[i]);
        dense = mirror_storage[i].data();
      }
    }

    if (dense != nullptr) {
      if (mapping.identity()) {
        op.borrow = dense;
        continue;
      }
      const std::size_t sm = sev.num_metrics();
      const std::size_t sc = sev.num_cnodes();
      op.src_threads = sev.num_threads();
      op.thread_map = &mapping.thread_map;
      op.rows.reserve(sm * sc);
      for (MetricIndex m = 0; m < sm; ++m) {
        const MetricIndex om = mapping.metric_map[m];
        if (om == kNoIndex) continue;
        for (CnodeIndex c = 0; c < sc; ++c) {
          op.rows.push_back(
              {(om * os.cnodes + mapping.cnode_map[c]) * os.threads,
               dense + (m * sc + c) * op.src_threads});
        }
      }
      std::stable_sort(op.rows.begin(), op.rows.end(),
                       [](const BatchOperand::Row& a,
                          const BatchOperand::Row& b) {
                         return a.out_base < b.out_base;
                       });
      continue;
    }

    const auto& sp = static_cast<const SparseSeverity&>(sev);
    op.sparse = true;
    op.identity = mapping.identity();
    if (op.identity) {
      op.snapshot = sp.sorted_cells();
      continue;
    }
    const auto source_cells = sp.sorted_cells();
    const std::size_t st = sev.num_threads();
    const std::size_t splane = sev.num_cnodes() * st;
    op.snapshot.reserve(source_cells.size());
    for (const auto& [key, v] : source_cells) {
      const MetricIndex om = mapping.metric_map[key / splane];
      if (om == kNoIndex) continue;
      const std::size_t rest = key % splane;
      op.snapshot.emplace_back(
          (om * os.cnodes + mapping.cnode_map[rest / st]) * os.threads +
              mapping.thread_map[rest % st],
          v);
    }
    std::sort(op.snapshot.begin(), op.snapshot.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
  }
  return prepared;
}

/// Gathers one operand's tile row [lo, hi) into `row` (zero-extended),
/// advancing the operand's chunk cursor.  Cursors are monotone: rows are
/// sorted by out_base and snapshots by key, and tiles ascend, so every
/// non-zero is located once per application, not once per tile.
void gather_tile(const BatchOperand& op, const OutShape& os, Severity* row,
                 std::size_t lo, std::size_t hi, std::size_t& cursor,
                 LocalKernelStats& ks) {
  std::fill(row, row + (hi - lo), 0.0);
  if (op.sparse) {
    std::uint64_t applied = 0;
    while (cursor < op.snapshot.size() && op.snapshot[cursor].first < hi) {
      const auto& [key, v] = op.snapshot[cursor];
      if (key >= lo) {
        row[key - lo] += v;
        ++applied;
      }
      ++cursor;
    }
    if (op.identity) {
      ks.identity_sparse_nnz += applied;
    } else {
      ks.remap_sparse_nnz += applied;
    }
    return;
  }
  // Dense remapped rows.  A row spans os.threads result cells and may
  // straddle tile boundaries, so the cursor only passes rows that ended
  // before this tile; rows crossing the upper boundary are clamped and
  // revisited by the next tile.
  while (cursor < op.rows.size() &&
         op.rows[cursor].out_base + os.threads <= lo) {
    ++cursor;
  }
  const std::vector<ThreadIndex>& tmap = *op.thread_map;
  for (std::size_t r = cursor; r < op.rows.size(); ++r) {
    const BatchOperand::Row& rw = op.rows[r];
    if (rw.out_base >= hi) break;
    if (lo <= rw.out_base && rw.out_base + os.threads <= hi) {
      for (ThreadIndex t = 0; t < op.src_threads; ++t) {
        const Severity v = rw.src[t];
        if (v != 0.0) row[rw.out_base + tmap[t] - lo] += v;
      }
    } else {
      for (ThreadIndex t = 0; t < op.src_threads; ++t) {
        const std::size_t cell = rw.out_base + tmap[t];
        if (cell < lo || cell >= hi) continue;
        const Severity v = rw.src[t];
        if (v != 0.0) row[cell - lo] += v;
      }
    }
    ks.remap_dense_cells += op.src_threads;
  }
}

}  // namespace

void reduce_batched(std::span<const Experiment* const> sources,
                    std::span<const OperandMapping> mappings,
                    std::span<const double> factors, Experiment& out,
                    const OperatorOptions& options, const TileReduce& reduce) {
  const OutShape os = shape_of(out.metadata());
  if (os.cells == 0 || sources.empty()) return;
  const KernelCounters kc = KernelCounters::resolve(options.metrics);
  if (kc.applications != nullptr) kc.applications->add(1);
  if (kc.batch_width != nullptr) kc.batch_width->add(sources.size());

  std::vector<std::vector<Severity>> mirror_storage;
  const std::vector<BatchOperand> prepared =
      prepare_batch(sources, mappings, os, mirror_storage);

  DenseSeverity* dense_out =
      out.severity().kind() == StorageKind::Dense
          ? &static_cast<DenseSeverity&>(out.severity())
          : nullptr;
  std::vector<SparseSnapshot> staged(
      dense_out != nullptr ? 0 : num_cell_chunks(os.cells));

  std::size_t num_gathered = 0;
  for (const BatchOperand& op : prepared) {
    if (op.borrow == nullptr) ++num_gathered;
  }

  run_cell_chunked(
      options, kc, os.cells,
      [&](std::size_t k, std::size_t lo, std::size_t hi) {
        LocalKernelStats ks;
        // Chunk-local cursors, positioned once at the chunk's lower bound.
        std::vector<std::size_t> cursor(prepared.size(), 0);
        for (std::size_t i = 0; i < prepared.size(); ++i) {
          const BatchOperand& op = prepared[i];
          if (op.borrow != nullptr) continue;
          if (op.sparse) {
            cursor[i] = static_cast<std::size_t>(
                std::lower_bound(op.snapshot.begin(), op.snapshot.end(), lo,
                                 [](const auto& entry, std::uint64_t key) {
                                   return entry.first < key;
                                 }) -
                op.snapshot.begin());
          } else {
            cursor[i] = static_cast<std::size_t>(
                std::partition_point(op.rows.begin(), op.rows.end(),
                                     [&](const BatchOperand::Row& r) {
                                       return r.out_base + os.threads <= lo;
                                     }) -
                op.rows.begin());
          }
        }
        std::vector<Severity> staging(num_gathered * kTileCells);
        std::vector<simd::TileRow> tile(prepared.size());
        std::vector<Severity> buf;
        if (dense_out == nullptr) buf.assign(hi - lo, 0.0);

        for (std::size_t tlo = lo; tlo < hi; tlo += kTileCells) {
          const std::size_t thi = std::min(hi, tlo + kTileCells);
          const std::size_t tn = thi - tlo;
          std::size_t slot = 0;
          for (std::size_t i = 0; i < prepared.size(); ++i) {
            const BatchOperand& op = prepared[i];
            if (op.borrow != nullptr) {
              tile[i] = {op.borrow + tlo, factors[i]};
              ks.identity_dense_cells += tn;
              continue;
            }
            Severity* row = staging.data() + slot * kTileCells;
            ++slot;
            gather_tile(op, os, row, tlo, thi, cursor[i], ks);
            tile[i] = {row, factors[i]};
          }
          Severity* acc = dense_out != nullptr
                              ? dense_out->cells_mut(tlo, thi).data()
                              : buf.data() + (tlo - lo);
          reduce(acc, tile.data(), tile.size(), tn);
          ++ks.batch_tiles;
        }

        if (dense_out == nullptr) {
          for (std::size_t i = 0; i < buf.size(); ++i) {
            if (buf[i] != 0.0) staged[k].emplace_back(lo + i, buf[i]);
          }
        }
        ks.flush(kc);
        if (options.release_operand_pages) {
          release_consumed(sources, mappings, lo, hi);
        }
      });
  if (dense_out == nullptr) merge_staged(out, os, staged);
}

}  // namespace cube::batch
