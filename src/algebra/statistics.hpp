// Statistical reduction over experiment series (extension).
//
// The paper's outlook: "New operators which perform data reduction, for
// example, based on multivariate statistical techniques, might further
// help manage size when applied to the integrated data."  This module adds
// the natural first step in CUBE's own spirit — CLOSED statistical
// reductions: given a series of experiments, it derives experiments whose
// severity functions are the element-wise standard deviation or coefficient
// of variation of the series, plus a bundle of {mean, min, max, stddev}
// summaries.  Each result is a full experiment, so it feeds the display,
// the file formats, and further operators like any other.
#pragma once

#include <span>
#include <vector>

#include "algebra/operators.hpp"
#include "model/experiment.hpp"

namespace cube {

/// Element-wise population standard deviation over the integrated domain
/// (absent tuples count as zero, consistent with the extension rule).
/// Requires >= 2 operands.
[[nodiscard]] Experiment stddev(std::span<const Experiment* const> operands,
                                const OperatorOptions& options = {});

/// Integration-hoisted form: `integration` must cover exactly these
/// operands (see the hoisted operator overloads in operators.hpp).
[[nodiscard]] Experiment stddev(std::span<const Experiment* const> operands,
                                const IntegrationResult& integration,
                                const OperatorOptions& options = {});

/// Element-wise coefficient of variation: stddev / |mean|, with cells of
/// zero mean set to zero.  A unit-free stability map of the series: the
/// hotspots of this experiment are where runs disagree the most.
/// Requires >= 2 operands.
[[nodiscard]] Experiment variation(
    std::span<const Experiment* const> operands,
    const OperatorOptions& options = {});
[[nodiscard]] Experiment variation(
    std::span<const Experiment* const> operands,
    const IntegrationResult& integration, const OperatorOptions& options = {});

/// Five-number summary of a series, each member a full derived experiment.
struct SeriesSummary {
  Experiment mean;
  Experiment minimum;
  Experiment maximum;
  Experiment stddev;
};

/// Computes all four summaries in one integration pass over the series.
/// Requires >= 2 operands.
[[nodiscard]] SeriesSummary summarize_series(
    std::span<const Experiment* const> operands,
    const OperatorOptions& options = {});

}  // namespace cube
