// Metadata integration: the first half of every algebra operator.
//
// Integrates the metric, program, and system dimensions of N operand
// experiments into one new metadata set, and returns per-operand index
// remappings through which each operand's severity function is extended to
// the integrated domain (undefined tuples become zero).
//
// Equality relations (paper section 3, "Metadata Integration"):
//   metric      — (unique name, unit of measurement)
//   region      — (name, module)
//   call site   — callee region; line numbers deliberately excluded because
//                 they shift across code versions while denoting the same
//                 site (file can be required via options)
//   cnode       — equality of its call site (i.e. of the callee)
//   process     — application-level rank (e.g. global MPI rank)
//   thread      — (rank, thread id) (e.g. OpenMP thread number)
//   machine/node— never matched; copied from the first operand or collapsed
//                 to a single machine/node, per SystemMergePolicy
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "model/experiment.hpp"
#include "model/metadata.hpp"

namespace cube {

/// How the machine/node levels of the system dimension are integrated.
enum class SystemMergePolicy {
  /// Copy the first operand's machine/node hierarchy if every operand's
  /// process-to-node partitioning is compatible with it, else collapse.
  /// This is the paper's default behavior.
  Auto,
  /// Always copy the first operand's machine/node hierarchy; processes of
  /// other operands with ranks unknown to the first operand are appended to
  /// the last node.
  CopyFirst,
  /// Always collapse to a single virtual machine with a single node.
  Collapse,
};

/// Switches altering the default integration rules ("switches have been
/// included to change the default according to a user's needs").
struct IntegrationOptions {
  SystemMergePolicy system_policy = SystemMergePolicy::Auto;
  /// If true, call sites additionally require equal source files to match.
  bool callsite_file_matters = false;
  /// If true, preserve per-process Cartesian topology coordinates when all
  /// operands defining a rank agree on them (extension, paper §7).
  bool keep_topology = true;
  /// If true (default), operands whose metadata digests all agree skip the
  /// structural merge entirely: the result SHARES the first operand's
  /// metadata instance and all mappings are the identity.  Disable to force
  /// the structural path (oracle comparison, benchmarking).
  bool reuse_identical_metadata = true;
};

/// Index remapping of one operand into the integrated metadata.
///
/// The per-dimension identity flags record that the operand's index space
/// coincides with the integrated one (same size, map[i] == i).  This is the
/// common case — repeated runs of one binary share all metadata — and lets
/// operator kernels skip the remap indirection entirely: with identity()
/// true, operand cell i IS integrated cell i, so dense operands reduce
/// straight over aligned flat arrays.
struct OperandMapping {
  std::vector<MetricIndex> metric_map;  ///< operand metric -> integrated
  std::vector<CnodeIndex> cnode_map;    ///< operand cnode  -> integrated
  std::vector<ThreadIndex> thread_map;  ///< operand thread -> integrated
  bool metric_identity = false;  ///< metric_map is the identity onto out
  bool cnode_identity = false;   ///< cnode_map is the identity onto out
  bool thread_identity = false;  ///< thread_map is the identity onto out

  /// True if the operand's whole flattened cell space maps 1:1 onto the
  /// integrated cell space.
  [[nodiscard]] bool identity() const noexcept {
    return metric_identity && cnode_identity && thread_identity;
  }
};

/// Integrated metadata plus the per-operand remappings.
struct IntegrationResult {
  /// Frozen, shareable integrated metadata.  When `shared_metadata` is true
  /// this IS the first operand's instance (pointer-equal), not a copy.
  std::shared_ptr<const Metadata> metadata;
  std::vector<OperandMapping> mappings;
  /// True if the system dimension was collapsed to a virtual machine/node.
  bool system_collapsed = false;
  /// True if the digest short-circuit fired: no structural merge ran and
  /// `metadata` is shared with the operands.
  bool shared_metadata = false;
};

/// Integrates the metadata of all operands.  Operands must be non-empty.
[[nodiscard]] IntegrationResult integrate_metadata(
    std::span<const Experiment* const> operands,
    const IntegrationOptions& options = {});

/// Convenience overload for two operands.
[[nodiscard]] IntegrationResult integrate_metadata(
    const Experiment& a, const Experiment& b,
    const IntegrationOptions& options = {});

}  // namespace cube
