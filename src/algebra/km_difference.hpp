// Baseline: the Karavanic/Miller performance difference operator.
//
// The paper positions CUBE against "the framework for multi-execution
// performance tuning by Karavanic and Miller, which includes an operator to
// calculate a list of resources showing a significant discrepancy between
// different experiments.  However, this difference operator maps from its
// input space containing entire experiments into a smaller representation
// (i.e., a list of resources).  A repeated application is not possible,
// further processing would require a logic or a display different from one
// suitable for the original input data."
//
// This module implements that baseline faithfully so the contrast is
// testable: km_difference returns a ranked list of FOCI (combinations of
// resources from the different hierarchies) whose discrepancy exceeds a
// significance threshold — NOT an experiment.  The output cannot feed back
// into the algebra or the display; CUBE's closed difference operator can.
#pragma once

#include <string>
#include <vector>

#include "model/experiment.hpp"

namespace cube {

/// A focus: one combination of resources from the different hierarchies.
struct Focus {
  const Metric* metric = nullptr;
  const Cnode* cnode = nullptr;
  const Process* process = nullptr;
  /// Severity of the focus in each experiment (summed over the process's
  /// threads) and their difference.
  Severity value_a = 0.0;
  Severity value_b = 0.0;
  [[nodiscard]] Severity discrepancy() const { return value_a - value_b; }
};

/// Significance policy for the structural performance difference.
struct KmOptions {
  /// A focus is reported when |a - b| > absolute_threshold ...
  Severity absolute_threshold = 0.0;
  /// ... and |a - b| > relative_threshold * max(|a|, |b|).
  double relative_threshold = 0.05;
  /// Restrict to metrics of one unit (mixing units in one ranked list is
  /// meaningless); unset compares everything.
  std::optional<Unit> unit = Unit::Seconds;
};

/// Result of the structural performance difference: the ranked focus list
/// plus the integrated metadata the foci point into (the list is not an
/// experiment — there is no severity function over the full space, which
/// is exactly the non-closure the paper criticizes).
struct KmResult {
  std::shared_ptr<const Metadata> metadata;  ///< integrated resource space
  std::vector<Focus> foci;  ///< entities owned by `metadata`
};

/// Computes the list of foci with significant discrepancy between two
/// experiments, ranked by |discrepancy| (descending).  Both experiments'
/// metadata are integrated first (the framework's structural merge); foci
/// are reported over the integrated resource space, including resources
/// that exist in only one operand.
[[nodiscard]] KmResult km_difference(const Experiment& a,
                                     const Experiment& b,
                                     const KmOptions& options = {});

/// Formats the focus list as an aligned table.
[[nodiscard]] std::string format_foci(const std::vector<Focus>& foci,
                                      int precision = 4);

}  // namespace cube
