// SIMD backends for the batched severity reductions (docs/KERNELS.md).
//
// The batch kernels stage N operands of an n-ary operator as rows of a
// structure-of-arrays tile (one row per operand, lanes spanning CELLS) and
// reduce across the batch dimension here.  Every backend computes, per
// cell, the exact same left-to-right fold over the rows the scalar
// variant spells out — vector lanes only parallelize ACROSS cells, never
// across operands — so all backends are bit-identical by construction and
// the scalar variant doubles as the test oracle.  The build disables FMA
// contraction globally (-ffp-contract=off, see the root CMakeLists) so a
// fused multiply-add cannot make one backend round differently.
#pragma once

#include <cstddef>

#include "common/types.hpp"

namespace cube::simd {

/// Per-application override of the backend selection.  Auto resolves to
/// the best backend the build and the running CPU support; ForceScalar
/// pins the scalar reduction.  The choice never affects results.
enum class Policy { Auto, ForceScalar };

/// Available reduction backends.  Avx2 is compiled on x86-64 through a
/// per-function target attribute (no -march flags required) and selected
/// at runtime via cpuid; Neon is baseline on aarch64.  Configuring with
/// -DCUBE_FORCE_SCALAR=ON compiles both out, leaving Scalar.
enum class Backend { Scalar, Avx2, Neon };

/// The backend Policy::Auto resolves to on this build and CPU.  Constant
/// for the process lifetime.
[[nodiscard]] Backend active_backend() noexcept;
[[nodiscard]] const char* backend_name(Backend backend) noexcept;

/// One operand row of a staging tile: data[i] is the operand's
/// zero-extended severity at the tile's i-th cell, factor its linear
/// combination coefficient (1.0 for merge/min/max, 1/N for mean, -1.0
/// for the difference subtrahend).
struct TileRow {
  const Severity* data = nullptr;
  double factor = 1.0;
};

// Each reduction overwrites acc[0, n).  The scalar variants below define
// the exact per-cell arithmetic; the dispatched entry points reproduce it
// bit-for-bit on every backend.

/// acc[i] = 0.0 + f0*rows[0].data[i] + f1*rows[1].data[i] + ... in row
/// order, with factor-1.0 rows added unscaled (f*v and the bare v are
/// bit-equal for f == 1.0; the branch only skips the multiply).
void reduce_sum_scalar(Severity* acc, const TileRow* rows, std::size_t nrows,
                       std::size_t n) noexcept;
void reduce_sum(Severity* acc, const TileRow* rows, std::size_t nrows,
                std::size_t n, Policy policy) noexcept;

/// acc[i] = min/max fold over rows[r].data[i] + 0.0 in row order with
/// std::min/std::max semantics (second argument loses ties and NaNs).
/// Row factors are ignored.  The + 0.0 normalizes a stored -0.0 to +0.0,
/// matching values materialized through zero-initialized staging buffers.
/// Requires nrows >= 1.
void reduce_extremum_scalar(Severity* acc, const TileRow* rows,
                            std::size_t nrows, std::size_t n,
                            bool take_min) noexcept;
void reduce_extremum(Severity* acc, const TileRow* rows, std::size_t nrows,
                     std::size_t n, bool take_min, Policy policy) noexcept;

}  // namespace cube::simd
