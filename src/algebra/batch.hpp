// Batched structure-of-arrays severity kernels (docs/KERNELS.md).
//
// The severity phase of an n-ary operator runs as ONE sweep through the
// result's flattened cell space: the space is partitioned into the fixed
// chunk grid (shared with the per-operand kernels of docs/STORAGE.md),
// each chunk is walked in tiles of kTileCells cells, and for every tile
// each operand contributes one row of a structure-of-arrays staging block
// — identity x dense operands borrow their cell span directly (zero
// copies), remapped and sparse operands gather into the tile once — after
// which a simd reduction folds the N rows per cell in operand order.
//
// Precondition of the staging layout: no operand mapping may COALESCE two
// source cells onto one result cell (per-dimension injectivity, checked
// by batchable()).  Integration produces injective mappings for
// well-formed metadata; if a mapping is not injective the operators fall
// back to the per-operand chunk kernels, which accumulate coalescing
// contributions exactly like the reference path.
//
// This header also hosts the chunking/counter infrastructure shared with
// the per-operand kernels in operators.cpp.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <span>
#include <utility>
#include <vector>

#include "algebra/integration.hpp"
#include "algebra/operators.hpp"
#include "algebra/simd.hpp"
#include "model/experiment.hpp"
#include "obs/metrics.hpp"

namespace cube::batch {

/// Fixed upper bound on cell chunks handed to a ParallelFor.  Not derived
/// from the thread count, so the partition — and therefore any conceivable
/// numeric effect — is identical no matter how the executor schedules it.
inline constexpr std::size_t kMaxCellChunks = 32;

/// Cells per SoA staging tile.  A tile row is 32 KiB — long enough that
/// the hardware prefetcher locks onto each operand stream — and a 64-wide
/// batch stages within 2 MiB, so the in-flight working set stays
/// cache-sized at any batch width.  Tile boundaries never affect results:
/// the reduction is independent per cell.
inline constexpr std::size_t kTileCells = 4096;

[[nodiscard]] std::size_t num_cell_chunks(std::size_t cells);

/// Shape of the integrated (result) cell space.
struct OutShape {
  std::size_t metrics = 0;
  std::size_t cnodes = 0;
  std::size_t threads = 0;
  std::size_t plane = 0;  ///< cnodes * threads
  std::size_t cells = 0;  ///< metrics * plane
};

[[nodiscard]] OutShape shape_of(const Metadata& md);

using SparseSnapshot = std::vector<std::pair<std::uint64_t, Severity>>;

/// The kernel counters of OperatorOptions::metrics, resolved ONCE per
/// operator application (registration takes the registry mutex; updates
/// are relaxed atomics).  All-null when no registry was supplied.
struct KernelCounters {
  obs::Counter* identity_dense_cells = nullptr;
  obs::Counter* remap_dense_cells = nullptr;
  obs::Counter* identity_sparse_nnz = nullptr;
  obs::Counter* remap_sparse_nnz = nullptr;
  obs::Counter* chunks = nullptr;
  obs::Counter* applications = nullptr;
  obs::Counter* batch_tiles = nullptr;
  obs::Counter* batch_width = nullptr;

  static KernelCounters resolve(obs::MetricsRegistry* registry);
};

/// Per-chunk kernel counters, flushed once into the shared registry.
struct LocalKernelStats {
  std::uint64_t identity_dense_cells = 0;
  std::uint64_t remap_dense_cells = 0;
  std::uint64_t identity_sparse_nnz = 0;
  std::uint64_t remap_sparse_nnz = 0;
  std::uint64_t batch_tiles = 0;

  void flush(const KernelCounters& kc) const;
};

/// Runs body(chunk, cell_lo, cell_hi) over the fixed partition of
/// [0, cells) into num_cell_chunks(cells) contiguous ranges.
void run_cell_chunked(
    const OperatorOptions& options, const KernelCounters& kc, std::size_t cells,
    const std::function<void(std::size_t, std::size_t, std::size_t)>& body);

/// Writes the non-zero entries of per-chunk staging buffers into a sparse
/// result, in chunk order.  Chunks cover disjoint cell ranges, so the
/// stored values are independent of execution order by construction.
void merge_staged(Experiment& out, const OutShape& os,
                  std::vector<SparseSnapshot>& staged);

/// Releases the file-backed pages of every identity-mapped operand for
/// the consumed result cell range [lo, hi) — the streaming hook behind
/// OperatorOptions::release_operand_pages.  Identity mappings make source
/// and result cell indices coincide, so the range translates directly;
/// remapped or owned operands are skipped.
void release_consumed(std::span<const Experiment* const> sources,
                      std::span<const OperandMapping> mappings,
                      std::size_t lo, std::size_t hi);

/// True if every mapping is per-dimension injective into the result space
/// (no two source cells coalesce onto one result cell) — the precondition
/// of the SoA staging layout.  kNoIndex entries (merge ownership masking)
/// are skipped.
[[nodiscard]] bool batchable(std::span<const OperandMapping> mappings,
                             const OutShape& os);

/// Per-tile reduction: overwrite acc[0, n) with a per-cell fold over the
/// nrows operand rows (simd::reduce_sum, simd::reduce_extremum, or the
/// statistics folds).
using TileReduce = std::function<void(Severity* acc, const simd::TileRow* rows,
                                      std::size_t nrows, std::size_t n)>;

/// The batched severity phase: one chunked sweep staging all N operands
/// per tile and reducing them with `reduce`.  Requires batchable()
/// mappings.  Dense results are reduced straight into their cell spans;
/// sparse results go through per-chunk staging merged in fixed chunk
/// order.  Bit-identical at any thread count, tile size, and batch width:
/// the fold order per cell is the operand order, always.
void reduce_batched(std::span<const Experiment* const> sources,
                    std::span<const OperandMapping> mappings,
                    std::span<const double> factors, Experiment& out,
                    const OperatorOptions& options, const TileReduce& reduce);

}  // namespace cube::batch
