#include "algebra/km_difference.hpp"

#include <algorithm>
#include <cmath>

#include "algebra/integration.hpp"
#include "common/string_util.hpp"
#include "common/text_table.hpp"

namespace cube {

KmResult km_difference(const Experiment& a, const Experiment& b,
                       const KmOptions& options) {
  const Experiment* ops[] = {&a, &b};
  IntegrationResult integration =
      integrate_metadata(std::span<const Experiment* const>(ops, 2), {});
  const Metadata& md = *integration.metadata;

  // Materialize both operands over the integrated space, aggregated to
  // process granularity (the framework's foci are resource combinations;
  // we use metric x call path x process).
  const std::size_t volume =
      md.num_metrics() * md.num_cnodes() * md.processes().size();
  std::vector<Severity> va(volume, 0.0);
  std::vector<Severity> vb(volume, 0.0);
  const auto at = [&md](MetricIndex m, CnodeIndex c, std::size_t p) {
    return (m * md.num_cnodes() + c) * md.processes().size() + p;
  };
  for (std::size_t op = 0; op < 2; ++op) {
    const Experiment& source = *ops[op];
    const OperandMapping& mapping = integration.mappings[op];
    std::vector<Severity>& dest = op == 0 ? va : vb;
    const Metadata& smd = source.metadata();
    for (MetricIndex m = 0; m < smd.num_metrics(); ++m) {
      for (CnodeIndex c = 0; c < smd.num_cnodes(); ++c) {
        for (ThreadIndex t = 0; t < smd.num_threads(); ++t) {
          const Severity v = source.severity().get(m, c, t);
          if (v == 0.0) continue;
          const ThreadIndex ot = mapping.thread_map[t];
          const std::size_t process = md.threads()[ot]->process().index();
          dest[at(mapping.metric_map[m], mapping.cnode_map[c], process)] +=
              v;
        }
      }
    }
  }

  std::vector<Focus> foci;
  for (MetricIndex m = 0; m < md.num_metrics(); ++m) {
    if (options.unit && md.metrics()[m]->unit() != *options.unit) continue;
    for (CnodeIndex c = 0; c < md.num_cnodes(); ++c) {
      for (std::size_t p = 0; p < md.processes().size(); ++p) {
        const Severity x = va[at(m, c, p)];
        const Severity y = vb[at(m, c, p)];
        const Severity d = x - y;
        const double magnitude = std::abs(d);
        if (magnitude <= options.absolute_threshold) continue;
        if (magnitude <=
            options.relative_threshold * std::max(std::abs(x),
                                                  std::abs(y))) {
          continue;
        }
        Focus f;
        f.metric = md.metrics()[m].get();
        f.cnode = md.cnodes()[c].get();
        f.process = md.processes()[p].get();
        f.value_a = x;
        f.value_b = y;
        foci.push_back(f);
      }
    }
  }
  std::sort(foci.begin(), foci.end(), [](const Focus& x, const Focus& y) {
    return std::abs(x.discrepancy()) > std::abs(y.discrepancy());
  });

  KmResult result;
  result.metadata = std::move(integration.metadata);
  result.foci = std::move(foci);
  return result;
}

std::string format_foci(const std::vector<Focus>& foci, int precision) {
  TextTable table;
  table.set_header({"#", "metric", "call path", "process", "a", "b",
                    "discrepancy"});
  table.set_align({Align::Right, Align::Left, Align::Left, Align::Left,
                   Align::Right, Align::Right, Align::Right});
  std::size_t rank = 1;
  for (const Focus& f : foci) {
    table.add_row({std::to_string(rank++), f.metric->display_name(),
                   f.cnode->path(), f.process->name(),
                   format_value(f.value_a, precision),
                   format_value(f.value_b, precision),
                   format_value(f.discrepancy(), precision)});
  }
  return table.str();
}

}  // namespace cube
