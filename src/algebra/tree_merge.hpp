// Generic top-down structural forest merge.
//
// This is the multi-execution framework's structural merge operator
// (Karavanic/Miller) that the paper reuses for the metric and program
// dimensions.  Starting at the roots, nodes of the operands are matched
// with a caller-supplied equality relation.  Matched nodes become a single
// shared node in the output; unmatched nodes are copied.  Matching is
// strictly top-down: once two nodes differ, their entire subtrees are kept
// separate in the output even if descendants would match (the merge only
// ever compares nodes whose parents were matched).
//
// The algorithm is N-ary: it merges any number of operand forests in one
// pass, which the n-ary mean operator uses directly.
#pragma once

#include <cstddef>
#include <functional>
#include <span>
#include <vector>

#include "common/types.hpp"

namespace cube {

/// Merges operand forests into an output structure built by the callbacks.
///
/// \tparam Node   operand node type (e.g. Metric, Cnode)
/// \param roots   one root list per operand
/// \param children returns a node's child list
/// \param equal   equality relation between operand nodes (possibly from
///                different operands); must be symmetric and transitive on
///                the nodes that actually get compared
/// \param emit    called once per output node with (representative source
///                node, output parent id or kNoIndex); returns the output id
/// \param record  called for every (operand, source node) with the output id
///                it was mapped to — matched or copied alike
template <typename Node>
void merge_forests(
    std::span<const std::vector<const Node*>> roots,
    const std::function<std::vector<const Node*>(const Node&)>& children,
    const std::function<bool(const Node&, const Node&)>& equal,
    const std::function<std::size_t(const Node&, std::size_t)>& emit,
    const std::function<void(std::size_t, const Node&, std::size_t)>& record) {
  const std::size_t num_operands = roots.size();

  struct Slot {
    const Node* representative;
    // (operand, source node) pairs matched into this output node.
    std::vector<std::pair<std::size_t, const Node*>> members;
    // Children contributed per operand; merged at the next level.
    std::vector<std::vector<const Node*>> child_groups;
  };

  // Recursive lambda over one sibling group.  Matching happens per sibling
  // group (top-down), but output nodes are EMITTED in pre-order DFS —
  // a slot's whole subtree before its next sibling.  That is document
  // order: an operand whose entities were inserted in pre-order (as file
  // parsers and derived experiments produce them) maps onto the
  // integrated set via the IDENTITY when the operands' structures agree,
  // which is what lets operator kernels drop the remap indirection
  // (OperandMapping::identity).
  const std::function<void(std::size_t,
                           std::vector<std::vector<const Node*>>)>
      merge_level = [&](std::size_t out_parent,
                        std::vector<std::vector<const Node*>> groups) {
        std::vector<Slot> slots;
        for (std::size_t op = 0; op < num_operands; ++op) {
          for (const Node* node : groups[op]) {
            Slot* match = nullptr;
            for (Slot& s : slots) {
              if (equal(*s.representative, *node)) {
                match = &s;
                break;
              }
            }
            if (match == nullptr) {
              slots.push_back(Slot{node,
                                   {},
                                   std::vector<std::vector<const Node*>>(
                                       num_operands)});
              match = &slots.back();
            }
            match->members.emplace_back(op, node);
            auto kids = children(*node);
            auto& group = match->child_groups[op];
            group.insert(group.end(), kids.begin(), kids.end());
          }
        }
        for (Slot& s : slots) {
          const std::size_t out_id = emit(*s.representative, out_parent);
          for (const auto& [op, node] : s.members) {
            record(op, *node, out_id);
          }
          merge_level(out_id, std::move(s.child_groups));
        }
      };

  std::vector<std::vector<const Node*>> top(num_operands);
  for (std::size_t op = 0; op < num_operands; ++op) top[op] = roots[op];
  merge_level(kNoIndex, std::move(top));
}

}  // namespace cube
