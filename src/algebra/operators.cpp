#include "algebra/operators.hpp"

#include <algorithm>
#include <string>

#include "algebra/batch.hpp"
#include "algebra/simd.hpp"
#include "common/error.hpp"
#include "obs/tracer.hpp"

namespace cube {

namespace {

/// Runs the metadata-integration phase under its own span, so operator
/// profiles separate integration cost from the severity kernels.
IntegrationResult integrate_traced(std::span<const Experiment* const> operands,
                                   const IntegrationOptions& options) {
  OBS_SPAN("phase.integrate");
  return integrate_metadata(operands, options);
}

std::string operand_label(const Experiment& e, std::size_t index) {
  const std::string name = e.name();
  return !name.empty() ? name : "exp" + std::to_string(index + 1);
}

std::string label_list(std::span<const Experiment* const> operands) {
  std::string out;
  for (std::size_t i = 0; i < operands.size(); ++i) {
    if (i > 0) out += ", ";
    out += operand_label(*operands[i], i);
  }
  return out;
}

Experiment make_result(const IntegrationResult& integration,
                       const OperatorOptions& options) {
  return Experiment(integration.metadata, options.storage);
}

// ===========================================================================
// Per-operand bulk kernels (docs/STORAGE.md)
//
// The severity phase of every operator is a linear pass over the result's
// FLATTENED cell space [0, M*C*T), partitioned into fixed chunks.  Per
// chunk, each operand is accumulated through the fastest applicable
// kernel:
//
//   identity mapping x dense operand  -> remap-free flat array pass
//   remapped         x dense operand  -> row-wise scatter, clamped to chunk
//   identity mapping x sparse operand -> binary-searched non-zero range
//   remapped         x sparse operand -> one pass over the sorted non-zeros
//
// Every kernel applies a cell's contributions in ascending source (m, c, t)
// order and operands are processed in operand order, exactly like the
// per-cell reference path below, so results are bit-identical to it (and
// independent of the thread count — chunk boundaries depend only on the
// shape).
//
// By default the severity phase runs through the batched SoA tile kernels
// (algebra/batch.hpp, docs/KERNELS.md) instead; the per-operand kernels
// here remain the fallback for non-injective operand mappings (where
// coalescing source cells must accumulate) and for
// OperatorOptions::use_batch_kernels == false.
// ===========================================================================

using batch::KernelCounters;
using batch::kMaxCellChunks;
using batch::LocalKernelStats;
using batch::num_cell_chunks;
using batch::OutShape;
using batch::shape_of;
using batch::SparseSnapshot;

/// One operand's severity, prepared for the kernels: either a flat dense
/// cell array (the store's own contiguous cells, or a densified mirror of
/// a near-full sparse store) or a sorted non-zero snapshot.
struct PreparedOperand {
  const Severity* dense = nullptr;        ///< flat row-major cell array
  const SparseSnapshot* snapshot = nullptr;  ///< sorted (key, value) list
};

/// Accumulates `factor` times the operand's zero-extended severity into
/// `acc`, which covers the result cells [cell_lo, cell_hi) — acc[i] is
/// result cell cell_lo + i.  Metric entries mapped to kNoIndex are
/// skipped (merge ownership masking).
void accumulate_operand(const Experiment& source, const OperandMapping& mapping,
                        double factor, Severity* acc, std::size_t cell_lo,
                        std::size_t cell_hi, const OutShape& os,
                        const PreparedOperand& prep, LocalKernelStats& ks) {
  const SeverityStore& sev = source.severity();
  const bool identity = mapping.identity();

  if (prep.dense != nullptr) {
    if (identity) {
      // The operand's cell space IS the result's: one aligned flat pass.
      const Severity* src = prep.dense + cell_lo;
      const std::size_t n = cell_hi - cell_lo;
      if (factor == 1.0) {
        for (std::size_t i = 0; i < n; ++i) acc[i] += src[i];
      } else {
        for (std::size_t i = 0; i < n; ++i) acc[i] += factor * src[i];
      }
      ks.identity_dense_cells += n;
      return;
    }
    // Row-wise scatter: visit each source (metric, cnode) row whose mapped
    // result row intersects the chunk; rows fully inside skip the per-cell
    // bound check.
    const Severity* all = prep.dense;
    const std::size_t sm = sev.num_metrics();
    const std::size_t sc = sev.num_cnodes();
    const std::size_t st = sev.num_threads();
    for (MetricIndex m = 0; m < sm; ++m) {
      const MetricIndex om = mapping.metric_map[m];
      if (om == kNoIndex) continue;
      for (CnodeIndex c = 0; c < sc; ++c) {
        const std::size_t out_row =
            (om * os.cnodes + mapping.cnode_map[c]) * os.threads;
        if (out_row + os.threads <= cell_lo || out_row >= cell_hi) continue;
        const Severity* row = all + (m * sc + c) * st;
        if (cell_lo <= out_row && out_row + os.threads <= cell_hi) {
          for (ThreadIndex t = 0; t < st; ++t) {
            const Severity v = row[t];
            if (v != 0.0) {
              acc[out_row + mapping.thread_map[t] - cell_lo] += factor * v;
            }
          }
        } else {
          for (ThreadIndex t = 0; t < st; ++t) {
            const std::size_t cell = out_row + mapping.thread_map[t];
            if (cell < cell_lo || cell >= cell_hi) continue;
            const Severity v = row[t];
            if (v != 0.0) acc[cell - cell_lo] += factor * v;
          }
        }
        ks.remap_dense_cells += st;
      }
    }
    return;
  }

  const SparseSnapshot* snapshot = prep.snapshot;
  if (identity) {
    // Source keys equal result cells: binary-search the chunk's range.
    const auto first = std::lower_bound(
        snapshot->begin(), snapshot->end(), cell_lo,
        [](const auto& entry, std::uint64_t key) { return entry.first < key; });
    std::uint64_t n = 0;
    for (auto it = first; it != snapshot->end() && it->first < cell_hi; ++it) {
      acc[it->first - cell_lo] += factor * it->second;
      ++n;
    }
    ks.identity_sparse_nnz += n;
    return;
  }
  // One ascending pass over the non-zeros, remapping each to its result
  // cell and filtering by the chunk.  O(nnz) per chunk — still far below
  // the O(M*C*T) dense index space a low-fill operand would otherwise pay.
  const std::size_t st = sev.num_threads();
  const std::size_t splane = sev.num_cnodes() * st;
  std::uint64_t applied = 0;
  for (const auto& [key, v] : *snapshot) {
    const MetricIndex om = mapping.metric_map[key / splane];
    if (om == kNoIndex) continue;
    const std::size_t rest = key % splane;
    const std::size_t cell = (om * os.cnodes + mapping.cnode_map[rest / st]) *
                                 os.threads +
                             mapping.thread_map[rest % st];
    if (cell < cell_lo || cell >= cell_hi) continue;
    acc[cell - cell_lo] += factor * v;
    ++applied;
  }
  ks.remap_sparse_nnz += applied;
}

/// Prepares every operand once per operator application.  Dense stores
/// expose their contiguous cells directly.  A sparse store is snapshotted
/// into a sorted non-zero list (O(nnz log nnz); the kernels binary-search
/// / scan it per chunk) — unless it is at least half full, where the
/// snapshot costs more memory (16 bytes/entry) than a flat mirror
/// (8 bytes/cell) and the sort dominates the whole operator: such
/// operands are densified with one unordered scatter and handled by the
/// dense kernels, whose ascending cell order keeps results bit-identical.
std::vector<PreparedOperand> prepare_operands(
    std::span<const Experiment* const> sources,
    std::vector<SparseSnapshot>& snapshot_storage,
    std::vector<std::vector<Severity>>& mirror_storage) {
  snapshot_storage.resize(sources.size());
  mirror_storage.resize(sources.size());
  std::vector<PreparedOperand> prepared(sources.size());
  for (std::size_t i = 0; i < sources.size(); ++i) {
    const SeverityStore& sev = sources[i]->severity();
    if (sev.kind() != StorageKind::Sparse) {
      prepared[i].dense = static_cast<const DenseSeverity&>(sev).cells().data();
      continue;
    }
    const auto& sparse = static_cast<const SparseSeverity&>(sev);
    if (2 * sparse.nonzero_count() >= sparse.num_cells()) {
      mirror_storage[i].assign(sparse.num_cells(), 0.0);
      sparse.scatter_into(mirror_storage[i]);
      prepared[i].dense = mirror_storage[i].data();
    } else {
      snapshot_storage[i] = sparse.sorted_cells();
      prepared[i].snapshot = &snapshot_storage[i];
    }
  }
  return prepared;
}

using batch::merge_staged;
using batch::run_cell_chunked;

/// The severity phase shared by difference, merge, and mean: result cell
/// values are sums of factor-scaled operand extensions.  Dense results are
/// accumulated in place through disjoint mutable spans; sparse results go
/// through per-chunk dense staging buffers (at most one per in-flight
/// chunk) whose non-zeros are merged afterwards under the fixed chunk
/// order.
void bulk_linear_combine(std::span<const Experiment* const> sources,
                         std::span<const OperandMapping> mappings,
                         std::span<const double> factors, Experiment& out,
                         const OperatorOptions& options) {
  const OutShape os = shape_of(out.metadata());
  if (os.cells == 0) return;
  std::vector<SparseSnapshot> snapshot_storage;
  std::vector<std::vector<Severity>> mirror_storage;
  const auto prepared =
      prepare_operands(sources, snapshot_storage, mirror_storage);
  const KernelCounters kc = KernelCounters::resolve(options.metrics);
  if (kc.applications != nullptr) kc.applications->add(1);

  if (out.severity().kind() == StorageKind::Dense) {
    auto& dense_out = static_cast<DenseSeverity&>(out.severity());
    run_cell_chunked(options, kc, os.cells,
                     [&](std::size_t, std::size_t lo, std::size_t hi) {
                       LocalKernelStats ks;
                       Severity* acc = dense_out.cells_mut(lo, hi).data();
                       for (std::size_t i = 0; i < sources.size(); ++i) {
                         accumulate_operand(*sources[i], mappings[i],
                                            factors[i], acc, lo, hi, os,
                                            prepared[i], ks);
                       }
                       ks.flush(kc);
                       if (options.release_operand_pages) {
                         batch::release_consumed(sources, mappings, lo, hi);
                       }
                     });
    return;
  }

  std::vector<SparseSnapshot> staged(num_cell_chunks(os.cells));
  run_cell_chunked(options, kc, os.cells,
                   [&](std::size_t k, std::size_t lo, std::size_t hi) {
                     LocalKernelStats ks;
                     std::vector<Severity> buf(hi - lo, 0.0);
                     for (std::size_t i = 0; i < sources.size(); ++i) {
                       accumulate_operand(*sources[i], mappings[i], factors[i],
                                          buf.data(), lo, hi, os, prepared[i],
                                          ks);
                     }
                     for (std::size_t i = 0; i < buf.size(); ++i) {
                       if (buf[i] != 0.0) staged[k].emplace_back(lo + i, buf[i]);
                     }
                     ks.flush(kc);
                     if (options.release_operand_pages) {
                       batch::release_consumed(sources, mappings, lo, hi);
                     }
                   });
  merge_staged(out, os, staged);
}

/// The severity phase of min/max: per chunk, each operand's zero-extension
/// is materialized into a scratch buffer and folded cell-wise in operand
/// order.
void bulk_reduce_extremum(std::span<const Experiment* const> sources,
                          std::span<const OperandMapping> mappings,
                          bool take_min, Experiment& out,
                          const OperatorOptions& options) {
  const OutShape os = shape_of(out.metadata());
  if (os.cells == 0) return;
  std::vector<SparseSnapshot> snapshot_storage;
  std::vector<std::vector<Severity>> mirror_storage;
  const auto prepared =
      prepare_operands(sources, snapshot_storage, mirror_storage);
  const KernelCounters kc = KernelCounters::resolve(options.metrics);
  if (kc.applications != nullptr) kc.applications->add(1);

  DenseSeverity* dense_out =
      out.severity().kind() == StorageKind::Dense
          ? &static_cast<DenseSeverity&>(out.severity())
          : nullptr;
  std::vector<SparseSnapshot> staged(
      dense_out != nullptr ? 0 : num_cell_chunks(os.cells));

  run_cell_chunked(
      options, kc, os.cells,
      [&](std::size_t k, std::size_t lo, std::size_t hi) {
        LocalKernelStats ks;
        const std::size_t n = hi - lo;
        std::vector<Severity> acc(n, 0.0);
        std::vector<Severity> cur(n);
        for (std::size_t op = 0; op < sources.size(); ++op) {
          std::fill(cur.begin(), cur.end(), 0.0);
          accumulate_operand(*sources[op], mappings[op], 1.0, cur.data(), lo,
                             hi, os, prepared[op], ks);
          if (op == 0) {
            acc = cur;
          } else if (take_min) {
            for (std::size_t i = 0; i < n; ++i) {
              acc[i] = std::min(acc[i], cur[i]);
            }
          } else {
            for (std::size_t i = 0; i < n; ++i) {
              acc[i] = std::max(acc[i], cur[i]);
            }
          }
        }
        if (dense_out != nullptr) {
          Severity* cells = dense_out->cells_mut(lo, hi).data();
          for (std::size_t i = 0; i < n; ++i) {
            if (acc[i] != 0.0) cells[i] = acc[i];
          }
        } else {
          for (std::size_t i = 0; i < n; ++i) {
            if (acc[i] != 0.0) staged[k].emplace_back(lo + i, acc[i]);
          }
        }
        ks.flush(kc);
        if (options.release_operand_pages) {
          batch::release_consumed(sources, mappings, lo, hi);
        }
      });
  if (dense_out == nullptr) merge_staged(out, os, staged);
}

/// Batch widths from which the all-sparse heuristic below applies.  Below
/// it the two paths are within noise of each other and the batched path's
/// tile staging amortizes fine.
constexpr std::size_t kSparseSeriesWidth = 16;

/// True when the per-operand chunk kernels are expected to beat the
/// batched SoA path: every operand is identity-mapped AND sparse enough to
/// stay sparse in both paths (below the densify threshold).  The batched
/// path must then gather every operand's non-zeros into full dense tile
/// rows and reduce all N rows per cell; the per-operand path just scatters
/// each operand's non-zeros once, skipping the empty cells entirely.
/// Measured at ~20% on width-64 identity series of 1% density
/// (EXPERIMENTS.md A14); the gap grows with width and sparsity.
bool prefer_per_operand(std::span<const Experiment* const> sources,
                        std::span<const OperandMapping> mappings) {
  if (sources.size() < kSparseSeriesWidth) return false;
  for (const OperandMapping& m : mappings) {
    if (!m.identity()) return false;
  }
  for (const Experiment* source : sources) {
    const SeverityStore& sev = source->severity();
    if (sev.kind() != StorageKind::Sparse) return false;
    // At or past the densify threshold both paths go dense anyway.
    if (2 * sev.nonzero_count() >= sev.num_cells()) return false;
  }
  return true;
}

/// Records which path the dispatch picked (kernel_counters::kPath*).
void count_path(const OperatorOptions& options, bool batched) {
  if (options.metrics == nullptr) return;
  options.metrics
      ->counter(batched ? kernel_counters::kPathBatched
                        : kernel_counters::kPathPerOperand)
      .add(1);
}

/// Dispatches the linear-combination severity phase onto the batched SoA
/// tile path (default) or the per-operand chunk kernels — taken when the
/// caller opted out, when an operand mapping coalesces source cells
/// (which the staging layout cannot express, docs/KERNELS.md), or when
/// the all-sparse series heuristic above predicts the per-operand path to
/// win.  All paths are bit-identical.
void severity_linear_combine(std::span<const Experiment* const> sources,
                             std::span<const OperandMapping> mappings,
                             std::span<const double> factors, Experiment& out,
                             const OperatorOptions& options) {
  if (options.use_batch_kernels &&
      batch::batchable(mappings, shape_of(out.metadata())) &&
      !prefer_per_operand(sources, mappings)) {
    count_path(options, true);
    const simd::Policy policy = options.simd_policy;
    batch::reduce_batched(
        sources, mappings, factors, out, options,
        [policy](Severity* acc, const simd::TileRow* rows, std::size_t nrows,
                 std::size_t n) {
          simd::reduce_sum(acc, rows, nrows, n, policy);
        });
    return;
  }
  count_path(options, false);
  bulk_linear_combine(sources, mappings, factors, out, options);
}

/// Same dispatch for the min/max severity phase.
void severity_reduce_extremum(std::span<const Experiment* const> sources,
                              std::span<const OperandMapping> mappings,
                              bool take_min, Experiment& out,
                              const OperatorOptions& options) {
  if (options.use_batch_kernels &&
      batch::batchable(mappings, shape_of(out.metadata())) &&
      !prefer_per_operand(sources, mappings)) {
    count_path(options, true);
    const std::vector<double> ones(sources.size(), 1.0);
    const simd::Policy policy = options.simd_policy;
    batch::reduce_batched(
        sources, mappings, ones, out, options,
        [policy, take_min](Severity* acc, const simd::TileRow* rows,
                           std::size_t nrows, std::size_t n) {
          simd::reduce_extremum(acc, rows, nrows, n, take_min, policy);
        });
    return;
  }
  count_path(options, false);
  bulk_reduce_extremum(sources, mappings, take_min, out, options);
}

/// Validates a caller-supplied hoisted IntegrationResult (docs/KERNELS.md)
/// against the operand list it claims to cover.
void check_hoisted(const char* opname,
                   std::span<const Experiment* const> operands,
                   const IntegrationResult& integration) {
  if (integration.mappings.size() != operands.size()) {
    throw OperationError(std::string(opname) + ": integration result covers " +
                         std::to_string(integration.mappings.size()) +
                         " operands, called with " +
                         std::to_string(operands.size()));
  }
}

/// For merge: a copy of the operand mappings where metrics NOT owned by
/// the operand are masked to kNoIndex, so the shared kernels skip them.
std::vector<OperandMapping> masked_merge_mappings(
    const std::vector<OperandMapping>& mappings,
    const std::vector<std::size_t>& owner) {
  std::vector<OperandMapping> masked = mappings;
  for (std::size_t op = 0; op < masked.size(); ++op) {
    for (MetricIndex& om : masked[op].metric_map) {
      if (owner[om] != op) {
        om = kNoIndex;
        masked[op].metric_identity = false;
      }
    }
  }
  return masked;
}

// ===========================================================================
// Per-cell reference path (OperatorOptions::use_bulk_kernels == false)
//
// The original virtual get/add implementation, kept verbatim as the oracle
// the equivalence suite compares the bulk kernels against bit-for-bit.
// ===========================================================================

/// Scatters operand `op`'s severity into `out` through its index mapping,
/// scaled by `factor`.  Only non-zero source values are touched, so sparse
/// operands cost what they contain.  Only output cells whose integrated
/// metric index falls in [metric_lo, metric_hi) are written, so disjoint
/// row ranges can be scattered concurrently into a dense store.
void scatter_scaled(const Experiment& source, const OperandMapping& mapping,
                    double factor, Experiment& out, MetricIndex metric_lo,
                    MetricIndex metric_hi) {
  const Metadata& md = source.metadata();
  const SeverityStore& sev = source.severity();
  for (MetricIndex m = 0; m < md.num_metrics(); ++m) {
    const MetricIndex om = mapping.metric_map[m];
    if (om < metric_lo || om >= metric_hi) continue;
    for (CnodeIndex c = 0; c < md.num_cnodes(); ++c) {
      const CnodeIndex oc = mapping.cnode_map[c];
      for (ThreadIndex t = 0; t < md.num_threads(); ++t) {
        const Severity v = sev.get(m, c, t);
        if (v != 0.0) {
          out.severity().add(om, oc, mapping.thread_map[t], factor * v);
        }
      }
    }
  }
}

/// Runs body(metric_lo, metric_hi) over a partition of [0, metrics).
/// Sequential (one chunk) unless `options.parallel_for` is set and the
/// result store allows concurrent disjoint writes (dense).
void run_row_chunked(
    const OperatorOptions& options, std::size_t metrics,
    const std::function<void(MetricIndex, MetricIndex)>& body) {
  if (!options.parallel_for || options.storage != StorageKind::Dense ||
      metrics < 2) {
    body(0, metrics);
    return;
  }
  const std::size_t chunks = std::min(metrics, kMaxCellChunks);
  options.parallel_for(chunks, [&](std::size_t k) {
    const MetricIndex lo = k * metrics / chunks;
    const MetricIndex hi = (k + 1) * metrics / chunks;
    if (lo < hi) body(lo, hi);
  });
}

void reference_reduce_extremum(std::span<const Experiment* const> operands,
                               const IntegrationResult& integration,
                               const OperatorOptions& options, bool take_min,
                               Experiment& out) {
  const Metadata& md = out.metadata();
  const std::size_t plane = md.num_cnodes() * md.num_threads();

  run_row_chunked(options, md.num_metrics(), [&](MetricIndex lo,
                                                 MetricIndex hi) {
    const std::size_t cells = (hi - lo) * plane;
    std::vector<Severity> acc(cells, 0.0);
    std::vector<Severity> cur(cells);
    for (std::size_t op = 0; op < operands.size(); ++op) {
      // Materialize this operand's extension over the chunk; cells the
      // operand does not define stay zero and participate in the
      // reduction as zero (the extension rule).  Coalescing source cells
      // accumulate, exactly as they do through SeverityStore::add.
      std::fill(cur.begin(), cur.end(), 0.0);
      const Metadata& smd = operands[op]->metadata();
      const SeverityStore& sev = operands[op]->severity();
      const OperandMapping& mapping = integration.mappings[op];
      for (MetricIndex m = 0; m < smd.num_metrics(); ++m) {
        const MetricIndex om = mapping.metric_map[m];
        if (om < lo || om >= hi) continue;
        for (CnodeIndex c = 0; c < smd.num_cnodes(); ++c) {
          const CnodeIndex oc = mapping.cnode_map[c];
          for (ThreadIndex t = 0; t < smd.num_threads(); ++t) {
            const Severity v = sev.get(m, c, t);
            if (v != 0.0) {
              cur[(om - lo) * plane + oc * md.num_threads() +
                  mapping.thread_map[t]] += v;
            }
          }
        }
      }
      for (std::size_t i = 0; i < cells; ++i) {
        acc[i] = op == 0 ? cur[i]
                         : (take_min ? std::min(acc[i], cur[i])
                                     : std::max(acc[i], cur[i]));
      }
    }
    for (MetricIndex m = lo; m < hi; ++m) {
      for (CnodeIndex c = 0; c < md.num_cnodes(); ++c) {
        for (ThreadIndex t = 0; t < md.num_threads(); ++t) {
          const Severity v =
              acc[(m - lo) * plane + c * md.num_threads() + t];
          if (v != 0.0) out.severity().set(m, c, t, v);
        }
      }
    }
  });
}

/// Element-wise min/max share everything but the reduction.  `pre` is a
/// caller-hoisted integration result, or null to integrate here.
Experiment reduce_extremum(std::span<const Experiment* const> operands,
                           const IntegrationResult* pre,
                           const OperatorOptions& options, bool take_min,
                           const char* opname) {
  if (operands.empty()) {
    throw OperationError(std::string(opname) + " requires >= 1 operand");
  }
  IntegrationResult local;
  if (pre == nullptr) {
    local = integrate_traced(operands, options.integration);
    pre = &local;
  } else {
    check_hoisted(opname, operands, *pre);
  }
  const IntegrationResult& integration = *pre;
  Experiment out = make_result(integration, options);
  {
    OBS_SPAN("phase.severity");
    if (options.use_bulk_kernels) {
      severity_reduce_extremum(operands, integration.mappings, take_min, out,
                               options);
    } else {
      reference_reduce_extremum(operands, integration, options, take_min, out);
    }
  }
  out.mark_derived(std::string(opname) + "(" + label_list(operands) + ")");
  out.set_name(std::string(opname) + "(" + label_list(operands) + ")");
  return out;
}

/// The mean severity phase + provenance over an already-integrated series.
Experiment mean_impl(std::span<const Experiment* const> operands,
                     const IntegrationResult& integration,
                     const OperatorOptions& options) {
  Experiment out = make_result(integration, options);
  const double factor = 1.0 / static_cast<double>(operands.size());
  {
    OBS_SPAN("phase.severity");
    if (options.use_bulk_kernels) {
      const std::vector<double> factors(operands.size(), factor);
      severity_linear_combine(operands, integration.mappings, factors, out,
                              options);
    } else {
      run_row_chunked(options, out.metadata().num_metrics(),
                      [&](MetricIndex lo, MetricIndex hi) {
                        for (std::size_t op = 0; op < operands.size(); ++op) {
                          scatter_scaled(*operands[op],
                                         integration.mappings[op], factor, out,
                                         lo, hi);
                        }
                      });
    }
  }
  const std::string prov = "mean(" + label_list(operands) + ")";
  out.mark_derived(prov);
  out.set_name(prov);
  return out;
}

}  // namespace

Experiment difference(const Experiment& a, const Experiment& b,
                      const OperatorOptions& options) {
  OBS_SPAN("operator.diff");
  const Experiment* ops[] = {&a, &b};
  IntegrationResult integration =
      integrate_traced(ops, options.integration);
  Experiment out = make_result(integration, options);
  {
    OBS_SPAN("phase.severity");
    if (options.use_bulk_kernels) {
      const double factors[] = {1.0, -1.0};
      severity_linear_combine(ops, integration.mappings, factors, out,
                              options);
    } else {
      run_row_chunked(options, out.metadata().num_metrics(),
                      [&](MetricIndex lo, MetricIndex hi) {
                        scatter_scaled(a, integration.mappings[0], 1.0, out, lo,
                                       hi);
                        scatter_scaled(b, integration.mappings[1], -1.0, out,
                                       lo, hi);
                      });
    }
  }
  const std::string prov = "difference(" + operand_label(a, 0) + ", " +
                           operand_label(b, 1) + ")";
  out.mark_derived(prov);
  out.set_name(prov);
  return out;
}

Experiment merge(const Experiment& a, const Experiment& b,
                 const OperatorOptions& options) {
  OBS_SPAN("operator.merge");
  const Experiment* ops[] = {&a, &b};
  IntegrationResult integration =
      integrate_traced(ops, options.integration);
  Experiment out = make_result(integration, options);

  // A metric of the integrated set is owned by the first operand that
  // provides it; only the owner contributes its severities.
  const std::size_t num_out_metrics = out.metadata().num_metrics();
  std::vector<std::size_t> owner(num_out_metrics, kNoIndex);
  for (std::size_t op = 0; op < 2; ++op) {
    for (const MetricIndex om : integration.mappings[op].metric_map) {
      if (owner[om] == kNoIndex) owner[om] = op;
    }
  }

  {
    OBS_SPAN("phase.severity");
    if (options.use_bulk_kernels) {
      const std::vector<OperandMapping> masked =
          masked_merge_mappings(integration.mappings, owner);
      const double factors[] = {1.0, 1.0};
      severity_linear_combine(ops, masked, factors, out, options);
    } else {
      run_row_chunked(options, num_out_metrics, [&](MetricIndex lo,
                                                    MetricIndex hi) {
        for (std::size_t op = 0; op < 2; ++op) {
          const Experiment& source = *ops[op];
          const OperandMapping& mapping = integration.mappings[op];
          const Metadata& md = source.metadata();
          for (MetricIndex m = 0; m < md.num_metrics(); ++m) {
            const MetricIndex om = mapping.metric_map[m];
            if (om < lo || om >= hi || owner[om] != op) continue;
            for (CnodeIndex c = 0; c < md.num_cnodes(); ++c) {
              const CnodeIndex oc = mapping.cnode_map[c];
              for (ThreadIndex t = 0; t < md.num_threads(); ++t) {
                const Severity v = source.severity().get(m, c, t);
                if (v != 0.0) {
                  out.severity().add(om, oc, mapping.thread_map[t], v);
                }
              }
            }
          }
        }
      });
    }
  }

  const std::string prov =
      "merge(" + operand_label(a, 0) + ", " + operand_label(b, 1) + ")";
  out.mark_derived(prov);
  out.set_name(prov);
  return out;
}

Experiment mean(std::span<const Experiment* const> operands,
                const OperatorOptions& options) {
  OBS_SPAN("operator.mean");
  if (operands.empty()) {
    throw OperationError("mean requires >= 1 operand");
  }
  const IntegrationResult integration =
      integrate_traced(operands, options.integration);
  return mean_impl(operands, integration, options);
}

Experiment mean(const std::vector<const Experiment*>& operands,
                const OperatorOptions& options) {
  return mean(std::span<const Experiment* const>(operands), options);
}

Experiment mean(std::span<const Experiment* const> operands,
                const IntegrationResult& integration,
                const OperatorOptions& options) {
  OBS_SPAN("operator.mean");
  if (operands.empty()) {
    throw OperationError("mean requires >= 1 operand");
  }
  check_hoisted("mean", operands, integration);
  return mean_impl(operands, integration, options);
}

Experiment minimum(std::span<const Experiment* const> operands,
                   const OperatorOptions& options) {
  OBS_SPAN("operator.min");
  return reduce_extremum(operands, nullptr, options, /*take_min=*/true, "min");
}

Experiment maximum(std::span<const Experiment* const> operands,
                   const OperatorOptions& options) {
  OBS_SPAN("operator.max");
  return reduce_extremum(operands, nullptr, options, /*take_min=*/false,
                         "max");
}

Experiment minimum(std::span<const Experiment* const> operands,
                   const IntegrationResult& integration,
                   const OperatorOptions& options) {
  OBS_SPAN("operator.min");
  return reduce_extremum(operands, &integration, options, /*take_min=*/true,
                         "min");
}

Experiment maximum(std::span<const Experiment* const> operands,
                   const IntegrationResult& integration,
                   const OperatorOptions& options) {
  OBS_SPAN("operator.max");
  return reduce_extremum(operands, &integration, options, /*take_min=*/false,
                         "max");
}

}  // namespace cube
