#include "algebra/operators.hpp"

#include <algorithm>
#include <string>

#include "common/error.hpp"

namespace cube {

namespace {

std::string operand_label(const Experiment& e, std::size_t index) {
  const std::string name = e.name();
  return !name.empty() ? name : "exp" + std::to_string(index + 1);
}

std::string label_list(std::span<const Experiment* const> operands) {
  std::string out;
  for (std::size_t i = 0; i < operands.size(); ++i) {
    if (i > 0) out += ", ";
    out += operand_label(*operands[i], i);
  }
  return out;
}

/// Scatters operand `op`'s severity into `out` through its index mapping,
/// scaled by `factor`.  Only non-zero source values are touched, so sparse
/// operands cost what they contain.
void scatter_scaled(const Experiment& source, const OperandMapping& mapping,
                    double factor, Experiment& out) {
  const Metadata& md = source.metadata();
  const SeverityStore& sev = source.severity();
  for (MetricIndex m = 0; m < md.num_metrics(); ++m) {
    const MetricIndex om = mapping.metric_map[m];
    for (CnodeIndex c = 0; c < md.num_cnodes(); ++c) {
      const CnodeIndex oc = mapping.cnode_map[c];
      for (ThreadIndex t = 0; t < md.num_threads(); ++t) {
        const Severity v = sev.get(m, c, t);
        if (v != 0.0) {
          out.severity().add(om, oc, mapping.thread_map[t], factor * v);
        }
      }
    }
  }
}

Experiment make_result(IntegrationResult& integration,
                       const OperatorOptions& options) {
  return Experiment(std::move(integration.metadata), options.storage);
}

/// Element-wise min/max share everything but the reduction; implemented by
/// materializing each operand's extension and folding.
Experiment reduce_extremum(std::span<const Experiment* const> operands,
                           const OperatorOptions& options, bool take_min,
                           const char* opname) {
  if (operands.empty()) {
    throw OperationError(std::string(opname) + " requires >= 1 operand");
  }
  IntegrationResult integration =
      integrate_metadata(operands, options.integration);
  Experiment out = make_result(integration, options);
  const Metadata& md = out.metadata();

  // Fold operand by operand; cells that an operand does not define are zero
  // under the extension rule and participate in the reduction as zero.
  std::vector<Severity> acc(
      md.num_metrics() * md.num_cnodes() * md.num_threads(), 0.0);
  const auto at = [&md](MetricIndex m, CnodeIndex c,
                        ThreadIndex t) -> std::size_t {
    return (m * md.num_cnodes() + c) * md.num_threads() + t;
  };
  for (std::size_t op = 0; op < operands.size(); ++op) {
    Experiment extended(md.clone(), StorageKind::Sparse);
    scatter_scaled(*operands[op], integration.mappings[op], 1.0, extended);
    for (MetricIndex m = 0; m < md.num_metrics(); ++m) {
      for (CnodeIndex c = 0; c < md.num_cnodes(); ++c) {
        for (ThreadIndex t = 0; t < md.num_threads(); ++t) {
          const Severity v = extended.severity().get(m, c, t);
          Severity& slot = acc[at(m, c, t)];
          if (op == 0) {
            slot = v;
          } else {
            slot = take_min ? std::min(slot, v) : std::max(slot, v);
          }
        }
      }
    }
  }
  for (MetricIndex m = 0; m < md.num_metrics(); ++m) {
    for (CnodeIndex c = 0; c < md.num_cnodes(); ++c) {
      for (ThreadIndex t = 0; t < md.num_threads(); ++t) {
        const Severity v = acc[at(m, c, t)];
        if (v != 0.0) out.severity().set(m, c, t, v);
      }
    }
  }
  out.mark_derived(std::string(opname) + "(" + label_list(operands) + ")");
  out.set_name(std::string(opname) + "(" + label_list(operands) + ")");
  return out;
}

}  // namespace

Experiment difference(const Experiment& a, const Experiment& b,
                      const OperatorOptions& options) {
  const Experiment* ops[] = {&a, &b};
  IntegrationResult integration =
      integrate_metadata(ops, options.integration);
  Experiment out = make_result(integration, options);
  scatter_scaled(a, integration.mappings[0], 1.0, out);
  scatter_scaled(b, integration.mappings[1], -1.0, out);
  const std::string prov = "difference(" + operand_label(a, 0) + ", " +
                           operand_label(b, 1) + ")";
  out.mark_derived(prov);
  out.set_name(prov);
  return out;
}

Experiment merge(const Experiment& a, const Experiment& b,
                 const OperatorOptions& options) {
  const Experiment* ops[] = {&a, &b};
  IntegrationResult integration =
      integrate_metadata(ops, options.integration);
  Experiment out = make_result(integration, options);

  // A metric of the integrated set is owned by the first operand that
  // provides it; only the owner contributes its severities.
  const std::size_t num_out_metrics = out.metadata().num_metrics();
  std::vector<std::size_t> owner(num_out_metrics, kNoIndex);
  for (std::size_t op = 0; op < 2; ++op) {
    for (const MetricIndex om : integration.mappings[op].metric_map) {
      if (owner[om] == kNoIndex) owner[om] = op;
    }
  }

  for (std::size_t op = 0; op < 2; ++op) {
    const Experiment& source = *ops[op];
    const OperandMapping& mapping = integration.mappings[op];
    const Metadata& md = source.metadata();
    for (MetricIndex m = 0; m < md.num_metrics(); ++m) {
      const MetricIndex om = mapping.metric_map[m];
      if (owner[om] != op) continue;
      for (CnodeIndex c = 0; c < md.num_cnodes(); ++c) {
        const CnodeIndex oc = mapping.cnode_map[c];
        for (ThreadIndex t = 0; t < md.num_threads(); ++t) {
          const Severity v = source.severity().get(m, c, t);
          if (v != 0.0) {
            out.severity().add(om, oc, mapping.thread_map[t], v);
          }
        }
      }
    }
  }

  const std::string prov =
      "merge(" + operand_label(a, 0) + ", " + operand_label(b, 1) + ")";
  out.mark_derived(prov);
  out.set_name(prov);
  return out;
}

Experiment mean(std::span<const Experiment* const> operands,
                const OperatorOptions& options) {
  if (operands.empty()) {
    throw OperationError("mean requires >= 1 operand");
  }
  IntegrationResult integration =
      integrate_metadata(operands, options.integration);
  Experiment out = make_result(integration, options);
  const double factor = 1.0 / static_cast<double>(operands.size());
  for (std::size_t op = 0; op < operands.size(); ++op) {
    scatter_scaled(*operands[op], integration.mappings[op], factor, out);
  }
  const std::string prov = "mean(" + label_list(operands) + ")";
  out.mark_derived(prov);
  out.set_name(prov);
  return out;
}

Experiment mean(const std::vector<const Experiment*>& operands,
                const OperatorOptions& options) {
  return mean(std::span<const Experiment* const>(operands), options);
}

Experiment minimum(std::span<const Experiment* const> operands,
                   const OperatorOptions& options) {
  return reduce_extremum(operands, options, /*take_min=*/true, "min");
}

Experiment maximum(std::span<const Experiment* const> operands,
                   const OperatorOptions& options) {
  return reduce_extremum(operands, options, /*take_min=*/false, "max");
}

}  // namespace cube
