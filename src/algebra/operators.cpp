#include "algebra/operators.hpp"

#include <algorithm>
#include <string>

#include "common/error.hpp"

namespace cube {

namespace {

std::string operand_label(const Experiment& e, std::size_t index) {
  const std::string name = e.name();
  return !name.empty() ? name : "exp" + std::to_string(index + 1);
}

std::string label_list(std::span<const Experiment* const> operands) {
  std::string out;
  for (std::size_t i = 0; i < operands.size(); ++i) {
    if (i > 0) out += ", ";
    out += operand_label(*operands[i], i);
  }
  return out;
}

/// Scatters operand `op`'s severity into `out` through its index mapping,
/// scaled by `factor`.  Only non-zero source values are touched, so sparse
/// operands cost what they contain.  Only output cells whose integrated
/// metric index falls in [metric_lo, metric_hi) are written, so disjoint
/// row ranges can be scattered concurrently into a dense store.
void scatter_scaled(const Experiment& source, const OperandMapping& mapping,
                    double factor, Experiment& out, MetricIndex metric_lo,
                    MetricIndex metric_hi) {
  const Metadata& md = source.metadata();
  const SeverityStore& sev = source.severity();
  for (MetricIndex m = 0; m < md.num_metrics(); ++m) {
    const MetricIndex om = mapping.metric_map[m];
    if (om < metric_lo || om >= metric_hi) continue;
    for (CnodeIndex c = 0; c < md.num_cnodes(); ++c) {
      const CnodeIndex oc = mapping.cnode_map[c];
      for (ThreadIndex t = 0; t < md.num_threads(); ++t) {
        const Severity v = sev.get(m, c, t);
        if (v != 0.0) {
          out.severity().add(om, oc, mapping.thread_map[t], factor * v);
        }
      }
    }
  }
}

Experiment make_result(IntegrationResult& integration,
                       const OperatorOptions& options) {
  return Experiment(std::move(integration.metadata), options.storage);
}

/// Upper bound on row chunks handed to a ParallelFor.  Fixed (not derived
/// from the thread count) so the chunking — and therefore any conceivable
/// numeric effect — is identical no matter how the executor schedules it.
constexpr std::size_t kMaxRowChunks = 32;

/// Runs body(metric_lo, metric_hi) over a partition of [0, metrics).
/// Sequential (one chunk) unless `options.parallel_for` is set and the
/// result store allows concurrent disjoint writes (dense).
void run_row_chunked(
    const OperatorOptions& options, std::size_t metrics,
    const std::function<void(MetricIndex, MetricIndex)>& body) {
  if (!options.parallel_for || options.storage != StorageKind::Dense ||
      metrics < 2) {
    body(0, metrics);
    return;
  }
  const std::size_t chunks = std::min(metrics, kMaxRowChunks);
  options.parallel_for(chunks, [&](std::size_t k) {
    const MetricIndex lo = k * metrics / chunks;
    const MetricIndex hi = (k + 1) * metrics / chunks;
    if (lo < hi) body(lo, hi);
  });
}

/// Element-wise min/max share everything but the reduction: per row chunk,
/// each operand's zero-extension is materialized into a scratch buffer and
/// folded cell-wise in operand order.
Experiment reduce_extremum(std::span<const Experiment* const> operands,
                           const OperatorOptions& options, bool take_min,
                           const char* opname) {
  if (operands.empty()) {
    throw OperationError(std::string(opname) + " requires >= 1 operand");
  }
  IntegrationResult integration =
      integrate_metadata(operands, options.integration);
  Experiment out = make_result(integration, options);
  const Metadata& md = out.metadata();
  const std::size_t plane = md.num_cnodes() * md.num_threads();

  run_row_chunked(options, md.num_metrics(), [&](MetricIndex lo,
                                                 MetricIndex hi) {
    const std::size_t cells = (hi - lo) * plane;
    std::vector<Severity> acc(cells, 0.0);
    std::vector<Severity> cur(cells);
    for (std::size_t op = 0; op < operands.size(); ++op) {
      // Materialize this operand's extension over the chunk; cells the
      // operand does not define stay zero and participate in the
      // reduction as zero (the extension rule).  Coalescing source cells
      // accumulate, exactly as they do through SeverityStore::add.
      std::fill(cur.begin(), cur.end(), 0.0);
      const Metadata& smd = operands[op]->metadata();
      const SeverityStore& sev = operands[op]->severity();
      const OperandMapping& mapping = integration.mappings[op];
      for (MetricIndex m = 0; m < smd.num_metrics(); ++m) {
        const MetricIndex om = mapping.metric_map[m];
        if (om < lo || om >= hi) continue;
        for (CnodeIndex c = 0; c < smd.num_cnodes(); ++c) {
          const CnodeIndex oc = mapping.cnode_map[c];
          for (ThreadIndex t = 0; t < smd.num_threads(); ++t) {
            const Severity v = sev.get(m, c, t);
            if (v != 0.0) {
              cur[(om - lo) * plane + oc * md.num_threads() +
                  mapping.thread_map[t]] += v;
            }
          }
        }
      }
      for (std::size_t i = 0; i < cells; ++i) {
        acc[i] = op == 0 ? cur[i]
                         : (take_min ? std::min(acc[i], cur[i])
                                     : std::max(acc[i], cur[i]));
      }
    }
    for (MetricIndex m = lo; m < hi; ++m) {
      for (CnodeIndex c = 0; c < md.num_cnodes(); ++c) {
        for (ThreadIndex t = 0; t < md.num_threads(); ++t) {
          const Severity v =
              acc[(m - lo) * plane + c * md.num_threads() + t];
          if (v != 0.0) out.severity().set(m, c, t, v);
        }
      }
    }
  });
  out.mark_derived(std::string(opname) + "(" + label_list(operands) + ")");
  out.set_name(std::string(opname) + "(" + label_list(operands) + ")");
  return out;
}

}  // namespace

Experiment difference(const Experiment& a, const Experiment& b,
                      const OperatorOptions& options) {
  const Experiment* ops[] = {&a, &b};
  IntegrationResult integration =
      integrate_metadata(ops, options.integration);
  Experiment out = make_result(integration, options);
  run_row_chunked(options, out.metadata().num_metrics(),
                  [&](MetricIndex lo, MetricIndex hi) {
                    scatter_scaled(a, integration.mappings[0], 1.0, out, lo,
                                   hi);
                    scatter_scaled(b, integration.mappings[1], -1.0, out, lo,
                                   hi);
                  });
  const std::string prov = "difference(" + operand_label(a, 0) + ", " +
                           operand_label(b, 1) + ")";
  out.mark_derived(prov);
  out.set_name(prov);
  return out;
}

Experiment merge(const Experiment& a, const Experiment& b,
                 const OperatorOptions& options) {
  const Experiment* ops[] = {&a, &b};
  IntegrationResult integration =
      integrate_metadata(ops, options.integration);
  Experiment out = make_result(integration, options);

  // A metric of the integrated set is owned by the first operand that
  // provides it; only the owner contributes its severities.
  const std::size_t num_out_metrics = out.metadata().num_metrics();
  std::vector<std::size_t> owner(num_out_metrics, kNoIndex);
  for (std::size_t op = 0; op < 2; ++op) {
    for (const MetricIndex om : integration.mappings[op].metric_map) {
      if (owner[om] == kNoIndex) owner[om] = op;
    }
  }

  run_row_chunked(options, num_out_metrics, [&](MetricIndex lo,
                                                MetricIndex hi) {
    for (std::size_t op = 0; op < 2; ++op) {
      const Experiment& source = *ops[op];
      const OperandMapping& mapping = integration.mappings[op];
      const Metadata& md = source.metadata();
      for (MetricIndex m = 0; m < md.num_metrics(); ++m) {
        const MetricIndex om = mapping.metric_map[m];
        if (om < lo || om >= hi || owner[om] != op) continue;
        for (CnodeIndex c = 0; c < md.num_cnodes(); ++c) {
          const CnodeIndex oc = mapping.cnode_map[c];
          for (ThreadIndex t = 0; t < md.num_threads(); ++t) {
            const Severity v = source.severity().get(m, c, t);
            if (v != 0.0) {
              out.severity().add(om, oc, mapping.thread_map[t], v);
            }
          }
        }
      }
    }
  });

  const std::string prov =
      "merge(" + operand_label(a, 0) + ", " + operand_label(b, 1) + ")";
  out.mark_derived(prov);
  out.set_name(prov);
  return out;
}

Experiment mean(std::span<const Experiment* const> operands,
                const OperatorOptions& options) {
  if (operands.empty()) {
    throw OperationError("mean requires >= 1 operand");
  }
  IntegrationResult integration =
      integrate_metadata(operands, options.integration);
  Experiment out = make_result(integration, options);
  const double factor = 1.0 / static_cast<double>(operands.size());
  run_row_chunked(options, out.metadata().num_metrics(),
                  [&](MetricIndex lo, MetricIndex hi) {
                    for (std::size_t op = 0; op < operands.size(); ++op) {
                      scatter_scaled(*operands[op], integration.mappings[op],
                                     factor, out, lo, hi);
                    }
                  });
  const std::string prov = "mean(" + label_list(operands) + ")";
  out.mark_derived(prov);
  out.set_name(prov);
  return out;
}

Experiment mean(const std::vector<const Experiment*>& operands,
                const OperatorOptions& options) {
  return mean(std::span<const Experiment* const>(operands), options);
}

Experiment minimum(std::span<const Experiment* const> operands,
                   const OperatorOptions& options) {
  return reduce_extremum(operands, options, /*take_min=*/true, "min");
}

Experiment maximum(std::span<const Experiment* const> operands,
                   const OperatorOptions& options) {
  return reduce_extremum(operands, options, /*take_min=*/false, "max");
}

}  // namespace cube
