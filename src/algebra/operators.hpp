// The algebraic operators: difference, merge, mean (and the min/max
// extensions).
//
// Every operator is CLOSED: it consumes valid CUBE experiments and produces
// a complete derived CUBE experiment — integrated metadata plus a severity
// function defined over it — so outputs feed straight back into further
// operators or into the display, exactly like original data.
#pragma once

#include <cstddef>
#include <functional>
#include <span>
#include <vector>

#include "algebra/integration.hpp"
#include "algebra/simd.hpp"
#include "model/experiment.hpp"
#include "obs/metrics.hpp"

namespace cube {

/// Optional executor for data-parallel severity computation: invoked as
/// parallel_for(n, body) and expected to run body(0..n-1), possibly
/// concurrently (ThreadPool::parallel_for has this shape).  Operators
/// partition the FLATTENED CELL SPACE of the result into chunks, one
/// body call per chunk; every output cell belongs to exactly one chunk
/// and receives its additions in the same operand order as sequential
/// evaluation, so results are bit-identical at any thread count.  The
/// chunking itself is independent of the executor.  Dense results are
/// written in place (disjoint ranges); sparse results go through
/// per-chunk staging buffers merged under the fixed chunk order.
using ParallelFor =
    std::function<void(std::size_t, const std::function<void(std::size_t)>&)>;

/// Stable names of the bulk-kernel counters operators record into
/// OperatorOptions::metrics (docs/STORAGE.md, docs/OBSERVABILITY.md).
/// Chunks of one application run concurrently; Counter updates are relaxed
/// atomics, so the names can be bumped from any worker.
namespace kernel_counters {
/// Dense operand with an identity mapping: remap-free flat array pass.
inline constexpr const char* kIdentityDenseCells =
    "algebra.kernel.identity_dense_cells";
/// Dense operand scattered through its index mapping (cells visited).
inline constexpr const char* kRemapDenseCells =
    "algebra.kernel.remap_dense_cells";
/// Sparse operand with an identity mapping (non-zeros applied).
inline constexpr const char* kIdentitySparseNnz =
    "algebra.kernel.identity_sparse_nnz";
/// Sparse operand scattered through its index mapping (non-zeros applied).
inline constexpr const char* kRemapSparseNnz =
    "algebra.kernel.remap_sparse_nnz";
/// Cell chunks executed across all operator applications.
inline constexpr const char* kChunks = "algebra.kernel.chunks";
/// Operator applications that ran through the bulk path.
inline constexpr const char* kApplications = "algebra.kernel.applications";
/// SoA tiles staged and reduced by the batched n-ary kernels
/// (docs/KERNELS.md).  Zero when every application took the per-operand
/// or reference path.
inline constexpr const char* kBatchTiles = "algebra.kernel.batch_tiles";
/// Sum of operand counts over batched applications; batch_width /
/// applications is the average batch width.
inline constexpr const char* kBatchWidth = "algebra.kernel.batch_width";
/// Applications the dispatch sent through the batched SoA path.
inline constexpr const char* kPathBatched = "algebra.kernel.path_batched";
/// Applications the dispatch sent through the per-operand chunk kernels —
/// by opt-out, a non-batchable mapping, or the all-sparse series
/// heuristic (EXPERIMENTS.md A14).
inline constexpr const char* kPathPerOperand =
    "algebra.kernel.path_per_operand";
}  // namespace kernel_counters

/// Options shared by all operators.
struct OperatorOptions {
  IntegrationOptions integration;
  /// Storage kind of the produced experiment.
  StorageKind storage = StorageKind::Dense;
  /// If set, the severity phase of the operator runs cell-chunked through
  /// this executor (see ParallelFor) — for dense AND sparse results.
  ParallelFor parallel_for;
  /// Use the devirtualized bulk kernels (default).  False selects the
  /// per-cell reference path, kept as the bit-identical oracle for the
  /// equivalence suite; the reference path parallelizes dense results
  /// by metric rows only.
  bool use_bulk_kernels = true;
  /// Use the batched structure-of-arrays tile kernels (docs/KERNELS.md)
  /// for the severity phase (default).  False falls back to the
  /// per-operand chunk kernels of docs/STORAGE.md — also taken
  /// automatically per application when an operand mapping coalesces
  /// source cells.  Both paths are bit-identical to the reference path,
  /// so this knob never affects results (and is excluded from planner
  /// cache keys).
  bool use_batch_kernels = true;
  /// SIMD policy of the batched reduction: Auto picks the best backend
  /// the build and CPU support, ForceScalar pins the scalar oracle.
  /// Bit-identical either way.
  simd::Policy simd_policy = simd::Policy::Auto;
  /// Drop file-backed operand pages (madvise(MADV_DONTNEED)) as soon as a
  /// cell chunk has been consumed, so reductions over mmapped columnar
  /// series (docs/STORAGE.md, CUBESEV1) stream at bounded resident memory
  /// instead of faulting the whole series in.  Affects only
  /// identity-mapped operands whose severity store is file-backed; owned
  /// stores and remapped operands are untouched.  Never affects results —
  /// released pages refault from the file on the next access.
  bool release_operand_pages = false;
  /// If non-null, the bulk-kernel counters (kernel_counters above) are
  /// accumulated into this registry.  Pass a per-run local registry for
  /// isolated readings (the query engine does), or
  /// &obs::MetricsRegistry::global() to feed the process-wide one.
  obs::MetricsRegistry* metrics = nullptr;
};

/// difference(a, b): severity = a - b over the integrated domain.  Tuples
/// absent from an operand contribute zero; severities of the result may be
/// negative.  Useful for before/after comparison of code or parameter
/// changes (paper §5.1).
[[nodiscard]] Experiment difference(const Experiment& a, const Experiment& b,
                                    const OperatorOptions& options = {});

/// merge(a, b): joins experiments with different or overlapping metric sets
/// (e.g. counter sets that cannot be measured in one run).  For each metric
/// of the integrated set the severities are taken from the first operand
/// that provides the metric; b supplies only its exclusive metrics
/// (paper §3, "we take it from the first one without loss of generality").
[[nodiscard]] Experiment merge(const Experiment& a, const Experiment& b,
                               const OperatorOptions& options = {});

/// mean(e1..eN): element-wise arithmetic mean over the integrated domain,
/// to smooth random perturbation across repeated runs or to summarize a
/// range of execution parameters.  N-ary; requires N >= 1.
[[nodiscard]] Experiment mean(std::span<const Experiment* const> operands,
                              const OperatorOptions& options = {});
[[nodiscard]] Experiment mean(const std::vector<const Experiment*>& operands,
                              const OperatorOptions& options = {});

/// Integration-hoisted n-ary forms: `integration` must be the result of
/// integrate_metadata over exactly these operands (in order).  Lets a
/// caller computing several reductions of ONE series (mean + min + max +
/// stddev, see summarize_series) run the metadata phase once instead of
/// once per operator — the structural merge is the dominant cost when the
/// series' metadata is digest-distinct but structurally equal (e.g.
/// shifted line numbers).  Throws OperationError on an operand-count
/// mismatch.
[[nodiscard]] Experiment mean(std::span<const Experiment* const> operands,
                              const IntegrationResult& integration,
                              const OperatorOptions& options = {});
[[nodiscard]] Experiment minimum(std::span<const Experiment* const> operands,
                                 const IntegrationResult& integration,
                                 const OperatorOptions& options = {});
[[nodiscard]] Experiment maximum(std::span<const Experiment* const> operands,
                                 const IntegrationResult& integration,
                                 const OperatorOptions& options = {});

/// Element-wise minimum / maximum over the integrated domain.  Not in the
/// paper's operator list ("others may follow in the future"); provided as
/// the natural reduction for min-of-series measurements like the paper's
/// speedup methodology.  Absent tuples count as zero, consistent with the
/// zero-extension rule.
[[nodiscard]] Experiment minimum(std::span<const Experiment* const> operands,
                                 const OperatorOptions& options = {});
[[nodiscard]] Experiment maximum(std::span<const Experiment* const> operands,
                                 const OperatorOptions& options = {});

}  // namespace cube
