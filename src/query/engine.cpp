#include "query/engine.hpp"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <functional>
#include <map>
#include <mutex>
#include <span>
#include <vector>

#include "common/digest.hpp"
#include "common/error.hpp"
#include "io/binary_format.hpp"
#include "io/cube_format.hpp"
#include "lint/lint.hpp"
#include "obs/metrics.hpp"
#include "obs/tracer.hpp"

namespace cube::query {

namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

/// A repository file a cache hit will be served from.
struct CachedCube {
  std::filesystem::path path;
  RepoFormat format = RepoFormat::Binary;
};

// Loads go through the repository so blob-backed files resolve against its
// meta/ directory and interner — a series of operands over one metadata
// digest shares a single in-memory instance even when loaded from
// different pool workers.
Experiment read_stored(const ExperimentRepository& repo,
                       const std::filesystem::path& path, RepoFormat format,
                       bool validate) {
  Experiment experiment = repo.load_path(path, format);
  if (validate) lint::require_valid(experiment, path.string());
  return experiment;
}

Experiment apply_op(QueryExpr::Op op,
                    const std::vector<const Experiment*>& operands,
                    const OperatorOptions& options) {
  const std::span<const Experiment* const> span(operands);
  switch (op) {
    case QueryExpr::Op::Diff:
      return difference(*operands[0], *operands[1], options);
    case QueryExpr::Op::Merge:
      return merge(*operands[0], *operands[1], options);
    case QueryExpr::Op::Mean:
      return mean(span, options);
    case QueryExpr::Op::Min:
      return minimum(span, options);
    case QueryExpr::Op::Max:
      return maximum(span, options);
  }
  throw OperationError("unreachable query op");
}

/// How the executor handles one plan node.
enum class Action { LoadOperand, LoadCached, Compute };

}  // namespace

QueryEngine::QueryEngine(ExperimentRepository& repo, QueryOptions options)
    : repo_(repo), options_(options) {
  if (options_.threads == 0) {
    options_.threads = ThreadPool::default_threads();
  }
  if (options_.threads > 1) {
    owned_pool_ = std::make_unique<ThreadPool>(options_.threads);
    pool_ = owned_pool_.get();
  }
}

QueryEngine::QueryEngine(ExperimentRepository& repo, QueryOptions options,
                         ThreadPool& pool)
    : repo_(repo), options_(options), pool_(&pool) {
  options_.threads = pool.size();
}

QueryResult QueryEngine::run(std::string_view text) {
  return run(*parse_query(text));
}

QueryPlan QueryEngine::plan(const QueryExpr& expr) const {
  return plan_query(expr, repo_, options_.operators);
}

QueryResult QueryEngine::run(const QueryExpr& expr) {
  OBS_SPAN("query.run");
  const auto t_total = Clock::now();
  const auto t_plan = Clock::now();
  obs::Span plan_span("query.plan");
  const QueryPlan query_plan = plan(expr);
  const double plan_ms = ms_since(t_plan);
  plan_span.finish();
  QueryResult result = run_plan(query_plan);
  result.stats.plan_ms = plan_ms;
  result.stats.total_ms = ms_since(t_total);
  return result;
}

QueryResult QueryEngine::run_plan(const QueryPlan& plan) {
  const auto t_total = Clock::now();
  QueryStats stats;
  stats.threads_used = options_.threads;
  stats.plan_nodes = plan.nodes.size();
  stats.cse_reused = plan.cse_reused;

  // Snapshot the cached cubes (repository entries carrying a cache key).
  std::map<std::string, CachedCube> cache;
  if (options_.use_cache) {
    for (const RepoEntry& entry : repo_.entries_snapshot()) {
      const auto it = entry.attributes.find(kCacheKeyAttribute);
      if (it != entry.attributes.end()) {
        cache.emplace(it->second,
                      CachedCube{repo_.directory() / entry.file,
                                 entry.format});
      }
    }
  }

  // Decide per-node actions top-down: a cached apply node becomes a leaf
  // and its operands are never touched (that is where warm queries win).
  const std::size_t n = plan.nodes.size();
  std::vector<Action> action(n, Action::LoadOperand);
  std::vector<CachedCube> cached(n);
  std::vector<char> needed(n, 0);
  std::vector<std::size_t> stack{plan.root};
  while (!stack.empty()) {
    const std::size_t i = stack.back();
    stack.pop_back();
    if (needed[i]) continue;
    needed[i] = 1;
    const PlanNode& node = plan.nodes[i];
    if (node.kind == PlanNode::Kind::Load) {
      action[i] = Action::LoadOperand;
      continue;
    }
    const auto hit = cache.find(digest_hex(node.key));
    if (hit != cache.end()) {
      action[i] = Action::LoadCached;
      cached[i] = hit->second;
      continue;
    }
    action[i] = Action::Compute;
    for (const std::size_t child : node.args) stack.push_back(child);
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (needed[i]) ++stats.nodes_executed;
  }

  // Transitive leaf operand digests per node, stamped onto stored derived
  // cubes (kCacheOperandsAttribute) so digest-keyed caches — the daemon's
  // shared result cache — can be linted for staleness.  Computed from the
  // full plan: cache pruning hides subtrees from execution, not from the
  // result's provenance.
  std::vector<std::vector<std::uint64_t>> leaves;
  if (options_.store_derived) {
    leaves.resize(n);
    for (std::size_t i = 0; i < n; ++i) {  // topological: children first
      const PlanNode& node = plan.nodes[i];
      if (node.kind == PlanNode::Kind::Load) {
        leaves[i].push_back(node.operand.digest);
        continue;
      }
      for (const std::size_t child : node.args) {
        leaves[i].insert(leaves[i].end(), leaves[child].begin(),
                         leaves[child].end());
      }
      std::sort(leaves[i].begin(), leaves[i].end());
      leaves[i].erase(std::unique(leaves[i].begin(), leaves[i].end()),
                      leaves[i].end());
    }
  }
  const auto operands_attr = [&](std::size_t i) {
    std::string out;
    for (const std::uint64_t digest : leaves[i]) {
      if (!out.empty()) out += ' ';
      out += digest_hex(digest);
    }
    return out;
  };

  // --- execute ------------------------------------------------------------
  const auto t_exec = Clock::now();
  OperatorOptions op_options = options_.operators;
  // Kernel counters land in a per-run registry, so concurrent engines (and
  // runs) read isolated values; absorbed into the global registry at the
  // end for the process-wide self-profile.
  obs::MetricsRegistry run_metrics;
  op_options.metrics = &run_metrics;
  if (pool_) {
    ThreadPool* pool = pool_;
    op_options.parallel_for =
        [pool](std::size_t chunks,
               const std::function<void(std::size_t)>& body) {
          pool->parallel_for(chunks, body);
        };
  }

  std::vector<std::shared_ptr<Experiment>> results(n);
  std::mutex mutex;

  const auto eval_node = [&](std::size_t i) {
    const PlanNode& node = plan.nodes[i];
    switch (action[i]) {
      case Action::LoadOperand: {
        OBS_SPAN("query.load");
        const auto t0 = Clock::now();
        auto e = std::make_shared<Experiment>(
            read_stored(repo_, node.operand.path, node.operand.format,
                        options_.validate_loads));
        std::lock_guard<std::mutex> lock(mutex);
        results[i] = std::move(e);
        ++stats.operands_loaded;
        stats.bytes_loaded += node.operand.bytes;
        stats.load_ms += ms_since(t0);
        break;
      }
      case Action::LoadCached: {
        OBS_SPAN("query.load", "cache-hit");
        const auto t0 = Clock::now();
        std::error_code ec;
        const std::uintmax_t size =
            std::filesystem::file_size(cached[i].path, ec);
        auto e = std::make_shared<Experiment>(
            read_stored(repo_, cached[i].path, cached[i].format,
                        options_.validate_loads));
        std::lock_guard<std::mutex> lock(mutex);
        results[i] = std::move(e);
        ++stats.cache_hits;
        if (!ec) stats.bytes_loaded += size;
        stats.load_ms += ms_since(t0);
        break;
      }
      case Action::Compute: {
        OBS_SPAN("query.compute", options_.use_cache ? "cache-miss" : nullptr);
        const auto t0 = Clock::now();
        std::vector<const Experiment*> operands;
        operands.reserve(node.args.size());
        for (const std::size_t child : node.args) {
          operands.push_back(results[child].get());
        }
        Experiment out = apply_op(node.op, operands, op_options);
        if (options_.store_derived) {
          // The result self-describes its cache identity; the attributes
          // travel into the repository index, where the next plan's
          // cache snapshot finds them.
          out.set_attribute(kCacheKeyAttribute, digest_hex(node.key));
          out.set_attribute(kCacheExprAttribute, node.canonical);
          out.set_attribute(kCacheOperandsAttribute, operands_attr(i));
        }
        auto e = std::make_shared<Experiment>(std::move(out));
        const double eval_ms = ms_since(t0);
        std::lock_guard<std::mutex> lock(mutex);
        if (options_.store_derived) {
          repo_.store(*e, RepoFormat::Binary);
        }
        results[i] = std::move(e);
        ++stats.nodes_evaluated;
        if (options_.use_cache) ++stats.cache_misses;
        stats.eval_ms += eval_ms;
        break;
      }
    }
  };

  if (!pool_) {
    // Sequential: plan order is topological (children precede parents).
    for (std::size_t i = 0; i < n; ++i) {
      if (needed[i]) eval_node(i);
    }
  } else {
    // Dependency-counting DAG walk: a node is submitted once every needed
    // child finished; the caller waits for the last needed node (or, on
    // failure, for in-flight tasks to drain).
    std::vector<std::vector<std::size_t>> parents(n);
    std::vector<std::size_t> pending(n, 0);
    std::size_t total_needed = 0;
    for (std::size_t i = 0; i < n; ++i) {
      if (!needed[i]) continue;
      ++total_needed;
      if (action[i] == Action::Compute) {
        for (const std::size_t child : plan.nodes[i].args) {
          parents[child].push_back(i);
        }
        pending[i] = plan.nodes[i].args.size();
      }
    }

    std::condition_variable done_cv;
    std::size_t outstanding = 0;
    std::size_t finished = 0;
    std::exception_ptr error;
    bool abort = false;

    std::function<void(std::size_t)> launch = [&](std::size_t i) {
      pool_->submit([&, i] {
        bool ok = true;
        try {
          {
            std::lock_guard<std::mutex> lock(mutex);
            ok = !abort;
          }
          if (ok) eval_node(i);
        } catch (...) {
          std::lock_guard<std::mutex> lock(mutex);
          if (!error) error = std::current_exception();
          abort = true;
          ok = false;
        }
        std::vector<std::size_t> ready;
        {
          std::lock_guard<std::mutex> lock(mutex);
          --outstanding;
          ++finished;
          if (ok && !abort) {
            for (const std::size_t p : parents[i]) {
              if (--pending[p] == 0) ready.push_back(p);
            }
          }
          outstanding += ready.size();
          if (outstanding == 0) done_cv.notify_all();
        }
        for (const std::size_t p : ready) launch(p);
      });
    };

    std::vector<std::size_t> roots_ready;
    {
      std::lock_guard<std::mutex> lock(mutex);
      for (std::size_t i = 0; i < n; ++i) {
        if (needed[i] &&
            (action[i] != Action::Compute || pending[i] == 0)) {
          roots_ready.push_back(i);
        }
      }
      outstanding += roots_ready.size();
    }
    for (const std::size_t i : roots_ready) launch(i);
    {
      std::unique_lock<std::mutex> lock(mutex);
      done_cv.wait(lock, [&] {
        return outstanding == 0 && (finished == total_needed || abort);
      });
      if (error) std::rethrow_exception(error);
    }
  }

  stats.exec_ms = ms_since(t_exec);
  stats.total_ms = ms_since(t_total);
  stats.kernel_identity_dense_cells =
      run_metrics.counter(kernel_counters::kIdentityDenseCells).value();
  stats.kernel_remap_dense_cells =
      run_metrics.counter(kernel_counters::kRemapDenseCells).value();
  stats.kernel_identity_sparse_nnz =
      run_metrics.counter(kernel_counters::kIdentitySparseNnz).value();
  stats.kernel_remap_sparse_nnz =
      run_metrics.counter(kernel_counters::kRemapSparseNnz).value();
  stats.kernel_chunks = run_metrics.counter(kernel_counters::kChunks).value();
  stats.kernel_applications =
      run_metrics.counter(kernel_counters::kApplications).value();
  stats.kernel_batch_tiles =
      run_metrics.counter(kernel_counters::kBatchTiles).value();
  stats.kernel_batch_width =
      run_metrics.counter(kernel_counters::kBatchWidth).value();

  // Feed the process-wide registry: the run's kernel counters plus the
  // engine's own tallies, under stable query.* names.
  run_metrics.counter("query.runs").add(1);
  run_metrics.counter("query.cache.hits").add(stats.cache_hits);
  run_metrics.counter("query.cache.misses").add(stats.cache_misses);
  run_metrics.counter("query.operands_loaded").add(stats.operands_loaded);
  run_metrics.counter("query.nodes_evaluated").add(stats.nodes_evaluated);
  run_metrics.counter("query.bytes_loaded", obs::SampleUnit::Bytes)
      .add(stats.bytes_loaded);
  obs::MetricsRegistry::global().absorb(run_metrics);

  std::shared_ptr<Experiment> root = std::move(results[plan.root]);
  results.clear();
  QueryResult result{root.use_count() == 1 ? std::move(*root)
                                           : root->clone(),
                     stats, plan.nodes[plan.root].canonical};
  return result;
}

}  // namespace cube::query
