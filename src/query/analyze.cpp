#include "query/analyze.hpp"

#include <algorithm>
#include <map>
#include <optional>
#include <set>
#include <span>
#include <string>
#include <utility>

#include "algebra/batch.hpp"
#include "common/digest.hpp"
#include "common/error.hpp"
#include "model/metric.hpp"
#include "query/plan_lint.hpp"

namespace cube::query {

namespace {

using lint::DiagnosticSink;

constexpr std::uint64_t kDenseCellBytes = sizeof(Severity);
constexpr std::uint64_t kSparseCellBytes =
    sizeof(std::uint64_t) + sizeof(Severity);

/// Per-node original/derived classification, decidable from the index:
/// an entry whose attributes mark it derived (or that IS a cached cube)
/// is derived, an operator application always is.
enum class PlanKind { Original, Derived, Unknown };

std::uint64_t dense_bytes(std::uint64_t cells) {
  return cells * kDenseCellBytes;
}

/// Geometry and representation of one node, filled bottom-up.
struct NodeState {
  PlanKind kind = PlanKind::Unknown;
};

/// Zero-severity wrapper over stored metadata: integration only reads the
/// metadata, and a sparse store over it allocates nothing per cell — this
/// is what lets the analyzer run integrate_metadata at plan time without
/// touching severity.
Experiment metadata_probe(std::shared_ptr<const Metadata> metadata) {
  return Experiment(std::move(metadata), StorageKind::Sparse);
}

/// Traversal count of one REMAPPED dense operand, replicating the
/// executor's kernel counters exactly.  The row-wise scatter visits each
/// source (metric, cnode) row once per cell-grid interval its result row
/// intersects, counting the operand's thread width each time — so a row
/// straddling an interval boundary is counted twice.  The grid is
/// deterministic (run_cell_chunked): [0, cells) split into
/// num_cell_chunks contiguous chunks, each swept in kTileCells tiles
/// from its own lower bound when the batched path runs (`tiled`), in one
/// piece otherwise.
std::uint64_t remap_dense_traversal(const OperandMapping& mapping,
                                    std::size_t src_metrics,
                                    std::size_t src_cnodes,
                                    std::size_t src_threads,
                                    std::size_t out_cnodes,
                                    std::size_t out_threads,
                                    std::uint64_t out_cells, bool tiled) {
  if (out_cells == 0) return 0;
  const std::uint64_t chunks = batch::num_cell_chunks(out_cells);
  const auto chunk_lo = [&](std::uint64_t k) { return k * out_cells / chunks; };
  const auto chunk_of = [&](std::uint64_t x) {
    std::uint64_t k = x * chunks / out_cells;
    while (k + 1 < chunks && chunk_lo(k + 1) <= x) ++k;
    while (k > 0 && chunk_lo(k) > x) --k;
    return k;
  };
  std::uint64_t total = 0;
  for (std::size_t m = 0; m < src_metrics; ++m) {
    const MetricIndex om = mapping.metric_map[m];
    if (om == kNoIndex) continue;  // merge ownership masking
    for (std::size_t c = 0; c < src_cnodes; ++c) {
      const std::uint64_t lo =
          (static_cast<std::uint64_t>(om) * out_cnodes +
           mapping.cnode_map[c]) *
          out_threads;
      const std::uint64_t hi = lo + out_threads;
      std::uint64_t intervals = 0;
      for (std::uint64_t k = chunk_of(lo); k < chunks && chunk_lo(k) < hi;
           ++k) {
        const std::uint64_t clo = chunk_lo(k);
        const std::uint64_t chi = std::min(chunk_lo(k + 1), out_cells);
        const std::uint64_t olo = std::max(lo, clo);
        const std::uint64_t ohi = std::min(hi, chi);
        if (ohi <= olo) continue;  // empty or non-overlapping chunk
        intervals += tiled ? (ohi - 1 - clo) / batch::kTileCells -
                                 (olo - clo) / batch::kTileCells + 1
                           : 1;
      }
      total += intervals * src_threads;
    }
  }
  return total;
}

/// The (rank, thread id) set of a metadata's system dimension.
std::set<std::pair<long, long>> thread_shape(const Metadata& md) {
  std::set<std::pair<long, long>> shape;
  for (const auto& t : md.threads()) {
    shape.emplace(t->rank(), t->thread_id());
  }
  return shape;
}

}  // namespace

PlanAnalysis analyze_plan(const QueryPlan& plan,
                          const ExperimentRepository& repo,
                          DiagnosticSink& sink,
                          const AnalyzeOptions& options) {
  PlanAnalysis analysis;
  analysis.budget_bytes = options.budget_bytes;
  const std::size_t n = plan.nodes.size();
  analysis.nodes.resize(n);
  std::vector<NodeState> state(n);

  // Index attributes (entry kind, cached cubes) come from one snapshot —
  // the same source the executor's cache pruning reads.
  std::map<std::string, std::string> entry_kind;  // id -> "cube::kind"
  std::map<std::string, std::pair<std::filesystem::path, std::uintmax_t>>
      cached_files;  // cache key hex -> (file, size)
  for (const RepoEntry& entry : repo.entries_snapshot()) {
    const auto kind = entry.attributes.find("cube::kind");
    if (kind != entry.attributes.end()) {
      entry_kind.emplace(entry.id, kind->second);
    }
    if (!options.use_cache) continue;
    const auto key = entry.attributes.find(kCacheKeyAttribute);
    if (key != entry.attributes.end()) {
      std::error_code ec;
      const std::filesystem::path path = repo.directory() / entry.file;
      std::uintmax_t size = std::filesystem::file_size(path, ec);
      if (ec) size = 0;
      cached_files.emplace(key->second, std::make_pair(path, size));
    }
  }

  const MetadataResolver resolver = repo.resolver();

  // --- bottom-up: geometry, compatibility, per-node cost ------------------
  for (std::size_t i = 0; i < n; ++i) {
    const PlanNode& node = plan.nodes[i];
    NodeCost& cost = analysis.nodes[i];

    if (node.kind == PlanNode::Kind::Load) {
      cost.bytes_loaded = static_cast<std::uint64_t>(node.operand.bytes);
      cost.bytes_faulted = cost.bytes_loaded;
      const auto kind_attr = entry_kind.find(node.operand.id);
      state[i].kind = kind_attr != entry_kind.end() &&
                              kind_attr->second == "derived"
                          ? PlanKind::Derived
                          : PlanKind::Original;

      if (node.operand.meta_digest == 0) {
        // Legacy inline-metadata entry: geometry requires parsing the
        // experiment file, which the analyzer refuses to do.
        sink.warning("plan.opaque-operand", node.canonical,
                     "operand '" + node.operand.id +
                         "' carries inline metadata; its geometry is not "
                         "statically known",
                     "run `cube_repo migrate` to rewrite the entry "
                     "blob-backed, making it analyzable");
        cost.exact = false;
        continue;
      }
      try {
        cost.metadata = resolver(node.operand.meta_digest);
      } catch (const Error&) {
        cost.metadata = nullptr;
      }
      if (!cost.metadata) {
        sink.warning("plan.opaque-operand", node.canonical,
                     "operand '" + node.operand.id +
                         "' references metadata blob " +
                         digest_hex(node.operand.meta_digest) +
                         " which did not resolve",
                     "the load would fail at runtime too; check the "
                     "repository's meta/ shards");
        cost.exact = false;
        continue;
      }
      cost.geometry_known = true;
      cost.metrics = cost.metadata->num_metrics();
      cost.cnodes = cost.metadata->num_cnodes();
      cost.threads = cost.metadata->num_threads();
      cost.cells = static_cast<std::uint64_t>(cost.metrics) * cost.cnodes *
                   cost.threads;
      // In-memory representation: XML/Binary operands load dense (the
      // engine's read path defaults StorageKind::Dense); columnar
      // operands mmap their blob and keep its kind.
      cost.storage = StorageKind::Dense;
      cost.nnz = cost.cells;
      cost.result_bytes = dense_bytes(cost.cells);
      if (node.operand.format == RepoFormat::Columnar &&
          node.operand.sev_digest != 0) {
        std::optional<SevBlobStat> stat;
        try {
          stat = repo.stat_sev_blob(node.operand.sev_digest);
        } catch (const Error& e) {
          sink.warning("plan.opaque-operand", node.canonical,
                       std::string("severity blob header unreadable: ") +
                           e.what(),
                       "treating the operand as dense for cost purposes");
        }
        if (stat) {
          cost.storage = stat->kind;
          cost.nnz = stat->kind == StorageKind::Sparse ? stat->entries
                                                       : cost.cells;
          cost.result_bytes = stat->payload_bytes;
          cost.bytes_faulted += stat->payload_bytes;
        } else {
          cost.exact = false;
        }
      }
      continue;
    }

    // ---- operator application ------------------------------------------
    state[i].kind = PlanKind::Derived;
    bool all_known = true;
    for (const std::size_t child : node.args) {
      if (!analysis.nodes[child].geometry_known) all_known = false;
      if (!analysis.nodes[child].exact) cost.exact = false;
    }

    // Unit conflicts make integration undefined — the exact check
    // lint_compatibility runs at load time, promoted to plan time over
    // stored metadata, with the offending sub-expression as location.
    bool unit_conflict = false;
    {
      std::map<std::string, std::pair<Unit, std::size_t>> units;
      for (std::size_t a = 0; a < node.args.size(); ++a) {
        const NodeCost& child = analysis.nodes[node.args[a]];
        if (!child.metadata) continue;
        for (const auto& m : child.metadata->metrics()) {
          const auto [it, fresh] = units.emplace(
              m->unique_name(), std::make_pair(m->unit(), a));
          if (!fresh && it->second.first != m->unit()) {
            unit_conflict = true;
            sink.error(
                "plan.metric-unit",
                plan.nodes[node.args[a]].canonical,
                "operand #" + std::to_string(a) + " measures metric '" +
                    m->unique_name() + "' in '" +
                    std::string(unit_name(m->unit())) + "' but operand #" +
                    std::to_string(it->second.second) + " measures it in '" +
                    std::string(unit_name(it->second.first)) + "'",
                "metadata integration cannot merge metrics that share a "
                "unique name but differ in unit; the query would fail at "
                "evaluation time");
          }
        }
      }
    }
    if (unit_conflict) {
      analysis.compatible = false;
      cost.exact = false;
      continue;
    }

    // Per-operand mappings into the integrated cell space; stays empty
    // when any operand's geometry is unknown.
    std::vector<OperandMapping> mappings;
    if (all_known) {
      // Integrate the children's metadata exactly as the operator will —
      // over zero-severity probes, so the structural merge (or its digest
      // short-circuit) runs without any severity in sight.
      std::vector<Experiment> probes;
      std::vector<const Experiment*> operand_ptrs;
      probes.reserve(node.args.size());
      operand_ptrs.reserve(node.args.size());
      for (const std::size_t child : node.args) {
        probes.push_back(metadata_probe(analysis.nodes[child].metadata));
      }
      for (const Experiment& p : probes) operand_ptrs.push_back(&p);
      try {
        IntegrationResult integration = integrate_metadata(
            std::span<const Experiment* const>(operand_ptrs),
            options.operators.integration);
        cost.metadata = integration.metadata;
        mappings = std::move(integration.mappings);
      } catch (const Error& e) {
        sink.error("plan.integration-failed", node.canonical,
                   std::string("metadata integration rejects the "
                               "operands: ") +
                       e.what(),
                   "the query would fail at evaluation time");
        analysis.compatible = false;
        cost.exact = false;
        continue;
      }
      cost.geometry_known = true;
      cost.metrics = cost.metadata->num_metrics();
      cost.cnodes = cost.metadata->num_cnodes();
      cost.threads = cost.metadata->num_threads();
      cost.cells = static_cast<std::uint64_t>(cost.metrics) * cost.cnodes *
                   cost.threads;

      // Differing system shapes zero-extend — legal but usually a
      // selector mistake (mirrors compat.thread-shape).
      for (std::size_t a = 1; a < node.args.size(); ++a) {
        const auto& first = *analysis.nodes[node.args[0]].metadata;
        const auto& other = *analysis.nodes[node.args[a]].metadata;
        if (thread_shape(other) != thread_shape(first)) {
          sink.note("plan.thread-shape", plan.nodes[node.args[a]].canonical,
                    "system dimension differs from operand #0's "
                    "(different (rank, thread id) sets)",
                    "tuples absent from an operand contribute zero to "
                    "element-wise operators");
          break;
        }
      }
    } else {
      cost.exact = false;
    }

    bool any_original = false;
    bool any_derived = false;
    for (const std::size_t child : node.args) {
      (state[child].kind == PlanKind::Derived ? any_derived : any_original) =
          true;
    }
    if (any_original && any_derived) {
      sink.note("plan.mixed-kind", node.canonical,
                "operands mix original and derived experiments",
                "differences already encode a comparison; aggregating "
                "them with measured runs is usually unintended");
    }

    // Cost: per operand, the severity kernels visit its stored non-zeros
    // (kept sparse) or run a dense sweep — operand preparation densifies
    // any sparse operand at least half full, so those take the dense
    // kernels too.  An identity-mapped dense operand sweeps exactly its
    // own cells; a remapped dense operand re-counts each source row once
    // per chunk (and, under the batched kernels, per tile) of the
    // deterministic grid it straddles, replicated by
    // remap_dense_traversal().
    batch::OutShape os;
    os.metrics = cost.metrics;
    os.cnodes = cost.cnodes;
    os.threads = cost.threads;
    os.plane = cost.cnodes * cost.threads;
    os.cells = cost.cells;
    const bool tiled = !mappings.empty() &&
                       options.operators.use_batch_kernels &&
                       batch::batchable(mappings, os);
    for (std::size_t a = 0; a < node.args.size(); ++a) {
      const NodeCost& c = analysis.nodes[node.args[a]];
      const bool dense_kernel =
          c.storage == StorageKind::Dense || 2 * c.nnz >= c.cells;
      if (!dense_kernel) {
        cost.cells_traversed += c.nnz;
      } else if (a < mappings.size() && !mappings[a].identity()) {
        cost.cells_traversed += remap_dense_traversal(
            mappings[a], c.metrics, c.cnodes, c.threads, cost.cnodes,
            cost.threads, cost.cells, tiled);
      } else {
        cost.cells_traversed += c.cells;
      }
    }
    if (node.op == QueryExpr::Op::Merge) {
      // Owner-masked mappings may skip a non-owning operand's metric
      // planes entirely; the sum above is an upper bound.
      cost.exact = false;
    }
    cost.storage = options.operators.storage;
    if (cost.geometry_known) {
      if (cost.storage == StorageKind::Dense) {
        cost.nnz = cost.cells;
        cost.result_bytes = dense_bytes(cost.cells);
      } else {
        // Sparse results hold at most min(cells, sum of operand nnz)
        // entries — an upper bound, not a prediction.
        std::uint64_t nnz_bound = 0;
        for (const std::size_t child : node.args) {
          nnz_bound += analysis.nodes[child].nnz;
        }
        cost.nnz = std::min(cost.cells, nnz_bound);
        cost.result_bytes = cost.nnz * kSparseCellBytes;
        cost.exact = false;
      }
    }
  }

  // --- DAG totals under the executor's scheduling -------------------------
  // Every needed node's result shared_ptr lives until the whole DAG
  // finishes, so peak resident is the SUM over executed nodes.  The warm
  // pass replays the executor's cache pruning: a cached apply node
  // becomes a leaf (loaded from its stored cube) and its subtree never
  // runs.
  const auto total = [&](bool warm) {
    CostEstimate est;
    std::vector<char> needed(n, 0);
    std::vector<std::size_t> stack{plan.root};
    while (!stack.empty()) {
      const std::size_t i = stack.back();
      stack.pop_back();
      if (needed[i]) continue;
      needed[i] = 1;
      const PlanNode& node = plan.nodes[i];
      const NodeCost& cost = analysis.nodes[i];
      ++est.nodes_executed;
      if (!cost.exact) est.exact = false;
      if (node.kind == PlanNode::Kind::Load) {
        ++est.operands_loaded;
        est.bytes_loaded += cost.bytes_loaded;
        est.bytes_faulted += cost.bytes_faulted;
        est.peak_resident_bytes += cost.result_bytes;
        continue;
      }
      const auto hit = warm ? cached_files.find(digest_hex(node.key))
                            : cached_files.end();
      if (hit != cached_files.end()) {
        analysis.nodes[i].cached = true;
        ++est.cache_hits;
        est.bytes_loaded += hit->second.second;
        est.bytes_faulted += hit->second.second;
        // Cached cubes load as dense binary experiments.
        est.peak_resident_bytes += dense_bytes(cost.cells);
        continue;
      }
      ++est.nodes_evaluated;
      est.cells_traversed += cost.cells_traversed;
      est.intermediate_bytes += cost.result_bytes;
      est.peak_resident_bytes += cost.result_bytes;
      for (const std::size_t child : node.args) stack.push_back(child);
    }
    return est;
  };

  analysis.cold = total(false);
  analysis.warm = options.use_cache ? total(true) : analysis.cold;
  analysis.exact = analysis.warm.exact && analysis.cold.exact;

  const CostEstimate& enforced =
      options.use_cache ? analysis.warm : analysis.cold;
  if (options.budget_bytes != 0 &&
      enforced.peak_resident_bytes > options.budget_bytes) {
    analysis.over_budget = true;
    sink.error(
        "cost.over-budget", plan.nodes[plan.root].canonical,
        "predicted peak resident memory " +
            std::to_string(enforced.peak_resident_bytes) +
            " bytes exceeds the budget of " +
            std::to_string(options.budget_bytes) + " bytes",
        "narrow the selector, lower the operand count, or raise the "
        "budget");
  }

  sink.note(
      "cost.summary", plan.nodes[plan.root].canonical,
      "cold: " + std::to_string(analysis.cold.cells_traversed) +
          " cells traversed, " + std::to_string(analysis.cold.bytes_faulted) +
          " bytes faulted, peak resident " +
          std::to_string(analysis.cold.peak_resident_bytes) +
          " bytes; warm: " + std::to_string(analysis.warm.cache_hits) +
          " cache hit(s), peak resident " +
          std::to_string(analysis.warm.peak_resident_bytes) + " bytes" +
          (analysis.exact ? "" : " (estimates; plan has opaque operands, "
                                 "owner-masked merges, or sparse results)"));

  if (options.run_plan_lint) lint_plan(plan, sink);
  return analysis;
}

}  // namespace cube::query
