// QueryEngine: evaluates self-contained algebra queries directly against
// an ExperimentRepository.
//
// A query run is: parse -> plan (selector resolution, CSE, cache keys;
// see query/planner.hpp) -> execute.  Execution walks the DAG with a
// thread pool: independent nodes (operand loads, sibling subexpressions)
// run concurrently, and the n-ary reductions additionally row-chunk their
// severity phase through the same pool (OperatorOptions::parallel_for),
// which is bit-identical to sequential evaluation at any thread count.
//
// Results are cached CONTENT-ADDRESSED in the repository itself: a
// computed sub-expression is stored as a regular (binary) experiment
// whose "cube::cache-key" attribute is the node's key digest.  A later
// plan whose node carries the same key loads the stored cube instead of
// recomputing — across overlapping queries and across processes, since
// the cache lives in the repository index.  Re-storing different data
// under an operand id changes that file's digest and thereby every
// downstream key, so stale cubes are never served (they are merely
// orphaned).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

#include "common/thread_pool.hpp"
#include "io/repository.hpp"
#include "query/planner.hpp"
#include "query/query_expr.hpp"

namespace cube::query {

struct QueryOptions {
  /// Worker threads for the executor; 0 picks the hardware concurrency,
  /// 1 runs fully sequential (no pool).
  std::size_t threads = 0;
  /// Serve plan nodes from cached cubes when keys match.
  bool use_cache = true;
  /// Persist computed sub-expressions back into the repository.
  bool store_derived = true;
  /// Run the invariant checker (cube::lint::require_valid) over every
  /// experiment loaded from the repository — operands and cache hits —
  /// throwing ValidationError on error-level findings.  Off by default:
  /// the readers already reject malformed files, so the extra O(data)
  /// pass is for pipelines that ingest repositories they did not write.
  bool validate_loads = false;
  OperatorOptions operators;
};

/// Execution statistics of one query run.
struct QueryStats {
  std::size_t plan_nodes = 0;      ///< DAG nodes after CSE
  std::size_t cse_reused = 0;      ///< subexpression occurrences folded
  std::size_t nodes_executed = 0;  ///< nodes actually run (cache prunes)
  std::size_t operands_loaded = 0; ///< repository files parsed as operands
  std::size_t nodes_evaluated = 0; ///< operator applications computed
  std::size_t cache_hits = 0;      ///< nodes served from cached cubes
  std::size_t cache_misses = 0;    ///< cacheable nodes that were computed
  std::uintmax_t bytes_loaded = 0; ///< file bytes read (operands + hits)
  std::size_t threads_used = 1;
  // Bulk severity-kernel path counters summed over all operator
  // applications of the run (see cube::kernel_counters / docs/STORAGE.md):
  // which kernel fired (identity vs remap x dense vs sparse operand) and
  // how much data it touched (cells vs non-zeros).  Copied out of the
  // run's local obs::MetricsRegistry after execution.
  std::uint64_t kernel_identity_dense_cells = 0;
  std::uint64_t kernel_remap_dense_cells = 0;
  std::uint64_t kernel_identity_sparse_nnz = 0;
  std::uint64_t kernel_remap_sparse_nnz = 0;
  std::uint64_t kernel_chunks = 0;        ///< cell chunks executed
  std::uint64_t kernel_applications = 0;  ///< ops through the bulk path
  std::uint64_t kernel_batch_tiles = 0;   ///< SoA tiles staged + reduced
  std::uint64_t kernel_batch_width = 0;   ///< sum of batched operand counts
  // Wall time per stage.  plan/exec/total are end-to-end; load/eval are
  // summed across concurrent tasks (they can exceed exec_ms).
  double plan_ms = 0.0;
  double load_ms = 0.0;
  double eval_ms = 0.0;
  double exec_ms = 0.0;
  double total_ms = 0.0;
};

struct QueryResult {
  Experiment experiment;
  QueryStats stats;
  std::string canonical;  ///< canonical root expression over resolved ids
};

/// Evaluates queries against a repository.  One engine may serve MANY
/// threads at once: run()/run_plan() keep all per-run state on the
/// caller's stack, the repository synchronizes itself, and the thread
/// pool is safe to share — the analysis daemon multiplexes every session
/// onto a single engine over one pool.  Callers of run_plan() must not
/// be pool workers of the engine's own pool (the DAG wait would occupy a
/// worker); session threads and main() are fine.
class QueryEngine {
 public:
  explicit QueryEngine(ExperimentRepository& repo, QueryOptions options = {});
  /// Runs on `pool` (shared, externally owned) instead of spawning a
  /// private one; `pool` must outlive the engine.  options.threads only
  /// labels QueryStats::threads_used in this form.
  QueryEngine(ExperimentRepository& repo, QueryOptions options,
              ThreadPool& pool);

  /// Parse + plan + execute.  Throws cube::Error (and subclasses) on
  /// parse, resolution, or evaluation failure.
  [[nodiscard]] QueryResult run(std::string_view text);
  [[nodiscard]] QueryResult run(const QueryExpr& expr);

  /// Plans without executing — the daemon's plan cache keys off the
  /// root node's content-addressed digest before deciding whether any
  /// execution is needed at all.
  [[nodiscard]] QueryPlan plan(const QueryExpr& expr) const;

  /// Executes a previously produced plan (stats.plan_ms stays 0; run()
  /// composes the two).  The plan must come from this engine's
  /// repository and operator options.
  [[nodiscard]] QueryResult run_plan(const QueryPlan& plan);

  [[nodiscard]] const QueryOptions& options() const noexcept {
    return options_;
  }

 private:
  ExperimentRepository& repo_;
  QueryOptions options_;
  ThreadPool* pool_ = nullptr;        // null when running sequentially
  std::unique_ptr<ThreadPool> owned_pool_;
};

}  // namespace cube::query
