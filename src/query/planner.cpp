#include "query/planner.hpp"

#include <map>
#include <string_view>

#include "common/digest.hpp"
#include "common/error.hpp"
#include "common/string_util.hpp"

namespace cube::query {

namespace {

/// Version tag mixed into every apply key; bump when the planner, an
/// operator's semantics, or the cache layout changes incompatibly.
constexpr std::string_view kCacheFormatVersion = "cube-query/v1";

bool is_cache_entry(const RepoEntry& entry) {
  return entry.attributes.count(kCacheKeyAttribute) != 0;
}

/// Operator options that influence result VALUES, rendered into the cache
/// key.  parallel_for is deliberately excluded: row-chunked execution is
/// bit-identical to sequential (see algebra/operators.hpp).
std::string options_tag(const OperatorOptions& options) {
  std::string tag = "sp=";
  tag += std::to_string(static_cast<int>(options.integration.system_policy));
  tag += ";cf=";
  tag += options.integration.callsite_file_matters ? '1' : '0';
  tag += ";kt=";
  tag += options.integration.keep_topology ? '1' : '0';
  tag += ";st=";
  tag += std::to_string(static_cast<int>(options.storage));
  return tag;
}

class Planner {
 public:
  // Selector resolution iterates a SNAPSHOT of the index: the daemon
  // plans while other sessions store derived results into the same
  // repository, and an entries() reference could reallocate mid-walk.
  Planner(const ExperimentRepository& repo, const OperatorOptions& options)
      : repo_(repo), entries_(repo.entries_snapshot()), options_(options) {}

  QueryPlan run(const QueryExpr& expr) {
    const std::vector<std::size_t> roots = plan_node(expr);
    if (roots.size() != 1) {
      throw OperationError(
          "query root " + expr.str() + " resolves to " +
          std::to_string(roots.size()) +
          " experiments; wrap the selector in mean/min/max/merge to "
          "reduce it to one");
    }
    plan_.root = roots[0];
    return std::move(plan_);
  }

 private:
  /// Plans one expression; returns the DAG nodes it stands for (one node,
  /// except for selectors, which stand for their whole match list).
  std::vector<std::size_t> plan_node(const QueryExpr& expr) {
    switch (expr.kind()) {
      case QueryExpr::Kind::Ref:
      case QueryExpr::Kind::Id:
        return {load_node(find_id(expr))};
      case QueryExpr::Kind::Attr:
      case QueryExpr::Kind::Series: {
        std::vector<std::size_t> nodes;
        for (const RepoEntry* entry : match_selector(expr)) {
          nodes.push_back(load_node(*entry));
        }
        return nodes;
      }
      case QueryExpr::Kind::Apply:
        return {apply_node(expr)};
    }
    throw OperationError("unreachable query expression kind");
  }

  std::size_t apply_node(const QueryExpr& expr) {
    std::vector<std::size_t> operands;
    for (const auto& arg : expr.args()) {
      const std::vector<std::size_t> sub = plan_node(*arg);
      operands.insert(operands.end(), sub.begin(), sub.end());
    }
    const bool binary = expr.op() == QueryExpr::Op::Diff ||
                        expr.op() == QueryExpr::Op::Merge;
    if (binary && operands.size() != 2) {
      throw OperationError(
          std::string(op_name(expr.op())) + " expects 2 operands, got " +
          std::to_string(operands.size()) + " after selector expansion in " +
          expr.str());
    }
    if (operands.empty()) {
      throw OperationError(std::string(op_name(expr.op())) +
                           " expects >= 1 operand in " + expr.str());
    }

    std::string canonical = op_name(expr.op());
    canonical += '(';
    for (std::size_t i = 0; i < operands.size(); ++i) {
      if (i > 0) canonical += ", ";
      canonical += plan_.nodes[operands[i]].canonical;
    }
    canonical += ')';
    const auto known = cse_.find(canonical);
    if (known != cse_.end()) {
      ++plan_.cse_reused;
      return known->second;
    }

    Fnv1a key;
    key.update(kCacheFormatVersion)
        .update("|")
        .update(op_name(expr.op()))
        .update("|")
        .update(options_tag(options_));
    for (const std::size_t child : operands) {
      key.update(plan_.nodes[child].key);
    }

    PlanNode node;
    node.kind = PlanNode::Kind::Apply;
    node.op = expr.op();
    node.args = std::move(operands);
    node.canonical = canonical;
    node.key = key.value();
    plan_.nodes.push_back(std::move(node));
    const std::size_t index = plan_.nodes.size() - 1;
    cse_.emplace(std::move(canonical), index);
    return index;
  }

  const RepoEntry& find_id(const QueryExpr& expr) {
    for (const RepoEntry& entry : entries_) {
      if (entry.id == expr.name()) return entry;
    }
    throw Error("repository has no experiment with id '" + expr.name() +
                "' (referenced by " + expr.str() + ")");
  }

  std::vector<const RepoEntry*> match_selector(const QueryExpr& expr) {
    std::vector<const RepoEntry*> matches;
    for (const RepoEntry& entry : entries_) {
      if (is_cache_entry(entry)) continue;
      if (expr.kind() == QueryExpr::Kind::Series) {
        if (entry.id.rfind(expr.name(), 0) == 0) matches.push_back(&entry);
        continue;
      }
      bool all = true;
      for (const auto& [key, value] : expr.pairs()) {
        const auto it = entry.attributes.find(key);
        if (it == entry.attributes.end() || it->second != value) {
          all = false;
          break;
        }
      }
      if (all) matches.push_back(&entry);
    }
    if (matches.empty()) {
      throw OperationError("selector " + expr.str() +
                           " matches no experiment in '" +
                           repo_.directory().string() + "'");
    }
    return matches;
  }

  std::size_t load_node(const RepoEntry& entry) {
    const auto known = loads_.find(entry.id);
    if (known != loads_.end()) {
      ++plan_.cse_reused;
      return known->second;
    }
    PlanNode node;
    node.kind = PlanNode::Kind::Load;
    node.operand.id = entry.id;
    node.operand.path = repo_.directory() / entry.file;
    node.operand.format = entry.format;
    node.operand.digest = digest_file(node.operand.path);
    std::error_code ec;
    node.operand.bytes = std::filesystem::file_size(node.operand.path, ec);
    if (ec) node.operand.bytes = 0;
    node.canonical =
        "id:" + entry.id + "@" + digest_hex(node.operand.digest);
    if (!entry.sev.empty() &&
        !parse_hex64(entry.sev, node.operand.sev_digest)) {
      // Not part of the key (the file digest already covers the <sevref>);
      // recorded so the static analyzer can stat the blob header.
      node.operand.sev_digest = 0;
    }
    if (!entry.meta.empty() &&
        parse_hex64(entry.meta, node.operand.meta_digest)) {
      // Blob-backed entry: the file holds only a digest reference, so the
      // metadata's own structural digest joins the key.  Legacy inline
      // entries keep the bare file digest — their pre-refactor cache keys
      // stay valid.
      node.key = Fnv1a()
                     .update(node.operand.digest)
                     .update(node.operand.meta_digest)
                     .value();
    } else {
      node.key = node.operand.digest;
    }
    plan_.nodes.push_back(std::move(node));
    const std::size_t index = plan_.nodes.size() - 1;
    loads_.emplace(entry.id, index);
    return index;
  }

  const ExperimentRepository& repo_;
  const std::vector<RepoEntry> entries_;
  const OperatorOptions& options_;
  QueryPlan plan_;
  std::map<std::string, std::size_t> cse_;   // canonical -> node
  std::map<std::string, std::size_t> loads_;  // id -> node
};

}  // namespace

QueryPlan plan_query(const QueryExpr& expr, const ExperimentRepository& repo,
                     const OperatorOptions& options) {
  return Planner(repo, options).run(expr);
}

}  // namespace cube::query
