// Query expressions: the algebra's composite-expression grammar extended
// with repository SELECTORS, so a query is self-contained — it names the
// stored experiments it operates on instead of relying on a caller-built
// environment:
//
//     diff(mean(attr(run=before)), mean(attr(run=after)))
//
// Grammar (a superset of algebra/composite's grammar):
//
//     expr     := func '(' expr (',' expr)* ')' | selector | ident
//     func     := "diff" | "difference" | "merge"
//               | "mean" | "avg" | "min" | "max"
//     selector := "id" '(' value ')'
//               | "attr" '(' kv (',' kv)* ')'
//               | "series" '(' value ')'
//     kv       := ident '=' value
//     value    := bareword | '"' [^"]* '"'
//     ident    := [A-Za-z_][A-Za-z0-9_.-]*
//     bareword := [A-Za-z0-9_.:+-]+
//
// A bare ident leaf is an environment reference (cube_calc's name=file
// bindings); against a repository it resolves like id(ident).  Selectors
// resolve to LISTS of stored experiments: a list splices into the
// argument list of the n-ary reductions (mean/min/max), while positions
// requiring exactly one experiment (diff/merge operands, the query root)
// reject empty or ambiguous matches.
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "algebra/composite.hpp"

namespace cube::query {

class QueryExpr {
 public:
  enum class Kind { Ref, Id, Attr, Series, Apply };
  enum class Op { Diff, Merge, Mean, Min, Max };

  /// Leaf: environment reference / repository id shorthand.
  [[nodiscard]] static std::unique_ptr<QueryExpr> ref(std::string name);
  /// Selector leaves.
  [[nodiscard]] static std::unique_ptr<QueryExpr> id(std::string id);
  [[nodiscard]] static std::unique_ptr<QueryExpr> attr(
      std::vector<std::pair<std::string, std::string>> pairs);
  [[nodiscard]] static std::unique_ptr<QueryExpr> series(std::string prefix);
  /// Inner node; arity is checked at plan/eval time (selector splicing
  /// means it is not known syntactically).
  [[nodiscard]] static std::unique_ptr<QueryExpr> apply(
      Op op, std::vector<std::unique_ptr<QueryExpr>> args);

  [[nodiscard]] Kind kind() const noexcept { return kind_; }
  [[nodiscard]] Op op() const noexcept { return op_; }
  /// Ref name, Id id, or Series prefix.
  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] const std::vector<std::pair<std::string, std::string>>&
  pairs() const noexcept {
    return pairs_;
  }
  [[nodiscard]] const std::vector<std::unique_ptr<QueryExpr>>& args()
      const noexcept {
    return args_;
  }

  /// Canonical textual rendering (values quoted only when necessary).
  [[nodiscard]] std::string str() const;

  /// Lowers to the algebra's composite Expr for evaluation against an
  /// ExperimentEnv (cube_calc's mode).  Throws OperationError if the tree
  /// contains a selector — those need a repository to resolve.
  [[nodiscard]] std::unique_ptr<Expr> to_composite() const;

 private:
  QueryExpr(Kind kind, Op op, std::string name,
            std::vector<std::pair<std::string, std::string>> pairs,
            std::vector<std::unique_ptr<QueryExpr>> args);

  Kind kind_;
  Op op_ = Op::Mean;  // meaningful for Apply only
  std::string name_;
  std::vector<std::pair<std::string, std::string>> pairs_;
  std::vector<std::unique_ptr<QueryExpr>> args_;
};

[[nodiscard]] const char* op_name(QueryExpr::Op op) noexcept;

/// Parses the query grammar; throws cube::Error with offset information.
[[nodiscard]] std::unique_ptr<QueryExpr> parse_query(std::string_view text);

/// Parse + lower + eval against an environment (no repository): the
/// composite pipeline with the extended parser.  Selector use throws.
[[nodiscard]] Experiment eval_query_with_env(
    std::string_view text, const ExperimentEnv& env,
    const OperatorOptions& options = {});

}  // namespace cube::query
