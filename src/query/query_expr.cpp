#include "query/query_expr.hpp"

#include <cctype>

#include "common/error.hpp"

namespace cube::query {

namespace {

bool is_bareword_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
         c == '.' || c == ':' || c == '+' || c == '-';
}

bool needs_quotes(const std::string& value) {
  if (value.empty()) return true;
  for (const char c : value) {
    if (!is_bareword_char(c)) return true;
  }
  return false;
}

std::string render_value(const std::string& value) {
  return needs_quotes(value) ? '"' + value + '"' : value;
}

}  // namespace

const char* op_name(QueryExpr::Op op) noexcept {
  switch (op) {
    case QueryExpr::Op::Diff: return "diff";
    case QueryExpr::Op::Merge: return "merge";
    case QueryExpr::Op::Mean: return "mean";
    case QueryExpr::Op::Min: return "min";
    case QueryExpr::Op::Max: return "max";
  }
  return "?";
}

QueryExpr::QueryExpr(Kind kind, Op op, std::string name,
                     std::vector<std::pair<std::string, std::string>> pairs,
                     std::vector<std::unique_ptr<QueryExpr>> args)
    : kind_(kind),
      op_(op),
      name_(std::move(name)),
      pairs_(std::move(pairs)),
      args_(std::move(args)) {}

std::unique_ptr<QueryExpr> QueryExpr::ref(std::string name) {
  return std::unique_ptr<QueryExpr>(
      new QueryExpr(Kind::Ref, Op::Mean, std::move(name), {}, {}));
}

std::unique_ptr<QueryExpr> QueryExpr::id(std::string id) {
  return std::unique_ptr<QueryExpr>(
      new QueryExpr(Kind::Id, Op::Mean, std::move(id), {}, {}));
}

std::unique_ptr<QueryExpr> QueryExpr::attr(
    std::vector<std::pair<std::string, std::string>> pairs) {
  return std::unique_ptr<QueryExpr>(
      new QueryExpr(Kind::Attr, Op::Mean, {}, std::move(pairs), {}));
}

std::unique_ptr<QueryExpr> QueryExpr::series(std::string prefix) {
  return std::unique_ptr<QueryExpr>(
      new QueryExpr(Kind::Series, Op::Mean, std::move(prefix), {}, {}));
}

std::unique_ptr<QueryExpr> QueryExpr::apply(
    Op op, std::vector<std::unique_ptr<QueryExpr>> args) {
  return std::unique_ptr<QueryExpr>(
      new QueryExpr(Kind::Apply, op, {}, {}, std::move(args)));
}

std::string QueryExpr::str() const {
  switch (kind_) {
    case Kind::Ref:
      return name_;
    case Kind::Id:
      return "id(" + render_value(name_) + ")";
    case Kind::Series:
      return "series(" + render_value(name_) + ")";
    case Kind::Attr: {
      std::string out = "attr(";
      for (std::size_t i = 0; i < pairs_.size(); ++i) {
        if (i > 0) out += ", ";
        out += pairs_[i].first + "=" + render_value(pairs_[i].second);
      }
      return out + ")";
    }
    case Kind::Apply: {
      std::string out = op_name(op_);
      out += '(';
      for (std::size_t i = 0; i < args_.size(); ++i) {
        if (i > 0) out += ", ";
        out += args_[i]->str();
      }
      return out + ")";
    }
  }
  return "?";
}

std::unique_ptr<Expr> QueryExpr::to_composite() const {
  switch (kind_) {
    case Kind::Ref:
      return Expr::load(name_);
    case Kind::Id:
    case Kind::Attr:
    case Kind::Series:
      throw OperationError("selector " + str() +
                           " requires a repository to resolve; evaluate it "
                           "with the query engine (cube_query --repo)");
    case Kind::Apply: {
      std::vector<std::unique_ptr<Expr>> lowered;
      lowered.reserve(args_.size());
      for (const auto& arg : args_) lowered.push_back(arg->to_composite());
      Expr::Op op;
      switch (op_) {
        case Op::Diff: op = Expr::Op::Diff; break;
        case Op::Merge: op = Expr::Op::Merge; break;
        case Op::Mean: op = Expr::Op::Mean; break;
        case Op::Min: op = Expr::Op::Min; break;
        case Op::Max: op = Expr::Op::Max; break;
        default: throw OperationError("unreachable query op");
      }
      return Expr::apply(op, std::move(lowered));
    }
  }
  throw OperationError("unreachable query expression kind");
}

namespace {

/// Recursive-descent parser; a superset of algebra/composite's grammar.
class QueryParser {
 public:
  explicit QueryParser(std::string_view text) : text_(text) {}

  std::unique_ptr<QueryExpr> parse() {
    auto e = parse_expr();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing input after expression");
    return e;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw Error("query parse error at offset " + std::to_string(pos_) +
                ": " + what);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool is_ident_char(char c) const {
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
           c == '.' || c == '-';
  }

  std::string parse_ident() {
    skip_ws();
    const std::size_t start = pos_;
    if (pos_ >= text_.size() ||
        !(std::isalpha(static_cast<unsigned char>(text_[pos_])) ||
          text_[pos_] == '_')) {
      fail("expected identifier");
    }
    while (pos_ < text_.size() && is_ident_char(text_[pos_])) ++pos_;
    return std::string(text_.substr(start, pos_ - start));
  }

  /// A selector value: quoted string or bareword (may start with a digit,
  /// e.g. attr(nodes=16)).
  std::string parse_value() {
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == '"') {
      const std::size_t start = ++pos_;
      while (pos_ < text_.size() && text_[pos_] != '"') ++pos_;
      if (pos_ >= text_.size()) fail("unterminated string");
      return std::string(text_.substr(start, pos_++ - start));
    }
    const std::size_t start = pos_;
    while (pos_ < text_.size() && is_bareword_char(text_[pos_])) ++pos_;
    if (pos_ == start) fail("expected value");
    return std::string(text_.substr(start, pos_ - start));
  }

  void expect(char c) {
    skip_ws();
    if (pos_ >= text_.size() || text_[pos_] != c) {
      fail(std::string("expected '") + c + "'");
    }
    ++pos_;
  }

  std::unique_ptr<QueryExpr> parse_selector(const std::string& which) {
    expect('(');
    if (which == "attr") {
      std::vector<std::pair<std::string, std::string>> pairs;
      while (true) {
        std::string key = parse_ident();
        expect('=');
        pairs.emplace_back(std::move(key), parse_value());
        skip_ws();
        if (pos_ < text_.size() && text_[pos_] == ',') {
          ++pos_;
          continue;
        }
        break;
      }
      expect(')');
      return QueryExpr::attr(std::move(pairs));
    }
    std::string value = parse_value();
    expect(')');
    return which == "id" ? QueryExpr::id(std::move(value))
                         : QueryExpr::series(std::move(value));
  }

  std::unique_ptr<QueryExpr> parse_expr() {
    const std::string ident = parse_ident();
    skip_ws();
    if (pos_ >= text_.size() || text_[pos_] != '(') {
      return QueryExpr::ref(ident);
    }
    if (ident == "id" || ident == "attr" || ident == "series") {
      return parse_selector(ident);
    }
    QueryExpr::Op op;
    if (ident == "diff" || ident == "difference") {
      op = QueryExpr::Op::Diff;
    } else if (ident == "merge") {
      op = QueryExpr::Op::Merge;
    } else if (ident == "mean" || ident == "avg") {
      op = QueryExpr::Op::Mean;
    } else if (ident == "min") {
      op = QueryExpr::Op::Min;
    } else if (ident == "max") {
      op = QueryExpr::Op::Max;
    } else {
      fail("unknown operator '" + ident + "'");
    }
    ++pos_;  // consume '('
    std::vector<std::unique_ptr<QueryExpr>> args;
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == ')') {
      fail("operator '" + ident + "' requires arguments");
    }
    while (true) {
      args.push_back(parse_expr());
      skip_ws();
      if (pos_ >= text_.size()) fail("unterminated argument list");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == ')') {
        ++pos_;
        break;
      }
      fail("expected ',' or ')'");
    }
    return QueryExpr::apply(op, std::move(args));
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

std::unique_ptr<QueryExpr> parse_query(std::string_view text) {
  return QueryParser(text).parse();
}

Experiment eval_query_with_env(std::string_view text,
                               const ExperimentEnv& env,
                               const OperatorOptions& options) {
  return parse_query(text)->to_composite()->eval(env, options);
}

}  // namespace cube::query
