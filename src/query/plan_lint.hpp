// Plan-level lint: performance advisories over a planned query DAG
// (docs/LINT.md).
//
// Where the model/file/repository passes check VALIDITY, this pass
// checks EFFICIENCY: it inspects the shape of an evaluation DAG the
// planner produced and points out formulations that compute the right
// answer the slow way.  Findings are note-level — the plan will run and
// the result is identical either way.
//
// Rules:
//   perf.series-foldable — a Mean/Min/Max application is nested inside
//     another application of the SAME operator, and every load leaf of
//     the chain shares one (nonzero) metadata digest.  Such a chain
//     re-traverses the cell space once per nesting level; flattened into
//     a single n-ary application the engine folds all operands in ONE
//     batched sweep (docs/KERNELS.md), and with identical metadata the
//     integration phase also collapses to a single pass.
#pragma once

#include "lint/diagnostics.hpp"
#include "query/planner.hpp"

namespace cube::query {

/// Runs the plan-shape rules over `plan`, reporting into `sink`.
/// Locations are canonical sub-expressions, so the finding can be read
/// without the plan at hand.
void lint_plan(const QueryPlan& plan, lint::DiagnosticSink& sink);

}  // namespace cube::query
