// Static plan analysis: semantic + cost/memory analysis of a planned
// query DAG from METADATA ALONE (docs/QUERY.md, "Static plan analysis").
//
// The algebra's closure property makes every node's result shape a pure
// function of its operands' metadata, so compatibility, result geometry,
// traversal cost, and peak resident memory are all decidable before a
// single severity byte is loaded.  The analyzer reads
//   - metadata blobs through the repository resolver (digest-addressed,
//     interned, already required by planning), and
//   - the 56-byte CUBESEV1 headers of columnar operands
//     (stat_cube_sev_file)
// and NOTHING else — the io.sev.bytes_read counter stays untouched, which
// `cube_query --check` asserts on every run.
//
// Three families of findings report through the DiagnosticSink:
//
//   plan.metric-unit        error    operands of one application disagree
//                                    on a metric's unit — integration is
//                                    undefined; the runtime would throw
//   plan.integration-failed error    metadata integration rejects the
//                                    operands for another reason
//   plan.opaque-operand     warning  a legacy inline-metadata entry (or a
//                                    missing blob) hides an operand's
//                                    geometry; estimates are partial
//   plan.thread-shape       note     operands span different (rank,
//                                    thread id) sets (zero-extension)
//   plan.mixed-kind         note     original and derived experiments
//                                    mixed under one aggregation
//   cost.over-budget        error    predicted peak resident bytes exceed
//                                    AnalyzeOptions::budget_bytes
//   cost.summary            note     one-line cold/warm cost totals
//
// Locations are canonical sub-expressions (like plan_lint), so findings
// read without the plan at hand.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "lint/diagnostics.hpp"
#include "query/planner.hpp"

namespace cube::query {

struct AnalyzeOptions {
  /// Peak-resident budget in bytes; 0 disables the cost.over-budget gate.
  std::uint64_t budget_bytes = 0;
  /// Predict derived-cube cache hits (QueryOptions::use_cache).  The warm
  /// estimate equals the cold one when off.
  bool use_cache = true;
  /// Include the plan-shape advisories (perf.*) in the same sink.
  bool run_plan_lint = true;
  /// The operator options the executor will run with — integration rules
  /// decide result geometry, `storage` the intermediate representation.
  OperatorOptions operators;
};

/// Statically derived facts about one plan node.
struct NodeCost {
  /// Result geometry; meaningful only when geometry_known.
  bool geometry_known = false;
  std::size_t metrics = 0;
  std::size_t cnodes = 0;
  std::size_t threads = 0;
  std::uint64_t cells = 0;
  /// In-memory representation when this node executes: XML/Binary
  /// operands and operator results are dense; columnar operands follow
  /// their blob header's kind.
  StorageKind storage = StorageKind::Dense;
  /// Stored non-zeros (== cells for dense stores).  For operator results
  /// under sparse storage this is an upper bound.
  std::uint64_t nnz = 0;
  /// False when the numbers are estimates instead of exact predictions:
  /// an opaque operand, a Merge application (owner-masked kernels may
  /// skip cells), or sparse result storage (nnz is an upper bound).
  /// Remapped operands stay exact: the analyzer replicates the
  /// deterministic chunk/tile grid the scatter kernels count against.
  bool exact = true;
  /// Warm pass: this node is served from a cached derived cube, so its
  /// subtree never executes.
  bool cached = false;
  /// Apply nodes: cells the severity kernels visit — per operand, its
  /// stored non-zeros (kept sparse) or a dense sweep (identity: exactly
  /// its cells; remapped: rows re-counted per straddled grid chunk/tile);
  /// matches the sum of the algebra.kernel.* counters.
  std::uint64_t cells_traversed = 0;
  /// File bytes this node reads when executed (operand file or cached
  /// cube) — the QueryStats::bytes_loaded contribution.
  std::uint64_t bytes_loaded = 0;
  /// bytes_loaded plus the severity payload pages a columnar operand
  /// faults under the reduction.
  std::uint64_t bytes_faulted = 0;
  /// Resident bytes of this node's result while the DAG runs.
  std::uint64_t result_bytes = 0;
  /// Resolved result metadata (operands: their stored metadata; applies:
  /// the integrated set).  Null when unknown.
  std::shared_ptr<const Metadata> metadata;
};

/// DAG-wide cost totals under the executor's scheduling (every needed
/// node's result is held until the run finishes, so peak resident is the
/// sum of executed nodes' result bytes).
struct CostEstimate {
  std::size_t nodes_executed = 0;
  std::size_t operands_loaded = 0;
  std::size_t nodes_evaluated = 0;
  std::size_t cache_hits = 0;
  std::uint64_t cells_traversed = 0;
  std::uint64_t bytes_loaded = 0;
  std::uint64_t bytes_faulted = 0;
  /// Result bytes of all computed operator applications (root included).
  std::uint64_t intermediate_bytes = 0;
  std::uint64_t peak_resident_bytes = 0;
  bool exact = true;
};

struct PlanAnalysis {
  /// Parallel to plan.nodes.
  std::vector<NodeCost> nodes;
  /// Cost with an empty derived-cube cache (every needed node executes).
  CostEstimate cold;
  /// Cost with the repository's current cached cubes applied (equals
  /// `cold` when AnalyzeOptions::use_cache is off).
  CostEstimate warm;
  /// No error-level plan.* finding fired.
  bool compatible = true;
  /// Every estimate is an exact prediction (no opaque operands, no
  /// owner-masked merges, no sparse result storage).
  bool exact = true;
  std::uint64_t budget_bytes = 0;
  /// The enforced estimate (warm when use_cache, else cold) exceeds
  /// budget_bytes.
  bool over_budget = false;
};

/// Analyzes `plan` against `repo`, reporting findings into `sink`.
/// Touches metadata blobs and severity-blob HEADERS only — never severity
/// payload (io.sev.bytes_read is not advanced).  Never throws on
/// analysis findings; repository access problems (unreadable blob
/// headers) surface as diagnostics, not exceptions.
[[nodiscard]] PlanAnalysis analyze_plan(const QueryPlan& plan,
                                        const ExperimentRepository& repo,
                                        lint::DiagnosticSink& sink,
                                        const AnalyzeOptions& options = {});

}  // namespace cube::query
