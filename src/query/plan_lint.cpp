#include "query/plan_lint.hpp"

#include <cstdint>
#include <string>
#include <vector>

namespace cube::query {

namespace {

bool foldable_op(QueryExpr::Op op) noexcept {
  return op == QueryExpr::Op::Mean || op == QueryExpr::Op::Min ||
         op == QueryExpr::Op::Max;
}

/// Collects the leaves of the maximal same-op chain rooted at `index`:
/// children that apply the same operator are descended into, everything
/// else is a chain leaf.  Returns false if any leaf is not a plain load
/// (a different operator application feeds the chain — flattening would
/// change what gets cached, so we stay quiet).
bool collect_chain(const QueryPlan& plan, std::size_t index, QueryExpr::Op op,
                   std::vector<std::size_t>& leaves, std::size_t& depth,
                   std::size_t level) {
  depth = std::max(depth, level);
  for (std::size_t arg : plan.nodes[index].args) {
    const PlanNode& child = plan.nodes[arg];
    if (child.kind == PlanNode::Kind::Apply && child.op == op) {
      if (!collect_chain(plan, arg, op, leaves, depth, level + 1)) {
        return false;
      }
    } else if (child.kind == PlanNode::Kind::Load) {
      leaves.push_back(arg);
    } else {
      return false;
    }
  }
  return true;
}

}  // namespace

void lint_plan(const QueryPlan& plan, lint::DiagnosticSink& sink) {
  // A node is a chain ROOT if no parent applies the same operator; only
  // roots report, so one nested chain yields one finding.
  std::vector<bool> same_op_child(plan.nodes.size(), false);
  for (const PlanNode& node : plan.nodes) {
    if (node.kind != PlanNode::Kind::Apply || !foldable_op(node.op)) continue;
    for (std::size_t arg : node.args) {
      const PlanNode& child = plan.nodes[arg];
      if (child.kind == PlanNode::Kind::Apply && child.op == node.op) {
        same_op_child[arg] = true;
      }
    }
  }

  for (std::size_t i = 0; i < plan.nodes.size(); ++i) {
    const PlanNode& node = plan.nodes[i];
    if (node.kind != PlanNode::Kind::Apply || !foldable_op(node.op)) continue;
    if (same_op_child[i]) continue;

    std::vector<std::size_t> leaves;
    std::size_t depth = 0;
    if (!collect_chain(plan, i, node.op, leaves, depth, 0)) continue;
    if (depth == 0 || leaves.size() < 3) continue;  // not a nested chain

    // The advisory only holds when the whole series shares one metadata
    // blob: that is what lets the engine integrate once and fold the
    // severity phase in a single batched sweep.
    const std::uint64_t digest = plan.nodes[leaves.front()].operand.meta_digest;
    if (digest == 0) continue;  // legacy inline metadata — unknowable
    bool uniform = true;
    for (std::size_t leaf : leaves) {
      if (plan.nodes[leaf].operand.meta_digest != digest) {
        uniform = false;
        break;
      }
    }
    if (!uniform) continue;

    sink.note(
        "perf.series-foldable", plan.nodes[i].canonical,
        "nested " + std::string(op_name(node.op)) + " chain folds " +
            std::to_string(leaves.size()) +
            " operands with identical metadata through " +
            std::to_string(depth + 1) + " applications",
        "flatten into one n-ary " + std::string(op_name(node.op)) +
            "(...) so the engine integrates once and reduces the series in "
            "a single batched sweep");
  }
}

}  // namespace cube::query
