// Query planner: resolves a QueryExpr against an ExperimentRepository
// into an evaluation DAG.
//
// Planning proceeds in three steps:
//  1. SELECTOR RESOLUTION — id()/attr()/series() leaves (and bare refs,
//     which act like id()) are matched against the repository index and
//     replaced by concrete operand lists.  attr() and series() skip
//     cache entries (entries carrying "cube::cache-key"), so derived
//     cubes the engine persisted never feed back into aggregates;
//     id()/refs address any entry exactly, cached cubes included.
//  2. CANONICALIZATION + CSE — every node gets a canonical string over
//     RESOLVED operands (ids + content digests, not surface syntax);
//     structurally identical subexpressions collapse into one DAG node,
//     so mean(attr(run=before)) appearing twice is planned, loaded, and
//     evaluated once.
//  3. CACHE KEYS — each node gets a content-addressed digest: a load
//     node's key is the FNV-1a digest of its file's bytes; an apply
//     node's key hashes (format version, operator, operator options,
//     child keys).  Re-storing different data under the same id changes
//     the file digest and therefore every downstream key.
#pragma once

#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include "algebra/operators.hpp"
#include "io/repository.hpp"
#include "query/query_expr.hpp"

namespace cube::query {

/// Attribute under which the engine records a derived cube's cache key
/// when persisting it into the repository.
inline constexpr const char* kCacheKeyAttribute = "cube::cache-key";
/// Attribute recording the canonical sub-expression a cached cube answers.
inline constexpr const char* kCacheExprAttribute = "cube::cache-expr";
/// Attribute listing the content digests (space-separated 016x hex) of the
/// leaf operand files a cached cube was computed from.  The analysis
/// server's shared result cache is keyed purely by such digests, so lint
/// can flag entries whose operands no longer resolve to any repository
/// file (rule repo.stale-cache-operand) — dead weight a digest-keyed
/// cache can never serve again.
inline constexpr const char* kCacheOperandsAttribute = "cube::cache-operands";

/// A stored experiment an evaluation will read.
struct ResolvedOperand {
  std::string id;               ///< repository id
  std::filesystem::path path;   ///< absolute file path
  RepoFormat format = RepoFormat::Xml;
  std::uint64_t digest = 0;     ///< FNV-1a of the file bytes
  std::uintmax_t bytes = 0;     ///< file size
  /// Structural digest of the referenced metadata blob (0 for a legacy
  /// inline-metadata entry).  Mixed into the load key: the key must change
  /// if an entry is repointed at different metadata even though the
  /// experiment file bytes (attrs + digest + severity) happen to collide.
  std::uint64_t meta_digest = 0;
  /// Digest of the referenced CUBESEV1 severity blob (0 when the entry
  /// carries its severity inline).  The static analyzer stats the blob
  /// header through this to learn exact storage kind and nnz without
  /// loading severity.
  std::uint64_t sev_digest = 0;
};

/// One DAG node, either a repository load or an operator application.
struct PlanNode {
  enum class Kind { Load, Apply };
  Kind kind = Kind::Load;

  ResolvedOperand operand;              ///< Kind::Load
  QueryExpr::Op op = QueryExpr::Op::Mean;
  std::vector<std::size_t> args;        ///< children, Kind::Apply

  std::string canonical;  ///< canonical sub-expression over resolved ids
  std::uint64_t key = 0;  ///< content-addressed cache key
};

/// Evaluation DAG in topological order (children precede parents; the
/// root is the last node).
struct QueryPlan {
  std::vector<PlanNode> nodes;
  std::size_t root = 0;
  /// Subexpression occurrences folded away by CSE.
  std::size_t cse_reused = 0;
};

/// Plans `expr` against `repo`.  Throws OperationError on an unresolvable
/// selector (no match, or an ambiguous match where exactly one experiment
/// is required) and Error on unknown ids.
[[nodiscard]] QueryPlan plan_query(const QueryExpr& expr,
                                   const ExperimentRepository& repo,
                                   const OperatorOptions& options = {});

}  // namespace cube::query
