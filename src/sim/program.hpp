// Program model for the message-passing simulator.
//
// A simulated application is one straight-line Program per process rank:
// a sequence of region enter/leave markers, compute blocks carrying an
// abstract workload, point-to-point messages, and collective operations.
// The engine (sim/engine.hpp) executes all ranks against a virtual clock.
#pragma once

#include <string>
#include <vector>

#include "common/types.hpp"
#include "counters/synth.hpp"

namespace cube::sim {

/// Source-code region of the simulated application.
struct RegionInfo {
  std::string name;
  std::string file;
  long begin_line = -1;
  long end_line = -1;
};

/// Interning table of regions shared by all ranks of one application.
class RegionTable {
 public:
  /// Returns the id of the region with this name, creating it on first use.
  std::size_t intern(const std::string& name, const std::string& file = {},
                     long begin_line = -1, long end_line = -1);
  [[nodiscard]] const RegionInfo& operator[](std::size_t id) const {
    return regions_.at(id);
  }
  [[nodiscard]] std::size_t size() const noexcept { return regions_.size(); }
  /// Id lookup by name; kNoIndex if unknown.
  [[nodiscard]] std::size_t find(const std::string& name) const;
  [[nodiscard]] const std::vector<RegionInfo>& all() const noexcept {
    return regions_;
  }

 private:
  std::vector<RegionInfo> regions_;
};

/// Kinds of simulated actions.
enum class ActionKind {
  Enter,     ///< enter a user region
  Leave,     ///< leave the innermost user region
  Compute,   ///< local computation on the master thread
  ParallelCompute,  ///< fork-join computation over all process threads
  Send,      ///< point-to-point send to `peer` with `tag`
  Recv,      ///< point-to-point receive from `peer` with `tag`
  Barrier,   ///< barrier over all ranks
  AllToAll,  ///< all-to-all (NxN) exchange, `bytes` per pair
  Reduce,    ///< reduction to root `peer`
  Bcast,     ///< broadcast from root `peer`
};

/// One step of a rank's program.
struct Action {
  ActionKind kind;
  std::size_t region = kNoIndex;  ///< Enter only
  double seconds = 0.0;           ///< Compute only (pre-noise duration)
  double spread = 0.0;            ///< ParallelCompute: thread imbalance
  counters::Workload work;        ///< Compute only (seconds filled by engine)
  int peer = -1;                  ///< Send dst / Recv src / Reduce root
  int tag = 0;                    ///< Send / Recv
  double bytes = 0.0;             ///< message or per-pair volume
};

/// The straight-line program of one rank.
struct Program {
  int rank = 0;
  std::vector<Action> actions;
};

/// Convenience builder with nesting validation.
class ProgramBuilder {
 public:
  ProgramBuilder(RegionTable& regions, int rank);

  /// Enters a region (interned by name).
  ProgramBuilder& enter(const std::string& region_name,
                        const std::string& file = {}, long begin_line = -1,
                        long end_line = -1);
  ProgramBuilder& leave();

  /// Computation of `seconds` performing `flops` floating-point operations
  /// over `mem_refs` references to a `working_set`-byte data set.
  ProgramBuilder& compute(double seconds, double flops = 0.0,
                          double mem_refs = 0.0, double working_set = 0.0);

  /// Fork-join parallel computation: every thread of the process works
  /// `seconds` perturbed by up to +-`spread` (relative), the process
  /// continues after the slowest thread (implicit join barrier).  The
  /// workload is per thread.
  ProgramBuilder& parallel_compute(double seconds, double spread,
                                   double flops = 0.0, double mem_refs = 0.0,
                                   double working_set = 0.0);

  ProgramBuilder& send(int dst, int tag, double bytes);
  ProgramBuilder& recv(int src, int tag);
  ProgramBuilder& barrier();
  ProgramBuilder& alltoall(double bytes_per_pair);
  ProgramBuilder& reduce(int root, double bytes);
  ProgramBuilder& bcast(int root, double bytes);

  /// Finishes the program; throws ValidationError on unbalanced regions.
  [[nodiscard]] Program take();

 private:
  RegionTable* regions_;
  Program program_;
  std::size_t open_regions_ = 0;
};

}  // namespace cube::sim
