#include "sim/profile.hpp"

namespace cube::sim {

CallProfile::CallProfile(std::size_t num_ranks) : num_ranks_(num_ranks) {}

std::size_t CallProfile::child(std::size_t parent, std::size_t region) {
  if (parent == kNoIndex) {
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
      if (nodes_[i].parent == kNoIndex && nodes_[i].region == region) {
        return i;
      }
    }
  } else {
    for (const std::size_t c : nodes_[parent].children) {
      if (nodes_[c].region == region) return c;
    }
  }
  ProfileNode node;
  node.region = region;
  node.parent = parent;
  nodes_.push_back(node);
  const std::size_t id = nodes_.size() - 1;
  if (parent != kNoIndex) nodes_[parent].children.push_back(id);
  time_.emplace_back(num_ranks_, 0.0);
  work_.emplace_back(num_ranks_);
  visits_.emplace_back(num_ranks_, 0);
  return id;
}

void CallProfile::add_time(std::size_t node, int rank, double seconds) {
  time_[node][static_cast<std::size_t>(rank)] += seconds;
}

void CallProfile::add_work(std::size_t node, int rank,
                           const counters::Workload& work) {
  work_[node][static_cast<std::size_t>(rank)] += work;
}

void CallProfile::add_visit(std::size_t node, int rank) {
  ++visits_[node][static_cast<std::size_t>(rank)];
}

std::vector<std::size_t> CallProfile::roots() const {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].parent == kNoIndex) out.push_back(i);
  }
  return out;
}

double CallProfile::inclusive_time(std::size_t node, int rank) const {
  double sum = time(node, rank);
  for (const std::size_t c : nodes_[node].children) {
    sum += inclusive_time(c, rank);
  }
  return sum;
}

}  // namespace cube::sim
