#include "sim/apps/hybrid.hpp"

namespace cube::sim {

std::vector<Program> build_hybrid_stencil(RegionTable& regions,
                                          const ClusterConfig& cluster,
                                          const HybridConfig& config) {
  const int np = cluster.num_ranks();
  std::vector<Program> programs;
  programs.reserve(static_cast<std::size_t>(np));
  for (int r = 0; r < np; ++r) {
    ProgramBuilder b(regions, r);
    b.enter("main", "hybrid.cpp", 1, 120);
    b.enter("init_grid", "hybrid.cpp", 10, 30);
    b.compute(2e-3, 2e-3 * 200e6, 2e-3 * 150e6, 512 * 1024);
    b.leave();

    for (int k = 0; k < config.rounds; ++k) {
      // Fork-join update of the local grid: all threads work, imbalanced.
      b.enter("update_grid", "hybrid.cpp", 40, 80);
      b.parallel_compute(config.compute_seconds, config.thread_imbalance,
                         config.compute_seconds * 300e6,
                         config.compute_seconds * 180e6, 1024 * 1024);
      b.leave();

      // Master threads exchange boundaries (non-periodic chain).
      b.enter("exchange_boundaries", "hybrid.cpp", 85, 110);
      if (r + 1 < np) b.send(r + 1, 3000 + k, config.halo_bytes);
      if (r > 0) {
        b.recv(r - 1, 3000 + k);
        b.send(r - 1, 4000 + k, config.halo_bytes);
      }
      if (r + 1 < np) b.recv(r + 1, 4000 + k);
      b.leave();
    }

    b.enter("residual_norm", "hybrid.cpp", 112, 118);
    b.reduce(0, 128);
    b.leave();
    b.leave();  // main
    programs.push_back(b.take());
  }
  return programs;
}

}  // namespace cube::sim
