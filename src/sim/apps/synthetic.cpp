#include "sim/apps/synthetic.hpp"

#include "common/error.hpp"

namespace cube::sim {

std::vector<Program> build_pingpong(RegionTable& regions,
                                    const ClusterConfig& cluster, int rounds,
                                    double bytes) {
  if (cluster.num_ranks() != 2) {
    throw OperationError("pingpong requires exactly 2 ranks");
  }
  std::vector<Program> programs;
  for (int r = 0; r < 2; ++r) {
    ProgramBuilder b(regions, r);
    b.enter("main", "pingpong.cpp", 1, 60);
    b.enter("pingpong", "pingpong.cpp", 10, 50);
    for (int k = 0; k < rounds; ++k) {
      if (r == 0) {
        b.send(1, k, bytes);
        b.recv(1, 10000 + k);
      } else {
        b.recv(0, k);
        b.send(0, 10000 + k, bytes);
      }
    }
    b.leave();
    b.leave();
    programs.push_back(b.take());
  }
  return programs;
}

std::vector<Program> build_imbalanced_barrier(RegionTable& regions,
                                              const ClusterConfig& cluster,
                                              int rounds, double base_seconds,
                                              double imbalance) {
  const int np = cluster.num_ranks();
  std::vector<Program> programs;
  for (int r = 0; r < np; ++r) {
    const double factor =
        np > 1 ? 1.0 + imbalance * static_cast<double>(r) / (np - 1) : 1.0;
    ProgramBuilder b(regions, r);
    b.enter("main", "kernel.cpp", 1, 40);
    for (int k = 0; k < rounds; ++k) {
      b.enter("work", "kernel.cpp", 10, 20);
      b.compute(base_seconds * factor, base_seconds * factor * 200e6,
                base_seconds * factor * 100e6, 1024 * 1024);
      b.leave();
      b.enter("sync", "kernel.cpp", 25, 27);
      b.barrier();
      b.leave();
    }
    b.leave();
    programs.push_back(b.take());
  }
  return programs;
}

std::vector<Program> build_noisy_compute(RegionTable& regions,
                                         const ClusterConfig& cluster,
                                         int rounds, double base_seconds) {
  const int np = cluster.num_ranks();
  std::vector<Program> programs;
  for (int r = 0; r < np; ++r) {
    ProgramBuilder b(regions, r);
    b.enter("main", "noisy.cpp", 1, 30);
    for (int k = 0; k < rounds; ++k) {
      b.enter("work", "noisy.cpp", 8, 18);
      b.compute(base_seconds, base_seconds * 300e6, base_seconds * 120e6,
                512 * 1024);
      b.leave();
    }
    b.enter("final_sync", "noisy.cpp", 22, 24);
    b.barrier();
    b.leave();
    b.leave();
    programs.push_back(b.take());
  }
  return programs;
}

}  // namespace cube::sim
