#include "sim/apps/pescan.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "common/rng.hpp"

namespace cube::sim {

namespace {

// Workload densities of the numeric phases (per simulated second).
constexpr double kFftFlopsPerSec = 400e6;
constexpr double kFftRefsPerSec = 160e6;
constexpr double kFftWorkingSet = 4.0 * 1024 * 1024;
constexpr double kPotFlopsPerSec = 250e6;
constexpr double kPotRefsPerSec = 210e6;
constexpr double kPotWorkingSet = 2.0 * 1024 * 1024;

}  // namespace

std::vector<Program> build_pescan(RegionTable& regions,
                                  const ClusterConfig& cluster,
                                  const PescanConfig& config) {
  const int np = cluster.num_ranks();
  std::vector<Program> programs;
  programs.reserve(static_cast<std::size_t>(np));

  for (int r = 0; r < np; ++r) {
    ProgramBuilder b(regions, r);
    // Per-(rank, iteration) jitter stream; identical across code versions so
    // before/after comparisons differ only in the barriers.
    SplitMix64 jitter(derive_seed(config.app_seed,
                                  static_cast<std::uint64_t>(r)));
    // Static per-rank skew in [-0.5, 0.5]: domain-decomposition imbalance.
    // Smooth (sinusoidal) along the process ring so that neighbor coupling
    // in the halo exchange transports only small skew differences; the
    // antipodal +d/-d phases of one iteration can then cancel once the
    // barriers are gone.
    const double skew =
        0.5 * std::sin(2.0 * std::numbers::pi * static_cast<double>(r) /
                       static_cast<double>(np));

    b.enter("main", "pescan.cpp", 1, 400);
    b.enter("init_potential", "pescan.cpp", 40, 95);
    b.compute(config.init_seconds, config.init_seconds * kPotFlopsPerSec,
              config.init_seconds * kPotRefsPerSec, kPotWorkingSet);
    b.leave();

    b.enter(kPescanSolverRegion, "pescan.cpp", 100, 310);
    for (int k = 0; k < config.iterations; ++k) {
      // Antipodal displacement: +d in the forward FFT, -d in the backward
      // FFT of the same iteration.
      const double d = config.imbalance_seconds * skew;
      const double j1 = config.jitter_seconds * jitter.normal();
      const double j2 = config.jitter_seconds * jitter.normal();

      const double fwd = std::max(0.1e-3, config.fft_seconds + d + j1);
      b.enter("fft_forward", "fft.cpp", 10, 120);
      b.compute(fwd, fwd * kFftFlopsPerSec, fwd * kFftRefsPerSec,
                kFftWorkingSet);
      b.leave();

      // Halo exchange after the imbalanced forward FFT.  Every iteration a
      // small eager boundary plane travels down the ring; every fourth
      // iteration the full boundary block is exchanged both ways, the
      // backward leg above the rendezvous threshold.  Without the barriers
      // this exchange is where part of the FFT imbalance materializes as
      // Late Sender / Late Receiver waiting (Figure 2's P2P migration).
      const int next = (r + 1) % np;
      const int prev = (r + np - 1) % np;
      b.enter("exchange_halo", "comm.cpp", 20, 80);
      b.send(next, 100 + k, config.halo_fwd_bytes);
      b.recv(prev, 100 + k);
      if (k % 4 == 3) {
        // Even/odd ordering avoids the rendezvous deadlock a naive
        // send-first ring would produce with synchronous large-message
        // sends (as it would under real MPI).
        if (r % 2 == 0) {
          b.send(prev, 500 + k, config.halo_bwd_bytes);
          b.recv(next, 500 + k);
        } else {
          b.recv(next, 500 + k);
          b.send(prev, 500 + k, config.halo_bwd_bytes);
        }
      }
      b.leave();

      // The original code flushed communication buffers with a barrier
      // after the asynchronous halo exchange of each imbalanced FFT phase
      // (introduced against buffer overflow on an IBM platform;
      // unnecessary on this cluster).
      if (config.with_barriers) {
        b.enter("flush_buffers", "pescan.cpp", 150, 152);
        b.barrier();
        b.leave();
      }

      const double pot = std::max(0.1e-3, config.potential_seconds);
      b.enter("apply_potential", "pescan.cpp", 180, 230);
      b.compute(pot, pot * kPotFlopsPerSec, pot * kPotRefsPerSec,
                kPotWorkingSet);
      b.leave();

      const double bwd = std::max(0.1e-3, config.fft_seconds - d + j2);
      b.enter("fft_backward", "fft.cpp", 130, 240);
      b.compute(bwd, bwd * kFftFlopsPerSec, bwd * kFftRefsPerSec,
                kFftWorkingSet);
      b.leave();

      if (config.with_barriers) {
        b.enter("flush_buffers", "pescan.cpp", 150, 152);
        b.barrier();
        b.leave();
      }

      // Block redistribution ahead of the transpose.  With the barriers in
      // place the processes arrive here synchronized and the exchange is
      // wait-free; once the barriers are removed, the residual displacement
      // of the FFT phases materializes here as Late Sender — one leg of the
      // waiting-time migration visible in Figure 2.
      b.enter("redistribute", "comm.cpp", 90, 130);
      b.send(next, 900 + k, config.redist_bytes);
      b.recv(prev, 900 + k);
      b.leave();

      b.enter("transpose", "fft.cpp", 250, 300);
      b.alltoall(config.alltoall_bytes);
      b.leave();

      b.enter("dot_product", "pescan.cpp", 260, 275);
      b.reduce(0, config.reduce_bytes);
      b.leave();

      // Rank 0 broadcasts the updated spectrum shift.  The root leaves the
      // preceding reduction last (it gathers the partial sums), so the
      // other ranks incur a small Late Broadcast wait here.
      b.enter("update_shift", "pescan.cpp", 280, 292);
      b.bcast(0, config.reduce_bytes);
      b.leave();
    }
    b.leave();  // solver

    b.enter("write_eigenstates", "pescan.cpp", 320, 360);
    b.compute(5e-3, 0.0, 5e-3 * kPotRefsPerSec, kPotWorkingSet);
    b.leave();
    b.leave();  // main

    programs.push_back(b.take());
  }
  return programs;
}

}  // namespace cube::sim
