// Synthetic PESCAN (paper §5.1).
//
// PESCAN computes interior eigenvalues of a large Hermitian matrix with a
// preconditioned conjugate-gradient eigensolver over the folded spectrum;
// its core is matrix-vector products done via FFT.  The paper's unoptimized
// version carried MPI barriers (introduced against buffer overflow on an
// IBM platform) that were unnecessary on the Linux cluster; removing them
// gave ~16 % solver speedup, with waiting times partly migrating into
// point-to-point and all-to-all operations (Figure 2).
//
// This synthetic reproduction keeps the performance-relevant skeleton: an
// iterative solver whose two FFT phases carry *antipodal* load imbalance
// (+d then -d per rank and iteration).  With barriers after each phase the
// imbalance is materialized twice per iteration as Wait-at-Barrier; without
// them the displacements largely cancel before the next all-to-all, and
// only the non-antipodal jitter materializes downstream (waiting-time
// migration to Late Sender and Wait-at-NxN).
#pragma once

#include <cstdint>
#include <vector>

#include "sim/config.hpp"
#include "sim/program.hpp"

namespace cube::sim {

/// Tunables of the synthetic PESCAN run.
struct PescanConfig {
  int iterations = 25;
  bool with_barriers = true;   ///< the unoptimized version
  double init_seconds = 20e-3;
  double fft_seconds = 6e-3;        ///< balanced part of each FFT phase
  double potential_seconds = 3e-3;  ///< apply-potential phase
  double imbalance_seconds = 3.2e-3;  ///< antipodal per-rank skew amplitude
  double jitter_seconds = 0.04e-3;    ///< non-antipodal random skew
  double halo_fwd_bytes = 12.0 * 1024;   ///< eager-path halo message
  double halo_bwd_bytes = 24.0 * 1024;   ///< rendezvous-path halo message
  double redist_bytes = 8.0 * 1024;      ///< pre-transpose redistribution
  double alltoall_bytes = 8.0 * 1024;    ///< FFT transpose volume per pair
  double reduce_bytes = 64;              ///< dot-product partial sums
  std::uint64_t app_seed = 7;  ///< seed of the deterministic skew pattern
};

/// Builds one program per rank of `cluster`.
[[nodiscard]] std::vector<Program> build_pescan(RegionTable& regions,
                                                const ClusterConfig& cluster,
                                                const PescanConfig& config);

/// Name of the solver region (the paper's speedup is measured on it).
inline constexpr const char* kPescanSolverRegion = "solve_pcg";

}  // namespace cube::sim
