// Synthetic hybrid MPI + OpenMP stencil.
//
// The paper's scope is "message-passing and/or multithreaded applications"
// and EXPERT analyzes "MPI and/or OpenMP traces"; this mini-app exercises
// that combination: each MPI process runs fork-join parallel compute
// regions with per-thread load imbalance (the source of the Idle Threads
// metric), while the master threads exchange halos over MPI.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/config.hpp"
#include "sim/program.hpp"

namespace cube::sim {

/// Tunables of the hybrid stencil.
struct HybridConfig {
  int rounds = 10;
  double compute_seconds = 4e-3;   ///< per-thread work per round
  double thread_imbalance = 0.25;  ///< relative spread across threads
  double halo_bytes = 8.0 * 1024;
  std::uint64_t app_seed = 21;
};

/// Builds one program per rank; the cluster's threads_per_proc determines
/// the fork width at run time.
[[nodiscard]] std::vector<Program> build_hybrid_stencil(
    RegionTable& regions, const ClusterConfig& cluster,
    const HybridConfig& config);

}  // namespace cube::sim
