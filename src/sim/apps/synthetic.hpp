// Small synthetic kernels for tests, examples, and micro benches.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/config.hpp"
#include "sim/program.hpp"

namespace cube::sim {

/// Two ranks exchanging `rounds` ping-pong messages of `bytes` each inside
/// a "pingpong" region.  Requires a 2-rank cluster.
[[nodiscard]] std::vector<Program> build_pingpong(RegionTable& regions,
                                                  const ClusterConfig& cluster,
                                                  int rounds, double bytes);

/// All ranks compute an imbalanced block (rank r works
/// `base * (1 + imbalance * r / (np-1))` seconds), then hit a barrier;
/// repeated `rounds` times.  The canonical Wait-at-Barrier generator.
[[nodiscard]] std::vector<Program> build_imbalanced_barrier(
    RegionTable& regions, const ClusterConfig& cluster, int rounds,
    double base_seconds, double imbalance);

/// A balanced compute loop with noise-sensitive duration, used by the
/// mean-operator example: run-to-run variation comes solely from
/// NoiseConfig.
[[nodiscard]] std::vector<Program> build_noisy_compute(
    RegionTable& regions, const ClusterConfig& cluster, int rounds,
    double base_seconds);

}  // namespace cube::sim
