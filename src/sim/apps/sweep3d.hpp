// Synthetic SWEEP3D (paper §5.2).
//
// SWEEP3D solves a 3-D neutron transport problem with wavefront sweeps over
// a 2-D process grid.  The pipelined wavefront makes downstream ranks block
// in MPI_Recv on upstream results (Late Sender), and the receive-side
// buffer handling streams message planes through the cache — the paper
// found "an above average cache miss rate ... in MPI calls" that merging
// EXPERT's trace metrics with CONE's counter profile puts in context:
// most of the time in those calls was waiting anyway.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/config.hpp"
#include "sim/program.hpp"

namespace cube::sim {

/// Tunables of the synthetic SWEEP3D run.
struct Sweep3dConfig {
  int grid_px = 4;  ///< process grid width;  px*py must equal num_ranks
  int grid_py = 4;  ///< process grid height
  int sweeps = 8;   ///< octant sweeps (direction alternates)
  double cell_seconds = 2.5e-3;  ///< per-rank compute per sweep step
  double imbalance = 0.12;       ///< relative compute variation
  double msg_bytes = 256.0 * 1024;  ///< boundary plane volume per hop
  std::uint64_t app_seed = 11;
};

/// Builds one program per rank; also assigns (x, y) grid coordinates that
/// the profiler/analyzer attach to the system dimension as topology.
[[nodiscard]] std::vector<Program> build_sweep3d(RegionTable& regions,
                                                 const ClusterConfig& cluster,
                                                 const Sweep3dConfig& config);

}  // namespace cube::sim
