#include "sim/apps/sweep3d.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace cube::sim {

namespace {

constexpr double kCellFlopsPerSec = 350e6;
constexpr double kCellRefsPerSec = 230e6;
constexpr double kCellWorkingSet = 24.0 * 1024;  // blocked kernel, cache-resident

}  // namespace

std::vector<Program> build_sweep3d(RegionTable& regions,
                                   const ClusterConfig& cluster,
                                   const Sweep3dConfig& config) {
  const int np = cluster.num_ranks();
  if (config.grid_px * config.grid_py != np) {
    throw OperationError("sweep3d grid " + std::to_string(config.grid_px) +
                         "x" + std::to_string(config.grid_py) +
                         " does not cover " + std::to_string(np) + " ranks");
  }
  const int px = config.grid_px;

  std::vector<Program> programs;
  programs.reserve(static_cast<std::size_t>(np));
  for (int r = 0; r < np; ++r) {
    const int x = r % px;
    const int y = r / px;
    ProgramBuilder b(regions, r);
    SplitMix64 jitter(derive_seed(config.app_seed,
                                  static_cast<std::uint64_t>(r)));

    b.enter("main", "sweep3d.cpp", 1, 250);
    b.enter("initialize", "sweep3d.cpp", 20, 60);
    b.compute(15e-3, 15e-3 * kCellFlopsPerSec, 15e-3 * kCellRefsPerSec,
              kCellWorkingSet);
    b.leave();

    b.enter("sweep", "sweep.cpp", 10, 180);
    for (int s = 0; s < config.sweeps; ++s) {
      // Alternate the four octant directions.
      const bool x_fwd = (s % 2) == 0;
      const bool y_fwd = (s / 2) % 2 == 0;
      const int x_up = x_fwd ? x - 1 : x + 1;  // upstream neighbor column
      const int y_up = y_fwd ? y - 1 : y + 1;
      const int x_dn = x_fwd ? x + 1 : x - 1;
      const int y_dn = y_fwd ? y + 1 : y - 1;
      const auto rank_of = [px](int cx, int cy) { return cy * px + cx; };

      b.enter("sweep_octant", "sweep.cpp", 30, 150);
      if (x_up >= 0 && x_up < px) {
        b.recv(rank_of(x_up, y), 1000 + s);
      }
      if (y_up >= 0 && y_up < config.grid_py) {
        b.recv(rank_of(x, y_up), 2000 + s);
      }
      const double cell = std::max(
          0.2e-3,
          config.cell_seconds *
              (1.0 + config.imbalance * jitter.normal()));
      b.enter("compute_cell", "sweep.cpp", 60, 120);
      b.compute(cell, cell * kCellFlopsPerSec, cell * kCellRefsPerSec,
                kCellWorkingSet);
      b.leave();
      if (x_dn >= 0 && x_dn < px) {
        b.send(rank_of(x_dn, y), 1000 + s, config.msg_bytes);
      }
      if (y_dn >= 0 && y_dn < config.grid_py) {
        b.send(rank_of(x, y_dn), 2000 + s, config.msg_bytes);
      }
      b.leave();
    }
    b.leave();  // sweep

    b.enter("global_flux_sum", "sweep3d.cpp", 200, 215);
    b.reduce(0, 256);
    b.leave();
    b.leave();  // main

    programs.push_back(b.take());
  }
  return programs;
}

}  // namespace cube::sim
