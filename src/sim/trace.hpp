// Event-trace model and file format (EPILOG-like).
//
// The simulator records time-stamped events — region enter/exit, message
// send/receive, collective enter/exit — per location, like the EPILOG
// traces EXPERT analyzes.  Optionally every Enter/Exit record carries the
// location's cumulative hardware-counter values; that mode reproduces the
// trace-file blow-up the paper's §5.2 merge workflow eliminates
// ("recording one or more hardware-counter values as part of nearly every
// event record can increase trace-file size dramatically").
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "sim/config.hpp"
#include "sim/program.hpp"

namespace cube::sim {

/// Trace record types.
enum class EventType : std::uint8_t {
  Enter,      ///< entered region `region`
  Exit,       ///< left region `region`
  Send,       ///< message handed to the network (inside MPI_Send)
  Recv,       ///< message delivered (inside MPI_Recv)
  CollEnter,  ///< entered a collective operation
  CollExit,   ///< left a collective operation
  Parallel,   ///< fork-join parallel region completed (per-thread times)
};

/// Collective kinds for CollEnter/CollExit.
enum class CollKind : std::uint8_t { None, Barrier, AllToAll, Reduce, Bcast };

/// One trace record.
struct TraceEvent {
  EventType type = EventType::Enter;
  std::int32_t rank = 0;
  double time = 0.0;
  std::uint32_t region = 0;        ///< region id (MPI ops use MPI regions)
  std::int32_t peer = -1;          ///< Send dst / Recv src / Reduce root
  std::int32_t tag = 0;
  double bytes = 0.0;
  std::uint32_t coll_instance = 0; ///< matches instances across ranks
  CollKind coll = CollKind::None;
  /// Cumulative counter values (one per traced event), present only when
  /// MonitorConfig::trace_counters is enabled.
  std::vector<double> counters;
  /// Parallel events only: busy seconds per thread of the owning process;
  /// `time` is the join time, `time - max(thread_seconds)` the fork time.
  std::vector<double> thread_seconds;
};

/// A complete trace: events in per-rank program order plus the metadata
/// the analyzer needs.
struct Trace {
  RegionTable regions;
  ClusterConfig cluster;
  double eager_threshold = 0.0;  ///< protocol switch used during the run
  std::vector<std::string> counter_names;  ///< payload schema, may be empty
  std::vector<TraceEvent> events;

  /// Serialized size in bytes (same as the file write produces).
  [[nodiscard]] std::size_t byte_size() const;
};

/// Binary trace file I/O.
void write_trace_file(const Trace& trace, const std::string& path);
[[nodiscard]] Trace read_trace_file(const std::string& path);
/// In-memory serialization (used by byte_size and the tests).
[[nodiscard]] std::string serialize_trace(const Trace& trace);
[[nodiscard]] Trace deserialize_trace(std::string_view data);

}  // namespace cube::sim
