// Discrete-event engine executing one Program per rank against a virtual
// clock, with a network cost model, optional system noise, optional event
// tracing (with instrumentation dilation), and call-path profiling.
//
// Semantics:
//  * Compute advances the rank's clock by the (noise-perturbed) duration.
//  * Sends up to the eager threshold are buffered: the sender pays software
//    overhead + injection and proceeds; the message becomes available at
//    the receiver after latency + transfer.  Larger sends use a rendezvous
//    protocol: the sender blocks until the receiver has posted the
//    matching receive (the source of the Late Receiver pattern).
//  * A receive blocks until its message is available (Late Sender).
//  * Barriers / all-to-alls complete for everyone after the last arrival
//    (Wait at Barrier, Wait at N x N); barrier exits are slightly
//    staggered (Barrier Completion).  A reduction delays only its root
//    (Early Reduce).
//  * With tracing enabled every recorded event dilates the owning rank's
//    clock by the probe overhead; §5.1's final speedup measurement runs
//    untraced for exactly this reason.
#pragma once

#include <vector>

#include "sim/config.hpp"
#include "sim/profile.hpp"
#include "sim/program.hpp"
#include "sim/trace.hpp"

namespace cube::sim {

/// Everything one simulated run produces.
struct RunResult {
  CallProfile profile{0};
  Trace trace;  ///< events empty unless MonitorConfig::trace
  RegionTable regions;  ///< includes the interned MPI_* regions
  ClusterConfig cluster;
  std::vector<double> finish_times;  ///< per-rank completion
  double makespan = 0.0;             ///< max finish time
};

/// Executes programs under a configuration.  Deterministic for equal
/// inputs and seeds.
class Engine {
 public:
  explicit Engine(SimConfig config);

  /// Runs one application: `programs` must contain exactly
  /// config.cluster.num_ranks() programs with ranks 0..N-1.  Throws
  /// OperationError on deadlock or mismatched collective sequences.
  [[nodiscard]] RunResult run(const RegionTable& regions,
                              std::vector<Program> programs) const;

  [[nodiscard]] const SimConfig& config() const noexcept { return config_; }

 private:
  SimConfig config_;
};

/// Region names the engine interns for communication operations.
inline constexpr const char* kMpiSendRegion = "MPI_Send";
inline constexpr const char* kMpiRecvRegion = "MPI_Recv";
inline constexpr const char* kMpiBarrierRegion = "MPI_Barrier";
inline constexpr const char* kMpiAlltoallRegion = "MPI_Alltoall";
inline constexpr const char* kMpiReduceRegion = "MPI_Reduce";
inline constexpr const char* kMpiBcastRegion = "MPI_Bcast";
/// Region representing fork-join parallel sections of hybrid applications.
inline constexpr const char* kOmpParallelRegion = "!$omp parallel";

}  // namespace cube::sim
