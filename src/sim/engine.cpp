#include "sim/engine.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <map>
#include <optional>
#include <tuple>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace cube::sim {

namespace {

using MsgKey = std::tuple<int, int, int>;  // (src, dst, tag)

struct Message {
  double send_enter = 0.0;
  double avail = 0.0;  ///< earliest delivery time at the receiver
  double bytes = 0.0;
};

struct RecvPost {
  double post_time = 0.0;
  bool claimed = false;    ///< a rendezvous sender is servicing it
  bool satisfied = false;  ///< transfer finished, avail/bytes valid
  double avail = 0.0;
  double bytes = 0.0;
};

struct CollInstance {
  CollKind kind = CollKind::None;
  int root = -1;
  double bytes = 0.0;
  std::vector<double> arrival;
  std::vector<char> arrived;
  std::size_t count = 0;
  bool resolved = false;
  std::vector<double> exit_time;
};

struct RankState {
  int rank = 0;
  const Program* program = nullptr;
  std::size_t pc = 0;
  double clock = 0.0;
  std::vector<std::size_t> stack;  ///< profile node ids
  bool entered = false;            ///< entry effects of current action done
  double action_t0 = 0.0;          ///< clock when the action was reached
  std::size_t action_node = kNoIndex;
  std::uint64_t coll_count = 0;
  counters::Workload cum_work;  ///< cumulative, for counter trace payloads
  SplitMix64 noise{0};

  [[nodiscard]] bool done() const {
    return pc >= program->actions.size();
  }
  [[nodiscard]] std::size_t top() const {
    return stack.empty() ? kNoIndex : stack.back();
  }
};

}  // namespace

Engine::Engine(SimConfig config) : config_(std::move(config)) {}

RunResult Engine::run(const RegionTable& regions,
                      std::vector<Program> programs) const {
  const int num_ranks = config_.cluster.num_ranks();
  if (static_cast<int>(programs.size()) != num_ranks) {
    throw OperationError("expected " + std::to_string(num_ranks) +
                         " programs, got " + std::to_string(programs.size()));
  }
  std::sort(programs.begin(), programs.end(),
            [](const Program& a, const Program& b) { return a.rank < b.rank; });
  for (int r = 0; r < num_ranks; ++r) {
    if (programs[static_cast<std::size_t>(r)].rank != r) {
      throw OperationError("programs must cover ranks 0.." +
                           std::to_string(num_ranks - 1) + " exactly");
    }
  }

  RunResult result;
  result.regions = regions;
  result.cluster = config_.cluster;
  result.profile = CallProfile(static_cast<std::size_t>(num_ranks));
  result.trace.cluster = config_.cluster;
  result.trace.eager_threshold = config_.network.eager_threshold;

  // Interned communication regions.
  const std::size_t send_region =
      result.regions.intern(kMpiSendRegion, "mpi");
  const std::size_t recv_region =
      result.regions.intern(kMpiRecvRegion, "mpi");
  const std::size_t barrier_region =
      result.regions.intern(kMpiBarrierRegion, "mpi");
  const std::size_t alltoall_region =
      result.regions.intern(kMpiAlltoallRegion, "mpi");
  const std::size_t reduce_region =
      result.regions.intern(kMpiReduceRegion, "mpi");
  const std::size_t bcast_region =
      result.regions.intern(kMpiBcastRegion, "mpi");
  const std::size_t omp_region =
      result.regions.intern(kOmpParallelRegion, "omp");

  // Counter payload configuration.
  const bool tracing = config_.monitor.trace;
  const bool payload = tracing && config_.monitor.trace_counters.has_value();
  counters::CounterModel counter_model;
  std::optional<counters::JitteredCounterModel> jittered;
  if (payload) {
    for (const counters::Event e :
         config_.monitor.trace_counters->events()) {
      result.trace.counter_names.emplace_back(counters::event_info(e).name);
    }
    jittered.emplace(counter_model, config_.monitor.counter_seed);
  }

  const NetworkConfig& net = config_.network;
  CallProfile& profile = result.profile;

  std::vector<RankState> ranks(static_cast<std::size_t>(num_ranks));
  for (int r = 0; r < num_ranks; ++r) {
    RankState& s = ranks[static_cast<std::size_t>(r)];
    s.rank = r;
    s.program = &programs[static_cast<std::size_t>(r)];
    s.noise = SplitMix64(
        derive_seed(config_.noise.seed, static_cast<std::uint64_t>(r)));
  }

  std::map<MsgKey, std::deque<Message>> in_flight;
  std::map<MsgKey, RecvPost> posted;
  std::vector<CollInstance> collectives;

  // --- helpers ---------------------------------------------------------------
  const auto emit = [&](RankState& s, TraceEvent e) {
    if (!tracing) return;
    e.rank = s.rank;
    if (payload) {
      e.counters.reserve(result.trace.counter_names.size());
      for (const counters::Event ev :
           config_.monitor.trace_counters->events()) {
        e.counters.push_back(jittered->value(ev, s.cum_work));
      }
    }
    result.trace.events.push_back(std::move(e));
    s.clock += config_.monitor.probe_overhead;
  };

  // Opens the implicit MPI node for a communication action.  Collectives
  // record their own CollEnter event instead of a plain Enter.
  const auto enter_comm_node = [&](RankState& s, std::size_t region,
                                   bool emit_enter = true) {
    s.action_t0 = s.clock;
    s.action_node = profile.child(s.top(), region);
    profile.add_visit(s.action_node, s.rank);
    if (emit_enter) {
      TraceEvent e;
      e.type = EventType::Enter;
      e.time = s.clock;
      e.region = static_cast<std::uint32_t>(region);
      emit(s, e);
    }
    s.entered = true;
  };

  const auto finish_comm_node = [&](RankState& s, std::size_t region,
                                    double end_time) {
    s.clock = end_time;
    TraceEvent e;
    e.type = EventType::Exit;
    e.time = s.clock;
    e.region = static_cast<std::uint32_t>(region);
    emit(s, e);
    profile.add_time(s.action_node, s.rank, s.clock - s.action_t0);
    s.entered = false;
    s.action_node = kNoIndex;
    ++s.pc;
  };

  const auto region_of_coll = [&](CollKind kind) {
    switch (kind) {
      case CollKind::Barrier: return barrier_region;
      case CollKind::AllToAll: return alltoall_region;
      case CollKind::Reduce: return reduce_region;
      case CollKind::Bcast: return bcast_region;
      case CollKind::None: break;
    }
    return barrier_region;
  };

  const auto resolve_collective = [&](CollInstance& inst) {
    double t_max = 0.0;
    for (int r = 0; r < num_ranks; ++r) {
      t_max = std::max(t_max, inst.arrival[static_cast<std::size_t>(r)]);
    }
    inst.exit_time.assign(static_cast<std::size_t>(num_ranks), 0.0);
    switch (inst.kind) {
      case CollKind::Barrier:
        for (int r = 0; r < num_ranks; ++r) {
          inst.exit_time[static_cast<std::size_t>(r)] =
              t_max + net.barrier_cost + net.exit_stagger * r;
        }
        break;
      case CollKind::AllToAll: {
        const double volume = (num_ranks - 1) * inst.bytes / net.bandwidth;
        for (int r = 0; r < num_ranks; ++r) {
          inst.exit_time[static_cast<std::size_t>(r)] =
              t_max + net.barrier_cost + volume + net.exit_stagger * r;
        }
        break;
      }
      case CollKind::Reduce: {
        const double fanin =
            net.reduce_cost_per_kb * (inst.bytes / 1024.0) *
            std::max(1.0, std::log2(static_cast<double>(num_ranks)));
        for (int r = 0; r < num_ranks; ++r) {
          if (r == inst.root) {
            inst.exit_time[static_cast<std::size_t>(r)] = t_max + fanin;
          } else {
            // Non-roots only inject their contribution and proceed.
            inst.exit_time[static_cast<std::size_t>(r)] =
                inst.arrival[static_cast<std::size_t>(r)] + net.sw_overhead +
                inst.bytes / net.bandwidth;
          }
        }
        break;
      }
      case CollKind::Bcast:
        // Handled rank-locally (non-roots only wait for the root); the
        // all-arrival resolver never runs for broadcasts.
        break;
      case CollKind::None:
        break;
    }
    inst.resolved = true;
  };

  // Attempts one action; returns true if the rank advanced.
  const auto step = [&](RankState& s) -> bool {
    const Action& act = s.program->actions[s.pc];
    switch (act.kind) {
      case ActionKind::Enter: {
        const std::size_t node = profile.child(s.top(), act.region);
        s.stack.push_back(node);
        profile.add_visit(node, s.rank);
        TraceEvent e;
        e.type = EventType::Enter;
        e.time = s.clock;
        e.region = static_cast<std::uint32_t>(act.region);
        emit(s, e);
        ++s.pc;
        return true;
      }
      case ActionKind::Leave: {
        if (s.stack.empty()) {
          throw OperationError("rank " + std::to_string(s.rank) +
                               ": leave without open region");
        }
        TraceEvent e;
        e.type = EventType::Exit;
        e.time = s.clock;
        e.region = static_cast<std::uint32_t>(
            profile.nodes()[s.stack.back()].region);
        emit(s, e);
        s.stack.pop_back();
        ++s.pc;
        return true;
      }
      case ActionKind::Compute: {
        double duration = act.seconds;
        if (config_.noise.relative > 0.0) {
          duration *= 1.0 + config_.noise.relative * std::abs(s.noise.normal());
        }
        if (config_.noise.daemon_prob > 0.0 &&
            s.noise.uniform() < config_.noise.daemon_prob) {
          duration += config_.noise.daemon_seconds *
                      (0.5 + s.noise.uniform());
        }
        if (s.stack.empty()) {
          throw OperationError("rank " + std::to_string(s.rank) +
                               ": compute outside of any region");
        }
        const std::size_t node = s.top();
        counters::Workload w = act.work;
        w.seconds = duration;
        profile.add_time(node, s.rank, duration);
        profile.add_work(node, s.rank, w);
        s.cum_work += w;
        s.clock += duration;
        ++s.pc;
        return true;
      }
      case ActionKind::ParallelCompute: {
        // Fork-join region: every thread of the process computes; the
        // process resumes after the slowest thread (implicit join).
        const int num_threads = config_.cluster.threads_per_proc;
        std::vector<double> thread_seconds(
            static_cast<std::size_t>(num_threads));
        double slowest = 0.0;
        for (int t = 0; t < num_threads; ++t) {
          double duration =
              act.seconds *
              std::max(0.05, 1.0 + act.spread * (s.noise.uniform() - 0.5) *
                                       2.0);
          if (config_.noise.relative > 0.0) {
            duration *=
                1.0 + config_.noise.relative * std::abs(s.noise.normal());
          }
          thread_seconds[static_cast<std::size_t>(t)] = duration;
          slowest = std::max(slowest, duration);
        }

        const std::size_t node = profile.child(s.top(), omp_region);
        profile.add_visit(node, s.rank);
        // The profile stores the process-level wall time (what a
        // process-granularity profiler like CONE observes) and the total
        // work of all threads.
        profile.add_time(node, s.rank, slowest);
        for (int t = 0; t < num_threads; ++t) {
          counters::Workload w = act.work;
          w.seconds = thread_seconds[static_cast<std::size_t>(t)];
          profile.add_work(node, s.rank, w);
          s.cum_work += w;
        }

        TraceEvent enter;
        enter.type = EventType::Enter;
        enter.time = s.clock;
        enter.region = static_cast<std::uint32_t>(omp_region);
        emit(s, enter);
        TraceEvent par;
        par.type = EventType::Parallel;
        par.time = s.clock + slowest;
        par.region = static_cast<std::uint32_t>(omp_region);
        par.thread_seconds = thread_seconds;
        emit(s, par);
        s.clock += slowest;
        TraceEvent exit_event;
        exit_event.type = EventType::Exit;
        exit_event.time = s.clock;
        exit_event.region = static_cast<std::uint32_t>(omp_region);
        emit(s, exit_event);
        ++s.pc;
        return true;
      }
      case ActionKind::Send: {
        const MsgKey key{s.rank, act.peer, act.tag};
        if (!s.entered) enter_comm_node(s, send_region);
        if (act.bytes <= net.eager_threshold) {
          const double inject = net.sw_overhead + act.bytes / net.bandwidth;
          Message msg;
          msg.send_enter = s.action_t0;
          msg.avail = s.clock + net.latency + act.bytes / net.bandwidth;
          msg.bytes = act.bytes;
          in_flight[key].push_back(msg);
          TraceEvent e;
          e.type = EventType::Send;
          e.time = s.clock;
          e.region = static_cast<std::uint32_t>(send_region);
          e.peer = act.peer;
          e.tag = act.tag;
          e.bytes = act.bytes;
          emit(s, e);
          finish_comm_node(s, send_region, s.clock + inject);
          return true;
        }
        // Rendezvous: wait for the receiver to post.
        auto it = posted.find(key);
        if (it == posted.end() || it->second.claimed) return false;
        RecvPost& post = it->second;
        post.claimed = true;
        const double start = std::max(s.clock, post.post_time);
        const double transfer = act.bytes / net.bandwidth;
        post.satisfied = true;
        post.avail = start + net.latency + transfer;
        post.bytes = act.bytes;
        TraceEvent e;
        e.type = EventType::Send;
        e.time = start;
        e.region = static_cast<std::uint32_t>(send_region);
        e.peer = act.peer;
        e.tag = act.tag;
        e.bytes = act.bytes;
        emit(s, e);
        finish_comm_node(s, send_region,
                         start + net.sw_overhead + transfer);
        return true;
      }
      case ActionKind::Recv: {
        const MsgKey key{act.peer, s.rank, act.tag};
        if (!s.entered) {
          enter_comm_node(s, recv_region);
          RecvPost post;
          post.post_time = s.clock;
          posted[key] = post;
        }
        RecvPost& post = posted[key];
        double avail = 0.0;
        double bytes = 0.0;
        if (post.satisfied) {
          avail = post.avail;
          bytes = post.bytes;
          posted.erase(key);
        } else {
          auto mit = in_flight.find(key);
          if (mit == in_flight.end() || mit->second.empty()) return false;
          const Message msg = mit->second.front();
          mit->second.pop_front();
          avail = msg.avail;
          bytes = msg.bytes;
          posted.erase(key);
        }
        const double copy = net.sw_overhead + bytes / net.copy_bandwidth;
        const double end = std::max(s.clock, avail) + copy;
        // Receiver-side buffer copy streams the message through the cache.
        counters::Workload w;
        w.seconds = end - s.clock;
        w.cold_bytes = bytes;
        profile.add_work(s.action_node, s.rank, w);
        s.cum_work += w;
        TraceEvent e;
        e.type = EventType::Recv;
        e.time = end;
        e.region = static_cast<std::uint32_t>(recv_region);
        e.peer = act.peer;
        e.tag = act.tag;
        e.bytes = bytes;
        emit(s, e);
        finish_comm_node(s, recv_region, end);
        return true;
      }
      case ActionKind::Barrier:
      case ActionKind::AllToAll:
      case ActionKind::Reduce:
      case ActionKind::Bcast: {
        CollKind kind = CollKind::Barrier;
        switch (act.kind) {
          case ActionKind::AllToAll: kind = CollKind::AllToAll; break;
          case ActionKind::Reduce: kind = CollKind::Reduce; break;
          case ActionKind::Bcast: kind = CollKind::Bcast; break;
          default: break;
        }
        const std::size_t inst_id = s.coll_count;
        if (collectives.size() <= inst_id) {
          collectives.resize(inst_id + 1);
        }
        CollInstance& inst = collectives[inst_id];
        if (!s.entered) {
          if (inst.count == 0) {
            inst.kind = kind;
            inst.root = act.peer;
            inst.bytes = act.bytes;
            inst.arrival.assign(static_cast<std::size_t>(num_ranks), 0.0);
            inst.arrived.assign(static_cast<std::size_t>(num_ranks), 0);
          } else if (inst.kind != kind) {
            throw OperationError(
                "rank " + std::to_string(s.rank) +
                ": collective sequence mismatch at instance " +
                std::to_string(inst_id));
          }
          enter_comm_node(s, region_of_coll(kind), /*emit_enter=*/false);
          inst.arrival[static_cast<std::size_t>(s.rank)] = s.clock;
          inst.arrived[static_cast<std::size_t>(s.rank)] = 1;
          ++inst.count;
          TraceEvent e;
          e.type = EventType::CollEnter;
          e.time = s.clock;
          e.region = static_cast<std::uint32_t>(region_of_coll(kind));
          e.coll = kind;
          e.coll_instance = static_cast<std::uint32_t>(inst_id);
          e.peer = act.peer;
          e.bytes = act.bytes;
          emit(s, e);
        }
        double end = 0.0;
        if (kind == CollKind::Bcast) {
          // A broadcast rank only depends on the root: the root leaves
          // right after injecting, every other rank waits until the data
          // sent at the root's arrival reaches it.
          if (!inst.arrived[static_cast<std::size_t>(inst.root)]) {
            return false;
          }
          const double root_arrival =
              inst.arrival[static_cast<std::size_t>(inst.root)];
          if (s.rank == inst.root) {
            end = s.clock + net.sw_overhead;
          } else {
            end = std::max(s.clock, root_arrival + net.latency +
                                        inst.bytes / net.bandwidth) +
                  net.sw_overhead;
          }
        } else {
          if (inst.count < static_cast<std::size_t>(num_ranks)) {
            return false;
          }
          if (!inst.resolved) resolve_collective(inst);
          end = inst.exit_time[static_cast<std::size_t>(s.rank)];
        }
        TraceEvent e;
        e.type = EventType::CollExit;
        e.time = end;
        e.region = static_cast<std::uint32_t>(region_of_coll(kind));
        e.coll = kind;
        e.coll_instance = static_cast<std::uint32_t>(inst_id);
        e.peer = act.peer;
        e.bytes = act.bytes;
        emit(s, e);
        // finish_comm_node emits Exit; collectives use CollExit only, so
        // close the node by hand.
        s.clock = std::max(s.clock, end);
        profile.add_time(s.action_node, s.rank, s.clock - s.action_t0);
        s.entered = false;
        s.action_node = kNoIndex;
        ++s.coll_count;
        ++s.pc;
        return true;
      }
    }
    return false;
  };

  // --- scheduler loop ------------------------------------------------------
  while (true) {
    bool all_done = true;
    bool progressed = false;
    for (RankState& s : ranks) {
      while (!s.done()) {
        if (!step(s)) break;
        progressed = true;
      }
      all_done = all_done && s.done();
    }
    if (all_done) break;
    if (!progressed) {
      std::string blocked;
      for (const RankState& s : ranks) {
        if (!s.done()) {
          blocked += (blocked.empty() ? "" : ", ") + std::to_string(s.rank);
        }
      }
      throw OperationError("simulation deadlock; blocked ranks: " + blocked);
    }
  }

  result.finish_times.resize(static_cast<std::size_t>(num_ranks));
  for (int r = 0; r < num_ranks; ++r) {
    result.finish_times[static_cast<std::size_t>(r)] =
        ranks[static_cast<std::size_t>(r)].clock;
    result.makespan = std::max(
        result.makespan, ranks[static_cast<std::size_t>(r)].clock);
  }
  result.trace.regions = result.regions;
  // Group the event stream per rank, preserving program order inside a rank.
  std::stable_sort(result.trace.events.begin(), result.trace.events.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     return a.rank < b.rank;
                   });
  return result;
}

}  // namespace cube::sim
