// Configuration of the simulated cluster, network, noise, and monitoring.
//
// Defaults approximate the paper's testbed: an Intel Pentium III Xeon
// 550 MHz cluster with eight 4-way SMP nodes connected through Myrinet
// (§5.1), with 16 processes running on four of the nodes.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "counters/eventset.hpp"

namespace cube::sim {

/// Logical shape of the machine the application runs on.
struct ClusterConfig {
  std::string machine_name = "P3 Xeon cluster (Myrinet)";
  int num_nodes = 4;           ///< SMP nodes actually used
  int procs_per_node = 4;      ///< 4-way SMP
  /// Threads per process for hybrid MPI+OpenMP-style applications; the
  /// thread level of the data model is mandatory, so 1 means a pure
  /// message-passing application of single-threaded processes.
  int threads_per_proc = 1;
  [[nodiscard]] int num_ranks() const noexcept {
    return num_nodes * procs_per_node;
  }
  [[nodiscard]] int num_locations() const noexcept {
    return num_ranks() * threads_per_proc;
  }
};

/// Point-to-point / collective cost model (Myrinet-class).
struct NetworkConfig {
  double latency = 12e-6;           ///< one-way message latency [s]
  double bandwidth = 140e6;         ///< link bandwidth [B/s]
  double sw_overhead = 3e-6;        ///< per-message software overhead [s]
  double eager_threshold = 16384;   ///< bytes; above this, rendezvous
  double copy_bandwidth = 450e6;    ///< receiver-side buffer copy [B/s]
  double barrier_cost = 400e-6;     ///< collective execution after arrival
  double exit_stagger = 10e-6;      ///< per-rank spread of collective exits
  double reduce_cost_per_kb = 6e-6; ///< reduction compute+fanin cost
};

/// Random perturbation from unrelated system activity ("system noise").
struct NoiseConfig {
  std::uint64_t seed = 0;       ///< base seed of the run
  double relative = 0.0;        ///< compute-time jitter amplitude (relative)
  double daemon_prob = 0.0;     ///< per-compute-block chance of a spike
  double daemon_seconds = 0.0;  ///< spike duration when it hits
};

/// Trace / measurement switches.
struct MonitorConfig {
  bool trace = false;  ///< record an event trace
  /// Per-event probe overhead added to the owning rank's clock while
  /// tracing — the dilation that §5.1 avoids by measuring the final
  /// speedup "without any trace instrumentation".
  double probe_overhead = 1.0e-6;
  /// If set, every Enter/Exit trace record additionally carries the
  /// cumulative values of these counters — the space-hungry mode whose
  /// trace-file growth §5.2 eliminates via the merge operator.
  std::optional<counters::EventSet> trace_counters;
  /// Seed stream for counter measurement jitter.
  std::uint64_t counter_seed = 0;
};

/// Everything the engine needs for one run.
struct SimConfig {
  ClusterConfig cluster;
  NetworkConfig network;
  NoiseConfig noise;
  MonitorConfig monitor;
};

}  // namespace cube::sim
