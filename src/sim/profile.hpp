// Call-path profile accumulated during a simulated run.
//
// The engine attributes every virtual-time interval and every unit of work
// EXCLUSIVELY to the call path (stack of regions) active when it happened —
// the representation the CONE profiler turns into a CUBE experiment.
#pragma once

#include <vector>

#include "common/types.hpp"
#include "counters/synth.hpp"
#include "sim/program.hpp"

namespace cube::sim {

/// One node of the merged (cross-rank) call-path tree.
struct ProfileNode {
  std::size_t region = kNoIndex;  ///< region executed in this call path
  std::size_t parent = kNoIndex;  ///< kNoIndex for roots
  std::vector<std::size_t> children;
};

/// Call-path tree plus per-(node, rank) exclusive time / work / visits.
class CallProfile {
 public:
  CallProfile(std::size_t num_ranks);

  /// Finds or creates the child of `parent` (kNoIndex = root level) that
  /// executes `region`; returns its node id.
  std::size_t child(std::size_t parent, std::size_t region);

  void add_time(std::size_t node, int rank, double seconds);
  void add_work(std::size_t node, int rank, const counters::Workload& work);
  void add_visit(std::size_t node, int rank);

  [[nodiscard]] const std::vector<ProfileNode>& nodes() const noexcept {
    return nodes_;
  }
  [[nodiscard]] std::vector<std::size_t> roots() const;
  [[nodiscard]] std::size_t num_ranks() const noexcept { return num_ranks_; }
  [[nodiscard]] double time(std::size_t node, int rank) const {
    return time_.at(node).at(static_cast<std::size_t>(rank));
  }
  [[nodiscard]] const counters::Workload& work(std::size_t node,
                                               int rank) const {
    return work_.at(node).at(static_cast<std::size_t>(rank));
  }
  [[nodiscard]] std::uint64_t visits(std::size_t node, int rank) const {
    return visits_.at(node).at(static_cast<std::size_t>(rank));
  }
  /// Sum of exclusive time over the subtree of `node` for one rank.
  [[nodiscard]] double inclusive_time(std::size_t node, int rank) const;

 private:
  std::size_t num_ranks_;
  std::vector<ProfileNode> nodes_;
  std::vector<std::vector<double>> time_;
  std::vector<std::vector<counters::Workload>> work_;
  std::vector<std::vector<std::uint64_t>> visits_;
};

}  // namespace cube::sim
