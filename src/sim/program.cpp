#include "sim/program.hpp"

#include "common/error.hpp"

namespace cube::sim {

std::size_t RegionTable::intern(const std::string& name,
                                const std::string& file, long begin_line,
                                long end_line) {
  const std::size_t existing = find(name);
  if (existing != kNoIndex) return existing;
  regions_.push_back(RegionInfo{name, file, begin_line, end_line});
  return regions_.size() - 1;
}

std::size_t RegionTable::find(const std::string& name) const {
  for (std::size_t i = 0; i < regions_.size(); ++i) {
    if (regions_[i].name == name) return i;
  }
  return kNoIndex;
}

ProgramBuilder::ProgramBuilder(RegionTable& regions, int rank)
    : regions_(&regions) {
  program_.rank = rank;
}

ProgramBuilder& ProgramBuilder::enter(const std::string& region_name,
                                      const std::string& file,
                                      long begin_line, long end_line) {
  Action a;
  a.kind = ActionKind::Enter;
  a.region = regions_->intern(region_name, file, begin_line, end_line);
  program_.actions.push_back(a);
  ++open_regions_;
  return *this;
}

ProgramBuilder& ProgramBuilder::leave() {
  if (open_regions_ == 0) {
    throw ValidationError("leave() without matching enter()");
  }
  Action a;
  a.kind = ActionKind::Leave;
  program_.actions.push_back(a);
  --open_regions_;
  return *this;
}

ProgramBuilder& ProgramBuilder::compute(double seconds, double flops,
                                        double mem_refs, double working_set) {
  Action a;
  a.kind = ActionKind::Compute;
  a.seconds = seconds;
  a.work.flops = flops;
  a.work.mem_refs = mem_refs;
  a.work.working_set = working_set;
  program_.actions.push_back(a);
  return *this;
}

ProgramBuilder& ProgramBuilder::parallel_compute(double seconds,
                                                 double spread, double flops,
                                                 double mem_refs,
                                                 double working_set) {
  Action a;
  a.kind = ActionKind::ParallelCompute;
  a.seconds = seconds;
  a.spread = spread;
  a.work.flops = flops;
  a.work.mem_refs = mem_refs;
  a.work.working_set = working_set;
  program_.actions.push_back(a);
  return *this;
}

ProgramBuilder& ProgramBuilder::send(int dst, int tag, double bytes) {
  Action a;
  a.kind = ActionKind::Send;
  a.peer = dst;
  a.tag = tag;
  a.bytes = bytes;
  program_.actions.push_back(a);
  return *this;
}

ProgramBuilder& ProgramBuilder::recv(int src, int tag) {
  Action a;
  a.kind = ActionKind::Recv;
  a.peer = src;
  a.tag = tag;
  program_.actions.push_back(a);
  return *this;
}

ProgramBuilder& ProgramBuilder::barrier() {
  Action a;
  a.kind = ActionKind::Barrier;
  program_.actions.push_back(a);
  return *this;
}

ProgramBuilder& ProgramBuilder::alltoall(double bytes_per_pair) {
  Action a;
  a.kind = ActionKind::AllToAll;
  a.bytes = bytes_per_pair;
  program_.actions.push_back(a);
  return *this;
}

ProgramBuilder& ProgramBuilder::reduce(int root, double bytes) {
  Action a;
  a.kind = ActionKind::Reduce;
  a.peer = root;
  a.bytes = bytes;
  program_.actions.push_back(a);
  return *this;
}

ProgramBuilder& ProgramBuilder::bcast(int root, double bytes) {
  Action a;
  a.kind = ActionKind::Bcast;
  a.peer = root;
  a.bytes = bytes;
  program_.actions.push_back(a);
  return *this;
}

Program ProgramBuilder::take() {
  if (open_regions_ != 0) {
    throw ValidationError("program has " + std::to_string(open_regions_) +
                          " unclosed region(s)");
  }
  return std::move(program_);
}

}  // namespace cube::sim
