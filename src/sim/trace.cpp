#include "sim/trace.hpp"

#include <cstring>
#include <fstream>
#include <sstream>

#include "common/error.hpp"

namespace cube::sim {

namespace {

constexpr char kMagic[8] = {'E', 'P', 'I', 'L', 'O', 'G', 'S', '1'};

void put_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<char>(v >> (8 * i)));
}
void put_i32(std::string& out, std::int32_t v) {
  put_u32(out, static_cast<std::uint32_t>(v));
}
void put_f64(std::string& out, double v) {
  char buf[8];
  std::memcpy(buf, &v, 8);
  out.append(buf, 8);
}
void put_str(std::string& out, const std::string& s) {
  put_u32(out, static_cast<std::uint32_t>(s.size()));
  out += s;
}

class Reader {
 public:
  explicit Reader(std::string_view data) : data_(data) {}

  std::uint32_t u32() {
    need(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(
               static_cast<unsigned char>(data_[pos_ + i]))
           << (8 * i);
    }
    pos_ += 4;
    return v;
  }
  std::int32_t i32() { return static_cast<std::int32_t>(u32()); }
  std::uint8_t u8() {
    need(1);
    const auto v = static_cast<std::uint8_t>(data_[pos_]);
    ++pos_;
    return v;
  }
  double f64() {
    need(8);
    double v = 0;
    std::memcpy(&v, data_.data() + pos_, 8);
    pos_ += 8;
    return v;
  }
  std::string str() {
    const std::uint32_t n = u32();
    need(n);
    std::string s(data_.substr(pos_, n));
    pos_ += n;
    return s;
  }
  [[nodiscard]] bool done() const { return pos_ == data_.size(); }

 private:
  void need(std::size_t n) const {
    if (pos_ + n > data_.size()) throw Error("truncated trace data");
  }
  std::string_view data_;
  std::size_t pos_ = 0;
};

}  // namespace

std::string serialize_trace(const Trace& trace) {
  std::string out;
  out.append(kMagic, sizeof kMagic);

  put_u32(out, static_cast<std::uint32_t>(trace.regions.size()));
  for (const RegionInfo& r : trace.regions.all()) {
    put_str(out, r.name);
    put_str(out, r.file);
    put_i32(out, static_cast<std::int32_t>(r.begin_line));
    put_i32(out, static_cast<std::int32_t>(r.end_line));
  }

  put_str(out, trace.cluster.machine_name);
  put_i32(out, trace.cluster.num_nodes);
  put_i32(out, trace.cluster.procs_per_node);
  put_i32(out, trace.cluster.threads_per_proc);
  put_f64(out, trace.eager_threshold);

  put_u32(out, static_cast<std::uint32_t>(trace.counter_names.size()));
  for (const std::string& name : trace.counter_names) put_str(out, name);

  put_u32(out, static_cast<std::uint32_t>(trace.events.size()));
  for (const TraceEvent& e : trace.events) {
    out.push_back(static_cast<char>(e.type));
    put_i32(out, e.rank);
    put_f64(out, e.time);
    put_u32(out, e.region);
    put_i32(out, e.peer);
    put_i32(out, e.tag);
    put_f64(out, e.bytes);
    put_u32(out, e.coll_instance);
    out.push_back(static_cast<char>(e.coll));
    put_u32(out, static_cast<std::uint32_t>(e.counters.size()));
    for (const double c : e.counters) put_f64(out, c);
    put_u32(out, static_cast<std::uint32_t>(e.thread_seconds.size()));
    for (const double c : e.thread_seconds) put_f64(out, c);
  }
  return out;
}

std::size_t Trace::byte_size() const { return serialize_trace(*this).size(); }

Trace deserialize_trace(std::string_view data) {
  if (data.size() < sizeof kMagic ||
      std::memcmp(data.data(), kMagic, sizeof kMagic) != 0) {
    throw Error("not a simulator trace (bad magic)");
  }
  Reader r(data.substr(sizeof kMagic));
  Trace trace;

  const std::uint32_t num_regions = r.u32();
  for (std::uint32_t i = 0; i < num_regions; ++i) {
    std::string name = r.str();
    std::string file = r.str();
    const long begin = r.i32();
    const long end = r.i32();
    trace.regions.intern(name, file, begin, end);
  }

  trace.cluster.machine_name = r.str();
  trace.cluster.num_nodes = r.i32();
  trace.cluster.procs_per_node = r.i32();
  trace.cluster.threads_per_proc = r.i32();
  trace.eager_threshold = r.f64();

  const std::uint32_t num_counters = r.u32();
  for (std::uint32_t i = 0; i < num_counters; ++i) {
    trace.counter_names.push_back(r.str());
  }

  const std::uint32_t num_events = r.u32();
  trace.events.reserve(num_events);
  for (std::uint32_t i = 0; i < num_events; ++i) {
    TraceEvent e;
    e.type = static_cast<EventType>(r.u8());
    e.rank = r.i32();
    e.time = r.f64();
    e.region = r.u32();
    e.peer = r.i32();
    e.tag = r.i32();
    e.bytes = r.f64();
    e.coll_instance = r.u32();
    e.coll = static_cast<CollKind>(r.u8());
    const std::uint32_t nc = r.u32();
    e.counters.reserve(nc);
    for (std::uint32_t k = 0; k < nc; ++k) e.counters.push_back(r.f64());
    const std::uint32_t nt = r.u32();
    e.thread_seconds.reserve(nt);
    for (std::uint32_t k = 0; k < nt; ++k) {
      e.thread_seconds.push_back(r.f64());
    }
    trace.events.push_back(std::move(e));
  }
  if (!r.done()) throw Error("trailing bytes after trace stream");
  return trace;
}

void write_trace_file(const Trace& trace, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw IoError("cannot create file '" + path + "'");
  const std::string data = serialize_trace(trace);
  out.write(data.data(), static_cast<std::streamsize>(data.size()));
  out.flush();
  if (!out) throw IoError("write to '" + path + "' failed");
}

Trace read_trace_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw IoError("cannot open file '" + path + "'");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return deserialize_trace(buffer.str());
}

}  // namespace cube::sim
