// System dimension of the CUBE data model: a forest with the fixed levels
// machine -> node -> process -> thread.
//
// Machines and nodes are mainly a logical grouping of processes for
// aggregation; they carry no cross-experiment identity.  Processes are
// identified by their application-level rank (e.g. MPI rank), threads by
// (rank, thread id) (e.g. OpenMP thread number).  The thread level is
// mandatory: a pure message-passing application is a collection of
// single-threaded processes.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace cube {

class Metadata;
class SysNode;
class Process;
class Thread;

/// Top level of the system forest (a cluster or an MPP).
class Machine {
 public:
  [[nodiscard]] std::size_t index() const noexcept { return index_; }
  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] const std::vector<const SysNode*>& nodes() const noexcept {
    return nodes_;
  }

 private:
  friend class Metadata;
  Machine(std::size_t index, std::string name);

  std::size_t index_;
  std::string name_;
  std::vector<const SysNode*> nodes_;
};

/// An SMP node hosting one or more processes.
class SysNode {
 public:
  [[nodiscard]] std::size_t index() const noexcept { return index_; }
  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] const Machine& machine() const noexcept { return *machine_; }
  [[nodiscard]] const std::vector<const Process*>& processes() const noexcept {
    return processes_;
  }

 private:
  friend class Metadata;
  SysNode(std::size_t index, std::string name, Machine* machine);

  std::size_t index_;
  std::string name_;
  Machine* machine_;
  std::vector<const Process*> processes_;
};

/// A process, identified across experiments by its application-level rank.
class Process {
 public:
  [[nodiscard]] std::size_t index() const noexcept { return index_; }
  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] long rank() const noexcept { return rank_; }
  [[nodiscard]] const SysNode& node() const noexcept { return *node_; }
  [[nodiscard]] const std::vector<const Thread*>& threads() const noexcept {
    return threads_;
  }

  /// Optional Cartesian topology coordinates (paper §7 future work:
  /// "integration of topology information ... into our data model").
  [[nodiscard]] const std::optional<std::vector<long>>& coords()
      const noexcept {
    return coords_;
  }
  void set_coords(std::vector<long> coords) { coords_ = std::move(coords); }

 private:
  friend class Metadata;
  Process(std::size_t index, std::string name, long rank, SysNode* node);

  std::size_t index_;
  std::string name_;
  long rank_;
  SysNode* node_;
  std::vector<const Thread*> threads_;
  std::optional<std::vector<long>> coords_;
};

/// A thread, the leaf level the severity function is defined over.
class Thread {
 public:
  /// Dense index into the severity array's thread dimension.
  [[nodiscard]] ThreadIndex index() const noexcept { return index_; }
  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] long thread_id() const noexcept { return thread_id_; }
  [[nodiscard]] const Process& process() const noexcept { return *process_; }
  /// Cross-experiment identity: (process rank, thread id).
  [[nodiscard]] long rank() const noexcept;

 private:
  friend class Metadata;
  Thread(ThreadIndex index, std::string name, long thread_id,
         Process* process);

  ThreadIndex index_;
  std::string name_;
  long thread_id_;
  Process* process_;
};

}  // namespace cube
